package lamb

import "lamb/internal/kernels"

// KernelKind identifies one of the BLAS kernels the paper's algorithms
// are built from.
type KernelKind = kernels.Kind

// Kernel kinds (paper §3.1). Tri2Full is the triangle-mirroring data
// movement between SYRK and GEMM in AAᵀB Algorithm 2.
const (
	GEMM     = kernels.Gemm
	SYRK     = kernels.Syrk
	SYMM     = kernels.Symm
	Tri2Full = kernels.Tri2Full
	// POTRF, TRSM, and ADDSYM extend the paper's kernel set for the
	// least-squares expression (see LstSq).
	POTRF  = kernels.Potrf
	TRSM   = kernels.Trsm
	ADDSYM = kernels.AddSym
)

// NumKernelKinds is the number of kernel kinds.
const NumKernelKinds = kernels.NumKinds

// KernelCall describes one kernel invocation with its dimensions and
// operands.
type KernelCall = kernels.Call
