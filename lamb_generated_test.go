package lamb_test

import (
	"math"
	"reflect"
	"testing"

	"lamb"
)

// End-to-end coverage for the enumerator-generated expressions (aatbc,
// gls): the full experiment pipeline and strategy evaluation on the
// simulated backend, numerical agreement of every generated algorithm
// on the real BLAS, and the public IR builder API.

func generatedExpressions() []lamb.Expression {
	return []lamb.Expression{lamb.AATBC(), lamb.GLS(), lamb.ATAB()}
}

func TestGeneratedExpressionsExperimentPipeline(t *testing.T) {
	timer := lamb.NewSimTimer()
	for _, e := range generatedExpressions() {
		t.Run(e.Name(), func(t *testing.T) {
			r10 := lamb.NewRunner(e, timer, 0.10)
			exp1 := lamb.RunExperiment1(r10, lamb.Exp1Config{
				Box:             lamb.PaperBox(e.Arity()),
				TargetAnomalies: 3,
				MaxSamples:      2500,
				Seed:            7,
			})
			if len(exp1.Anomalies) < 1 {
				t.Fatalf("%s: no anomalies in %d samples", e.Name(), exp1.Samples)
			}
			n := len(exp1.Anomalies)
			if n > 2 {
				n = 2
			}
			origins := make([]lamb.Instance, 0, n)
			for _, a := range exp1.Anomalies[:n] {
				origins = append(origins, a.Inst)
			}
			r5 := lamb.NewRunner(e, timer, 0.05)
			exp2 := lamb.RunExperiment2(r5, origins, lamb.DefaultExp2Config(lamb.PaperBox(e.Arity())))
			if len(exp2.Lines) != n*e.Arity() {
				t.Fatalf("%s: exp2 produced %d lines, want %d", e.Name(), len(exp2.Lines), n*e.Arity())
			}
			exp3 := lamb.RunExperiment3(r5, exp2, lamb.Exp3Config{Threshold: 0.05})
			if exp3.Confusion.Total() != exp2.TotalSamples {
				t.Fatalf("%s: exp3 total %d != exp2 samples %d", e.Name(), exp3.Confusion.Total(), exp2.TotalSamples)
			}
			if exp3.DistinctCalls == 0 {
				t.Fatalf("%s: exp3 benchmarked no calls", e.Name())
			}
		})
	}
}

func TestGeneratedExpressionsStrategyEvaluation(t *testing.T) {
	timer := lamb.NewSimTimer()
	profiles := lamb.MeasureProfiles(timer, 3)
	for _, e := range generatedExpressions() {
		reports := lamb.EvaluateStrategies(e, timer,
			[]lamb.Strategy{lamb.MinFlops{}, lamb.MinPredicted{Profiles: profiles}},
			lamb.SelectionConfig{Box: lamb.UniformBox(e.Arity(), 50, 600), Instances: 12, Seed: 5})
		if len(reports) != 2 {
			t.Fatalf("%s: %d reports", e.Name(), len(reports))
		}
		for _, r := range reports {
			if r.Instances != 12 {
				t.Fatalf("%s %s: %d instances", e.Name(), r.Strategy, r.Instances)
			}
			if r.Regret.Max < 0 {
				t.Fatalf("%s %s: negative regret", e.Name(), r.Strategy)
			}
		}
	}
}

// spdMatrix returns a deterministic diagonally dominant symmetric
// matrix — SPD by Gershgorin.
func spdMatrix(n int, seed uint64) *lamb.Matrix {
	m := lamb.NewRandomMatrix(n, n, seed)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := (m.At(i, j) + m.At(j, i)) / 2
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
		m.Set(i, i, float64(n)+1+m.At(i, i))
	}
	return m
}

func TestGeneratedAlgorithmsAgreeNumerically(t *testing.T) {
	// A builder-defined expression whose Gram sum feeds a full-storage
	// GEMM — regression coverage for the Tri2Full insertion after the
	// triangle-only AddSym accumulation.
	a := lamb.Operand("A", 0, 1)
	sumGemm, err := lamb.DefineExpression("sum-gemm", 3,
		lamb.MulFixed(
			lamb.AddInto("S", lamb.Mul(a, lamb.Transpose(a)), lamb.SPDOperand("R", 0)),
			lamb.Operand("B", 0, 2)))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		expr   lamb.Expression
		inst   lamb.Instance
		inputs map[string]*lamb.Matrix
	}{
		{sumGemm, lamb.Instance{9, 7, 8}, map[string]*lamb.Matrix{
			"A": lamb.NewRandomMatrix(9, 7, 8),
			"B": lamb.NewRandomMatrix(9, 8, 9),
			"R": spdMatrix(9, 10),
		}},
		{lamb.AATBC(), lamb.Instance{11, 7, 9, 8}, map[string]*lamb.Matrix{
			"A": lamb.NewRandomMatrix(11, 7, 1),
			"B": lamb.NewRandomMatrix(11, 9, 2),
			"C": lamb.NewRandomMatrix(9, 8, 3),
		}},
		{lamb.GLS(), lamb.Instance{10, 8, 7, 6}, map[string]*lamb.Matrix{
			"A": lamb.NewRandomMatrix(10, 8, 4),
			"B": lamb.NewRandomMatrix(8, 7, 5),
			"C": lamb.NewRandomMatrix(7, 6, 6),
			"R": spdMatrix(10, 7),
		}},
		// ATAB: all five algorithms — transposed SYRK, its Tri2Full+GEMM
		// variant, the GEMM Gram, and the chain order — agree.
		{lamb.ATAB(), lamb.Instance{13, 9, 8}, map[string]*lamb.Matrix{
			"A": lamb.NewRandomMatrix(13, 9, 11),
			"B": lamb.NewRandomMatrix(9, 8, 12),
		}},
	}
	for _, c := range cases {
		algs := c.expr.Algorithms(c.inst)
		var ref *lamb.Matrix
		for i := range algs {
			// The solves run in place on operands the algorithm owns, but
			// inputs are shared across algorithms: hand each run fresh
			// copies of anything an in-place kernel touches.
			inputs := make(map[string]*lamb.Matrix, len(c.inputs))
			for id, m := range c.inputs {
				cp := lamb.NewMatrix(m.Rows, m.Cols)
				for r := 0; r < m.Rows; r++ {
					for cc := 0; cc < m.Cols; cc++ {
						cp.Set(r, cc, m.At(r, cc))
					}
				}
				inputs[id] = cp
			}
			got := lamb.EvaluateAlgorithm(&algs[i], inputs)
			if ref == nil {
				ref = got
				continue
			}
			for r := 0; r < ref.Rows; r++ {
				for cc := 0; cc < ref.Cols; cc++ {
					if math.Abs(ref.At(r, cc)-got.At(r, cc)) > 1e-8 {
						t.Fatalf("%s algorithm %d differs at (%d,%d): %v vs %v",
							c.expr.Name(), i+1, r, cc, ref.At(r, cc), got.At(r, cc))
					}
				}
			}
		}
	}
}

func TestPublicBuilderAPIReproducesAATB(t *testing.T) {
	// Defining AAᵀB through the public IR builder generates the same
	// five algorithms as the built-in expression (up to the name).
	a := lamb.Operand("A", 0, 1)
	b := lamb.Operand("B", 0, 2)
	custom, err := lamb.DefineExpression("my-aatb", 3, lamb.Mul(a, lamb.Transpose(a), b))
	if err != nil {
		t.Fatal(err)
	}
	inst := lamb.Instance{80, 514, 768}
	got := custom.Algorithms(inst)
	want := lamb.AATB().Algorithms(inst)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("builder-defined AAᵀB differs from built-in:\n got %v\nwant %v", got, want)
	}
}

func TestPublicBuilderAPISolveAndSum(t *testing.T) {
	// A custom GLS-like definition through the public facade.
	a := lamb.Operand("A", 0, 1)
	b := lamb.Operand("B", 1, 2)
	r := lamb.SPDOperand("R", 0)
	root := lamb.SolveWith(
		lamb.AddInto("S", lamb.Mul(a, lamb.Transpose(a)), r),
		lamb.Mul(a, b),
	)
	custom, err := lamb.DefineExpression("my-lstsq", 3, root)
	if err != nil {
		t.Fatal(err)
	}
	if n := custom.NumAlgorithms(); n != 4 {
		t.Fatalf("custom lstsq generated %d algorithms, want 4", n)
	}
	// Unsupported fragments fail at definition time, not mid-experiment.
	if _, err := lamb.DefineExpression("bad", 2,
		lamb.Mul(lamb.Operand("A", 0, 1), lamb.Operand("B", 0, 1))); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestPublicRegistry(t *testing.T) {
	names := lamb.Expressions()
	if len(names) != 6 {
		t.Fatalf("registry %v", names)
	}
	for _, n := range names {
		e, err := lamb.LookupExpression(n)
		if err != nil {
			t.Fatal(err)
		}
		if e.Arity() < 3 {
			t.Fatalf("%s arity %d", n, e.Arity())
		}
	}
	if _, err := lamb.LookupExpression("unknown"); err == nil {
		t.Fatal("unknown expression accepted")
	}
}
