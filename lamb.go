// Package lamb reproduces the study "FLOPs as a Discriminant for Dense
// Linear Algebra Algorithms" (López, Karlsson, Bientinesi; ICPP 2022).
//
// The library answers the paper's question — when does selecting the
// algorithm with the minimum FLOP count fail to select a fastest
// algorithm? — by providing:
//
//   - an expression IR with a generic enumerator that derives the full
//     set of mathematically equivalent algorithms for any operand tree
//     (multiplication orders, SYRK/SYMM symmetry rewrites, SPD-inverse
//     lowering, common-subexpression sharing), powering the two
//     expressions the paper studies (the matrix chain ABCD and AAᵀB), a
//     general n-term chain, and three richer expressions (lstsq, aatbc,
//     gls) probing the paper's §5 conjecture;
//   - two execution backends: a deterministic simulated machine
//     calibrated to the paper's observations, and a measured backend
//     running a from-scratch pure-Go BLAS;
//   - the three experiments: random search for anomalies, axis-aligned
//     traversal of anomalous regions, and anomaly prediction from
//     isolated kernel benchmarks;
//   - kernel performance profiles and algorithm-selection strategies,
//     including the paper's proposed FLOPs+profiles discriminant.
//
// See README.md for a tour and DESIGN.md for the system inventory.
//
// # Quick start
//
//	timer := lamb.NewSimTimer()
//	runner := lamb.NewRunner(lamb.ChainABCD(), timer, 0.10)
//	res := runner.Evaluate(lamb.Instance{331, 279, 338, 854, 427})
//	fmt.Println(res.Class.Anomaly, res.Class.TimeScore)
package lamb

import (
	"lamb/internal/core"
	"lamb/internal/exec"
	"lamb/internal/expr"
	"lamb/internal/ir"
	"lamb/internal/machine"
	"lamb/internal/mat"
	"lamb/internal/profile"
	"lamb/internal/selection"
	"lamb/internal/stats"
	"lamb/internal/xrand"
)

// Core modelling types.
type (
	// Instance assigns sizes to an expression's dimensions.
	Instance = expr.Instance
	// Algorithm is a sequence of kernel calls evaluating an expression.
	Algorithm = expr.Algorithm
	// Expression is a family of instances with its algorithm set.
	Expression = expr.Expression
	// Box is a hyper-rectangular instance search space.
	Box = expr.Box
	// Chain is the n-term matrix chain expression.
	Chain = expr.Chain
	// Matrix is a dense column-major float64 matrix.
	Matrix = mat.Dense
)

// Execution and timing.
type (
	// Executor runs algorithms and reports times (simulated or measured).
	Executor = exec.Executor
	// Timer applies the paper's median-of-repetitions protocol.
	Timer = exec.Timer
	// Measurement is a timed algorithm run.
	Measurement = exec.Measurement
	// MachineConfig configures the simulated machine.
	MachineConfig = machine.Config
)

// The anomaly study.
type (
	// Runner evaluates and classifies instances.
	Runner = core.Runner
	// Classification is the paper's cheapest/fastest labelling with
	// severity scores.
	Classification = core.Classification
	// InstanceResult is a fully measured instance.
	InstanceResult = core.InstanceResult
	// Exp1Config / Exp1Result: random search (paper §3.4.1).
	Exp1Config = core.Exp1Config
	Exp1Result = core.Exp1Result
	// Exp2Config / Exp2Result / Line: region traversal (paper §3.4.2).
	Exp2Config = core.Exp2Config
	Exp2Result = core.Exp2Result
	Line       = core.Line
	// Exp3Config / Exp3Result: prediction from benchmarks (paper §3.4.3).
	Exp3Config = core.Exp3Config
	Exp3Result = core.Exp3Result
	// ConfusionMatrix tallies predicted-vs-actual anomalies.
	ConfusionMatrix = stats.ConfusionMatrix
)

// Profiles and selection.
type (
	// Profile is a benchmarked kernel performance surface.
	Profile = profile.Profile
	// ProfileSet covers all kernel kinds.
	ProfileSet = profile.Set
	// ProfileMeta records a profile set's provenance (machine, backend,
	// measurement protocol); persisted alongside the profiles.
	ProfileMeta = profile.Meta
	// CurvePoint is one sample of a Figure-1 efficiency curve.
	CurvePoint = profile.CurvePoint
	// Strategy selects an algorithm from a set.
	Strategy = selection.Strategy
	// InstanceStrategy is a Strategy that also uses the queried
	// instance (the adaptive strategy does, to look up nearby outcomes).
	InstanceStrategy = selection.InstanceStrategy
	// Observation is one aggregated measured outcome an Adaptive
	// strategy folds into its choice.
	Observation = selection.Observation
	// SelectionReport summarises a strategy's regret.
	SelectionReport = selection.Report
	// SelectionConfig parameterises strategy evaluation.
	SelectionConfig = selection.Config
)

// ProfileSchemaVersion is the version of the persisted profile file
// format this build reads and writes.
const ProfileSchemaVersion = profile.SchemaVersion

// Selection strategies.
type (
	// MinFlops is the paper's baseline discriminant (Linnea, Armadillo,
	// Julia): minimum FLOP count.
	MinFlops = selection.MinFlops
	// MinPredicted combines FLOP counts with kernel performance profiles
	// (the paper's proposed improvement).
	MinPredicted = selection.MinPredicted
	// Adaptive refines the profile-backed prediction online with
	// measured outcomes near the queried instance (the follow-up paper's
	// online-decision framing, arXiv:2209.03258).
	Adaptive = selection.Adaptive
	// Oracle picks the empirically fastest algorithm by measuring all.
	Oracle = selection.Oracle
)

// ChainABCD returns the paper's 4-term matrix chain expression with its
// six algorithms (Figure 3).
func ChainABCD() Chain { return expr.NewChainABCD() }

// NewChain returns an n-term matrix chain expression with its (n−1)!
// algorithms.
func NewChain(terms int) Chain { return Chain{Terms: terms} }

// AATB returns the expression X := A·Aᵀ·B with its five algorithms
// (Figure 5).
func AATB() expr.AATB { return expr.NewAATB() }

// ATAB returns the transposed-Gram expression X := Aᵀ·A·B, the mirror
// of AAᵀB enabled by the transposed-SYRK rewrite (Aᵀ·A → dsyrk
// trans='T'); its five generated algorithms mirror the paper's Figure 5
// in the normal-equations orientation.
func ATAB() expr.ATAB { return expr.NewATAB() }

// LstSq returns the regularised least-squares expression
// X := (A·Aᵀ + R)⁻¹·A·B with its four algorithms over six kernel kinds
// (SYRK/GEMM Gram variants × RHS-ordering variants, with a triangular
// accumulation, a Cholesky factorisation, and two triangular solves).
// This extends the paper's study to a LAPACK-level kernel mix, testing
// its §5 conjecture that richer expressions produce more anomalies.
func LstSq() expr.LstSq { return expr.NewLstSq() }

// AATBC returns the Gram-chain hybrid X := A·Aᵀ·B·C, the smallest
// expression combining the paper's two case studies; its fifteen
// algorithms are derived entirely by the IR enumerator (contraction
// orders × SYRK/GEMM × SYMM/GEMM with Tri2Full insertion).
func AATBC() expr.AATBC { return expr.NewAATBC() }

// GLS returns the generalized-least-squares-style solve with a chained
// right-hand side, X := (A·Aᵀ + R)⁻¹·A·B·C, whose eight generated
// algorithms multiply Gram-kernel, parenthesisation, and
// pipeline-ordering choices over six kernel kinds.
func GLS() expr.GLS { return expr.NewGLS() }

// Expressions returns the names of the registered built-in expressions.
func Expressions() []string { return expr.Names() }

// LookupExpression returns the built-in expression registered under
// name (case-insensitive): chain, aatb, atab, lstsq, aatbc, or gls.
func LookupExpression(name string) (Expression, error) { return expr.Lookup(name) }

// Expression IR: the builder API for defining new expressions. A tree
// of operands, products, sums, and inverses is wrapped by
// DefineExpression into an Expression whose algorithm set is derived by
// the generic enumerator — all multiplication orders, SYRK/SYMM
// symmetry rewrites with Tri2Full insertion, Cholesky-based SPD-inverse
// lowering with both pipeline orderings, and common-subexpression
// sharing. See DESIGN.md for the architecture and README.md for a tour.
type (
	// IRNode is one vertex of an expression tree.
	IRNode = ir.Node
	// IRDef is a complete expression definition (tree plus metadata).
	IRDef = ir.Def
	// GenericExpression is an Expression generated from an IR definition.
	GenericExpression = expr.Generic
)

// Operand returns a general dense input named id with shape
// d[row] × d[col].
func Operand(id string, row, col int) IRNode { return ir.NewOperand(id, ir.Dim(row), ir.Dim(col)) }

// SymmetricOperand returns a symmetric input of shape d[dim] × d[dim].
func SymmetricOperand(id string, dim int) IRNode { return ir.NewSymmetric(id, ir.Dim(dim)) }

// SPDOperand returns a symmetric positive definite input of shape
// d[dim] × d[dim]; executors materialise it accordingly, and it
// licenses Cholesky-based inverse lowering.
func SPDOperand(id string, dim int) IRNode { return ir.NewSPD(id, ir.Dim(dim)) }

// Transpose returns the transposed view of x (double transposition
// cancels; transposing a symmetric operand is the identity).
func Transpose(x IRNode) IRNode { return ir.T(x) }

// Mul returns the associative product of the factors: the enumerator
// derives every multiplication order. Using the same node twice marks a
// common subexpression, computed once.
func Mul(factors ...IRNode) IRNode { return ir.Mul(factors...) }

// MulFixed returns the product with the grouping pinned left to right.
func MulFixed(factors ...IRNode) IRNode { return ir.MulFixed(factors...) }

// AddInto returns the two-term sum accumulated in place into the
// operand named name (one computed symmetric term plus one symmetric
// input).
func AddInto(name string, terms ...IRNode) IRNode { return ir.Add(name, terms...) }

// SolveWith returns inv(s)·rhs in solve form: an SPD s lowers to a
// Cholesky factorisation plus two in-place triangular solves, in both
// pipeline orderings.
func SolveWith(s, rhs IRNode) IRNode { return ir.Solve(s, rhs) }

// DefineExpression validates the tree and returns the Expression whose
// algorithm set the enumerator derives from it. The result operand is
// named "X"; arity is the number of instance dimensions.
func DefineExpression(name string, arity int, root IRNode) (GenericExpression, error) {
	return expr.NewGeneric(&ir.Def{Name: name, Arity: arity, Root: root})
}

// MinFlopsParenthesisation is the classic O(n³) dynamic program for the
// matrix chain: minimum FLOPs over all parenthesisations plus one optimal
// tree.
func MinFlopsParenthesisation(dims []int) (float64, string) {
	return expr.MinFlopsParenthesisation(dims)
}

// PaperBox returns the paper's search space, 20 ≤ dᵢ ≤ 1200.
func PaperBox(arity int) Box { return expr.PaperBox(arity) }

// UniformBox returns a box with range [lo, hi] in every dimension.
func UniformBox(arity, lo, hi int) Box { return expr.UniformBox(arity, lo, hi) }

// DefaultMachineConfig returns the calibrated simulated-machine
// configuration (a 10-core Xeon-class machine; see DESIGN.md).
func DefaultMachineConfig() MachineConfig { return machine.Default() }

// AltMachineConfig returns a second calibrated machine (16 wider cores,
// a different BLAS generation) for cross-machine anomaly studies: the
// paper's conclusion predicts that anomalies move when the setup changes.
func AltMachineConfig() MachineConfig { return machine.DefaultAlt() }

// NewSimExecutor returns the simulated executor on the calibrated default
// machine.
func NewSimExecutor() Executor { return exec.NewDefaultSimulated() }

// NewSimExecutorWith returns a simulated executor on a custom machine
// configuration (used by the ablation benchmarks).
func NewSimExecutorWith(cfg MachineConfig) Executor {
	return exec.NewSimulated(machine.New(cfg))
}

// NewMeasuredExecutor returns the executor that times the pure-Go BLAS
// kernels.
func NewMeasuredExecutor() Executor { return exec.NewMeasured() }

// NewTimer wraps an executor with the paper's protocol (median of 10
// repetitions, cache flushed before each).
func NewTimer(e Executor) *Timer { return exec.NewTimer(e) }

// NewSimTimer is shorthand for NewTimer(NewSimExecutor()).
func NewSimTimer() *Timer { return exec.NewTimer(exec.NewDefaultSimulated()) }

// NewRunner returns a Runner classifying instances of e at the given
// time-score threshold.
func NewRunner(e Expression, t *Timer, threshold float64) *Runner {
	return core.NewRunner(e, t, threshold)
}

// Classify labels an instance from per-algorithm FLOP counts and times.
func Classify(flops, times []float64, threshold float64) Classification {
	return core.Classify(flops, times, threshold)
}

// RunExperiment1 performs the paper's random search for anomalies.
func RunExperiment1(r *Runner, cfg Exp1Config) Exp1Result { return core.RunExp1(r, cfg) }

// RunExperiment1Parallel is RunExperiment1 with evaluations spread over
// workers; results are bit-identical to the sequential run. It requires
// a concurrency-safe executor (the simulated backend is).
func RunExperiment1Parallel(r *Runner, cfg Exp1Config, workers int) Exp1Result {
	return core.RunExp1Parallel(r, cfg, workers)
}

// RunExperiment2 traverses axis-aligned lines through anomalies.
func RunExperiment2(r *Runner, anomalies []Instance, cfg Exp2Config) Exp2Result {
	return core.RunExp2(r, anomalies, cfg)
}

// RunExperiment2Parallel is RunExperiment2 with line traversals spread
// over workers; bit-identical to the sequential run (simulated backend
// only).
func RunExperiment2Parallel(r *Runner, anomalies []Instance, cfg Exp2Config, workers int) Exp2Result {
	return core.RunExp2Parallel(r, anomalies, cfg, workers)
}

// RunExperiment3Parallel is RunExperiment3 with the distinct-call
// benchmarking phase spread over workers; bit-identical to the
// sequential run (simulated backend only).
func RunExperiment3Parallel(r *Runner, exp2 Exp2Result, cfg Exp3Config, workers int) Exp3Result {
	return core.RunExp3Parallel(r, exp2, cfg, workers)
}

// DefaultExp2Config returns the paper's Experiment 2 settings (step 10,
// regions end at 3 consecutive non-anomalies).
func DefaultExp2Config(box Box) Exp2Config { return core.DefaultExp2Config(box) }

// RunExperiment3 predicts anomalies from isolated kernel benchmarks and
// tallies the confusion matrix.
func RunExperiment3(r *Runner, exp2 Exp2Result, cfg Exp3Config) Exp3Result {
	return core.RunExp3(r, exp2, cfg)
}

// EfficiencyCurve measures a kernel's efficiency on square operands — the
// data behind the paper's Figure 1.
func EfficiencyCurve(t *Timer, kind KernelKind, sizes []int) []CurvePoint {
	return profile.EfficiencyCurve(t, kind, sizes)
}

// MeasureProfiles benchmarks performance profiles for every kernel kind
// on a geometric grid with the given points per dimension.
func MeasureProfiles(t *Timer, points int) *ProfileSet { return profile.MeasureSet(t, points) }

// WriteProfiles persists a profile set with its provenance as
// schema-versioned JSON (the `lamb profile` artifact).
func WriteProfiles(path string, s *ProfileSet, meta ProfileMeta) error {
	return profile.WriteFile(path, s, meta)
}

// ReadProfiles loads a persisted profile set; predictions from the
// loaded set are identical to the freshly measured one.
func ReadProfiles(path string) (*ProfileSet, ProfileMeta, error) { return profile.ReadFile(path) }

// HostProfileMeta returns provenance describing the current host;
// callers fill in the measurement-specific fields.
func HostProfileMeta() ProfileMeta { return profile.HostMeta() }

// EvaluateStrategies measures selection-strategy regret on random
// instances.
func EvaluateStrategies(e Expression, t *Timer, strategies []Strategy, cfg SelectionConfig) []SelectionReport {
	return selection.Evaluate(e, t, strategies, cfg)
}

// EvaluateAlgorithm executes an algorithm's kernel sequence on concrete
// inputs with the pure-Go BLAS and returns the result matrix (the
// correctness path: all algorithms of an expression agree numerically).
func EvaluateAlgorithm(alg *Algorithm, inputs map[string]*Matrix) *Matrix {
	return exec.EvaluateAlgorithm(alg, inputs)
}

// NewMatrix returns a zeroed r-by-c matrix.
func NewMatrix(r, c int) *Matrix { return mat.New(r, c) }

// NewRandomMatrix returns an r-by-c matrix with deterministic uniform
// entries in [-1, 1) drawn from the given seed.
func NewRandomMatrix(r, c int, seed uint64) *Matrix {
	return mat.NewRandom(r, c, xrand.New(seed))
}
