package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"lamb/internal/engine"
	"lamb/internal/exec"
	"lamb/internal/expr"
	"lamb/internal/faultinject"
	"lamb/internal/kernels"
	"lamb/internal/profile"
)

// These tests cover the serving robustness layer: readiness, admission
// control, deadlines, panic recovery, hot reload, and the batch cap.
// Failpoint-armed tests share the faultinject globals, so none of them
// run in parallel.

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

// postJSONRaw is postJSON without the testing.T, safe from goroutines.
func postJSONRaw(url string, body any) (*http.Response, []byte, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return nil, nil, err
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(string(buf)))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	return resp, out, nil
}

func TestServeHealthzReadyStates(t *testing.T) {
	s := newServer(engine.New(engine.Config{}), serveOptions{MaxInflight: 1})
	srv := httptest.NewServer(s.handler())
	t.Cleanup(srv.Close)

	var h struct {
		Ok     bool   `json:"ok"`
		Ready  bool   `json:"ready"`
		Reason string `json:"reason"`
	}
	if resp := getJSON(t, srv.URL+"/healthz", &h); resp.StatusCode != http.StatusOK || !h.Ok || !h.Ready {
		t.Fatalf("idle server not ready: %d %+v", resp.StatusCode, h)
	}

	// Mid-reload: live but not ready.
	s.reloading.Store(true)
	if resp := getJSON(t, srv.URL+"/healthz", &h); resp.StatusCode != http.StatusServiceUnavailable || !h.Ok || h.Ready || !strings.Contains(h.Reason, "reload") {
		t.Fatalf("reloading server: %d %+v", resp.StatusCode, h)
	}
	s.reloading.Store(false)

	// Saturated: live but not ready.
	s.sem <- struct{}{}
	if resp := getJSON(t, srv.URL+"/healthz", &h); resp.StatusCode != http.StatusServiceUnavailable || h.Ready || !strings.Contains(h.Reason, "saturated") {
		t.Fatalf("saturated server: %d %+v", resp.StatusCode, h)
	}
	<-s.sem
	if resp := getJSON(t, srv.URL+"/healthz", &h); resp.StatusCode != http.StatusOK || !h.Ready {
		t.Fatalf("server did not recover readiness: %d %+v", resp.StatusCode, h)
	}
}

// TestServeShedsWhenSaturated is the admission-control acceptance pin:
// with the in-flight limit reached, the next query is rejected within
// 100ms with 503 + Retry-After instead of queueing, and the shed is
// counted in /api/stats.
func TestServeShedsWhenSaturated(t *testing.T) {
	if err := faultinject.Arm("engine.query", "sleep:500ms"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultinject.Reset)
	s := newServer(engine.New(engine.Config{}), serveOptions{MaxInflight: 1})
	srv := httptest.NewServer(s.handler())
	t.Cleanup(srv.Close)

	// Occupy the only slot with a slow query.
	slow := make(chan struct{})
	go func() {
		defer close(slow)
		resp, _, err := postJSONRaw(srv.URL+"/api/query", engine.Query{Expr: "aatb", Instance: []int{10, 20, 30}})
		if err == nil && resp.StatusCode != http.StatusOK {
			t.Errorf("slow query status %d", resp.StatusCode)
		}
	}()
	for i := 0; len(s.sem) == 0 && i < 2000; i++ {
		time.Sleep(time.Millisecond)
	}
	if len(s.sem) == 0 {
		t.Fatal("slow query never occupied the semaphore")
	}

	start := time.Now()
	resp, body := postJSON(t, srv.URL+"/api/query", engine.Query{Expr: "aatb", Instance: []int{11, 21, 31}})
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated query status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if elapsed > 100*time.Millisecond {
		t.Fatalf("shed took %v, want under 100ms", elapsed)
	}
	var stats serveStats
	getJSON(t, srv.URL+"/api/stats", &stats)
	if stats.Server.Shed != 1 || stats.Server.MaxInflight != 1 {
		t.Fatalf("server stats %+v", stats.Server)
	}
	<-slow
}

// TestServeQueryDeadline504 pins the deadline path over HTTP: a query
// whose timeout_ms expires fails promptly with 504, not 400, and not a
// hang for the query's natural duration.
func TestServeQueryDeadline504(t *testing.T) {
	if err := faultinject.Arm("engine.query", "sleep:5s"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultinject.Reset)
	srv := newTestServer(t)

	start := time.Now()
	resp, body := postJSON(t, srv.URL+"/api/query", map[string]any{
		"expr": "aatb", "instance": []int{10, 20, 30}, "timeout_ms": 20,
	})
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if elapsed > time.Second {
		t.Fatalf("deadline query took %v", elapsed)
	}
	var e map[string]string
	if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e["error"], "deadline") {
		t.Fatalf("error body %s", body)
	}
}

// slowServeExecutor delays each repetition so a deadline can expire
// mid-measurement (mirrors the engine package's slowExecutor).
type slowServeExecutor struct {
	exec.Executor
	delay time.Duration
}

func (s slowServeExecutor) TimeAlgorithm(alg *expr.Algorithm, rep uint64) []float64 {
	time.Sleep(s.delay)
	return s.Executor.TimeAlgorithm(alg, rep)
}

func (s slowServeExecutor) TimeCallCold(call kernels.Call, rep uint64) float64 {
	time.Sleep(s.delay)
	return s.Executor.TimeCallCold(call, rep)
}

// TestServeDeadlineDegradesOracle: an oracle query with a too-tight
// deadline still answers 200 — degraded to min-flops, with the reason
// in the record and the degradation counted.
func TestServeDeadlineDegradesOracle(t *testing.T) {
	srv := httptest.NewServer(newServer(engine.New(engine.Config{
		Executor: slowServeExecutor{exec.NewDefaultSimulated(), 30 * time.Millisecond},
		Reps:     3,
	}), serveOptions{}).handler())
	t.Cleanup(srv.Close)
	resp, body := postJSON(t, srv.URL+"/api/query", map[string]any{
		"expr": "aatb", "instance": []int{10, 20, 30}, "strategy": "oracle", "timeout_ms": 15,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rec engine.Record
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Strategy != "min-flops" || rec.Requested != "oracle" || rec.Degraded != engine.DegradedDeadline {
		t.Fatalf("record not degraded: %+v", rec)
	}
	var stats serveStats
	getJSON(t, srv.URL+"/api/stats", &stats)
	if stats.DegradedQueries != 1 {
		t.Fatalf("degraded_queries %d", stats.DegradedQueries)
	}
}

// TestServePanicRecovered: a handler panic becomes a 500 and a counter;
// the server keeps serving.
func TestServePanicRecovered(t *testing.T) {
	if err := faultinject.Arm("serve.query", "panic"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultinject.Reset)
	srv := newTestServer(t)

	resp, body := postJSON(t, srv.URL+"/api/query", engine.Query{Expr: "aatb", Instance: []int{10, 20, 30}})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking query status %d: %s", resp.StatusCode, body)
	}
	faultinject.Reset()
	resp, body = postJSON(t, srv.URL+"/api/query", engine.Query{Expr: "aatb", Instance: []int{10, 20, 30}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("server did not survive the panic: %d %s", resp.StatusCode, body)
	}
	var stats serveStats
	getJSON(t, srv.URL+"/api/stats", &stats)
	if stats.Server.Panics != 1 {
		t.Fatalf("panics counter %d", stats.Server.Panics)
	}
}

// TestServeBatchCapped: a batch beyond the limit is rejected whole with
// 400 before any query runs.
func TestServeBatchCapped(t *testing.T) {
	srv := newTestServer(t)
	req := batchRequest{Queries: make([]engine.Query, maxBatchQueries+1)}
	for i := range req.Queries {
		req.Queries[i] = engine.Query{Expr: "aatb", Instance: []int{10, 20, 30}}
	}
	resp, body := postJSON(t, srv.URL+"/api/batch", req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch status %d", resp.StatusCode)
	}
	var e map[string]string
	if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e["error"], "1024") {
		t.Fatalf("error body %s", body)
	}
	var stats serveStats
	getJSON(t, srv.URL+"/api/stats", &stats)
	if stats.Queries != 0 {
		t.Fatalf("rejected batch ran %d queries", stats.Queries)
	}
	// A batch within the limit runs.
	req.Queries = req.Queries[:2]
	if resp, body := postJSON(t, srv.URL+"/api/batch", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("small batch status %d: %s", resp.StatusCode, body)
	}
}

// TestServeDegradedWithoutProfiles: the degradation ladder over HTTP —
// min-predicted without a store answers 200 with the record stamped.
func TestServeDegradedWithoutProfiles(t *testing.T) {
	srv := newTestServer(t)
	resp, body := postJSON(t, srv.URL+"/api/query", engine.Query{
		Expr: "aatb", Instance: []int{80, 514, 768}, Strategy: "min-predicted",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rec engine.Record
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Strategy != "min-flops" || rec.Requested != "min-predicted" || rec.Degraded != engine.DegradedNoProfile {
		t.Fatalf("record %+v", rec)
	}
	var stats serveStats
	getJSON(t, srv.URL+"/api/stats", &stats)
	if stats.DegradedQueries != 1 {
		t.Fatalf("degraded_queries %d", stats.DegradedQueries)
	}
}

// writeTestProfileStore measures a small sim-backend store and persists
// it, returning the path it can be reloaded from.
func writeTestProfileStore(t *testing.T, name string) string {
	t.Helper()
	timer := exec.NewTimer(exec.NewDefaultSimulated())
	timer.Reps = 2
	set := profile.MeasureSet(timer, 2)
	path := filepath.Join(t.TempDir(), name)
	meta := profile.Meta{Source: name, Backend: timer.Exec.Name(), Reps: 2, GridPoints: 2}
	if err := profile.WriteFile(path, set, meta); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestServeAdminReload drives the hot-reload endpoint: the store is
// re-read from disk and swapped in, the generation climbs, and serving
// without -profile rejects the reload.
func TestServeAdminReload(t *testing.T) {
	path := writeTestProfileStore(t, "reload-test.json")
	set, meta, err := profile.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Config{Profiles: set, ProfileMeta: meta})
	s := newServer(eng, serveOptions{ProfilePath: path, Backend: exec.NewDefaultSimulated().Name()})
	srv := httptest.NewServer(s.handler())
	t.Cleanup(srv.Close)

	var out struct {
		Ok         bool   `json:"ok"`
		Profile    string `json:"profile"`
		Generation uint64 `json:"generation"`
	}
	resp, body := postJSON(t, srv.URL+"/api/admin/reload", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Ok || out.Generation != 2 {
		t.Fatalf("reload response %+v", out)
	}
	var stats serveStats
	getJSON(t, srv.URL+"/api/stats", &stats)
	if stats.Profile == nil || stats.Profile.Generation != 2 {
		t.Fatalf("stats profile %+v", stats.Profile)
	}

	// Without -profile there is nothing to reload.
	bare := newTestServer(t)
	if resp, _ := postJSON(t, bare.URL+"/api/admin/reload", struct{}{}); resp.StatusCode != http.StatusConflict {
		t.Fatalf("profile-less reload status %d", resp.StatusCode)
	}
}

// TestServeShutdownDrainsInflight is the graceful-shutdown pin: a query
// in flight when Shutdown begins completes with 200; the server stops
// only after it drains.
func TestServeShutdownDrainsInflight(t *testing.T) {
	if err := faultinject.Arm("engine.query", "sleep:250ms"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultinject.Reset)
	s := newServer(engine.New(engine.Config{}), serveOptions{MaxInflight: 4})
	srv := httptest.NewServer(s.handler())
	t.Cleanup(srv.Close)

	type result struct {
		status int
		err    error
	}
	resc := make(chan result, 1)
	go func() {
		resp, _, err := postJSONRaw(srv.URL+"/api/query", engine.Query{Expr: "aatb", Instance: []int{10, 20, 30}})
		if err != nil {
			resc <- result{0, err}
			return
		}
		resc <- result{resp.StatusCode, nil}
	}()
	// Wait until the query holds an in-flight slot.
	for i := 0; len(s.sem) == 0 && i < 2000; i++ {
		time.Sleep(time.Millisecond)
	}
	if len(s.sem) == 0 {
		t.Fatal("query never became in-flight")
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Config.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	res := <-resc
	if res.err != nil || res.status != http.StatusOK {
		t.Fatalf("in-flight query during shutdown: status %d err %v", res.status, res.err)
	}
}

// TestServeBootRestoreOutcomes drives server.restoreOutcomes: a
// snapshot on disk is restored into the engine at boot, a missing file
// is a clean fresh start, and a corrupt file refuses to boot.
func TestServeBootRestoreOutcomes(t *testing.T) {
	srv, eng := newProfiledTestServer(t)
	for alg := 1; alg <= 2; alg++ {
		resp, out := postJSON(t, srv.URL+"/api/feedback", engine.Feedback{
			Expr: "aatb", Instance: []int{80, 514, 768}, Algorithm: alg, Seconds: 1e-3,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("feedback: %d %s", resp.StatusCode, out)
		}
	}
	path := filepath.Join(t.TempDir(), "outcomes.json")
	if err := eng.SnapshotOutcomes().WriteFile(path); err != nil {
		t.Fatal(err)
	}

	timer := exec.NewTimer(exec.NewDefaultSimulated())
	timer.Reps = 2
	eng2 := engine.New(engine.Config{
		Profiles:    profile.MeasureSet(timer, 2),
		ProfileMeta: profile.Meta{Source: "test-profile.json"},
	})
	s2 := newServer(eng2, serveOptions{OutcomesPath: path})
	if err := s2.restoreOutcomes(); err != nil {
		t.Fatal(err)
	}
	if s := eng2.Stats(); s.FeedbackRestored != 2 || s.FeedbackInstances != 1 {
		t.Fatalf("restore counters FeedbackRestored=%d FeedbackInstances=%d", s.FeedbackRestored, s.FeedbackInstances)
	}

	// Missing file: fresh start, no error.
	s3 := newServer(engine.New(engine.Config{}), serveOptions{OutcomesPath: filepath.Join(t.TempDir(), "absent.json")})
	if err := s3.restoreOutcomes(); err != nil {
		t.Fatalf("missing snapshot: %v", err)
	}
	// Corrupt file: boot refuses rather than serving without the memory.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	s4 := newServer(engine.New(engine.Config{}), serveOptions{OutcomesPath: bad})
	if err := s4.restoreOutcomes(); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

// TestServeReloadRaceUnderTraffic races hot reloads against query
// traffic (run under -race in CI): every query answers, every reload
// succeeds, and the generation counts them all.
func TestServeReloadRaceUnderTraffic(t *testing.T) {
	path := writeTestProfileStore(t, "race-reload.json")
	set, meta, err := profile.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Config{Profiles: set, ProfileMeta: meta})
	s := newServer(eng, serveOptions{ProfilePath: path, Backend: exec.NewDefaultSimulated().Name()})
	srv := httptest.NewServer(s.handler())
	t.Cleanup(srv.Close)

	const reloads = 8
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				resp, body, err := postJSONRaw(srv.URL+"/api/query", engine.Query{
					Expr: "aatb", Instance: []int{20 + w, 30 + i, 40}, Strategy: "min-predicted",
				})
				if err != nil {
					t.Error(err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("query during reload: %d %s", resp.StatusCode, body)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < reloads; i++ {
			resp, body, err := postJSONRaw(srv.URL+"/api/admin/reload", struct{}{})
			if err != nil {
				t.Error(err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				t.Errorf("reload %d: %d %s", i, resp.StatusCode, body)
				return
			}
		}
	}()
	wg.Wait()
	var stats serveStats
	getJSON(t, srv.URL+"/api/stats", &stats)
	if stats.Profile == nil || stats.Profile.Generation != reloads+1 {
		t.Fatalf("generation %+v, want %d", stats.Profile, reloads+1)
	}
}
