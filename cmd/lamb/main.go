// Command lamb regenerates every table and figure of the paper
// "FLOPs as a Discriminant for Dense Linear Algebra Algorithms"
// (ICPP 2022) — see EXPERIMENTS.md for the recorded results.
//
// Usage:
//
//	lamb <subcommand> [flags]
//
// Subcommands:
//
//	figure1    kernel efficiency vs size (paper Figure 1)
//	enumerate  algorithm sets and FLOP counts (Figures 3 and 5)
//	exp1       random search for anomalies (Figures 6 and 9)
//	exp2       regions around anomalies (Figures 7, 8, 10, 11)
//	exp3       prediction from benchmarks (Tables 1 and 2)
//	select     algorithm-selection strategies (paper §5 conjecture);
//	           -instance queries the engine for one instance, -json
//	           emits the machine-readable selection record, -profile
//	           loads a persisted profile store instead of re-measuring
//	profile    measure the kernel grid once and write a schema-versioned
//	           PROFILE.json that serve/select load with -profile
//	serve      HTTP JSON selection endpoint over the cached query engine;
//	           -profile enables min-predicted and adaptive strategies,
//	           POST /api/feedback records measured outcomes
//	route      fault-tolerant shard router over -backends serve URLs:
//	           consistent hashing by (expression, shape octave), health
//	           probes, circuit breakers, retries with backoff, optional
//	           hedging (-hedge-after) and outcome gossip (-merge-every)
//	bench      kernel benchmark grid (BENCH_<n>.json with -json; whole-
//	           algorithm timings with -algs; fused-vs-sequential batch
//	           grid with -batch; diff two reports with
//	           -compare OLD.json NEW.json)
//	loadtest   load generator against a running serve or route: closed
//	           loop by default, coordinated-omission-free open loop with
//	           -rate N (uniform or Poisson arrivals); honors Retry-After
//	           on 503; latency percentiles, throughput, cache deltas
//	all        the full paper pipeline for both of the paper's expressions
//
// The generated expressions extend the study beyond the paper: lstsq
// (X := (A·Aᵀ+R)⁻¹·A·B), the Gram-chain hybrid aatbc (X := A·Aᵀ·B·C),
// and gls (X := (A·Aᵀ+R)⁻¹·A·B·C). Run them with
// `lamb exp1|exp2|exp3|enumerate -expr <name>`.
//
// Common flags (accepted by the experiment subcommands):
//
//	-expr NAME         expression to study: chain, aatb, lstsq, aatbc, gls (default chain)
//	-backend sim|blas  simulated machine or measured pure-Go BLAS (default sim)
//	-scale paper|quick paper-scale or smoke-test configuration (default quick)
//	-seed N            master seed (default 42)
//	-reps N            timing repetitions (default 10, the paper's value)
//	-out DIR           also write raw CSV data into DIR
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"lamb"
	"lamb/internal/engine"
	"lamb/internal/profile"
	"lamb/internal/report"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "figure1":
		err = cmdFigure1(args)
	case "enumerate":
		err = cmdEnumerate(args)
	case "exp1":
		err = cmdExp1(args)
	case "exp2":
		err = cmdExp2(args)
	case "exp3":
		err = cmdExp3(args)
	case "select":
		err = cmdSelect(args)
	case "profile":
		err = cmdProfile(args)
	case "serve":
		err = cmdServe(args)
	case "route":
		err = cmdRoute(args)
	case "bench":
		err = cmdBench(args)
	case "loadtest":
		err = cmdLoadtest(args)
	case "all":
		err = cmdAll(args)
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "lamb: unknown subcommand %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "lamb %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: lamb <subcommand> [flags]

subcommands:
  figure1    kernel efficiency vs size (Figure 1)
  enumerate  algorithm sets and FLOP counts (Figures 3, 5)
  exp1       random search for anomalies (Figures 6, 9)
  exp2       regions around anomalies (Figures 7, 8, 10, 11)
  exp3       prediction from benchmarks (Tables 1, 2)
  select     algorithm-selection strategies; -instance picks one
             algorithm through the engine (-json for the record,
             -profile loads a persisted profile store)
  profile    measure the kernel grid once, write PROFILE.json
  serve      HTTP JSON selection endpoint over the query engine
             (-profile serves min-predicted/adaptive, /api/feedback
             records outcomes)
  route      shard router over -backends serve URLs: consistent
             hashing, health probes, breakers, retries, hedging, and
             outcome gossip; degrades to a local min-flops engine
  bench      kernel benchmark grid (writes BENCH_<n>.json with -json;
             -algs times whole algorithms; -batch runs the fused-vs-
             sequential batch grid; -compare OLD NEW diffs reports)
  loadtest   drive a running serve/route with query/batch traffic and
             report latency percentiles, throughput, and cache hit
             rates; -rate N switches to an open-loop arrival schedule
             (coordinated-omission-free), 503 Retry-After is honored
  all        full paper pipeline

run 'lamb <subcommand> -h' for flags`)
}

// commonFlags holds the flags shared by experiment subcommands.
type commonFlags struct {
	exprName string
	backend  string
	scale    string
	seed     uint64
	reps     int
	workers  int
	outDir   string
}

func registerCommon(fs *flag.FlagSet) *commonFlags {
	c := &commonFlags{}
	fs.StringVar(&c.exprName, "expr", "chain",
		"expression: "+strings.Join(lamb.Expressions(), ", "))
	fs.StringVar(&c.backend, "backend", "sim", "backend: sim (simulated machine) or blas (measured pure-Go BLAS)")
	fs.StringVar(&c.scale, "scale", "quick", "scale: quick or paper")
	fs.Uint64Var(&c.seed, "seed", 42, "master seed")
	fs.IntVar(&c.reps, "reps", 10, "timing repetitions per test")
	fs.IntVar(&c.workers, "workers", 0, "parallel evaluation workers (sim backend only; 0 = GOMAXPROCS)")
	fs.StringVar(&c.outDir, "out", "", "directory for raw CSV output (optional)")
	return c
}

func (c *commonFlags) expression() (lamb.Expression, error) {
	return lamb.LookupExpression(c.exprName)
}

func (c *commonFlags) executor() (lamb.Executor, error) {
	switch c.backend {
	case "sim":
		return lamb.NewSimExecutor(), nil
	case "blas":
		return lamb.NewMeasuredExecutor(), nil
	default:
		return nil, fmt.Errorf("unknown backend %q (want sim or blas)", c.backend)
	}
}

func (c *commonFlags) timer() (*lamb.Timer, error) {
	e, err := c.executor()
	if err != nil {
		return nil, err
	}
	t := lamb.NewTimer(e)
	t.Reps = c.reps
	return t, nil
}

// engine builds the selection engine for the chosen backend. The
// experiment pipeline, `select`, and `serve` all route through one
// engine, so enumeration, binding, and plan compilation are cached in
// one place. Non-positive capacities fall back to the engine defaults.
func (c *commonFlags) engine(bindEntries, planEntries int) (*engine.Engine, error) {
	return c.engineWithProfiles(bindEntries, planEntries, "", 0, 0)
}

// engineWithProfiles is engine plus a persisted profile store: when
// profilePath is non-empty the store is loaded and the engine serves
// the profile-backed strategies (min-predicted, adaptive) without any
// serve-time measurement, carrying the store's provenance into stats
// and records. outcomeHalfLife configures the feedback store's weight
// decay (0 disables it); exploreRate enables Thompson-sampling
// exploration on adaptive queries (0 — the default — never explores).
func (c *commonFlags) engineWithProfiles(bindEntries, planEntries int, profilePath string, outcomeHalfLife time.Duration, exploreRate float64) (*engine.Engine, error) {
	e, err := c.executor()
	if err != nil {
		return nil, err
	}
	cfg := engine.Config{
		Executor:        e,
		Reps:            c.reps,
		BindEntries:     bindEntries,
		PlanEntries:     planEntries,
		OutcomeHalfLife: outcomeHalfLife,
		ExploreRate:     exploreRate,
	}
	if profilePath != "" {
		set, meta, err := loadProfileStore(profilePath, e.Name())
		if err != nil {
			return nil, err
		}
		cfg.Profiles = set
		cfg.ProfileMeta = meta
	}
	return engine.New(cfg), nil
}

// loadProfileStore loads a persisted profile store for prediction on
// the named backend. A store measured on one backend predicts garbage
// for another (simulated rates say nothing about the measured BLAS),
// so a mismatch warns — rather than refuses: loading a profile from
// another machine of the same backend family is a deliberate
// cross-machine study. Shared by serve and both select modes.
func loadProfileStore(path, backendName string) (*profile.Set, profile.Meta, error) {
	set, meta, err := profile.ReadFile(path)
	if err != nil {
		return nil, profile.Meta{}, err
	}
	if meta.Backend != "" && meta.Backend != backendName {
		fmt.Fprintf(os.Stderr, "lamb: warning: profile store %s was measured on backend %q but predicting for %q — predictions may not transfer\n",
			path, meta.Backend, backendName)
	}
	return set, meta, nil
}

// box returns the search space: the paper's box on the sim backend, a
// small box on the measured backend (pure-Go kernels at size 1200 would
// make the paper box prohibitively slow).
func (c *commonFlags) box(arity int) lamb.Box {
	if c.backend == "blas" {
		return lamb.UniformBox(arity, 16, 192)
	}
	return lamb.PaperBox(arity)
}

// exp1Target returns (target anomalies, max samples) per scale/expression.
func (c *commonFlags) exp1Target(exprName string) (int, int) {
	if c.backend == "blas" {
		return 3, 400
	}
	if c.scale == "paper" {
		if exprName == "chain" {
			return 100, 200_000
		}
		return 1000, 40_000
	}
	if exprName == "chain" {
		return 10, 30_000
	}
	return 50, 2_000
}

// exp2Anomalies caps how many anomalies are traversed in Experiment 2.
func (c *commonFlags) exp2Anomalies() int {
	if c.backend == "blas" {
		return 2
	}
	if c.scale == "paper" {
		return 1 << 30 // all
	}
	return 15
}

// writeCSV writes rows to dir/name if -out was given.
func (c *commonFlags) writeCSV(name string, rows [][]string) error {
	if c.outDir == "" {
		return nil
	}
	if err := os.MkdirAll(c.outDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(c.outDir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := report.CSV(f, rows); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", filepath.Join(c.outDir, name))
	return nil
}

// parseInstance parses "100,200,300" into an Instance.
func parseInstance(s string, arity int) (lamb.Instance, error) {
	parts := strings.Split(s, ",")
	if len(parts) != arity {
		return nil, fmt.Errorf("instance %q has %d dims, want %d", s, len(parts), arity)
	}
	inst := make(lamb.Instance, arity)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad dimension %q", p)
		}
		inst[i] = v
	}
	return inst, nil
}

func fmtPct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
