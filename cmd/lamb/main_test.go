package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestParseInstance(t *testing.T) {
	inst, err := parseInstance("100, 200,300", 3)
	if err != nil {
		t.Fatal(err)
	}
	if inst[0] != 100 || inst[1] != 200 || inst[2] != 300 {
		t.Fatalf("instance %v", inst)
	}
	if _, err := parseInstance("1,2", 3); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if _, err := parseInstance("1,x,3", 3); err == nil {
		t.Fatal("non-numeric accepted")
	}
	if _, err := parseInstance("1,0,3", 3); err == nil {
		t.Fatal("non-positive accepted")
	}
}

func TestCommonFlagsValidation(t *testing.T) {
	c := &commonFlags{exprName: "nope", backend: "sim"}
	if _, err := c.expression(); err == nil {
		t.Fatal("bad expression accepted")
	}
	c = &commonFlags{exprName: "chain", backend: "nope"}
	if _, err := c.timer(); err == nil {
		t.Fatal("bad backend accepted")
	}
	c = &commonFlags{exprName: "aatb", backend: "sim", reps: 3}
	e, err := c.expression()
	if err != nil || e.Arity() != 3 {
		t.Fatalf("aatb expression: %v, %v", e, err)
	}
	timer, err := c.timer()
	if err != nil || timer.Reps != 3 {
		t.Fatalf("timer: %+v, %v", timer, err)
	}
}

func TestScaleTargets(t *testing.T) {
	c := &commonFlags{scale: "paper", backend: "sim"}
	target, maxS := c.exp1Target("chain")
	if target != 100 || maxS < 100_000 {
		t.Fatalf("paper chain target %d/%d", target, maxS)
	}
	target, _ = c.exp1Target("aatb")
	if target != 1000 {
		t.Fatalf("paper aatb target %d", target)
	}
	c.scale = "quick"
	if target, _ = c.exp1Target("chain"); target != 10 {
		t.Fatalf("quick chain target %d", target)
	}
	c.backend = "blas"
	if target, _ = c.exp1Target("chain"); target != 3 {
		t.Fatalf("blas chain target %d", target)
	}
}

func TestBoxSelection(t *testing.T) {
	c := &commonFlags{backend: "sim"}
	if b := c.box(3); b.Hi[0] != 1200 {
		t.Fatalf("sim box %+v", b)
	}
	c.backend = "blas"
	if b := c.box(3); b.Hi[0] > 256 {
		t.Fatalf("blas box too large: %+v", b)
	}
}

func TestWriteCSV(t *testing.T) {
	dir := t.TempDir()
	c := &commonFlags{outDir: dir}
	if err := c.writeCSV("x.csv", [][]string{{"a", "b"}, {"1", "2"}}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "x.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "a,b\n1,2\n" {
		t.Fatalf("csv %q", data)
	}
	// No -out: a silent no-op.
	c2 := &commonFlags{}
	if err := c2.writeCSV("y.csv", nil); err != nil {
		t.Fatal(err)
	}
}

func TestCmdEnumerateRuns(t *testing.T) {
	// The enumerate subcommand is pure computation: run it end-to-end.
	if err := cmdEnumerate([]string{"-expr", "aatb"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdEnumerate([]string{"-terms", "5"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdEnumerate([]string{"-expr", "chain", "-inst", "50,60,70,80,90"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdExp1QuickRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := cmdExp1([]string{"-expr", "aatb", "-scale", "quick"}); err != nil {
		t.Fatal(err)
	}
}

func TestFlagSetHelper(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	v := fs.Int("max", 1, "")
	_ = v
	if err := fs.Parse([]string{"-max", "5"}); err != nil {
		t.Fatal(err)
	}
	if !flagSet(fs, "max") {
		t.Fatal("flagSet should report set flag")
	}
	if flagSet(fs, "other") {
		t.Fatal("flagSet reported unset flag")
	}
}
