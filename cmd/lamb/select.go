package main

import (
	"flag"
	"fmt"
	"os"

	"lamb"
	"lamb/internal/report"
)

// cmdSelect compares algorithm-selection strategies: the paper's MinFlops
// baseline, the proposed FLOPs+profiles discriminant, and the measuring
// oracle. This operationalises the paper's concluding conjecture.
func cmdSelect(args []string) error {
	fs := flag.NewFlagSet("select", flag.ExitOnError)
	c := registerCommon(fs)
	instances := fs.Int("instances", 150, "number of random instances")
	gridPoints := fs.Int("grid", 8, "profile grid points per dimension")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := newPipeline(c)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "measuring kernel profiles (%d^3 grid per kernel)...\n", *gridPoints)
	profiles := lamb.MeasureProfiles(p.timer, *gridPoints)
	strategies := []lamb.Strategy{
		lamb.MinFlops{},
		lamb.MinPredicted{Profiles: profiles},
		lamb.Oracle{Timer: p.timer},
	}
	reports := lamb.EvaluateStrategies(p.e, p.timer, strategies, lamb.SelectionConfig{
		Box:       c.box(p.e.Arity()),
		Instances: *instances,
		Seed:      c.seed,
	})
	fmt.Printf("Algorithm selection on %s (%d instances, backend %s)\n\n", p.e.Name(), *instances, c.backend)
	rows := [][]string{{"strategy", "optimal picks", "mean regret", "max regret", "worst instance"}}
	for _, r := range reports {
		rows = append(rows, []string{
			r.Strategy,
			fmt.Sprintf("%d/%d", r.OptimalPicks, r.Instances),
			fmtPct(r.Regret.Mean()),
			fmtPct(r.Regret.Max),
			r.WorstInstance.String(),
		})
	}
	return report.Table(os.Stdout, rows)
}
