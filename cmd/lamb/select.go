package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"lamb"
	"lamb/internal/engine"
	"lamb/internal/report"
)

// cmdSelect answers selection queries through the engine. Two modes:
//
//   - with -instance, a single query: "which algorithm for these
//     sizes?" The answer is the engine's selection record — rendered as
//     a table, or with -json as the same machine-readable record the
//     `lamb serve` endpoint emits.
//   - without -instance, the strategy-evaluation study: the paper's
//     MinFlops baseline, the proposed FLOPs+profiles discriminant, and
//     the measuring oracle compared by regret over random instances
//     (the paper's concluding conjecture, operationalised).
func cmdSelect(args []string) error {
	fs := flag.NewFlagSet("select", flag.ExitOnError)
	c := registerCommon(fs)
	instances := fs.Int("instances", 150, "number of random instances (evaluation mode)")
	gridPoints := fs.Int("grid", 8, "profile grid points per dimension")
	instFlag := fs.String("instance", "", "query one instance, e.g. 100,200,300 (query mode)")
	strategy := fs.String("strategy", engine.DefaultStrategy, "query-mode strategy: min-flops, min-predicted, adaptive, or oracle")
	profilePath := fs.String("profile", "", "persisted kernel-profile store (skips profile measurement)")
	jsonOut := fs.Bool("json", false, "emit the machine-readable selection record (query mode)")
	deadline := fs.Duration("deadline", 0, "query-mode deadline (0 = none; timed strategies degrade to min-flops when it expires)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *instFlag != "" {
		return selectQuery(c, *instFlag, *strategy, *profilePath, *gridPoints, *jsonOut, *deadline)
	}
	if *jsonOut {
		return fmt.Errorf("-json requires -instance (the record describes one query)")
	}
	return selectEvaluate(c, *instances, *gridPoints, *profilePath)
}

// selectQuery answers one instance query through the engine. Profiles
// come from a persisted store when -profile is given; otherwise the
// profile-backed strategies measure once on the same backend the engine
// then serves from.
func selectQuery(c *commonFlags, instFlag, strategy, profilePath string, gridPoints int, jsonOut bool, deadline time.Duration) error {
	ex, err := c.executor()
	if err != nil {
		return err
	}
	var profiles *lamb.ProfileSet
	var meta lamb.ProfileMeta
	switch {
	case profilePath != "":
		profiles, meta, err = loadProfileStore(profilePath, ex.Name())
		if err != nil {
			return err
		}
	case strategy == "min-predicted" || strategy == "adaptive":
		fmt.Fprintf(os.Stderr, "measuring kernel profiles (%d^3 grid per kernel)...\n", gridPoints)
		t := lamb.NewTimer(ex)
		t.Reps = c.reps
		profiles = lamb.MeasureProfiles(t, gridPoints)
		meta = measuredMeta(ex, c.reps, gridPoints)
	}
	eng := engine.New(engine.Config{Executor: ex, Reps: c.reps, Profiles: profiles, ProfileMeta: meta})
	x, err := eng.Expression(c.exprName)
	if err != nil {
		return err
	}
	inst, err := parseInstance(instFlag, x.Arity())
	if err != nil {
		return err
	}
	ctx := context.Background()
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}
	res := eng.Do(ctx, engine.Request{Queries: []engine.Query{{Expr: c.exprName, Instance: inst, Strategy: strategy}}})
	rec := res[0].Record
	if res[0].Err != nil {
		return res[0].Err
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rec)
	}
	fmt.Printf("%s %v (strategy %s, backend %s): algorithm %d of %d\n",
		rec.Expr, rec.Instance, rec.Strategy, rec.Backend, rec.Selected.Index, rec.NumAlgorithms)
	anomaly := ""
	if rec.Anomaly {
		anomaly = "  ANOMALY: evidence contradicts the min-FLOPs pick"
	}
	fmt.Printf("confidence %.3f (probability the top pick is actually fastest vs the runner-up)%s\n\n", rec.Confidence, anomaly)
	// p_best comes from the ranking, which orders algorithms by posterior
	// mean; the table keeps enumeration order, so join on the index.
	pBest := make(map[int]float64, len(rec.Ranking))
	for _, entry := range rec.Ranking {
		pBest[entry.Alg] = entry.PBest
	}
	rows := [][]string{{"#", "algorithm", "FLOPs", "p(best)", "selected"}}
	for _, cand := range rec.Candidates {
		mark := ""
		if cand.Index == rec.Selected.Index {
			mark = "<=="
		}
		rows = append(rows, []string{
			fmt.Sprint(cand.Index), cand.Name, fmt.Sprintf("%.0f", cand.Flops),
			fmt.Sprintf("%.3f", pBest[cand.Index]), mark,
		})
	}
	return report.Table(os.Stdout, rows)
}

// selectEvaluate runs the strategy-regret study through the engine's
// expression and timer (so repeated instances bind once and, on the
// measured backend, plans are cached across strategies).
func selectEvaluate(c *commonFlags, instances, gridPoints int, profilePath string) error {
	p, err := newPipeline(c)
	if err != nil {
		return err
	}
	var profiles *lamb.ProfileSet
	if profilePath != "" {
		profiles, _, err = loadProfileStore(profilePath, p.timer.Exec.Name())
		if err != nil {
			return err
		}
	} else {
		fmt.Fprintf(os.Stderr, "measuring kernel profiles (%d^3 grid per kernel)...\n", gridPoints)
		profiles = lamb.MeasureProfiles(p.timer, gridPoints)
	}
	strategies := []lamb.Strategy{
		lamb.MinFlops{},
		lamb.MinPredicted{Profiles: profiles},
		lamb.Oracle{Timer: p.timer},
	}
	reports := lamb.EvaluateStrategies(p.e, p.timer, strategies, lamb.SelectionConfig{
		Box:       c.box(p.e.Arity()),
		Instances: instances,
		Seed:      c.seed,
	})
	fmt.Printf("Algorithm selection on %s (%d instances, backend %s)\n\n", p.e.Name(), instances, c.backend)
	rows := [][]string{{"strategy", "optimal picks", "mean regret", "max regret", "worst instance"}}
	for _, r := range reports {
		rows = append(rows, []string{
			r.Strategy,
			fmt.Sprintf("%d/%d", r.OptimalPicks, r.Instances),
			fmtPct(r.Regret.Mean()),
			fmtPct(r.Regret.Max),
			r.WorstInstance.String(),
		})
	}
	return report.Table(os.Stdout, rows)
}
