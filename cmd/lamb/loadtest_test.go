package main

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"lamb/internal/engine"
	"lamb/internal/exec"
)

// TestLoadtestAgainstServeBatch drives the loadtest generator against an
// in-process serve handler in batch mode and checks the traffic actually
// flowed: queries answered, duplicates coalesced within batches, and no
// request errors (cmdLoadtest fails on any).
func TestLoadtestAgainstServeBatch(t *testing.T) {
	eng := engine.New(engine.Config{})
	srv := httptest.NewServer(serveMux(eng))
	defer srv.Close()
	err := cmdLoadtest([]string{
		"-target", srv.URL, "-duration", "200ms", "-concurrency", "2",
		"-batch", "8", "-spread", "3", "-expr", "aatb", "-instance", "16,8,8",
	})
	if err != nil {
		t.Fatalf("cmdLoadtest: %v", err)
	}
	s := eng.Stats()
	if s.Queries == 0 {
		t.Error("no queries reached the engine")
	}
	// Batches of 8 over 3 distinct instances coalesce 5 duplicates each.
	if s.Coalesced == 0 {
		t.Error("batched duplicates were not coalesced")
	}
}

// TestLoadtestAgainstServeQuery covers the single-query mode and the
// unreachable-target error path.
func TestLoadtestAgainstServeQuery(t *testing.T) {
	eng := engine.New(engine.Config{})
	srv := httptest.NewServer(serveMux(eng))
	defer srv.Close()
	err := cmdLoadtest([]string{
		"-target", srv.URL, "-duration", "100ms", "-concurrency", "1",
		"-expr", "chain", "-instance", "8,8,8,8,8",
	})
	if err != nil {
		t.Fatalf("cmdLoadtest: %v", err)
	}
	if eng.Stats().Queries == 0 {
		t.Error("no queries reached the engine")
	}
	srv.Close()
	if err := cmdLoadtest([]string{"-target", srv.URL, "-duration", "50ms"}); err == nil {
		t.Error("unreachable target did not fail")
	}
}

// TestLoadtestOpenLoop runs the -rate open-loop mode (both arrival
// processes) against an in-process serve and checks arrivals were
// scheduled and answered, plus the flag validation paths.
func TestLoadtestOpenLoop(t *testing.T) {
	eng := engine.New(engine.Config{})
	srv := httptest.NewServer(serveMux(eng))
	defer srv.Close()
	for _, arrivals := range []string{"uniform", "poisson"} {
		err := cmdLoadtest([]string{
			"-target", srv.URL, "-duration", "250ms", "-rate", "200",
			"-arrivals", arrivals, "-expr", "aatb", "-instance", "16,8,8",
		})
		if err != nil {
			t.Fatalf("open loop (%s arrivals): %v", arrivals, err)
		}
	}
	if eng.Stats().Queries == 0 {
		t.Error("no queries reached the engine")
	}
	for _, bad := range [][]string{
		{"-target", srv.URL, "-rate", "-1"},
		{"-target", srv.URL, "-rate", "100", "-max-outstanding", "0"},
		{"-target", srv.URL, "-arrivals", "bursty"},
	} {
		if err := cmdLoadtest(bad); err == nil {
			t.Errorf("args %v did not fail", bad)
		}
	}
}

// TestLoadtestHonorsRetryAfter scripts a server that sheds each client's
// first attempt with a 503 + Retry-After: 0 and serves the retry. With
// the retry budget on, every request must eventually succeed (cmdLoadtest
// errors otherwise) — the generator slept as told instead of counting
// the shed as terminal.
func TestLoadtestHonorsRetryAfter(t *testing.T) {
	eng := engine.New(engine.Config{})
	mux := serveMux(eng)
	var hits atomic.Uint64
	var sheds atomic.Uint64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/api/query" && hits.Add(1)%2 == 1 {
			sheds.Add(1)
			w.Header().Set("Retry-After", "0")
			http.Error(w, "shedding", http.StatusServiceUnavailable)
			return
		}
		mux.ServeHTTP(w, r)
	}))
	defer srv.Close()
	err := cmdLoadtest([]string{
		"-target", srv.URL, "-duration", "150ms", "-concurrency", "1",
		"-retry-503", "2", "-expr", "aatb", "-instance", "16,8,8",
	})
	if err != nil {
		t.Fatalf("cmdLoadtest with Retry-After shedding: %v", err)
	}
	if sheds.Load() == 0 {
		t.Fatal("server never shed — test exercised nothing")
	}
	if eng.Stats().Queries == 0 {
		t.Error("no retried queries reached the engine")
	}
}

// TestLoadtestBatchMix drives -batch-mix against a measured-backend serve:
// every batch carries compute-mode queries with dimensions sampled inside
// the base instance's octave, so the run must land queries on the fused
// execution path (FusedQueries counts result executions too). Also covers
// the flag validation: -batch-mix without -batch > 1 is an error.
func TestLoadtestBatchMix(t *testing.T) {
	eng := engine.New(engine.Config{Executor: exec.NewMeasured()})
	srv := httptest.NewServer(serveMux(eng))
	defer srv.Close()
	err := cmdLoadtest([]string{
		"-target", srv.URL, "-duration", "300ms", "-concurrency", "2",
		"-batch", "6", "-batch-mix", "-spread", "4", "-expr", "aatb", "-instance", "16,8,8",
	})
	if err != nil {
		t.Fatalf("cmdLoadtest -batch-mix: %v", err)
	}
	s := eng.Stats()
	if s.Queries == 0 {
		t.Fatal("no queries reached the engine")
	}
	if s.FusedQueries == 0 {
		t.Error("batch-mix traffic never hit the fused execution path")
	}
	if err := cmdLoadtest([]string{"-target", srv.URL, "-batch-mix"}); err == nil {
		t.Error("-batch-mix without -batch > 1 did not fail")
	}
}
