package main

import (
	"net/http/httptest"
	"testing"

	"lamb/internal/engine"
)

// TestLoadtestAgainstServeBatch drives the loadtest generator against an
// in-process serve handler in batch mode and checks the traffic actually
// flowed: queries answered, duplicates coalesced within batches, and no
// request errors (cmdLoadtest fails on any).
func TestLoadtestAgainstServeBatch(t *testing.T) {
	eng := engine.New(engine.Config{})
	srv := httptest.NewServer(serveMux(eng))
	defer srv.Close()
	err := cmdLoadtest([]string{
		"-target", srv.URL, "-duration", "200ms", "-concurrency", "2",
		"-batch", "8", "-spread", "3", "-expr", "aatb", "-instance", "16,8,8",
	})
	if err != nil {
		t.Fatalf("cmdLoadtest: %v", err)
	}
	s := eng.Stats()
	if s.Queries == 0 {
		t.Error("no queries reached the engine")
	}
	// Batches of 8 over 3 distinct instances coalesce 5 duplicates each.
	if s.Coalesced == 0 {
		t.Error("batched duplicates were not coalesced")
	}
}

// TestLoadtestAgainstServeQuery covers the single-query mode and the
// unreachable-target error path.
func TestLoadtestAgainstServeQuery(t *testing.T) {
	eng := engine.New(engine.Config{})
	srv := httptest.NewServer(serveMux(eng))
	defer srv.Close()
	err := cmdLoadtest([]string{
		"-target", srv.URL, "-duration", "100ms", "-concurrency", "1",
		"-expr", "chain", "-instance", "8,8,8,8,8",
	})
	if err != nil {
		t.Fatalf("cmdLoadtest: %v", err)
	}
	if eng.Stats().Queries == 0 {
		t.Error("no queries reached the engine")
	}
	srv.Close()
	if err := cmdLoadtest([]string{"-target", srv.URL, "-duration", "50ms"}); err == nil {
		t.Error("unreachable target did not fail")
	}
}
