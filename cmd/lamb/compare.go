package main

// lamb bench -compare OLD.json NEW.json — diff two BENCH_<n>.json
// reports point by point, so the committed benchmark trajectory is
// actually reviewable: per-point GFLOP/s deltas, added/removed points,
// and a nonzero exit when any common point regresses by more than 10%.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"lamb/internal/exec"
	"lamb/internal/report"
)

// regressionTolerance is the fractional median-GFLOP/s drop on a common
// point beyond which the comparison fails.
const regressionTolerance = 0.10

// benchPointKey identifies a kernel grid point across reports.
type benchPointKey struct {
	Kernel         string
	M, N, K        int
	TransA, TransB bool
}

// algPointKey identifies a whole-algorithm point across reports.
type algPointKey struct {
	Expr string
	Inst string
	Alg  int
}

// batchPointKey identifies a fused-batch point across reports.
type batchPointKey struct {
	Expr  string
	Inst  string
	Alg   int
	Count int
}

func benchKey(r exec.BenchResult) benchPointKey {
	return benchPointKey{Kernel: r.Kernel, M: r.M, N: r.N, K: r.K, TransA: r.TransA, TransB: r.TransB}
}

// kernelLabel renders a grid point's kernel name with its transposition
// pattern, e.g. "gemm(Aᵀ)".
func kernelLabel(r exec.BenchResult) string {
	switch {
	case r.TransA && r.TransB:
		return r.Kernel + "(AᵀBᵀ)"
	case r.TransA:
		return r.Kernel + "(Aᵀ)"
	case r.TransB:
		return r.Kernel + "(Bᵀ)"
	default:
		return r.Kernel
	}
}

func loadBench(path string) (*exec.BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep exec.BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// compareBench prints the per-point deltas between two reports and
// returns an error (nonzero exit) if any common point regressed by more
// than regressionTolerance on median GFLOP/s.
func compareBench(w io.Writer, oldPath, newPath string) error {
	oldRep, err := loadBench(oldPath)
	if err != nil {
		return err
	}
	newRep, err := loadBench(newPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "bench compare: %s (peak %.2f) -> %s (peak %.2f)\n\n",
		oldPath, oldRep.PeakGFlops, newPath, newRep.PeakGFlops)

	oldPoints := make(map[benchPointKey]exec.BenchResult, len(oldRep.Results))
	for _, r := range oldRep.Results {
		oldPoints[benchKey(r)] = r
	}
	var regressions []string
	rows := [][]string{{"kernel", "m", "n", "k", "old GF", "new GF", "delta", ""}}
	common := 0
	for _, nr := range newRep.Results {
		or, ok := oldPoints[benchKey(nr)]
		if !ok {
			rows = append(rows, []string{kernelLabel(nr), fmt.Sprint(nr.M), fmt.Sprint(nr.N), fmt.Sprint(nr.K),
				"-", fmt.Sprintf("%.2f", nr.GFlops), "", "added"})
			continue
		}
		common++
		delete(oldPoints, benchKey(nr))
		if or.GFlops <= 0 {
			// A zero baseline (truncated or hand-edited report) can't be
			// compared; flag it instead of printing a misleading +0.0%.
			rows = append(rows, []string{kernelLabel(nr), fmt.Sprint(nr.M), fmt.Sprint(nr.N), fmt.Sprint(nr.K),
				fmt.Sprintf("%.2f", or.GFlops), fmt.Sprintf("%.2f", nr.GFlops), "", "no baseline"})
			continue
		}
		delta := nr.GFlops/or.GFlops - 1
		note := ""
		if delta < -regressionTolerance {
			note = "REGRESSION"
			regressions = append(regressions, fmt.Sprintf("%s m=%d n=%d k=%d: %.2f -> %.2f GFLOP/s (%.1f%%)",
				kernelLabel(nr), nr.M, nr.N, nr.K, or.GFlops, nr.GFlops, 100*delta))
		}
		rows = append(rows, []string{kernelLabel(nr), fmt.Sprint(nr.M), fmt.Sprint(nr.N), fmt.Sprint(nr.K),
			fmt.Sprintf("%.2f", or.GFlops), fmt.Sprintf("%.2f", nr.GFlops),
			fmt.Sprintf("%+.1f%%", 100*delta), note})
	}
	for _, or := range oldRep.Results {
		if _, ok := oldPoints[benchKey(or)]; ok {
			rows = append(rows, []string{kernelLabel(or), fmt.Sprint(or.M), fmt.Sprint(or.N), fmt.Sprint(or.K),
				fmt.Sprintf("%.2f", or.GFlops), "-", "", "removed"})
		}
	}
	if err := report.Table(w, rows); err != nil {
		return err
	}

	// Whole-algorithm points, when both reports carry them.
	oldAlgs := make(map[algPointKey]exec.AlgBenchResult, len(oldRep.Algorithms))
	for _, a := range oldRep.Algorithms {
		oldAlgs[algPointKey{a.Expr, a.Inst, a.Alg}] = a
	}
	if len(newRep.Algorithms) > 0 && len(oldAlgs) > 0 {
		fmt.Fprintln(w)
		rows := [][]string{{"expr", "inst", "alg", "old GF", "new GF", "delta", ""}}
		for _, na := range newRep.Algorithms {
			oa, ok := oldAlgs[algPointKey{na.Expr, na.Inst, na.Alg}]
			if !ok {
				continue
			}
			common++
			if oa.GFlops <= 0 {
				rows = append(rows, []string{na.Expr, na.Inst, fmt.Sprint(na.Alg),
					fmt.Sprintf("%.2f", oa.GFlops), fmt.Sprintf("%.2f", na.GFlops), "", "no baseline"})
				continue
			}
			delta := na.GFlops/oa.GFlops - 1
			note := ""
			if delta < -regressionTolerance {
				note = "REGRESSION"
				regressions = append(regressions, fmt.Sprintf("%s %s alg %d: %.2f -> %.2f GFLOP/s (%.1f%%)",
					na.Expr, na.Inst, na.Alg, oa.GFlops, na.GFlops, 100*delta))
			}
			rows = append(rows, []string{na.Expr, na.Inst, fmt.Sprint(na.Alg),
				fmt.Sprintf("%.2f", oa.GFlops), fmt.Sprintf("%.2f", na.GFlops),
				fmt.Sprintf("%+.1f%%", 100*delta), note})
		}
		if err := report.Table(w, rows); err != nil {
			return err
		}
	}

	// Fused-batch points, when both reports carry them. These deltas are
	// informational only: fused throughput on small instances is noisy
	// (and host-parallelism dependent), so batch points never make the
	// comparison exit nonzero.
	oldBatches := make(map[batchPointKey]exec.BatchBenchResult, len(oldRep.Batches))
	for _, b := range oldRep.Batches {
		oldBatches[batchPointKey{b.Expr, b.Inst, b.Alg, b.Count}] = b
	}
	if len(newRep.Batches) > 0 && len(oldBatches) > 0 {
		fmt.Fprintln(w)
		rows := [][]string{{"expr", "inst", "batch", "old fused q/s", "new fused q/s", "delta", "old speedup", "new speedup"}}
		for _, nb := range newRep.Batches {
			ob, ok := oldBatches[batchPointKey{nb.Expr, nb.Inst, nb.Alg, nb.Count}]
			if !ok {
				continue
			}
			common++
			delta := "-"
			if ob.FusedQPS > 0 {
				delta = fmt.Sprintf("%+.1f%%", 100*(nb.FusedQPS/ob.FusedQPS-1))
			}
			rows = append(rows, []string{nb.Expr, nb.Inst, fmt.Sprint(nb.Count),
				fmt.Sprintf("%.0f", ob.FusedQPS), fmt.Sprintf("%.0f", nb.FusedQPS), delta,
				fmt.Sprintf("%.2fx", ob.Speedup), fmt.Sprintf("%.2fx", nb.Speedup)})
		}
		if err := report.Table(w, rows); err != nil {
			return err
		}
		fmt.Fprintln(w, "(batch deltas are informational and never fail the comparison)")
	}

	if common == 0 {
		return fmt.Errorf("no common points between %s and %s", oldPath, newPath)
	}
	if len(regressions) > 0 {
		fmt.Fprintf(w, "\n%d point(s) regressed by more than %.0f%%:\n", len(regressions), 100*regressionTolerance)
		for _, r := range regressions {
			fmt.Fprintf(w, "  %s\n", r)
		}
		return fmt.Errorf("%d benchmark regression(s) beyond %.0f%%", len(regressions), 100*regressionTolerance)
	}
	fmt.Fprintf(w, "\n%d common point(s), no regression beyond %.0f%%\n", common, 100*regressionTolerance)
	return nil
}
