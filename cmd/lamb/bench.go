package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"lamb/internal/blas"
	"lamb/internal/exec"
	"lamb/internal/report"
)

// cmdBench runs the fixed kernel/shape benchmark grid on the measured
// backend and optionally persists the report as BENCH_<n>.json. The JSON
// files form the repository's performance trajectory: every PR that
// touches a hot path can append a new BENCH file and diff GFLOP/s and
// allocs/op against the previous one.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "write the report to BENCH_<n>.json")
	outDir := fs.String("out", ".", "directory for the BENCH_<n>.json file")
	short := fs.Bool("short", false, "small smoke-test grid")
	reps := fs.Int("reps", 5, "timed repetitions per grid point")
	workersFlag := fs.Int("workers", 0, "kernel worker cap (0 = GOMAXPROCS)")
	algs := fs.Bool("algs", false, "also time whole algorithms of every registered expression through compiled plans")
	batch := fs.Bool("batch", false, "also run the fused-vs-sequential batch grid (small instances, batch width 64)")
	compare := fs.Bool("compare", false, "compare two BENCH_<n>.json files: lamb bench -compare OLD.json NEW.json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *compare {
		if fs.NArg() != 2 {
			return fmt.Errorf("-compare needs exactly two files: lamb bench -compare OLD.json NEW.json")
		}
		return compareBench(os.Stdout, fs.Arg(0), fs.Arg(1))
	}
	if *workersFlag > 0 {
		defer blas.SetMaxWorkers(blas.SetMaxWorkers(*workersFlag))
	}

	rep := exec.RunBenchGrid(*short, *reps, *algs, *batch)

	fmt.Printf("lamb bench — backend %s, GOMAXPROCS %d, workers %d, peak %.2f GFLOP/s\n\n",
		rep.Backend, rep.GoMaxProcs, rep.Workers, rep.PeakGFlops)
	rows := [][]string{{"kernel", "m", "n", "k", "median", "GFLOP/s", "best", "allocs/op"}}
	for _, r := range rep.Results {
		rows = append(rows, []string{
			kernelLabel(r),
			fmt.Sprint(r.M), fmt.Sprint(r.N), fmt.Sprint(r.K),
			fmt.Sprintf("%.3gs", r.Seconds),
			fmt.Sprintf("%.2f", r.GFlops),
			fmt.Sprintf("%.2f", r.BestGFlops),
			fmt.Sprint(r.AllocsPerOp),
		})
	}
	if err := report.Table(os.Stdout, rows); err != nil {
		return err
	}
	if len(rep.Algorithms) > 0 {
		fmt.Println()
		rows := [][]string{{"expr", "inst", "alg", "calls", "median", "GFLOP/s", "best", "allocs/rep"}}
		for _, a := range rep.Algorithms {
			rows = append(rows, []string{
				a.Expr, a.Inst, fmt.Sprint(a.Alg), fmt.Sprint(a.Calls),
				fmt.Sprintf("%.3gs", a.Seconds),
				fmt.Sprintf("%.2f", a.GFlops),
				fmt.Sprintf("%.2f", a.BestGFlops),
				fmt.Sprint(a.AllocsPerRep),
			})
		}
		if err := report.Table(os.Stdout, rows); err != nil {
			return err
		}
	}

	if len(rep.Batches) > 0 {
		fmt.Println()
		header := []string{"expr", "inst", "alg", "batch", "seq q/s", "fused q/s", "speedup"}
		for _, p := range rep.Batches[0].ParFused {
			header = append(header, fmt.Sprintf("w%d q/s", p.Workers))
		}
		rows := [][]string{header}
		for _, b := range rep.Batches {
			row := []string{
				b.Expr, b.Inst, fmt.Sprint(b.Alg), fmt.Sprint(b.Count),
				fmt.Sprintf("%.0f", b.SeqQPS),
				fmt.Sprintf("%.0f", b.FusedQPS),
				fmt.Sprintf("%.2fx", b.Speedup),
			}
			for _, p := range b.ParFused {
				row = append(row, fmt.Sprintf("%.0f", p.QPS))
			}
			rows = append(rows, row)
		}
		if err := report.Table(os.Stdout, rows); err != nil {
			return err
		}
		if note := rep.Meta["batch_note"]; note != "" {
			fmt.Printf("\nnote: %s\n", note)
		}
	}

	if !*jsonOut {
		return nil
	}
	path, err := nextBenchPath(*outDir)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", path)
	return nil
}

// nextBenchPath returns dir/BENCH_<n>.json for the smallest n >= 1 that
// doesn't exist yet, so successive runs never overwrite earlier reports.
func nextBenchPath(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	for n := 1; ; n++ {
		path := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n))
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path, nil
		} else if err != nil {
			return "", err
		}
	}
}
