package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"lamb"
	"lamb/internal/report"
)

// pipeline bundles the shared experiment steps: Experiment 2 needs
// Experiment 1's anomalies, and Experiment 3 needs Experiment 2's line
// samples, exactly as in the paper. The expression and timer come from
// the selection engine, so every experiment runner binds algorithm sets
// through the engine's caches and (on the measured backend) executes
// through its compiled-plan cache — the same pipeline `select` and
// `serve` answer queries from.
type pipeline struct {
	c     *commonFlags
	e     lamb.Expression
	timer *lamb.Timer
}

func newPipeline(c *commonFlags) (*pipeline, error) {
	eng, err := c.engine(0, 0)
	if err != nil {
		return nil, err
	}
	e, err := eng.Expression(c.exprName)
	if err != nil {
		return nil, err
	}
	return &pipeline{c: c, e: e, timer: eng.Timer()}, nil
}

// exp1 runs the random search at the paper's 10% threshold.
func (p *pipeline) exp1(progress bool) lamb.Exp1Result {
	target, maxSamples := p.c.exp1Target(p.c.exprName)
	runner := lamb.NewRunner(p.e, p.timer, 0.10)
	cfg := lamb.Exp1Config{
		Box:             p.c.box(p.e.Arity()),
		TargetAnomalies: target,
		MaxSamples:      maxSamples,
		Seed:            p.c.seed,
	}
	if progress {
		cfg.ProgressEvery = 2000
		cfg.Progress = func(samples, anomalies int) {
			fmt.Fprintf(os.Stderr, "  exp1: %d samples, %d anomalies\r", samples, anomalies)
		}
	}
	res := lamb.RunExperiment1Parallel(runner, cfg, p.workers())
	if progress {
		fmt.Fprintln(os.Stderr)
	}
	return res
}

// workers resolves the parallelism: the measured backend must stay
// sequential (timing kernels concurrently would contend for the cores
// being measured), the simulated backend defaults to GOMAXPROCS.
func (p *pipeline) workers() int {
	if p.c.backend != "sim" {
		return 1
	}
	if p.c.workers > 0 {
		return p.c.workers
	}
	return runtime.GOMAXPROCS(0)
}

// exp2 traverses regions at the paper's 5% threshold.
func (p *pipeline) exp2(exp1 lamb.Exp1Result, progress bool) lamb.Exp2Result {
	n := min(p.c.exp2Anomalies(), len(exp1.Anomalies))
	origins := make([]lamb.Instance, 0, n)
	for _, a := range exp1.Anomalies[:n] {
		origins = append(origins, a.Inst)
	}
	runner := lamb.NewRunner(p.e, p.timer, 0.05)
	cfg := lamb.DefaultExp2Config(p.c.box(p.e.Arity()))
	if progress {
		cfg.Progress = func(line, total int) {
			fmt.Fprintf(os.Stderr, "  exp2: line %d/%d\r", line, total)
		}
	}
	res := lamb.RunExperiment2Parallel(runner, origins, cfg, p.workers())
	if progress {
		fmt.Fprintln(os.Stderr)
	}
	return res
}

// exp3 predicts from isolated benchmarks at the paper's 5% threshold.
func (p *pipeline) exp3(exp2 lamb.Exp2Result, progress bool) lamb.Exp3Result {
	runner := lamb.NewRunner(p.e, p.timer, 0.05)
	cfg := lamb.Exp3Config{Threshold: 0.05}
	if progress {
		cfg.ProgressEvery = 2000
		cfg.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "  exp3: %d/%d samples\r", done, total)
		}
	}
	res := lamb.RunExperiment3Parallel(runner, exp2, cfg, p.workers())
	if progress {
		fmt.Fprintln(os.Stderr)
	}
	return res
}

// reportExp1 prints the abundance headline and the scatter figure
// (Figure 6 for the chain, Figure 9 for AAᵀB).
func (p *pipeline) reportExp1(res lamb.Exp1Result) error {
	fmt.Printf("Experiment 1 (%s, backend %s): %d samples, %d distinct anomalies, abundance %s\n\n",
		p.e.Name(), p.c.backend, res.Samples, len(res.Anomalies), fmtPct(res.Abundance))
	if len(res.Anomalies) == 0 {
		return nil
	}
	xs := make([]float64, len(res.Anomalies))
	ys := make([]float64, len(res.Anomalies))
	csv := [][]string{{"instance", "flop_score", "time_score"}}
	severe := 0
	for i, a := range res.Anomalies {
		xs[i] = a.Class.FlopScore
		ys[i] = a.Class.TimeScore
		if a.Class.TimeScore > 0.20 || a.Class.FlopScore > 0.30 {
			severe++
		}
		csv = append(csv, []string{a.Inst.String(),
			fmt.Sprintf("%.4f", a.Class.FlopScore), fmt.Sprintf("%.4f", a.Class.TimeScore)})
	}
	fmt.Printf("severe anomalies (time score > 20%% or FLOP score > 30%%): %d of %d (%s)\n\n",
		severe, len(res.Anomalies), fmtPct(float64(severe)/float64(len(res.Anomalies))))
	if err := report.Scatter(os.Stdout, xs, ys, 0, 0.5, 0, 0.5, 56, 14,
		"FLOP score", "time score"); err != nil {
		return err
	}
	return p.c.writeCSV(fmt.Sprintf("exp1-%s.csv", p.c.exprName), csv)
}

// reportExp2 prints the thickness distributions (Figures 7 and 10) and,
// optionally, per-algorithm efficiency along example lines (Figures 8
// and 11).
func (p *pipeline) reportExp2(res lamb.Exp2Result, lines int) error {
	fmt.Printf("\nExperiment 2 (%s): %d lines, %d samples\n\n", p.e.Name(), len(res.Lines), res.TotalSamples)
	byDim := res.ThicknessByDim(p.e.Arity())
	fmt.Println("Region thickness per dimension:")
	if err := report.ThicknessDistribution(os.Stdout, byDim); err != nil {
		return err
	}
	csv := [][]string{{"origin", "dim", "boundary_lo", "boundary_hi", "thickness"}}
	for _, ln := range res.Lines {
		csv = append(csv, []string{ln.Origin.String(), fmt.Sprint(ln.Dim),
			fmt.Sprint(ln.BoundaryLo), fmt.Sprint(ln.BoundaryHi), fmt.Sprint(ln.Thickness)})
	}
	if err := p.c.writeCSV(fmt.Sprintf("exp2-%s.csv", p.c.exprName), csv); err != nil {
		return err
	}
	for i := 0; i < lines && i < len(res.Lines); i++ {
		if err := p.reportLine(&res.Lines[i]); err != nil {
			return err
		}
	}
	return nil
}

// reportLine renders one traversal line in the style of Figures 8/11:
// per algorithm, the total efficiency along the traversed dimension.
func (p *pipeline) reportLine(ln *lamb.Line) error {
	fmt.Printf("\nEfficiency along %v, dimension d%d (region [%d, %d], thickness %d):\n",
		ln.Origin, ln.Dim, ln.BoundaryLo, ln.BoundaryHi, ln.Thickness)
	if len(ln.Samples) == 0 {
		return nil
	}
	peak := p.timer.Exec.Peak()
	nAlgs := len(ln.Samples[0].Res.Times)
	xs := make([]int, len(ln.Samples))
	for ai := 0; ai < nAlgs; ai++ {
		ys := make([]float64, len(ln.Samples))
		for si, s := range ln.Samples {
			xs[si] = s.Coord
			ys[si] = s.Res.Flops[ai] / (s.Res.Times[ai] * peak)
		}
		label := fmt.Sprintf("algorithm %d", ai+1)
		if err := report.Line(os.Stdout, xs, ys, 0, 1, 8, label); err != nil {
			return err
		}
	}
	// Mark the classification along the line.
	marks := make([]byte, len(ln.Samples))
	for si, s := range ln.Samples {
		if s.Res.Class.Anomaly {
			marks[si] = 'A'
		} else {
			marks[si] = '.'
		}
	}
	fmt.Printf("anomaly: |%s|\n", string(marks))
	return nil
}

// reportExp3 prints the confusion matrix (Tables 1 and 2).
func (p *pipeline) reportExp3(res lamb.Exp3Result) error {
	cm := res.Confusion
	fmt.Printf("\nExperiment 3 (%s): confusion matrix over %d line samples (%d distinct calls benchmarked)\n\n",
		p.e.Name(), cm.Total(), res.DistinctCalls)
	fmt.Println(cm.String())
	fmt.Printf("recall (anomalies predicted):    %s\n", fmtPct(cm.Recall()))
	fmt.Printf("precision (predictions actual):  %s\n", fmtPct(cm.Precision()))
	csv := [][]string{
		{"", "pred_no", "pred_yes"},
		{"actual_no", fmt.Sprint(cm.TN), fmt.Sprint(cm.FP)},
		{"actual_yes", fmt.Sprint(cm.FN), fmt.Sprint(cm.TP)},
	}
	return p.c.writeCSV(fmt.Sprintf("exp3-%s.csv", p.c.exprName), csv)
}

func cmdExp1(args []string) error {
	fs := flag.NewFlagSet("exp1", flag.ExitOnError)
	c := registerCommon(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := newPipeline(c)
	if err != nil {
		return err
	}
	return p.reportExp1(p.exp1(true))
}

func cmdExp2(args []string) error {
	fs := flag.NewFlagSet("exp2", flag.ExitOnError)
	c := registerCommon(fs)
	lines := fs.Int("lines", 0, "render per-algorithm efficiency for this many lines (Figures 8/11)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := newPipeline(c)
	if err != nil {
		return err
	}
	exp1 := p.exp1(true)
	if err := p.reportExp1(exp1); err != nil {
		return err
	}
	return p.reportExp2(p.exp2(exp1, true), *lines)
}

func cmdExp3(args []string) error {
	fs := flag.NewFlagSet("exp3", flag.ExitOnError)
	c := registerCommon(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := newPipeline(c)
	if err != nil {
		return err
	}
	exp1 := p.exp1(true)
	if err := p.reportExp1(exp1); err != nil {
		return err
	}
	exp2 := p.exp2(exp1, true)
	if err := p.reportExp2(exp2, 0); err != nil {
		return err
	}
	return p.reportExp3(p.exp3(exp2, true))
}

func cmdAll(args []string) error {
	fs := flag.NewFlagSet("all", flag.ExitOnError)
	c := registerCommon(fs)
	lines := fs.Int("lines", 2, "example lines to render per expression")
	if err := fs.Parse(args); err != nil {
		return err
	}
	for _, name := range []string{"chain", "aatb"} {
		cc := *c
		cc.exprName = name
		p, err := newPipeline(&cc)
		if err != nil {
			return err
		}
		fmt.Printf("==== %s ====\n\n", p.e.Name())
		exp1 := p.exp1(true)
		if err := p.reportExp1(exp1); err != nil {
			return err
		}
		exp2 := p.exp2(exp1, true)
		if err := p.reportExp2(exp2, *lines); err != nil {
			return err
		}
		if err := p.reportExp3(p.exp3(exp2, true)); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}
