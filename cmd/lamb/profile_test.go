package main

import (
	"encoding/json"
	"path/filepath"
	"testing"

	"lamb"
	"lamb/internal/engine"
	"lamb/internal/profile"
)

func TestCmdProfileWritesLoadableStore(t *testing.T) {
	out := filepath.Join(t.TempDir(), "p.json")
	old := stdoutCapture(t)
	err := cmdProfile([]string{"-backend", "sim", "-reps", "2", "-grid", "2", "-o", out})
	old()
	if err != nil {
		t.Fatal(err)
	}
	set, meta, err := profile.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Backend == "" || meta.GridPoints != 2 || meta.Reps != 2 || meta.CreatedAt == "" {
		t.Fatalf("meta %+v", meta)
	}
	if meta.Source != out {
		t.Fatalf("source %q", meta.Source)
	}
	for kind := lamb.KernelKind(0); int(kind) < lamb.NumKernelKinds; kind++ {
		if set.Profile(kind) == nil {
			t.Fatalf("missing %v profile", kind)
		}
	}
}

func TestCmdProfileRejectsDegenerateGrid(t *testing.T) {
	for _, grid := range []string{"1", "0", "-3"} {
		if err := cmdProfile([]string{"-backend", "sim", "-grid", grid, "-o", filepath.Join(t.TempDir(), "p.json")}); err == nil {
			t.Errorf("-grid %s accepted", grid)
		}
	}
}

func TestCmdSelectWithProfileStore(t *testing.T) {
	// select -profile answers min-predicted from the persisted store
	// (no measurement) and stamps the record with its provenance.
	out := filepath.Join(t.TempDir(), "p.json")
	old := stdoutCapture(t)
	if err := cmdProfile([]string{"-backend", "sim", "-reps", "2", "-grid", "2", "-o", out}); err != nil {
		old()
		t.Fatal(err)
	}
	old()
	old = stdoutCapture(t)
	err := cmdSelect([]string{"-expr", "aatb", "-instance", "80,514,768",
		"-strategy", "min-predicted", "-profile", out, "-json"})
	body := old()
	if err != nil {
		t.Fatal(err)
	}
	var rec engine.Record
	if jerr := json.Unmarshal(body, &rec); jerr != nil {
		t.Fatalf("%v in %q", jerr, body)
	}
	if rec.Strategy != "min-predicted" || rec.Profile != out {
		t.Fatalf("record strategy %q profile %q, want min-predicted %q", rec.Strategy, rec.Profile, out)
	}
}

func TestCmdSelectProfileStoreMissing(t *testing.T) {
	err := cmdSelect([]string{"-expr", "aatb", "-instance", "80,514,768",
		"-strategy", "min-predicted", "-profile", filepath.Join(t.TempDir(), "nope.json"), "-json"})
	if err == nil {
		t.Fatal("missing profile store accepted")
	}
}
