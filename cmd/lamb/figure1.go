package main

import (
	"flag"
	"fmt"
	"os"

	"lamb"
	"lamb/internal/report"
)

// cmdFigure1 reproduces the paper's Figure 1: the efficiency of GEMM,
// SYRK, and SYMM on square operands as size grows.
func cmdFigure1(args []string) error {
	fs := flag.NewFlagSet("figure1", flag.ExitOnError)
	c := registerCommon(fs)
	maxSize := fs.Int("max", 3000, "largest square size")
	step := fs.Int("step", 50, "size step")
	if err := fs.Parse(args); err != nil {
		return err
	}
	timer, err := c.timer()
	if err != nil {
		return err
	}
	if c.backend == "blas" && *maxSize > 768 && !flagSet(fs, "max") {
		*maxSize = 512 // keep the measured backend tractable by default
		*step = 32
	}
	var sizes []int
	for s := *step; s <= *maxSize; s += *step {
		sizes = append(sizes, s)
	}

	kinds := []lamb.KernelKind{lamb.GEMM, lamb.SYRK, lamb.SYMM}
	curves := make([][]lamb.CurvePoint, len(kinds))
	for i, k := range kinds {
		curves[i] = lamb.EfficiencyCurve(timer, k, sizes)
	}

	fmt.Printf("Figure 1 — kernel efficiency vs square size (backend %s)\n\n", c.backend)
	rows := [][]string{{"size", "gemm", "syrk", "symm"}}
	csv := [][]string{{"size", "gemm", "syrk", "symm"}}
	for j, s := range sizes {
		row := []string{fmt.Sprint(s)}
		for i := range kinds {
			row = append(row, fmt.Sprintf("%.3f", curves[i][j].Efficiency))
		}
		rows = append(rows, row)
		csv = append(csv, row)
	}
	if err := report.Table(os.Stdout, rows); err != nil {
		return err
	}
	fmt.Println()
	for i, k := range kinds {
		ys := make([]float64, len(sizes))
		for j := range sizes {
			ys[j] = curves[i][j].Efficiency
		}
		if err := report.Line(os.Stdout, sizes, ys, 0, 1, 10, k.String()+" efficiency"); err != nil {
			return err
		}
		fmt.Println()
	}
	return c.writeCSV("figure1.csv", csv)
}

func flagSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}
