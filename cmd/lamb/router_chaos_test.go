package main

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"

	"lamb/internal/engine"
	"lamb/internal/faultinject"
	"lamb/internal/outcomes"
	"lamb/internal/router"
)

// Router chaos: the distributed tier's acceptance tests. A real backend
// dies by SIGKILL under live traffic and the router sheds nothing;
// gossip propagates feedback between backends and the merged evidence
// survives a backend restart. Named TestRouterChaos* for the dedicated
// CI job (`-run RouterChaos`); the broader `-run Chaos` job matches
// them too.

// freePort reserves an address a restarted backend can reuse — the
// router's backend list is fixed, so a backend that dies must come back
// on the same port to rejoin the fleet.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startServeOnReservedPort boots a serve on a freshly reserved port,
// retrying with a new port if another process steals it between the
// reservation and the bind (the address stays stable afterwards, so a
// SIGKILL'd backend can restart on proc.addr). extraArgs must not
// include -addr.
func startServeOnReservedPort(t *testing.T, extraArgs ...string) *serveProc {
	t.Helper()
	for attempt := 0; attempt < 5; attempt++ {
		args := append([]string{"-addr", freePort(t)}, extraArgs...)
		p, err := tryStartServeProc(t, nil, args...)
		if err == nil {
			return p
		}
		if !strings.Contains(err.Error(), "address already in use") {
			t.Fatal(err)
		}
	}
	t.Fatal("could not bind a reserved port in 5 attempts")
	return nil
}

// chaosRouter builds an in-process router over the given backends with
// chaos-friendly timings: fast probes, tiny backoffs, a local fallback.
func chaosRouter(t *testing.T, backends ...string) *router.Router {
	t.Helper()
	rt, err := router.New(router.Config{
		Backends:     backends,
		ProbeEvery:   50 * time.Millisecond,
		ProbeTimeout: 200 * time.Millisecond,
		DownAfter:    2,
		BackoffBase:  time.Millisecond,
		BackoffMax:   5 * time.Millisecond,
		Local:        engine.New(engine.Config{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// backendStats pulls one backend's row out of the router stats.
func backendStats(rt *router.Router, url string) router.BackendStats {
	for _, b := range rt.Stats().Backends {
		if b.URL == url {
			return b
		}
	}
	return router.BackendStats{}
}

// TestRouterChaosKillBackendMidTraffic is the headline acceptance test:
// two live backends, continuous traffic, SIGKILL one — every response
// stays 200 (in-flight requests to the corpse are retried onto the
// survivor), the breaker opens within the probe interval, and a restart
// on the same port rejoins automatically with traffic following.
func TestRouterChaosKillBackendMidTraffic(t *testing.T) {
	a := startServeProc(t, nil, "-addr", "127.0.0.1:0", "-profile", ciProfile)
	b := startServeOnReservedPort(t, "-profile", ciProfile)
	urlA, urlB := "http://"+a.addr, "http://"+b.addr
	rt := chaosRouter(t, urlA, urlB)
	rt.Start()
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)

	// One traffic round sprays queries across shard keys (octaves), so
	// both backends own some of them. Every response must be 200.
	round := func(phase string) {
		t.Helper()
		for d := 16; d <= 1<<13; d *= 2 {
			resp, body, err := postJSONRaw(front.URL+"/api/v1/query", engine.Query{
				Expr: "aatb", Instance: []int{d, d + 1, d + 2},
			})
			if err != nil {
				t.Fatalf("%s: query d=%d: %v", phase, d, err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s: query d=%d status %d: %s", phase, d, resp.StatusCode, body)
			}
		}
	}
	round("both up")
	if bs := backendStats(rt, urlB); bs.Forwards == 0 {
		t.Fatalf("backend B never reached while healthy: %+v", bs)
	}

	// Kill B without warning and keep traffic flowing through the
	// transition: requests racing the probe's discovery must be retried
	// onto A, never surfaced as errors.
	b.signal(syscall.SIGKILL)
	b.wait(10 * time.Second)
	deadline := time.Now().Add(5 * time.Second)
	opened := false
	for time.Now().Before(deadline) && !opened {
		round("B dead, probe racing")
		bs := backendStats(rt, urlB)
		opened = !bs.Up && bs.Breaker == "open"
	}
	if !opened {
		t.Fatalf("breaker never opened after the kill: %+v", backendStats(rt, urlB))
	}
	if s := rt.Stats(); s.Retries == 0 {
		t.Fatalf("traffic through the kill recorded no retries: %+v", s)
	}
	// With B down and its breaker open, traffic flows without touching
	// the corpse.
	before := backendStats(rt, urlB).Forwards
	round("B down")
	if got := backendStats(rt, urlB).Forwards; got != before {
		t.Fatalf("down backend still receiving forwards: %d -> %d", before, got)
	}

	// Restart on the same port: the probe notices, the breaker closes,
	// and B serves its shards again — no operator action.
	b2 := startServeProc(t, nil, "-addr", b.addr, "-profile", ciProfile)
	_ = b2
	waitFor(t, 10*time.Second, "probe-driven recovery", func() bool {
		bs := backendStats(rt, urlB)
		return bs.Up && bs.Breaker == "closed"
	})
	before = backendStats(rt, urlB).Forwards
	round("B recovered")
	if got := backendStats(rt, urlB).Forwards; got <= before {
		t.Fatalf("recovered backend got no traffic: %d -> %d", before, got)
	}
}

// TestRouterChaosMergePropagatesAcrossRestart: feedback taught to one
// backend reaches the other through a gossip round, informs its
// adaptive selection, rides its durability snapshot through a SIGKILL,
// and is restored on restart.
func TestRouterChaosMergePropagatesAcrossRestart(t *testing.T) {
	outPath := t.TempDir() + "/outcomes-b.json"
	a := startServeProc(t, nil, "-addr", "127.0.0.1:0", "-profile", ciProfile)
	extraB := []string{"-profile", ciProfile,
		"-outcomes", outPath, "-snapshot-every", "50ms"}
	b := startServeOnReservedPort(t, extraB...)
	urlA, urlB := "http://"+a.addr, "http://"+b.addr
	rt := chaosRouter(t, urlA, urlB)

	// Teach A: three algorithms' outcomes at one instance.
	const algs = 3
	for rep := 0; rep < 2; rep++ {
		for alg := 1; alg <= algs; alg++ {
			resp, body, err := postJSONRaw(urlA+"/api/v1/feedback", engine.Feedback{
				Expr: "aatb", Instance: []int{80, 514, 768}, Algorithm: alg, Seconds: float64(alg) * 1e-3,
			})
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Fatalf("feedback: %v %s", err, body)
			}
		}
	}

	// One synchronous gossip round: A's local evidence lands on B.
	rt.MergeRound(context.Background())
	if s := rt.Stats(); s.MergedOutcomes != algs || s.MergeErrors != 0 {
		t.Fatalf("gossip counters %+v, want %d merged", s, algs)
	}
	stats, err := procStats(urlB + "/api/v1/stats")
	if err != nil || stats.MergeRequests == 0 || stats.MergedOutcomes != algs {
		t.Fatalf("B merge stats %+v (err %v)", stats, err)
	}
	// The merged evidence informs B's adaptive selection.
	resp, body, err := postJSONRaw(urlB+"/api/v1/query", engine.Query{
		Expr: "aatb", Instance: []int{80, 514, 768}, Strategy: "adaptive",
	})
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("adaptive on B: %v %s", err, body)
	}
	if stats, err = procStats(urlB + "/api/v1/stats"); err != nil || stats.AdaptiveInformed != 1 {
		t.Fatalf("merged evidence did not inform B: %+v (err %v)", stats, err)
	}

	// Wait for B's durability snapshot to hold the merged (source-
	// tagged) streams, then SIGKILL it.
	waitFor(t, 10*time.Second, "snapshot to contain merged streams", func() bool {
		snap, err := outcomes.ReadFile(outPath)
		if err != nil {
			return false
		}
		sourced := 0
		for _, rec := range snap.Records {
			for _, o := range rec.Outcomes {
				if o.Source == urlA {
					sourced++
				}
			}
		}
		return sourced == algs
	})
	b.signal(syscall.SIGKILL)
	if code := b.wait(10 * time.Second); code == 0 {
		t.Fatal("SIGKILL'd backend reported a clean exit")
	}

	// Restart on the same port and outcomes file: the fleet-learned
	// evidence is back and still informs selection.
	b2 := startServeProc(t, nil, append([]string{"-addr", b.addr}, extraB...)...)
	stats, err = procStats(b2.url("/api/v1/stats"))
	if err != nil || stats.FeedbackRestored != algs {
		t.Fatalf("restored stats %+v (err %v), want %d restored", stats, err, algs)
	}
	resp, body, err = postJSONRaw(b2.url("/api/v1/query"), engine.Query{
		Expr: "aatb", Instance: []int{80, 514, 768}, Strategy: "adaptive",
	})
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("adaptive after restart: %v %s", err, body)
	}
	if stats, err = procStats(b2.url("/api/v1/stats")); err != nil || stats.AdaptiveInformed != 1 {
		t.Fatalf("restored merge evidence did not inform B: %+v (err %v)", stats, err)
	}
}

// TestRouterChaosAllBackendsDownDegradesLocally: with the whole fleet
// dark the router answers from its local engine — 200, min-flops,
// stamped "no-backend" — instead of shedding.
func TestRouterChaosAllBackendsDownDegradesLocally(t *testing.T) {
	rt := chaosRouter(t, "http://127.0.0.1:9", "http://127.0.0.1:10")
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)
	resp, body, err := postJSONRaw(front.URL+"/api/v1/query", engine.Query{
		Expr: "aatb", Instance: []int{80, 514, 768}, Strategy: "adaptive",
	})
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("query with fleet dark: %v %d %s", err, resp.StatusCode, body)
	}
	var rec engine.Record
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Degraded != router.DegradedNoBackend || rec.Strategy != "min-flops" || rec.Requested != "adaptive" {
		t.Fatalf("degraded record %+v", rec)
	}
	if s := rt.Stats(); s.DegradedQueries == 0 {
		t.Fatalf("degradation not counted: %+v", s)
	}
}

// TestRouterChaosForwardFaultInjection: the "router.forward" failpoint
// fails every forward attempt without a real network fault; the router
// still answers every query from the local floor.
func TestRouterChaosForwardFaultInjection(t *testing.T) {
	if err := faultinject.Arm("router.forward", "error:injected transport fault"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultinject.Reset)
	backend := httptest.NewServer(serveMux(engine.New(engine.Config{})))
	t.Cleanup(backend.Close)
	rt := chaosRouter(t, backend.URL)
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)

	for i := 0; i < 5; i++ {
		resp, body, err := postJSONRaw(front.URL+"/api/v1/query", engine.Query{
			Expr: "aatb", Instance: []int{40 + i, 50, 60},
		})
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d under injected faults: %v %d %s", i, err, resp.StatusCode, body)
		}
		var rec engine.Record
		if err := json.Unmarshal(body, &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Degraded != router.DegradedNoBackend {
			t.Fatalf("query %d not degraded: %+v", i, rec)
		}
	}
	if hits := faultinject.Hits("router.forward"); hits == 0 {
		t.Fatal("failpoint never fired")
	}
	if s := rt.Stats(); s.DegradedQueries != 5 {
		t.Fatalf("degraded count %d, want 5", s.DegradedQueries)
	}
}

// TestRouterChaosMergeFaultInjection: a failing gossip round is counted
// and contained — the next round succeeds and converges.
func TestRouterChaosMergeFaultInjection(t *testing.T) {
	mkBackend := func() *httptest.Server {
		srv := httptest.NewServer(serveMux(engine.New(engine.Config{})))
		t.Cleanup(srv.Close)
		return srv
	}
	a, b := mkBackend(), mkBackend()
	rt := chaosRouter(t, a.URL, b.URL)

	if err := faultinject.Arm("router.merge", "error:injected gossip fault"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultinject.Reset)
	rt.MergeRound(context.Background())
	s := rt.Stats()
	if s.MergeErrors == 0 || s.MergedOutcomes != 0 {
		t.Fatalf("faulted round: %+v", s)
	}
	faultinject.Reset()
	rt.MergeRound(context.Background())
	if s := rt.Stats(); s.MergeRounds != 2 || s.MergeErrors != 2 {
		t.Fatalf("recovered round: %+v", s)
	}
}
