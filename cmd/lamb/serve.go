package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lamb/internal/engine"
)

// cmdServe runs the selection engine behind an HTTP JSON endpoint: the
// ROADMAP's serving path. Every response is produced by the same
// engine.Query pipeline the CLI uses, so `lamb select -json` and a curl
// against /api/query emit identical records.
//
// Endpoints:
//
//	GET  /healthz          liveness probe
//	GET  /api/expressions  queryable expressions (name, arity, set size)
//	GET  /api/stats        per-layer cache counters, feedback/adaptive
//	                       counters, and profile provenance
//	POST /api/query        one engine.Query -> one selection record
//	POST /api/batch        {"queries": [...]} -> {"results": [...]}
//	POST /api/feedback     one engine.Feedback measured outcome
//
// With -profile FILE the persisted kernel-profile store is loaded at
// startup, so min-predicted and adaptive queries are answered without
// any serve-time measurement.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	c := registerCommon(fs)
	addr := fs.String("addr", "127.0.0.1:8374", "listen address")
	bindEntries := fs.Int("bind-cache", engine.DefaultBindEntries, "binding-layer LRU entries")
	planEntries := fs.Int("plan-cache", engine.DefaultPlanEntries, "compiled-plan LRU entries (blas backend)")
	profilePath := fs.String("profile", "", "persisted kernel-profile store (enables min-predicted and adaptive)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	eng, err := c.engineWithProfiles(*bindEntries, *planEntries, *profilePath)
	if err != nil {
		return err
	}
	if *profilePath != "" {
		fmt.Fprintf(os.Stderr, "lamb serve: loaded profile store %s\n", *profilePath)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           serveMux(eng),
		ReadHeaderTimeout: 5 * time.Second,
		// Bounds the whole request read (headers + body), so a client
		// cannot pin a goroutine by trickling a body forever. Responses
		// are not bounded: a blas-backend oracle query legitimately
		// measures for a while.
		ReadTimeout: 30 * time.Second,
		IdleTimeout: 2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	fmt.Fprintf(os.Stderr, "lamb serve: listening on %s (backend %s)\n", *addr, c.backend)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "lamb serve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return srv.Shutdown(shutdownCtx)
}

// batchRequest is the /api/batch request body.
type batchRequest struct {
	Queries []engine.Query `json:"queries"`
}

// batchItem is one /api/batch result: a record or an error.
type batchItem struct {
	*engine.Record
	Error string `json:"error,omitempty"`
}

// batchResponse is the /api/batch response body.
type batchResponse struct {
	Results []batchItem `json:"results"`
}

// serveMux builds the HTTP handler over an engine. Split from cmdServe
// so tests drive it through httptest without binding a port.
func serveMux(eng *engine.Engine) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("GET /api/expressions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, eng.ListExpressions())
	})
	mux.HandleFunc("GET /api/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, eng.Stats())
	})
	mux.HandleFunc("POST /api/query", func(w http.ResponseWriter, r *http.Request) {
		var q engine.Query
		if err := decodeJSON(w, r, &q); err != nil {
			return
		}
		rec, err := eng.Query(q)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, rec)
	})
	mux.HandleFunc("POST /api/feedback", func(w http.ResponseWriter, r *http.Request) {
		var fb engine.Feedback
		if err := decodeJSON(w, r, &fb); err != nil {
			return
		}
		if err := eng.Feedback(fb); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("POST /api/batch", func(w http.ResponseWriter, r *http.Request) {
		var req batchRequest
		if err := decodeJSON(w, r, &req); err != nil {
			return
		}
		results := eng.QueryBatch(req.Queries)
		resp := batchResponse{Results: make([]batchItem, len(results))}
		for i, res := range results {
			if res.Err != nil {
				resp.Results[i] = batchItem{Error: res.Err.Error()}
			} else {
				resp.Results[i] = batchItem{Record: res.Record}
			}
		}
		writeJSON(w, http.StatusOK, resp)
	})
	return mux
}

// maxBodyBytes caps request bodies: queries are a few hundred bytes,
// batches a few thousand per entry — 4 MiB is orders of magnitude of
// headroom while keeping a hostile body from buffering unbounded.
const maxBodyBytes = 4 << 20

// decodeJSON parses the size-capped request body into v, replying 400
// (or 413 for an oversized body) on failure.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
			return err
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return err
	}
	return nil
}

// writeJSON replies with a JSON body and status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError replies with {"error": ...}.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
