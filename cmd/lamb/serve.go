package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"lamb/internal/engine"
	"lamb/internal/faultinject"
	"lamb/internal/mat"
	"lamb/internal/outcomes"
)

// cmdServe runs the selection engine behind an HTTP JSON endpoint: the
// ROADMAP's serving path. Every response is produced by the same
// engine.Do pipeline the CLI uses, so `lamb select -json` and a curl
// against /api/v1/query emit identical records.
//
// The API is versioned: /api/v1/ is the documented, stable surface.
// Every endpoint also answers under the original /api/ prefix as a
// deprecated alias returning the identical body plus a "Deprecation"
// header and a "Link" header naming the successor path, so existing
// clients keep working while new ones pin the version.
//
// Endpoints (v1):
//
//	GET  /healthz              liveness + readiness: 200 when serving,
//	                           503 with a reason while a reload is
//	                           swapping stores or the in-flight limit is
//	                           saturated
//	GET  /api/v1/expressions   queryable expressions (name, arity, set
//	                           size)
//	GET  /api/v1/stats         per-layer cache counters, feedback/
//	                           adaptive/degradation counters, the
//	                           discriminant counters (anomalous_queries,
//	                           explore_queries), profile provenance, and
//	                           the server's own shed/panic/snapshot
//	                           counters
//	POST /api/v1/query         one engine.Query -> one selection record
//	                           with its ranking ([{alg, p_best, mean,
//	                           stderr}] fastest-first), confidence (the
//	                           top-2 win probability), and anomaly flag;
//	                           "timeout_ms" bounds the query. Stable
//	                           field names: "strategy" is what answered,
//	                           "requested_strategy"/"degraded" appear
//	                           when the degradation ladder was walked.
//	POST /api/v1/batch         {"queries": [...]} -> {"results": [...]};
//	                           "compute": true additionally executes each
//	                           query's selected algorithm — same-
//	                           algorithm queries of similar shape through
//	                           one fused batch plan — and attaches a
//	                           result block
//	POST /api/v1/feedback      one engine.Feedback measured outcome
//	GET  /api/v1/outcomes      schema-versioned snapshot of this
//	                           process's own (firsthand) outcome evidence
//	                           — the gossip export a router pulls
//	POST /api/v1/admin/reload  re-read the -profile store and atomically
//	                           swap it in (also triggered by SIGHUP)
//	POST /api/v1/admin/merge   install a peer's outcome snapshot as
//	                           evidence attributed to ?source=URL,
//	                           weights discounted by ?scale=F; idempotent
//
// With -profile FILE the persisted kernel-profile store is loaded at
// startup, so min-predicted and adaptive queries are answered without
// any serve-time measurement. With -outcomes FILE the feedback memory
// is restored at boot and snapshotted periodically and at shutdown, so
// accumulated learning survives restarts (at most one -snapshot-every
// interval of feedback is lost to a crash). With -explore-rate R the
// engine Thompson-samples roughly that fraction of adaptive answers
// from the posterior, so under-observed regions collect feedback on
// alternative algorithms.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	c := registerCommon(fs)
	addr := fs.String("addr", "127.0.0.1:8374", "listen address (use :0 for an ephemeral port)")
	bindEntries := fs.Int("bind-cache", engine.DefaultBindEntries, "binding-layer LRU entries")
	planEntries := fs.Int("plan-cache", engine.DefaultPlanEntries, "compiled-plan LRU entries (blas backend)")
	profilePath := fs.String("profile", "", "persisted kernel-profile store (enables min-predicted and adaptive; SIGHUP re-reads it)")
	outcomesPath := fs.String("outcomes", "", "outcome-store snapshot file: restored at boot, written periodically and at shutdown")
	snapshotEvery := fs.Duration("snapshot-every", 30*time.Second, "interval between outcome-store snapshots (with -outcomes)")
	halfLife := fs.Duration("half-life", time.Hour, "half-life of recorded outcome weights (0 disables decay)")
	deadline := fs.Duration("deadline", 0, "default per-request deadline (0 = none; requests may set timeout_ms)")
	maxInflight := fs.Int("max-inflight", defaultMaxInflight, "max concurrent query/batch requests before shedding with 503 (0 = unlimited)")
	exploreRate := fs.Float64("explore-rate", 0, "fraction of adaptive queries answered by Thompson-sampling exploration (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	eng, err := c.engineWithProfiles(*bindEntries, *planEntries, *profilePath, *halfLife, *exploreRate)
	if err != nil {
		return err
	}
	if *profilePath != "" {
		fmt.Fprintf(os.Stderr, "lamb serve: loaded profile store %s\n", *profilePath)
	}
	s := newServer(eng, serveOptions{
		MaxInflight:  *maxInflight,
		Deadline:     *deadline,
		ProfilePath:  *profilePath,
		OutcomesPath: *outcomesPath,
		Backend:      eng.Timer().Exec.Name(),
	})
	if *outcomesPath != "" {
		if err := s.restoreOutcomes(); err != nil {
			return err
		}
	}

	srv := &http.Server{
		Handler:           s.handler(),
		ReadHeaderTimeout: 5 * time.Second,
		// Bounds the whole request read (headers + body), so a client
		// cannot pin a goroutine by trickling a body forever. Responses
		// are not bounded: a blas-backend oracle query legitimately
		// measures for a while.
		ReadTimeout: 30 * time.Second,
		IdleTimeout: 2 * time.Minute,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// Signal handling is installed before the listen address is
	// announced: once a harness has seen the address, a SIGHUP must mean
	// "reload", never the default "terminate".
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	defer signal.Stop(sigc)
	errc := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	// The actual address (not the flag) so a harness listening on :0 can
	// learn the port.
	fmt.Fprintf(os.Stderr, "lamb serve: listening on %s (backend %s)\n", ln.Addr(), c.backend)

	stopSnapshots := make(chan struct{})
	var snapshotsDone sync.WaitGroup
	if *outcomesPath != "" && *snapshotEvery > 0 {
		snapshotsDone.Add(1)
		go func() {
			defer snapshotsDone.Done()
			t := time.NewTicker(*snapshotEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := s.snapshotOutcomes(); err != nil {
						fmt.Fprintf(os.Stderr, "lamb serve: outcome snapshot failed: %v\n", err)
					}
				case <-stopSnapshots:
					return
				}
			}
		}()
	}

	for {
		select {
		case err := <-errc:
			return err
		case sig := <-sigc:
			if sig == syscall.SIGHUP {
				// Hot reload: re-read the profile store and swap it in
				// while queries keep flowing.
				if gen, id, err := s.reloadProfiles(); err != nil {
					fmt.Fprintf(os.Stderr, "lamb serve: reload failed (still serving the previous store): %v\n", err)
				} else {
					fmt.Fprintf(os.Stderr, "lamb serve: reloaded profile store %s (generation %d)\n", id, gen)
				}
				continue
			}
			fmt.Fprintln(os.Stderr, "lamb serve: shutting down")
			shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			// Shutdown drains in-flight requests before returning, so the
			// final snapshot below sees every outcome that was accepted.
			shutdownErr := srv.Shutdown(shutdownCtx)
			close(stopSnapshots)
			snapshotsDone.Wait()
			if *outcomesPath != "" {
				if err := s.snapshotOutcomes(); err != nil {
					fmt.Fprintf(os.Stderr, "lamb serve: final outcome snapshot failed: %v\n", err)
					if shutdownErr == nil {
						shutdownErr = err
					}
				}
			}
			return shutdownErr
		}
	}
}

// defaultMaxInflight bounds concurrent query/batch requests: enough for
// real concurrency over the in-process engine, small enough that a
// traffic spike sheds with 503 instead of queueing into timeouts.
const defaultMaxInflight = 64

// maxBatchQueries caps one /api/batch request. A larger workload splits
// into multiple batches; an unbounded one would let a single request
// monopolise the engine and defeat the in-flight admission bound.
const maxBatchQueries = 1024

// serveOptions parameterise the HTTP layer (not the engine).
type serveOptions struct {
	// MaxInflight bounds concurrent query/batch requests (0 = unlimited).
	MaxInflight int
	// Deadline is the default per-request deadline; a request's
	// timeout_ms overrides it. Zero means none.
	Deadline time.Duration
	// ProfilePath is re-read by reloads; OutcomesPath is where snapshots
	// go. Backend names the executor for reload validation warnings.
	ProfilePath  string
	OutcomesPath string
	Backend      string
}

// server is the HTTP serving layer over one engine: admission control,
// deadlines, panic recovery, reload and snapshot plumbing, and its own
// operational counters.
type server struct {
	eng  *engine.Engine
	opts serveOptions
	// sem is the in-flight admission semaphore (nil when unlimited).
	sem chan struct{}
	// reloadMu serialises reloads; reloading gates readiness while a
	// swap is in progress.
	reloadMu  sync.Mutex
	reloading atomic.Bool
	// Operational counters, surfaced under "server" in /api/stats.
	shed       atomic.Uint64
	panics     atomic.Uint64
	snapWrites atomic.Uint64
	snapErrors atomic.Uint64
}

func newServer(eng *engine.Engine, opts serveOptions) *server {
	s := &server{eng: eng, opts: opts}
	if opts.MaxInflight > 0 {
		s.sem = make(chan struct{}, opts.MaxInflight)
	}
	return s
}

// serveMux builds the HTTP handler over an engine with default serving
// options. Split from cmdServe so tests drive it through httptest
// without binding a port.
func serveMux(eng *engine.Engine) http.Handler {
	return newServer(eng, serveOptions{MaxInflight: defaultMaxInflight}).handler()
}

// serverStats are the HTTP layer's own counters, reported alongside the
// engine's under "server" in /api/stats.
type serverStats struct {
	// Shed counts requests rejected with 503 by the in-flight limit;
	// Panics counts handler panics recovered into 500s.
	Shed   uint64 `json:"shed"`
	Panics uint64 `json:"panics"`
	// SnapshotWrites / SnapshotErrors count outcome-store snapshot
	// attempts (with -outcomes).
	SnapshotWrites uint64 `json:"snapshot_writes"`
	SnapshotErrors uint64 `json:"snapshot_errors"`
	MaxInflight    int    `json:"max_inflight"`
	Outcomes       string `json:"outcomes,omitempty"`
}

// serveStats is the /api/stats body: the engine's counters flattened at
// the top level (so jq paths like .queries keep working) plus the
// server block.
type serveStats struct {
	engine.Stats
	Server serverStats `json:"server"`
}

// queryRequest is the /api/query body: an engine.Query plus the
// optional per-request deadline.
type queryRequest struct {
	engine.Query
	// TimeoutMs bounds this query in milliseconds, overriding the
	// server's -deadline default. The query fails with 504 if it cannot
	// be answered in time (timed strategies degrade first; see engine).
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// batchRequest is the /api/batch request body.
type batchRequest struct {
	Queries   []engine.Query `json:"queries"`
	TimeoutMs int            `json:"timeout_ms,omitempty"`
	// Compute additionally executes each query's selected algorithm on
	// deterministically filled inputs and attaches a result block per
	// item. Same-algorithm queries of similar shape are executed through
	// one fused batch plan (see engine.Request.Compute).
	Compute bool `json:"compute,omitempty"`
}

// batchResult summarises one computed result: its shape, whether it was
// produced through a fused batch plan, and a checksum (the sum of the
// result's elements) so a client can confirm determinism without
// shipping the whole matrix.
type batchResult struct {
	Rows     int     `json:"rows"`
	Cols     int     `json:"cols"`
	Fused    bool    `json:"fused"`
	Checksum float64 `json:"checksum"`
}

// batchItem is one /api/batch result: a record (plus, with "compute", a
// result block) or an error.
type batchItem struct {
	*engine.Record
	Result *batchResult `json:"result,omitempty"`
	Error  string       `json:"error,omitempty"`
}

// batchResponse is the /api/batch response body.
type batchResponse struct {
	Results []batchItem `json:"results"`
}

// handler assembles the route table behind the panic-recovery
// middleware: every endpoint under the versioned /api/v1/ prefix (the
// documented surface) and under the legacy /api/ prefix as a deprecated
// alias serving the identical body with deprecation headers.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	api := func(method, path string, h http.HandlerFunc) {
		mux.HandleFunc(method+" /api/v1"+path, h)
		mux.HandleFunc(method+" /api"+path, deprecatedAlias(path, h))
	}
	api("GET", "/expressions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.eng.ListExpressions())
	})
	api("GET", "/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, serveStats{
			Stats: s.eng.Stats(),
			Server: serverStats{
				Shed:           s.shed.Load(),
				Panics:         s.panics.Load(),
				SnapshotWrites: s.snapWrites.Load(),
				SnapshotErrors: s.snapErrors.Load(),
				MaxInflight:    s.opts.MaxInflight,
				Outcomes:       s.opts.OutcomesPath,
			},
		})
	})
	api("GET", "/outcomes", s.handleOutcomes)
	api("POST", "/query", s.handleQuery)
	api("POST", "/batch", s.handleBatch)
	api("POST", "/feedback", s.handleFeedback)
	api("POST", "/admin/reload", s.handleReload)
	api("POST", "/admin/merge", s.handleMerge)
	return s.recoverPanics(mux)
}

// deprecatedAlias wraps a handler for the legacy unversioned route:
// the same body, plus RFC 8594-style headers steering clients to the
// versioned successor.
func deprecatedAlias(path string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", `</api/v1`+path+`>; rel="successor-version"`)
		h(w, r)
	}
}

// recoverPanics turns a handler panic into a 500 and a counter instead
// of a dead process: one poisoned request must not take the server (and
// its unsnapshotted feedback) down with it.
func (s *server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.panics.Add(1)
				fmt.Fprintf(os.Stderr, "lamb serve: panic in %s %s: %v\n", r.Method, r.URL.Path, v)
				// If the handler already wrote headers this is a no-op
				// on the status, but the connection still closes cleanly.
				writeError(w, http.StatusInternalServerError, errors.New("internal error"))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// handleHealthz is the live-vs-ready probe: the process answering at
// all is liveness; readiness additionally requires no reload mid-swap
// and headroom under the in-flight limit, so a load balancer stops
// routing to a saturated or reloading instance before requests shed.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type health struct {
		Ok     bool   `json:"ok"`
		Ready  bool   `json:"ready"`
		Reason string `json:"reason,omitempty"`
	}
	h := health{Ok: true, Ready: true}
	switch {
	case s.reloading.Load():
		h.Ready, h.Reason = false, "profile reload in progress"
	case s.sem != nil && len(s.sem) == cap(s.sem):
		h.Ready, h.Reason = false, "saturated: max in-flight requests reached"
	}
	status := http.StatusOK
	if !h.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

// admit reserves an in-flight slot, shedding with 503 + Retry-After
// when the server is saturated: a bounded queue fails fast instead of
// stacking requests into timeout.
func (s *server) admit(w http.ResponseWriter) (release func(), ok bool) {
	if s.sem == nil {
		return func() {}, true
	}
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, true
	default:
		s.shed.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, errors.New("server saturated: try again"))
		return nil, false
	}
}

// requestCtx derives the query context: the request's own context
// (cancelled when the client disconnects) bounded by timeout_ms or the
// server default.
func (s *server) requestCtx(r *http.Request, timeoutMs int) (context.Context, context.CancelFunc) {
	d := s.opts.Deadline
	if timeoutMs > 0 {
		d = time.Duration(timeoutMs) * time.Millisecond
	}
	if d > 0 {
		return context.WithTimeout(r.Context(), d)
	}
	return r.Context(), func() {}
}

// writeEngineError maps an engine error to its status: deadline and
// cancellation are 504 (the request ran out of time, not a bad
// request), everything else is the caller's 400.
func writeEngineError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		writeError(w, http.StatusGatewayTimeout, err)
		return
	}
	writeError(w, http.StatusBadRequest, err)
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var q queryRequest
	if err := decodeJSON(w, r, &q); err != nil {
		return
	}
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.requestCtx(r, q.TimeoutMs)
	defer cancel()
	// Chaos hook: the suite arms "serve.query" to panic or fail inside
	// the handler, behind the recovery middleware.
	if err := faultinject.FireCtx(ctx, "serve.query"); err != nil {
		writeEngineError(w, err)
		return
	}
	res := s.eng.Do(ctx, engine.Request{Queries: []engine.Query{q.Query}})
	if res[0].Err != nil {
		writeEngineError(w, res[0].Err)
		return
	}
	writeJSON(w, http.StatusOK, res[0].Record)
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := decodeJSON(w, r, &req); err != nil {
		return
	}
	if len(req.Queries) > maxBatchQueries {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d queries exceeds the %d-query limit; split it", len(req.Queries), maxBatchQueries))
		return
	}
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.requestCtx(r, req.TimeoutMs)
	defer cancel()
	results := s.eng.Do(ctx, engine.Request{Queries: req.Queries, Compute: req.Compute})
	resp := batchResponse{Results: make([]batchItem, len(results))}
	for i, res := range results {
		switch {
		case res.Err != nil && req.Compute:
			resp.Results[i] = batchItem{Record: res.Record, Error: res.Err.Error()}
		case res.Err != nil:
			resp.Results[i] = batchItem{Error: res.Err.Error()}
		case req.Compute:
			resp.Results[i] = batchItem{Record: res.Record, Result: &batchResult{
				Rows:     res.Output.Rows,
				Cols:     res.Output.Cols,
				Fused:    res.Fused,
				Checksum: denseChecksum(res.Output),
			}}
		default:
			resp.Results[i] = batchItem{Record: res.Record}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// denseChecksum sums a matrix's elements (stride-aware).
func denseChecksum(d *mat.Dense) float64 {
	var sum float64
	for c := 0; c < d.Cols; c++ {
		col := d.Data[c*d.Stride : c*d.Stride+d.Rows]
		for _, v := range col {
			sum += v
		}
	}
	return sum
}

func (s *server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	var fb engine.Feedback
	if err := decodeJSON(w, r, &fb); err != nil {
		return
	}
	if err := s.eng.Feedback(fb); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// handleOutcomes exports this process's firsthand feedback as a
// schema-versioned outcome snapshot — the gossip feed a router (or an
// operator's curl) pulls to spread one shard's learning fleet-wide.
// Only local evidence is exported: merged peer evidence stays out of
// the feed so gossip cannot echo it around the fleet.
func (s *server) handleOutcomes(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.eng.SnapshotLocalOutcomes())
}

// handleMerge installs a peer's outcome snapshot as evidence attributed
// to ?source=URL, optionally discounted by ?scale=F in (0,1]. The merge
// is idempotent — re-POSTing a snapshot is a no-op, a newer one from
// the same source supersedes the old — so retries and overlapping
// gossip rounds are safe.
func (s *server) handleMerge(w http.ResponseWriter, r *http.Request) {
	source := r.URL.Query().Get("source")
	if source == "" {
		writeError(w, http.StatusBadRequest, errors.New("merge requires ?source=<peer identity>"))
		return
	}
	scale := 1.0
	if raw := r.URL.Query().Get("scale"); raw != "" {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil || !(v > 0 && v <= 1) {
			writeError(w, http.StatusBadRequest, fmt.Errorf("scale %q must be a number in (0, 1]", raw))
			return
		}
		scale = v
	}
	snap, err := outcomes.DecodeSnapshot(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad snapshot: %w", err))
		return
	}
	// Chaos hook: the suite arms "serve.merge" to fail the install and
	// assert gossip errors stay contained.
	if err := faultinject.Fire("serve.merge"); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	merged, skipped := s.eng.MergeOutcomes(source, snap, scale)
	writeJSON(w, http.StatusOK, map[string]int{"merged": merged, "skipped": skipped})
}

// handleReload re-reads the -profile store and swaps it in atomically;
// in-flight queries finish on the store they started with. Errors leave
// the previous store serving.
func (s *server) handleReload(w http.ResponseWriter, r *http.Request) {
	gen, id, err := s.reloadProfiles()
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "profile": id, "generation": gen})
}

// reloadProfiles is the shared SIGHUP / admin-endpoint implementation:
// load and validate the store from disk first, then swap — a corrupt
// file on disk must never displace the store that is serving.
func (s *server) reloadProfiles() (gen uint64, id string, err error) {
	if s.opts.ProfilePath == "" {
		return 0, "", errors.New("no profile store to reload: serve was started without -profile")
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	s.reloading.Store(true)
	defer s.reloading.Store(false)
	// Chaos hook: the suite arms "serve.reload" to inject latency into
	// the swap window and race it against traffic.
	if err := faultinject.Fire("serve.reload"); err != nil {
		return 0, "", err
	}
	set, meta, err := loadProfileStore(s.opts.ProfilePath, s.opts.Backend)
	if err != nil {
		return 0, "", err
	}
	return s.eng.ReloadProfiles(set, meta), meta.ID(), nil
}

// restoreOutcomes loads the -outcomes snapshot at boot. A missing file
// is a fresh start; a corrupt file is a hard error — silently serving
// without the memory the operator asked for would defeat -outcomes.
func (s *server) restoreOutcomes() error {
	snap, err := outcomes.ReadFile(s.opts.OutcomesPath)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			fmt.Fprintf(os.Stderr, "lamb serve: no outcome snapshot at %s yet, starting fresh\n", s.opts.OutcomesPath)
			return nil
		}
		return fmt.Errorf("restoring outcomes: %w", err)
	}
	restored, skipped := s.eng.RestoreOutcomes(snap)
	fmt.Fprintf(os.Stderr, "lamb serve: restored %d outcomes from %s (skipped %d)\n",
		restored, s.opts.OutcomesPath, skipped)
	return nil
}

// snapshotOutcomes writes the outcome store to -outcomes atomically.
func (s *server) snapshotOutcomes() error {
	err := s.eng.SnapshotOutcomes().WriteFile(s.opts.OutcomesPath)
	if err != nil {
		s.snapErrors.Add(1)
		return err
	}
	s.snapWrites.Add(1)
	return nil
}

// maxBodyBytes caps request bodies: queries are a few hundred bytes,
// batches a few thousand per entry — 4 MiB is orders of magnitude of
// headroom while keeping a hostile body from buffering unbounded.
const maxBodyBytes = 4 << 20

// decodeJSON parses the size-capped request body into v, replying 400
// (or 413 for an oversized body) on failure.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
			return err
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return err
	}
	return nil
}

// encodeLog rate-limits response-encoding failure logs: encoding
// typically fails because the client went away mid-write, and a
// disconnect storm must not turn into a log storm.
var encodeLog struct {
	mu      sync.Mutex
	last    time.Time
	dropped uint64
}

func logEncodeError(err error) {
	encodeLog.mu.Lock()
	defer encodeLog.mu.Unlock()
	now := time.Now()
	if now.Sub(encodeLog.last) < time.Second {
		encodeLog.dropped++
		return
	}
	suffix := ""
	if encodeLog.dropped > 0 {
		suffix = fmt.Sprintf(" (%d similar errors suppressed)", encodeLog.dropped)
		encodeLog.dropped = 0
	}
	encodeLog.last = now
	fmt.Fprintf(os.Stderr, "lamb serve: response encoding failed: %v%s\n", err, suffix)
}

// writeJSON replies with a JSON body and status. Bodies are compact —
// records on the hot query/batch path do not pay for indentation —
// and encoding failures (usually a disconnected client) are logged
// rate-limited, never silently swallowed.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		logEncodeError(err)
	}
}

// writeError replies with {"error": ...}.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
