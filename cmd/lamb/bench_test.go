package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"lamb/internal/exec"
)

func TestNextBenchPathSkipsExisting(t *testing.T) {
	dir := t.TempDir()
	p1, err := nextBenchPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p1) != "BENCH_1.json" {
		t.Fatalf("first path %q, want BENCH_1.json", p1)
	}
	if err := os.WriteFile(p1, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	p2, err := nextBenchPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p2) != "BENCH_2.json" {
		t.Fatalf("second path %q, want BENCH_2.json", p2)
	}
}

func TestCmdBenchWritesJSON(t *testing.T) {
	dir := t.TempDir()
	if err := cmdBench([]string{"-short", "-reps", "1", "-json", "-out", dir}); err != nil {
		t.Fatalf("cmdBench: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_1.json"))
	if err != nil {
		t.Fatalf("BENCH_1.json not written: %v", err)
	}
	var rep exec.BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("BENCH_1.json does not parse: %v", err)
	}
	if len(rep.Results) == 0 || rep.PeakGFlops <= 0 {
		t.Fatalf("empty report: %+v", rep)
	}
}
