package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lamb/internal/exec"
)

func writeBench(t *testing.T, dir, name string, rep exec.BenchReport) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func benchPoint(kernel string, m, n, k int, gflops float64) exec.BenchResult {
	return exec.BenchResult{Kernel: kernel, M: m, N: n, K: k, GFlops: gflops, BestGFlops: gflops}
}

func TestCompareBenchNoRegression(t *testing.T) {
	dir := t.TempDir()
	oldRep := exec.BenchReport{Results: []exec.BenchResult{
		benchPoint("gemm", 256, 256, 256, 20),
		benchPoint("potrf", 256, 256, 0, 7),
	}}
	newRep := exec.BenchReport{Results: []exec.BenchResult{
		benchPoint("gemm", 256, 256, 256, 25), // improved
		benchPoint("potrf", 256, 256, 0, 6.5), // -7%, inside tolerance
		benchPoint("trsm", 256, 256, 0, 9),    // added point
	}}
	oldPath := writeBench(t, dir, "old.json", oldRep)
	newPath := writeBench(t, dir, "new.json", newRep)
	var out strings.Builder
	if err := compareBench(&out, oldPath, newPath); err != nil {
		t.Fatalf("unexpected failure: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "added") {
		t.Errorf("added point not reported:\n%s", out.String())
	}
}

func TestCompareBenchDetectsRegression(t *testing.T) {
	dir := t.TempDir()
	oldRep := exec.BenchReport{Results: []exec.BenchResult{
		benchPoint("gemm", 256, 256, 256, 20),
	}}
	newRep := exec.BenchReport{Results: []exec.BenchResult{
		benchPoint("gemm", 256, 256, 256, 15), // -25%: beyond tolerance
	}}
	oldPath := writeBench(t, dir, "old.json", oldRep)
	newPath := writeBench(t, dir, "new.json", newRep)
	var out strings.Builder
	err := compareBench(&out, oldPath, newPath)
	if err == nil {
		t.Fatalf("regression not detected:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("regression not marked in table:\n%s", out.String())
	}
}

func TestCompareBenchDistinguishesTransposedPoints(t *testing.T) {
	// gemm 256³ and gemm(Aᵀ) 256³ are different grid points and must not
	// be matched against each other.
	dir := t.TempDir()
	plain := benchPoint("gemm", 256, 256, 256, 20)
	transA := benchPoint("gemm", 256, 256, 256, 5)
	transA.TransA = true
	oldRep := exec.BenchReport{Results: []exec.BenchResult{plain, transA}}
	newRep := exec.BenchReport{Results: []exec.BenchResult{plain, transA}}
	oldPath := writeBench(t, dir, "old.json", oldRep)
	newPath := writeBench(t, dir, "new.json", newRep)
	var out strings.Builder
	if err := compareBench(&out, oldPath, newPath); err != nil {
		t.Fatalf("identical reports must compare clean: %v\n%s", err, out.String())
	}
}

func TestCompareBenchAlgorithmSection(t *testing.T) {
	dir := t.TempDir()
	algOld := exec.AlgBenchResult{Expr: "chain", Inst: "(13,18,23,28,33)", Alg: 1, GFlops: 10}
	algNew := algOld
	algNew.GFlops = 4 // -60%
	oldRep := exec.BenchReport{
		Results:    []exec.BenchResult{benchPoint("gemm", 64, 64, 64, 20)},
		Algorithms: []exec.AlgBenchResult{algOld},
	}
	newRep := exec.BenchReport{
		Results:    []exec.BenchResult{benchPoint("gemm", 64, 64, 64, 20)},
		Algorithms: []exec.AlgBenchResult{algNew},
	}
	oldPath := writeBench(t, dir, "old.json", oldRep)
	newPath := writeBench(t, dir, "new.json", newRep)
	var out strings.Builder
	if err := compareBench(&out, oldPath, newPath); err == nil {
		t.Fatalf("whole-algorithm regression not detected:\n%s", out.String())
	}
}

func TestCompareBenchNoCommonPoints(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeBench(t, dir, "old.json", exec.BenchReport{Results: []exec.BenchResult{
		benchPoint("gemm", 64, 64, 64, 20),
	}})
	newPath := writeBench(t, dir, "new.json", exec.BenchReport{Results: []exec.BenchResult{
		benchPoint("gemm", 128, 128, 128, 20),
	}})
	var out strings.Builder
	if err := compareBench(&out, oldPath, newPath); err == nil {
		t.Fatal("disjoint reports must fail the comparison")
	}
}
