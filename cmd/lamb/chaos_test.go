package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	osexec "os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"lamb/internal/engine"
	"lamb/internal/exec"
	"lamb/internal/faultinject"
	"lamb/internal/outcomes"
	"lamb/internal/profile"
)

// The chaos suite kills, starves, and corrupts a real serving process
// and asserts the survivability contract: feedback recovers to the last
// snapshot, in-flight clients get prompt errors instead of hangs, and
// injected faults are surfaced, not swallowed. Process-level tests
// re-exec the test binary as `lamb serve` via TestChaosServeHelper;
// in-process tests arm failpoints directly. All tests are named
// TestChaos* so CI runs them with `go test -race -run Chaos`.

const (
	serveHelperEnv = "LAMB_SERVE_HELPER"
	serveArgsEnv   = "LAMB_SERVE_ARGS"
	// serveArgsSep joins serve flags in the env var; it cannot appear in
	// any flag value.
	serveArgsSep = "\x1f"
)

// TestChaosServeHelper is not a test: it is the subprocess body the
// chaos tests re-exec the test binary into. Gated on an env var so a
// normal `go test` run skips it.
func TestChaosServeHelper(t *testing.T) {
	if os.Getenv(serveHelperEnv) != "1" {
		t.Skip("subprocess helper; only runs re-execed by the chaos tests")
	}
	args := strings.Split(os.Getenv(serveArgsEnv), serveArgsSep)
	if err := cmdServe(args); err != nil {
		fmt.Fprintf(os.Stderr, "lamb serve helper: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// serveProc is one re-execed serving process under chaos.
type serveProc struct {
	t    *testing.T
	cmd  *osexec.Cmd
	addr string
	done chan error

	mu    sync.Mutex
	lines []string
}

// startServeProc re-execs the test binary as `lamb serve args...` with
// extraEnv appended (e.g. LAMB_FAULTPOINTS), waits for the listen
// address on stderr, and returns the running process.
func startServeProc(t *testing.T, extraEnv []string, args ...string) *serveProc {
	t.Helper()
	p, err := tryStartServeProc(t, extraEnv, args...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// tryStartServeProc is startServeProc returning the boot failure
// instead of fataling, so callers racing for a reserved port (see
// startServeOnReservedPort) can retry.
func tryStartServeProc(t *testing.T, extraEnv []string, args ...string) (*serveProc, error) {
	t.Helper()
	cmd := osexec.Command(os.Args[0], "-test.run", "^TestChaosServeHelper$", "-test.v")
	cmd.Env = append(os.Environ(),
		serveHelperEnv+"=1",
		serveArgsEnv+"="+strings.Join(args, serveArgsSep))
	cmd.Env = append(cmd.Env, extraEnv...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	p := &serveProc{t: t, cmd: cmd, done: make(chan error, 1)}
	t.Cleanup(func() { _ = cmd.Process.Kill() })
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			p.mu.Lock()
			p.lines = append(p.lines, line)
			p.mu.Unlock()
			if rest, ok := strings.CutPrefix(line, "lamb serve: listening on "); ok {
				if addr, _, ok := strings.Cut(rest, " "); ok {
					addrc <- addr
				}
			}
		}
		p.done <- cmd.Wait()
	}()
	select {
	case p.addr = <-addrc:
		return p, nil
	case <-p.done:
		return nil, fmt.Errorf("server exited before announcing its address; stderr:\n%s", p.stderrText())
	case <-time.After(20 * time.Second):
		_ = cmd.Process.Kill()
		return nil, fmt.Errorf("server never announced its address; stderr:\n%s", p.stderrText())
	}
}

func (p *serveProc) url(path string) string { return "http://" + p.addr + path }

func (p *serveProc) stderrText() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return strings.Join(p.lines, "\n")
}

// wait blocks until the process exits and returns its exit code
// (-1 when killed by a signal).
func (p *serveProc) wait(timeout time.Duration) int {
	p.t.Helper()
	select {
	case err := <-p.done:
		if err == nil {
			return 0
		}
		if ee, ok := err.(*osexec.ExitError); ok {
			return ee.ExitCode()
		}
		p.t.Fatalf("wait: %v", err)
		return -1
	case <-time.After(timeout):
		_ = p.cmd.Process.Kill()
		p.t.Fatalf("server did not exit within %v; stderr:\n%s", timeout, p.stderrText())
		return -1
	}
}

func (p *serveProc) signal(sig os.Signal) {
	p.t.Helper()
	if err := p.cmd.Process.Signal(sig); err != nil {
		p.t.Fatalf("signal %v: %v", sig, err)
	}
}

// waitFor polls cond until it holds or the timeout expires.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// procStats fetches /api/v1/stats without a testing.T (safe in polling
// conditions that tolerate transient failure).
func procStats(url string) (serveStats, error) {
	var s serveStats
	resp, err := http.Get(url)
	if err != nil {
		return s, err
	}
	defer resp.Body.Close()
	return s, jsonDecode(resp, &s)
}

func jsonDecode(resp *http.Response, v any) error {
	return json.NewDecoder(resp.Body).Decode(v)
}

const ciProfile = "../../testdata/profile-ci.json"

// TestChaosKillRestartRecoversOutcomes is the durability acceptance
// test: feedback under traffic, SIGKILL mid-serve, restart on the same
// -outcomes file, and the accumulated learning is back — bounded only
// by the snapshot interval, which the test closes by waiting for the
// snapshot to contain everything before killing.
func TestChaosKillRestartRecoversOutcomes(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "outcomes.json")
	args := []string{"-addr", "127.0.0.1:0", "-profile", ciProfile,
		"-outcomes", outPath, "-snapshot-every", "50ms"}
	p := startServeProc(t, nil, args...)

	const algs, reps = 3, 2
	for rep := 0; rep < reps; rep++ {
		for alg := 1; alg <= algs; alg++ {
			resp, body, err := postJSONRaw(p.url("/api/v1/feedback"), engine.Feedback{
				Expr: "aatb", Instance: []int{80, 514, 768}, Algorithm: alg, Seconds: float64(alg) * 1e-3,
			})
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Fatalf("feedback: %v %s", err, body)
			}
		}
	}
	// Wait until a snapshot holds every outcome, then kill without
	// warning: nothing accepted before the snapshot may be lost.
	waitFor(t, 10*time.Second, "snapshot to contain all feedback", func() bool {
		snap, err := outcomes.ReadFile(outPath)
		if err != nil {
			return false
		}
		total := 0
		for _, rec := range snap.Records {
			for _, o := range rec.Outcomes {
				total += o.Count
			}
		}
		return total == algs*reps
	})
	p.signal(syscall.SIGKILL)
	if code := p.wait(10 * time.Second); code == 0 {
		t.Fatal("SIGKILL'd server reported a clean exit")
	}

	// Restart on the same snapshot file: the memory must come back.
	p2 := startServeProc(t, nil, args...)
	stats, err := procStats(p2.url("/api/v1/stats"))
	if err != nil {
		t.Fatal(err)
	}
	if stats.FeedbackRestored != algs || stats.FeedbackInstances != 1 {
		t.Fatalf("restored stats: FeedbackRestored=%d FeedbackInstances=%d, want %d/1\nstderr:\n%s",
			stats.FeedbackRestored, stats.FeedbackInstances, algs, p2.stderrText())
	}
	// The restored evidence serves: an adaptive query on the instance
	// answers informed.
	resp, body, err := postJSONRaw(p2.url("/api/v1/query"), engine.Query{
		Expr: "aatb", Instance: []int{80, 514, 768}, Strategy: "adaptive",
	})
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("adaptive query after restore: %v %s", err, body)
	}
	if stats, err = procStats(p2.url("/api/v1/stats")); err != nil || stats.AdaptiveInformed != 1 {
		t.Fatalf("restored outcomes did not inform the adaptive query: %+v (err %v)", stats, err)
	}

	p2.signal(syscall.SIGTERM)
	if code := p2.wait(10 * time.Second); code != 0 {
		t.Fatalf("clean shutdown exited %d; stderr:\n%s", code, p2.stderrText())
	}
}

// TestChaosKillMidFlightClientsGetErrors: SIGKILL with a query in
// flight. The client must get a prompt connection error — not a hang
// for the query's (injected 10s) duration.
func TestChaosKillMidFlightClientsGetErrors(t *testing.T) {
	p := startServeProc(t,
		[]string{faultinject.EnvVar + "=engine.query=sleep:10s"},
		"-addr", "127.0.0.1:0")

	type outcome struct {
		status int
		err    error
	}
	resc := make(chan outcome, 1)
	go func() {
		resp, _, err := postJSONRaw(p.url("/api/v1/query"), engine.Query{Expr: "aatb", Instance: []int{10, 20, 30}})
		if err != nil {
			resc <- outcome{0, err}
			return
		}
		resc <- outcome{resp.StatusCode, nil}
	}()
	// The query is in flight once the engine has counted it.
	waitFor(t, 10*time.Second, "query to be in flight", func() bool {
		s, err := procStats(p.url("/api/v1/stats"))
		return err == nil && s.Queries >= 1
	})
	killed := time.Now()
	p.signal(syscall.SIGKILL)
	select {
	case res := <-resc:
		if res.err == nil {
			t.Fatalf("client got status %d from a killed server", res.status)
		}
		if d := time.Since(killed); d > 3*time.Second {
			t.Fatalf("client error took %v after the kill", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client hung after the server was killed")
	}
	p.wait(10 * time.Second)
}

// TestChaosSnapshotWriteFailure: with the snapshot write failpoint
// armed, periodic snapshots fail visibly (counter climbs, serving
// continues) and the final shutdown snapshot failure is a non-zero
// exit, not a silent loss.
func TestChaosSnapshotWriteFailure(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "outcomes.json")
	p := startServeProc(t,
		[]string{faultinject.EnvVar + "=outcomes.write=error"},
		"-addr", "127.0.0.1:0", "-outcomes", outPath, "-snapshot-every", "50ms")

	waitFor(t, 10*time.Second, "a snapshot error to be counted", func() bool {
		s, err := procStats(p.url("/api/v1/stats"))
		return err == nil && s.Server.SnapshotErrors >= 1
	})
	// Snapshot failures must not take queries down with them.
	resp, body, err := postJSONRaw(p.url("/api/v1/query"), engine.Query{Expr: "aatb", Instance: []int{10, 20, 30}})
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("query during snapshot failures: %v %s", err, body)
	}
	p.signal(syscall.SIGTERM)
	if code := p.wait(10 * time.Second); code == 0 {
		t.Fatalf("shutdown with a failed final snapshot exited clean; stderr:\n%s", p.stderrText())
	}
}

// TestChaosSIGHUPReloadsProfiles: SIGHUP re-reads the -profile store in
// a live process; the generation climbs without dropping the listener.
func TestChaosSIGHUPReloadsProfiles(t *testing.T) {
	p := startServeProc(t, nil, "-addr", "127.0.0.1:0", "-profile", ciProfile)
	s, err := procStats(p.url("/api/v1/stats"))
	if err != nil || s.Profile == nil || s.Profile.Generation != 1 {
		t.Fatalf("boot stats %+v (err %v)", s.Profile, err)
	}
	p.signal(syscall.SIGHUP)
	waitFor(t, 10*time.Second, "reload generation to advance", func() bool {
		s, err := procStats(p.url("/api/v1/stats"))
		return err == nil && s.Profile != nil && s.Profile.Generation == 2
	})
	p.signal(syscall.SIGTERM)
	if code := p.wait(10 * time.Second); code != 0 {
		t.Fatalf("exit code %d; stderr:\n%s", code, p.stderrText())
	}
}

// TestChaosReloadUnderTraffic races reloads (with injected latency
// widening the swap window) against queries and health checks,
// in-process so -race watches every access.
func TestChaosReloadUnderTraffic(t *testing.T) {
	if err := faultinject.Arm("serve.reload", "sleep:10ms"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultinject.Reset)
	path := writeTestProfileStore(t, "chaos-reload.json")
	set, meta, err := profile.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Config{Profiles: set, ProfileMeta: meta})
	srv := httptest.NewServer(newServer(eng, serveOptions{
		ProfilePath: path, Backend: exec.NewDefaultSimulated().Name(),
	}).handler())
	t.Cleanup(srv.Close)

	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				resp, body, err := postJSONRaw(srv.URL+"/api/v1/query", engine.Query{
					Expr: "aatb", Instance: []int{15 + w, 25 + i, 35}, Strategy: "min-predicted",
				})
				if err != nil {
					t.Error(err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("query during chaos reload: %d %s", resp.StatusCode, body)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if resp, body, err := postJSONRaw(srv.URL+"/api/v1/admin/reload", struct{}{}); err != nil || resp.StatusCode != http.StatusOK {
				t.Errorf("reload %d: %v %s", i, err, body)
				return
			}
		}
	}()
	// Health probes during the swaps must always answer: 200 ready or
	// 503 mid-reload, never a hang or a 5xx surprise.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			resp, err := http.Get(srv.URL + "/healthz")
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
				t.Errorf("healthz status %d", resp.StatusCode)
				return
			}
		}
	}()
	wg.Wait()
	if hits := faultinject.Hits("serve.reload"); hits != 5 {
		t.Fatalf("serve.reload fired %d times, want 5", hits)
	}
	stats, err := procStats(srv.URL + "/api/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Profile == nil || stats.Profile.Generation != 6 {
		t.Fatalf("generation %+v, want 6", stats.Profile)
	}
}
