package main

// lamb loadtest — a load generator against a running `lamb serve` (or
// `lamb route`). The default is closed-loop: each worker keeps one
// request in flight, the right shape for capacity planning of the
// in-process engine. With -rate N it runs open-loop instead: arrivals
// are scheduled on a fixed uniform or Poisson clock and latency is
// measured from each request's *intended* start, so tail latencies
// under overload are honest (coordinated-omission-free) — a stalled
// server cannot slow the arrival of the load that would expose it.
// Arrivals that would exceed -max-outstanding are dropped and reported,
// never silently queued. In both modes a 503's Retry-After is honored
// (sleep, then retry, up to -retry-503 times) instead of hammering a
// shedding server with an immediate retry storm; shed and retry counts
// surface in the report. The /api/stats counters are sampled before and
// after, so the report can attribute throughput to cache layers (hit
// rates) and to the fused batched path (coalesced / fused counters).

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/bits"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lamb"
	"lamb/internal/cache"
	"lamb/internal/engine"
	"lamb/internal/report"
)

// cmdLoadtest drives a running serve instance and reports latency
// percentiles, throughput, and cache-hit-rate deltas.
func cmdLoadtest(args []string) error {
	fs := flag.NewFlagSet("loadtest", flag.ExitOnError)
	target := fs.String("target", "http://127.0.0.1:8374", "base URL of the running lamb serve")
	duration := fs.Duration("duration", 5*time.Second, "how long to generate load")
	concurrency := fs.Int("concurrency", 4, "closed-loop workers, one request in flight each (ignored when -rate > 0)")
	batch := fs.Int("batch", 0, "queries per request: 0/1 = POST /api/query, >1 = POST /api/batch")
	batchMix := fs.Bool("batch-mix", false, "with -batch > 1: sample each query's dimensions within the base instance's power-of-two octave and request computed results, so batches exercise the heterogeneous fused execution path")
	exprName := fs.String("expr", "aatb", "expression to query")
	instStr := fs.String("instance", "24,16,8", "instance dimensions, e.g. 24,16,8")
	strategy := fs.String("strategy", "", "selection strategy (empty = server default)")
	spread := fs.Int("spread", 4, "distinct instances cycled through (first dimension stepped), so batches exercise more than one coalesced query")
	timeoutMs := fs.Int("timeout-ms", 0, "per-request query deadline forwarded to the server (0 = none)")
	rate := fs.Float64("rate", 0, "open-loop arrival rate in requests/s; latency is measured from each intended start (0 = closed loop)")
	arrivals := fs.String("arrivals", "uniform", "open-loop arrival process: uniform or poisson")
	maxOutstanding := fs.Int("max-outstanding", 256, "open-loop cap on in-flight requests; arrivals beyond it are dropped and reported, never queued")
	retry503 := fs.Int("retry-503", 3, "times to honor a 503's Retry-After (sleep, retry) before giving the request up as shed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *concurrency < 1 || *duration <= 0 {
		return fmt.Errorf("need -concurrency >= 1 and -duration > 0")
	}
	if *rate < 0 || (*rate > 0 && *maxOutstanding < 1) {
		return fmt.Errorf("need -rate >= 0 and -max-outstanding >= 1")
	}
	if *arrivals != "uniform" && *arrivals != "poisson" {
		return fmt.Errorf("unknown -arrivals %q (want uniform or poisson)", *arrivals)
	}
	if *retry503 < 0 {
		*retry503 = 0
	}
	if *batchMix && *batch <= 1 {
		return fmt.Errorf("-batch-mix needs -batch > 1")
	}
	ex, err := lookupArity(*exprName)
	if err != nil {
		return err
	}
	inst, err := parseInstance(*instStr, ex)
	if err != nil {
		return err
	}

	// The query mix: -spread distinct instances. By default the first
	// dimension is stepped; a batch over them still coalesces duplicates
	// (batch width > spread), which is exactly the serving pattern the
	// fused path exists for. With -batch-mix every dimension is instead
	// sampled uniformly within its power-of-two octave (same bits.Len as
	// the base instance), so computed batches land in one shape-octave
	// bucket and exercise the heterogeneous (padded) fused plan.
	if *spread < 1 {
		*spread = 1
	}
	mixRng := rand.New(rand.NewSource(0x10ad7e57)) // fixed seed: reproducible mixes across runs
	queries := make([]engine.Query, *spread)
	for i := range queries {
		qi := make([]int, len(inst))
		copy(qi, inst)
		if *batchMix {
			for j, d := range qi {
				lo := 1 << (bits.Len(uint(d)) - 1)
				qi[j] = lo + mixRng.Intn(lo) // [lo, 2*lo): same octave as d
			}
		} else {
			qi[0] += i
		}
		queries[i] = engine.Query{Expr: *exprName, Instance: qi, Strategy: *strategy}
	}

	client := &http.Client{Timeout: 30 * time.Second}
	before, err := fetchStats(client, *target)
	if err != nil {
		return fmt.Errorf("target not reachable: %w", err)
	}

	// nextRequest builds the n-th request of the cycled mix; shared by
	// the closed- and open-loop generators.
	nextRequest := func(n int) (path string, body []byte) {
		if *batch > 1 {
			req := batchRequest{Queries: make([]engine.Query, *batch), TimeoutMs: *timeoutMs, Compute: *batchMix}
			for i := range req.Queries {
				req.Queries[i] = queries[(n+i)%len(queries)]
			}
			body, _ = json.Marshal(req)
			return "/api/batch", body
		}
		req := queryRequest{Query: queries[n%len(queries)], TimeoutMs: *timeoutMs}
		body, _ = json.Marshal(req)
		return "/api/query", body
	}

	var counts loadCounts
	deadline := time.Now().Add(*duration)
	var all []float64
	if *rate > 0 {
		all = runOpenLoop(client, *target, nextRequest, openLoopConfig{
			rate:           *rate,
			poisson:        *arrivals == "poisson",
			maxOutstanding: *maxOutstanding,
			retry503:       *retry503,
			deadline:       deadline,
		}, &counts)
	} else {
		all = runClosedLoop(client, *target, nextRequest, *concurrency, *retry503, deadline, &counts)
	}
	after, err := fetchStats(client, *target)
	if err != nil {
		return err
	}

	sort.Float64s(all)
	qPerReq := 1
	if *batch > 1 {
		qPerReq = *batch
	}
	okReqs := uint64(len(all))
	secs := duration.Seconds()

	if *rate > 0 {
		fmt.Printf("lamb loadtest — %s for %s, open loop at %g req/s (%s arrivals), %d queries/request\n\n",
			*target, *duration, *rate, *arrivals, qPerReq)
	} else {
		fmt.Printf("lamb loadtest — %s for %s, %d workers, %d queries/request\n\n",
			*target, *duration, *concurrency, qPerReq)
	}
	rows := [][]string{
		{"requests", fmt.Sprint(counts.requests.Load())},
		{"ok", fmt.Sprint(okReqs)},
		{"shed (503)", fmt.Sprint(counts.shed.Load())},
		{"retries (Retry-After)", fmt.Sprint(counts.retries.Load())},
		{"errors", fmt.Sprint(counts.errors.Load())},
	}
	if *rate > 0 {
		rows = append(rows,
			[]string{"dropped (outstanding cap)", fmt.Sprint(counts.dropped.Load())},
			[]string{"late sends", fmt.Sprint(counts.late.Load())},
		)
	}
	rows = append(rows,
		[]string{"requests/s", fmt.Sprintf("%.1f", float64(okReqs)/secs)},
		[]string{"queries/s", fmt.Sprintf("%.1f", float64(okReqs)*float64(qPerReq)/secs)},
		[]string{"p50 latency", fmtLatency(percentile(all, 0.50))},
		[]string{"p90 latency", fmtLatency(percentile(all, 0.90))},
		[]string{"p99 latency", fmtLatency(percentile(all, 0.99))},
		[]string{"p99.9 latency", fmtLatency(percentile(all, 0.999))},
		[]string{"max latency", fmtLatency(percentile(all, 1))},
	)
	if err := report.Table(os.Stdout, rows); err != nil {
		return err
	}

	fmt.Println()
	d := statsDelta(before, after)
	rows = [][]string{{"engine layer", "hits", "misses", "hit rate"}}
	for _, l := range []struct {
		name string
		s    cache.Stats
	}{
		{"expressions", d.Expressions},
		{"bindings", d.Bindings},
		{"plans", d.Plans},
		{"batch plans", d.BatchPlans},
	} {
		rows = append(rows, []string{l.name, fmt.Sprint(l.s.Hits), fmt.Sprint(l.s.Misses), hitRate(l.s)})
	}
	if err := report.Table(os.Stdout, rows); err != nil {
		return err
	}
	fmt.Printf("\nqueries %d  deduped %d  coalesced %d  fused %d  degraded %d\n",
		d.Queries, d.Deduped, d.Coalesced, d.FusedQueries, d.DegradedQueries)
	fmt.Printf("fuse rejected: too_big_arena %d  unregistered %d  hetero_prepadding %d\n",
		d.FuseRejected.TooBigArena, d.FuseRejected.Unregistered, d.FuseRejected.HeteroPrepadding)
	if n := counts.errors.Load(); n > 0 {
		return fmt.Errorf("%d request(s) failed", n)
	}
	return nil
}

// loadCounts aggregates the run's outcome counters across generators.
type loadCounts struct {
	requests atomic.Uint64 // arrivals, including dropped ones
	errors   atomic.Uint64 // transport errors and non-200/503 statuses
	shed     atomic.Uint64 // 503 responses observed (including retried ones)
	retries  atomic.Uint64 // Retry-After sleeps taken before re-sending
	dropped  atomic.Uint64 // open loop: arrivals past the outstanding cap
	late     atomic.Uint64 // open loop: sends more than one mean gap behind schedule
}

// sendShedAware posts one request, honoring Retry-After on 503: sleep
// as the server asked (capped at the run deadline), then retry, up to
// maxRetries times. Returns the final status; a 503 that survives the
// retry budget is the caller's signal the request was shed for good.
func sendShedAware(client *http.Client, url string, body []byte, maxRetries int, deadline time.Time, c *loadCounts) (int, error) {
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		status := resp.StatusCode
		wait := retryAfter(resp)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if status != http.StatusServiceUnavailable {
			return status, nil
		}
		// Load shedding is the server working as designed; counted
		// separately so saturation is visible without polluting the
		// error column.
		c.shed.Add(1)
		if attempt >= maxRetries || time.Now().Add(wait).After(deadline) {
			return status, nil
		}
		c.retries.Add(1)
		time.Sleep(wait)
	}
}

// retryAfter reads a 503's Retry-After (delay-seconds form, the shape
// serve and route emit); absent or malformed falls back to one second.
func retryAfter(resp *http.Response) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return time.Second
}

// runClosedLoop keeps one request in flight per worker until the
// deadline; latency is measured from the send (including any honored
// Retry-After waits, which a real client would also experience).
func runClosedLoop(client *http.Client, target string, nextRequest func(int) (string, []byte), workers, retry503 int, deadline time.Time, c *loadCounts) []float64 {
	var wg sync.WaitGroup
	latencies := make([][]float64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lats := make([]float64, 0, 4096)
			for n := 0; time.Now().Before(deadline); n++ {
				path, body := nextRequest(n)
				start := time.Now()
				status, err := sendShedAware(client, target+path, body, retry503, deadline, c)
				elapsed := time.Since(start).Seconds()
				c.requests.Add(1)
				switch {
				case err != nil:
					c.errors.Add(1)
				case status == http.StatusServiceUnavailable:
					// shed already counted per response
				case status != http.StatusOK:
					c.errors.Add(1)
				default:
					lats = append(lats, elapsed)
				}
			}
			latencies[w] = lats
		}(w)
	}
	wg.Wait()
	var all []float64
	for _, l := range latencies {
		all = append(all, l...)
	}
	return all
}

type openLoopConfig struct {
	rate           float64
	poisson        bool
	maxOutstanding int
	retry503       int
	deadline       time.Time
}

// runOpenLoop schedules arrivals on a fixed clock (uniform spacing, or
// exponential gaps for a Poisson process) independent of how the server
// is doing, and measures each latency from the request's *intended*
// start. That kills coordinated omission: a server that stalls keeps
// accumulating scheduled arrivals against it, and the queueing delay of
// the requests it forced to wait shows up in the tail percentiles
// instead of silently throttling the generator. Arrivals that can't be
// sent because maxOutstanding requests are already in flight are
// dropped and counted — queueing them would quietly turn the generator
// back into a closed loop.
func runOpenLoop(client *http.Client, target string, nextRequest func(int) (string, []byte), cfg openLoopConfig, c *loadCounts) []float64 {
	meanGap := time.Duration(float64(time.Second) / cfg.rate)
	if meanGap <= 0 {
		meanGap = time.Nanosecond
	}
	nextGap := func() time.Duration {
		if cfg.poisson {
			return time.Duration(rand.ExpFloat64() * float64(meanGap))
		}
		return meanGap
	}

	var (
		wg          sync.WaitGroup
		mu          sync.Mutex
		lats        []float64
		outstanding atomic.Int64
	)
	n := 0
	for intended := time.Now(); intended.Before(cfg.deadline); intended = intended.Add(nextGap()) {
		if d := time.Until(intended); d > 0 {
			time.Sleep(d)
		} else if -d > meanGap {
			// The generator itself fell more than one mean gap behind
			// schedule (scheduler jitter, GC): the send is late and the
			// measured latency already includes that slip. Reported so
			// a saturated *generator* can't masquerade as a fast server.
			c.late.Add(1)
		}
		c.requests.Add(1)
		path, body := nextRequest(n)
		n++
		if outstanding.Load() >= int64(cfg.maxOutstanding) {
			c.dropped.Add(1)
			continue
		}
		outstanding.Add(1)
		wg.Add(1)
		go func(intended time.Time, path string, body []byte) {
			defer wg.Done()
			defer outstanding.Add(-1)
			status, err := sendShedAware(client, target+path, body, cfg.retry503, cfg.deadline, c)
			elapsed := time.Since(intended).Seconds()
			switch {
			case err != nil:
				c.errors.Add(1)
			case status == http.StatusServiceUnavailable:
				// shed already counted per response
			case status != http.StatusOK:
				c.errors.Add(1)
			default:
				mu.Lock()
				lats = append(lats, elapsed)
				mu.Unlock()
			}
		}(intended, path, body)
	}
	wg.Wait()
	return lats
}

// lookupArity resolves an expression name to its arity for instance
// parsing, with the registered names in the error.
func lookupArity(name string) (int, error) {
	ex, err := lamb.LookupExpression(name)
	if err != nil {
		return 0, err
	}
	return ex.Arity(), nil
}

// fetchStats samples /api/stats into the flattened serve shape.
func fetchStats(client *http.Client, target string) (engine.Stats, error) {
	resp, err := client.Get(target + "/api/stats")
	if err != nil {
		return engine.Stats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return engine.Stats{}, fmt.Errorf("GET /api/stats: %s", resp.Status)
	}
	var s engine.Stats
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return engine.Stats{}, fmt.Errorf("decoding /api/stats: %w", err)
	}
	return s, nil
}

// statsDelta subtracts the counter fields sampled before the run from
// those sampled after, so the report reflects only this run's traffic.
func statsDelta(before, after engine.Stats) engine.Stats {
	d := after
	d.Expressions = cacheDelta(before.Expressions, after.Expressions)
	d.Bindings = cacheDelta(before.Bindings, after.Bindings)
	d.Plans = cacheDelta(before.Plans, after.Plans)
	d.CallPlans = cacheDelta(before.CallPlans, after.CallPlans)
	d.BatchPlans = cacheDelta(before.BatchPlans, after.BatchPlans)
	d.Queries = after.Queries - before.Queries
	d.Deduped = after.Deduped - before.Deduped
	d.Coalesced = after.Coalesced - before.Coalesced
	d.FusedQueries = after.FusedQueries - before.FusedQueries
	d.DegradedQueries = after.DegradedQueries - before.DegradedQueries
	d.FuseRejected = engine.FuseRejects{
		TooBigArena:      after.FuseRejected.TooBigArena - before.FuseRejected.TooBigArena,
		Unregistered:     after.FuseRejected.Unregistered - before.FuseRejected.Unregistered,
		HeteroPrepadding: after.FuseRejected.HeteroPrepadding - before.FuseRejected.HeteroPrepadding,
	}
	return d
}

func cacheDelta(before, after cache.Stats) cache.Stats {
	return cache.Stats{
		Hits:   after.Hits - before.Hits,
		Misses: after.Misses - before.Misses,
		Size:   after.Size,
	}
}

func hitRate(s cache.Stats) string {
	total := s.Hits + s.Misses
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(s.Hits)/float64(total))
}

// percentile reads the p-quantile from a sorted latency slice (nearest
// rank; p = 1 is the maximum).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func fmtLatency(s float64) string {
	switch {
	case s <= 0:
		return "-"
	case s < 1e-3:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}
