package main

// lamb loadtest — a closed-loop load generator against a running
// `lamb serve`. Each worker keeps one request in flight (query or
// batch), so the measured latencies are per-request under a fixed
// concurrency, not coordinated-omission-free open-loop numbers — the
// right shape for capacity planning of the in-process engine. The
// /api/stats counters are sampled before and after, so the report can
// attribute throughput to cache layers (hit rates) and to the fused
// batched path (coalesced / fused counters).

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lamb"
	"lamb/internal/cache"
	"lamb/internal/engine"
	"lamb/internal/report"
)

// cmdLoadtest drives a running serve instance and reports latency
// percentiles, throughput, and cache-hit-rate deltas.
func cmdLoadtest(args []string) error {
	fs := flag.NewFlagSet("loadtest", flag.ExitOnError)
	target := fs.String("target", "http://127.0.0.1:8374", "base URL of the running lamb serve")
	duration := fs.Duration("duration", 5*time.Second, "how long to generate load")
	concurrency := fs.Int("concurrency", 4, "concurrent workers, one request in flight each")
	batch := fs.Int("batch", 0, "queries per request: 0/1 = POST /api/query, >1 = POST /api/batch")
	exprName := fs.String("expr", "aatb", "expression to query")
	instStr := fs.String("instance", "24,16,8", "instance dimensions, e.g. 24,16,8")
	strategy := fs.String("strategy", "", "selection strategy (empty = server default)")
	spread := fs.Int("spread", 4, "distinct instances cycled through (first dimension stepped), so batches exercise more than one coalesced query")
	timeoutMs := fs.Int("timeout-ms", 0, "per-request query deadline forwarded to the server (0 = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *concurrency < 1 || *duration <= 0 {
		return fmt.Errorf("need -concurrency >= 1 and -duration > 0")
	}
	ex, err := lookupArity(*exprName)
	if err != nil {
		return err
	}
	inst, err := parseInstance(*instStr, ex)
	if err != nil {
		return err
	}

	// The query mix: -spread distinct instances stepped on the first
	// dimension. A batch over them still coalesces duplicates (batch
	// width > spread), which is exactly the serving pattern the fused
	// path exists for.
	if *spread < 1 {
		*spread = 1
	}
	queries := make([]engine.Query, *spread)
	for i := range queries {
		qi := make([]int, len(inst))
		copy(qi, inst)
		qi[0] += i
		queries[i] = engine.Query{Expr: *exprName, Instance: qi, Strategy: *strategy}
	}

	client := &http.Client{Timeout: 30 * time.Second}
	before, err := fetchStats(client, *target)
	if err != nil {
		return fmt.Errorf("target not reachable: %w", err)
	}

	var (
		wg        sync.WaitGroup
		reqCount  atomic.Uint64
		errCount  atomic.Uint64
		shedCount atomic.Uint64
		latencies = make([][]float64, *concurrency)
	)
	deadline := time.Now().Add(*duration)
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lats := make([]float64, 0, 4096)
			for n := 0; time.Now().Before(deadline); n++ {
				var body []byte
				var path string
				if *batch > 1 {
					req := batchRequest{Queries: make([]engine.Query, *batch), TimeoutMs: *timeoutMs}
					for i := range req.Queries {
						req.Queries[i] = queries[(n+i)%len(queries)]
					}
					body, _ = json.Marshal(req)
					path = "/api/batch"
				} else {
					req := queryRequest{Query: queries[n%len(queries)], TimeoutMs: *timeoutMs}
					body, _ = json.Marshal(req)
					path = "/api/query"
				}
				start := time.Now()
				resp, err := client.Post(*target+path, "application/json", bytes.NewReader(body))
				elapsed := time.Since(start).Seconds()
				reqCount.Add(1)
				if err != nil {
					errCount.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusServiceUnavailable:
					// Load shedding is the server working as designed;
					// counted separately so saturation is visible without
					// polluting the error column.
					shedCount.Add(1)
					continue
				case resp.StatusCode != http.StatusOK:
					errCount.Add(1)
					continue
				}
				lats = append(lats, elapsed)
			}
			latencies[w] = lats
		}(w)
	}
	wg.Wait()
	after, err := fetchStats(client, *target)
	if err != nil {
		return err
	}

	var all []float64
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Float64s(all)
	reqs := reqCount.Load()
	qPerReq := 1
	if *batch > 1 {
		qPerReq = *batch
	}
	okReqs := uint64(len(all))
	secs := duration.Seconds()

	fmt.Printf("lamb loadtest — %s for %s, %d workers, %d queries/request\n\n",
		*target, *duration, *concurrency, qPerReq)
	rows := [][]string{
		{"requests", fmt.Sprint(reqs)},
		{"ok", fmt.Sprint(okReqs)},
		{"shed (503)", fmt.Sprint(shedCount.Load())},
		{"errors", fmt.Sprint(errCount.Load())},
		{"requests/s", fmt.Sprintf("%.1f", float64(okReqs)/secs)},
		{"queries/s", fmt.Sprintf("%.1f", float64(okReqs)*float64(qPerReq)/secs)},
		{"p50 latency", fmtLatency(percentile(all, 0.50))},
		{"p90 latency", fmtLatency(percentile(all, 0.90))},
		{"p99 latency", fmtLatency(percentile(all, 0.99))},
		{"p99.9 latency", fmtLatency(percentile(all, 0.999))},
		{"max latency", fmtLatency(percentile(all, 1))},
	}
	if err := report.Table(os.Stdout, rows); err != nil {
		return err
	}

	fmt.Println()
	d := statsDelta(before, after)
	rows = [][]string{{"engine layer", "hits", "misses", "hit rate"}}
	for _, l := range []struct {
		name string
		s    cache.Stats
	}{
		{"expressions", d.Expressions},
		{"bindings", d.Bindings},
		{"plans", d.Plans},
		{"batch plans", d.BatchPlans},
	} {
		rows = append(rows, []string{l.name, fmt.Sprint(l.s.Hits), fmt.Sprint(l.s.Misses), hitRate(l.s)})
	}
	if err := report.Table(os.Stdout, rows); err != nil {
		return err
	}
	fmt.Printf("\nqueries %d  deduped %d  coalesced %d  fused %d  degraded %d\n",
		d.Queries, d.Deduped, d.Coalesced, d.FusedQueries, d.DegradedQueries)
	if errCount.Load() > 0 {
		return fmt.Errorf("%d request(s) failed", errCount.Load())
	}
	return nil
}

// lookupArity resolves an expression name to its arity for instance
// parsing, with the registered names in the error.
func lookupArity(name string) (int, error) {
	ex, err := lamb.LookupExpression(name)
	if err != nil {
		return 0, err
	}
	return ex.Arity(), nil
}

// fetchStats samples /api/stats into the flattened serve shape.
func fetchStats(client *http.Client, target string) (engine.Stats, error) {
	resp, err := client.Get(target + "/api/stats")
	if err != nil {
		return engine.Stats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return engine.Stats{}, fmt.Errorf("GET /api/stats: %s", resp.Status)
	}
	var s engine.Stats
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return engine.Stats{}, fmt.Errorf("decoding /api/stats: %w", err)
	}
	return s, nil
}

// statsDelta subtracts the counter fields sampled before the run from
// those sampled after, so the report reflects only this run's traffic.
func statsDelta(before, after engine.Stats) engine.Stats {
	d := after
	d.Expressions = cacheDelta(before.Expressions, after.Expressions)
	d.Bindings = cacheDelta(before.Bindings, after.Bindings)
	d.Plans = cacheDelta(before.Plans, after.Plans)
	d.CallPlans = cacheDelta(before.CallPlans, after.CallPlans)
	d.BatchPlans = cacheDelta(before.BatchPlans, after.BatchPlans)
	d.Queries = after.Queries - before.Queries
	d.Deduped = after.Deduped - before.Deduped
	d.Coalesced = after.Coalesced - before.Coalesced
	d.FusedQueries = after.FusedQueries - before.FusedQueries
	d.DegradedQueries = after.DegradedQueries - before.DegradedQueries
	return d
}

func cacheDelta(before, after cache.Stats) cache.Stats {
	return cache.Stats{
		Hits:   after.Hits - before.Hits,
		Misses: after.Misses - before.Misses,
		Size:   after.Size,
	}
}

func hitRate(s cache.Stats) string {
	total := s.Hits + s.Misses
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(s.Hits)/float64(total))
}

// percentile reads the p-quantile from a sorted latency slice (nearest
// rank; p = 1 is the maximum).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func fmtLatency(s float64) string {
	switch {
	case s <= 0:
		return "-"
	case s < 1e-3:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}
