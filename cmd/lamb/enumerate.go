package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lamb"
	"lamb/internal/report"
)

// cmdEnumerate prints the generated algorithm set of any registered
// expression with FLOP counts — the content of the paper's Figures 3
// and 5 — for a concrete instance.
func cmdEnumerate(args []string) error {
	fs := flag.NewFlagSet("enumerate", flag.ExitOnError)
	c := registerCommon(fs)
	instFlag := fs.String("inst", "", "instance sizes, e.g. 100,200,300 (default: paper example)")
	terms := fs.Int("terms", 0, "general chain with this many terms (overrides -expr)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var e lamb.Expression
	if *terms > 0 {
		e = lamb.NewChain(*terms)
	} else {
		var err error
		e, err = c.expression()
		if err != nil {
			return err
		}
	}
	def := defaultInstance(c.exprName, e.Arity(), *terms > 0)
	inst := def
	if *instFlag != "" {
		var err error
		inst, err = parseInstance(*instFlag, e.Arity())
		if err != nil {
			return err
		}
	}

	algs := e.Algorithms(inst)
	fmt.Printf("%s instance %v: %d mathematically equivalent algorithms\n\n", e.Name(), inst, len(algs))
	rows := [][]string{{"#", "algorithm", "kernels", "FLOPs"}}
	for _, a := range algs {
		kinds := ""
		for i, call := range a.Calls {
			if i > 0 {
				kinds += "+"
			}
			kinds += call.Kind.String()
		}
		rows = append(rows, []string{
			fmt.Sprint(a.Index), a.Name, kinds, fmt.Sprintf("%.0f", a.Flops()),
		})
	}
	if err := report.Table(os.Stdout, rows); err != nil {
		return err
	}

	if ch, ok := e.(lamb.Chain); ok {
		dp, tree := lamb.MinFlopsParenthesisation([]int(inst))
		fmt.Printf("\nDP minimum-FLOPs parenthesisation: %s with %.0f FLOPs (%d algorithms total)\n",
			tree, dp, ch.NumAlgorithms())
	}
	return nil
}

// defaultInstance returns the example instance printed when -inst is
// omitted: the paper's figure instances for its expressions, a generic
// ramp otherwise.
func defaultInstance(exprName string, arity int, generalChain bool) lamb.Instance {
	if !generalChain {
		switch strings.ToLower(exprName) {
		case "chain":
			return lamb.Instance{331, 279, 338, 854, 427}
		case "aatb", "lstsq":
			return lamb.Instance{227, 260, 549}
		}
	}
	def := make(lamb.Instance, arity)
	for i := range def {
		def[i] = 100 + 50*i
	}
	return def
}
