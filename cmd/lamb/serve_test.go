package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"lamb"
	"lamb/internal/engine"
	"lamb/internal/exec"
	"lamb/internal/profile"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(serveMux(engine.New(engine.Config{})))
	t.Cleanup(srv.Close)
	return srv
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func TestServeHealthAndExpressions(t *testing.T) {
	srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/api/expressions")
	if err != nil {
		t.Fatal(err)
	}
	var infos []engine.ExpressionInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 6 {
		t.Fatalf("expressions %v", infos)
	}
}

func TestServeQueryRecord(t *testing.T) {
	srv := newTestServer(t)
	resp, body := postJSON(t, srv.URL+"/api/query", engine.Query{
		Expr: "aatb", Instance: []int{80, 514, 768},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rec engine.Record
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Expr != "aatb" || rec.Strategy != "min-flops" || rec.Selected.Index != 1 {
		t.Fatalf("record %+v", rec)
	}
	if rec.Selected.Flops != 13_161_120 || rec.NumAlgorithms != 5 {
		t.Fatalf("record %+v", rec)
	}
	// The wire format is the engine record verbatim: round-tripping
	// through the endpoint changes nothing.
	direct := engine.New(engine.Config{}).Do(context.Background(), engine.Request{
		Queries: []engine.Query{{Expr: "aatb", Instance: []int{80, 514, 768}}},
	})[0]
	if direct.Err != nil {
		t.Fatal(direct.Err)
	}
	if !reflect.DeepEqual(&rec, direct.Record) {
		t.Fatalf("served record differs from direct engine record:\n%+v\n%+v", rec, direct.Record)
	}
}

func TestServeQueryErrors(t *testing.T) {
	srv := newTestServer(t)
	for name, body := range map[string]any{
		"unknown expression": engine.Query{Expr: "nope", Instance: []int{1, 2, 3}},
		"bad arity":          engine.Query{Expr: "aatb", Instance: []int{1}},
		"bad strategy":       engine.Query{Expr: "aatb", Instance: []int{2, 3, 4}, Strategy: "magic"},
		"unknown field":      map[string]any{"exprs": "aatb"},
	} {
		resp, out := postJSON(t, srv.URL+"/api/query", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s)", name, resp.StatusCode, out)
		}
		var e map[string]string
		if err := json.Unmarshal(out, &e); err != nil || e["error"] == "" {
			t.Errorf("%s: error body %s", name, out)
		}
	}
}

func TestServeBatchConcurrent(t *testing.T) {
	// The serve acceptance check: concurrent batches with overlapping
	// identical queries answer correctly under -race.
	srv := newTestServer(t)
	req := batchRequest{}
	for i := 0; i < 10; i++ {
		req.Queries = append(req.Queries, engine.Query{
			Expr: "gls", Instance: []int{10 + i%3, 20, 30, 40},
		})
	}
	req.Queries = append(req.Queries, engine.Query{Expr: "broken", Instance: []int{1}})

	const clients = 6
	var wg sync.WaitGroup
	results := make([]batchResponse, clients)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf, _ := json.Marshal(req)
			resp, err := http.Post(srv.URL+"/api/batch", "application/json", bytes.NewReader(buf))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("batch status %d", resp.StatusCode)
				return
			}
			if err := json.NewDecoder(resp.Body).Decode(&results[w]); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < clients; w++ {
		res := results[w].Results
		if len(res) != len(req.Queries) {
			t.Fatalf("client %d: %d results", w, len(res))
		}
		for i := 0; i < 10; i++ {
			if res[i].Error != "" || res[i].Record == nil {
				t.Fatalf("client %d query %d: %+v", w, i, res[i])
			}
			if res[i].Record.Expr != "gls" || res[i].Record.NumAlgorithms != 8 {
				t.Fatalf("client %d query %d record %+v", w, i, res[i].Record)
			}
		}
		if res[10].Error == "" {
			t.Fatalf("client %d: broken query succeeded", w)
		}
		if !reflect.DeepEqual(results[0].Results, res) {
			t.Fatalf("client %d diverges from client 0", w)
		}
	}
}

func TestServeStatsReflectCaches(t *testing.T) {
	srv := newTestServer(t)
	q := engine.Query{Expr: "chain", Instance: []int{3, 5, 7, 11, 13}}
	for i := 0; i < 3; i++ {
		if resp, body := postJSON(t, srv.URL+"/api/query", q); resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: %s", i, body)
		}
	}
	resp, err := http.Get(srv.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	var s engine.Stats
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if s.Queries != 3 {
		t.Fatalf("queries %d", s.Queries)
	}
	if s.Bindings.Hits < 2 || s.Bindings.Misses != 1 {
		t.Fatalf("bindings %+v", s.Bindings)
	}
	if s.Backend == "" {
		t.Fatal("backend missing")
	}
}

func TestServeMethodNotAllowed(t *testing.T) {
	srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/api/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /api/query status %d", resp.StatusCode)
	}
}

// newProfiledTestServer serves an engine with measured sim-backend
// profiles, as `lamb serve -profile` does after loading a store.
func newProfiledTestServer(t *testing.T) (*httptest.Server, *engine.Engine) {
	t.Helper()
	timer := exec.NewTimer(exec.NewDefaultSimulated())
	timer.Reps = 2
	eng := engine.New(engine.Config{
		Profiles:    profile.MeasureSet(timer, 2),
		ProfileMeta: profile.Meta{Source: "test-profile.json"},
	})
	srv := httptest.NewServer(serveMux(eng))
	t.Cleanup(srv.Close)
	return srv, eng
}

// TestServeFeedbackLoop drives the serving-time learner end to end over
// HTTP: adaptive query, contradicting feedback, switched selection,
// moving counters — what the CI serve smoke asserts with curl and jq.
func TestServeFeedbackLoop(t *testing.T) {
	srv, _ := newProfiledTestServer(t)
	q := engine.Query{Expr: "aatb", Instance: []int{80, 514, 768}, Strategy: "adaptive"}
	resp, body := postJSON(t, srv.URL+"/api/query", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("adaptive query status %d: %s", resp.StatusCode, body)
	}
	var first engine.Record
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.Profile != "test-profile.json" {
		t.Fatalf("record profile %q", first.Profile)
	}
	for alg := 1; alg <= first.NumAlgorithms; alg++ {
		sec := 1e-6
		if alg == first.Selected.Index {
			sec = 10.0
		}
		for rep := 0; rep < 3; rep++ {
			resp, out := postJSON(t, srv.URL+"/api/feedback", engine.Feedback{
				Expr: "aatb", Instance: []int{80, 514, 768}, Algorithm: alg, Seconds: sec,
			})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("feedback status %d: %s", resp.StatusCode, out)
			}
		}
	}
	resp, body = postJSON(t, srv.URL+"/api/query", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-query status %d", resp.StatusCode)
	}
	var second engine.Record
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if second.Selected.Index == first.Selected.Index {
		t.Fatalf("served adaptive selection did not move off algorithm %d", first.Selected.Index)
	}
	resp, err := http.Get(srv.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	var s engine.Stats
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if s.Feedback != uint64(3*first.NumAlgorithms) || s.FeedbackInstances != 1 {
		t.Fatalf("feedback counters %+v", s)
	}
	if s.AdaptiveQueries != 2 || s.AdaptiveInformed != 1 {
		t.Fatalf("adaptive counters %+v", s)
	}
	if s.Profile == nil || s.Profile.ID != "test-profile.json" {
		t.Fatalf("stats profile %+v", s.Profile)
	}
}

func TestServeFeedbackErrors(t *testing.T) {
	srv, _ := newProfiledTestServer(t)
	for name, body := range map[string]any{
		"unknown expression": engine.Feedback{Expr: "nope", Instance: []int{1, 2, 3}, Algorithm: 1, Seconds: 1},
		"bad index":          engine.Feedback{Expr: "aatb", Instance: []int{80, 514, 768}, Algorithm: 99, Seconds: 1},
		"bad seconds":        engine.Feedback{Expr: "aatb", Instance: []int{80, 514, 768}, Algorithm: 1, Seconds: -1},
		"unknown field":      map[string]any{"exprs": "aatb"},
	} {
		resp, out := postJSON(t, srv.URL+"/api/feedback", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s)", name, resp.StatusCode, out)
		}
	}
}

// TestServeProfileFixtureLoads pins the committed CI fixture: the store
// the serve smoke starts from must stay loadable and complete.
func TestServeProfileFixtureLoads(t *testing.T) {
	set, meta, err := profile.ReadFile(filepath.Join("..", "..", "testdata", "profile-ci.json"))
	if err != nil {
		t.Fatal(err)
	}
	if meta.Backend == "" || meta.GridPoints < 2 {
		t.Fatalf("fixture meta %+v", meta)
	}
	for kind := lamb.KernelKind(0); int(kind) < lamb.NumKernelKinds; kind++ {
		if set.Profile(kind) == nil {
			t.Fatalf("fixture missing %v profile", kind)
		}
	}
}

func TestCmdSelectInstanceJSON(t *testing.T) {
	// The CLI path: lamb select -instance ... -json emits the engine
	// record on stdout.
	old := stdoutCapture(t)
	err := cmdSelect([]string{"-expr", "aatb", "-instance", "80,514,768", "-json"})
	body := old()
	if err != nil {
		t.Fatal(err)
	}
	var rec engine.Record
	if jerr := json.Unmarshal(body, &rec); jerr != nil {
		t.Fatalf("%v in %q", jerr, body)
	}
	if rec.Expr != "aatb" || rec.Selected.Index != 1 || rec.Selected.Flops != 13_161_120 {
		t.Fatalf("record %+v", rec)
	}
	if rec.Strategy != "min-flops" || len(rec.Candidates) != 5 {
		t.Fatalf("record %+v", rec)
	}
}

func TestCmdSelectInstanceTable(t *testing.T) {
	old := stdoutCapture(t)
	err := cmdSelect([]string{"-expr", "chain", "-instance", "331,279,338,854,427"})
	body := old()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(body, []byte("algorithm 2 of 6")) && !bytes.Contains(body, []byte("<==")) {
		t.Fatalf("table output %q", body)
	}
}

func TestCmdSelectJSONRequiresInstance(t *testing.T) {
	if err := cmdSelect([]string{"-expr", "aatb", "-json"}); err == nil {
		t.Fatal("-json without -instance accepted")
	}
}

// stdoutCapture redirects os.Stdout and returns a closure that restores
// it and yields everything written.
func stdoutCapture(t *testing.T) func() []byte {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	done := make(chan []byte, 1)
	go func() {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(r)
		done <- buf.Bytes()
	}()
	return func() []byte {
		w.Close()
		os.Stdout = orig
		return <-done
	}
}

func TestServeBatchCompute(t *testing.T) {
	// compute mode on a measured backend: identical queries execute
	// through one fused batch plan, each item carries a result block,
	// and checksums are deterministic across requests.
	srv := httptest.NewServer(serveMux(engine.New(engine.Config{Executor: exec.NewMeasured()})))
	t.Cleanup(srv.Close)
	req := batchRequest{Compute: true}
	for i := 0; i < 4; i++ {
		req.Queries = append(req.Queries, engine.Query{Expr: "aatb", Instance: []int{12, 16, 8}})
	}
	resp, body := postJSON(t, srv.URL+"/api/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out batchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != len(req.Queries) {
		t.Fatalf("%d results", len(out.Results))
	}
	for i, item := range out.Results {
		if item.Error != "" || item.Record == nil || item.Result == nil {
			t.Fatalf("item %d: %+v", i, item)
		}
		if item.Result.Rows <= 0 || item.Result.Cols <= 0 {
			t.Errorf("item %d: degenerate result shape %+v", i, item.Result)
		}
		if !item.Result.Fused {
			t.Errorf("item %d not fused", i)
		}
	}
	// Default fills are drawn instance-major from one deterministic
	// stream, so items differ within a batch but every item reproduces
	// exactly on a repeated request.
	resp, body2 := postJSON(t, srv.URL+"/api/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second request status %d", resp.StatusCode)
	}
	var out2 batchResponse
	if err := json.Unmarshal(body2, &out2); err != nil {
		t.Fatal(err)
	}
	for i := range out.Results {
		if out2.Results[i].Result.Checksum != out.Results[i].Result.Checksum {
			t.Errorf("item %d not deterministic across requests", i)
		}
	}
	// The fused path and its counters are visible through /api/stats.
	sresp, err := http.Get(srv.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	var s engine.Stats
	if err := json.NewDecoder(sresp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if s.FusedQueries < uint64(2*len(req.Queries)) {
		t.Errorf("fused_queries = %d, want >= %d", s.FusedQueries, 2*len(req.Queries))
	}
}
