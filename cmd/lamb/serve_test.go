package main

import (
	"bytes"
	"encoding/json"

	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"sync"
	"testing"

	"lamb/internal/engine"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(serveMux(engine.New(engine.Config{})))
	t.Cleanup(srv.Close)
	return srv
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func TestServeHealthAndExpressions(t *testing.T) {
	srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/api/expressions")
	if err != nil {
		t.Fatal(err)
	}
	var infos []engine.ExpressionInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 6 {
		t.Fatalf("expressions %v", infos)
	}
}

func TestServeQueryRecord(t *testing.T) {
	srv := newTestServer(t)
	resp, body := postJSON(t, srv.URL+"/api/query", engine.Query{
		Expr: "aatb", Instance: []int{80, 514, 768},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rec engine.Record
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Expr != "aatb" || rec.Strategy != "min-flops" || rec.Selected.Index != 1 {
		t.Fatalf("record %+v", rec)
	}
	if rec.Selected.Flops != 13_161_120 || rec.NumAlgorithms != 5 {
		t.Fatalf("record %+v", rec)
	}
	// The wire format is the engine record verbatim: round-tripping
	// through the endpoint changes nothing.
	direct, err := engine.New(engine.Config{}).Query(engine.Query{Expr: "aatb", Instance: []int{80, 514, 768}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&rec, direct) {
		t.Fatalf("served record differs from direct engine record:\n%+v\n%+v", rec, direct)
	}
}

func TestServeQueryErrors(t *testing.T) {
	srv := newTestServer(t)
	for name, body := range map[string]any{
		"unknown expression": engine.Query{Expr: "nope", Instance: []int{1, 2, 3}},
		"bad arity":          engine.Query{Expr: "aatb", Instance: []int{1}},
		"bad strategy":       engine.Query{Expr: "aatb", Instance: []int{2, 3, 4}, Strategy: "magic"},
		"unknown field":      map[string]any{"exprs": "aatb"},
	} {
		resp, out := postJSON(t, srv.URL+"/api/query", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s)", name, resp.StatusCode, out)
		}
		var e map[string]string
		if err := json.Unmarshal(out, &e); err != nil || e["error"] == "" {
			t.Errorf("%s: error body %s", name, out)
		}
	}
}

func TestServeBatchConcurrent(t *testing.T) {
	// The serve acceptance check: concurrent batches with overlapping
	// identical queries answer correctly under -race.
	srv := newTestServer(t)
	req := batchRequest{}
	for i := 0; i < 10; i++ {
		req.Queries = append(req.Queries, engine.Query{
			Expr: "gls", Instance: []int{10 + i%3, 20, 30, 40},
		})
	}
	req.Queries = append(req.Queries, engine.Query{Expr: "broken", Instance: []int{1}})

	const clients = 6
	var wg sync.WaitGroup
	results := make([]batchResponse, clients)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf, _ := json.Marshal(req)
			resp, err := http.Post(srv.URL+"/api/batch", "application/json", bytes.NewReader(buf))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("batch status %d", resp.StatusCode)
				return
			}
			if err := json.NewDecoder(resp.Body).Decode(&results[w]); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < clients; w++ {
		res := results[w].Results
		if len(res) != len(req.Queries) {
			t.Fatalf("client %d: %d results", w, len(res))
		}
		for i := 0; i < 10; i++ {
			if res[i].Error != "" || res[i].Record == nil {
				t.Fatalf("client %d query %d: %+v", w, i, res[i])
			}
			if res[i].Record.Expr != "gls" || res[i].Record.NumAlgorithms != 8 {
				t.Fatalf("client %d query %d record %+v", w, i, res[i].Record)
			}
		}
		if res[10].Error == "" {
			t.Fatalf("client %d: broken query succeeded", w)
		}
		if !reflect.DeepEqual(results[0].Results, res) {
			t.Fatalf("client %d diverges from client 0", w)
		}
	}
}

func TestServeStatsReflectCaches(t *testing.T) {
	srv := newTestServer(t)
	q := engine.Query{Expr: "chain", Instance: []int{3, 5, 7, 11, 13}}
	for i := 0; i < 3; i++ {
		if resp, body := postJSON(t, srv.URL+"/api/query", q); resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: %s", i, body)
		}
	}
	resp, err := http.Get(srv.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	var s engine.Stats
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if s.Queries != 3 {
		t.Fatalf("queries %d", s.Queries)
	}
	if s.Bindings.Hits < 2 || s.Bindings.Misses != 1 {
		t.Fatalf("bindings %+v", s.Bindings)
	}
	if s.Backend == "" {
		t.Fatal("backend missing")
	}
}

func TestServeMethodNotAllowed(t *testing.T) {
	srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/api/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /api/query status %d", resp.StatusCode)
	}
}

func TestCmdSelectInstanceJSON(t *testing.T) {
	// The CLI path: lamb select -instance ... -json emits the engine
	// record on stdout.
	old := stdoutCapture(t)
	err := cmdSelect([]string{"-expr", "aatb", "-instance", "80,514,768", "-json"})
	body := old()
	if err != nil {
		t.Fatal(err)
	}
	var rec engine.Record
	if jerr := json.Unmarshal(body, &rec); jerr != nil {
		t.Fatalf("%v in %q", jerr, body)
	}
	if rec.Expr != "aatb" || rec.Selected.Index != 1 || rec.Selected.Flops != 13_161_120 {
		t.Fatalf("record %+v", rec)
	}
	if rec.Strategy != "min-flops" || len(rec.Candidates) != 5 {
		t.Fatalf("record %+v", rec)
	}
}

func TestCmdSelectInstanceTable(t *testing.T) {
	old := stdoutCapture(t)
	err := cmdSelect([]string{"-expr", "chain", "-instance", "331,279,338,854,427"})
	body := old()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(body, []byte("algorithm 2 of 6")) && !bytes.Contains(body, []byte("<==")) {
		t.Fatalf("table output %q", body)
	}
}

func TestCmdSelectJSONRequiresInstance(t *testing.T) {
	if err := cmdSelect([]string{"-expr", "aatb", "-json"}); err == nil {
		t.Fatal("-json without -instance accepted")
	}
}

// stdoutCapture redirects os.Stdout and returns a closure that restores
// it and yields everything written.
func stdoutCapture(t *testing.T) func() []byte {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	done := make(chan []byte, 1)
	go func() {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(r)
		done <- buf.Bytes()
	}()
	return func() []byte {
		w.Close()
		os.Stdout = orig
		return <-done
	}
}
