package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lamb/internal/engine"
	"lamb/internal/router"
)

// cmdRoute runs the fault-tolerant shard router in front of a fleet of
// `lamb serve` backends: queries consistent-hash by (expression,
// log-shape octave) so each region's adaptive feedback accumulates on
// its owning shard; health probes, per-backend circuit breakers, and
// capped-backoff retries keep a backend's death invisible to clients;
// and when every backend is down the router still answers from a local
// in-process engine on the min-flops discriminant, the record stamped
// Degraded "no-backend". With -merge-every the router also gossips
// outcome snapshots between backends so feedback learned on one shard
// strengthens selection fleet-wide.
//
// The HTTP surface mirrors serve (query/batch/feedback/expressions)
// plus the router's own /healthz and /api/stats (backend up/down and
// breaker state, retry/hedge/degradation/gossip counters).
func cmdRoute(args []string) error {
	fs := flag.NewFlagSet("route", flag.ExitOnError)
	c := registerCommon(fs)
	addr := fs.String("addr", "127.0.0.1:8373", "listen address (use :0 for an ephemeral port)")
	backends := fs.String("backends", "", "comma-separated lamb serve base URLs (required)")
	replicas := fs.Int("replicas", 64, "virtual nodes per backend on the hash ring")
	probeEvery := fs.Duration("probe-every", time.Second, "health-probe interval")
	probeTimeout := fs.Duration("probe-timeout", 500*time.Millisecond, "per-probe timeout")
	downAfter := fs.Int("down-after", 2, "consecutive probe failures that mark a backend down")
	retries := fs.Int("retries", 2, "additional backends a failed forward tries")
	backoff := fs.Duration("backoff", 25*time.Millisecond, "base retry backoff (full jitter)")
	backoffMax := fs.Duration("backoff-max", 500*time.Millisecond, "retry backoff cap")
	attemptTimeout := fs.Duration("attempt-timeout", 5*time.Second, "per-attempt forward timeout")
	hedgeAfter := fs.Duration("hedge-after", 0, "hedge timed (oracle) queries after this delay (0 disables)")
	mergeEvery := fs.Duration("merge-every", 0, "anti-entropy outcome-gossip interval (0 disables)")
	mergeScale := fs.Float64("merge-scale", 0.5, "weight discount for gossiped outcomes, in (0, 1]")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	if len(urls) == 0 {
		return errors.New("route requires -backends URL[,URL...]")
	}
	// The local fallback engine: profile-less, min-flops only — the
	// floor of the degradation ladder, not a replacement shard.
	local, err := c.engine(engine.DefaultBindEntries, engine.DefaultPlanEntries)
	if err != nil {
		return err
	}
	rt, err := router.New(router.Config{
		Backends:       urls,
		Replicas:       *replicas,
		ProbeEvery:     *probeEvery,
		ProbeTimeout:   *probeTimeout,
		DownAfter:      *downAfter,
		Retries:        *retries,
		BackoffBase:    *backoff,
		BackoffMax:     *backoffMax,
		AttemptTimeout: *attemptTimeout,
		HedgeAfter:     *hedgeAfter,
		MergeEvery:     *mergeEvery,
		MergeScale:     *mergeScale,
		Local:          local,
	})
	if err != nil {
		return err
	}
	rt.Start()
	defer rt.Close()

	srv := &http.Server{
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	errc := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	fmt.Fprintf(os.Stderr, "lamb route: listening on %s (%d backends)\n", ln.Addr(), len(urls))

	select {
	case err := <-errc:
		return err
	case <-sigc:
		fmt.Fprintln(os.Stderr, "lamb route: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(shutdownCtx)
	}
}
