package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"lamb/internal/engine"
	"lamb/internal/outcomes"
)

// TestServeOutcomesExportAndMerge drives the cross-process gossip loop
// over HTTP: feedback on backend A, GET /api/outcomes from A, POST it
// to B's /api/admin/merge, and B's adaptive selection flips to what A
// learned. Re-posting is idempotent.
func TestServeOutcomesExportAndMerge(t *testing.T) {
	srvA, _ := newProfiledTestServer(t)
	srvB, engB := newProfiledTestServer(t)
	q := engine.Query{Expr: "aatb", Instance: []int{80, 514, 768}, Strategy: "adaptive"}

	resp, body := postJSON(t, srvB.URL+"/api/query", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline query status %d: %s", resp.StatusCode, body)
	}
	var base engine.Record
	if err := json.Unmarshal(body, &base); err != nil {
		t.Fatal(err)
	}

	// Teach A that B's current favourite is slow, everything else fast.
	for rep := 0; rep < 3; rep++ {
		for alg := 1; alg <= base.NumAlgorithms; alg++ {
			sec := 1e-6
			if alg == base.Selected.Index {
				sec = 10.0
			}
			fb := engine.Feedback{Expr: "aatb", Instance: []int{80, 514, 768}, Algorithm: alg, Seconds: sec}
			if resp, body := postJSON(t, srvA.URL+"/api/feedback", fb); resp.StatusCode != http.StatusOK {
				t.Fatalf("feedback status %d: %s", resp.StatusCode, body)
			}
		}
	}

	resp, err := http.Get(srvA.URL + "/api/outcomes")
	if err != nil {
		t.Fatal(err)
	}
	raw, snap := new(bytes.Buffer), new(outcomes.Snapshot)
	if _, err := raw.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("outcomes export status %d: %s", resp.StatusCode, raw.Bytes())
	}
	if err := json.Unmarshal(raw.Bytes(), snap); err != nil {
		t.Fatal(err)
	}
	if err := snap.Validate(); err != nil {
		t.Fatalf("exported snapshot invalid: %v", err)
	}
	if len(snap.Records) != 1 || snap.Profile != "test-profile.json" {
		t.Fatalf("exported snapshot %+v", snap)
	}

	post := func(url string) (int, string) {
		resp, err := http.Post(url, "application/json", bytes.NewReader(raw.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out bytes.Buffer
		out.ReadFrom(resp.Body)
		return resp.StatusCode, out.String()
	}
	status, body2 := post(srvB.URL + "/api/admin/merge?source=" + srvA.URL + "&scale=0.5")
	if status != http.StatusOK {
		t.Fatalf("merge status %d: %s", status, body2)
	}
	var counts map[string]int
	if err := json.Unmarshal([]byte(body2), &counts); err != nil {
		t.Fatal(err)
	}
	if counts["merged"] != base.NumAlgorithms || counts["skipped"] != 0 {
		t.Fatalf("merge counts %v, want merged=%d", counts, base.NumAlgorithms)
	}

	resp, body = postJSON(t, srvB.URL+"/api/query", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-merge query status %d: %s", resp.StatusCode, body)
	}
	var after engine.Record
	if err := json.Unmarshal(body, &after); err != nil {
		t.Fatal(err)
	}
	if after.Selected.Index == base.Selected.Index {
		t.Fatalf("merged evidence did not steer B away from algorithm %d", base.Selected.Index)
	}

	// Idempotency: the retry changes nothing but the request counter.
	post(srvB.URL + "/api/admin/merge?source=" + srvA.URL + "&scale=0.5")
	s := engB.Stats()
	if s.MergeRequests != 2 || s.MergedOutcomes != uint64(2*base.NumAlgorithms) {
		t.Fatalf("merge counters %+v", s)
	}
	// B's own export must not re-offer A's evidence (anti-echo).
	resp, err = http.Get(srvB.URL + "/api/outcomes")
	if err != nil {
		t.Fatal(err)
	}
	var local outcomes.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&local); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(local.Records) != 0 {
		t.Fatalf("B's local export leaked merged evidence: %+v", local.Records)
	}
}

// TestServeMergeRejectsBadRequests pins the merge endpoint's input
// validation: no source, out-of-range scale, and garbage bodies are
// 400s that leave the store untouched.
func TestServeMergeRejectsBadRequests(t *testing.T) {
	srv, eng := newProfiledTestServer(t)
	good := `{"schema_version":1,"created_unix":1,"records":[]}`
	cases := []struct {
		name, url, body string
	}{
		{"no source", "/api/admin/merge", good},
		{"zero scale", "/api/admin/merge?source=x&scale=0", good},
		{"big scale", "/api/admin/merge?source=x&scale=1.5", good},
		{"nan scale", "/api/admin/merge?source=x&scale=nan", good},
		{"garbage body", "/api/admin/merge?source=x", "{nope"},
		{"wrong schema", "/api/admin/merge?source=x", `{"schema_version":99,"created_unix":1,"records":[]}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(srv.URL+tc.url, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
	if s := eng.Stats(); s.MergeRequests != 0 {
		t.Fatalf("rejected merges still counted: %+v", s)
	}
}
