package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lamb"
	"lamb/internal/profile"
)

// cmdProfile measures the kernel performance grid once and persists it
// as a schema-versioned store — the expensive step of the paper's
// FLOPs+profiles discriminant, done ahead of serving. `lamb serve
// -profile FILE` and `lamb select -profile FILE` then answer
// min-predicted and adaptive queries without any serve-time
// measurement.
func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	c := registerCommon(fs)
	gridPoints := fs.Int("grid", 8, "profile grid points per dimension")
	out := fs.String("o", "PROFILE.json", "output file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *gridPoints < 2 {
		return fmt.Errorf("-grid must be at least 2 points per dimension (got %d)", *gridPoints)
	}
	ex, err := c.executor()
	if err != nil {
		return err
	}
	t := lamb.NewTimer(ex)
	t.Reps = c.reps
	fmt.Fprintf(os.Stderr, "lamb profile: measuring %d kernel kinds on a %d^3 grid (backend %s, reps %d)...\n",
		lamb.NumKernelKinds, *gridPoints, ex.Name(), c.reps)
	start := time.Now()
	set := lamb.MeasureProfiles(t, *gridPoints)
	elapsed := time.Since(start)

	meta := measuredMeta(ex, c.reps, *gridPoints)
	if err := profile.WriteFile(*out, set, meta); err != nil {
		return err
	}
	fmt.Printf("wrote %s (schema v%d, backend %s, %d^3 grid, measured in %s)\n",
		*out, profile.SchemaVersion, meta.Backend, *gridPoints, elapsed.Round(time.Millisecond))
	return nil
}

// measuredMeta is the provenance for a profile set measured right here:
// host description plus the measurement protocol. Shared by `lamb
// profile` and the measure-on-demand path of `lamb select`.
func measuredMeta(ex lamb.Executor, reps, gridPoints int) lamb.ProfileMeta {
	meta := profile.HostMeta()
	meta.CreatedAt = time.Now().UTC().Format(time.RFC3339)
	meta.Backend = ex.Name()
	meta.Reps = reps
	meta.GridPoints = gridPoints
	meta.PeakFlops = ex.Peak()
	return meta
}
