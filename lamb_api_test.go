package lamb_test

import (
	"math"
	"testing"

	"lamb"
)

// These tests exercise the public facade end-to-end — the same API the
// examples and downstream users see.

func TestPublicQuickstartFlow(t *testing.T) {
	timer := lamb.NewSimTimer()
	runner := lamb.NewRunner(lamb.ChainABCD(), timer, 0.10)
	res := runner.Evaluate(lamb.Instance{100, 200, 300, 400, 500})
	if len(res.Times) != 6 || len(res.Flops) != 6 {
		t.Fatalf("chain evaluation sizes: %d times, %d flops", len(res.Times), len(res.Flops))
	}
	if len(res.Class.CheapestSet) == 0 || len(res.Class.FastestSet) == 0 {
		t.Fatal("classification sets empty")
	}
}

func TestPublicKnownAnomaly(t *testing.T) {
	// The quickstart example's instance must be an anomaly on the default
	// simulated machine — if calibration changes, update the example too.
	timer := lamb.NewSimTimer()
	runner := lamb.NewRunner(lamb.ChainABCD(), timer, 0.10)
	res := runner.Evaluate(lamb.Instance{761, 1063, 365, 229, 245})
	if !res.Class.Anomaly {
		t.Fatal("quickstart instance no longer anomalous — update examples/quickstart")
	}
}

func TestPublicExperimentPipeline(t *testing.T) {
	e := lamb.AATB()
	timer := lamb.NewSimTimer()
	r10 := lamb.NewRunner(e, timer, 0.10)
	exp1 := lamb.RunExperiment1(r10, lamb.Exp1Config{
		Box:             lamb.PaperBox(3),
		TargetAnomalies: 5,
		MaxSamples:      500,
		Seed:            1,
	})
	if len(exp1.Anomalies) != 5 {
		t.Fatalf("exp1 found %d anomalies", len(exp1.Anomalies))
	}
	if exp1.Abundance < 0.02 || exp1.Abundance > 0.4 {
		t.Fatalf("AATB abundance %.3f outside the plausible band", exp1.Abundance)
	}

	r5 := lamb.NewRunner(e, timer, 0.05)
	origins := []lamb.Instance{exp1.Anomalies[0].Inst, exp1.Anomalies[1].Inst}
	exp2 := lamb.RunExperiment2(r5, origins, lamb.DefaultExp2Config(lamb.PaperBox(3)))
	if len(exp2.Lines) != 6 {
		t.Fatalf("exp2 produced %d lines, want 6", len(exp2.Lines))
	}
	for _, ln := range exp2.Lines {
		if ln.BoundaryLo >= ln.BoundaryHi {
			t.Fatalf("line d%d has degenerate boundaries [%d, %d]", ln.Dim, ln.BoundaryLo, ln.BoundaryHi)
		}
	}

	exp3 := lamb.RunExperiment3(r5, exp2, lamb.Exp3Config{Threshold: 0.05})
	if exp3.Confusion.Total() != exp2.TotalSamples {
		t.Fatalf("exp3 total %d != exp2 samples %d", exp3.Confusion.Total(), exp2.TotalSamples)
	}
	if exp3.Confusion.Recall() <= 0.3 {
		t.Fatalf("exp3 recall %.2f implausibly low", exp3.Confusion.Recall())
	}
}

func TestPublicClassify(t *testing.T) {
	cl := lamb.Classify([]float64{10, 20}, []float64{2, 1}, 0.10)
	if !cl.Anomaly || cl.TimeScore != 0.5 {
		t.Fatalf("classification %+v", cl)
	}
}

func TestPublicDPAndEnumeration(t *testing.T) {
	dims := []int{30, 35, 15, 5, 10, 20, 25}
	dp, tree := lamb.MinFlopsParenthesisation(dims)
	if dp != 30250 || tree == "" {
		t.Fatalf("DP = %v, %q", dp, tree)
	}
	algs := lamb.NewChain(6).Algorithms(lamb.Instance(dims))
	if len(algs) != 120 {
		t.Fatalf("6-term chain: %d algorithms, want 120", len(algs))
	}
	best := math.Inf(1)
	for _, a := range algs {
		best = math.Min(best, a.Flops())
	}
	if best != dp {
		t.Fatalf("enumerated minimum %v != DP %v", best, dp)
	}
}

func TestPublicAlgorithmEvaluationAgreesAcrossBackends(t *testing.T) {
	// The numerical result is backend-independent (the measured backend
	// computes, the simulated one only times); EvaluateAlgorithm uses the
	// real BLAS.
	algs := lamb.AATB().Algorithms(lamb.Instance{15, 10, 12})
	inputs := map[string]*lamb.Matrix{
		"A": lamb.NewRandomMatrix(15, 10, 1),
		"B": lamb.NewRandomMatrix(15, 12, 2),
	}
	ref := lamb.EvaluateAlgorithm(&algs[0], inputs)
	for i := 1; i < len(algs); i++ {
		got := lamb.EvaluateAlgorithm(&algs[i], inputs)
		for r := 0; r < ref.Rows; r++ {
			for c := 0; c < ref.Cols; c++ {
				if math.Abs(ref.At(r, c)-got.At(r, c)) > 1e-10 {
					t.Fatalf("algorithm %d differs at (%d,%d)", i+1, r, c)
				}
			}
		}
	}
}

func TestPublicProfilesAndSelection(t *testing.T) {
	timer := lamb.NewSimTimer()
	profiles := lamb.MeasureProfiles(timer, 4)
	reports := lamb.EvaluateStrategies(lamb.AATB(), timer,
		[]lamb.Strategy{lamb.MinFlops{}, lamb.MinPredicted{Profiles: profiles}},
		lamb.SelectionConfig{Box: lamb.UniformBox(3, 50, 600), Instances: 30, Seed: 3})
	if len(reports) != 2 {
		t.Fatalf("reports %d", len(reports))
	}
	if reports[1].Regret.Mean() > reports[0].Regret.Mean() {
		t.Fatalf("min-predicted regret %.3f worse than min-flops %.3f",
			reports[1].Regret.Mean(), reports[0].Regret.Mean())
	}
}

func TestPublicEfficiencyCurve(t *testing.T) {
	curve := lamb.EfficiencyCurve(lamb.NewSimTimer(), lamb.GEMM, []int{100, 1000})
	if len(curve) != 2 || curve[1].Efficiency <= curve[0].Efficiency {
		t.Fatalf("curve %+v", curve)
	}
}

func TestPublicCustomMachineAblation(t *testing.T) {
	cfg := lamb.DefaultMachineConfig()
	cfg.DisableVariantSteps = true
	smooth := lamb.NewTimer(lamb.NewSimExecutorWith(cfg))
	rough := lamb.NewSimTimer()
	// At size 500 the textured machine pays a thread-tile imbalance
	// penalty (ceil(500/80)·80 = 560 > 500) that the smooth machine skips.
	a := lamb.EfficiencyCurve(smooth, lamb.GEMM, []int{500})[0].Efficiency
	b := lamb.EfficiencyCurve(rough, lamb.GEMM, []int{500})[0].Efficiency
	if a <= b {
		t.Fatalf("smooth machine efficiency %.3f should exceed textured %.3f at 500", a, b)
	}
}

func TestPublicBoxes(t *testing.T) {
	b := lamb.PaperBox(5)
	if b.Arity() != 5 || b.Lo[0] != 20 || b.Hi[4] != 1200 {
		t.Fatalf("paper box %+v", b)
	}
	u := lamb.UniformBox(2, 5, 9)
	if !u.Contains(lamb.Instance{5, 9}) || u.Contains(lamb.Instance{4, 9}) {
		t.Fatal("uniform box membership wrong")
	}
}
