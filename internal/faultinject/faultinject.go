// Package faultinject provides named failpoints for chaos testing the
// serving path. Production code plants a Fire (or FireCtx) call at each
// site where an operator-visible failure can originate — a snapshot
// write, a query handler, a profile reload — and the chaos suite arms
// those points to inject errors, panics, and latency without patching
// the code under test.
//
// Failpoints are disarmed by default and cost one atomic load per Fire
// call (no allocation, no lock), so the hooks are safe to leave in the
// serving path permanently. They are armed either programmatically
// (tests call Arm/Disarm/Reset) or from the LAMB_FAULTPOINTS
// environment variable at process start, so a chaos harness can inject
// faults into an unmodified binary:
//
//	LAMB_FAULTPOINTS='outcomes.write=error;engine.query=sleep:200ms'
//
// Spec grammar (one per failpoint, ";"-separated in the env var):
//
//	error            Fire returns ErrInjected
//	error:MESSAGE    Fire returns an error with the given message
//	panic            Fire panics
//	sleep:DURATION   Fire sleeps (FireCtx returns early on ctx cancel)
//	sleep:DUR,error  sleep, then return ErrInjected
//
// Every firing is counted; Hits reports the count so tests can assert a
// failpoint was actually reached.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the error returned by an armed "error" failpoint.
var ErrInjected = errors.New("faultinject: injected failure")

// EnvVar is the environment variable failpoints are armed from at
// process start.
const EnvVar = "LAMB_FAULTPOINTS"

// point is one armed failpoint's parsed behaviour.
type point struct {
	sleep  time.Duration
	err    error
	panics bool
	hits   atomic.Uint64
}

var (
	// armed is the fast-path gate: false means no failpoint is armed
	// anywhere and Fire returns immediately.
	armed  atomic.Bool
	mu     sync.Mutex
	points = map[string]*point{}
)

func init() {
	if spec := os.Getenv(EnvVar); spec != "" {
		if err := ArmFromSpec(spec); err != nil {
			// A malformed env spec in a chaos run must be loud, not
			// silently inert — the harness would report a vacuous pass.
			panic(fmt.Sprintf("faultinject: %s: %v", EnvVar, err))
		}
	}
}

// ArmFromSpec arms failpoints from a ";"-separated name=spec list (the
// LAMB_FAULTPOINTS grammar).
func ArmFromSpec(spec string) error {
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, behaviour, ok := strings.Cut(part, "=")
		if !ok {
			return fmt.Errorf("failpoint %q: want name=spec", part)
		}
		if err := Arm(strings.TrimSpace(name), strings.TrimSpace(behaviour)); err != nil {
			return err
		}
	}
	return nil
}

// Arm installs (or replaces) the named failpoint with the given spec.
func Arm(name, spec string) error {
	if name == "" {
		return fmt.Errorf("faultinject: empty failpoint name")
	}
	p, err := parseSpec(name, spec)
	if err != nil {
		return err
	}
	mu.Lock()
	defer mu.Unlock()
	points[name] = p
	armed.Store(true)
	return nil
}

// parseSpec compiles one behaviour spec into a point.
func parseSpec(name, spec string) (*point, error) {
	p := &point{}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		kind, arg, _ := strings.Cut(field, ":")
		switch kind {
		case "error":
			if arg != "" {
				p.err = fmt.Errorf("faultinject: %s", arg)
			} else {
				p.err = ErrInjected
			}
		case "panic":
			p.panics = true
		case "sleep":
			d, err := time.ParseDuration(arg)
			if err != nil {
				return nil, fmt.Errorf("faultinject: %s: bad sleep duration %q: %v", name, arg, err)
			}
			p.sleep = d
		default:
			return nil, fmt.Errorf("faultinject: %s: unknown behaviour %q (want error, panic, or sleep:DUR)", name, field)
		}
	}
	return p, nil
}

// Disarm removes the named failpoint.
func Disarm(name string) {
	mu.Lock()
	defer mu.Unlock()
	delete(points, name)
	if len(points) == 0 {
		armed.Store(false)
	}
}

// Reset disarms every failpoint (test cleanup).
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points = map[string]*point{}
	armed.Store(false)
}

// Enabled reports whether any failpoint is armed.
func Enabled() bool { return armed.Load() }

// Hits returns how many times the named failpoint has fired since it
// was armed.
func Hits(name string) uint64 {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return p.hits.Load()
	}
	return 0
}

// Fire triggers the named failpoint: a no-op returning nil unless the
// point is armed, in which case it sleeps, panics, or returns the
// injected error per its spec.
func Fire(name string) error {
	if !armed.Load() {
		return nil
	}
	return fire(context.Background(), name)
}

// FireCtx is Fire with a cancellable sleep: an armed sleep failpoint
// returns ctx.Err() as soon as the context is done, so injected latency
// cannot outlive a request deadline.
func FireCtx(ctx context.Context, name string) error {
	if !armed.Load() {
		return nil
	}
	return fire(ctx, name)
}

func fire(ctx context.Context, name string) error {
	mu.Lock()
	p, ok := points[name]
	mu.Unlock()
	if !ok {
		return nil
	}
	p.hits.Add(1)
	if p.sleep > 0 {
		t := time.NewTimer(p.sleep)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	if p.panics {
		panic(fmt.Sprintf("faultinject: failpoint %s armed to panic", name))
	}
	return p.err
}
