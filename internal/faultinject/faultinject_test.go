package faultinject

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestDisarmedFireIsNil(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("enabled with no failpoints")
	}
	if err := Fire("anything"); err != nil {
		t.Fatalf("disarmed fire returned %v", err)
	}
	if n := testing.AllocsPerRun(100, func() {
		_ = Fire("anything")
	}); n != 0 {
		t.Fatalf("disarmed Fire allocates %v per call", n)
	}
}

func TestArmError(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Arm("p", "error"); err != nil {
		t.Fatal(err)
	}
	if !Enabled() {
		t.Fatal("not enabled after arm")
	}
	if err := Fire("p"); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	if err := Fire("other"); err != nil {
		t.Fatalf("unrelated failpoint fired: %v", err)
	}
	if Hits("p") != 1 {
		t.Fatalf("hits = %d", Hits("p"))
	}
	Disarm("p")
	if Enabled() {
		t.Fatal("still enabled after disarm")
	}
	if err := Fire("p"); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
}

func TestArmNamedError(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Arm("p", "error:disk full"); err != nil {
		t.Fatal(err)
	}
	err := Fire("p")
	if err == nil || err.Error() != "faultinject: disk full" {
		t.Fatalf("err = %v", err)
	}
}

func TestArmPanic(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Arm("p", "panic"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	_ = Fire("p")
}

func TestSleepThenError(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Arm("p", "sleep:20ms,error"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Fire("p"); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("slept only %v", d)
	}
}

func TestFireCtxCancelsSleep(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Arm("p", "sleep:10s"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := FireCtx(ctx, "p")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("sleep was not cancelled (%v)", d)
	}
}

func TestArmFromSpec(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := ArmFromSpec("a=error; b=sleep:1ms ;; c=error:x"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "c"} {
		if err := Fire(name); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
	if err := Fire("b"); err != nil {
		t.Errorf("b: %v", err)
	}
	for _, bad := range []string{"noequals", "x=explode", "x=sleep:forever"} {
		if err := ArmFromSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// TestEnvSpecGrammar is the table test for the LAMB_FAULTPOINTS grammar:
// every malformed spec must be rejected with an error naming the problem
// (init panics on that error, so a typo in a chaos run fails loudly at
// process start instead of silently disarming the fault), and every
// valid form must arm.
func TestEnvSpecGrammar(t *testing.T) {
	cases := []struct {
		name    string
		spec    string
		wantErr string // substring of the rejection; "" = must parse
	}{
		{"single error", "serve.query=error", ""},
		{"named error", "serve.query=error:disk full", ""},
		{"panic", "engine.query=panic", ""},
		{"sleep", "outcomes.write=sleep:250ms", ""},
		{"sleep then error", "outcomes.write=sleep:10ms,error", ""},
		{"multiple points", "a=error;b=sleep:1ms;c=error:x", ""},
		{"whitespace and empty parts", " a = error ; ; b = panic ", ""},
		{"dotted router point", "router.forward=error:injected transport fault", ""},

		{"missing equals", "serve.query", "want name=spec"},
		{"empty point name", "=error", "empty failpoint name"},
		{"blank point name", "  =error", "empty failpoint name"},
		{"unknown verb", "serve.query=explode", `unknown behaviour "explode"`},
		{"unknown verb in list", "x=sleep:1ms,detonate", `unknown behaviour "detonate"`},
		{"bad duration word", "x=sleep:forever", `bad sleep duration "forever"`},
		{"missing duration", "x=sleep", `bad sleep duration ""`},
		{"bare duration no unit", "x=sleep:100", `bad sleep duration "100"`},
		{"empty behaviour", "x=", "unknown behaviour"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			Reset()
			t.Cleanup(Reset)
			err := ArmFromSpec(tc.spec)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid spec %q rejected: %v", tc.spec, err)
				}
				if !Enabled() {
					t.Fatalf("valid spec %q armed nothing", tc.spec)
				}
				return
			}
			if err == nil {
				t.Fatalf("malformed spec %q accepted", tc.spec)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("spec %q: error %q does not name the problem (want substring %q)",
					tc.spec, err, tc.wantErr)
			}
		})
	}
}
