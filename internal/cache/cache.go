// Package cache provides the small bounded LRU used by the selection
// engine's cache hierarchy (bound algorithm sets, compiled execution
// plans). It is deliberately minimal: a map plus an intrusive
// doubly-linked recency list, with hit/miss/eviction counters so the
// engine can prove cache effectiveness (the paper's workload is exactly
// the repeated-query pattern an LRU rewards).
package cache

// Stats are a cache's monotonic counters plus its current occupancy.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Size      int    `json:"size"`
	Capacity  int    `json:"capacity"`
}

// node is one entry of the recency list. Nodes are index-linked into a
// slice so a Get performs no pointer chasing beyond the map lookup and
// no allocation.
type node[K comparable, V any] struct {
	key        K
	val        V
	prev, next int
}

// LRU is a bounded least-recently-used map. The zero value is not
// usable; construct with NewLRU. It is not safe for concurrent use —
// callers wrap it in their own locking (the engine shards its locks by
// layer).
type LRU[K comparable, V any] struct {
	cap   int
	index map[K]int
	nodes []node[K, V]
	head  int // most recently used; -1 when empty
	tail  int // least recently used; -1 when empty
	stats Stats
}

// NewLRU returns an LRU holding at most capacity entries. It panics on
// non-positive capacities.
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	if capacity <= 0 {
		panic("cache: LRU capacity must be positive")
	}
	return &LRU[K, V]{
		cap:   capacity,
		index: make(map[K]int, capacity),
		head:  -1,
		tail:  -1,
	}
}

// unlink removes node i from the recency list.
func (l *LRU[K, V]) unlink(i int) {
	n := &l.nodes[i]
	if n.prev >= 0 {
		l.nodes[n.prev].next = n.next
	} else {
		l.head = n.next
	}
	if n.next >= 0 {
		l.nodes[n.next].prev = n.prev
	} else {
		l.tail = n.prev
	}
}

// pushFront makes node i the most recently used.
func (l *LRU[K, V]) pushFront(i int) {
	n := &l.nodes[i]
	n.prev, n.next = -1, l.head
	if l.head >= 0 {
		l.nodes[l.head].prev = i
	}
	l.head = i
	if l.tail < 0 {
		l.tail = i
	}
}

// Get returns the value cached under k, promoting it to most recently
// used. It allocates nothing on either hit or miss.
func (l *LRU[K, V]) Get(k K) (V, bool) {
	if i, ok := l.index[k]; ok {
		l.stats.Hits++
		if l.head != i {
			l.unlink(i)
			l.pushFront(i)
		}
		return l.nodes[i].val, true
	}
	l.stats.Misses++
	var zero V
	return zero, false
}

// Peek returns the value cached under k without promoting it and
// without touching the hit/miss counters. Used for double-checked
// inserts whose first Get already accounted the lookup.
func (l *LRU[K, V]) Peek(k K) (V, bool) {
	if i, ok := l.index[k]; ok {
		return l.nodes[i].val, true
	}
	var zero V
	return zero, false
}

// Put inserts or replaces the value under k as most recently used,
// evicting the least recently used entry if the cache is full.
func (l *LRU[K, V]) Put(k K, v V) {
	if i, ok := l.index[k]; ok {
		l.nodes[i].val = v
		if l.head != i {
			l.unlink(i)
			l.pushFront(i)
		}
		return
	}
	var slot int
	if len(l.nodes) < l.cap {
		l.nodes = append(l.nodes, node[K, V]{})
		slot = len(l.nodes) - 1
	} else {
		// Evict the least recently used entry and reuse its slot.
		slot = l.tail
		l.unlink(slot)
		delete(l.index, l.nodes[slot].key)
		l.stats.Evictions++
	}
	l.nodes[slot] = node[K, V]{key: k, val: v}
	l.index[k] = slot
	l.pushFront(slot)
}

// Len returns the number of cached entries.
func (l *LRU[K, V]) Len() int { return len(l.index) }

// Stats returns the counters and occupancy.
func (l *LRU[K, V]) Stats() Stats {
	s := l.stats
	s.Size = len(l.index)
	s.Capacity = l.cap
	return s
}
