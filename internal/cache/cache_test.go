package cache

import "testing"

func TestLRUBasicGetPut(t *testing.T) {
	l := NewLRU[string, int](2)
	if _, ok := l.Get("a"); ok {
		t.Fatal("empty cache returned a value")
	}
	l.Put("a", 1)
	l.Put("b", 2)
	if v, ok := l.Get("a"); !ok || v != 1 {
		t.Fatalf("a = %d, %v", v, ok)
	}
	// "b" is now least recently used; inserting "c" evicts it.
	l.Put("c", 3)
	if _, ok := l.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if v, ok := l.Get("a"); !ok || v != 1 {
		t.Fatalf("a lost: %d, %v", v, ok)
	}
	if v, ok := l.Get("c"); !ok || v != 3 {
		t.Fatalf("c = %d, %v", v, ok)
	}
	s := l.Stats()
	if s.Evictions != 1 || s.Size != 2 || s.Capacity != 2 {
		t.Fatalf("stats %+v", s)
	}
}

func TestLRUPutReplacesAndPromotes(t *testing.T) {
	l := NewLRU[int, string](2)
	l.Put(1, "one")
	l.Put(2, "two")
	l.Put(1, "uno") // replace, promote 1
	l.Put(3, "three")
	if _, ok := l.Get(2); ok {
		t.Fatal("2 should have been evicted (1 was promoted by Put)")
	}
	if v, ok := l.Get(1); !ok || v != "uno" {
		t.Fatalf("1 = %q, %v", v, ok)
	}
}

func TestLRUCounters(t *testing.T) {
	l := NewLRU[int, int](4)
	for i := 0; i < 4; i++ {
		l.Put(i, i)
	}
	for i := 0; i < 4; i++ {
		l.Get(i)
	}
	l.Get(99)
	s := l.Stats()
	if s.Hits != 4 || s.Misses != 1 || s.Evictions != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestLRUSlotReuseAfterEviction(t *testing.T) {
	l := NewLRU[int, int](3)
	for i := 0; i < 100; i++ {
		l.Put(i, i*i)
	}
	if l.Len() != 3 {
		t.Fatalf("len %d", l.Len())
	}
	for i := 97; i < 100; i++ {
		if v, ok := l.Get(i); !ok || v != i*i {
			t.Fatalf("entry %d = %d, %v", i, v, ok)
		}
	}
	if got := len(l.nodes); got > 3 {
		t.Fatalf("node slab grew to %d despite capacity 3", got)
	}
}

func TestLRUGetAllocationFree(t *testing.T) {
	l := NewLRU[int, int](8)
	for i := 0; i < 8; i++ {
		l.Put(i, i)
	}
	allocs := testing.AllocsPerRun(100, func() {
		l.Get(3)
		l.Get(5)
		l.Get(11) // miss
	})
	if allocs != 0 {
		t.Fatalf("Get allocated %v per run, want 0", allocs)
	}
}

func TestLRUPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for capacity 0")
		}
	}()
	NewLRU[int, int](0)
}
