package kernels

import (
	"strings"
	"testing"
	"testing/quick"

	"lamb/internal/xrand"
)

func TestFlopsFormulas(t *testing.T) {
	// The exact formulas from paper §3.1.
	cases := []struct {
		call Call
		want float64
	}{
		{NewGemm(10, 20, 30, "A", "B", "C", false, false), 2 * 10 * 20 * 30},
		{NewSyrk(10, 30, "A", "C"), (10 + 1) * 10 * 30},
		{NewSymm(10, 20, "A", "B", "C"), 2 * 10 * 10 * 20},
		{NewTri2Full(50, "C"), 0},
	}
	for _, c := range cases {
		if got := c.call.Flops(); got != c.want {
			t.Errorf("%s Flops = %v, want %v", c.call, got, c.want)
		}
	}
}

func TestFlopsMatchBruteForceCounts(t *testing.T) {
	// Count multiply-and-add pairs of the textbook algorithms and compare
	// with the closed-form FLOP formulas.
	gemmOps := func(m, n, k int) float64 {
		// m*n dot products of length k, 2 flops per term.
		count := 0
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				count += 2 * k
			}
		}
		return float64(count)
	}
	syrkOps := func(m, k int) float64 {
		// Lower triangle including diagonal: m(m+1)/2 entries, 2k flops each.
		count := 0
		for i := 0; i < m; i++ {
			for j := 0; j <= i; j++ {
				count += 2 * k
			}
		}
		return float64(count)
	}
	rng := xrand.New(99)
	for trial := 0; trial < 30; trial++ {
		m, n, k := rng.IntRange(1, 40), rng.IntRange(1, 40), rng.IntRange(1, 40)
		if got, want := NewGemm(m, n, k, "A", "B", "C", false, false).Flops(), gemmOps(m, n, k); got != want {
			t.Fatalf("gemm(%d,%d,%d) formula %v != counted %v", m, n, k, got, want)
		}
		if got, want := NewSyrk(m, k, "A", "C").Flops(), syrkOps(m, k); got != want {
			t.Fatalf("syrk(%d,%d) formula %v != counted %v", m, k, got, want)
		}
		// SYMM cost is that of a GEMM with square A: 2*m*m*n.
		if got, want := NewSymm(m, n, "A", "B", "C").Flops(), gemmOps(m, n, m); got != want {
			t.Fatalf("symm(%d,%d) formula %v != counted %v", m, n, got, want)
		}
	}
}

func TestSyrkHalvesGemmAsymptotically(t *testing.T) {
	// SYRK computes one triangle, so for the same m×m·k product it costs
	// (m+1)mk vs GEMM's 2m²k — the ratio tends to 1/2 from above.
	syrk := NewSyrk(1000, 500, "A", "C").Flops()
	gemm := NewGemm(1000, 1000, 500, "A", "At", "C", false, false).Flops()
	ratio := syrk / gemm
	if ratio <= 0.5 || ratio > 0.51 {
		t.Fatalf("syrk/gemm ratio = %v, want in (0.5, 0.51]", ratio)
	}
}

func TestBytesPositive(t *testing.T) {
	calls := []Call{
		NewGemm(5, 6, 7, "A", "B", "C", false, false),
		NewSyrk(5, 7, "A", "C"),
		NewSymm(5, 6, "A", "B", "C"),
		NewTri2Full(5, "C"),
	}
	for _, c := range calls {
		if c.Bytes() <= 0 {
			t.Errorf("%s Bytes = %v, want > 0", c, c.Bytes())
		}
	}
}

func TestIntensityGrowsWithSize(t *testing.T) {
	small := NewGemm(20, 20, 20, "A", "B", "C", false, false).Intensity()
	large := NewGemm(1000, 1000, 1000, "A", "B", "C", false, false).Intensity()
	if large <= small {
		t.Fatalf("intensity should grow with size: small %v, large %v", small, large)
	}
	if NewTri2Full(100, "C").Intensity() != 0 {
		t.Fatal("tri2full intensity must be 0")
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{Gemm: "gemm", Syrk: "syrk", Symm: "symm", Tri2Full: "tri2full"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind %d String = %q, want %q", int(k), k.String(), s)
		}
	}
	if !strings.HasPrefix(Kind(99).String(), "Kind(") {
		t.Error("unknown kind should render as Kind(n)")
	}
}

func TestCallString(t *testing.T) {
	c := NewGemm(1, 2, 3, "A", "B", "C", true, false)
	s := c.String()
	if !strings.Contains(s, "gemm") || !strings.Contains(s, "m=1") || !strings.Contains(s, "Aᵀ") {
		t.Errorf("String = %q", s)
	}
	if strings.Contains(s, "Bᵀ") {
		t.Errorf("String = %q should not mention Bᵀ", s)
	}
}

func TestMemoKeyIgnoresOperandIDs(t *testing.T) {
	a := NewGemm(3, 4, 5, "A", "B", "C", false, true)
	b := NewGemm(3, 4, 5, "X", "Y", "Z", false, true)
	if a.MemoKey() != b.MemoKey() {
		t.Fatal("keys should match regardless of operand IDs")
	}
	c := NewGemm(3, 4, 5, "A", "B", "C", true, true)
	if a.MemoKey() == c.MemoKey() {
		t.Fatal("keys should differ on transposition")
	}
}

func TestValidateAcceptsConstructors(t *testing.T) {
	calls := []Call{
		NewGemm(5, 6, 7, "A", "B", "C", true, true),
		NewSyrk(5, 7, "A", "C"),
		NewSymm(5, 6, "A", "B", "C"),
		NewTri2Full(5, "C"),
	}
	for _, c := range calls {
		if err := c.Validate(); err != nil {
			t.Errorf("%s Validate: %v", c, err)
		}
	}
}

func TestValidateRejectsBadCalls(t *testing.T) {
	bad := []Call{
		{Kind: Gemm, M: 0, N: 1, K: 1, In: []string{"A", "B"}, Out: "C"},
		{Kind: Gemm, M: 1, N: 1, K: 1, In: []string{"A"}, Out: "C"},
		{Kind: Syrk, M: 4, N: 5, K: 3, In: []string{"A"}, Out: "C"},
		{Kind: Syrk, M: 4, N: 4, K: 3, In: []string{"A", "B"}, Out: "C"},
		{Kind: Symm, M: 4, N: 5, K: 3, In: []string{"A", "B"}, Out: "C"},
		{Kind: Tri2Full, M: 4, N: 5, In: []string{"C"}, Out: "C"},
		{Kind: Gemm, M: 1, N: 1, K: 1, In: []string{"A", "B"}, Out: ""},
		{Kind: Kind(77), M: 1, N: 1, K: 1, Out: "C"},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d (%s): Validate accepted invalid call", i, c)
		}
	}
}

func TestFlopsNonNegativeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		m, n, k := rng.IntRange(1, 2000), rng.IntRange(1, 2000), rng.IntRange(1, 2000)
		calls := []Call{
			NewGemm(m, n, k, "A", "B", "C", false, false),
			NewSyrk(m, k, "A", "C"),
			NewSymm(m, n, "A", "B", "C"),
			NewTri2Full(m, "C"),
		}
		for _, c := range calls {
			if c.Flops() < 0 || c.Bytes() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
