// Package kernels models the BLAS kernel invocations from which all
// algorithms in this repository are composed.
//
// The paper (§3.1) builds every algorithm from three level-3 BLAS kernels
// — GEMM, SYRK, and SYMM — plus one data-movement step (copying a
// triangle computed by SYRK to the opposite triangle so a subsequent GEMM
// can consume a full matrix). A Call records the kernel kind, its problem
// dimensions, and the logical operands it reads and writes; the FLOP
// counts attached to each kind are exactly the ones the paper uses as the
// selection discriminant.
package kernels

import "fmt"

// Kind identifies a kernel.
type Kind int

const (
	// Gemm computes C := A·B with A (M×K) and B (K×N), costing 2MNK FLOPs.
	Gemm Kind = iota
	// Syrk computes one triangle of C := A·Aᵀ with A (M×K) — or of
	// C := Aᵀ·A with A (K×M) when TransA is set — costing (M+1)·M·K
	// FLOPs either way.
	Syrk
	// Symm computes C := A·B with A (M×M) symmetric and B (M×N), costing
	// 2M²N FLOPs.
	Symm
	// Tri2Full mirrors one triangle of an M×M matrix onto the other; it
	// performs no floating-point operations but moves memory. It is the
	// copy step of the paper's AAᵀB Algorithm 2.
	Tri2Full
	// Potrf computes the Cholesky factorisation L·Lᵀ of an M×M symmetric
	// positive definite matrix in place, costing M(M+1)(2M+1)/6 ≈ M³/3
	// FLOPs. Used by the
	// least-squares expression that extends the paper's study to a
	// LAPACK-level kernel mix (the paper's "more complex expressions"
	// conjecture).
	Potrf
	// Trsm solves op(L)·X = B in place with L triangular M×M and B M×N,
	// costing M²·N FLOPs.
	Trsm
	// AddSym adds one triangle of an M×M matrix onto another in place
	// (S := S + R), costing M(M+1)/2 FLOPs.
	AddSym
	numKinds = iota
)

// NumKinds is the number of kernel kinds.
const NumKinds = int(numKinds)

// String returns the lowercase BLAS-style kernel name.
func (k Kind) String() string {
	switch k {
	case Gemm:
		return "gemm"
	case Syrk:
		return "syrk"
	case Symm:
		return "symm"
	case Tri2Full:
		return "tri2full"
	case Potrf:
		return "potrf"
	case Trsm:
		return "trsm"
	case AddSym:
		return "addsym"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind maps the lowercase BLAS-style kernel name back to its Kind —
// the inverse of String for every valid kind, used when deserialising
// persisted kernel profiles.
func ParseKind(name string) (Kind, error) {
	for k := Kind(0); int(k) < NumKinds; k++ {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("kernels: unknown kernel name %q", name)
}

// Call describes one kernel invocation: the kernel kind, the problem
// dimensions, transposition flags, and the logical operands involved.
//
// Dimension conventions per kind (all operands are float64, column-major):
//
//	Gemm:     C (M×N) := op(A) (M×K) · op(B) (K×N)
//	Syrk:     C (M×M) := A·Aᵀ with A (M×K); K is the inner dimension; N=M
//	          (TransA: C := Aᵀ·A with A (K×M))
//	Symm:     C (M×N) := A·B with A (M×M) symmetric; K=M
//	Tri2Full: C (M×M) triangle mirror; N=M, K=0
type Call struct {
	Kind Kind
	// M, N, K are the problem dimensions in the conventions above.
	M, N, K int
	// TransA and TransB request transposed reads of the inputs (only
	// meaningful for Gemm; the dimensions M, N, K always refer to the
	// logical, post-transposition product).
	TransA, TransB bool
	// In lists the IDs of the logical operands read by the call, in
	// argument order (e.g. ["A", "B"] for C := A·B). Syrk reads one
	// operand; Tri2Full reads none beyond its in/out operand.
	In []string
	// Out is the ID of the operand written by the call.
	Out string
}

// NewGemm returns a GEMM call C := op(A)·op(B), where the product is
// m×n with inner dimension k.
func NewGemm(m, n, k int, a, b, c string, transA, transB bool) Call {
	return Call{Kind: Gemm, M: m, N: n, K: k, TransA: transA, TransB: transB, In: []string{a, b}, Out: c}
}

// NewSyrk returns a SYRK call C := A·Aᵀ with A m×k, producing one
// triangle of the m×m result.
func NewSyrk(m, k int, a, c string) Call {
	return Call{Kind: Syrk, M: m, N: m, K: k, In: []string{a}, Out: c}
}

// NewSyrkT returns the transposed SYRK call C := Aᵀ·A with A k×m (BLAS
// dsyrk with trans='T'), producing one triangle of the m×m result. Same
// FLOP count as NewSyrk; TransA records the transposed read.
func NewSyrkT(m, k int, a, c string) Call {
	return Call{Kind: Syrk, M: m, N: m, K: k, TransA: true, In: []string{a}, Out: c}
}

// NewSymm returns a SYMM call C := A·B with A m×m symmetric, B m×n.
func NewSymm(m, n int, a, b, c string) Call {
	return Call{Kind: Symm, M: m, N: n, K: m, In: []string{a, b}, Out: c}
}

// NewTri2Full returns a triangle-mirroring call on the m×m operand c.
func NewTri2Full(m int, c string) Call {
	return Call{Kind: Tri2Full, M: m, N: m, In: []string{c}, Out: c}
}

// NewPotrf returns an in-place Cholesky factorisation of the m×m SPD
// operand s.
func NewPotrf(m int, s string) Call {
	return Call{Kind: Potrf, M: m, N: m, In: []string{s}, Out: s}
}

// NewTrsm returns an in-place triangular solve op(L)·X = B with L m×m
// and B m×n; trans selects Lᵀ.
func NewTrsm(m, n int, l, b string, trans bool) Call {
	return Call{Kind: Trsm, M: m, N: n, TransA: trans, In: []string{l, b}, Out: b}
}

// NewAddSym returns the in-place triangular accumulation c := c + a for
// m×m symmetric operands.
func NewAddSym(m int, c, a string) Call {
	return Call{Kind: AddSym, M: m, N: m, In: []string{c, a}, Out: c}
}

// Flops returns the FLOP count the paper attributes to the call (§3.1).
// Tri2Full performs zero floating-point operations; this is precisely why
// the paper's Algorithms 1 and 2 for AAᵀB share a FLOP count while
// differing in execution time.
func (c Call) Flops() float64 {
	m, n, k := float64(c.M), float64(c.N), float64(c.K)
	switch c.Kind {
	case Gemm:
		return 2 * m * n * k
	case Syrk:
		return (m + 1) * m * k
	case Symm:
		return 2 * m * m * n
	case Tri2Full:
		return 0
	case Potrf:
		// Exact Cholesky count n³/3 + n²/2 + n/6 = n(n+1)(2n+1)/6: an
		// integer, so FLOP ties between algorithms that share the
		// factorisation stay exact under floating-point summation.
		return m * (m + 1) * (2*m + 1) / 6
	case Trsm:
		return m * m * n
	case AddSym:
		return m * (m + 1) / 2
	default:
		panic(fmt.Sprintf("kernels: Flops of unknown kind %v", c.Kind))
	}
}

// Bytes returns an estimate of the call's cold-cache memory traffic in
// bytes: each input operand read once and the output read and written
// once (8 bytes per float64). Triangular operands count half. This feeds
// the simulated machine's inter-kernel cache model and the arithmetic-
// intensity estimate; it is not meant to model blocked re-reads.
func (c Call) Bytes() float64 {
	const w = 8.0
	m, n, k := float64(c.M), float64(c.N), float64(c.K)
	switch c.Kind {
	case Gemm:
		return w * (m*k + k*n + 2*m*n)
	case Syrk:
		// Read A (m×k), read+write one triangle of C.
		return w * (m*k + m*(m+1))
	case Symm:
		// Read one triangle of A, read B, read+write C.
		return w * (m*(m+1)/2 + m*n + 2*m*n)
	case Tri2Full:
		// Read one strict triangle, write the other.
		return w * (m * (m - 1))
	case Potrf:
		// Read and write one triangle in place.
		return w * (m * (m + 1))
	case Trsm:
		// Read the triangle of L, read and write B.
		return w * (m*(m+1)/2 + 2*m*n)
	case AddSym:
		// Read both triangles, write one.
		return w * (1.5 * m * (m + 1))
	default:
		panic(fmt.Sprintf("kernels: Bytes of unknown kind %v", c.Kind))
	}
}

// Intensity returns the call's arithmetic intensity in FLOPs per byte of
// cold traffic. Tri2Full has intensity zero.
func (c Call) Intensity() float64 {
	b := c.Bytes()
	if b == 0 {
		return 0
	}
	return c.Flops() / b
}

// String renders the call compactly, e.g. "gemm(m=10,n=20,k=30)".
func (c Call) String() string {
	s := fmt.Sprintf("%v(m=%d,n=%d,k=%d", c.Kind, c.M, c.N, c.K)
	if c.TransA {
		s += ",Aᵀ"
	}
	if c.TransB {
		s += ",Bᵀ"
	}
	return s + ")"
}

// FillKind says how an executor must materialise an operand before a
// call can run on it in isolation. Operand *contents* never influence
// BLAS timing (dense unstructured inputs), but structural requirements
// do: an in-place Cholesky needs an SPD operand, a triangular solve
// needs a non-singular factor.
type FillKind int

const (
	// FillZero marks a temporary: its contents are produced by the
	// algorithm, so a zeroed buffer suffices.
	FillZero FillKind = iota
	// FillRandom marks a dense unstructured operand.
	FillRandom
	// FillSPD marks an operand that must be symmetric positive definite
	// (it is consumed by an in-place Cholesky factorisation).
	FillSPD
	// FillDiagDominant marks a triangular-factor operand: random with a
	// boosted diagonal, so forward/backward substitution is stable.
	FillDiagDominant
)

// String returns the fill kind's name.
func (f FillKind) String() string {
	switch f {
	case FillZero:
		return "zero"
	case FillRandom:
		return "random"
	case FillSPD:
		return "spd"
	case FillDiagDominant:
		return "diagdominant"
	default:
		return fmt.Sprintf("FillKind(%d)", int(f))
	}
}

// OperandSpec describes one distinct operand slot of a call: its ID, its
// stored shape, how it must be materialised for an isolated run, and
// whether the call writes it. This is the call→plan metadata the
// execution-plan compiler (lamb/internal/exec) uses to size arena slots
// and bind kernel arguments without per-kind switches.
type OperandSpec struct {
	ID         string
	Rows, Cols int
	Fill       FillKind
	Written    bool
}

// Operands returns the call's distinct operands in argument order
// (inputs first, then the output unless it aliases an input). In-place
// calls (POTRF, TRSM, AddSym, Tri2Full) report the aliased operand once,
// with Written set.
func (c Call) Operands() []OperandSpec {
	switch c.Kind {
	case Gemm:
		ar, ac := c.M, c.K
		if c.TransA {
			ar, ac = c.K, c.M
		}
		br, bc := c.K, c.N
		if c.TransB {
			br, bc = c.N, c.K
		}
		return []OperandSpec{
			{ID: c.In[0], Rows: ar, Cols: ac, Fill: FillRandom},
			{ID: c.In[1], Rows: br, Cols: bc, Fill: FillRandom},
			{ID: c.Out, Rows: c.M, Cols: c.N, Fill: FillRandom, Written: true},
		}
	case Syrk:
		ar, ac := c.M, c.K
		if c.TransA {
			ar, ac = c.K, c.M
		}
		return []OperandSpec{
			{ID: c.In[0], Rows: ar, Cols: ac, Fill: FillRandom},
			{ID: c.Out, Rows: c.M, Cols: c.M, Fill: FillRandom, Written: true},
		}
	case Symm:
		return []OperandSpec{
			{ID: c.In[0], Rows: c.M, Cols: c.M, Fill: FillRandom},
			{ID: c.In[1], Rows: c.M, Cols: c.N, Fill: FillRandom},
			{ID: c.Out, Rows: c.M, Cols: c.N, Fill: FillRandom, Written: true},
		}
	case Tri2Full:
		return []OperandSpec{
			{ID: c.Out, Rows: c.M, Cols: c.M, Fill: FillRandom, Written: true},
		}
	case Potrf:
		return []OperandSpec{
			{ID: c.Out, Rows: c.M, Cols: c.M, Fill: FillSPD, Written: true},
		}
	case Trsm:
		return []OperandSpec{
			{ID: c.In[0], Rows: c.M, Cols: c.M, Fill: FillDiagDominant},
			{ID: c.Out, Rows: c.M, Cols: c.N, Fill: FillRandom, Written: true},
		}
	case AddSym:
		return []OperandSpec{
			{ID: c.Out, Rows: c.M, Cols: c.M, Fill: FillRandom, Written: true},
			{ID: c.In[1], Rows: c.M, Cols: c.M, Fill: FillRandom},
		}
	default:
		panic(fmt.Sprintf("kernels: Operands of unknown kind %v", c.Kind))
	}
}

// Key returns a comparable identity for benchmark memoisation: two calls
// with equal keys have identical performance characteristics (same kind,
// dimensions, and transposition pattern), regardless of operand IDs.
type Key struct {
	Kind           Kind
	M, N, K        int
	TransA, TransB bool
}

// Key returns the call's memoisation key.
func (c Call) MemoKey() Key {
	return Key{Kind: c.Kind, M: c.M, N: c.N, K: c.K, TransA: c.TransA, TransB: c.TransB}
}

// Validate checks that the call's dimensions are positive and consistent
// with its kind.
func (c Call) Validate() error {
	switch c.Kind {
	case Gemm:
		if c.M <= 0 || c.N <= 0 || c.K <= 0 {
			return fmt.Errorf("kernels: gemm with non-positive dims %s", c)
		}
		if len(c.In) != 2 {
			return fmt.Errorf("kernels: gemm needs 2 inputs, has %d", len(c.In))
		}
	case Syrk:
		if c.M <= 0 || c.K <= 0 {
			return fmt.Errorf("kernels: syrk with non-positive dims %s", c)
		}
		if c.N != c.M {
			return fmt.Errorf("kernels: syrk with N %d != M %d", c.N, c.M)
		}
		if len(c.In) != 1 {
			return fmt.Errorf("kernels: syrk needs 1 input, has %d", len(c.In))
		}
	case Symm:
		if c.M <= 0 || c.N <= 0 {
			return fmt.Errorf("kernels: symm with non-positive dims %s", c)
		}
		if c.K != c.M {
			return fmt.Errorf("kernels: symm with K %d != M %d", c.K, c.M)
		}
	case Tri2Full:
		if c.M <= 0 || c.N != c.M {
			return fmt.Errorf("kernels: tri2full with bad dims %s", c)
		}
	case Potrf:
		if c.M <= 0 || c.N != c.M {
			return fmt.Errorf("kernels: potrf with bad dims %s", c)
		}
		if len(c.In) != 1 || c.In[0] != c.Out {
			return fmt.Errorf("kernels: potrf must factor in place, got %s", c)
		}
	case Trsm:
		if c.M <= 0 || c.N <= 0 {
			return fmt.Errorf("kernels: trsm with non-positive dims %s", c)
		}
		if len(c.In) != 2 || c.In[1] != c.Out {
			return fmt.Errorf("kernels: trsm must solve in place, got %s", c)
		}
	case AddSym:
		if c.M <= 0 || c.N != c.M {
			return fmt.Errorf("kernels: addsym with bad dims %s", c)
		}
		if len(c.In) != 2 || c.In[0] != c.Out {
			return fmt.Errorf("kernels: addsym must accumulate in place, got %s", c)
		}
	default:
		return fmt.Errorf("kernels: unknown kind %d", int(c.Kind))
	}
	if c.Out == "" {
		return fmt.Errorf("kernels: call %s has no output operand", c)
	}
	return nil
}
