package kernels

import (
	"testing"
	"testing/quick"

	"lamb/internal/xrand"
)

// Tests for the extended kernel kinds (POTRF, TRSM, AddSym).

func TestExtendedFlopFormulas(t *testing.T) {
	cases := []struct {
		call Call
		want float64
	}{
		// Exact integer Cholesky count n(n+1)(2n+1)/6.
		{NewPotrf(10, "S"), 10 * 11 * 21 / 6},
		{NewTrsm(10, 20, "L", "B", false), 10 * 10 * 20},
		{NewTrsm(10, 20, "L", "B", true), 10 * 10 * 20},
		{NewAddSym(10, "S", "R"), 10 * 11 / 2},
	}
	for _, c := range cases {
		if got := c.call.Flops(); got != c.want {
			t.Errorf("%s Flops = %v, want %v", c.call, got, c.want)
		}
	}
}

func TestPotrfFlopsMatchCountedOps(t *testing.T) {
	// Count the multiply-adds, divisions, and square roots of the
	// unblocked Cholesky: sum over j of (1 sqrt + (n-j-1) divs +
	// 2*(sum over the triangle updates)) — the standard total is
	// n³/3 + n²/2 + n/6 flops.
	counted := func(n int) float64 {
		ops := 0
		for j := 0; j < n; j++ {
			ops += 2*j + 1 // diagonal: j multiply-adds ×2, one sqrt
			for i := j + 1; i < n; i++ {
				ops += 2*j + 1 // row update: j MAs ×2, one division
			}
		}
		return float64(ops)
	}
	for _, n := range []int{1, 2, 5, 17, 40} {
		want := counted(n)
		if got := NewPotrf(n, "S").Flops(); got != want {
			t.Fatalf("potrf(%d) formula %v != counted %v", n, got, want)
		}
	}
}

func TestTrsmFlopsMatchCountedOps(t *testing.T) {
	// Forward substitution: per column, sum over i of (2i + 1) ops.
	counted := func(m, n int) float64 {
		ops := 0
		for j := 0; j < n; j++ {
			for i := 0; i < m; i++ {
				ops += 2*i + 1
			}
		}
		return float64(ops)
	}
	for _, sh := range [][2]int{{1, 1}, {5, 3}, {20, 7}} {
		m, n := sh[0], sh[1]
		want := counted(m, n)
		got := NewTrsm(m, n, "L", "B", false).Flops()
		// The m²n convention counts 2 flops per inner term but no
		// divisions; the exact count is m²n (m(m-1) MAs + m divs per
		// column = m² ops per column).
		if got != want {
			t.Fatalf("trsm(%d,%d) formula %v != counted %v", m, n, got, want)
		}
	}
}

func TestExtendedValidate(t *testing.T) {
	good := []Call{
		NewPotrf(5, "S"),
		NewTrsm(5, 3, "L", "B", true),
		NewAddSym(5, "S", "R"),
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c, err)
		}
	}
	bad := []Call{
		{Kind: Potrf, M: 5, N: 4, In: []string{"S"}, Out: "S"},
		{Kind: Potrf, M: 5, N: 5, In: []string{"S"}, Out: "T"}, // not in place
		{Kind: Trsm, M: 5, N: 0, In: []string{"L", "B"}, Out: "B"},
		{Kind: Trsm, M: 5, N: 3, In: []string{"L", "B"}, Out: "X"}, // not in place
		{Kind: AddSym, M: 5, N: 5, In: []string{"S", "R"}, Out: "R"},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad call %d accepted: %s", i, c)
		}
	}
}

func TestExtendedKindStrings(t *testing.T) {
	want := map[Kind]string{Potrf: "potrf", Trsm: "trsm", AddSym: "addsym"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind %v String = %q, want %q", int(k), k.String(), s)
		}
	}
}

func TestExtendedFlopsIntegerValued(t *testing.T) {
	// All FLOP counts must be exactly integer-valued so algorithm ties
	// stay exact under float summation.
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		m, n := rng.IntRange(1, 3000), rng.IntRange(1, 3000)
		for _, c := range []Call{
			NewPotrf(m, "S"),
			NewTrsm(m, n, "L", "B", false),
			NewAddSym(m, "S", "R"),
		} {
			fl := c.Flops()
			if fl != float64(int64(fl)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestExtendedBytesPositive(t *testing.T) {
	for _, c := range []Call{
		NewPotrf(5, "S"),
		NewTrsm(5, 3, "L", "B", false),
		NewAddSym(5, "S", "R"),
	} {
		if c.Bytes() <= 0 {
			t.Errorf("%s Bytes = %v", c, c.Bytes())
		}
	}
}
