package engine

// Do is the engine's single entry point, replacing the six historical
// Query* methods: one request struct selects the per-instance path, the
// batched path, or batched execution, and the deadline is whatever the
// caller's context carries. The old names remain below as thin
// deprecated wrappers so existing call sites migrate incrementally.

import (
	"context"

	"lamb/internal/mat"
)

// Request describes one Do call: which queries to answer and how.
type Request struct {
	// Queries are the selection requests. A single query takes the
	// per-instance path; two or more take the batched path — within-batch
	// coalescing, fused timed measurement, and (with Compute) fused
	// result execution.
	Queries []Query
	// Strategy, when non-empty, fills in any query that names no strategy
	// of its own. Queries that still name none after that use
	// DefaultStrategy, the paper's min-FLOPs discriminant.
	Strategy string
	// Compute additionally executes each query's selected algorithm and
	// returns its output, fusing same-bucket executions into shared batch
	// plans where the regime allows.
	Compute bool
	// Inputs supplies per-query input operands by ID for Compute
	// (Inputs[i] belongs to Queries[i]; short or nil is fine — missing
	// operands are filled from a deterministic stream). Ignored without
	// Compute.
	Inputs []map[string]*mat.Dense
}

// Result is one query's answer: its record, and — for Compute requests
// — the computed output.
type Result = BatchExecResult

// Do answers the request under the caller's context and returns one
// Result per query, in request order. The context's deadline governs
// everything downstream: timed strategies degrade to a FLOPs-only
// answer when it expires mid-measurement, and an already-expired
// context fails the queries immediately.
func (e *Engine) Do(ctx context.Context, req Request) []Result {
	qs := req.Queries
	if req.Strategy != "" {
		qs = make([]Query, len(req.Queries))
		copy(qs, req.Queries)
		for i := range qs {
			if qs[i].Strategy == "" {
				qs[i].Strategy = req.Strategy
			}
		}
	}
	switch {
	case req.Compute:
		return e.queryBatchExecCtx(ctx, qs, req.Inputs)
	case len(qs) == 1:
		rec, err := e.queryCtx(ctx, qs[0], false)
		return []Result{{Record: rec, Err: err}}
	default:
		rs := e.queryBatchCtx(ctx, qs)
		out := make([]Result, len(rs))
		for i, r := range rs {
			out[i] = Result{Record: r.Record, Err: r.Err}
		}
		return out
	}
}

// Query answers one selection request with no deadline.
//
// Deprecated: use Do.
func (e *Engine) Query(q Query) (*Record, error) {
	return e.QueryCtx(context.Background(), q)
}

// QueryCtx answers one selection request under the caller's context.
//
// Deprecated: use Do.
func (e *Engine) QueryCtx(ctx context.Context, q Query) (*Record, error) {
	return e.queryCtx(ctx, q, false)
}

// QueryBatch answers the queries concurrently with no deadline.
//
// Deprecated: use Do.
func (e *Engine) QueryBatch(qs []Query) []BatchResult {
	return e.QueryBatchCtx(context.Background(), qs)
}

// QueryBatchCtx answers the queries concurrently under one shared
// context. Note the historical single-element semantics this wrapper
// preserves: a one-query batch still runs with fused measurement
// enabled, unlike a one-query Do request.
//
// Deprecated: use Do.
func (e *Engine) QueryBatchCtx(ctx context.Context, qs []Query) []BatchResult {
	return e.queryBatchCtx(ctx, qs)
}

// QueryBatchExec answers the queries and computes their results with no
// deadline.
//
// Deprecated: use Do with Compute set.
func (e *Engine) QueryBatchExec(qs []Query, inputs []map[string]*mat.Dense) []BatchExecResult {
	return e.QueryBatchExecCtx(context.Background(), qs, inputs)
}

// QueryBatchExecCtx answers the queries and computes each query's
// result under the caller's context.
//
// Deprecated: use Do with Compute set.
func (e *Engine) QueryBatchExecCtx(ctx context.Context, qs []Query, inputs []map[string]*mat.Dense) []BatchExecResult {
	return e.queryBatchExecCtx(ctx, qs, inputs)
}
