package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"lamb/internal/exec"
	"lamb/internal/expr"
	"lamb/internal/kernels"
	"lamb/internal/outcomes"
	"lamb/internal/profile"
)

// TestEngineReloadProfilesSwapsProvenance pins the hot-reload path: a
// reload atomically installs the new store's provenance and strategies,
// bumps the generation, and subsequent profile-backed queries answer
// from (and stamp) the new store.
func TestEngineReloadProfilesSwapsProvenance(t *testing.T) {
	e := profiledEngine(t, Config{})
	inst := expr.Instance{80, 514, 768}
	before, err := e.Query(Query{Expr: "aatb", Instance: inst, Strategy: "min-predicted"})
	if err != nil {
		t.Fatal(err)
	}
	if before.Profile != "test-profile.json" {
		t.Fatalf("boot provenance %q", before.Profile)
	}
	if s := e.Stats(); s.Profile.Generation != 1 {
		t.Fatalf("boot generation %d, want 1", s.Profile.Generation)
	}

	timer := exec.NewTimer(exec.NewDefaultSimulated())
	timer.Reps = 2
	gen := e.ReloadProfiles(profile.MeasureSet(timer, 3), profile.Meta{Source: "reloaded.json", Backend: "simulated/test"})
	if gen != 2 {
		t.Fatalf("reload returned generation %d, want 2", gen)
	}
	after, err := e.Query(Query{Expr: "aatb", Instance: inst, Strategy: "min-predicted"})
	if err != nil {
		t.Fatal(err)
	}
	if after.Profile != "reloaded.json" {
		t.Fatalf("post-reload provenance %q", after.Profile)
	}
	s := e.Stats()
	if s.Profile == nil || s.Profile.ID != "reloaded.json" || s.Profile.Generation != 2 {
		t.Fatalf("stats provenance %+v", s.Profile)
	}
}

// TestEngineReloadProfilesEnablesStrategies: an engine booted without
// profiles answers profile-backed strategies degraded; after a reload
// installs a store, the same query answers undegraded. The feedback
// path gains its consumer the same way.
func TestEngineReloadProfilesEnablesStrategies(t *testing.T) {
	e := New(Config{})
	inst := expr.Instance{80, 514, 768}
	q := Query{Expr: "aatb", Instance: inst, Strategy: "min-predicted"}
	rec, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Degraded != DegradedNoProfile {
		t.Fatalf("expected degradation without profiles: %+v", rec)
	}
	if err := e.Feedback(Feedback{Expr: "aatb", Instance: inst, Algorithm: 1, Seconds: 1e-3}); err == nil {
		t.Fatal("feedback accepted without a consumer")
	}

	timer := exec.NewTimer(exec.NewDefaultSimulated())
	timer.Reps = 2
	e.ReloadProfiles(profile.MeasureSet(timer, 3), profile.Meta{Source: "p.json"})
	rec, err = e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Degraded != "" || rec.Strategy != "min-predicted" || rec.Profile != "p.json" {
		t.Fatalf("post-reload record %+v", rec)
	}
	if err := e.Feedback(Feedback{Expr: "aatb", Instance: inst, Algorithm: 1, Seconds: 1e-3}); err != nil {
		t.Fatalf("feedback after reload: %v", err)
	}
}

// slowExecutor wraps the simulated backend with a fixed wall-clock delay
// per repetition, so tests can make a deadline expire mid-measurement.
type slowExecutor struct {
	exec.Executor
	delay time.Duration
}

func (s slowExecutor) TimeAlgorithm(alg *expr.Algorithm, rep uint64) []float64 {
	time.Sleep(s.delay)
	return s.Executor.TimeAlgorithm(alg, rep)
}

func (s slowExecutor) TimeCallCold(call kernels.Call, rep uint64) float64 {
	time.Sleep(s.delay)
	return s.Executor.TimeCallCold(call, rep)
}

// TestEngineQueryCtxExpiredFailsFast: a context that is already done
// fails immediately with its error — no binding, no measuring.
func TestEngineQueryCtxExpiredFailsFast(t *testing.T) {
	e := New(Config{Executor: slowExecutor{exec.NewDefaultSimulated(), 50 * time.Millisecond}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := e.QueryCtx(ctx, Query{Expr: "aatb", Instance: expr.Instance{40, 50, 60}, Strategy: "oracle"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("expired query took %v, want immediate failure", d)
	}
}

// TestEngineDeadlineDegradesTimedStrategy is the graceful-degradation
// pin: an oracle query whose deadline expires mid-measurement answers
// from FLOP counts (min-flops) with requested strategy and reason
// stamped, instead of blocking past the deadline or erroring.
func TestEngineDeadlineDegradesTimedStrategy(t *testing.T) {
	e := New(Config{Executor: slowExecutor{exec.NewDefaultSimulated(), 30 * time.Millisecond}, Reps: 3})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	rec, err := e.QueryCtx(ctx, Query{Expr: "aatb", Instance: expr.Instance{40, 50, 60}, Strategy: "oracle"})
	if err != nil {
		t.Fatalf("deadline mid-measurement should degrade, got error %v", err)
	}
	if rec.Strategy != "min-flops" || rec.Requested != "oracle" || rec.Degraded != DegradedDeadline {
		t.Fatalf("degraded record not stamped: %+v", rec)
	}
	// The degraded answer is the min-flops answer.
	want, err := e.Query(Query{Expr: "aatb", Instance: expr.Instance{40, 50, 60}})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Selected.Index != want.Selected.Index {
		t.Fatalf("degraded pick %d differs from min-flops pick %d", rec.Selected.Index, want.Selected.Index)
	}
	if s := e.Stats(); s.DegradedQueries != 1 {
		t.Fatalf("degraded counter %d", s.DegradedQueries)
	}
}

// TestEngineQueryCtxWaiterAbandonsSlowLeader: a deduplicated waiter
// honours its own context — one slow leader cannot hold a cancelled
// request hostage.
func TestEngineQueryCtxWaiterAbandonsSlowLeader(t *testing.T) {
	e := New(Config{})
	q := Query{Expr: "aatb", Instance: expr.Instance{10, 20, 30}}
	key := "aatb|(10,20,30)|min-flops"
	f := &flight{done: make(chan struct{})}
	e.sfMu.Lock()
	e.inflight[key] = f
	e.sfMu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := e.QueryCtx(ctx, q)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("waiter hostage for %v", d)
	}
	// Unblock the planted flight so nothing leaks.
	e.sfMu.Lock()
	delete(e.inflight, key)
	e.sfMu.Unlock()
	close(f.done)
}

// TestEngineSnapshotRestoreOutcomes drives the durability loop at the
// engine level: feedback in, snapshot out, restore into a fresh engine,
// and the restored evidence steers an adaptive query exactly as the
// live evidence did. Invalid snapshot records (unknown expression,
// algorithm index out of range) are skipped, not fatal.
func TestEngineSnapshotRestoreOutcomes(t *testing.T) {
	e := profiledEngine(t, Config{})
	inst := expr.Instance{80, 514, 768}
	base, err := e.Query(Query{Expr: "aatb", Instance: inst, Strategy: "adaptive"})
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		for alg := 1; alg <= base.NumAlgorithms; alg++ {
			sec := 1e-6
			if alg == base.Selected.Index {
				sec = 10.0
			}
			if err := e.Feedback(Feedback{Expr: "aatb", Instance: inst, Algorithm: alg, Seconds: sec}); err != nil {
				t.Fatal(err)
			}
		}
	}
	steered, err := e.Query(Query{Expr: "aatb", Instance: inst, Strategy: "adaptive"})
	if err != nil {
		t.Fatal(err)
	}
	if steered.Selected.Index == base.Selected.Index {
		t.Fatal("feedback did not steer the source engine")
	}

	snap := e.SnapshotOutcomes()
	if snap.Profile != "test-profile.json" || len(snap.Records) != 1 {
		t.Fatalf("snapshot %+v", snap)
	}
	// Poison the snapshot with records this process cannot resolve.
	snap.Records = append(snap.Records,
		outcomes.SnapshotRecord{Expr: "no-such-expr", Instance: expr.Instance{2, 3, 4},
			Outcomes: []outcomes.SnapshotOutcome{{Algorithm: 1, Count: 1, Weight: 1, Mean: 0.5}}},
		outcomes.SnapshotRecord{Expr: "AATB", Instance: expr.Instance{9, 9, 9},
			Outcomes: []outcomes.SnapshotOutcome{{Algorithm: 99, Count: 1, Weight: 1, Mean: 0.5}}},
	)

	e2 := profiledEngine(t, Config{})
	restored, skipped := e2.RestoreOutcomes(snap)
	if restored != base.NumAlgorithms || skipped != 2 {
		t.Fatalf("restored %d skipped %d, want %d/2", restored, skipped, base.NumAlgorithms)
	}
	s := e2.Stats()
	if s.FeedbackRestored != uint64(base.NumAlgorithms) || s.FeedbackInstances != 1 {
		t.Fatalf("restore counters %+v", s)
	}
	rec, err := e2.Query(Query{Expr: "aatb", Instance: inst, Strategy: "adaptive"})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Selected.Index != steered.Selected.Index {
		t.Fatalf("restored engine picks %d, source picked %d", rec.Selected.Index, steered.Selected.Index)
	}
}

// TestEngineMergeOutcomes drives the gossip loop at the engine level:
// feedback on one engine, local snapshot out, merge into a second
// engine, and the merged evidence steers the receiver's adaptive
// queries. Merging is idempotent, counted in stats, and the receiver's
// own local export excludes the peer's evidence (anti-echo).
func TestEngineMergeOutcomes(t *testing.T) {
	a := profiledEngine(t, Config{})
	inst := expr.Instance{80, 514, 768}
	base, err := a.Query(Query{Expr: "aatb", Instance: inst, Strategy: "adaptive"})
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		for alg := 1; alg <= base.NumAlgorithms; alg++ {
			sec := 1e-6
			if alg == base.Selected.Index {
				sec = 10.0
			}
			if err := a.Feedback(Feedback{Expr: "aatb", Instance: inst, Algorithm: alg, Seconds: sec}); err != nil {
				t.Fatal(err)
			}
		}
	}
	steered, err := a.Query(Query{Expr: "aatb", Instance: inst, Strategy: "adaptive"})
	if err != nil {
		t.Fatal(err)
	}
	if steered.Selected.Index == base.Selected.Index {
		t.Fatal("feedback did not steer the source engine")
	}

	snap := a.SnapshotLocalOutcomes()
	b := profiledEngine(t, Config{})
	merged, skipped := b.MergeOutcomes("http://peer-a", snap, 1)
	if merged != base.NumAlgorithms || skipped != 0 {
		t.Fatalf("merged %d skipped %d, want %d/0", merged, skipped, base.NumAlgorithms)
	}
	rec, err := b.Query(Query{Expr: "aatb", Instance: inst, Strategy: "adaptive"})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Selected.Index != steered.Selected.Index {
		t.Fatalf("merged engine picks %d, source picked %d", rec.Selected.Index, steered.Selected.Index)
	}

	// Re-delivery is a no-op on the evidence and visible in the counters.
	b.MergeOutcomes("http://peer-a", snap, 1)
	s := b.Stats()
	if s.MergeRequests != 2 || s.MergedOutcomes != uint64(2*base.NumAlgorithms) {
		t.Fatalf("merge counters requests=%d outcomes=%d", s.MergeRequests, s.MergedOutcomes)
	}
	if s.AdaptiveInformed == 0 {
		t.Fatal("merged evidence did not inform the adaptive query")
	}
	if s.FeedbackInstances != 1 {
		t.Fatalf("feedback instances %d", s.FeedbackInstances)
	}

	// b's gossip export carries only its own (empty) firsthand evidence;
	// its durability snapshot keeps the merged streams, source-tagged.
	if local := b.SnapshotLocalOutcomes(); len(local.Records) != 0 {
		t.Fatalf("local export leaked merged evidence: %+v", local.Records)
	}
	full := b.SnapshotOutcomes()
	if len(full.Records) != 1 || len(full.Records[0].Outcomes) != base.NumAlgorithms {
		t.Fatalf("full snapshot %+v", full.Records)
	}
	for _, o := range full.Records[0].Outcomes {
		if o.Source != "http://peer-a" {
			t.Fatalf("merged outcome lost its source tag: %+v", o)
		}
	}
}
