package engine

import (
	"testing"

	"lamb/internal/exec"
	"lamb/internal/expr"
	"lamb/internal/mat"
	"lamb/internal/xrand"
)

// randomInputs builds a full input map for the algorithm from the rng,
// matching its declared shapes.
func randomInputs(alg *expr.Algorithm, rng *xrand.Rand) map[string]*mat.Dense {
	in := make(map[string]*mat.Dense, len(alg.Inputs))
	for _, id := range alg.Inputs {
		sh := alg.Shapes[id]
		in[id] = mat.NewRandom(sh.Rows, sh.Cols, rng)
	}
	return in
}

// TestQueryBatchExecFusedHomogeneous pins the fused result path for
// identical queries: same expression, same instance, min-flops — the
// bucket executes through one cached homogeneous batch plan, every
// result is marked fused, and each output is bitwise identical to
// evaluating the selected algorithm on the same inputs through the
// single-instance correctness path.
func TestQueryBatchExecFusedHomogeneous(t *testing.T) {
	e := New(Config{Executor: exec.NewMeasured()})
	const n = 4
	qs := make([]Query, n)
	for i := range qs {
		qs[i] = Query{Expr: "aatb", Instance: expr.Instance{12, 16, 8}}
	}
	algs, err := e.Algorithms("aatb", expr.Instance{12, 16, 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(0xdead)
	inputs := make([]map[string]*mat.Dense, n)
	for i := range inputs {
		inputs[i] = randomInputs(&algs[0], rng)
	}
	res := e.QueryBatchExec(qs, inputs)
	if len(res) != n {
		t.Fatalf("got %d results, want %d", len(res), n)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("query %d: %v", i, r.Err)
		}
		if !r.Fused {
			t.Errorf("query %d not fused", i)
		}
		if r.Output == nil {
			t.Fatalf("query %d: nil output", i)
		}
		var sel *expr.Algorithm
		for j := range algs {
			if algs[j].Index == r.Record.Selected.Index {
				sel = &algs[j]
			}
		}
		want := exec.EvaluateAlgorithm(sel, inputs[i])
		if !mat.Equal(r.Output, want) {
			t.Errorf("query %d: fused output differs from single-instance evaluation", i)
		}
	}
	s := e.Stats()
	if s.FusedQueries != n {
		t.Errorf("fused_queries = %d, want %d", s.FusedQueries, n)
	}
	if s.BatchPlans.Misses == 0 {
		t.Error("no batch plan was compiled for the homogeneous bucket")
	}
}

// TestQueryBatchExecFusedMixed pins the heterogeneous result path:
// queries of one expression at different shapes within one octave per
// dimension share a bucket, execute through one padded mixed plan, and
// each per-instance output is bitwise identical to its single-instance
// evaluation.
func TestQueryBatchExecFusedMixed(t *testing.T) {
	e := New(Config{Executor: exec.NewMeasured()})
	insts := []expr.Instance{{12, 16, 8}, {14, 18, 10}, {13, 17, 9}}
	qs := make([]Query, len(insts))
	inputs := make([]map[string]*mat.Dense, len(insts))
	sels := make([][]expr.Algorithm, len(insts))
	rng := xrand.New(0x317ed)
	for i, inst := range insts {
		qs[i] = Query{Expr: "aatb", Instance: inst}
		algs, err := e.Algorithms("aatb", inst)
		if err != nil {
			t.Fatal(err)
		}
		sels[i] = algs
		inputs[i] = randomInputs(&algs[0], rng)
	}
	res := e.QueryBatchExec(qs, inputs)
	sameIdx := true
	for _, r := range res[1:] {
		if r.Err == nil && r.Record.Selected.Index != res[0].Record.Selected.Index {
			sameIdx = false
		}
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("query %d: %v", i, r.Err)
		}
		if sameIdx && !r.Fused {
			t.Errorf("query %d not fused despite one bucket", i)
		}
		var sel *expr.Algorithm
		for j := range sels[i] {
			if sels[i][j].Index == r.Record.Selected.Index {
				sel = &sels[i][j]
			}
		}
		want := exec.EvaluateAlgorithm(sel, inputs[i])
		if !mat.Equal(r.Output, want) {
			t.Errorf("query %d: mixed fused output differs from single-instance evaluation", i)
		}
	}
	if sameIdx {
		if s := e.Stats(); s.FusedQueries != uint64(len(insts)) {
			t.Errorf("fused_queries = %d, want %d", s.FusedQueries, len(insts))
		}
	}
}

// TestQueryBatchExecDefaultFillDeterministic pins that queries without
// caller inputs are filled from a deterministic stream: two identical
// batches produce bitwise-identical outputs.
func TestQueryBatchExecDefaultFillDeterministic(t *testing.T) {
	e := New(Config{Executor: exec.NewMeasured()})
	qs := []Query{
		{Expr: "aatb", Instance: expr.Instance{12, 16, 8}},
		{Expr: "aatb", Instance: expr.Instance{12, 16, 8}},
	}
	a := e.QueryBatchExec(qs, nil)
	b := e.QueryBatchExec(qs, nil)
	for i := range a {
		if a[i].Err != nil || b[i].Err != nil {
			t.Fatalf("query %d: %v / %v", i, a[i].Err, b[i].Err)
		}
		if !mat.Equal(a[i].Output, b[i].Output) {
			t.Errorf("query %d: default-filled outputs differ across runs", i)
		}
	}
}

// TestQueryBatchExecRejectUnregistered pins the Unregistered reject:
// the simulated backend has no batched path, so a fusable-looking
// bucket executes per query and is counted.
func TestQueryBatchExecRejectUnregistered(t *testing.T) {
	e := New(Config{}) // simulated backend
	qs := []Query{
		{Expr: "aatb", Instance: expr.Instance{12, 16, 8}},
		{Expr: "aatb", Instance: expr.Instance{12, 16, 8}},
	}
	res := e.QueryBatchExec(qs, nil)
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("query %d: %v", i, r.Err)
		}
		if r.Fused {
			t.Errorf("query %d fused on an executor without a batched path", i)
		}
		if r.Output == nil {
			t.Errorf("query %d: nil output on the unfused fallback", i)
		}
	}
	s := e.Stats()
	if s.FuseRejected.Unregistered < 2 {
		t.Errorf("fuse_rejected.unregistered = %d, want >= 2", s.FuseRejected.Unregistered)
	}
	if s.FusedQueries != 0 {
		t.Errorf("fused_queries = %d, want 0", s.FusedQueries)
	}
}

// TestQueryBatchExecRejectTooBigArena pins the TooBigArena reject: a
// bucket whose instance arenas exceed the fused slab budget executes
// per query and is counted.
func TestQueryBatchExecRejectTooBigArena(t *testing.T) {
	e := New(Config{Executor: exec.NewMeasured()})
	inst := expr.Instance{512, 512, 4}
	be := e.timer.Exec.(exec.BatchExecutor)
	algs, err := e.Algorithms("aatb", inst)
	if err != nil {
		t.Fatal(err)
	}
	for i := range algs {
		if w := be.FuseChunk(&algs[i]); w >= 2 {
			t.Skipf("instance %v unexpectedly inside the fused regime (chunk %d)", inst, w)
		}
	}
	qs := []Query{
		{Expr: "aatb", Instance: inst},
		{Expr: "aatb", Instance: inst},
	}
	res := e.QueryBatchExec(qs, nil)
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("query %d: %v", i, r.Err)
		}
		if r.Fused {
			t.Errorf("query %d fused outside the fused regime", i)
		}
	}
	if s := e.Stats(); s.FuseRejected.TooBigArena < 2 {
		t.Errorf("fuse_rejected.too_big_arena = %d, want >= 2", s.FuseRejected.TooBigArena)
	}
}

// TestQueryBatchExecRejectHeteroPrepadding drives execBucket directly
// with two instances whose chunk widths are more than the padding gate
// apart: the bucket must execute unfused and count the reject. (End to
// end such pairs rarely share an octave bucket, which is the point of
// octave bucketing; the gate is the second line of defence.)
func TestQueryBatchExecRejectHeteroPrepadding(t *testing.T) {
	e := New(Config{Executor: exec.NewMeasured()})
	be := e.timer.Exec.(exec.BatchExecutor)
	small, err := e.Algorithms("aatb", expr.Instance{8, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	large, err := e.Algorithms("aatb", expr.Instance{100, 100, 100})
	if err != nil {
		t.Fatal(err)
	}
	a, b := &small[0], &large[0]
	wa, wb := be.FuseChunk(a), be.FuseChunk(b)
	if wa < 2 || wb < 2 || wa <= heteroPaddingMax*wb {
		t.Skipf("chunk widths %d/%d do not exercise the padding gate", wa, wb)
	}
	out := make([]BatchExecResult, 2)
	e.execBucket([]int{0, 1}, nil, []*expr.Algorithm{a, b}, out)
	for i, r := range out {
		if r.Err != nil {
			t.Fatalf("instance %d: %v", i, r.Err)
		}
		if r.Fused {
			t.Errorf("instance %d fused across the padding gate", i)
		}
		if r.Output == nil {
			t.Errorf("instance %d: nil output on the unfused fallback", i)
		}
	}
	if s := e.Stats(); s.FuseRejected.HeteroPrepadding != 2 {
		t.Errorf("fuse_rejected.hetero_prepadding = %d, want 2", s.FuseRejected.HeteroPrepadding)
	}
}
