package engine

import (
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"

	"lamb/internal/expr"
)

// checkRanking asserts the structural invariants every record's ranking
// must satisfy: one entry per algorithm, means ordered fastest-first,
// and win probabilities that are a distribution.
func checkRanking(t *testing.T, rec *Record) {
	t.Helper()
	if len(rec.Ranking) != rec.NumAlgorithms {
		t.Fatalf("ranking has %d entries for %d algorithms", len(rec.Ranking), rec.NumAlgorithms)
	}
	sum := 0.0
	for i, e := range rec.Ranking {
		if e.PBest < 0 || e.PBest > 1 {
			t.Fatalf("entry %d p_best %g out of range", i, e.PBest)
		}
		sum += e.PBest
		if i > 0 && e.Mean < rec.Ranking[i-1].Mean {
			t.Fatalf("ranking not ordered by mean: %v", rec.Ranking)
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("p_best sums to %g", sum)
	}
	if rec.Confidence < 0 || rec.Confidence > 1 {
		t.Fatalf("confidence %g out of range", rec.Confidence)
	}
}

// TestEngineRecordCarriesRanking pins the tentpole's baseline: every
// record — even from a plain profile-less min-flops engine — carries a
// ranking with win probabilities and a confidence, and with no feedback
// nothing is anomalous.
func TestEngineRecordCarriesRanking(t *testing.T) {
	e := New(Config{})
	rec, err := e.Query(Query{Expr: "aatb", Instance: expr.Instance{80, 514, 768}})
	if err != nil {
		t.Fatal(err)
	}
	checkRanking(t, rec)
	// With FLOPs as the prior, the ranking's head is the min-FLOPs pick.
	if rec.Ranking[0].Alg != rec.Selected.Index {
		t.Fatalf("ranking head %d, selected %d", rec.Ranking[0].Alg, rec.Selected.Index)
	}
	if rec.Anomaly {
		t.Fatal("anomalous with no evidence")
	}
	if s := e.Stats(); s.AnomalousQueries != 0 {
		t.Fatalf("anomalous counter %d", s.AnomalousQueries)
	}
}

// TestEngineRankingDeterministic pins the seeded sampler: identical
// queries against identical evidence produce identical rankings, the
// property the dedup layers and the serve round-trip test rely on.
func TestEngineRankingDeterministic(t *testing.T) {
	a, err := New(Config{}).Query(Query{Expr: "gls", Instance: expr.Instance{40, 30, 20, 10}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{}).Query(Query{Expr: "gls", Instance: expr.Instance{40, 30, 20, 10}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Ranking, b.Ranking) || a.Confidence != b.Confidence {
		t.Fatalf("rankings differ across identical engines:\n%v\n%v", a.Ranking, b.Ranking)
	}
}

// TestEngineAnomalyOctaveFlip is the discriminant test end to end:
// contradicting feedback concentrated at one instance region flips the
// ranking there and raises the anomaly flag — evidence says the
// min-FLOPs pick is not fastest — while an octave away, outside the
// evidence's reach, the same query stays confident and unflagged.
func TestEngineAnomalyOctaveFlip(t *testing.T) {
	e := profiledEngine(t, Config{})
	inst := expr.Instance{80, 514, 768}
	octaveUp := expr.Instance{160, 1028, 1536}

	base, err := e.Query(Query{Expr: "aatb", Instance: inst, Strategy: "min-flops"})
	if err != nil {
		t.Fatal(err)
	}
	// The min-FLOPs pick measures slow here, every alternative fast.
	for rep := 0; rep < 5; rep++ {
		for alg := 1; alg <= base.NumAlgorithms; alg++ {
			sec := 1e-6
			if alg == base.Selected.Index {
				sec = 10.0
			}
			if err := e.Feedback(Feedback{Expr: "aatb", Instance: inst, Algorithm: alg, Seconds: sec}); err != nil {
				t.Fatal(err)
			}
		}
	}
	flipped, err := e.Query(Query{Expr: "aatb", Instance: inst, Strategy: "adaptive"})
	if err != nil {
		t.Fatal(err)
	}
	checkRanking(t, flipped)
	if flipped.Selected.Index == base.Selected.Index {
		t.Fatalf("contradicting feedback did not flip the pick from %d", base.Selected.Index)
	}
	if !flipped.Anomaly {
		t.Fatal("contradicted min-FLOPs pick not flagged anomalous")
	}
	if flipped.Ranking[0].Alg == base.Selected.Index {
		t.Fatalf("ranking head still the contradicted pick: %v", flipped.Ranking)
	}
	// The flag is evidence-driven, not strategy-driven: a min-flops query
	// at the same instance still *selects* by FLOPs but reports the same
	// contradiction.
	minRec, err := e.Query(Query{Expr: "aatb", Instance: inst, Strategy: "min-flops"})
	if err != nil {
		t.Fatal(err)
	}
	if minRec.Selected.Index != base.Selected.Index {
		t.Fatal("feedback leaked into min-flops selection")
	}
	if !minRec.Anomaly {
		t.Fatal("min-flops record at a contradicted instance not flagged")
	}
	// An octave away the evidence is out of range: no anomaly, and the
	// prediction-backed ranking stays confidently with its own pick.
	farRec, err := e.Query(Query{Expr: "aatb", Instance: octaveUp, Strategy: "adaptive"})
	if err != nil {
		t.Fatal(err)
	}
	checkRanking(t, farRec)
	if farRec.Anomaly {
		t.Fatal("anomaly leaked an octave up")
	}
	if farRec.Ranking[0].Alg != farRec.Selected.Index {
		t.Fatalf("uncontradicted ranking head %d, selected %d", farRec.Ranking[0].Alg, farRec.Selected.Index)
	}
	s := e.Stats()
	if s.AnomalousQueries != 2 {
		t.Fatalf("anomalous counter %d, want 2 (one adaptive + one min-flops)", s.AnomalousQueries)
	}
}

// TestEngineThompsonExplorationFeedsBack demonstrates the exploration
// loop closing: with exploration on and a misleading prior, Thompson
// sampling eventually serves a non-min-FLOPs algorithm, the caller
// measures it and feeds the outcome back, and the posterior converges on
// the measured-fastest algorithm the prior had written off.
func TestEngineThompsonExplorationFeedsBack(t *testing.T) {
	e := profiledEngine(t, Config{ExploreRate: 1}) // every eligible answer explores
	inst := expr.Instance{80, 514, 768}

	base, err := e.Query(Query{Expr: "aatb", Instance: inst, Strategy: "min-flops"})
	if err != nil {
		t.Fatal(err)
	}
	// Serve adaptive queries until an exploration draw steps off the
	// prior's pick — the draws are seeded, so this loop is deterministic.
	explored := 0
	for i := 0; i < 500; i++ {
		rec, err := e.Query(Query{Expr: "aatb", Instance: inst, Strategy: "adaptive"})
		if err != nil {
			t.Fatal(err)
		}
		if !rec.Explore {
			t.Fatalf("query %d did not explore at rate 1", i)
		}
		if rec.Selected.Index == base.Selected.Index {
			// The truth this test simulates: the prior's (and min-FLOPs')
			// favourite is actually slow here.
			if err := e.Feedback(Feedback{Expr: "aatb", Instance: inst, Algorithm: rec.Selected.Index, Seconds: 10.0}); err != nil {
				t.Fatal(err)
			}
			continue
		}
		// Exploration served an alternative; it measures fast.
		explored++
		if err := e.Feedback(Feedback{Expr: "aatb", Instance: inst, Algorithm: rec.Selected.Index, Seconds: 1e-6}); err != nil {
			t.Fatal(err)
		}
		if explored >= 3 {
			break
		}
	}
	if explored == 0 {
		t.Fatal("Thompson sampling never explored off the prior's pick")
	}
	s := e.Stats()
	if s.ExploreQueries == 0 {
		t.Fatalf("explore counter did not move: %+v", s)
	}
	// The fed-back evidence now dominates: the posterior mean ranks the
	// explored algorithm first, so the ranking head — and, with the
	// evidence this lopsided, the Thompson draw itself — lands on a
	// non-min-FLOPs algorithm.
	rec, err := e.Query(Query{Expr: "aatb", Instance: inst, Strategy: "adaptive"})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Ranking[0].Alg == base.Selected.Index {
		t.Fatalf("posterior still ranks the contradicted prior pick first: %v", rec.Ranking)
	}
	if rec.Selected.Index == base.Selected.Index {
		t.Fatalf("adaptive still serves the contradicted pick %d", rec.Selected.Index)
	}
}

// TestEngineExplorationDisabledByDefault pins the opt-in: without
// ExploreRate the engine never trades a best-known answer for an
// experiment.
func TestEngineExplorationDisabledByDefault(t *testing.T) {
	e := profiledEngine(t, Config{})
	inst := expr.Instance{80, 514, 768}
	for i := 0; i < 20; i++ {
		rec, err := e.Query(Query{Expr: "aatb", Instance: inst, Strategy: "adaptive"})
		if err != nil {
			t.Fatal(err)
		}
		if rec.Explore {
			t.Fatal("explored with exploration disabled")
		}
	}
	if s := e.Stats(); s.ExploreQueries != 0 {
		t.Fatalf("explore counter %d with exploration disabled", s.ExploreQueries)
	}
}

// TestEngineExplorationNeverUnderDegradation pins the safety rail: a
// degraded answer (adaptive without profiles) must be the safest answer,
// never an experiment, no matter the configured rate.
func TestEngineExplorationNeverUnderDegradation(t *testing.T) {
	e := New(Config{ExploreRate: 1}) // no profiles: adaptive degrades
	inst := expr.Instance{80, 514, 768}
	for i := 0; i < 10; i++ {
		rec, err := e.Query(Query{Expr: "aatb", Instance: inst, Strategy: "adaptive"})
		if err != nil {
			t.Fatal(err)
		}
		if rec.Degraded != DegradedNoProfile {
			t.Fatalf("record not degraded: %+v", rec)
		}
		if rec.Explore {
			t.Fatal("degraded answer explored")
		}
	}
	if s := e.Stats(); s.ExploreQueries != 0 {
		t.Fatalf("explore counter %d under degradation", s.ExploreQueries)
	}
}

// TestEngineRiskConcurrentRace drives adaptive and min-flops queries,
// feedback, and stats concurrently; run under -race (the CI matrix runs
// it at -cpu=1,2,4). Every answer must carry a structurally valid
// ranking regardless of interleaving.
func TestEngineRiskConcurrentRace(t *testing.T) {
	e := profiledEngine(t, Config{ExploreRate: 0.25})
	const workers = 8
	const iters = 20
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			inst := expr.Instance{80 + w, 514, 768}
			for i := 0; i < iters; i++ {
				switch (w + i) % 3 {
				case 0:
					if err := e.Feedback(Feedback{Expr: "aatb", Instance: inst, Algorithm: 1 + i%5, Seconds: 1e-4 * float64(1+i)}); err != nil {
						errs <- err
					}
				case 1:
					rec, err := e.Query(Query{Expr: "aatb", Instance: inst, Strategy: "adaptive"})
					if err != nil {
						errs <- err
					} else if len(rec.Ranking) != rec.NumAlgorithms {
						errs <- fmt.Errorf("ranking %d entries for %d algorithms", len(rec.Ranking), rec.NumAlgorithms)
					}
				default:
					rec, err := e.Query(Query{Expr: "aatb", Instance: inst, Strategy: "min-flops"})
					if err != nil {
						errs <- err
					} else if rec.Confidence < 0 || rec.Confidence > 1 {
						errs <- fmt.Errorf("confidence %g", rec.Confidence)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s := e.Stats(); s.AdaptiveQueries == 0 || s.Feedback == 0 {
		t.Fatalf("counters did not move: %+v", s)
	}
}
