package engine

// The discriminant test (arXiv:2209.03258) at the serving layer: every
// record renders the engine's current evidence as a ranking with win
// probabilities, a top-2 confidence, and an anomaly flag where the
// evidence contradicts the min-FLOPs discriminant. Everything here is
// deterministic for a given store state — the Monte Carlo sampler is
// seeded from the query itself — so identical queries produce identical
// records, which the dedup layers and the serve tests rely on.

import (
	"math"
	"sort"

	"lamb/internal/expr"
	"lamb/internal/selection"
	"lamb/internal/xrand"
)

// Fixed seed labels for the two derived random streams: the ranking's
// Monte Carlo sampler (labelled further by expression and instance, so
// every query point gets an independent but reproducible stream) and
// the Thompson exploration draws (labelled by the exploration event
// ordinal).
const (
	rankSeed    uint64 = 0x5e1ec7_4a2b
	exploreSeed uint64 = 0x740_0b5e12
)

// RankEntry is one row of a record's ranking: an algorithm, its
// posterior summary, and the probability it is actually the fastest.
type RankEntry struct {
	// Alg is the paper's 1-based algorithm index (Candidate.Index).
	Alg int `json:"alg"`
	// PBest is the algorithm's probability of being the fastest at this
	// instance under the posterior; the column sums to 1.
	PBest float64 `json:"p_best"`
	// Mean and StdErr summarise the posterior: mean estimated execution
	// time in seconds (FLOPs stand in for seconds when no profile store
	// is loaded — wrong scale, same order) and its standard error.
	Mean   float64 `json:"mean"`
	StdErr float64 `json:"stderr"`
}

// exploreInterval converts a configured exploration rate into the
// deterministic pacing interval: every interval-th eligible adaptive
// answer explores. 0 disables.
func exploreInterval(rate float64) int {
	if rate <= 0 {
		return 0
	}
	if rate >= 1 {
		return 1
	}
	n := int(math.Round(1 / rate))
	if n < 1 {
		n = 1
	}
	return n
}

// exploreTick decides whether this adaptive answer explores, returning
// the exploration-stream ordinal that seeds its draws. Degraded answers
// never explore — under load shedding or a missing profile the engine
// must serve its safest answer, not an experiment.
func (e *Engine) exploreTick(run strategyRun) (uint64, bool) {
	if e.exploreEvery <= 0 || run.degraded != "" {
		return 0, false
	}
	n := e.exploreSeen.Add(1)
	return n, n%uint64(e.exploreEvery) == 0
}

// riskPosterior builds the posterior the record's ranking derives from
// for answers the adaptive strategy did not make: the same blend the
// adaptive strategy uses — profile prior plus decayed feedback near the
// instance — falling back to FLOP counts as the prior when no profile
// store is loaded. It deliberately bypasses the adaptive stats
// counters: a min-flops query that happens to have feedback nearby is
// not an "adaptive query".
func (e *Engine) riskPosterior(exprName string, inst expr.Instance, algs []expr.Algorithm) []selection.AlgPosterior {
	var prior selection.Predictor = selection.FlopsPredictor{}
	if st := e.prof.Load(); st != nil {
		prior = st.predicted
	}
	ad := selection.Adaptive{
		Prior:  prior,
		Radius: e.adaptiveRadius,
		Observe: func(inst expr.Instance) []selection.Observation {
			return e.outcomes.Near(exprName, inst, e.adaptiveRadius)
		},
	}
	return ad.Posterior(inst, algs)
}

// rank renders a posterior into the record's ranking block: entries
// ordered fastest-first by posterior mean, win probabilities from the
// seeded Monte Carlo sampler, the closed-form top-2 gap as the record's
// confidence, and the discriminant test itself — the answer is
// anomalous when the posterior-best algorithm differs from the
// min-FLOPs pick AND the min-FLOPs pick's probability of beating it has
// dropped below the threshold. Requiring both keeps near-tied FLOP sets
// with no feedback (beat probability ≈ ½) from flagging.
func rank(exprName string, inst expr.Instance, algs []expr.Algorithm, post []selection.AlgPosterior) (entries []RankEntry, confidence float64, anomaly bool) {
	rng := xrand.NewLabeled(rankSeed, exprName+"|"+inst.String())
	pb := selection.WinProbabilities(post, rng, 0)
	order := make([]int, len(post))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return post[order[a]].Mean < post[order[b]].Mean
	})
	entries = make([]RankEntry, len(post))
	for k, i := range order {
		entries[k] = RankEntry{
			Alg:    post[i].Algorithm,
			PBest:  pb[i],
			Mean:   post[i].Mean,
			StdErr: post[i].StdErr,
		}
	}
	confidence = selection.GapConfidence(post)
	best := selection.BestIndex(post)
	minFlops := selection.MinFlops{}.Choose(algs)
	anomaly = best != minFlops &&
		selection.BeatProbability(post[minFlops], post[best]) < selection.DefaultAnomalyThreshold
	return entries, confidence, anomaly
}
