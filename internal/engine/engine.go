// Package engine is the concurrency-safe query engine for algorithm
// selection: the single entry point that answers "for this expression
// and these operand sizes, which algorithm should I run?".
//
// It splits the selection pipeline into cacheable layers:
//
//   - symbolic layer: each expression's algorithm set is enumerated
//     once, symbolically (lamb/internal/ir's SymbolicSet); the engine
//     memoises the constructed expressions so repeated queries never
//     re-enumerate.
//   - binding layer: bound algorithm sets are memoised per
//     (expression, instance) in a bounded LRU, so repeated instances
//     skip even the cheap bind step — and, crucially, yield
//     pointer-stable algorithms for the layer below.
//   - execution layer: compiled execution plans live in a bounded LRU
//     (lamb/internal/exec.PlanCache) shared with the measured executor,
//     keyed by the bound algorithm, so timing-based strategies never
//     recompile a plan for a cached (algorithm, instance) pair.
//   - serving layer: Query and QueryBatch apply a selection strategy
//     (lamb/internal/selection) and deduplicate concurrent identical
//     queries with a singleflight, producing the machine-readable
//     Record that both `lamb select -json` and `lamb serve` emit.
//
// The CLI experiment pipeline, strategy evaluation, and the HTTP server
// all route through one Engine, so there is one pipeline rather than
// three. Cache effectiveness is observable through Stats.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lamb/internal/cache"
	"lamb/internal/exec"
	"lamb/internal/expr"
	"lamb/internal/faultinject"
	"lamb/internal/ir"
	"lamb/internal/outcomes"
	"lamb/internal/profile"
	"lamb/internal/selection"
	"lamb/internal/xrand"
)

// Cache-capacity defaults. Bound sets are small (≤ tens of algorithms
// of a few hundred bytes), so the binding layer can be generous; plans
// own operand arenas, so the execution layer stays conservative.
const (
	DefaultBindEntries     = 512
	DefaultPlanEntries     = 32
	DefaultCallPlanEntries = 32
	// DefaultFeedbackEntries bounds the feedback outcome store: distinct
	// (expression, instance) records kept for the adaptive strategy.
	// Records are small (an instance, its log coordinates, a few
	// per-algorithm running means), so the store can hold many instance
	// regions, but unlike an LRU cache an unbounded store would grow
	// with abusive feedback traffic — and its nearest-neighbour scan is
	// linear in the record count.
	DefaultFeedbackEntries = 4096
)

// DefaultStrategy is the strategy used when a query names none: the
// paper's baseline discriminant.
const DefaultStrategy = "min-flops"

// Config parameterises an Engine. The zero value is usable: simulated
// backend, the paper's 10 repetitions, default cache capacities.
type Config struct {
	// Executor runs timing-based strategies (oracle). Defaults to the
	// simulated backend on the calibrated machine. A *exec.Measured
	// executor has its plan cache replaced by the engine-owned one.
	Executor exec.Executor
	// Reps is the timer's repetition count (default 10, the paper's).
	Reps int
	// BindEntries bounds the binding-layer LRU (default 512).
	BindEntries int
	// PlanEntries bounds the compiled whole-algorithm plan LRU
	// (default 32).
	PlanEntries int
	// CallPlanEntries bounds the compiled single-call plan LRU
	// (default 32).
	CallPlanEntries int
	// Profiles, if set, enables the profile-backed strategies:
	// "min-predicted" (FLOPs combined with kernel performance profiles —
	// the paper's proposed discriminant) and "adaptive" (that prediction
	// refined online by measured outcomes fed back through Feedback).
	Profiles *profile.Set
	// ProfileMeta is the provenance of Profiles (typically the Meta
	// loaded alongside a persisted store); surfaced in Stats and in the
	// records of profile-backed queries.
	ProfileMeta profile.Meta
	// AdaptiveRadius is the log-shape distance within which recorded
	// outcomes inform an adaptive choice (default
	// selection.DefaultAdaptiveRadius).
	AdaptiveRadius float64
	// FeedbackEntries bounds the feedback outcome store (default 4096
	// distinct (expression, instance) records, least-recently-touched
	// evicted).
	FeedbackEntries int
	// OutcomeHalfLife is the exponential decay half-life applied to
	// recorded outcome weights, so stale (in particular pre-restart)
	// measurements cannot dominate fresh evidence forever. Zero disables
	// decay.
	OutcomeHalfLife time.Duration
	// ExploreRate, when positive, enables Thompson-sampling exploration:
	// roughly this fraction of adaptive answers (deterministically
	// rate-capped, values above 1 clamped) are drawn from the posterior
	// instead of taking its argmin, so under-observed regions eventually
	// collect feedback on the alternatives. Zero — the default — never
	// explores; degraded answers never explore regardless.
	ExploreRate float64
}

// Query is one selection request.
type Query struct {
	// Expr names a registered expression (case-insensitive).
	Expr string `json:"expr"`
	// Instance assigns the expression's dimensions.
	Instance expr.Instance `json:"instance"`
	// Strategy selects the discriminant: "min-flops" (default),
	// "min-predicted" (needs profiles), or "oracle" (measures every
	// algorithm).
	Strategy string `json:"strategy,omitempty"`
}

// Candidate is one algorithm of the queried set, as it appears in the
// selection record.
type Candidate struct {
	// Index is the paper's 1-based algorithm number.
	Index int `json:"index"`
	// Name is the call-sequence rendering.
	Name string `json:"name"`
	// Flops is the algorithm's FLOP count at the queried instance.
	Flops float64 `json:"flops"`
}

// Record is the machine-readable selection answer. `lamb select -json`
// and the `lamb serve` endpoint emit exactly this structure.
type Record struct {
	Expr     string        `json:"expr"`
	Instance expr.Instance `json:"instance"`
	Strategy string        `json:"strategy"`
	Backend  string        `json:"backend"`
	// Selected is the chosen algorithm.
	Selected Candidate `json:"selected"`
	// NumAlgorithms is the size of the enumerated set.
	NumAlgorithms int `json:"num_algorithms"`
	// Profile is the provenance tag of the profile store the answer
	// derives from (profile-backed strategies only).
	Profile string `json:"profile,omitempty"`
	// Requested is the strategy the query asked for when the answer
	// degraded to a different one; Degraded is the reason ("no-profile",
	// "deadline"). Strategy always names the strategy actually used.
	Requested string `json:"requested_strategy,omitempty"`
	Degraded  string `json:"degraded,omitempty"`
	// Candidates lists the whole set in enumeration order.
	Candidates []Candidate `json:"candidates"`
	// Ranking lists every candidate ordered by posterior mean time
	// (fastest first) with its probability of actually being fastest —
	// the discriminant test of arXiv:2209.03258 applied to the engine's
	// current evidence. Always present, whatever strategy answered.
	Ranking []RankEntry `json:"ranking"`
	// Confidence is the closed-form probability that the ranking's head
	// beats the runner-up: near 0.5 the top pick is a coin flip, near 1
	// it is settled.
	Confidence float64 `json:"confidence"`
	// Anomaly flags the paper's mispredict regions: the evidence says the
	// min-FLOPs pick is probably not the fastest algorithm here.
	Anomaly bool `json:"anomaly,omitempty"`
	// Explore marks an adaptive answer drawn by Thompson sampling from
	// the posterior rather than its argmin (see Config.ExploreRate).
	Explore bool `json:"explore,omitempty"`
}

// BatchResult pairs one query's record with its error.
type BatchResult struct {
	Record *Record
	Err    error
}

// Stats exposes the engine's per-layer cache counters.
type Stats struct {
	// Expressions counts symbolic-layer lookups: a hit means the
	// expression (and its symbolic algorithm set) was already
	// constructed.
	Expressions cache.Stats `json:"expressions"`
	// Bindings counts binding-layer lookups of bound algorithm sets.
	Bindings cache.Stats `json:"bindings"`
	// Plans and CallPlans count execution-layer plan lookups (measured
	// backend only; zero-valued on the simulated backend).
	Plans     cache.Stats `json:"plans"`
	CallPlans cache.Stats `json:"call_plans"`
	// BatchPlans counts execution-layer fused batch-plan lookups
	// (measured backend only; zero-valued on the simulated backend).
	BatchPlans cache.Stats `json:"batch_plans"`
	// Queries counts Query calls; Deduped counts those answered by an
	// in-flight identical query (singleflight hits).
	Queries uint64 `json:"queries"`
	Deduped uint64 `json:"deduped"`
	// Coalesced counts batch queries answered by an identical query in
	// the same batch (within-batch dedup, before the singleflight layer).
	Coalesced uint64 `json:"coalesced"`
	// FusedQueries counts queries that went through a fused batched
	// path: timed batch queries measured through fused plans, and batch
	// queries whose result was computed through a shared fused plan
	// (QueryBatchExecCtx).
	FusedQueries uint64 `json:"fused_queries"`
	// FuseRejected counts queries that could not take a fused path, by
	// reason.
	FuseRejected FuseRejects `json:"fuse_rejected"`
	// Feedback counts outcomes recorded through Engine.Feedback;
	// FeedbackInstances is the number of distinct (expression, instance)
	// points those outcomes cover.
	Feedback          uint64 `json:"feedback"`
	FeedbackInstances int    `json:"feedback_instances"`
	// AdaptiveQueries counts queries answered by the adaptive strategy;
	// AdaptiveInformed counts those for which recorded outcomes within
	// the neighbourhood radius actually informed the choice.
	AdaptiveQueries  uint64 `json:"adaptive_queries"`
	AdaptiveInformed uint64 `json:"adaptive_informed"`
	// AnomalousQueries counts answers whose record carried the anomaly
	// flag: the evidence contradicted the min-FLOPs discriminant there
	// (the paper's mispredict regions, as seen in live traffic).
	AnomalousQueries uint64 `json:"anomalous_queries"`
	// ExploreQueries counts adaptive answers drawn by Thompson sampling
	// instead of the posterior argmin (Config.ExploreRate).
	ExploreQueries uint64 `json:"explore_queries"`
	// DegradedQueries counts queries answered by a strategy further down
	// the degradation ladder than the one requested (no profile store,
	// deadline too tight to measure).
	DegradedQueries uint64 `json:"degraded_queries"`
	// FeedbackRestored counts outcomes restored from a snapshot at boot
	// (Engine.RestoreOutcomes), as opposed to fed back live.
	FeedbackRestored uint64 `json:"feedback_restored"`
	// MergeRequests counts Engine.MergeOutcomes calls (peer snapshots
	// merged in); MergedOutcomes counts the outcomes they installed.
	MergeRequests  uint64 `json:"merge_requests"`
	MergedOutcomes uint64 `json:"merged_outcomes"`
	// Profile is the provenance of the loaded profile store (nil when
	// the engine serves without profiles).
	Profile *ProfileInfo `json:"profile,omitempty"`
	// Enumerations is the process-wide count of symbolic enumerations
	// (ir.Enumerations): flat across repeated queries.
	Enumerations uint64 `json:"enumerations"`
	// Backend names the executor.
	Backend string `json:"backend"`
}

// FuseRejects breaks down, by reason, the queries that asked for a
// fused path (fused timed measurement or fused result execution) but
// could not take it:
//
//   - Unregistered: the executor has no batched path (e.g. the
//     simulated backend).
//   - TooBigArena: some candidate's instance arena exceeds the fused
//     slab budget, so the set is outside the fused regime.
//   - HeteroPrepadding: a mixed bucket's stride spread was too wide —
//     padding every instance to the largest stride would waste most of
//     the smaller instances' slabs.
type FuseRejects struct {
	TooBigArena      uint64 `json:"too_big_arena"`
	Unregistered     uint64 `json:"unregistered"`
	HeteroPrepadding uint64 `json:"hetero_prepadding"`
}

// ProfileInfo is the provenance block Stats carries for a loaded
// profile store.
type ProfileInfo struct {
	// ID is the short provenance tag (profile.Meta.ID) query records
	// reference.
	ID string `json:"id"`
	// Generation counts profile-store installations on this engine: 1
	// for the store loaded at boot, incremented by every hot reload
	// (Engine.ReloadProfiles), so an operator can confirm a reload took.
	Generation uint64 `json:"generation"`
	profile.Meta
}

// profileState is the engine's RCU-published profile store: everything
// derived from one loaded store, swapped atomically by ReloadProfiles
// while in-flight queries keep the state they loaded at entry. The
// strategies built over it are value types holding only the set
// pointer, so a state never mutates after publication.
type profileState struct {
	set       *profile.Set
	info      *ProfileInfo
	predicted selection.MinPredicted
}

// strategyRun is one query's resolved strategy: what was requested,
// what actually answers (after walking the degradation ladder), and how
// to run it. The adaptive strategy supplies adaptive instead of s: it
// is built per query, because the outcome lookup needs the resolved
// expression name.
type strategyRun struct {
	// name is the strategy that answers; requested differs from name
	// (and degraded holds the reason) when the ladder was walked.
	name      string
	requested string
	degraded  string
	s         selection.Strategy
	adaptive  func(exprName string) selection.Adaptive
	timed     bool
	profileID string
}

// flight is one in-flight query the singleflight layer deduplicates
// against. done is closed after rec/err are final, so waiters can
// select against their own context's cancellation.
type flight struct {
	done chan struct{}
	rec  *Record
	err  error
}

// Engine is the concurrency-safe selection engine. All methods are safe
// for concurrent use.
type Engine struct {
	timer *exec.Timer
	plans *exec.PlanCache // non-nil only for the measured backend

	// mu guards the expression table, its counters, and the binding LRU.
	mu       sync.Mutex
	exprs    map[string]expr.Expression
	exprHits uint64
	exprMiss uint64
	bind     *cache.LRU[bindKey, []expr.Algorithm]

	// execMu serialises timing-based strategies: executors measure wall
	// time, so concurrent measurement would contend for the cores being
	// measured (and the measured executor is single-threaded anyway).
	execMu sync.Mutex

	// sfMu guards the singleflight table.
	sfMu     sync.Mutex
	inflight map[string]*flight

	queries   atomic.Uint64
	deduped   atomic.Uint64
	coalesced atomic.Uint64
	fused     atomic.Uint64

	// Fused-path reject counters, by reason (see FuseRejects).
	rejTooBig       atomic.Uint64
	rejUnregistered atomic.Uint64
	rejHetero       atomic.Uint64

	// The feedback path: measured outcomes recorded per (expression,
	// instance), searched by log-shape distance for adaptive queries,
	// time-decayed, snapshot/restorable (lamb/internal/outcomes).
	outcomes         *outcomes.Store
	feedback         atomic.Uint64
	restored         atomic.Uint64
	mergeReqs        atomic.Uint64
	mergedOut        atomic.Uint64
	adaptiveQueries  atomic.Uint64
	adaptiveInformed atomic.Uint64
	degraded         atomic.Uint64

	// The discriminant-test path: anomalous counts answers that flagged
	// the min-FLOPs pick as probably wrong; exploreSeen paces the
	// deterministic Thompson-sampling rate cap (every exploreEvery-th
	// eligible adaptive answer explores; 0 disables); explored counts the
	// answers that did.
	anomalous    atomic.Uint64
	exploreSeen  atomic.Uint64
	explored     atomic.Uint64
	exploreEvery int

	// prof is the RCU-published profile state (nil without profiles):
	// queries load it once at entry, ReloadProfiles swaps it atomically,
	// in-flight queries finish on the state they started with. reloadGen
	// counts installations.
	prof           atomic.Pointer[profileState]
	reloadGen      atomic.Uint64
	adaptiveRadius float64
}

// bindKey identifies a bound algorithm set: canonical expression name
// plus the instance rendering.
type bindKey struct {
	expr string
	inst string
}

// New returns an Engine for the given configuration.
func New(cfg Config) *Engine {
	ex := cfg.Executor
	if ex == nil {
		ex = exec.NewDefaultSimulated()
	}
	timer := exec.NewTimer(ex)
	if cfg.Reps > 0 {
		timer.Reps = cfg.Reps
	}
	bindEntries := cfg.BindEntries
	if bindEntries <= 0 {
		bindEntries = DefaultBindEntries
	}
	feedbackEntries := cfg.FeedbackEntries
	if feedbackEntries <= 0 {
		feedbackEntries = DefaultFeedbackEntries
	}
	e := &Engine{
		timer:    timer,
		exprs:    make(map[string]expr.Expression),
		bind:     cache.NewLRU[bindKey, []expr.Algorithm](bindEntries),
		inflight: make(map[string]*flight),
		outcomes: outcomes.NewStore(feedbackEntries, cfg.OutcomeHalfLife),
	}
	if m, ok := ex.(*exec.Measured); ok {
		if cfg.PlanEntries <= 0 && cfg.CallPlanEntries <= 0 && m.Plans != nil {
			// Adopt the executor's cache: plans compiled before the
			// engine existed (e.g. profile measurement) stay warm, and
			// a second engine over the same executor shares — rather
			// than silently orphans — its cache and counters.
			e.plans = m.Plans
		} else {
			planEntries := cfg.PlanEntries
			if planEntries <= 0 {
				planEntries = DefaultPlanEntries
			}
			callEntries := cfg.CallPlanEntries
			if callEntries <= 0 {
				callEntries = DefaultCallPlanEntries
			}
			m.Plans = exec.NewPlanCache(planEntries, callEntries)
			e.plans = m.Plans
		}
	}
	e.adaptiveRadius = cfg.AdaptiveRadius
	if e.adaptiveRadius <= 0 {
		e.adaptiveRadius = selection.DefaultAdaptiveRadius
	}
	e.exploreEvery = exploreInterval(cfg.ExploreRate)
	if cfg.Profiles != nil {
		e.ReloadProfiles(cfg.Profiles, cfg.ProfileMeta)
	}
	return e
}

// ReloadProfiles atomically installs a profile store (and its derived
// strategies) without pausing queries: the new state is published with
// one pointer swap, in-flight queries finish on the store they loaded at
// entry, and subsequent queries see only the new one. Returns the
// installed generation (1 for the store loaded at boot). This is the
// hot-reload path behind `lamb serve`'s SIGHUP and /api/admin/reload.
func (e *Engine) ReloadProfiles(set *profile.Set, meta profile.Meta) uint64 {
	if set == nil {
		panic("engine: ReloadProfiles with a nil profile set")
	}
	info := &ProfileInfo{Meta: meta}
	info.ID = meta.ID()
	info.Generation = e.reloadGen.Add(1)
	e.prof.Store(&profileState{
		set:       set,
		info:      info,
		predicted: selection.MinPredicted{Profiles: set},
	})
	return info.Generation
}

// Timer returns the engine's timer; experiment runners share it so all
// measurement flows through the engine's executor (and, on the measured
// backend, its plan cache).
func (e *Engine) Timer() *exec.Timer { return e.timer }

// Strategies returns the names of the known strategies, for error
// messages and the serve endpoint. All four are always accepted: the
// profile-backed ones degrade to min-flops (with the record stamped)
// when no profile store is loaded.
func (e *Engine) Strategies() []string {
	return []string{"adaptive", "min-flops", "min-predicted", "oracle"}
}

// Register makes a custom expression (e.g. one built with
// lamb.DefineExpression) queryable under its name.
func (e *Engine) Register(x expr.Expression) error {
	if x == nil || x.Name() == "" {
		return fmt.Errorf("engine: cannot register an unnamed expression")
	}
	key := strings.ToLower(x.Name())
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.exprs[key]; ok {
		return fmt.Errorf("engine: expression %q already registered", x.Name())
	}
	e.exprs[key] = x
	return nil
}

// lookup resolves an expression name through the symbolic-layer cache,
// falling back to the built-in registry on first sight. counted says
// whether the lookup belongs to query traffic: administrative callers
// (ListExpressions) pass false so the hit/miss counters keep
// reflecting queries only.
func (e *Engine) lookup(name string, counted bool) (expr.Expression, error) {
	key := strings.ToLower(name)
	e.mu.Lock()
	if x, ok := e.exprs[key]; ok {
		if counted {
			e.exprHits++
		}
		e.mu.Unlock()
		return x, nil
	}
	if counted {
		e.exprMiss++
	}
	e.mu.Unlock()
	// Construct outside the lock: building an expression enumerates its
	// symbolic set, which can be slow for large chains.
	x, err := expr.Lookup(key)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	if prev, ok := e.exprs[key]; ok {
		x = prev // a concurrent construction won
	} else {
		e.exprs[key] = x
	}
	e.mu.Unlock()
	return x, nil
}

// Expression returns an engine-backed view of the named expression:
// its Algorithms method binds through the engine's caches. The returned
// sets are shared and must be treated as read-only — which every
// runner in this repository already does.
func (e *Engine) Expression(name string) (expr.Expression, error) {
	x, err := e.lookup(name, true)
	if err != nil {
		return nil, err
	}
	return cachedExpr{eng: e, x: x}, nil
}

// Algorithms returns the bound algorithm set for (expression name,
// instance) through the binding-layer LRU.
func (e *Engine) Algorithms(name string, inst expr.Instance) ([]expr.Algorithm, error) {
	x, err := e.lookup(name, true)
	if err != nil {
		return nil, err
	}
	return e.algorithmsFor(x, inst)
}

// algorithmsFor is the binding layer: memoised bound sets per
// (expression, instance). Binding runs outside the lock — a builder's
// first touch enumerates its symbolic set, which can be slow for large
// chains and must not stall unrelated queries. Concurrent misses of
// the same key may both bind, but the double-check keeps one winner in
// the cache and everyone returns it, so the sets stay pointer-stable —
// the plan cache below keys by those pointers.
func (e *Engine) algorithmsFor(x expr.Expression, inst expr.Instance) ([]expr.Algorithm, error) {
	if err := x.Validate(inst); err != nil {
		return nil, err
	}
	key := bindKey{expr: x.Name(), inst: inst.String()}
	e.mu.Lock()
	if algs, ok := e.bind.Get(key); ok {
		e.mu.Unlock()
		return algs, nil
	}
	e.mu.Unlock()
	algs := x.Algorithms(inst)
	e.mu.Lock()
	defer e.mu.Unlock()
	if cached, ok := e.bind.Peek(key); ok {
		return cached, nil // a concurrent bind won; use its pointers
	}
	e.bind.Put(key, algs)
	return algs, nil
}

// queryCtx answers one selection request under the caller's context.
// Concurrent identical queries (same expression, instance, and
// strategy) are deduplicated: one computes, the rest wait and share its
// record — but each waiter honours its own context, so one slow leader
// cannot hold a cancelled request hostage. A context that expires
// mid-measurement degrades timed strategies to a FLOPs-only answer (see
// answer); a context that is already done fails immediately.
//
// fusedOK is the flag batch queries set: fused queries may answer timed
// strategies through the fused batched measurement path (see answer).
// Fused and per-instance flights are kept apart in the singleflight
// table — they follow different measurement protocols, and a record
// must reflect the protocol that produced it.
func (e *Engine) queryCtx(ctx context.Context, q Query, fusedOK bool) (*Record, error) {
	e.queries.Add(1)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	strat := q.Strategy
	if strat == "" {
		strat = DefaultStrategy
	}
	key := strings.ToLower(q.Expr) + "|" + q.Instance.String() + "|" + strat
	if fusedOK {
		key += "|fused"
	}

	e.sfMu.Lock()
	if f, ok := e.inflight[key]; ok {
		e.sfMu.Unlock()
		e.deduped.Add(1)
		select {
		case <-f.done:
			return f.rec, f.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	e.inflight[key] = f
	e.sfMu.Unlock()

	f.rec, f.err = e.answer(ctx, q, strat, fusedOK)

	e.sfMu.Lock()
	delete(e.inflight, key)
	e.sfMu.Unlock()
	close(f.done)
	return f.rec, f.err
}

// resolveStrategy maps a strategy name to its runnable form against the
// given profile state, walking the degradation ladder when the state
// cannot support the request: a profile-backed strategy without a
// loaded profile store answers as min-flops with the record stamped
// requested_strategy + degraded="no-profile". Unknown names are errors,
// never degraded — a typo must not silently serve the wrong strategy.
func (e *Engine) resolveStrategy(strat string, st *profileState) (strategyRun, error) {
	run := strategyRun{name: strat, requested: strat}
	switch strat {
	case "min-flops":
		run.s = selection.MinFlops{}
	case "oracle":
		run.s = selection.Oracle{Timer: e.timer}
		run.timed = true
	case "min-predicted":
		if st == nil {
			return e.degradeRun(run, DegradedNoProfile), nil
		}
		run.s = st.predicted
		run.profileID = st.info.ID
	case "adaptive":
		if st == nil {
			return e.degradeRun(run, DegradedNoProfile), nil
		}
		run.profileID = st.info.ID
		// Adaptive is built per query: the outcome lookup needs the
		// resolved expression name, and counting informed choices at the
		// point of observation keeps the stats honest under concurrency.
		run.adaptive = func(exprName string) selection.Adaptive {
			e.adaptiveQueries.Add(1)
			return selection.Adaptive{
				Prior:  st.predicted,
				Radius: e.adaptiveRadius,
				Observe: func(inst expr.Instance) []selection.Observation {
					obs := e.outcomes.Near(exprName, inst, e.adaptiveRadius)
					if len(obs) > 0 {
						e.adaptiveInformed.Add(1)
					}
					return obs
				},
			}
		}
	default:
		return strategyRun{}, fmt.Errorf("engine: unknown strategy %q (registered: %s)", strat, strings.Join(e.Strategies(), ", "))
	}
	return run, nil
}

// Degradation reasons stamped into Record.Degraded.
const (
	// DegradedNoProfile: a profile-backed strategy was requested but no
	// profile store is loaded.
	DegradedNoProfile = "no-profile"
	// DegradedDeadline: the request deadline expired while a timed
	// strategy was measuring, so the engine answered from FLOP counts
	// instead of blocking past the deadline.
	DegradedDeadline = "deadline"
)

// degradeRun drops a run to the bottom of the ladder (min-flops: always
// available, never measures) and records why.
func (e *Engine) degradeRun(run strategyRun, reason string) strategyRun {
	run.name = "min-flops"
	run.degraded = reason
	run.s = selection.MinFlops{}
	run.adaptive = nil
	run.timed = false
	run.profileID = ""
	return run
}

// answer runs the cached pipeline for one query: bind (or fetch) the
// algorithm set, apply the strategy, render the record. The profile
// state is loaded once at entry — a concurrent ReloadProfiles swaps the
// pointer without affecting this query.
func (e *Engine) answer(ctx context.Context, q Query, strat string, fusedOK bool) (rec *Record, err error) {
	defer func() {
		// The expression layer panics on malformed custom expressions;
		// a serving engine turns that into a query error instead of
		// taking the process down.
		if r := recover(); r != nil {
			rec, err = nil, fmt.Errorf("engine: query %s%v failed: %v", q.Expr, q.Instance, r)
		}
	}()
	// Chaos hook: the suite arms "engine.query" to inject latency or
	// failures into the selection path of an unmodified binary.
	if err := faultinject.FireCtx(ctx, "engine.query"); err != nil {
		return nil, err
	}
	run, err := e.resolveStrategy(strat, e.prof.Load())
	if err != nil {
		return nil, err
	}
	x, err := e.lookup(q.Expr, true)
	if err != nil {
		return nil, err
	}
	algs, err := e.algorithmsFor(x, q.Instance)
	if err != nil {
		return nil, err
	}
	var pick int
	var post []selection.AlgPosterior
	explored := false
	if run.timed {
		width := 0
		if fusedOK {
			width = e.fuseWidth(algs)
		}
		e.execMu.Lock()
		if width >= 2 {
			pick, err = e.chooseTimedFused(ctx, algs, width)
		} else {
			pick, err = chooseTimed(ctx, run.s, algs)
		}
		e.execMu.Unlock()
		if err == nil && width >= 2 {
			e.fused.Add(1)
		}
		if err != nil {
			if ctx.Err() == nil {
				return nil, err
			}
			// The deadline expired mid-measurement: a FLOPs-only answer
			// now beats a measured answer never.
			run = e.degradeRun(run, DegradedDeadline)
			pick = run.s.Choose(algs)
		}
	} else if run.adaptive != nil {
		post = run.adaptive(x.Name()).Posterior(q.Instance, algs)
		pick = selection.BestIndex(post)
		if n, ok := e.exploreTick(run); ok {
			// Thompson sampling: one posterior draw per algorithm, take
			// the argmin. Seeded per exploration event so the sequence is
			// reproducible without any shared mutable RNG state.
			pick = selection.SampleBest(post, xrand.New(xrand.Hash64(exploreSeed, n)))
			e.explored.Add(1)
			explored = true
		}
	} else {
		if is, ok := run.s.(selection.InstanceStrategy); ok {
			pick = is.ChooseFor(q.Instance, algs)
		} else {
			pick = run.s.Choose(algs)
		}
	}
	// Every answer carries the discriminant test, whatever strategy made
	// the pick: the posterior over the engine's full current evidence
	// (profile prior when loaded, FLOPs otherwise, plus any feedback),
	// rendered as a ranking with win probabilities.
	if post == nil {
		post = e.riskPosterior(x.Name(), q.Instance, algs)
	}
	cands := make([]Candidate, len(algs))
	for i := range algs {
		cands[i] = Candidate{Index: algs[i].Index, Name: algs[i].Name, Flops: algs[i].Flops()}
	}
	ranking, confidence, anomaly := rank(x.Name(), q.Instance, algs, post)
	if anomaly {
		e.anomalous.Add(1)
	}
	rec = &Record{
		Expr:          strings.ToLower(q.Expr),
		Instance:      q.Instance.Clone(),
		Strategy:      run.name,
		Backend:       e.timer.Exec.Name(),
		Selected:      cands[pick],
		NumAlgorithms: len(algs),
		Profile:       run.profileID,
		Candidates:    cands,
		Ranking:       ranking,
		Confidence:    confidence,
		Anomaly:       anomaly,
		Explore:       explored,
	}
	if run.degraded != "" {
		e.degraded.Add(1)
		rec.Requested = run.requested
		rec.Degraded = run.degraded
	}
	return rec, nil
}

// chooseTimed runs a timed strategy under the context when it supports
// cancellation, so a deadline aborts within one measurement repetition.
func chooseTimed(ctx context.Context, s selection.Strategy, algs []expr.Algorithm) (int, error) {
	if cs, ok := s.(selection.ContextStrategy); ok && ctx.Done() != nil {
		return cs.ChooseCtx(ctx, algs)
	}
	return s.Choose(algs), nil
}

// fuseWidth returns the common fused measurement width for the set: the
// smallest FuseChunk over its algorithms — one measurement repetition
// executes one chunk, the packed-sweep width whose working set fits the
// slab budget — so every candidate is measured under the same protocol.
// 0 when the executor has no batched path or any algorithm is outside
// the fused regime — the caller then uses the ordinary per-instance
// measurement, and the reject is counted by reason in
// Stats.FuseRejected.
func (e *Engine) fuseWidth(algs []expr.Algorithm) int {
	be, ok := e.timer.Exec.(exec.BatchExecutor)
	if !ok {
		e.rejUnregistered.Add(1)
		return 0
	}
	width := 0
	for i := range algs {
		w := be.FuseChunk(&algs[i])
		if w < 2 {
			e.rejTooBig.Add(1)
			return 0
		}
		if width == 0 || w < width {
			width = w
		}
	}
	return width
}

// chooseTimedFused is the oracle choice over fused batched measurement:
// every algorithm is timed by executing width instances through one
// fused plan per repetition (amortising the cache flush and per-dispatch
// fixed costs), and the per-instance medians are compared exactly as the
// per-instance oracle compares its measurements. The context is honoured
// between repetitions, so the deadline degradation ladder behaves
// identically to the per-instance path.
func (e *Engine) chooseTimedFused(ctx context.Context, algs []expr.Algorithm, width int) (int, error) {
	best := -1
	bestT := 0.0
	for i := range algs {
		m, err := e.timer.MeasureAlgorithmBatchCtx(ctx, &algs[i], width)
		if err != nil {
			return -1, err
		}
		if best < 0 || m.Total < bestT {
			best, bestT = i, m.Total
		}
	}
	return best, nil
}

// batchWorkers bounds QueryBatch's concurrency.
func batchWorkers(n int) int {
	w := runtime.GOMAXPROCS(0) * 2
	if w < 4 {
		w = 4
	}
	if w > n {
		w = n
	}
	return w
}

// queryBatchCtx answers the queries concurrently under one shared
// context and returns the results in request order. Identical
// (expression, instance, strategy) queries within the batch are
// coalesced before dispatch: one representative computes, duplicates
// share its record without ever entering the pipeline (counted in
// Stats.Coalesced; cross-request duplicates are still deduplicated by
// the singleflight layer underneath). Batch queries run with fused
// execution enabled: timed strategies in the small-instance regime
// measure through fused batch plans (Stats.FusedQueries). A context
// that expires mid-batch fails the not-yet-answered queries with its
// error.
func (e *Engine) queryBatchCtx(ctx context.Context, qs []Query) []BatchResult {
	out := make([]BatchResult, len(qs))
	if len(qs) == 0 {
		return out
	}
	// Within-batch coalescing: first occurrence of each key computes,
	// duplicates copy its result after the wait.
	firstOf := make(map[string]int, len(qs))
	dup := make([]int, len(qs)) // dup[i] = index of i's representative
	uniq := make([]int, 0, len(qs))
	for i := range qs {
		strat := qs[i].Strategy
		if strat == "" {
			strat = DefaultStrategy
		}
		key := strings.ToLower(qs[i].Expr) + "|" + qs[i].Instance.String() + "|" + strat
		if j, ok := firstOf[key]; ok {
			dup[i] = j
			continue
		}
		firstOf[key] = i
		dup[i] = i
		uniq = append(uniq, i)
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, batchWorkers(len(uniq)))
	for _, i := range uniq {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			rec, err := e.queryCtx(ctx, qs[i], true)
			out[i] = BatchResult{Record: rec, Err: err}
		}(i)
	}
	wg.Wait()
	for i := range qs {
		if dup[i] != i {
			e.queries.Add(1) // a coalesced query is still an answered query
			e.coalesced.Add(1)
			out[i] = out[dup[i]]
		}
	}
	return out
}

// Stats returns the per-layer cache counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	s := Stats{
		Expressions: cache.Stats{Hits: e.exprHits, Misses: e.exprMiss, Size: len(e.exprs)},
		Bindings:    e.bind.Stats(),
	}
	e.mu.Unlock()
	if e.plans != nil {
		s.Plans, s.CallPlans = e.plans.Stats()
		s.BatchPlans = e.plans.BatchStats()
	}
	s.Queries = e.queries.Load()
	s.Deduped = e.deduped.Load()
	s.Coalesced = e.coalesced.Load()
	s.FusedQueries = e.fused.Load()
	s.FuseRejected = FuseRejects{
		TooBigArena:      e.rejTooBig.Load(),
		Unregistered:     e.rejUnregistered.Load(),
		HeteroPrepadding: e.rejHetero.Load(),
	}
	s.Feedback = e.feedback.Load()
	s.FeedbackInstances = e.outcomes.Size()
	s.AdaptiveQueries = e.adaptiveQueries.Load()
	s.AdaptiveInformed = e.adaptiveInformed.Load()
	s.AnomalousQueries = e.anomalous.Load()
	s.ExploreQueries = e.explored.Load()
	s.DegradedQueries = e.degraded.Load()
	s.FeedbackRestored = e.restored.Load()
	s.MergeRequests = e.mergeReqs.Load()
	s.MergedOutcomes = e.mergedOut.Load()
	if st := e.prof.Load(); st != nil {
		s.Profile = st.info
	}
	s.Enumerations = ir.Enumerations()
	s.Backend = e.timer.Exec.Name()
	return s
}

// ExpressionInfo describes one queryable expression.
type ExpressionInfo struct {
	Name          string `json:"name"`
	Arity         int    `json:"arity"`
	NumAlgorithms int    `json:"num_algorithms"`
}

// ListExpressions returns the queryable expressions — the built-in
// registry plus anything registered on this engine — keyed by the name
// a Query would use, sorted.
func (e *Engine) ListExpressions() []ExpressionInfo {
	seen := map[string]expr.Expression{}
	for _, name := range expr.Names() {
		if x, err := e.lookup(name, false); err == nil {
			seen[name] = x
		}
	}
	e.mu.Lock()
	for key, x := range e.exprs {
		if _, ok := seen[key]; !ok {
			seen[key] = x
		}
	}
	e.mu.Unlock()
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]ExpressionInfo, 0, len(names))
	for _, name := range names {
		x := seen[name]
		info := ExpressionInfo{Name: name, Arity: x.Arity()}
		if c, ok := x.(interface{ NumAlgorithms() int }); ok {
			info.NumAlgorithms = c.NumAlgorithms()
		}
		out = append(out, info)
	}
	return out
}

// cachedExpr is the engine-backed Expression view: Algorithms binds
// through the engine's caches and returns the shared cached set.
type cachedExpr struct {
	eng *Engine
	x   expr.Expression
}

// Name implements expr.Expression.
func (c cachedExpr) Name() string { return c.x.Name() }

// Arity implements expr.Expression.
func (c cachedExpr) Arity() int { return c.x.Arity() }

// Validate implements expr.Expression.
func (c cachedExpr) Validate(inst expr.Instance) error { return c.x.Validate(inst) }

// Algorithms implements expr.Expression through the binding cache. The
// returned set is shared: treat it as read-only.
func (c cachedExpr) Algorithms(inst expr.Instance) []expr.Algorithm {
	algs, err := c.eng.algorithmsFor(c.x, inst)
	if err != nil {
		panic(err)
	}
	return algs
}
