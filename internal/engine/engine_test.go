package engine

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"lamb/internal/exec"
	"lamb/internal/expr"
	"lamb/internal/ir"
	"lamb/internal/xrand"
)

// TestEngineCachedSetsMatchDirectProperty asserts the binding layer is
// transparent: for every registered expression and randomized
// instances, the engine-cached algorithm set is identical — index,
// name, calls, shapes, inputs, flops — to a direct expr.Algorithms
// enumeration, both on first sight (miss) and on repeat (hit).
func TestEngineCachedSetsMatchDirectProperty(t *testing.T) {
	e := New(Config{})
	rng := xrand.New(0xe16e)
	for _, name := range expr.Names() {
		direct, err := expr.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 25; trial++ {
			inst := make(expr.Instance, direct.Arity())
			for i := range inst {
				inst[i] = rng.IntRange(1, 400)
			}
			want := direct.Algorithms(inst)
			for pass := 0; pass < 2; pass++ { // miss, then hit
				got, err := e.Algorithms(name, inst)
				if err != nil {
					t.Fatalf("%s %v: %v", name, inst, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s %v pass %d: engine set differs from direct enumeration", name, inst, pass)
				}
				for i := range got {
					if got[i].Flops() != want[i].Flops() {
						t.Fatalf("%s %v algorithm %d: flops %v != %v", name, inst, i+1, got[i].Flops(), want[i].Flops())
					}
				}
			}
		}
	}
}

// TestEngineRepeatQueriesHitAllCacheLayers is the acceptance check:
// repeated identical queries are answered from the symbolic, binding,
// and plan caches — no re-enumeration, no re-binding, no re-compiling.
func TestEngineRepeatQueriesHitAllCacheLayers(t *testing.T) {
	e := New(Config{Executor: exec.NewMeasured(), Reps: 2})
	q := Query{Expr: "aatb", Instance: expr.Instance{12, 16, 8}, Strategy: "oracle"}

	first, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	warm := e.Stats()
	enums := ir.Enumerations()

	second, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	// The measured oracle is genuinely noisy, so the pick may differ
	// between sequential repeats — but the candidate set must not.
	if !reflect.DeepEqual(first.Candidates, second.Candidates) {
		t.Fatalf("repeat query changed the candidates:\n%+v\n%+v", first, second)
	}
	cold := e.Stats()

	// Symbolic layer: no new enumerations, and the expression lookup hit.
	if got := ir.Enumerations(); got != enums {
		t.Errorf("repeat query re-enumerated: %d -> %d", enums, got)
	}
	if cold.Expressions.Hits <= warm.Expressions.Hits {
		t.Errorf("expression cache hits did not grow: %+v -> %+v", warm.Expressions, cold.Expressions)
	}
	if cold.Expressions.Misses != warm.Expressions.Misses {
		t.Errorf("expression cache missed on repeat: %+v", cold.Expressions)
	}
	// Binding layer: a hit, no new miss.
	if cold.Bindings.Hits <= warm.Bindings.Hits || cold.Bindings.Misses != warm.Bindings.Misses {
		t.Errorf("binding cache did not serve the repeat: %+v -> %+v", warm.Bindings, cold.Bindings)
	}
	// Execution layer: the oracle re-measured every algorithm through
	// cached plans — hits grew, misses (compiles) did not.
	if cold.Plans.Hits <= warm.Plans.Hits {
		t.Errorf("plan cache hits did not grow: %+v -> %+v", warm.Plans, cold.Plans)
	}
	if cold.Plans.Misses != warm.Plans.Misses {
		t.Errorf("repeat query recompiled plans: %+v -> %+v", warm.Plans, cold.Plans)
	}
	if first.Strategy != "oracle" || first.NumAlgorithms != 5 || len(first.Candidates) != 5 {
		t.Fatalf("record %+v", first)
	}
}

// TestEngineQueryRecordMinFlops pins the record contents for the
// default strategy on a known instance: the SYRK algorithms tie for the
// minimum and the lowest index wins.
func TestEngineQueryRecordMinFlops(t *testing.T) {
	e := New(Config{})
	rec, err := e.Query(Query{Expr: "AATB", Instance: expr.Instance{80, 514, 768}})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Expr != "aatb" || rec.Strategy != "min-flops" {
		t.Fatalf("record header %+v", rec)
	}
	if rec.Selected.Index != 1 || rec.Selected.Flops != 13_161_120 {
		t.Fatalf("selected %+v", rec.Selected)
	}
	if rec.NumAlgorithms != 5 || len(rec.Candidates) != 5 {
		t.Fatalf("candidates %+v", rec.Candidates)
	}
	if rec.Candidates[4].Flops != 126_320_640 {
		t.Fatalf("candidate 5 flops %v", rec.Candidates[4].Flops)
	}
}

// TestEngineQueryErrors covers the failure paths: unknown expression,
// bad instance, unknown strategy.
func TestEngineQueryErrors(t *testing.T) {
	e := New(Config{})
	if _, err := e.Query(Query{Expr: "nope", Instance: expr.Instance{1, 2, 3}}); err == nil {
		t.Error("unknown expression accepted")
	}
	if _, err := e.Query(Query{Expr: "aatb", Instance: expr.Instance{1, 2}}); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := e.Query(Query{Expr: "aatb", Instance: expr.Instance{0, 2, 3}}); err == nil {
		t.Error("non-positive dimension accepted")
	}
	if _, err := e.Query(Query{Expr: "aatb", Instance: expr.Instance{4, 5, 6}, Strategy: "magic"}); err == nil {
		t.Error("unknown strategy accepted")
	}
	// min-predicted requires profiles: without them the answer degrades
	// to min-flops with the record stamped, rather than erroring.
	rec, err := e.Query(Query{Expr: "aatb", Instance: expr.Instance{4, 5, 6}, Strategy: "min-predicted"})
	if err != nil {
		t.Fatalf("min-predicted without profiles: %v", err)
	}
	if rec.Strategy != "min-flops" || rec.Requested != "min-predicted" || rec.Degraded != DegradedNoProfile {
		t.Errorf("degraded record not stamped: %+v", rec)
	}
	if s := e.Stats(); s.DegradedQueries != 1 {
		t.Errorf("degraded counter %d, want 1", s.DegradedQueries)
	}
}

// TestEngineRegisterCustomExpression routes a DefineExpression-style
// custom tree through the engine.
func TestEngineRegisterCustomExpression(t *testing.T) {
	a := ir.NewOperand("A", 0, 1)
	b := ir.NewOperand("B", 1, 2)
	g, err := expr.NewGeneric(&ir.Def{Name: "custom-ab", Arity: 3, Root: ir.Mul(a, b)})
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{})
	if err := e.Register(g); err != nil {
		t.Fatal(err)
	}
	if err := e.Register(g); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	rec, err := e.Query(Query{Expr: "Custom-AB", Instance: expr.Instance{3, 4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if rec.NumAlgorithms != 1 || rec.Selected.Flops != 2*3*4*5 {
		t.Fatalf("record %+v", rec)
	}
	infos := e.ListExpressions()
	found := false
	for _, info := range infos {
		if info.Name == "custom-ab" && info.Arity == 3 && info.NumAlgorithms == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("custom expression missing from %v", infos)
	}
}

// TestEngineExpressionWrapperMatchesDirect exercises the engine-backed
// Expression view the experiment pipeline uses.
func TestEngineExpressionWrapperMatchesDirect(t *testing.T) {
	e := New(Config{})
	x, err := e.Expression("chain")
	if err != nil {
		t.Fatal(err)
	}
	if x.Name() != "chain-ABCD" || x.Arity() != 5 {
		t.Fatalf("wrapper identity %s/%d", x.Name(), x.Arity())
	}
	inst := expr.Instance{3, 5, 7, 11, 13}
	want := expr.NewChainABCD().Algorithms(inst)
	if got := x.Algorithms(inst); !reflect.DeepEqual(got, want) {
		t.Fatal("wrapper set differs from direct enumeration")
	}
	// Repeated calls return the identical cached slice (pointer-stable
	// for the plan cache).
	first := x.Algorithms(inst)
	second := x.Algorithms(inst)
	if &first[0] != &second[0] {
		t.Fatal("binding cache did not return the shared set")
	}
}

// TestEngineConcurrentQueries hammers one engine from many goroutines
// with a mix of identical and distinct queries; run under -race this is
// the concurrency-safety test, and every identical query must produce
// the identical record.
func TestEngineConcurrentQueries(t *testing.T) {
	e := New(Config{})
	exprs := []string{"chain", "aatb", "atab", "lstsq", "aatbc", "gls"}
	const workers = 8
	const perWorker = 30
	recs := make([][]*Record, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(uint64(7)) // same seed: workers issue identical query streams
			recs[w] = make([]*Record, perWorker)
			for i := 0; i < perWorker; i++ {
				name := exprs[i%len(exprs)]
				x, err := expr.Lookup(name)
				if err != nil {
					t.Error(err)
					return
				}
				inst := make(expr.Instance, x.Arity())
				for d := range inst {
					inst[d] = rng.IntRange(2, 200)
				}
				rec, err := e.Query(Query{Expr: name, Instance: inst})
				if err != nil {
					t.Errorf("%s %v: %v", name, inst, err)
					return
				}
				recs[w][i] = rec
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range recs[w] {
			if recs[0][i] == nil || recs[w][i] == nil {
				t.Fatalf("missing record %d/%d", w, i)
			}
			if !reflect.DeepEqual(recs[0][i], recs[w][i]) {
				t.Fatalf("worker %d query %d: records diverge", w, i)
			}
		}
	}
	s := e.Stats()
	if s.Queries != workers*perWorker {
		t.Fatalf("queries %d, want %d", s.Queries, workers*perWorker)
	}
	if s.Bindings.Hits+s.Bindings.Misses+s.Deduped < s.Queries {
		t.Fatalf("cache accounting inconsistent: %+v", s)
	}
}

// TestEngineConcurrentBatch exercises QueryBatch under -race, mixing
// valid and invalid queries and checking order preservation.
func TestEngineConcurrentBatch(t *testing.T) {
	e := New(Config{})
	qs := []Query{
		{Expr: "aatb", Instance: expr.Instance{30, 40, 50}},
		{Expr: "unknown", Instance: expr.Instance{1}},
		{Expr: "chain", Instance: expr.Instance{3, 5, 7, 11, 13}},
		{Expr: "aatb", Instance: expr.Instance{30, 40, 50}}, // duplicate of [0]
	}
	var wg sync.WaitGroup
	for round := 0; round < 4; round++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := e.QueryBatch(qs)
			if len(res) != len(qs) {
				t.Errorf("got %d results", len(res))
				return
			}
			if res[0].Err != nil || res[2].Err != nil || res[3].Err != nil {
				t.Errorf("errors: %v %v %v", res[0].Err, res[2].Err, res[3].Err)
				return
			}
			if res[1].Err == nil {
				t.Error("unknown expression succeeded")
				return
			}
			if !reflect.DeepEqual(res[0].Record, res[3].Record) {
				t.Error("duplicate queries diverge within a batch")
			}
			if res[2].Record.Expr != "chain" {
				t.Errorf("order not preserved: %+v", res[2].Record)
			}
		}()
	}
	wg.Wait()
}

// TestEngineSingleflightDedup pins the dedup mechanics deterministically
// (white box): a query arriving while an identical one is in flight
// waits for it and shares its record.
func TestEngineSingleflightDedup(t *testing.T) {
	e := New(Config{})
	q := Query{Expr: "aatb", Instance: expr.Instance{10, 20, 30}}
	key := "aatb|(10,20,30)|min-flops"

	// Plant an in-flight entry, as if another goroutine were computing.
	f := &flight{done: make(chan struct{})}
	e.sfMu.Lock()
	e.inflight[key] = f
	e.sfMu.Unlock()

	done := make(chan *Record, 1)
	go func() {
		rec, err := e.Query(q)
		if err != nil {
			t.Error(err)
		}
		done <- rec
	}()

	// Handshake: the query increments the dedup counter the moment it
	// joins the in-flight entry, before blocking on it.
	for i := 0; e.deduped.Load() == 0 && i < 2000; i++ {
		time.Sleep(time.Millisecond)
	}
	if e.deduped.Load() != 1 {
		t.Fatal("query did not join the in-flight twin")
	}
	select {
	case <-done:
		t.Fatal("query did not wait for the in-flight twin")
	default:
	}

	want, err := e.answer(context.Background(), q, "min-flops", false)
	if err != nil {
		t.Fatal(err)
	}
	f.rec = want
	e.sfMu.Lock()
	delete(e.inflight, key)
	e.sfMu.Unlock()
	close(f.done)

	if got := <-done; !reflect.DeepEqual(got, want) {
		t.Fatalf("deduplicated query returned %+v, want %+v", got, want)
	}
	if s := e.Stats(); s.Deduped != 1 {
		t.Fatalf("deduped counter %d, want 1", s.Deduped)
	}
}

// TestEngineBindingEviction keeps the LRU bounded: more distinct
// instances than capacity evict, and re-querying an evicted instance
// re-binds correctly.
func TestEngineBindingEviction(t *testing.T) {
	e := New(Config{BindEntries: 4})
	for i := 0; i < 12; i++ {
		inst := expr.Instance{10 + i, 20, 30}
		if _, err := e.Algorithms("aatb", inst); err != nil {
			t.Fatal(err)
		}
	}
	s := e.Stats()
	if s.Bindings.Size > 4 {
		t.Fatalf("binding cache grew to %d", s.Bindings.Size)
	}
	if s.Bindings.Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
	// The oldest entry was evicted; re-binding it must still be correct.
	algs, err := e.Algorithms("aatb", expr.Instance{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	want := expr.NewAATB().Algorithms(expr.Instance{10, 20, 30})
	if !reflect.DeepEqual(algs, want) {
		t.Fatal("re-bound set differs after eviction")
	}
}
