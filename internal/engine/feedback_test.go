package engine

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"lamb/internal/exec"
	"lamb/internal/expr"
	"lamb/internal/profile"
)

// profiledEngine builds an engine over the simulated backend with
// freshly measured profiles, as `lamb serve -profile` would after
// loading a store.
func profiledEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	timer := exec.NewTimer(exec.NewDefaultSimulated())
	timer.Reps = 2
	cfg.Profiles = profile.MeasureSet(timer, 3)
	if cfg.ProfileMeta == (profile.Meta{}) {
		cfg.ProfileMeta = profile.Meta{Source: "test-profile.json", Backend: "simulated/test"}
	}
	return New(cfg)
}

// TestEngineAdaptiveSwitchesAfterContradictingFeedback is the
// acceptance pin for the online loop: the adaptive strategy starts from
// the profile-backed prediction, and after feedback contradicting that
// prediction it demonstrably selects a different algorithm.
func TestEngineAdaptiveSwitchesAfterContradictingFeedback(t *testing.T) {
	e := profiledEngine(t, Config{})
	inst := expr.Instance{80, 514, 768}
	adaptive := Query{Expr: "aatb", Instance: inst, Strategy: "adaptive"}

	base, err := e.Query(Query{Expr: "aatb", Instance: inst, Strategy: "min-predicted"})
	if err != nil {
		t.Fatal(err)
	}
	first, err := e.Query(adaptive)
	if err != nil {
		t.Fatal(err)
	}
	if first.Selected.Index != base.Selected.Index {
		t.Fatalf("without feedback adaptive picked %d, min-predicted %d",
			first.Selected.Index, base.Selected.Index)
	}
	if first.Profile != "test-profile.json" {
		t.Fatalf("record profile provenance %q", first.Profile)
	}

	// Contradicting outcomes: the predicted pick measured very slow,
	// every alternative very fast.
	for rep := 0; rep < 3; rep++ {
		for alg := 1; alg <= first.NumAlgorithms; alg++ {
			sec := 1e-6
			if alg == first.Selected.Index {
				sec = 10.0
			}
			if err := e.Feedback(Feedback{Expr: "aatb", Instance: inst, Algorithm: alg, Seconds: sec}); err != nil {
				t.Fatal(err)
			}
		}
	}
	second, err := e.Query(adaptive)
	if err != nil {
		t.Fatal(err)
	}
	if second.Selected.Index == first.Selected.Index {
		t.Fatalf("adaptive ignored contradicting feedback, still picks %d", second.Selected.Index)
	}
	// Other strategies are unaffected by feedback.
	after, err := e.Query(Query{Expr: "aatb", Instance: inst, Strategy: "min-predicted"})
	if err != nil {
		t.Fatal(err)
	}
	if after.Selected.Index != base.Selected.Index {
		t.Fatal("feedback leaked into min-predicted")
	}

	s := e.Stats()
	if s.Feedback != uint64(3*first.NumAlgorithms) || s.FeedbackInstances != 1 {
		t.Fatalf("feedback counters %+v", s)
	}
	if s.AdaptiveQueries != 2 || s.AdaptiveInformed != 1 {
		t.Fatalf("adaptive counters queries=%d informed=%d", s.AdaptiveQueries, s.AdaptiveInformed)
	}
	if s.Profile == nil || s.Profile.ID != "test-profile.json" {
		t.Fatalf("stats profile provenance %+v", s.Profile)
	}
}

// TestEngineAdaptiveNearestNeighbour checks the instance-region reuse:
// feedback recorded at one instance informs queries at nearby instances
// (small log-shape distance) but not at distant ones.
func TestEngineAdaptiveNearestNeighbour(t *testing.T) {
	e := profiledEngine(t, Config{})
	fed := expr.Instance{80, 514, 768}
	near := expr.Instance{84, 530, 750} // a few percent away per dim
	far := expr.Instance{400, 100, 160} // several log-units away

	base, err := e.Query(Query{Expr: "aatb", Instance: fed, Strategy: "adaptive"})
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		for alg := 1; alg <= base.NumAlgorithms; alg++ {
			sec := 1e-6
			if alg == base.Selected.Index {
				sec = 10.0
			}
			if err := e.Feedback(Feedback{Expr: "aatb", Instance: fed, Algorithm: alg, Seconds: sec}); err != nil {
				t.Fatal(err)
			}
		}
	}
	nearRec, err := e.Query(Query{Expr: "aatb", Instance: near, Strategy: "adaptive"})
	if err != nil {
		t.Fatal(err)
	}
	if nearRec.Selected.Index == base.Selected.Index {
		t.Fatal("nearby instance did not reuse recorded outcomes")
	}
	farBase, err := e.Query(Query{Expr: "aatb", Instance: far, Strategy: "min-predicted"})
	if err != nil {
		t.Fatal(err)
	}
	farRec, err := e.Query(Query{Expr: "aatb", Instance: far, Strategy: "adaptive"})
	if err != nil {
		t.Fatal(err)
	}
	if farRec.Selected.Index != farBase.Selected.Index {
		t.Fatal("distant instance was influenced by unrelated outcomes")
	}
}

func TestEngineFeedbackValidation(t *testing.T) {
	e := profiledEngine(t, Config{})
	inst := expr.Instance{80, 514, 768}
	cases := map[string]Feedback{
		"unknown expression": {Expr: "nope", Instance: inst, Algorithm: 1, Seconds: 1},
		"bad arity":          {Expr: "aatb", Instance: expr.Instance{1}, Algorithm: 1, Seconds: 1},
		"index zero":         {Expr: "aatb", Instance: inst, Algorithm: 0, Seconds: 1},
		"index out of range": {Expr: "aatb", Instance: inst, Algorithm: 99, Seconds: 1},
		"zero seconds":       {Expr: "aatb", Instance: inst, Algorithm: 1, Seconds: 0},
		"negative seconds":   {Expr: "aatb", Instance: inst, Algorithm: 1, Seconds: -4},
		"NaN seconds":        {Expr: "aatb", Instance: inst, Algorithm: 1, Seconds: math.NaN()},
		"Inf seconds":        {Expr: "aatb", Instance: inst, Algorithm: 1, Seconds: math.Inf(1)},
	}
	for name, fb := range cases {
		if err := e.Feedback(fb); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if s := e.Stats(); s.Feedback != 0 || s.FeedbackInstances != 0 {
		t.Fatalf("rejected feedback was counted: %+v", s)
	}
	// Feedback works against the uncounted lookup path and mixed name
	// casing, like queries do.
	if err := e.Feedback(Feedback{Expr: "AATB", Instance: inst, Algorithm: 2, Seconds: 0.5}); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.Feedback != 1 || s.FeedbackInstances != 1 {
		t.Fatalf("feedback counters %+v", s)
	}
}

func TestEngineAdaptiveUnavailableWithoutProfiles(t *testing.T) {
	e := New(Config{})
	rec, err := e.Query(Query{Expr: "aatb", Instance: expr.Instance{10, 20, 30}, Strategy: "adaptive"})
	if err != nil {
		t.Fatal(err)
	}
	// Without profiles, adaptive degrades to min-flops with the record
	// stamped rather than erroring.
	if rec.Strategy != "min-flops" || rec.Requested != "adaptive" || rec.Degraded != DegradedNoProfile {
		t.Fatalf("degraded record not stamped: %+v", rec)
	}
	// Without profiles there is no adaptive strategy to consume
	// outcomes, so feedback is rejected rather than silently hoarded.
	if err := e.Feedback(Feedback{Expr: "aatb", Instance: expr.Instance{10, 20, 30}, Algorithm: 1, Seconds: 1e-3}); err == nil {
		t.Fatal("feedback without a consumer accepted")
	}
}

// TestEngineFeedbackStoreBounded pins the outcome store's capacity:
// like the engine's other layers it must not grow without limit, and
// eviction drops the least-recently-touched record.
func TestEngineFeedbackStoreBounded(t *testing.T) {
	e := profiledEngine(t, Config{FeedbackEntries: 8})
	for i := 0; i < 30; i++ {
		fb := Feedback{Expr: "aatb", Instance: expr.Instance{20 + i, 514, 768}, Algorithm: 1, Seconds: 1e-3}
		if err := e.Feedback(fb); err != nil {
			t.Fatal(err)
		}
	}
	s := e.Stats()
	if s.FeedbackInstances != 8 {
		t.Fatalf("store holds %d records, want the 8-record bound", s.FeedbackInstances)
	}
	if s.Feedback != 30 {
		t.Fatalf("feedback counter %d", s.Feedback)
	}
	// The survivors are the most recently touched instances: an old one
	// no longer informs an adaptive query, a fresh one still does.
	if obs := e.outcomes.Near("AATB", expr.Instance{20, 514, 768}, 0.01); len(obs) != 0 {
		t.Fatalf("evicted record still observable: %v", obs)
	}
	if obs := e.outcomes.Near("AATB", expr.Instance{49, 514, 768}, 0.01); len(obs) == 0 {
		t.Fatal("recent record missing")
	}
}

// TestEngineFeedbackQueryTouchPreventsEviction pins the read-refresh:
// a record actively serving adaptive queries is a touched record, so
// churning feedback on throwaway instances evicts the stale ones, not
// the evidence in use.
func TestEngineFeedbackQueryTouchPreventsEviction(t *testing.T) {
	e := profiledEngine(t, Config{FeedbackEntries: 4})
	hot := expr.Instance{80, 514, 768}
	if err := e.Feedback(Feedback{Expr: "aatb", Instance: hot, Algorithm: 1, Seconds: 1e-3}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		// The adaptive query touches the hot record...
		if _, err := e.Query(Query{Expr: "aatb", Instance: hot, Strategy: "adaptive"}); err != nil {
			t.Fatal(err)
		}
		// ...so churning feedback on distant throwaway instances evicts
		// among themselves.
		cold := expr.Instance{900 + 7*i, 30, 40}
		if err := e.Feedback(Feedback{Expr: "aatb", Instance: cold, Algorithm: 1, Seconds: 1e-3}); err != nil {
			t.Fatal(err)
		}
	}
	if obs := e.outcomes.Near("AATB", hot, 0.01); len(obs) != 1 {
		t.Fatalf("actively queried record was evicted: %v", obs)
	}
}

// TestEngineFeedbackEvictionAcrossExpressions pins the cross-expression
// eviction path: when eviction removes an expression's last record (and
// its per-expression map), an insert for that same expression must
// still land somewhere near() can observe it.
func TestEngineFeedbackEvictionAcrossExpressions(t *testing.T) {
	e := profiledEngine(t, Config{FeedbackEntries: 2})
	feed := func(x string, inst expr.Instance) {
		t.Helper()
		if err := e.Feedback(Feedback{Expr: x, Instance: inst, Algorithm: 1, Seconds: 1e-3}); err != nil {
			t.Fatal(err)
		}
	}
	feed("aatb", expr.Instance{80, 514, 768})  // oldest: evicted next
	feed("gls", expr.Instance{40, 30, 20, 10}) // different expression
	feed("aatb", expr.Instance{120, 200, 300}) // evicts aatb's only record
	if got := e.Stats().FeedbackInstances; got != 2 {
		t.Fatalf("store holds %d records, want 2", got)
	}
	if obs := e.outcomes.Near("AATB", expr.Instance{120, 200, 300}, 0.01); len(obs) != 1 {
		t.Fatalf("record inserted after same-expression eviction not observable: %v", obs)
	}
	if obs := e.outcomes.Near("AATB", expr.Instance{80, 514, 768}, 0.01); len(obs) != 0 {
		t.Fatalf("evicted record still observable: %v", obs)
	}
}

// TestEngineFeedbackQueryConcurrentRace drives Feedback, adaptive
// queries, and Stats concurrently; run under -race (the CI matrix runs
// it at -cpu=1,2,4).
func TestEngineFeedbackQueryConcurrentRace(t *testing.T) {
	e := profiledEngine(t, Config{})
	const workers = 8
	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			inst := expr.Instance{80 + w, 514, 768}
			for i := 0; i < iters; i++ {
				switch (w + i) % 3 {
				case 0:
					if err := e.Feedback(Feedback{Expr: "aatb", Instance: inst, Algorithm: 1 + i%5, Seconds: 1e-4 * float64(1+i)}); err != nil {
						errs <- err
					}
				case 1:
					if _, err := e.Query(Query{Expr: "aatb", Instance: inst, Strategy: "adaptive"}); err != nil {
						errs <- err
					}
				default:
					s := e.Stats()
					if s.Backend == "" {
						errs <- fmt.Errorf("empty backend in stats")
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s := e.Stats(); s.Feedback == 0 || s.AdaptiveQueries == 0 || s.FeedbackInstances == 0 {
		t.Fatalf("counters did not move: %+v", s)
	}
}
