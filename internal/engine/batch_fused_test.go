package engine

import (
	"context"
	"reflect"
	"testing"
	"time"

	"lamb/internal/exec"
	"lamb/internal/expr"
)

// TestQueryBatchCoalescesDuplicates pins the within-batch dedup:
// identical (expression, instance, strategy) queries in one batch share
// one record — the duplicates never enter the pipeline, but still count
// as answered queries.
func TestQueryBatchCoalescesDuplicates(t *testing.T) {
	e := New(Config{})
	qa := Query{Expr: "aatb", Instance: expr.Instance{16, 8, 8}}
	qb := Query{Expr: "aatb", Instance: expr.Instance{32, 8, 8}}
	qc := Query{Expr: "chain", Instance: expr.Instance{8, 8, 8, 8, 8}}
	res := e.QueryBatch([]Query{qa, qb, qa, qa, qb, qc})
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("query %d: %v", i, r.Err)
		}
	}
	// Duplicates share the representative's record, pointer-identically.
	if res[2].Record != res[0].Record || res[3].Record != res[0].Record {
		t.Error("duplicate aatb queries did not share the representative's record")
	}
	if res[4].Record != res[1].Record {
		t.Error("duplicate query of the second instance did not share its record")
	}
	if res[5].Record == res[0].Record || res[1].Record == res[0].Record {
		t.Error("distinct queries improperly shared a record")
	}
	s := e.Stats()
	if s.Coalesced != 3 {
		t.Errorf("coalesced = %d, want 3", s.Coalesced)
	}
	if s.Queries != 6 {
		t.Errorf("queries = %d, want 6 (coalesced queries still count)", s.Queries)
	}
	// Differing strategies must NOT coalesce.
	qo := qa
	qo.Strategy = "min-flops" // explicit default == implicit default: coalesces
	res = e.QueryBatch([]Query{qa, qo})
	if res[1].Record != res[0].Record {
		t.Error("explicit default strategy did not coalesce with implicit")
	}
}

// TestQueryBatchFusedMeasurement pins the fused-execute mode: a batch
// query with a timed strategy in the small-instance regime measures
// through fused batch plans, producing an ordinary oracle record (not
// degraded, same candidate set as the per-instance path).
func TestQueryBatchFusedMeasurement(t *testing.T) {
	e := New(Config{Executor: exec.NewMeasured(), Reps: 2})
	q := Query{Expr: "aatb", Instance: expr.Instance{12, 16, 8}, Strategy: "oracle"}
	res := e.QueryBatch([]Query{q, q, q})
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("query %d: %v", i, r.Err)
		}
	}
	rec := res[0].Record
	if rec.Strategy != "oracle" || rec.Degraded != "" {
		t.Fatalf("fused batch record %+v, want an undegraded oracle answer", rec)
	}
	if rec.NumAlgorithms != 5 || len(rec.Candidates) != 5 {
		t.Fatalf("record %+v", rec)
	}
	s := e.Stats()
	if s.FusedQueries != 1 {
		t.Errorf("fused_queries = %d, want 1 (one representative measured fused)", s.FusedQueries)
	}
	if s.Coalesced != 2 {
		t.Errorf("coalesced = %d, want 2", s.Coalesced)
	}
	if s.BatchPlans.Misses == 0 {
		t.Error("no batch plans were compiled for a fused measurement")
	}
	// The fused record's candidates agree with the per-instance path.
	direct, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct.Candidates, rec.Candidates) {
		t.Errorf("fused candidates differ from per-instance:\n%+v\n%+v", rec.Candidates, direct.Candidates)
	}
	// Out of the fused regime (huge instance), batch oracle queries fall
	// back to per-instance measurement — but with the simulated-speed
	// check skipped here (measuring a 1200-dim instance is too slow for a
	// unit test), we only pin that the gate reports no width.
	big, err := e.Algorithms("aatb", expr.Instance{1200, 1200, 1200})
	if err != nil {
		t.Fatal(err)
	}
	if w := e.fuseWidth(big); w != 0 {
		t.Errorf("fuseWidth(1200-dim set) = %d, want 0", w)
	}
}

// slowBatchExecutor delays every fused repetition, so tests can make a
// deadline expire mid-fused-measurement.
type slowBatchExecutor struct {
	*exec.Measured
	delay time.Duration
}

func (s slowBatchExecutor) TimeAlgorithmBatch(alg *expr.Algorithm, count int, rep uint64) []float64 {
	time.Sleep(s.delay)
	return s.Measured.TimeAlgorithmBatch(alg, count, rep)
}

// TestQueryBatchFusedDeadlineDegrades pins that the degradation ladder
// survives the fused path: a batch oracle query whose deadline expires
// mid-fused-measurement answers min-flops with the degradation stamped,
// exactly like the per-instance path.
func TestQueryBatchFusedDeadlineDegrades(t *testing.T) {
	me := exec.NewMeasured()
	me.FlushBytes = 1 << 20
	e := New(Config{Executor: slowBatchExecutor{me, 30 * time.Millisecond}, Reps: 3})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	res := e.QueryBatchCtx(ctx, []Query{{Expr: "aatb", Instance: expr.Instance{12, 16, 8}, Strategy: "oracle"}})
	if res[0].Err != nil {
		t.Fatalf("deadline mid-measurement should degrade, got error %v", res[0].Err)
	}
	rec := res[0].Record
	if rec.Strategy != "min-flops" || rec.Requested != "oracle" || rec.Degraded != DegradedDeadline {
		t.Fatalf("degraded record not stamped: %+v", rec)
	}
	if s := e.Stats(); s.FusedQueries != 0 {
		t.Errorf("fused_queries = %d, want 0 (degraded answer is not fused)", s.FusedQueries)
	}
}
