package engine

import (
	"fmt"
	"math"
	"sync"

	"lamb/internal/expr"
	"lamb/internal/selection"
)

// The feedback path: callers report how a served selection actually
// performed, the engine records the outcome in a concurrency-safe store,
// and the adaptive strategy folds nearby outcomes back into later
// choices (the online decision process of arXiv:2209.03258). `lamb
// serve` exposes it as POST /api/feedback.

// Feedback is one measured outcome for a previously served selection:
// running algorithm Algorithm (the paper's 1-based index, as in
// Record.Selected.Index) of expression Expr at Instance took Seconds.
type Feedback struct {
	Expr      string        `json:"expr"`
	Instance  expr.Instance `json:"instance"`
	Algorithm int           `json:"algorithm"`
	Seconds   float64       `json:"seconds"`
}

// Feedback validates and records one outcome. The expression and
// instance are resolved through the same symbolic and binding layers
// queries use — so the instance is validated against the expression,
// the bound set stays warm in the bind LRU for the follow-up query, and
// the algorithm index is checked against the actual set size. An
// engine without profiles has no adaptive strategy to ever consume
// outcomes, so it rejects them rather than silently hoarding data that
// cannot influence any answer.
func (e *Engine) Feedback(fb Feedback) error {
	if e.profInfo == nil {
		return fmt.Errorf("engine: feedback has no consumer: the adaptive strategy needs a profile store (serve with -profile)")
	}
	if fb.Seconds <= 0 || math.IsNaN(fb.Seconds) || math.IsInf(fb.Seconds, 0) {
		return fmt.Errorf("engine: feedback seconds %v is not a positive duration", fb.Seconds)
	}
	x, err := e.lookup(fb.Expr, false)
	if err != nil {
		return err
	}
	algs, err := e.algorithmsFor(x, fb.Instance)
	if err != nil {
		return err
	}
	if fb.Algorithm < 1 || fb.Algorithm > len(algs) {
		return fmt.Errorf("engine: feedback algorithm %d out of range [1, %d] for %s%v",
			fb.Algorithm, len(algs), x.Name(), fb.Instance)
	}
	e.outcomes.add(x.Name(), fb.Instance, fb.Algorithm, fb.Seconds)
	e.feedback.Add(1)
	return nil
}

// algOutcome aggregates the measurements reported for one algorithm at
// one instance as a running mean.
type algOutcome struct {
	count int
	mean  float64
}

// outcome is everything recorded at one (expression, instance) point.
// The instance itself is represented twice over — the map key
// (inst.String()) for exact lookup and coords for distance — so the
// vector is not stored a third time.
type outcome struct {
	coords []float64 // log-shape coordinates, precomputed
	algs   map[int]*algOutcome
	// seq is the store's counter value at the last touch — feedback
	// recorded or evidence served to an adaptive query — the eviction
	// order once the store is full.
	seq uint64
}

// outcomeStore is the concurrency-safe feedback store: outcomes per
// expression, indexed by instance, searched by log-shape distance.
// Like the engine's other layers it is bounded — maxPoints distinct
// (expression, instance) records, least-recently-touched evicted — so
// abusive or merely long-lived feedback traffic cannot grow it without
// limit. The bound also caps near()'s linear scan.
type outcomeStore struct {
	mu        sync.Mutex
	byExpr    map[string]map[string]*outcome
	points    int // distinct (expression, instance) records
	maxPoints int
	seq       uint64
}

func newOutcomeStore(maxPoints int) *outcomeStore {
	return &outcomeStore{byExpr: make(map[string]map[string]*outcome), maxPoints: maxPoints}
}

// logCoords maps an instance into log-shape space, where the adaptive
// neighbourhood is defined: ratios of sizes, not absolute differences,
// determine whether two instances behave alike.
func logCoords(inst expr.Instance) []float64 {
	out := make([]float64, len(inst))
	for i, d := range inst {
		out[i] = math.Log(float64(d))
	}
	return out
}

// logDistance is the Euclidean distance between two log-shape points.
// Instances of different arity are infinitely far apart.
func logDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// add records one measurement, evicting the least-recently-touched
// record when the store is at capacity.
func (st *outcomeStore) add(exprName string, inst expr.Instance, alg int, seconds float64) {
	key := inst.String()
	st.mu.Lock()
	defer st.mu.Unlock()
	insts := st.byExpr[exprName]
	if insts == nil {
		insts = make(map[string]*outcome)
		st.byExpr[exprName] = insts
	}
	o := insts[key]
	if o == nil {
		if st.points >= st.maxPoints {
			// Eviction may remove this expression's last record and with
			// it the per-expression map itself — re-fetch so the insert
			// below never lands in an orphaned map.
			st.evictOldest()
			if insts = st.byExpr[exprName]; insts == nil {
				insts = make(map[string]*outcome)
				st.byExpr[exprName] = insts
			}
		}
		o = &outcome{coords: logCoords(inst), algs: make(map[int]*algOutcome)}
		insts[key] = o
		st.points++
	}
	st.seq++
	o.seq = st.seq
	ao := o.algs[alg]
	if ao == nil {
		ao = &algOutcome{}
		o.algs[alg] = ao
	}
	ao.count++
	ao.mean += (seconds - ao.mean) / float64(ao.count)
}

// evictOldest drops the record with the smallest touch sequence. A
// linear scan is fine: it runs only when the store is full, over at
// most maxPoints records. Callers hold the write lock.
func (st *outcomeStore) evictOldest() {
	var (
		oldExpr, oldKey string
		oldSeq          uint64
		found           bool
	)
	for exprName, insts := range st.byExpr {
		for key, o := range insts {
			if !found || o.seq < oldSeq {
				oldExpr, oldKey, oldSeq, found = exprName, key, o.seq, true
			}
		}
	}
	if found {
		delete(st.byExpr[oldExpr], oldKey)
		if len(st.byExpr[oldExpr]) == 0 {
			delete(st.byExpr, oldExpr)
		}
		st.points--
	}
}

// near returns the aggregated observations recorded within radius of
// inst in log-shape space — the adaptive strategy's evidence. Serving
// a record counts as a touch: evidence that is actively informing
// queries must not be evicted in favour of stale, never-queried
// records, so matches have their eviction seq refreshed — reads mutate,
// which is why the store uses a plain mutex.
func (st *outcomeStore) near(exprName string, inst expr.Instance, radius float64) []selection.Observation {
	coords := logCoords(inst)
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []selection.Observation
	for _, o := range st.byExpr[exprName] {
		d := logDistance(coords, o.coords)
		if d > radius {
			continue
		}
		st.seq++
		o.seq = st.seq
		for alg, ao := range o.algs {
			out = append(out, selection.Observation{
				Algorithm: alg,
				Seconds:   ao.mean,
				Count:     ao.count,
				Distance:  d,
			})
		}
	}
	return out
}

// size returns the number of distinct recorded (expression, instance)
// points.
func (st *outcomeStore) size() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.points
}
