package engine

import (
	"fmt"
	"math"

	"lamb/internal/expr"
)

// The feedback path: callers report how a served selection actually
// performed, the engine records the outcome in a concurrency-safe store
// (lamb/internal/outcomes — bounded, time-decayed, snapshot/restorable),
// and the adaptive strategy folds nearby outcomes back into later
// choices (the online decision process of arXiv:2209.03258). `lamb
// serve` exposes it as POST /api/feedback and persists the store across
// restarts with -outcomes.

// Feedback is one measured outcome for a previously served selection:
// running algorithm Algorithm (the paper's 1-based index, as in
// Record.Selected.Index) of expression Expr at Instance took Seconds.
type Feedback struct {
	Expr      string        `json:"expr"`
	Instance  expr.Instance `json:"instance"`
	Algorithm int           `json:"algorithm"`
	Seconds   float64       `json:"seconds"`
}

// Feedback validates and records one outcome. The expression and
// instance are resolved through the same symbolic and binding layers
// queries use — so the instance is validated against the expression,
// the bound set stays warm in the bind LRU for the follow-up query, and
// the algorithm index is checked against the actual set size. An
// engine without profiles has no adaptive strategy to ever consume
// outcomes, so it rejects them rather than silently hoarding data that
// cannot influence any answer.
func (e *Engine) Feedback(fb Feedback) error {
	if e.prof.Load() == nil {
		return fmt.Errorf("engine: feedback has no consumer: the adaptive strategy needs a profile store (serve with -profile)")
	}
	if fb.Seconds <= 0 || math.IsNaN(fb.Seconds) || math.IsInf(fb.Seconds, 0) {
		return fmt.Errorf("engine: feedback seconds %v is not a positive duration", fb.Seconds)
	}
	x, err := e.lookup(fb.Expr, false)
	if err != nil {
		return err
	}
	algs, err := e.algorithmsFor(x, fb.Instance)
	if err != nil {
		return err
	}
	if fb.Algorithm < 1 || fb.Algorithm > len(algs) {
		return fmt.Errorf("engine: feedback algorithm %d out of range [1, %d] for %s%v",
			fb.Algorithm, len(algs), x.Name(), fb.Instance)
	}
	e.outcomes.Add(x.Name(), fb.Instance, fb.Algorithm, fb.Seconds)
	e.feedback.Add(1)
	return nil
}
