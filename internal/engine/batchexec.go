package engine

// Fused result execution: QueryBatchExecCtx answers a batch of queries
// AND computes each query's result, routing same-algorithm queries of
// similar shape through one fused batch plan. Selection goes through
// the ordinary batched pipeline (coalescing, singleflight, fused timed
// measurement); the execution step then buckets the answered queries by
// (expression, selected algorithm index, shape octave) so that
//
//   - a bucket whose queries bound the exact same algorithm instance
//     executes through the homogeneous BatchPlan (cached in the plan
//     LRU), and
//   - a bucket of mixed instances — same expression, same algorithm
//     family, shapes within one power-of-two octave per dimension —
//     executes through a heterogeneous MixedBatchPlan, padded to a
//     common stride,
//
// both amortising the per-dispatch fixed costs that dominate the
// small-instance regime. Buckets that cannot fuse (no batched executor,
// instance arenas over the slab budget, padding overhead too high) fall
// back to per-query execution and are counted, by reason, in
// Stats.FuseRejected.

import (
	"context"
	"fmt"
	"math/bits"
	"strconv"
	"strings"

	"lamb/internal/exec"
	"lamb/internal/expr"
	"lamb/internal/mat"
	"lamb/internal/xrand"
)

// batchFillSeed seeds the deterministic stream that fills operands the
// caller did not supply, so default-filled results are reproducible.
const batchFillSeed = 0x5ab5

// heteroPaddingMax is the padding-overhead gate for mixed buckets: a
// mixed plan pads every instance slab to the largest stride in the
// bucket, and chunk widths are inversely proportional to stride, so a
// chunk-width spread beyond this factor means the small instances would
// waste most of their padded slabs. Such buckets execute unfused and
// count as HeteroPrepadding rejects.
const heteroPaddingMax = 4

// BatchExecResult pairs one query's selection record with the computed
// result of running the selected algorithm on that query's inputs.
type BatchExecResult struct {
	Record *Record
	// Output is the selected algorithm's result (caller-owned copy);
	// nil when Err is set.
	Output *mat.Dense
	Err    error
	// Fused reports whether this result was computed through a fused
	// batch plan shared with other queries of the same bucket.
	Fused bool
}

// fusedPlan is the common surface of the homogeneous BatchPlan and the
// heterogeneous MixedBatchPlan the execution step drives.
type fusedPlan interface {
	FillInputs(*xrand.Rand)
	SetInput(inst int, id string, src *mat.Dense)
	Execute()
	Output(inst int) *mat.Dense
}

// queryBatchExecCtx answers the queries (through queryBatchCtx: within-
// batch coalescing, singleflight, fused timed measurement) and then
// executes each query's selected algorithm, returning records and
// results in request order. inputs[i], when present, supplies query i's
// input operands by ID (shapes must match the instance); missing
// operands are filled from a deterministic stream. Queries that
// selected the same algorithm of the same expression at shapes within
// one power-of-two octave per dimension are executed through one fused
// batch plan — identical instances through the cached homogeneous plan,
// mixed instances through a padded heterogeneous plan — and marked
// Fused; each fused-executed query counts in Stats.FusedQueries.
// Buckets outside the fused regime execute per query and count in
// Stats.FuseRejected by reason.
func (e *Engine) queryBatchExecCtx(ctx context.Context, qs []Query, inputs []map[string]*mat.Dense) []BatchExecResult {
	out := make([]BatchExecResult, len(qs))
	recs := e.queryBatchCtx(ctx, qs)
	algOf := make([]*expr.Algorithm, len(qs))
	buckets := make(map[string][]int)
	var order []string
	for i := range recs {
		out[i].Record, out[i].Err = recs[i].Record, recs[i].Err
		if out[i].Err != nil || out[i].Record == nil {
			continue
		}
		algs, err := e.Algorithms(qs[i].Expr, qs[i].Instance)
		if err != nil {
			out[i].Err = err
			continue
		}
		for j := range algs {
			if algs[j].Index == out[i].Record.Selected.Index {
				algOf[i] = &algs[j]
				break
			}
		}
		if algOf[i] == nil {
			out[i].Err = fmt.Errorf("engine: selected algorithm %d not in bound set", out[i].Record.Selected.Index)
			continue
		}
		key := out[i].Record.Expr + "#" + strconv.Itoa(algOf[i].Index) + "#" + shapeOctaves(qs[i].Instance)
		if _, ok := buckets[key]; !ok {
			order = append(order, key)
		}
		buckets[key] = append(buckets[key], i)
	}
	for _, key := range order {
		e.execBucket(buckets[key], inputs, algOf, out)
	}
	return out
}

// shapeOctaves renders the instance's per-dimension power-of-two octave
// (⌊log2 d⌋), the bucketing coordinate: two instances in one octave
// differ by less than 2× in every dimension, so their padded arenas
// waste at most a bounded fraction of the common stride.
func shapeOctaves(inst expr.Instance) string {
	var b strings.Builder
	for i, d := range inst {
		if i > 0 {
			b.WriteByte('x')
		}
		o := 0
		if d > 0 {
			o = bits.Len(uint(d)) - 1
		}
		b.WriteString(strconv.Itoa(o))
	}
	return b.String()
}

// execBucket executes one bucket of answered queries, fused when the
// executor and the regime allow, per query otherwise (with the reject
// reason counted).
func (e *Engine) execBucket(idxs []int, inputs []map[string]*mat.Dense, algOf []*expr.Algorithm, out []BatchExecResult) {
	if len(idxs) < 2 {
		e.execUnfused(idxs, inputs, algOf, out)
		return
	}
	be, ok := e.timer.Exec.(exec.BatchExecutor)
	if !ok {
		e.rejUnregistered.Add(uint64(len(idxs)))
		e.execUnfused(idxs, inputs, algOf, out)
		return
	}
	width, minChunk, maxChunk := 0, 0, 0
	for _, i := range idxs {
		w, c := be.FuseWidth(algOf[i]), be.FuseChunk(algOf[i])
		if w < 2 || c < 1 {
			width = 0
			break
		}
		if width == 0 || w < width {
			width = w
		}
		if minChunk == 0 || c < minChunk {
			minChunk = c
		}
		if c > maxChunk {
			maxChunk = c
		}
	}
	if width < 2 {
		e.rejTooBig.Add(uint64(len(idxs)))
		e.execUnfused(idxs, inputs, algOf, out)
		return
	}
	homog := true
	for _, i := range idxs[1:] {
		if algOf[i] != algOf[idxs[0]] {
			homog = false
			break
		}
	}
	if !homog && maxChunk > heteroPaddingMax*minChunk {
		e.rejHetero.Add(uint64(len(idxs)))
		e.execUnfused(idxs, inputs, algOf, out)
		return
	}
	for lo := 0; lo < len(idxs); lo += width {
		sub := idxs[lo:min(lo+width, len(idxs))]
		if len(sub) < 2 {
			e.execUnfused(sub, inputs, algOf, out)
			continue
		}
		e.execFusedChunk(sub, homog, inputs, algOf, out)
	}
}

// execFusedChunk executes up to one fuse width of a bucket through one
// fused plan. Any compile or execution failure (e.g. a non-SPD input to
// a Cholesky-based algorithm poisoning the whole batched factorisation)
// falls back to per-query execution, so one bad query cannot take its
// bucket neighbours down.
func (e *Engine) execFusedChunk(idxs []int, homog bool, inputs []map[string]*mat.Dense, algOf []*expr.Algorithm, out []BatchExecResult) {
	var p fusedPlan
	if homog {
		alg := algOf[idxs[0]]
		if e.plans != nil {
			bp, err := e.plans.BatchPlan(alg, len(idxs))
			if err != nil {
				e.execUnfused(idxs, inputs, algOf, out)
				return
			}
			p = bp
		} else {
			bp, err := exec.CompileBatchPlan(alg, len(idxs))
			if err != nil {
				e.execUnfused(idxs, inputs, algOf, out)
				return
			}
			p = bp
		}
	} else {
		algs := make([]*expr.Algorithm, len(idxs))
		for k, i := range idxs {
			algs[k] = algOf[i]
		}
		mp, err := exec.CompileBatchPlanMixed(algs)
		if err != nil {
			e.execUnfused(idxs, inputs, algOf, out)
			return
		}
		p = mp
	}
	// Fill, override, execute, and copy outputs under the execution
	// lock: cached batch plans are shared and not safe for concurrent
	// use, and fused execution must not contend with a concurrent timed
	// measurement.
	e.execMu.Lock()
	failed := runFused(p, idxs, inputs, algOf)
	if failed == nil {
		for k, i := range idxs {
			o := p.Output(k)
			cp := mat.New(o.Rows, o.Cols)
			mat.Copy(cp, o)
			out[i].Output = cp
			out[i].Fused = true
		}
	}
	e.execMu.Unlock()
	if failed != nil {
		e.execUnfused(idxs, inputs, algOf, out)
		return
	}
	e.fused.Add(uint64(len(idxs)))
}

// runFused drives one fused plan execution, converting kernel panics
// (shape mismatches, non-SPD operands) into an error.
func runFused(p fusedPlan, idxs []int, inputs []map[string]*mat.Dense, algOf []*expr.Algorithm) (failed error) {
	defer func() {
		if r := recover(); r != nil {
			failed = fmt.Errorf("engine: fused execution failed: %v", r)
		}
	}()
	p.FillInputs(xrand.New(batchFillSeed))
	for k, i := range idxs {
		for id, src := range inputMap(inputs, i) {
			if _, ok := algOf[i].Shapes[id]; ok {
				p.SetInput(k, id, src)
			}
		}
	}
	p.Execute()
	return nil
}

// execUnfused executes each query through its own single-instance plan.
func (e *Engine) execUnfused(idxs []int, inputs []map[string]*mat.Dense, algOf []*expr.Algorithm, out []BatchExecResult) {
	for _, i := range idxs {
		out[i].Output, out[i].Err = execOne(algOf[i], inputMap(inputs, i))
		out[i].Fused = false
	}
}

// execOne compiles and runs one query's selected algorithm on a private
// plan, converting kernel panics into an error.
func execOne(alg *expr.Algorithm, in map[string]*mat.Dense) (o *mat.Dense, err error) {
	defer func() {
		if r := recover(); r != nil {
			o, err = nil, fmt.Errorf("engine: execution failed: %v", r)
		}
	}()
	p, err := exec.CompilePlan(alg)
	if err != nil {
		return nil, err
	}
	p.FillInputs(xrand.New(batchFillSeed))
	for id, src := range in {
		if _, ok := alg.Shapes[id]; ok {
			p.SetInput(id, src)
		}
	}
	p.Execute()
	res := p.Output()
	cp := mat.New(res.Rows, res.Cols)
	mat.Copy(cp, res)
	return cp, nil
}

// inputMap returns query i's input map, tolerating a short or nil
// inputs slice.
func inputMap(inputs []map[string]*mat.Dense, i int) map[string]*mat.Dense {
	if i < len(inputs) {
		return inputs[i]
	}
	return nil
}
