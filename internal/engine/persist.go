package engine

import (
	"lamb/internal/expr"
	"lamb/internal/outcomes"
)

// Durability of the feedback memory: the engine can snapshot its
// outcome store to the versioned JSON schema of lamb/internal/outcomes
// and restore a snapshot at boot, so the adaptive strategy's
// accumulated evidence survives restarts. `lamb serve -outcomes FILE`
// drives both ends.

// SnapshotOutcomes captures the current outcome store, decayed to now
// and tagged with the loaded profile store's provenance.
func (e *Engine) SnapshotOutcomes() *outcomes.Snapshot {
	profileID := ""
	if st := e.prof.Load(); st != nil {
		profileID = st.info.ID
	}
	return e.outcomes.Snapshot(profileID)
}

// RestoreOutcomes merges a (structurally validated) snapshot into the
// outcome store. Every record is re-validated semantically against this
// process's registry — the expression must resolve, the instance must
// validate, and the algorithm index must be within the bound set — and
// re-keyed under the expression's canonical name, so a snapshot from a
// boot with different custom expressions restores what it can and skips
// the rest instead of failing or hoarding unreachable records. Returns
// (restored, skipped) outcome counts; restored outcomes are reported in
// Stats.FeedbackRestored.
func (e *Engine) RestoreOutcomes(s *outcomes.Snapshot) (restored, skipped int) {
	restored, skipped = e.outcomes.Restore(s, func(name string, inst expr.Instance, alg int) (string, bool) {
		x, err := e.lookup(name, false)
		if err != nil {
			return "", false
		}
		algs, err := e.algorithmsFor(x, inst)
		if err != nil || alg < 1 || alg > len(algs) {
			return "", false
		}
		return x.Name(), true
	})
	e.restored.Add(uint64(restored))
	return restored, skipped
}
