package engine

import (
	"lamb/internal/expr"
	"lamb/internal/outcomes"
)

// Durability of the feedback memory: the engine can snapshot its
// outcome store to the versioned JSON schema of lamb/internal/outcomes
// and restore a snapshot at boot, so the adaptive strategy's
// accumulated evidence survives restarts. `lamb serve -outcomes FILE`
// drives both ends.

// SnapshotOutcomes captures the current outcome store, decayed to now
// and tagged with the loaded profile store's provenance.
func (e *Engine) SnapshotOutcomes() *outcomes.Snapshot {
	profileID := ""
	if st := e.prof.Load(); st != nil {
		profileID = st.info.ID
	}
	return e.outcomes.Snapshot(profileID)
}

// SnapshotLocalOutcomes captures only this process's firsthand evidence
// — feedback recorded here, not outcomes merged from peers — which is
// what a backend exports for gossip: re-exporting merged evidence would
// let it echo around the fleet and amplify.
func (e *Engine) SnapshotLocalOutcomes() *outcomes.Snapshot {
	profileID := ""
	if st := e.prof.Load(); st != nil {
		profileID = st.info.ID
	}
	return e.outcomes.SnapshotLocal(profileID)
}

// resolveOutcome re-validates one snapshot record semantically against
// this process's registry — the expression must resolve, the instance
// must validate, and the algorithm index must be within the bound set —
// and re-keys it under the expression's canonical name, so a snapshot
// from a boot with different custom expressions lands what it can and
// skips the rest instead of failing or hoarding unreachable records.
func (e *Engine) resolveOutcome(name string, inst expr.Instance, alg int) (string, bool) {
	x, err := e.lookup(name, false)
	if err != nil {
		return "", false
	}
	algs, err := e.algorithmsFor(x, inst)
	if err != nil || alg < 1 || alg > len(algs) {
		return "", false
	}
	return x.Name(), true
}

// RestoreOutcomes merges a (structurally validated) snapshot into the
// outcome store, each record re-validated by resolveOutcome. Returns
// (restored, skipped) outcome counts; restored outcomes are reported in
// Stats.FeedbackRestored.
func (e *Engine) RestoreOutcomes(s *outcomes.Snapshot) (restored, skipped int) {
	restored, skipped = e.outcomes.Restore(s, e.resolveOutcome)
	e.restored.Add(uint64(restored))
	return restored, skipped
}

// MergeOutcomes installs a peer's snapshot as evidence attributed to
// source, replacing whatever that source contributed before (idempotent:
// re-delivering a snapshot is a no-op, a newer one supersedes). scale
// discounts the peer's weights; records are validated by resolveOutcome
// exactly like a restore. Counted in Stats.MergeRequests /
// Stats.MergedOutcomes.
func (e *Engine) MergeOutcomes(source string, s *outcomes.Snapshot, scale float64) (merged, skipped int) {
	merged, skipped = e.outcomes.Merge(source, s, scale, e.resolveOutcome)
	e.mergeReqs.Add(1)
	e.mergedOut.Add(uint64(merged))
	return merged, skipped
}
