package router

import (
	"sync"
	"time"
)

// Circuit breaker states. The classic machine: closed passes traffic
// and watches the failure rate; open fails fast; half-open lets a trial
// request (or a health probe) decide between re-closing and re-opening.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breakerStateNames render the state for /api/stats.
var breakerStateNames = [...]string{"closed", "open", "half-open"}

// breaker is one backend's circuit breaker. It trips on the failure
// rate over a sliding window of recent forwards — a single timeout in a
// storm of successes must not blind the router to a healthy backend —
// and recovers either by time (half-open trial after openFor) or by
// authority (reset() from a health-probe transition, the probe having
// just proven the backend answers again).
type breaker struct {
	mu sync.Mutex
	// window is a ring buffer of recent forward outcomes (true =
	// failure); filled counts how much of it is populated.
	window      []bool
	idx, filled int
	fails       int
	state       int
	openedAt    time.Time
	// openFor is how long the breaker fails fast before allowing a
	// half-open trial; minSamples gates tripping until the window has
	// evidence; tripRatio is the failure fraction that opens it.
	openFor    time.Duration
	minSamples int
	tripRatio  float64
	opens      uint64
	now        func() time.Time
}

func newBreaker(window, minSamples int, tripRatio float64, openFor time.Duration) *breaker {
	return &breaker{
		window:     make([]bool, window),
		minSamples: minSamples,
		tripRatio:  tripRatio,
		openFor:    openFor,
		now:        time.Now,
	}
}

// allow reports whether a forward may proceed. An open breaker starts a
// half-open trial once openFor has elapsed; half-open admits the trial.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if b.now().Sub(b.openedAt) >= b.openFor {
			b.state = breakerHalfOpen
			return true
		}
		return false
	default:
		return true
	}
}

// success records a successful forward. In half-open it is the trial
// passing: the breaker closes and the window resets.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.reset()
		return
	}
	b.record(false)
}

// failure records a failed forward. In half-open it is the trial
// failing: straight back to open for another openFor. Closed trips to
// open when the windowed failure rate reaches tripRatio.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.open()
		return
	}
	b.record(true)
	if b.state == breakerClosed && b.filled >= b.minSamples &&
		float64(b.fails) >= b.tripRatio*float64(b.filled) {
		b.open()
	}
}

// forceOpen trips the breaker by authority — the health prober marking
// the backend down. No windowed evidence needed: probes are ground
// truth.
func (b *breaker) forceOpen() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerOpen {
		b.open()
	}
}

// probeRecovered closes the breaker by authority — the health prober
// just saw the backend answer /healthz after it had been down.
func (b *breaker) probeRecovered() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerClosed {
		b.reset()
	}
}

// open and reset are the state transitions; callers hold the lock.
func (b *breaker) open() {
	b.state = breakerOpen
	b.openedAt = b.now()
	b.opens++
}

func (b *breaker) reset() {
	b.state = breakerClosed
	b.idx, b.filled, b.fails = 0, 0, 0
	for i := range b.window {
		b.window[i] = false
	}
}

// record pushes one outcome into the sliding window; callers hold the
// lock.
func (b *breaker) record(failed bool) {
	if b.filled == len(b.window) {
		if b.window[b.idx] {
			b.fails--
		}
	} else {
		b.filled++
	}
	b.window[b.idx] = failed
	if failed {
		b.fails++
	}
	b.idx = (b.idx + 1) % len(b.window)
}

// snapshot returns (state name, opens) for stats.
func (b *breaker) snapshot() (string, uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return breakerStateNames[b.state], b.opens
}
