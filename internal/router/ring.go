// Package router is the distributed tier's front door: an HTTP proxy
// that consistent-hashes selection queries by (expression, log-shape
// region) across a fleet of `lamb serve` backends, with the resilience
// ladder a production service needs — active health probes, per-backend
// circuit breakers, capped-backoff retries on a different shard,
// optional tail-latency hedging for timed strategies, and graceful
// degradation to a local in-process min-flops engine when every
// backend is down. It also runs the fleet's anti-entropy gossip,
// shuttling outcome snapshots between backends so feedback learned on
// one shard strengthens adaptive selection everywhere (the data-sparsity
// concern of the follow-up test paper: shards that never share stay
// permanently starved for the regions they don't own).
package router

import (
	"hash/fnv"
	"math/bits"
	"sort"
	"strconv"
	"strings"
)

// ring is a consistent-hash ring with virtual nodes. Keys are shard
// keys (shardKey); lookups return every backend, deduplicated, in ring
// order from the key's position — the retry ladder walks that order, so
// an instance's traffic lands on the same backend while it is healthy
// and fails over deterministically when it is not.
type ring struct {
	backends []string
	points   []ringPoint // sorted by hash
}

// ringPoint is one virtual node: a hash position owned by a backend.
type ringPoint struct {
	hash    uint64
	backend int // index into backends
}

// newRing places vnodes virtual nodes per backend. More vnodes smooth
// the load split at the cost of a longer sorted array; with the small
// fleets a router fronts, 64 per backend keeps the imbalance within a
// few percent.
func newRing(backends []string, vnodes int) *ring {
	r := &ring{backends: backends, points: make([]ringPoint, 0, len(backends)*vnodes)}
	for i, b := range backends {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(b + "#" + strconv.Itoa(v)), backend: i})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// candidates returns all backends in ring order starting at key's
// position: the first entry is the shard owner, the rest the failover
// order. The returned slice is freshly allocated.
func (r *ring) candidates(key string) []string {
	out := make([]string, 0, len(r.backends))
	if len(r.points) == 0 {
		return out
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[int]bool, len(r.backends))
	for i := 0; i < len(r.points) && len(out) < len(r.backends); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.backend] {
			seen[p.backend] = true
			out = append(out, r.backends[p.backend])
		}
	}
	return out
}

// shardKey maps a query to its shard: the expression (case-folded, as
// the engine resolves it) plus each dimension's octave — floor(log2) —
// so instances whose shapes differ by less than a factor of two land on
// the same shard. The octave is deliberately wider than the adaptive
// strategy's 0.25 log-unit neighbourhood radius: instances close enough
// to share evidence are close enough to share a shard, which is what
// makes shard-local feedback memory effective.
func shardKey(expr string, inst []int) string {
	var b strings.Builder
	b.WriteString(strings.ToLower(expr))
	for _, d := range inst {
		b.WriteByte('|')
		if d < 1 {
			d = 1
		}
		b.WriteString(strconv.Itoa(bits.Len(uint(d)) - 1))
	}
	return b.String()
}

// hash64 is FNV-1a finished with a splitmix64-style mixer. Raw FNV-1a
// clusters on the short structured strings the ring hashes (shard keys
// differing in a digit or two, vnode labels sharing a long URL prefix):
// measured over random backend ports, all eleven octave shard keys of
// one expression land on the same backend of a pair ~8% of the time.
// The finalizer restores avalanche and brings that to the ~0.1% an
// independent uniform hash would give.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
