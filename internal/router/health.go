package router

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// Active health probing: every ProbeEvery the router GETs each
// backend's /healthz. DownAfter consecutive failures mark a backend
// down and force its breaker open (probes are ground truth, no windowed
// evidence needed); the first success after a down spell marks it up
// and closes the breaker — recovery after a restart is automatic,
// within one probe interval of the backend answering again.

func (rt *Router) probeLoop() {
	t := time.NewTicker(rt.cfg.ProbeEvery)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.probeAll()
		}
	}
}

// probeAll probes every backend concurrently — sequential probes of a
// half-dead fleet would stack ProbeTimeouts past the probe interval.
func (rt *Router) probeAll() {
	var wg sync.WaitGroup
	for _, b := range rt.backends {
		wg.Add(1)
		go func(b *backendState) {
			defer wg.Done()
			rt.probeOne(b)
		}(b)
	}
	wg.Wait()
}

// probeOne runs one health probe and folds the result into the
// backend's up/down state and breaker. Only this prober goroutine
// writes consecFails.
func (rt *Router) probeOne(b *backendState) {
	b.probes.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
	defer cancel()
	ok := false
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/healthz", nil)
	if err == nil {
		if resp, err := rt.client.Do(req); err == nil {
			// Ready means ready: a 503 (reloading, saturated) is a probe
			// failure, steering shard-owner traffic at the first retry
			// candidate until the backend has headroom again.
			ok = resp.StatusCode >= 200 && resp.StatusCode < 300
			resp.Body.Close()
		}
	}
	if ok {
		b.consecFails = 0
		if !b.up.Swap(true) {
			// Down -> up transition: the probe proved the backend answers
			// again, so the breaker closes now rather than after its own
			// half-open timer.
			b.br.probeRecovered()
		}
		return
	}
	b.probeFails.Add(1)
	b.consecFails++
	if b.consecFails >= rt.cfg.DownAfter {
		if b.up.Swap(false) {
			b.br.forceOpen()
		}
	}
}
