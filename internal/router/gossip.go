package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"lamb/internal/faultinject"
)

// Anti-entropy gossip: every MergeEvery the router pulls each up
// backend's local outcome snapshot (GET /api/v1/outcomes — firsthand
// evidence only) and pushes it to every other up backend
// (POST /api/v1/admin/merge), weights discounted by MergeScale. The merge
// endpoint is idempotent (replace-by-source), so overlapping rounds,
// retries, and multiple routers gossiping the same fleet are all safe —
// convergence without coordination. This is what turns N shard-local
// feedback memories into fleet-wide learning: evidence measured where
// an instance is owned still strengthens the replicas that would serve
// it after a failover.

func (rt *Router) gossipLoop() {
	t := time.NewTicker(rt.cfg.MergeEvery)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.mergeRound(context.Background())
		}
	}
}

// mergeRound runs one full exchange. Errors are counted, never fatal:
// gossip is a background repair process, and a failed round just means
// the next one has more to do.
func (rt *Router) mergeRound(ctx context.Context) {
	rt.mergeRounds.Add(1)
	var ups []*backendState
	for _, b := range rt.backends {
		if b.up.Load() {
			ups = append(ups, b)
		}
	}
	if len(ups) < 2 {
		return
	}
	for _, src := range ups {
		snap, err := rt.fetchOutcomes(ctx, src)
		if err != nil {
			rt.mergeErrors.Add(1)
			continue
		}
		for _, dst := range ups {
			if dst == src {
				continue
			}
			merged, err := rt.pushMerge(ctx, dst, src.url, snap)
			if err != nil {
				rt.mergeErrors.Add(1)
				continue
			}
			rt.mergedOutcomes.Add(uint64(merged))
		}
	}
}

// fetchOutcomes pulls one backend's local snapshot, raw — the router
// relays bytes, it does not interpret the schema.
func (rt *Router) fetchOutcomes(ctx context.Context, b *backendState) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.AttemptTimeout)
	defer cancel()
	if err := faultinject.FireCtx(ctx, "router.merge"); err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/api/v1/outcomes", nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxRelayBytes))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("outcomes export from %s: status %d", b.url, resp.StatusCode)
	}
	return body, nil
}

// pushMerge posts a snapshot to one backend, attributed to the source
// backend it came from, and returns how many outcomes it installed.
func (rt *Router) pushMerge(ctx context.Context, dst *backendState, source string, snap []byte) (int, error) {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.AttemptTimeout)
	defer cancel()
	target := fmt.Sprintf("%s/api/v1/admin/merge?source=%s&scale=%s",
		dst.url, url.QueryEscape(source), url.QueryEscape(fmt.Sprintf("%g", rt.cfg.MergeScale)))
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target, bytes.NewReader(snap))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxRelayBytes))
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("merge into %s: status %d: %s", dst.url, resp.StatusCode, body)
	}
	var counts struct {
		Merged int `json:"merged"`
	}
	if err := json.Unmarshal(body, &counts); err != nil {
		return 0, err
	}
	return counts.Merged, nil
}

// MergeRound runs one gossip exchange synchronously — the knob tests
// and operators (via the route command's future admin surface) use to
// force convergence now instead of waiting for the ticker.
func (rt *Router) MergeRound(ctx context.Context) {
	rt.mergeRound(ctx)
}
