package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"lamb/internal/engine"
	"lamb/internal/faultinject"
)

// Config parameterises a Router. Zero values take the defaults noted on
// each field.
type Config struct {
	// Backends are the `lamb serve` base URLs the ring shards over.
	// At least one is required.
	Backends []string
	// Replicas is the virtual-node count per backend (default 64).
	Replicas int

	// ProbeEvery is the health-probe interval (default 1s); ProbeTimeout
	// bounds one probe (default 500ms); DownAfter is the consecutive
	// probe failures that mark a backend down (default 2).
	ProbeEvery   time.Duration
	ProbeTimeout time.Duration
	DownAfter    int

	// Retries is how many additional backends a failed forward tries
	// (default 2). BackoffBase/BackoffMax shape the capped exponential
	// backoff between attempts (defaults 25ms/500ms; full jitter).
	// AttemptTimeout bounds each individual attempt (default 5s).
	Retries        int
	BackoffBase    time.Duration
	BackoffMax     time.Duration
	AttemptTimeout time.Duration

	// HedgeAfter, when positive, arms tail-latency hedging: if the
	// owning shard hasn't answered within HedgeAfter, the same query
	// races on the next candidate and the first success wins. Hedging
	// applies to timed strategies (oracle) and to adaptive queries whose
	// last answer for the shard key reported confidence below
	// DefaultHedgeConfidence. Off by default — hedging doubles backend
	// work, worth it only when tail latency matters more.
	HedgeAfter time.Duration

	// MergeEvery, when positive, runs the anti-entropy gossip loop:
	// each round pulls every up backend's local outcome snapshot and
	// pushes it to the others, weights discounted by MergeScale
	// (default 0.5 — secondhand evidence counts half).
	MergeEvery time.Duration
	MergeScale float64

	// Local, when set, is the in-process engine the router degrades to
	// when no backend can answer: selection keeps working on the
	// profile-less min-flops discriminant, stamped Degraded "no-backend".
	Local *engine.Engine

	// Client issues all backend HTTP traffic (default: a dedicated
	// client; timeouts come from AttemptTimeout contexts).
	Client *http.Client

	// Breaker tuning: window is the sliding outcome window per backend
	// (default 20), minSamples gates tripping (default 5), tripRatio is
	// the failure fraction that opens it (default 0.5), openFor is the
	// fail-fast period before a half-open trial (default 2s).
	BreakerWindow     int
	BreakerMinSamples int
	BreakerTripRatio  float64
	BreakerOpenFor    time.Duration
}

// DegradedNoBackend stamps records the router answered from its local
// fallback engine because no backend was reachable — the rung below the
// engine's own "no-profile"/"deadline" ladder.
const DegradedNoBackend = "no-backend"

// backendState is everything the router tracks per backend.
type backendState struct {
	url string
	br  *breaker
	up  atomic.Bool
	// consecFails is touched only by the prober goroutine.
	consecFails int
	probes      atomic.Uint64
	probeFails  atomic.Uint64
	forwards    atomic.Uint64
	failures    atomic.Uint64
}

// Router is the shard-routing front end. Build with New, launch the
// background probe/gossip loops with Start, and serve Handler.
type Router struct {
	cfg      Config
	ring     *ring
	backends []*backendState
	byURL    map[string]*backendState
	client   *http.Client

	stop     chan struct{}
	stopOnce sync.Once
	loops    sync.WaitGroup

	forwardsTotal  atomic.Uint64
	retriesTotal   atomic.Uint64
	hedged         atomic.Uint64
	hedgeWins      atomic.Uint64
	lowConfHedges  atomic.Uint64
	degraded       atomic.Uint64
	mergeRounds    atomic.Uint64
	mergeErrors    atomic.Uint64
	mergedOutcomes atomic.Uint64

	// confMu guards conf: the last confidence each shard key's answer
	// reported, feeding lowConfidence's hedge-eligibility check.
	confMu sync.Mutex
	conf   map[string]float64
}

// DefaultHedgeConfidence is the confidence floor for adaptive-query
// hedging: when a shard key's last answer was less sure than this that
// its top pick is actually fastest, the next adaptive query for that
// key is worth racing on two backends — an uncertain answer arriving
// late is the worst of both.
const DefaultHedgeConfidence = 0.5

// maxConfKeys bounds the confidence map. At the cap, known keys keep
// updating and new keys are dropped — hedging is an optimisation, not
// a correctness concern, so forgetting the long tail is fine.
const maxConfKeys = 4096

// observeConfidence remembers the confidence a successful query answer
// reported for its shard key. Bodies that don't parse or carry no
// confidence field (old backends) are ignored.
func (rt *Router) observeConfidence(key string, res attemptResult) {
	if res.err != nil || res.status != http.StatusOK {
		return
	}
	var rec struct {
		Confidence *float64 `json:"confidence"`
	}
	if json.Unmarshal(res.body, &rec) != nil || rec.Confidence == nil {
		return
	}
	rt.confMu.Lock()
	if _, known := rt.conf[key]; known || len(rt.conf) < maxConfKeys {
		rt.conf[key] = *rec.Confidence
	}
	rt.confMu.Unlock()
}

// lowConfidence reports whether the shard key's last observed answer
// was below the hedge-eligibility floor. Keys never seen report false:
// with no evidence of uncertainty, hedging is not worth doubled work.
func (rt *Router) lowConfidence(key string) bool {
	rt.confMu.Lock()
	c, known := rt.conf[key]
	rt.confMu.Unlock()
	return known && c < DefaultHedgeConfidence
}

// New validates the config, fills defaults, and builds the router.
// Backends start optimistically up — the first probe round (Start runs
// one immediately) demotes any that are not.
func New(cfg Config) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("router: at least one backend is required")
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 64
	}
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 500 * time.Millisecond
	}
	if cfg.DownAfter <= 0 {
		cfg.DownAfter = 2
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 25 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 500 * time.Millisecond
	}
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = 5 * time.Second
	}
	if cfg.MergeScale <= 0 || cfg.MergeScale > 1 {
		cfg.MergeScale = 0.5
	}
	if cfg.BreakerWindow <= 0 {
		cfg.BreakerWindow = 20
	}
	if cfg.BreakerMinSamples <= 0 {
		cfg.BreakerMinSamples = 5
	}
	if cfg.BreakerTripRatio <= 0 || cfg.BreakerTripRatio > 1 {
		cfg.BreakerTripRatio = 0.5
	}
	if cfg.BreakerOpenFor <= 0 {
		cfg.BreakerOpenFor = 2 * time.Second
	}
	rt := &Router{
		cfg:    cfg,
		ring:   newRing(cfg.Backends, cfg.Replicas),
		byURL:  make(map[string]*backendState, len(cfg.Backends)),
		client: cfg.Client,
		stop:   make(chan struct{}),
		conf:   make(map[string]float64),
	}
	if rt.client == nil {
		rt.client = &http.Client{}
	}
	for _, u := range cfg.Backends {
		if _, dup := rt.byURL[u]; dup {
			return nil, fmt.Errorf("router: duplicate backend %s", u)
		}
		b := &backendState{
			url: u,
			br:  newBreaker(cfg.BreakerWindow, cfg.BreakerMinSamples, cfg.BreakerTripRatio, cfg.BreakerOpenFor),
		}
		b.up.Store(true)
		rt.byURL[u] = b
		rt.backends = append(rt.backends, b)
	}
	return rt, nil
}

// Start launches the health-probe loop (after one synchronous round, so
// dead configured backends are demoted before traffic flows) and, when
// MergeEvery is set, the gossip loop. Stop both with Close.
func (rt *Router) Start() {
	rt.probeAll()
	rt.loops.Add(1)
	go func() {
		defer rt.loops.Done()
		rt.probeLoop()
	}()
	if rt.cfg.MergeEvery > 0 {
		rt.loops.Add(1)
		go func() {
			defer rt.loops.Done()
			rt.gossipLoop()
		}()
	}
}

// Close stops the background loops and waits for them.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	rt.loops.Wait()
}

// BackendStats is one backend's row in Stats.
type BackendStats struct {
	URL           string `json:"url"`
	Up            bool   `json:"up"`
	Breaker       string `json:"breaker"`
	BreakerOpens  uint64 `json:"breaker_opens"`
	Probes        uint64 `json:"probes"`
	ProbeFailures uint64 `json:"probe_failures"`
	Forwards      uint64 `json:"forwards"`
	Failures      uint64 `json:"failures"`
}

// Stats is the router's /api/stats body: fleet state plus the routing
// and gossip counters.
type Stats struct {
	Backends  []BackendStats `json:"backends"`
	Up        int            `json:"up"`
	Forwards  uint64         `json:"forwards"`
	Retries   uint64         `json:"retries"`
	Hedged    uint64         `json:"hedged"`
	HedgeWins uint64         `json:"hedge_wins"`
	// LowConfidenceHedges counts adaptive queries that became
	// hedge-eligible because their shard key's last answer reported low
	// confidence (a subset of queries, not of Hedged: eligibility arms
	// the race; Hedged counts races the hedge timer actually fired for).
	LowConfidenceHedges uint64 `json:"low_confidence_hedges"`
	DegradedQueries     uint64 `json:"degraded_queries"`
	MergeRounds         uint64 `json:"merge_rounds"`
	MergeErrors         uint64 `json:"merge_errors"`
	MergedOutcomes      uint64 `json:"merged_outcomes"`
}

// Stats snapshots the router's counters.
func (rt *Router) Stats() Stats {
	s := Stats{
		Forwards:            rt.forwardsTotal.Load(),
		Retries:             rt.retriesTotal.Load(),
		Hedged:              rt.hedged.Load(),
		HedgeWins:           rt.hedgeWins.Load(),
		LowConfidenceHedges: rt.lowConfHedges.Load(),
		DegradedQueries:     rt.degraded.Load(),
		MergeRounds:         rt.mergeRounds.Load(),
		MergeErrors:         rt.mergeErrors.Load(),
		MergedOutcomes:      rt.mergedOutcomes.Load(),
	}
	for _, b := range rt.backends {
		state, opens := b.br.snapshot()
		up := b.up.Load()
		if up {
			s.Up++
		}
		s.Backends = append(s.Backends, BackendStats{
			URL:           b.url,
			Up:            up,
			Breaker:       state,
			BreakerOpens:  opens,
			Probes:        b.probes.Load(),
			ProbeFailures: b.probeFails.Load(),
			Forwards:      b.forwards.Load(),
			Failures:      b.failures.Load(),
		})
	}
	return s
}

// errNoBackend reports a forward that found no admissible backend (all
// down or breaker-open) or exhausted its attempts.
var errNoBackend = errors.New("no backend available")

// attemptResult is one forward attempt's outcome.
type attemptResult struct {
	status int
	body   []byte
	err    error
}

// authoritative reports whether the attempt's response settles the
// request: any transport-level success whose status does not indicate a
// backend-side failure. 5xx (including 503 sheds) are retried on
// another backend; 504 is the caller's own deadline expiring downstream
// — retrying elsewhere cannot beat a clock that already ran out.
func (a attemptResult) authoritative() bool {
	return a.err == nil && (a.status < 500 || a.status == http.StatusGatewayTimeout)
}

// attempt forwards payload to one backend and classifies the outcome
// into the breaker.
func (rt *Router) attempt(ctx context.Context, b *backendState, path string, payload []byte) attemptResult {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.AttemptTimeout)
	defer cancel()
	b.forwards.Add(1)
	res := rt.roundTrip(ctx, b, path, payload)
	if res.authoritative() {
		b.br.success()
	} else {
		b.failures.Add(1)
		b.br.failure()
	}
	return res
}

// roundTrip is the raw HTTP exchange, with the "router.forward"
// failpoint ahead of it so the chaos suite can inject transport errors
// without a real network fault.
func (rt *Router) roundTrip(ctx context.Context, b *backendState, path string, payload []byte) attemptResult {
	if err := faultinject.FireCtx(ctx, "router.forward"); err != nil {
		return attemptResult{err: err}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+path, bytes.NewReader(payload))
	if err != nil {
		return attemptResult{err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		return attemptResult{err: err}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxRelayBytes))
	if err != nil {
		return attemptResult{err: err}
	}
	return attemptResult{status: resp.StatusCode, body: body}
}

// forward runs the retry ladder over cands (ring order): skip down or
// breaker-open backends, back off with full jitter between attempts,
// and stop at the first authoritative answer. hedge arms tail-latency
// hedging for the first attempt.
func (rt *Router) forward(ctx context.Context, cands []string, path string, payload []byte, hedge bool) attemptResult {
	rt.forwardsTotal.Add(1)
	attempts := 0
	last := attemptResult{err: errNoBackend}
	for i := 0; i < len(cands) && attempts <= rt.cfg.Retries; i++ {
		b := rt.byURL[cands[i]]
		if !b.up.Load() || !b.br.allow() {
			continue
		}
		if attempts > 0 {
			rt.retriesTotal.Add(1)
			if err := rt.backoff(ctx, attempts); err != nil {
				return last
			}
		}
		attempts++
		var res attemptResult
		if hedge && rt.cfg.HedgeAfter > 0 && attempts == 1 {
			res = rt.attemptHedged(ctx, b, rt.nextAllowed(cands, i), path, payload)
		} else {
			res = rt.attempt(ctx, b, path, payload)
		}
		if res.authoritative() {
			return res
		}
		last = res
	}
	return last
}

// nextAllowed returns the first admissible backend after position i, or
// nil — the hedge target.
func (rt *Router) nextAllowed(cands []string, i int) *backendState {
	for j := i + 1; j < len(cands); j++ {
		b := rt.byURL[cands[j]]
		if b.up.Load() && b.br.allow() {
			return b
		}
	}
	return nil
}

// attemptHedged races the primary against a staggered secondary: the
// secondary launches only if the primary hasn't answered within
// HedgeAfter, and the first authoritative answer wins. Used for timed
// strategies, whose latency is dominated by backend-side measurement —
// exactly the work a straggling backend stretches into the tail.
func (rt *Router) attemptHedged(ctx context.Context, primary, secondary *backendState, path string, payload []byte) attemptResult {
	if secondary == nil {
		return rt.attempt(ctx, primary, path, payload)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type hedgeResult struct {
		attemptResult
		hedge bool
	}
	results := make(chan hedgeResult, 2)
	go func() { results <- hedgeResult{rt.attempt(ctx, primary, path, payload), false} }()
	timer := time.NewTimer(rt.cfg.HedgeAfter)
	defer timer.Stop()
	select {
	case res := <-results:
		if res.authoritative() {
			return res.attemptResult
		}
		// Primary failed outright before the hedge window — plain
		// failover, not a hedge.
		return rt.attempt(ctx, secondary, path, payload)
	case <-timer.C:
		rt.hedged.Add(1)
		go func() { results <- hedgeResult{rt.attempt(ctx, secondary, path, payload), true} }()
	}
	first := <-results
	if first.authoritative() {
		if first.hedge {
			rt.hedgeWins.Add(1)
		}
		return first.attemptResult
	}
	second := <-results
	if second.authoritative() {
		if second.hedge {
			rt.hedgeWins.Add(1)
		}
		return second.attemptResult
	}
	return first.attemptResult
}

// backoff sleeps the capped exponential delay with full jitter, bailing
// out if the request context dies first.
func (rt *Router) backoff(ctx context.Context, attempt int) error {
	d := rt.cfg.BackoffBase << (attempt - 1)
	if d > rt.cfg.BackoffMax || d <= 0 {
		d = rt.cfg.BackoffMax
	}
	d = time.Duration(rand.Int63n(int64(d)) + 1)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// maxRelayBytes caps a relayed backend response; matches the serve
// layer's request cap.
const maxRelayBytes = 4 << 20
