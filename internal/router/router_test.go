package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"lamb/internal/engine"
)

func TestRingCandidatesDistinctAndStable(t *testing.T) {
	backends := []string{"http://a", "http://b", "http://c"}
	r := newRing(backends, 64)
	key := shardKey("AATB", []int{80, 514, 768})
	cands := r.candidates(key)
	if len(cands) != 3 {
		t.Fatalf("candidates %v", cands)
	}
	seen := map[string]bool{}
	for _, c := range cands {
		if seen[c] {
			t.Fatalf("duplicate candidate in %v", cands)
		}
		seen[c] = true
	}
	// Deterministic: the same key always walks the same order.
	for i := 0; i < 5; i++ {
		again := r.candidates(key)
		for j := range cands {
			if again[j] != cands[j] {
				t.Fatalf("unstable order %v vs %v", again, cands)
			}
		}
	}
	// Load spreads: across many shard keys every backend owns something.
	owners := map[string]int{}
	for d := 1; d < 4096; d *= 2 {
		for _, e := range []string{"aatb", "abc", "gemm-chain"} {
			owners[r.candidates(shardKey(e, []int{d, d * 2, d * 4}))[0]]++
		}
	}
	for _, b := range backends {
		if owners[b] == 0 {
			t.Fatalf("backend %s owns no shards: %v", b, owners)
		}
	}
}

func TestShardKeyOctaves(t *testing.T) {
	// Shapes within the same octave share a shard key; doubling a
	// dimension moves it.
	if shardKey("AATB", []int{100, 300, 700}) != shardKey("aatb", []int{120, 260, 650}) {
		t.Fatal("same-octave instances got different keys")
	}
	if shardKey("aatb", []int{100, 300, 700}) == shardKey("aatb", []int{100, 300, 1400}) {
		t.Fatal("doubled dimension kept the same key")
	}
}

func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(4, 2, 0.5, time.Second)
	b.now = func() time.Time { return now }

	if !b.allow() {
		t.Fatal("new breaker not closed")
	}
	// One failure among successes stays closed (rate below trip).
	b.success()
	b.success()
	b.failure()
	b.success()
	if st, _ := b.snapshot(); st != "closed" {
		t.Fatalf("state %s after 1/4 failures", st)
	}
	// Consecutive failures push the windowed rate to 3/4 >= 0.5: open.
	b.failure()
	b.failure()
	if st, opens := b.snapshot(); st != "open" || opens != 1 {
		t.Fatalf("state %s opens %d", st, opens)
	}
	if b.allow() {
		t.Fatal("open breaker allowed a forward")
	}
	// After openFor, one half-open trial; its failure re-opens.
	now = now.Add(time.Second)
	if !b.allow() {
		t.Fatal("half-open trial refused")
	}
	b.failure()
	if st, opens := b.snapshot(); st != "open" || opens != 2 {
		t.Fatalf("after failed trial: %s opens %d", st, opens)
	}
	// Next trial succeeds: closed, window reset.
	now = now.Add(time.Second)
	if !b.allow() {
		t.Fatal("second trial refused")
	}
	b.success()
	if st, _ := b.snapshot(); st != "closed" {
		t.Fatalf("after passed trial: %s", st)
	}
	// Probe authority: forceOpen trips immediately, probeRecovered
	// closes immediately.
	b.forceOpen()
	if st, _ := b.snapshot(); st != "open" {
		t.Fatal("forceOpen did not open")
	}
	b.probeRecovered()
	if st, _ := b.snapshot(); st != "closed" {
		t.Fatal("probeRecovered did not close")
	}
}

// fakeBackend is a minimal serve stand-in whose behaviour each test
// scripts.
type fakeBackend struct {
	srv     *httptest.Server
	healthy atomic.Bool
	queries atomic.Uint64
	handler atomic.Value // func(w, r) for /api/*
}

func newFakeBackend(t *testing.T, handle func(w http.ResponseWriter, r *http.Request)) *fakeBackend {
	t.Helper()
	f := &fakeBackend{}
	f.healthy.Store(true)
	f.handler.Store(handle)
	f.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			if !f.healthy.Load() {
				w.WriteHeader(http.StatusServiceUnavailable)
				return
			}
			w.Write([]byte(`{"ok":true}`))
			return
		}
		f.queries.Add(1)
		f.handler.Load().(func(http.ResponseWriter, *http.Request))(w, r)
	}))
	t.Cleanup(f.srv.Close)
	return f
}

func okRecord(w http.ResponseWriter, r *http.Request) {
	w.Write([]byte(`{"expr":"AATB","strategy":"min-flops","selected":{"index":1}}`))
}

func testRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	if cfg.Local == nil {
		cfg.Local = engine.New(engine.Config{})
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func postQuery(t *testing.T, h http.Handler, body string) (*http.Response, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/api/query", bytes.NewReader([]byte(body)))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	resp := w.Result()
	out := new(bytes.Buffer)
	out.ReadFrom(resp.Body)
	return resp, out.Bytes()
}

const aatbQuery = `{"expr":"aatb","instance":[80,514,768],"strategy":"min-flops"}`

func TestRouterRetriesOnFailingBackend(t *testing.T) {
	bad := newFakeBackend(t, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	})
	good := newFakeBackend(t, okRecord)
	rt := testRouter(t, Config{
		Backends:    []string{bad.srv.URL, good.srv.URL},
		BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond,
	})
	h := rt.Handler()
	// Whichever backend owns the shard, every query must come back 200:
	// either served by the owner or retried onto the survivor.
	for i := 0; i < 4; i++ {
		resp, body := postQuery(t, h, aatbQuery)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d status %d: %s", i, resp.StatusCode, body)
		}
	}
	if good.queries.Load() == 0 {
		t.Fatal("healthy backend never reached")
	}
	s := rt.Stats()
	if s.Forwards != 4 {
		t.Fatalf("forwards %d", s.Forwards)
	}
	if bad.queries.Load() > 0 && s.Retries == 0 {
		t.Fatalf("failing owner hit but no retries counted: %+v", s)
	}
}

func TestRouterBreakerOpensUnderFailureRate(t *testing.T) {
	bad := newFakeBackend(t, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	})
	good := newFakeBackend(t, okRecord)
	rt := testRouter(t, Config{
		Backends:          []string{bad.srv.URL, good.srv.URL},
		BackoffBase:       time.Millisecond,
		BackoffMax:        2 * time.Millisecond,
		BreakerMinSamples: 3, BreakerWindow: 5, BreakerOpenFor: time.Hour,
	})
	h := rt.Handler()
	// Spread queries over many shard keys so the failing backend owns
	// some of them; every hit records a breaker failure. Ring positions
	// depend on the backends' (random) ports, so two octave axes give
	// 44 keys — enough that the failing backend owning none is
	// effectively impossible.
	spray := func() {
		for d := 16; d <= 1<<14; d *= 2 {
			for e := 16; e <= 1<<10; e *= 4 {
				q := fmt.Sprintf(`{"expr":"aatb","instance":[%d,%d,%d]}`, d, e+1, d+2)
				if resp, body := postQuery(t, h, q); resp.StatusCode != http.StatusOK {
					t.Fatalf("query d=%d e=%d status %d: %s", d, e, resp.StatusCode, body)
				}
			}
		}
	}
	// One spray is not enough on a fast machine: after the failing
	// backend's first failure it sits in retry backoff (BackoffMax 2ms)
	// and the remaining spray requests skip it without recording breaker
	// samples. Spray until the breaker opens, sleeping past the backoff
	// between rounds so each round lands fresh failures.
	badOf := func() BackendStats {
		for _, b := range rt.Stats().Backends {
			if b.URL == bad.srv.URL {
				return b
			}
		}
		t.Fatalf("failing backend missing from stats")
		return BackendStats{}
	}
	deadline := time.Now().Add(10 * time.Second)
	spray()
	for badOf().Breaker != "open" && time.Now().Before(deadline) {
		time.Sleep(3 * time.Millisecond)
		spray()
	}
	if badStats := badOf(); badStats.Breaker != "open" {
		t.Fatalf("failing backend's breaker %q after %d failures", badStats.Breaker, badStats.Failures)
	}
	// With the breaker open the failing backend stops seeing traffic.
	before := bad.queries.Load()
	spray()
	if bad.queries.Load() != before {
		t.Fatal("open breaker did not fail fast")
	}
}

func TestRouterDegradesToLocalWhenAllDown(t *testing.T) {
	rt := testRouter(t, Config{
		// Nothing listens here: connection refused, instantly.
		Backends:    []string{"http://127.0.0.1:9", "http://127.0.0.1:10"},
		BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond,
	})
	h := rt.Handler()
	resp, body := postQuery(t, h, `{"expr":"aatb","instance":[80,514,768],"strategy":"adaptive"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rec engine.Record
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Degraded != DegradedNoBackend || rec.Requested != "adaptive" || rec.Strategy != "min-flops" {
		t.Fatalf("degraded record %+v", rec)
	}
	if rec.Selected.Index == 0 {
		t.Fatalf("no selection in degraded record %+v", rec)
	}
	if s := rt.Stats(); s.DegradedQueries != 1 {
		t.Fatalf("degraded counter %+v", s)
	}
}

func TestRouterProbeDrivenUpDownRecovery(t *testing.T) {
	f := newFakeBackend(t, okRecord)
	rt := testRouter(t, Config{Backends: []string{f.srv.URL}, DownAfter: 2})
	find := func() BackendStats { return rt.Stats().Backends[0] }

	rt.probeAll()
	if b := find(); !b.Up || b.Breaker != "closed" {
		t.Fatalf("healthy probe: %+v", b)
	}
	f.healthy.Store(false)
	rt.probeAll()
	if b := find(); !b.Up {
		t.Fatalf("one failed probe already marked down: %+v", b)
	}
	rt.probeAll()
	if b := find(); b.Up || b.Breaker != "open" {
		t.Fatalf("after DownAfter failures: %+v", b)
	}
	// Requests now skip it entirely; with no local engine configured the
	// router sheds instead.
	resp, _ := postQuery(t, rt.Handler(), aatbQuery)
	if resp.StatusCode != http.StatusOK { // local fallback engine
		t.Fatalf("status %d", resp.StatusCode)
	}
	if f.queries.Load() != 0 {
		t.Fatal("down backend still received traffic")
	}
	// Recovery: one good probe flips it up and closes the breaker.
	f.healthy.Store(true)
	rt.probeAll()
	if b := find(); !b.Up || b.Breaker != "closed" {
		t.Fatalf("after recovery probe: %+v", b)
	}
	if resp, _ := postQuery(t, rt.Handler(), aatbQuery); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery status %d", resp.StatusCode)
	}
	if f.queries.Load() == 0 {
		t.Fatal("recovered backend got no traffic")
	}
}

func TestRouterHedgesSlowTimedQueries(t *testing.T) {
	release := make(chan struct{})
	slow := newFakeBackend(t, func(w http.ResponseWriter, r *http.Request) {
		<-release
		okRecord(w, r)
	})
	fast := newFakeBackend(t, okRecord)
	defer close(release)
	rt := testRouter(t, Config{
		Backends:   []string{slow.srv.URL, fast.srv.URL},
		HedgeAfter: 5 * time.Millisecond,
	})
	h := rt.Handler()
	// Hit shard keys until the slow backend owns one; oracle queries
	// there must be answered by the hedge within the test deadline.
	for d := 64; d < 4096; d *= 2 {
		q := fmt.Sprintf(`{"expr":"aatb","instance":[%d,%d,%d],"strategy":"oracle"}`, d, d+1, d+2)
		resp, body := postQuery(t, h, q)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
	}
	s := rt.Stats()
	if slow.queries.Load() == 0 {
		t.Skip("ring never picked the slow backend as owner for these keys")
	}
	if s.Hedged == 0 || s.HedgeWins == 0 {
		t.Fatalf("hedge counters %+v", s)
	}
}

func TestRouterBatchSplitsAndReassembles(t *testing.T) {
	echo := func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Queries []struct {
				Instance []int `json:"instance"`
			} `json:"queries"`
		}
		json.NewDecoder(r.Body).Decode(&req)
		w.Write([]byte(batchEcho(len(req.Queries))))
	}
	a := newFakeBackend(t, echo)
	b := newFakeBackend(t, echo)
	rt := testRouter(t, Config{Backends: []string{a.srv.URL, b.srv.URL}})
	// Two octave axes give 44 shard keys, so both backends own some of
	// the batch for any ring layout the random ports produce.
	var queries []string
	for d := 16; d <= 1<<14; d *= 2 {
		for e := 16; e <= 1<<10; e *= 4 {
			queries = append(queries, fmt.Sprintf(`{"expr":"aatb","instance":[%d,%d,%d]}`, d, e, d))
		}
	}
	body := `{"queries":[` + join(queries) + `]}`
	req := httptest.NewRequest(http.MethodPost, "/api/batch", bytes.NewReader([]byte(body)))
	w := httptest.NewRecorder()
	rt.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(queries) {
		t.Fatalf("%d results for %d queries", len(resp.Results), len(queries))
	}
	for i, r := range resp.Results {
		if len(r) == 0 || bytes.Contains(r, []byte("error")) {
			t.Fatalf("result %d: %s", i, r)
		}
	}
	if a.queries.Load() == 0 || b.queries.Load() == 0 {
		t.Fatalf("batch not split: a=%d b=%d", a.queries.Load(), b.queries.Load())
	}
}

func batchEcho(n int) string {
	items := make([]string, n)
	for i := range items {
		items[i] = `{"expr":"AATB","selected":{"index":1}}`
	}
	return `{"results":[` + join(items) + `]}`
}

func join(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ","
		}
		out += s
	}
	return out
}

func TestRouterGossipMergeRound(t *testing.T) {
	snapshot := `{"schema_version":1,"created_unix":1,"profile":"p","records":[]}`
	type mergeCall struct{ source, scale string }
	newGossipBackend := func() (*fakeBackend, *[]mergeCall) {
		calls := &[]mergeCall{}
		var f *fakeBackend
		f = newFakeBackend(t, func(w http.ResponseWriter, r *http.Request) {
			switch {
			case r.Method == http.MethodGet && r.URL.Path == "/api/v1/outcomes":
				w.Write([]byte(snapshot))
			case r.Method == http.MethodPost && r.URL.Path == "/api/v1/admin/merge":
				*calls = append(*calls, mergeCall{r.URL.Query().Get("source"), r.URL.Query().Get("scale")})
				w.Write([]byte(`{"merged":3,"skipped":0}`))
			default:
				w.WriteHeader(http.StatusNotFound)
			}
		})
		return f, calls
	}
	a, aCalls := newGossipBackend()
	b, bCalls := newGossipBackend()
	rt := testRouter(t, Config{Backends: []string{a.srv.URL, b.srv.URL}, MergeScale: 0.5})
	rt.MergeRound(context.Background())
	if len(*aCalls) != 1 || len(*bCalls) != 1 {
		t.Fatalf("merge calls a=%v b=%v", *aCalls, *bCalls)
	}
	if (*bCalls)[0].source != a.srv.URL || (*bCalls)[0].scale != "0.5" {
		t.Fatalf("b's merge call %+v", (*bCalls)[0])
	}
	s := rt.Stats()
	if s.MergeRounds != 1 || s.MergedOutcomes != 6 || s.MergeErrors != 0 {
		t.Fatalf("gossip counters %+v", s)
	}
	// A down backend drops out of the round entirely.
	b.healthy.Store(false)
	rt.probeAll()
	rt.probeAll()
	rt.MergeRound(context.Background())
	if len(*aCalls) != 1 || len(*bCalls) != 1 {
		t.Fatalf("gossip round included a down backend: a=%v b=%v", *aCalls, *bCalls)
	}
}

func TestRouterHealthzReflectsFleet(t *testing.T) {
	rt := testRouter(t, Config{Backends: []string{"http://127.0.0.1:9"}})
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	rt.Handler().ServeHTTP(w, req)
	// Local fallback keeps the router ready even with the fleet dark.
	if w.Code != http.StatusOK {
		t.Fatalf("healthz with local fallback: %d", w.Code)
	}
	noLocal, err := New(Config{Backends: []string{"http://127.0.0.1:9"}})
	if err != nil {
		t.Fatal(err)
	}
	defer noLocal.Close()
	noLocal.backends[0].up.Store(false)
	w = httptest.NewRecorder()
	noLocal.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz with nothing to serve from: %d", w.Code)
	}
}
