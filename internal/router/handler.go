package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"lamb/internal/engine"
	"lamb/internal/expr"
)

// The router's HTTP surface mirrors the serve API — a client pointed at
// a router instead of a single backend sees the same endpoints and the
// same record schema — with the router's own /healthz and /api/stats.
// Like the serve layer, the documented surface is /api/v1/ and the
// legacy /api/ paths remain as deprecated aliases.

// Handler assembles the route table.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	api := func(method, path string, h http.HandlerFunc) {
		mux.HandleFunc(method+" /api/v1"+path, h)
		mux.HandleFunc(method+" /api"+path, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Deprecation", "true")
			w.Header().Set("Link", `</api/v1`+path+`>; rel="successor-version"`)
			h(w, r)
		})
	}
	api("GET", "/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, rt.Stats())
	})
	api("GET", "/expressions", rt.handleExpressions)
	api("POST", "/query", rt.handleQuery)
	api("POST", "/batch", rt.handleBatch)
	api("POST", "/feedback", rt.handleFeedback)
	return mux
}

// handleHealthz: the router is live while it answers at all, and ready
// while it can produce selection records — at least one backend up, or
// the local fallback engine armed.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	up := 0
	for _, b := range rt.backends {
		if b.up.Load() {
			up++
		}
	}
	ready := up > 0 || rt.cfg.Local != nil
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{
		"ok": true, "ready": ready, "backends": len(rt.backends), "up": up,
	})
}

// queryBody is the lenient decode of a query request: just enough to
// compute the shard key and the deadline. The original bytes are
// relayed verbatim, so fields the router doesn't know still reach the
// backend (which enforces its own strict schema).
type queryBody struct {
	Expr      string `json:"expr"`
	Instance  []int  `json:"instance"`
	Strategy  string `json:"strategy"`
	TimeoutMs int    `json:"timeout_ms"`
}

func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) {
	body, q, ok := rt.readQuery(w, r)
	if !ok {
		return
	}
	ctx, cancel := requestCtx(r, q.TimeoutMs)
	defer cancel()
	key := shardKey(q.Expr, q.Instance)
	cands := rt.ring.candidates(key)
	// Hedging is reserved for queries where tail latency is worth
	// doubled backend work: timed strategies (an oracle query's latency
	// is backend-side measurement, the work a straggler stretches into
	// the tail) and adaptive queries in regions the engine itself
	// reported low confidence for — an uncertain answer arriving late is
	// the worst of both.
	hedge := q.Strategy == "oracle"
	if !hedge && q.Strategy == "adaptive" && rt.cfg.HedgeAfter > 0 && rt.lowConfidence(key) {
		hedge = true
		rt.lowConfHedges.Add(1)
	}
	res := rt.forward(ctx, cands, "/api/v1/query", body, hedge)
	if res.err == nil {
		// The record (confidence included) is relayed untouched; the
		// router only remembers the confidence to steer future hedging.
		rt.observeConfidence(key, res)
		relay(w, res)
		return
	}
	rt.localQuery(w, ctx, q)
}

// localQuery is the bottom of the ladder: no backend answered, so the
// local profile-less engine selects by min-flops — the paper's
// always-available discriminant — and the record says so.
func (rt *Router) localQuery(w http.ResponseWriter, ctx context.Context, q queryBody) {
	if rt.cfg.Local == nil {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, errNoBackend)
		return
	}
	res := rt.cfg.Local.Do(ctx, engine.Request{Queries: []engine.Query{
		{Expr: q.Expr, Instance: expr.Instance(q.Instance), Strategy: "min-flops"},
	}})
	rec, err := res[0].Record, res[0].Err
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			writeError(w, http.StatusGatewayTimeout, err)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if q.Strategy != "" && q.Strategy != "min-flops" {
		rec.Requested = q.Strategy
	}
	rec.Degraded = DegradedNoBackend
	rt.degraded.Add(1)
	writeJSON(w, http.StatusOK, rec)
}

// localBatchItem answers one batch entry from the local engine,
// returning the serve-schema item JSON.
func (rt *Router) localBatchItem(ctx context.Context, raw json.RawMessage) json.RawMessage {
	var q queryBody
	if err := json.Unmarshal(raw, &q); err != nil {
		return errorItem(err)
	}
	if rt.cfg.Local == nil {
		return errorItem(errNoBackend)
	}
	res := rt.cfg.Local.Do(ctx, engine.Request{Queries: []engine.Query{
		{Expr: q.Expr, Instance: expr.Instance(q.Instance), Strategy: "min-flops"},
	}})
	rec, err := res[0].Record, res[0].Err
	if err != nil {
		return errorItem(err)
	}
	if q.Strategy != "" && q.Strategy != "min-flops" {
		rec.Requested = q.Strategy
	}
	rec.Degraded = DegradedNoBackend
	rt.degraded.Add(1)
	out, err := json.Marshal(rec)
	if err != nil {
		return errorItem(err)
	}
	return out
}

func errorItem(err error) json.RawMessage {
	out, _ := json.Marshal(map[string]string{"error": err.Error()})
	return out
}

// maxRouteBatch mirrors the serve layer's batch cap.
const maxRouteBatch = 1024

func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req struct {
		Queries   []json.RawMessage `json:"queries"`
		TimeoutMs int               `json:"timeout_ms"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.Queries) > maxRouteBatch {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d queries exceeds the %d-query limit; split it", len(req.Queries), maxRouteBatch))
		return
	}
	ctx, cancel := requestCtx(r, req.TimeoutMs)
	defer cancel()

	// Split the batch by shard owner — each sub-batch rides the owning
	// backend's fused execution path — then reassemble in order.
	type group struct {
		cands   []string
		indices []int
		raws    []json.RawMessage
	}
	groups := make(map[string]*group)
	var localIdx []int
	results := make([]json.RawMessage, len(req.Queries))
	for i, raw := range req.Queries {
		var q queryBody
		if err := json.Unmarshal(raw, &q); err != nil {
			results[i] = errorItem(err)
			continue
		}
		cands := rt.ring.candidates(shardKey(q.Expr, q.Instance))
		owner := ""
		for _, c := range cands {
			if b := rt.byURL[c]; b.up.Load() {
				owner = c
				break
			}
		}
		if owner == "" {
			localIdx = append(localIdx, i)
			continue
		}
		g := groups[owner]
		if g == nil {
			g = &group{cands: cands}
			groups[owner] = g
		}
		g.indices = append(g.indices, i)
		g.raws = append(g.raws, raw)
	}

	var wg sync.WaitGroup
	var mu sync.Mutex // guards results and localIdx across groups
	for _, g := range groups {
		wg.Add(1)
		go func(g *group) {
			defer wg.Done()
			payload, err := json.Marshal(map[string]any{
				"queries": g.raws, "timeout_ms": req.TimeoutMs,
			})
			if err != nil {
				mu.Lock()
				for _, i := range g.indices {
					results[i] = errorItem(err)
				}
				mu.Unlock()
				return
			}
			res := rt.forward(ctx, g.cands, "/api/v1/batch", payload, false)
			var sub struct {
				Results []json.RawMessage `json:"results"`
			}
			if res.err == nil && res.status == http.StatusOK &&
				json.Unmarshal(res.body, &sub) == nil && len(sub.Results) == len(g.indices) {
				mu.Lock()
				for k, i := range g.indices {
					results[i] = sub.Results[k]
				}
				mu.Unlock()
				return
			}
			// The whole group failed over to the floor: answer each
			// query from the local engine.
			mu.Lock()
			localIdx = append(localIdx, g.indices...)
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	for _, i := range localIdx {
		results[i] = rt.localBatchItem(ctx, req.Queries[i])
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": results})
}

// handleFeedback routes a measured outcome to the shard that owns the
// instance — where the adaptive evidence for that region lives. With
// every backend down the feedback is refused (503): accepting it into a
// local store nothing ever queries would silently discard it.
func (rt *Router) handleFeedback(w http.ResponseWriter, r *http.Request) {
	body, q, ok := rt.readQuery(w, r)
	if !ok {
		return
	}
	ctx, cancel := requestCtx(r, 0)
	defer cancel()
	res := rt.forward(ctx, rt.ring.candidates(shardKey(q.Expr, q.Instance)), "/api/v1/feedback", body, false)
	if res.err != nil {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("feedback not stored: %w", res.err))
		return
	}
	relay(w, res)
}

// handleExpressions asks any up backend, falling back to the local
// engine's registry — the one endpoint where any replica's answer is as
// good as the owner's.
func (rt *Router) handleExpressions(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.AttemptTimeout)
	defer cancel()
	for _, b := range rt.backends {
		if !b.up.Load() {
			continue
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/api/v1/expressions", nil)
		if err != nil {
			continue
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			continue
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, maxRelayBytes))
		resp.Body.Close()
		if err == nil && resp.StatusCode == http.StatusOK {
			relay(w, attemptResult{status: resp.StatusCode, body: body})
			return
		}
	}
	if rt.cfg.Local != nil {
		writeJSON(w, http.StatusOK, rt.cfg.Local.ListExpressions())
		return
	}
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, errNoBackend)
}

// readQuery reads the capped body and leniently extracts the shard-key
// fields, replying 400 on garbage.
func (rt *Router) readQuery(w http.ResponseWriter, r *http.Request) ([]byte, queryBody, bool) {
	body, ok := readBody(w, r)
	if !ok {
		return nil, queryBody{}, false
	}
	var q queryBody
	if err := json.Unmarshal(body, &q); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return nil, queryBody{}, false
	}
	return body, q, true
}

func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRelayBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
		} else {
			writeError(w, http.StatusBadRequest, err)
		}
		return nil, false
	}
	return body, true
}

// requestCtx bounds the whole routed request by the client's
// timeout_ms; individual attempts are further bounded by
// AttemptTimeout.
func requestCtx(r *http.Request, timeoutMs int) (context.Context, context.CancelFunc) {
	if timeoutMs > 0 {
		return context.WithTimeout(r.Context(), time.Duration(timeoutMs)*time.Millisecond)
	}
	return r.Context(), func() {}
}

// relay writes a backend response through unchanged.
func relay(w http.ResponseWriter, res attemptResult) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(res.status)
	w.Write(res.body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
