// Package mat provides the dense, column-major matrix substrate used by
// the BLAS kernels, the executors, and the experiment drivers.
//
// Matrices are stored in column-major order (Fortran/BLAS convention):
// element (i, j) of a matrix with leading dimension (stride) ld lives at
// Data[i+j*ld]. All kernels in lamb/internal/blas operate on this layout.
package mat

import (
	"fmt"
	"math"
)

// Dense is a dense column-major matrix of float64 values.
//
// The zero value is an empty 0x0 matrix. Use New, NewFromSlice, or the
// fill helpers to create usable matrices.
type Dense struct {
	// Rows and Cols are the matrix dimensions.
	Rows, Cols int
	// Stride is the leading dimension: the distance in Data between
	// horizontally adjacent elements (i,j) and (i,j+1). Stride >= Rows.
	Stride int
	// Data holds the elements in column-major order. It may be longer
	// than Rows*Cols for views with Stride > Rows.
	Data []float64
}

// New returns a zeroed r-by-c matrix with Stride == r.
func New(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", r, c))
	}
	// Stride is at least 1 even for empty matrices; size Data accordingly
	// so column slicing stays in bounds when Rows == 0.
	stride := max(r, 1)
	return &Dense{Rows: r, Cols: c, Stride: stride, Data: make([]float64, stride*c)}
}

// NewFromSlice returns an r-by-c matrix backed by data interpreted in
// column-major order. The slice is used directly, not copied.
func NewFromSlice(r, c int, data []float64) *Dense {
	if len(data) < r*c {
		panic(fmt.Sprintf("mat: slice of length %d too short for %dx%d", len(data), r, c))
	}
	return &Dense{Rows: r, Cols: c, Stride: max(r, 1), Data: data}
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 {
	m.checkIndex(i, j)
	return m.Data[i+j*m.Stride]
}

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) {
	m.checkIndex(i, j)
	m.Data[i+j*m.Stride] = v
}

func (m *Dense) checkIndex(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range for %dx%d", i, j, m.Rows, m.Cols))
	}
}

// IsView reports whether the matrix is a non-contiguous view (Stride > Rows).
func (m *Dense) IsView() bool { return m.Stride != m.Rows && !(m.Rows == 0 || m.Cols == 0) }

// Slice returns a view of the submatrix with rows [i0, i1) and columns
// [j0, j1). The view shares storage with m.
func (m *Dense) Slice(i0, i1, j0, j1 int) *Dense {
	if i0 < 0 || i1 < i0 || i1 > m.Rows || j0 < 0 || j1 < j0 || j1 > m.Cols {
		panic(fmt.Sprintf("mat: bad slice [%d:%d, %d:%d] of %dx%d", i0, i1, j0, j1, m.Rows, m.Cols))
	}
	return &Dense{
		Rows:   i1 - i0,
		Cols:   j1 - j0,
		Stride: m.Stride,
		Data:   m.Data[i0+j0*m.Stride:],
	}
}

// View is Slice returning a Dense value instead of a heap-allocated
// header: the BLAS block drivers carve their working views this way so
// that a kernel call performs no allocations (the view stays on the
// caller's stack as long as the callee does not retain it).
func (m *Dense) View(i0, i1, j0, j1 int) Dense {
	if i0 < 0 || i1 < i0 || i1 > m.Rows || j0 < 0 || j1 < j0 || j1 > m.Cols {
		panic(fmt.Sprintf("mat: bad view [%d:%d, %d:%d] of %dx%d", i0, i1, j0, j1, m.Rows, m.Cols))
	}
	return Dense{
		Rows:   i1 - i0,
		Cols:   j1 - j0,
		Stride: m.Stride,
		Data:   m.Data[i0+j0*m.Stride:],
	}
}

// Clone returns a compact (Stride == Rows) deep copy of m.
func (m *Dense) Clone() *Dense {
	out := New(m.Rows, m.Cols)
	Copy(out, m)
	return out
}

// Copy copies src into dst element-wise. The dimensions must match.
func Copy(dst, src *Dense) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic(fmt.Sprintf("mat: copy dimension mismatch %dx%d <- %dx%d", dst.Rows, dst.Cols, src.Rows, src.Cols))
	}
	for j := 0; j < src.Cols; j++ {
		d := dst.Data[j*dst.Stride : j*dst.Stride+dst.Rows]
		s := src.Data[j*src.Stride : j*src.Stride+src.Rows]
		copy(d, s)
	}
}

// Zero sets every element of m to zero.
func (m *Dense) Zero() {
	for j := 0; j < m.Cols; j++ {
		col := m.Data[j*m.Stride : j*m.Stride+m.Rows]
		for i := range col {
			col[i] = 0
		}
	}
}

// Fill sets every element of m to v.
func (m *Dense) Fill(v float64) {
	for j := 0; j < m.Cols; j++ {
		col := m.Data[j*m.Stride : j*m.Stride+m.Rows]
		for i := range col {
			col[i] = v
		}
	}
}

// FillFunc sets element (i, j) to f(i, j) for all elements.
func (m *Dense) FillFunc(f func(i, j int) float64) {
	for j := 0; j < m.Cols; j++ {
		col := m.Data[j*m.Stride : j*m.Stride+m.Rows]
		for i := range col {
			col[i] = f(i, j)
		}
	}
}

// Transpose returns a new compact matrix holding mᵀ.
func (m *Dense) Transpose() *Dense {
	t := New(m.Cols, m.Rows)
	for j := 0; j < m.Cols; j++ {
		for i := 0; i < m.Rows; i++ {
			t.Data[j+i*t.Stride] = m.Data[i+j*m.Stride]
		}
	}
	return t
}

// Equal reports whether a and b have identical dimensions and elements.
func Equal(a, b *Dense) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for j := 0; j < a.Cols; j++ {
		for i := 0; i < a.Rows; i++ {
			if a.Data[i+j*a.Stride] != b.Data[i+j*b.Stride] {
				return false
			}
		}
	}
	return true
}

// EqualApprox reports whether a and b have identical dimensions and all
// elements within tol of each other (absolute difference).
func EqualApprox(a, b *Dense, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for j := 0; j < a.Cols; j++ {
		for i := 0; i < a.Rows; i++ {
			d := a.Data[i+j*a.Stride] - b.Data[i+j*b.Stride]
			if math.Abs(d) > tol || math.IsNaN(d) {
				return false
			}
		}
	}
	return true
}

// MaxAbsDiff returns the maximum absolute element-wise difference between
// a and b. It panics on dimension mismatch.
func MaxAbsDiff(a, b *Dense) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: diff dimension mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	var m float64
	for j := 0; j < a.Cols; j++ {
		for i := 0; i < a.Rows; i++ {
			d := math.Abs(a.Data[i+j*a.Stride] - b.Data[i+j*b.Stride])
			if d > m || math.IsNaN(d) {
				m = d
			}
		}
	}
	return m
}

// FrobNorm returns the Frobenius norm of m.
func (m *Dense) FrobNorm() float64 {
	var s float64
	for j := 0; j < m.Cols; j++ {
		col := m.Data[j*m.Stride : j*m.Stride+m.Rows]
		for _, v := range col {
			s += v * v
		}
	}
	return math.Sqrt(s)
}

// IsSymmetric reports whether m is square and symmetric to within tol.
func (m *Dense) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for j := 0; j < m.Cols; j++ {
		for i := j + 1; i < m.Rows; i++ {
			if math.Abs(m.Data[i+j*m.Stride]-m.Data[j+i*m.Stride]) > tol {
				return false
			}
		}
	}
	return true
}

// Uplo selects a triangle of a square matrix.
type Uplo int

const (
	// Lower selects the lower triangle (i >= j).
	Lower Uplo = iota
	// Upper selects the upper triangle (i <= j).
	Upper
)

// String returns "Lower" or "Upper".
func (u Uplo) String() string {
	if u == Lower {
		return "Lower"
	}
	return "Upper"
}

// MirrorTriangle copies the uplo triangle of the square matrix m onto the
// opposite triangle, making m symmetric. This is the data-movement step
// the paper's AAᵀB Algorithm 2 performs between SYRK and GEMM.
func MirrorTriangle(m *Dense, uplo Uplo) {
	if m.Rows != m.Cols {
		panic(fmt.Sprintf("mat: MirrorTriangle of non-square %dx%d", m.Rows, m.Cols))
	}
	n := m.Rows
	if uplo == Lower {
		for j := 0; j < n; j++ {
			for i := j + 1; i < n; i++ {
				m.Data[j+i*m.Stride] = m.Data[i+j*m.Stride]
			}
		}
		return
	}
	for j := 0; j < n; j++ {
		for i := j + 1; i < n; i++ {
			m.Data[i+j*m.Stride] = m.Data[j+i*m.Stride]
		}
	}
}

// ZeroTriangle clears the strict opposite triangle of uplo, leaving only
// the selected triangle (plus the diagonal) populated.
func ZeroTriangle(m *Dense, keep Uplo) {
	if m.Rows != m.Cols {
		panic(fmt.Sprintf("mat: ZeroTriangle of non-square %dx%d", m.Rows, m.Cols))
	}
	n := m.Rows
	if keep == Lower {
		for j := 0; j < n; j++ {
			for i := 0; i < j; i++ {
				m.Data[i+j*m.Stride] = 0
			}
		}
		return
	}
	for j := 0; j < n; j++ {
		for i := j + 1; i < n; i++ {
			m.Data[i+j*m.Stride] = 0
		}
	}
}
