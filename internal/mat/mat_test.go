package mat

import (
	"math"
	"testing"
	"testing/quick"

	"lamb/internal/xrand"
)

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || m.Stride != 3 {
		t.Fatalf("New(3,4) = %dx%d stride %d", m.Rows, m.Cols, m.Stride)
	}
	for j := 0; j < 4; j++ {
		for i := 0; i < 3; i++ {
			if m.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1, 2) did not panic")
		}
	}()
	New(-1, 2)
}

func TestSetAtRoundTrip(t *testing.T) {
	m := New(5, 7)
	m.Set(2, 3, 42.5)
	if got := m.At(2, 3); got != 42.5 {
		t.Fatalf("At(2,3) = %v, want 42.5", got)
	}
	// Column-major layout: (2,3) lives at index 2+3*5.
	if m.Data[2+3*5] != 42.5 {
		t.Fatal("value not stored column-major")
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	m := New(2, 2)
	for _, idx := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("At(%d,%d) did not panic", idx[0], idx[1])
				}
			}()
			m.At(idx[0], idx[1])
		}()
	}
}

func TestNewFromSlice(t *testing.T) {
	// 2x3 column-major: columns are (1,2), (3,4), (5,6).
	m := NewFromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if m.At(0, 0) != 1 || m.At(1, 0) != 2 || m.At(0, 1) != 3 || m.At(1, 2) != 6 {
		t.Fatalf("NewFromSlice layout wrong: %+v", m)
	}
}

func TestNewFromSliceShortPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short slice did not panic")
		}
	}()
	NewFromSlice(2, 3, make([]float64, 5))
}

func TestSliceView(t *testing.T) {
	m := New(4, 4)
	m.FillFunc(func(i, j int) float64 { return float64(10*i + j) })
	v := m.Slice(1, 3, 2, 4)
	if v.Rows != 2 || v.Cols != 2 {
		t.Fatalf("view dims %dx%d, want 2x2", v.Rows, v.Cols)
	}
	if v.At(0, 0) != m.At(1, 2) || v.At(1, 1) != m.At(2, 3) {
		t.Fatal("view elements do not alias parent")
	}
	v.Set(0, 0, -1)
	if m.At(1, 2) != -1 {
		t.Fatal("view write did not propagate to parent")
	}
	if !v.IsView() {
		t.Fatal("Slice of interior should report IsView")
	}
}

func TestSliceBadRangePanics(t *testing.T) {
	m := New(3, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("bad slice did not panic")
		}
	}()
	m.Slice(0, 4, 0, 1)
}

func TestCloneIndependent(t *testing.T) {
	m := New(3, 2)
	m.FillFunc(func(i, j int) float64 { return float64(i - j) })
	c := m.Clone()
	if !Equal(m, c) {
		t.Fatal("clone not equal to source")
	}
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("clone shares storage with source")
	}
}

func TestCopyViewToCompact(t *testing.T) {
	m := New(4, 4)
	m.FillFunc(func(i, j int) float64 { return float64(i + 4*j) })
	v := m.Slice(1, 3, 1, 3)
	dst := New(2, 2)
	Copy(dst, v)
	if dst.At(0, 0) != m.At(1, 1) || dst.At(1, 1) != m.At(2, 2) {
		t.Fatal("Copy from view wrong")
	}
}

func TestCopyMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Copy did not panic")
		}
	}()
	Copy(New(2, 2), New(3, 2))
}

func TestZeroAndFill(t *testing.T) {
	m := New(3, 3)
	m.Fill(7)
	if m.At(2, 2) != 7 {
		t.Fatal("Fill failed")
	}
	m.Zero()
	if m.FrobNorm() != 0 {
		t.Fatal("Zero failed")
	}
}

func TestFillOnViewDoesNotLeak(t *testing.T) {
	m := New(4, 4)
	v := m.Slice(1, 3, 1, 3)
	v.Fill(5)
	if m.At(0, 0) != 0 || m.At(3, 3) != 0 || m.At(0, 1) != 0 {
		t.Fatal("Fill on view wrote outside the view")
	}
	if m.At(1, 1) != 5 || m.At(2, 2) != 5 {
		t.Fatal("Fill on view did not write inside the view")
	}
}

func TestTranspose(t *testing.T) {
	m := NewFromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose dims %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		r, c := rng.IntRange(1, 12), rng.IntRange(1, 12)
		m := NewRandom(r, c, rng)
		return Equal(m, m.Transpose().Transpose())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEqualApprox(t *testing.T) {
	a := New(2, 2)
	b := New(2, 2)
	b.Set(1, 1, 1e-9)
	if !EqualApprox(a, b, 1e-8) {
		t.Fatal("EqualApprox too strict")
	}
	if EqualApprox(a, b, 1e-10) {
		t.Fatal("EqualApprox too lax")
	}
	if EqualApprox(a, New(2, 3), 1) {
		t.Fatal("EqualApprox ignored dimension mismatch")
	}
}

func TestEqualApproxNaN(t *testing.T) {
	a := New(1, 1)
	b := New(1, 1)
	b.Set(0, 0, math.NaN())
	if EqualApprox(a, b, 1e9) {
		t.Fatal("NaN should never compare approximately equal")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := NewFromSlice(2, 2, []float64{1, 2, 3, 4})
	b := NewFromSlice(2, 2, []float64{1, 2.5, 3, 3})
	if got := MaxAbsDiff(a, b); got != 1 {
		t.Fatalf("MaxAbsDiff = %v, want 1", got)
	}
}

func TestFrobNorm(t *testing.T) {
	m := NewFromSlice(2, 2, []float64{3, 0, 0, 4})
	if got := m.FrobNorm(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("FrobNorm = %v, want 5", got)
	}
}

func TestIsSymmetric(t *testing.T) {
	rng := xrand.New(7)
	s := NewSymmetricRandom(8, rng)
	if !s.IsSymmetric(0) {
		t.Fatal("NewSymmetricRandom not symmetric")
	}
	s.Set(0, 1, s.At(0, 1)+1)
	if s.IsSymmetric(1e-9) {
		t.Fatal("perturbed matrix still symmetric")
	}
	if New(2, 3).IsSymmetric(1) {
		t.Fatal("non-square reported symmetric")
	}
}

func TestMirrorTriangleLower(t *testing.T) {
	m := New(3, 3)
	m.FillFunc(func(i, j int) float64 {
		if i >= j {
			return float64(1 + i + 10*j)
		}
		return -99 // garbage in the upper triangle
	})
	MirrorTriangle(m, Lower)
	if !m.IsSymmetric(0) {
		t.Fatal("MirrorTriangle(Lower) did not symmetrise")
	}
	if m.At(0, 2) != m.At(2, 0) || m.At(2, 0) != 3 {
		t.Fatal("upper triangle not sourced from lower")
	}
}

func TestMirrorTriangleUpper(t *testing.T) {
	m := New(3, 3)
	m.FillFunc(func(i, j int) float64 {
		if i <= j {
			return float64(1 + i + 10*j)
		}
		return -99
	})
	MirrorTriangle(m, Upper)
	if !m.IsSymmetric(0) {
		t.Fatal("MirrorTriangle(Upper) did not symmetrise")
	}
}

func TestMirrorTriangleNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MirrorTriangle on non-square did not panic")
		}
	}()
	MirrorTriangle(New(2, 3), Lower)
}

func TestZeroTriangle(t *testing.T) {
	m := New(3, 3)
	m.Fill(1)
	ZeroTriangle(m, Lower)
	if m.At(0, 1) != 0 || m.At(0, 2) != 0 || m.At(1, 2) != 0 {
		t.Fatal("upper triangle not cleared")
	}
	if m.At(1, 1) != 1 || m.At(2, 0) != 1 {
		t.Fatal("lower triangle or diagonal damaged")
	}
	m.Fill(1)
	ZeroTriangle(m, Upper)
	if m.At(1, 0) != 0 || m.At(2, 1) != 0 {
		t.Fatal("lower triangle not cleared")
	}
	if m.At(0, 2) != 1 {
		t.Fatal("upper triangle damaged")
	}
}

func TestUploString(t *testing.T) {
	if Lower.String() != "Lower" || Upper.String() != "Upper" {
		t.Fatal("Uplo.String wrong")
	}
}

func TestFillRandomDeterministic(t *testing.T) {
	a := NewRandom(4, 4, xrand.New(3))
	b := NewRandom(4, 4, xrand.New(3))
	if !Equal(a, b) {
		t.Fatal("same seed produced different matrices")
	}
	c := NewRandom(4, 4, xrand.New(4))
	if Equal(a, c) {
		t.Fatal("different seeds produced identical matrices")
	}
}

func TestFillRandomRange(t *testing.T) {
	m := NewRandom(50, 50, xrand.New(1))
	for _, v := range m.Data {
		if v < -1 || v >= 1 {
			t.Fatalf("element %v outside [-1, 1)", v)
		}
	}
}
