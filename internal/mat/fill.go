package mat

import "lamb/internal/xrand"

// FillRandom fills m with uniform values in [-1, 1) drawn from rng.
// Dense unstructured operands in the paper's experiments are generated
// this way; only sizes, never element values, affect kernel timing.
func (m *Dense) FillRandom(rng *xrand.Rand) {
	for j := 0; j < m.Cols; j++ {
		col := m.Data[j*m.Stride : j*m.Stride+m.Rows]
		for i := range col {
			col[i] = 2*rng.Float64() - 1
		}
	}
}

// NewRandom returns a new r-by-c matrix filled with uniform values in
// [-1, 1) drawn from rng.
func NewRandom(r, c int, rng *xrand.Rand) *Dense {
	m := New(r, c)
	m.FillRandom(rng)
	return m
}

// NewSPDRandom returns a new well-conditioned random symmetric positive
// definite n-by-n matrix (G·Gᵀ/n + I with G random), suitable as input
// to a Cholesky factorisation.
func NewSPDRandom(n int, rng *xrand.Rand) *Dense {
	g := NewRandom(n, n, rng)
	s := New(n, n)
	inv := 1 / float64(n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			var acc float64
			for p := 0; p < n; p++ {
				acc += g.Data[i+p*g.Stride] * g.Data[j+p*g.Stride]
			}
			v := acc * inv
			if i == j {
				v++
			}
			s.Data[i+j*s.Stride] = v
			s.Data[j+i*s.Stride] = v
		}
	}
	return s
}

// NewSymmetricRandom returns a new random symmetric n-by-n matrix.
func NewSymmetricRandom(n int, rng *xrand.Rand) *Dense {
	m := New(n, n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			v := 2*rng.Float64() - 1
			m.Data[i+j*m.Stride] = v
			m.Data[j+i*m.Stride] = v
		}
	}
	return m
}
