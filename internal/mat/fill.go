package mat

import "lamb/internal/xrand"

// FillRandom fills m with uniform values in [-1, 1) drawn from rng.
// Dense unstructured operands in the paper's experiments are generated
// this way; only sizes, never element values, affect kernel timing.
func (m *Dense) FillRandom(rng *xrand.Rand) {
	for j := 0; j < m.Cols; j++ {
		col := m.Data[j*m.Stride : j*m.Stride+m.Rows]
		for i := range col {
			col[i] = 2*rng.Float64() - 1
		}
	}
}

// NewRandom returns a new r-by-c matrix filled with uniform values in
// [-1, 1) drawn from rng.
func NewRandom(r, c int, rng *xrand.Rand) *Dense {
	m := New(r, c)
	m.FillRandom(rng)
	return m
}

// NewSPDRandom returns a new well-conditioned random symmetric positive
// definite n-by-n matrix (G·Gᵀ/n + I with G random), suitable as input
// to a Cholesky factorisation.
func NewSPDRandom(n int, rng *xrand.Rand) *Dense {
	s := New(n, n)
	s.FillSPD(make([]float64, n*n), rng)
	return s
}

// FillSPD fills the square matrix m in place with a well-conditioned
// random symmetric positive definite matrix (G·Gᵀ/n + I with G random).
// scratch holds G during the fill and must have at least Rows·Rows
// elements; passing a reusable buffer makes repeated fills allocation-
// free (the execution-plan executor refills SPD inputs this way on
// every repetition).
func (m *Dense) FillSPD(scratch []float64, rng *xrand.Rand) {
	n := m.Rows
	if m.Cols != n {
		panic("mat: FillSPD of non-square matrix")
	}
	if len(scratch) < n*n {
		panic("mat: FillSPD scratch too short")
	}
	g := scratch[:n*n]
	for i := range g {
		g[i] = 2*rng.Float64() - 1
	}
	inv := 1 / float64(n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			var acc float64
			for p := 0; p < n; p++ {
				acc += g[i+p*n] * g[j+p*n]
			}
			v := acc * inv
			if i == j {
				v++
			}
			m.Data[i+j*m.Stride] = v
			m.Data[j+i*m.Stride] = v
		}
	}
}

// NewSymmetricRandom returns a new random symmetric n-by-n matrix.
func NewSymmetricRandom(n int, rng *xrand.Rand) *Dense {
	m := New(n, n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			v := 2*rng.Float64() - 1
			m.Data[i+j*m.Stride] = v
			m.Data[j+i*m.Stride] = v
		}
	}
	return m
}
