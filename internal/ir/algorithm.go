package ir

import (
	"fmt"
	"strings"

	"lamb/internal/kernels"
)

// Instance assigns concrete sizes to an expression's dimensions
// (d0, d1, ... in the paper's notation).
type Instance []int

// String renders the instance as "(d0,d1,...)".
func (in Instance) String() string {
	parts := make([]string, len(in))
	for i, d := range in {
		parts[i] = fmt.Sprint(d)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Clone returns an independent copy of the instance.
func (in Instance) Clone() Instance {
	out := make(Instance, len(in))
	copy(out, in)
	return out
}

// Shape is the dimensions of one operand.
type Shape struct {
	Rows, Cols int
}

// Algorithm is one mathematically equivalent evaluation of an expression
// for a concrete instance: an ordered sequence of kernel calls plus the
// shapes of every operand involved.
type Algorithm struct {
	// Index is the paper's 1-based algorithm number.
	Index int
	// Name describes the call sequence, e.g. "M1:=A·B; M2:=M1·C; X:=M2·D".
	Name string
	// Calls is the kernel sequence, executed in order.
	Calls []kernels.Call
	// Shapes maps every operand ID (inputs, temporaries, output) to its
	// shape.
	Shapes map[string]Shape
	// Inputs lists the expression's input operand IDs.
	Inputs []string
	// SPDInputs lists the inputs that must be symmetric positive
	// definite (e.g. the regulariser of the least-squares expression);
	// executors materialise these accordingly.
	SPDInputs []string
	// Output is the ID of the final result.
	Output string
}

// Flops returns the algorithm's total FLOP count — the discriminant the
// paper evaluates.
func (a *Algorithm) Flops() float64 {
	var s float64
	for _, c := range a.Calls {
		s += c.Flops()
	}
	return s
}

// Validate checks internal consistency: every call validates, every
// operand mentioned has a shape, and call dimensions agree with operand
// shapes.
func (a *Algorithm) Validate() error {
	if len(a.Calls) == 0 {
		return fmt.Errorf("ir: algorithm %q has no calls", a.Name)
	}
	for i, c := range a.Calls {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("ir: algorithm %q call %d: %w", a.Name, i, err)
		}
		ids := append([]string{c.Out}, c.In...)
		for _, id := range ids {
			if _, ok := a.Shapes[id]; !ok {
				return fmt.Errorf("ir: algorithm %q call %d references unknown operand %q", a.Name, i, id)
			}
		}
		out := a.Shapes[c.Out]
		if out.Rows != c.M || out.Cols != c.N {
			return fmt.Errorf("ir: algorithm %q call %d output %q is %dx%d, call writes %dx%d",
				a.Name, i, c.Out, out.Rows, out.Cols, c.M, c.N)
		}
	}
	if _, ok := a.Shapes[a.Output]; !ok {
		return fmt.Errorf("ir: algorithm %q output %q has no shape", a.Name, a.Output)
	}
	return nil
}
