package ir

import (
	"reflect"
	"strings"
	"testing"

	"lamb/internal/kernels"
)

func mustEnum(t *testing.T, def *Def, inst Instance) []Algorithm {
	t.Helper()
	algs, err := Enumerate(def, inst)
	if err != nil {
		t.Fatalf("enumerate %s: %v", def.Name, err)
	}
	for _, a := range algs {
		if err := a.Validate(); err != nil {
			t.Fatalf("%s algorithm %d: %v", def.Name, a.Index, err)
		}
	}
	return algs
}

func wantErr(t *testing.T, def *Def, inst Instance, frag string) {
	t.Helper()
	if err := def.Validate(); err != nil {
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("%s: error %q does not mention %q", def.Name, err, frag)
		}
		return
	}
	_, err := Enumerate(def, inst)
	if err == nil {
		t.Fatalf("%s: expected error mentioning %q, got none", def.Name, frag)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("%s: error %q does not mention %q", def.Name, err, frag)
	}
}

func TestTransposeCancelsAndSymmetricTransposeIsIdentity(t *testing.T) {
	a := NewOperand("A", 0, 1)
	if T(T(a)) != Node(a) {
		t.Fatal("double transpose should cancel")
	}
	// Sᵀ = S for a symmetric operand: the product S·B and Sᵀ·B generate
	// identical sets.
	s := NewSymmetric("S", 0)
	b := NewOperand("B", 0, 1)
	inst := Instance{7, 9}
	plain := mustEnum(t, &Def{Name: "sb", Arity: 2, Root: Mul(s, b)}, inst)
	trans := mustEnum(t, &Def{Name: "sb", Arity: 2, Root: Mul(&Transpose{X: s}, b)}, inst)
	if !reflect.DeepEqual(plain, trans) {
		t.Fatal("Sᵀ·B should enumerate identically to S·B")
	}
}

func TestSymmetricInputProductOffersSymmAndGemm(t *testing.T) {
	s := NewSymmetric("S", 0)
	b := NewOperand("B", 0, 1)
	algs := mustEnum(t, &Def{Name: "sb", Arity: 2, Root: Mul(s, b)}, Instance{6, 11})
	if len(algs) != 2 {
		t.Fatalf("S·B generated %d algorithms, want 2 (symm, gemm)", len(algs))
	}
	if algs[0].Calls[0].Kind != kernels.Symm || algs[1].Calls[0].Kind != kernels.Gemm {
		t.Fatalf("S·B kernels: %v, %v (want symm before gemm)", algs[0].Calls[0].Kind, algs[1].Calls[0].Kind)
	}
	if algs[0].Name != "X:=symm(S·B)" || algs[1].Name != "X:=gemm(S·B)" {
		t.Fatalf("names %q, %q", algs[0].Name, algs[1].Name)
	}
}

func TestTransGramLowersToSyrkTAndGemm(t *testing.T) {
	// Aᵀ·A·B: the transposed-SYRK rewrite widens the fragment so the
	// Gram product offers SYRK (trans='T', triangular result) before
	// GEMM, mirroring the A·Aᵀ case — five algorithms, the exact mirror
	// of the paper's AAᵀB set.
	a := NewOperand("A", 0, 1)
	b := NewOperand("B", 1, 2)
	algs := mustEnum(t, &Def{Name: "atab", Arity: 3, Root: Mul(T(a), a, b)}, Instance{5, 8, 13})
	wantNames := []string{
		"M1:=syrk(Aᵀ·A); X:=symm(M1·B)",
		"M1:=syrk(Aᵀ·A); tri2full(M1); X:=gemm(M1·B)",
		"M1:=gemm(Aᵀ·A); X:=symm(M1·B)",
		"M1:=gemm(Aᵀ·A); X:=gemm(M1·B)",
		"M1:=gemm(A·B); X:=gemm(Aᵀ·M1)",
	}
	if len(algs) != len(wantNames) {
		t.Fatalf("AᵀAB generated %d algorithms, want %d", len(algs), len(wantNames))
	}
	for i, want := range wantNames {
		if algs[i].Name != want {
			t.Errorf("algorithm %d: %q, want %q", i+1, algs[i].Name, want)
		}
	}
	// The transposed SYRK reads A (5×8) and writes the 8×8 triangle.
	if c := algs[0].Calls[0]; c.Kind != kernels.Syrk || !c.TransA || c.M != 8 || c.N != 8 || c.K != 5 {
		t.Fatalf("syrk-T call %+v", c)
	}
	// Its GEMM fallback keeps the transposed-left read.
	if c := algs[2].Calls[0]; c.Kind != kernels.Gemm || !c.TransA || c.TransB || c.M != 8 || c.N != 8 || c.K != 5 {
		t.Fatalf("AᵀA gemm call %+v", c)
	}
	// SYRK and GEMM variants tie exactly like the paper's AAᵀB pairs do
	// not: SYRK costs (m+1)·m·k vs GEMM's 2·m·m·k.
	if algs[0].Flops() >= algs[2].Flops() {
		t.Fatalf("syrk-T flops %v not below gemm flops %v", algs[0].Flops(), algs[2].Flops())
	}
}

func TestCommonSubexpressionSharedFactorComputedOnce(t *testing.T) {
	// X := (A·B)·(A·B): the shared factor node is computed once.
	a := NewOperand("A", 0, 1)
	b := NewOperand("B", 1, 0)
	p := Mul(a, b)
	algs := mustEnum(t, &Def{Name: "square", Arity: 2, Root: MulFixed(p, p)}, Instance{6, 9})
	if len(algs) != 1 {
		t.Fatalf("generated %d algorithms, want 1", len(algs))
	}
	alg := algs[0]
	if alg.Name != "M1:=gemm(A·B); X:=gemm(M1·M1)" {
		t.Fatalf("name %q", alg.Name)
	}
	if len(alg.Calls) != 2 {
		t.Fatalf("shared subexpression recomputed: %d calls", len(alg.Calls))
	}
	want := 2.0*6*9*6 + 2.0*6*6*6
	if alg.Flops() != want {
		t.Fatalf("flops %v, want %v", alg.Flops(), want)
	}
}

func TestSumFeedingFullStorageKernelInsertsTri2Full(t *testing.T) {
	// Regression: AddSym accumulates the lower triangle only, so a Gram
	// sum consumed by a full-storage GEMM must be mirrored first — even
	// when the Gram product itself used full-storage GEMM (whose upper
	// triangle is stale after the accumulation).
	a := NewOperand("A", 0, 1)
	b := NewOperand("B", 0, 2)
	r := NewSPD("R", 0)
	root := MulFixed(Add("S", Mul(a, T(a)), r), b)
	algs := mustEnum(t, &Def{Name: "sumgemm", Arity: 3, Root: root}, Instance{5, 6, 7})
	if len(algs) != 4 {
		t.Fatalf("generated %d algorithms, want 4", len(algs))
	}
	for _, alg := range algs {
		if strings.Contains(alg.Name, "gemm(S·B)") && !strings.Contains(alg.Name, "tri2full(S)") {
			t.Fatalf("algorithm %q feeds the triangle-accumulated sum to GEMM without Tri2Full", alg.Name)
		}
	}
}

func TestSolveRequiresNamedSPDPipeline(t *testing.T) {
	a := NewOperand("A", 0, 1)
	b := NewOperand("B", 1, 2)
	r := NewSPD("R", 0)
	inst := Instance{4, 5, 6}

	// Inverse of a raw input would factor it in place.
	wantErr(t, &Def{Name: "t", Arity: 3, Root: Solve(r, Mul(a, b))}, inst, "factor it in place")
	// Inverse of a non-SPD pipeline has no Cholesky lowering.
	sym := NewSymmetric("W", 0)
	wantErr(t, &Def{Name: "t", Arity: 3,
		Root: Solve(Add("S", Mul(a, T(a)), sym), Mul(a, b))}, inst, "SPD")
	// A leaf right-hand side would be overwritten by the in-place solve.
	wantErr(t, &Def{Name: "t", Arity: 3,
		Root: Solve(Add("S", Mul(a, T(a)), r), NewOperand("B2", 0, 2))}, inst, "right-hand side")
	// Solve form must be fixed.
	wantErr(t, &Def{Name: "t", Arity: 3,
		Root: Mul(Inv(Add("S", Mul(a, T(a)), r)), Mul(a, b))}, inst, "fixed product")
}

func TestUnsupportedFragmentsErrorCleanly(t *testing.T) {
	a := NewOperand("A", 0, 1)
	b := NewOperand("B", 1, 0)
	inst2 := Instance{4, 5}

	// Inverse outside solve position.
	wantErr(t, &Def{Name: "t", Arity: 2, Root: Inv(Mul(a, b))}, inst2, "solve position")
	wantErr(t, &Def{Name: "t", Arity: 2, Root: Mul(a, Inv(Mul(b, a)), b)}, inst2, "left factor")
	// Transpose of a computed subexpression.
	wantErr(t, &Def{Name: "t", Arity: 2, Root: MulFixed(&Transpose{X: Mul(a, b)}, a)}, inst2, "supported fragment")
	// Sums need a name, a leaf, and a computed term.
	r := NewSPD("R", 0)
	wantErr(t, &Def{Name: "t", Arity: 2, Root: Solve(Add("", Mul(a, T(a)), r), Mul(a, b))}, inst2, "Name")
	wantErr(t, &Def{Name: "t", Arity: 2, Root: Solve(Add("S", r, NewSPD("Q", 0)), Mul(a, b))}, inst2, "computed term")
	wantErr(t, &Def{Name: "t", Arity: 2, Root: Solve(Add("S", Mul(a, T(a)), Mul(b, T(b))), Mul(a, b))}, inst2, "leaf term")
	// Computed factors in an associative product.
	wantErr(t, &Def{Name: "t", Arity: 2, Root: Mul(a, Mul(b, a))}, inst2, "fixed product")
	// Triangular input feeding a full-storage kernel.
	l := &Operand{ID: "L", RowDim: 0, ColDim: 0, Props: LowerTri}
	wantErr(t, &Def{Name: "t", Arity: 2, Root: Mul(l, a)}, inst2, "triangle")
	// Dimension mismatches surface per instance.
	wantErr(t, &Def{Name: "t", Arity: 2, Root: Mul(a, a)}, inst2, "mismatched inner dimensions")
}

func TestDefValidateRejectsBadStructure(t *testing.T) {
	a := NewOperand("A", 0, 1)
	cases := []struct {
		def  *Def
		frag string
	}{
		{&Def{Name: "", Arity: 2, Root: Mul(a, a)}, "no name"},
		{&Def{Name: "t", Arity: 0, Root: Mul(a, a)}, "arity"},
		{&Def{Name: "t", Arity: 2, Root: nil}, "nil"},
		{&Def{Name: "t", Arity: 1, Root: Mul(a)}, "outside arity"},
		{&Def{Name: "t", Arity: 2, Root: Mul(NewOperand("X", 0, 1))}, "output"},
		{&Def{Name: "t", Arity: 2, Root: Mul(NewOperand("M1", 0, 1))}, "temporary"},
		{&Def{Name: "t", Arity: 2, Root: Mul(NewOperand("", 0, 1))}, "unnamed"},
		{&Def{Name: "t", Arity: 2, Root: Mul(&Operand{ID: "S", RowDim: 0, ColDim: 1, Props: Symmetric})}, "square"},
		{&Def{Name: "t", Arity: 2,
			Root: Mul(NewOperand("A", 0, 1), NewOperand("A", 1, 0))}, "redefined"},
		{&Def{Name: "t", Arity: 2,
			Root: &Product{Factors: []Node{a}, Name: "A", Fixed: true}}, "collides with an input"},
	}
	for _, c := range cases {
		if err := c.def.Validate(); err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Validate(%s) = %v, want error mentioning %q", c.def.Name, err, c.frag)
		}
	}
}

func TestValidateInstance(t *testing.T) {
	def := &Def{Name: "t", Arity: 2, Root: Mul(NewOperand("A", 0, 1), NewOperand("B", 1, 0))}
	if err := def.ValidateInstance(Instance{3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := def.ValidateInstance(Instance{3}); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if err := def.ValidateInstance(Instance{3, 0}); err == nil {
		t.Fatal("non-positive dimension accepted")
	}
}

func TestEnumerateIsDeterministic(t *testing.T) {
	a := NewOperand("A", 0, 1)
	b := NewOperand("B", 0, 2)
	def := &Def{Name: "aatb", Arity: 3, Root: Mul(a, T(a), b)}
	inst := Instance{30, 40, 50}
	first := mustEnum(t, def, inst)
	second := mustEnum(t, def, inst)
	if !reflect.DeepEqual(first, second) {
		t.Fatal("enumeration is not deterministic")
	}
}

func TestBareStyleNaming(t *testing.T) {
	a := NewOperand("A", 0, 1)
	b := NewOperand("B", 1, 0)
	def := &Def{Name: "ab", Arity: 2, Root: Mul(a, b), Style: StyleBare}
	algs := mustEnum(t, def, Instance{3, 4})
	if algs[0].Name != "X:=A·B" {
		t.Fatalf("bare name %q", algs[0].Name)
	}
}

func TestPropsHas(t *testing.T) {
	p := SPD | Symmetric
	if !p.Has(Symmetric) || !p.Has(SPD) || p.Has(LowerTri) {
		t.Fatalf("props %b", p)
	}
}
