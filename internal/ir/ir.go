// Package ir defines the expression intermediate representation from
// which all algorithm sets in this repository are generated.
//
// An expression is a small tree of operands, products, sums, and
// inverses. Operands carry structural properties (general, symmetric,
// symmetric positive definite, triangular) and reference the dimensions
// of a problem instance symbolically, so one tree describes a whole
// family of problems. The enumerator (Enumerate) derives the full set of
// mathematically equivalent algorithms for a tree by rewrite rules —
// every multiplication order of associative products, symmetry
// exploitation (A·Aᵀ → SYRK, symmetric-operand products → SYMM, with
// Tri2Full insertion when a triangle feeds a full-storage kernel),
// SPD-inverse lowering to POTRF plus two TRSMs with both right-hand-side
// orderings, and common-subexpression sharing — and lowers each
// derivation to a kernels.Call sequence with inferred shapes, generated
// operand names, and the paper's FLOP counts.
//
// The paper (§5) conjectures that anomalies become more frequent as
// expressions grow richer; this package is what turns that from a
// per-expression coding exercise into a one-line tree definition. The
// hand-written expressions it replaced (the chain, AAᵀB, and the
// least-squares pipeline in lamb/internal/expr) are regression-pinned:
// the generated sets are byte-for-byte identical to the former
// hand-coded ones.
package ir

import "fmt"

// Dim symbolically references one dimension of a problem instance: the
// value of Dim(i) under instance d is d[i] (the paper's dᵢ).
type Dim int

// Props is a bit set of structural operand properties. The zero value
// is a general dense operand.
type Props uint8

const (
	// Symmetric marks an operand equal to its own transpose.
	Symmetric Props = 1 << iota
	// SPD marks a symmetric positive definite operand; it implies
	// Symmetric and licenses Cholesky-based inverse lowering.
	SPD
	// LowerTri marks an operand with valid data only in its lower
	// triangle (e.g. a Cholesky factor supplied as an input).
	LowerTri
)

// Has reports whether all properties in q are set.
func (p Props) Has(q Props) bool { return p&q == q }

// Node is one vertex of an expression tree. The concrete types are
// *Operand, *Transpose, *Product, *Sum, and *Inverse. Nodes are
// compared by pointer: using the same *Node twice in a tree marks a
// shared common subexpression, which the enumerator computes once.
type Node interface {
	node()
	// render is the node's symbolic form for error messages.
	render() string
}

// Operand is a leaf: a named input matrix with symbolic dimensions and
// structural properties.
type Operand struct {
	// ID names the operand ("A", "B", ...); equal IDs denote the same
	// input and must agree in dimensions and properties.
	ID string
	// RowDim and ColDim reference the instance dimensions.
	RowDim, ColDim Dim
	// Props are the operand's structural properties.
	Props Props
}

func (*Operand) node()            {}
func (o *Operand) render() string { return o.ID }

// NewOperand returns a general dense leaf of shape d[row] × d[col].
func NewOperand(id string, row, col Dim) *Operand {
	return &Operand{ID: id, RowDim: row, ColDim: col}
}

// NewSPD returns a symmetric positive definite leaf of shape
// d[dim] × d[dim].
func NewSPD(id string, dim Dim) *Operand {
	return &Operand{ID: id, RowDim: dim, ColDim: dim, Props: SPD | Symmetric}
}

// NewSymmetric returns a symmetric leaf of shape d[dim] × d[dim].
func NewSymmetric(id string, dim Dim) *Operand {
	return &Operand{ID: id, RowDim: dim, ColDim: dim, Props: Symmetric}
}

// Transpose is the transposed view of its child. The enumerator
// supports transposed reads of leaves (lowered to kernel transpose
// flags); transposes of computed subexpressions are outside the
// supported fragment.
type Transpose struct {
	X Node
}

func (*Transpose) node()            {}
func (t *Transpose) render() string { return t.X.render() + "ᵀ" }

// T returns the transpose of x, cancelling double transposition.
func T(x Node) Node {
	if t, ok := x.(*Transpose); ok {
		return t.X
	}
	return &Transpose{X: x}
}

// Product is an n-ary matrix product.
type Product struct {
	// Factors are the product terms, left to right.
	Factors []Node
	// Fixed pins this grouping: the enumerator evaluates the factors
	// left to right and does not re-associate across this node. Without
	// it every multiplication order (the chain's (n−1)! algorithms) is
	// enumerated.
	Fixed bool
	// Name optionally names the product's result operand; anonymous
	// results get generated temporary names (M1, M2, ...).
	Name string
}

func (*Product) node() {}
func (p *Product) render() string {
	s := "("
	for i, f := range p.Factors {
		if i > 0 {
			s += "·"
		}
		s += f.render()
	}
	return s + ")"
}

// Mul returns the associative product of the factors: the enumerator
// derives every multiplication order.
func Mul(factors ...Node) *Product { return &Product{Factors: factors} }

// MulFixed returns the product of the factors with the grouping pinned
// left to right.
func MulFixed(factors ...Node) *Product { return &Product{Factors: factors, Fixed: true} }

// Sum is a two-term sum S := P + R accumulated in place into a named
// operand: the computed term is evaluated into the sum's name and the
// leaf term is added with AddSym. The supported fragment requires one
// symmetric computed term and one symmetric leaf.
type Sum struct {
	// Terms are the two summands: one computed node and one leaf.
	Terms []Node
	// Name names the accumulator operand (e.g. "S"); required.
	Name string
}

func (*Sum) node() {}
func (s *Sum) render() string {
	out := "("
	for i, t := range s.Terms {
		if i > 0 {
			out += "+"
		}
		out += t.render()
	}
	return out + ")"
}

// Add returns the in-place sum of the terms accumulated into name.
func Add(name string, terms ...Node) *Sum { return &Sum{Terms: terms, Name: name} }

// Inverse is the matrix inverse of its child. The enumerator never
// materialises an inverse: it must appear as the left factor of a
// two-factor fixed product ("solve form"), where an SPD child lowers to
// a Cholesky factorisation plus two triangular solves applied in place
// to the right factor.
type Inverse struct {
	X Node
}

func (*Inverse) node()            {}
func (i *Inverse) render() string { return i.X.render() + "⁻¹" }

// Inv returns the inverse of x.
func Inv(x Node) *Inverse { return &Inverse{X: x} }

// Solve returns the solve-form product inv(s)·rhs.
func Solve(s, rhs Node) *Product { return MulFixed(Inv(s), rhs) }

// Style selects how generated algorithm names render each step.
type Style int

const (
	// StyleKernel annotates every step with its kernel, e.g.
	// "M1:=syrk(A·Aᵀ); X:=symm(M1·B)" — the notation of the paper's
	// Figure 5.
	StyleKernel Style = iota
	// StyleBare renders plain products, e.g. "M1:=A·B; M2:=M1·C" — the
	// notation of the paper's Figure 3 for the GEMM-only chain.
	StyleBare
)

// Def is a complete expression definition: the tree plus the metadata
// the enumerator needs to generate algorithm sets. The result operand
// is always named "X".
type Def struct {
	// Name identifies the expression (e.g. "chain-ABCD").
	Name string
	// Arity is the number of dimension parameters of an instance; every
	// Dim in the tree must be below it.
	Arity int
	// Root is the expression tree.
	Root Node
	// Style selects the algorithm naming notation.
	Style Style
}

// Output is the fixed name of every definition's result operand.
const Output = "X"

// leaves walks the tree and returns its distinct input operands in
// definition order, checking that repeated IDs agree in dimensions and
// properties.
func leaves(root Node) ([]*Operand, error) {
	var out []*Operand
	seen := map[string]*Operand{}
	var walk func(n Node) error
	walk = func(n Node) error {
		switch n := n.(type) {
		case *Operand:
			if prev, ok := seen[n.ID]; ok {
				if prev.RowDim != n.RowDim || prev.ColDim != n.ColDim || prev.Props != n.Props {
					return fmt.Errorf("ir: operand %q redefined with different dimensions or properties", n.ID)
				}
				return nil
			}
			seen[n.ID] = n
			out = append(out, n)
		case *Transpose:
			return walk(n.X)
		case *Product:
			for _, f := range n.Factors {
				if err := walk(f); err != nil {
					return err
				}
			}
		case *Sum:
			for _, t := range n.Terms {
				if err := walk(t); err != nil {
					return err
				}
			}
		case *Inverse:
			return walk(n.X)
		default:
			return fmt.Errorf("ir: unknown node type %T", n)
		}
		return nil
	}
	if root == nil {
		return nil, fmt.Errorf("ir: nil expression root")
	}
	if err := walk(root); err != nil {
		return nil, err
	}
	return out, nil
}

// Validate checks the definition's structure: a well-formed tree,
// consistent leaves, and dimensions within the arity. It does not run
// the enumerator; shape consistency is checked per instance by
// Enumerate.
func (d *Def) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("ir: definition has no name")
	}
	if d.Arity <= 0 {
		return fmt.Errorf("ir: definition %q has non-positive arity %d", d.Name, d.Arity)
	}
	ls, err := leaves(d.Root)
	if err != nil {
		return err
	}
	if len(ls) == 0 {
		return fmt.Errorf("ir: definition %q has no operands", d.Name)
	}
	leafIDs := make(map[string]bool, len(ls))
	for _, l := range ls {
		if err := checkOperandName(l.ID, "operand"); err != nil {
			return fmt.Errorf("ir: definition %q: %w", d.Name, err)
		}
		leafIDs[l.ID] = true
		for _, dim := range []Dim{l.RowDim, l.ColDim} {
			if dim < 0 || int(dim) >= d.Arity {
				return fmt.Errorf("ir: operand %q references dimension %d outside arity %d", l.ID, dim, d.Arity)
			}
		}
		if l.Props.Has(Symmetric) && l.RowDim != l.ColDim {
			return fmt.Errorf("ir: symmetric operand %q must be square, has dims (%d, %d)", l.ID, l.RowDim, l.ColDim)
		}
	}
	// Explicit node names must not collide with inputs, each other, the
	// output, or generated temporary names.
	named := map[string]Node{}
	var walkNames func(n Node) error
	walkNames = func(n Node) error {
		var children []Node
		name := ""
		switch n := n.(type) {
		case *Transpose:
			children = []Node{n.X}
		case *Inverse:
			children = []Node{n.X}
		case *Product:
			children, name = n.Factors, n.Name
		case *Sum:
			children, name = n.Terms, n.Name
		}
		if name != "" {
			if err := checkOperandName(name, "node name"); err != nil {
				return fmt.Errorf("ir: definition %q: %w", d.Name, err)
			}
			if leafIDs[name] {
				return fmt.Errorf("ir: definition %q: node name %q collides with an input operand", d.Name, name)
			}
			if prev, ok := named[name]; ok && prev != n {
				return fmt.Errorf("ir: definition %q: node name %q used by two distinct nodes", d.Name, name)
			}
			named[name] = n
		}
		for _, c := range children {
			if err := walkNames(c); err != nil {
				return err
			}
		}
		return nil
	}
	return walkNames(d.Root)
}

// checkOperandName rejects empty names and names reserved for the
// output ("X") and generated temporaries ("M1", "M2", ...).
func checkOperandName(id, what string) error {
	if id == "" {
		return fmt.Errorf("unnamed %s", what)
	}
	if id == Output {
		return fmt.Errorf("%s %q collides with the output operand", what, id)
	}
	if len(id) > 1 && id[0] == 'M' {
		digits := true
		for _, c := range id[1:] {
			if c < '0' || c > '9' {
				digits = false
				break
			}
		}
		if digits {
			return fmt.Errorf("%s %q collides with generated temporary names", what, id)
		}
	}
	return nil
}

// ValidateInstance checks that inst is a well-formed instance of the
// definition: correct arity with positive sizes.
func (d *Def) ValidateInstance(inst Instance) error {
	if len(inst) != d.Arity {
		return fmt.Errorf("ir: %s instance %v has %d dims, want %d", d.Name, inst, len(inst), d.Arity)
	}
	for i, v := range inst {
		if v <= 0 {
			return fmt.Errorf("ir: %s instance %v has non-positive d%d", d.Name, inst, i)
		}
	}
	return nil
}
