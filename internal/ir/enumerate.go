package ir

import (
	"fmt"
	"sort"
	"strings"

	"lamb/internal/kernels"
)

// The enumerator derives every algorithm of a Def by recursive lowering:
// each tree node maps to the ordered list of its derivations ("plans"),
// and composite nodes combine child derivations deterministically. The
// rewrite rules are
//
//   - associative products: every multiplication order, by depth-first
//     contraction of adjacent factor pairs — finer-grained than
//     parenthesisations, matching the paper's algorithm numbering for
//     the chain (Figure 3);
//   - Gram products A·Aᵀ and Aᵀ·A: SYRK (half the FLOPs, triangular
//     result; the transposed read lowers to the kernel's TransA flag)
//     before GEMM;
//   - products with a symmetric left operand: SYMM before GEMM, with a
//     Tri2Full copy inserted whenever a triangle-only operand feeds a
//     full-storage read (the paper's AAᵀB Algorithm 2);
//   - SPD inverses in solve position: POTRF plus two TRSMs, with both
//     right-hand-side orderings (factor-then-RHS and RHS-then-factor —
//     identical FLOPs, different inter-kernel cache behaviour);
//   - common subexpressions: a factor node used twice in one product is
//     computed once and its result reused.
//
// Enumeration order is deterministic: choice points are visited outer
// to inner in the order listed above, which reproduces the paper's
// algorithm numbering for the pinned expressions.
//
// Lowering is entirely symbolic: dimensions stay Dim references, so one
// enumeration serves every instance of the expression. Binding a
// concrete instance (SymbolicSet.Bind) is a substitution pass.

// value describes one operand available during lowering: an input leaf
// (possibly read transposed) or a materialised intermediate. Dimensions
// are symbolic.
type value struct {
	id         string
	rows, cols Dim
	// sym marks a mathematically symmetric value; spd additionally
	// positive definite; tri means only the lower triangle is stored
	// (a SYRK result before any Tri2Full).
	sym, spd, tri bool
	// trans marks a transposed read of a leaf (lowered to kernel
	// transpose flags); rows/cols are post-transposition.
	trans bool
	leaf  bool
}

// render is the value's symbolic form in step names.
func (v value) render() string {
	if v.trans {
		return v.id + "ᵀ"
	}
	return v.id
}

// shapeEntry records one operand materialised by a plan.
type shapeEntry struct {
	id string
	sh SymShape
}

// plan is one derivation prefix: the ordered call skeletons emitted so
// far, their step names, the shapes of materialised operands, the number
// of M<i> temporaries consumed, and the value produced.
type plan struct {
	calls []SymCall
	steps []string
	local []shapeEntry
	temps int
	val   value
}

// then returns the concatenation p followed by q, producing q's value.
// Slices are freshly allocated so plans can be shared across branches.
func (p plan) then(q plan) plan {
	out := plan{
		calls: make([]SymCall, 0, len(p.calls)+len(q.calls)),
		steps: make([]string, 0, len(p.steps)+len(q.steps)),
		local: make([]shapeEntry, 0, len(p.local)+len(q.local)),
		temps: p.temps + q.temps,
		val:   q.val,
	}
	out.calls = append(append(out.calls, p.calls...), q.calls...)
	out.steps = append(append(out.steps, p.steps...), q.steps...)
	out.local = append(append(out.local, p.local...), q.local...)
	return out
}

// Symbolic call constructors, mirroring the kernels.New* constructors so
// binding reproduces their output exactly (dimension conventions
// included — SYRK's N≡M, SYMM's K≡M, the in-place aliases).

func symGemm(m, n, k Dim, a, b, c string, transA, transB bool) SymCall {
	return SymCall{Kind: kernels.Gemm, M: m, N: n, K: k, TransA: transA, TransB: transB, In: []string{a, b}, Out: c}
}

func symSyrk(m, k Dim, a, c string) SymCall {
	return SymCall{Kind: kernels.Syrk, M: m, N: m, K: k, In: []string{a}, Out: c}
}

func symSyrkT(m, k Dim, a, c string) SymCall {
	return SymCall{Kind: kernels.Syrk, M: m, N: m, K: k, TransA: true, In: []string{a}, Out: c}
}

func symSymm(m, n Dim, a, b, c string) SymCall {
	return SymCall{Kind: kernels.Symm, M: m, N: n, K: m, In: []string{a, b}, Out: c}
}

func symTri2Full(m Dim, c string) SymCall {
	return SymCall{Kind: kernels.Tri2Full, M: m, N: m, K: NoDim, In: []string{c}, Out: c}
}

func symPotrf(m Dim, s string) SymCall {
	return SymCall{Kind: kernels.Potrf, M: m, N: m, K: NoDim, In: []string{s}, Out: s}
}

func symTrsm(m, n Dim, l, b string, trans bool) SymCall {
	return SymCall{Kind: kernels.Trsm, M: m, N: n, K: NoDim, TransA: trans, In: []string{l, b}, Out: b}
}

func symAddSym(m Dim, c, a string) SymCall {
	return SymCall{Kind: kernels.AddSym, M: m, N: m, K: NoDim, In: []string{c, a}, Out: c}
}

// enum carries the per-enumeration state.
type enum struct {
	def *Def
}

// leafValue returns the value of a leaf node (an operand or a
// transposed operand). Transposing a symmetric operand is the identity.
func (e *enum) leafValue(n Node) (value, error) {
	switch n := n.(type) {
	case *Operand:
		return value{
			id:   n.ID,
			rows: n.RowDim, cols: n.ColDim,
			sym: n.Props.Has(Symmetric), spd: n.Props.Has(SPD), tri: n.Props.Has(LowerTri),
			leaf: true,
		}, nil
	case *Transpose:
		op, ok := n.X.(*Operand)
		if !ok {
			return value{}, fmt.Errorf("ir: transpose of computed subexpression %s is outside the supported fragment", n.X.render())
		}
		v, err := e.leafValue(op)
		if err != nil {
			return value{}, err
		}
		if v.sym {
			return v, nil
		}
		v.rows, v.cols = v.cols, v.rows
		v.trans = true
		return v, nil
	default:
		return value{}, fmt.Errorf("ir: %s is not a leaf", n.render())
	}
}

func isLeaf(n Node) bool {
	switch n := n.(type) {
	case *Operand:
		return true
	case *Transpose:
		_, ok := n.X.(*Operand)
		return ok
	}
	return false
}

// nodeName returns the explicit result name of a node, if any.
func nodeName(n Node) string {
	switch n := n.(type) {
	case *Product:
		return n.Name
	case *Sum:
		return n.Name
	}
	return ""
}

func tempName(i int) string { return fmt.Sprintf("M%d", i) }

// step renders one product step: "out:=kernel(L·R)" in kernel style,
// "out:=L·R" in bare style.
func (e *enum) step(out, kernel string, l, r value) string {
	prod := l.render() + "·" + r.render()
	if e.def.Style == StyleBare {
		return out + ":=" + prod
	}
	return out + ":=" + kernel + "(" + prod + ")"
}

// lower enumerates the derivations of node n. A non-empty dest requires
// the result to be materialised in the operand named dest; leaves
// therefore reject it (there is no copy kernel).
func (e *enum) lower(n Node, dest string, nextTemp int) ([]plan, error) {
	switch n := n.(type) {
	case *Operand, *Transpose:
		v, err := e.leafValue(n)
		if err != nil {
			return nil, err
		}
		if dest != "" {
			return nil, fmt.Errorf("ir: cannot materialise input %s into %q (no copy kernel)", n.render(), dest)
		}
		return []plan{{val: v}}, nil
	case *Product:
		if len(n.Factors) == 0 {
			return nil, fmt.Errorf("ir: empty product")
		}
		if inv, ok := n.Factors[0].(*Inverse); len(n.Factors) == 2 && ok {
			if !n.Fixed {
				return nil, fmt.Errorf("ir: solve form %s must be a fixed product (use Solve or MulFixed)", n.render())
			}
			return e.lowerSolve(inv, n.Factors[1], dest, nextTemp)
		}
		for _, f := range n.Factors {
			if _, ok := f.(*Inverse); ok {
				return nil, fmt.Errorf("ir: inverse in %s must be the left factor of a two-factor fixed product", n.render())
			}
		}
		return e.lowerProduct(n, dest, nextTemp)
	case *Sum:
		return e.lowerSum(n, dest, nextTemp)
	case *Inverse:
		return nil, fmt.Errorf("ir: inverse %s outside solve position (inverses are never materialised)", n.render())
	default:
		return nil, fmt.Errorf("ir: unknown node type %T", n)
	}
}

// factorsPlan pairs a prefix plan (computing every non-leaf factor) with
// the per-factor values.
type factorsPlan struct {
	pre  plan
	vals []value
}

// lowerFactors enumerates the ways to make every factor of a product
// available, computing non-leaf factors into named or temporary
// operands. A factor node occurring more than once is computed once and
// shared (common-subexpression sharing).
func (e *enum) lowerFactors(factors []Node, fixed bool, nextTemp int, shared map[Node]value) ([]factorsPlan, error) {
	if len(factors) == 0 {
		return []factorsPlan{{}}, nil
	}
	f, rest := factors[0], factors[1:]

	// Enumerate the head's alternatives.
	var heads []plan
	switch {
	case isLeaf(f):
		v, err := e.leafValue(f)
		if err != nil {
			return nil, err
		}
		heads = []plan{{val: v}}
	default:
		if v, ok := shared[f]; ok {
			// Shared subexpression: already computed on this branch.
			heads = []plan{{val: v}}
			break
		}
		if !fixed {
			return nil, fmt.Errorf("ir: computed factor %s requires a fixed product (re-association across computed factors is unsupported)", f.render())
		}
		target := nodeName(f)
		extra := 0
		if target == "" {
			target = tempName(nextTemp)
			extra = 1
		}
		sub, err := e.lower(f, target, nextTemp+extra)
		if err != nil {
			return nil, err
		}
		heads = make([]plan, len(sub))
		for i, sp := range sub {
			sp.temps += extra
			heads[i] = sp
		}
	}

	var out []factorsPlan
	for _, h := range heads {
		sh := shared
		if !isLeaf(f) {
			sh = make(map[Node]value, len(shared)+1)
			for k, v := range shared {
				sh[k] = v
			}
			sh[f] = h.val
		}
		tails, err := e.lowerFactors(rest, fixed, nextTemp+h.temps, sh)
		if err != nil {
			return nil, err
		}
		for _, t := range tails {
			out = append(out, factorsPlan{
				pre:  h.then(t.pre),
				vals: append([]value{h.val}, t.vals...),
			})
		}
	}
	// h.then(t.pre) replaces the value; restore per-factor values above.
	for i := range out {
		out[i].pre.val = value{}
	}
	return out, nil
}

// lowerProduct enumerates a product without inverses: factors first,
// then every contraction order (or only left-to-right if Fixed) with
// every kernel choice per pairwise product.
func (e *enum) lowerProduct(p *Product, dest string, nextTemp int) ([]plan, error) {
	if len(p.Factors) == 0 {
		return nil, fmt.Errorf("ir: empty product")
	}
	if dest == "" && p.Name != "" {
		dest = p.Name
	}
	fps, err := e.lowerFactors(p.Factors, p.Fixed, nextTemp, nil)
	if err != nil {
		return nil, err
	}
	var out []plan
	for _, fp := range fps {
		cps, err := e.contract(fp.vals, p.Fixed, dest, nextTemp+fp.pre.temps)
		if err != nil {
			return nil, err
		}
		for _, cp := range cps {
			out = append(out, fp.pre.then(cp))
		}
	}
	return out, nil
}

// contract enumerates the multiplication orders of the segments by
// depth-first contraction of adjacent pairs, writing the final product
// into dest.
func (e *enum) contract(segs []value, fixed bool, dest string, nextTemp int) ([]plan, error) {
	if len(segs) == 1 {
		v := segs[0]
		if dest != "" && v.id != dest {
			return nil, fmt.Errorf("ir: single-factor product %s cannot be renamed to %q", v.render(), dest)
		}
		return []plan{{val: v}}, nil
	}
	last := len(segs) == 2
	pairs := len(segs) - 1
	if fixed {
		pairs = 1
	}
	var out []plan
	for p := 0; p < pairs; p++ {
		outID := dest
		extra := 0
		if !last || outID == "" {
			outID = tempName(nextTemp)
			extra = 1
		}
		pps, err := e.pairPlans(segs[p], segs[p+1], outID)
		if err != nil {
			return nil, err
		}
		for _, pp := range pps {
			pp.temps += extra
			merged := make([]value, 0, len(segs)-1)
			merged = append(merged, segs[:p]...)
			merged = append(merged, pp.val)
			merged = append(merged, segs[p+2:]...)
			rests, err := e.contract(merged, fixed, dest, nextTemp+extra)
			if err != nil {
				return nil, err
			}
			for _, rp := range rests {
				out = append(out, pp.then(rp))
			}
		}
	}
	return out, nil
}

// tri2full returns the plan fragment mirroring a triangle-only operand
// to full storage ahead of a full-storage read. Inputs are rejected:
// mirroring mutates the operand in place, which must not happen to
// caller-owned data.
func tri2full(v value) (plan, error) {
	if v.leaf {
		return plan{}, fmt.Errorf("ir: triangle-stored input %q cannot feed a full-storage kernel (the Tri2Full copy would mutate the input)", v.id)
	}
	return plan{
		calls: []SymCall{symTri2Full(v.rows, v.id)},
		steps: []string{"tri2full(" + v.id + ")"},
	}, nil
}

// pairPlans enumerates the kernel choices for the pairwise product
// out := l · r. Choice order (most structure-exploiting first) fixes
// the algorithm numbering.
func (e *enum) pairPlans(l, r value, out string) ([]plan, error) {
	if l.cols != r.rows {
		return nil, fmt.Errorf("ir: product %s·%s has mismatched inner dimensions %s and %s",
			l.render(), r.render(), l.cols.render(), r.rows.render())
	}
	m, n, k := l.rows, r.cols, l.cols
	outShape := shapeEntry{id: out, sh: SymShape{Rows: m, Cols: n}}
	gemmVal := value{id: out, rows: m, cols: n}

	// Gram product A·Aᵀ: SYRK (triangular result) or GEMM; both yield a
	// symmetric value.
	if l.leaf && r.leaf && l.id == r.id && !l.trans && r.trans {
		symVal := value{id: out, rows: m, cols: m, sym: true}
		syrk := plan{
			calls: []SymCall{symSyrk(m, k, l.id, out)},
			steps: []string{e.step(out, "syrk", l, r)},
			local: []shapeEntry{outShape},
			val:   symVal,
		}
		syrk.val.tri = true
		gemm := plan{
			calls: []SymCall{symGemm(m, m, k, l.id, r.id, out, false, true)},
			steps: []string{e.step(out, "gemm", l, r)},
			local: []shapeEntry{outShape},
			val:   symVal,
		}
		return []plan{syrk, gemm}, nil
	}

	// Gram product Aᵀ·A: the transposed-SYRK rewrite (dsyrk trans='T'),
	// then GEMM — the mirror image of the A·Aᵀ case.
	if l.leaf && r.leaf && l.id == r.id && l.trans && !r.trans {
		symVal := value{id: out, rows: m, cols: m, sym: true}
		syrk := plan{
			calls: []SymCall{symSyrkT(m, k, l.id, out)},
			steps: []string{e.step(out, "syrk", l, r)},
			local: []shapeEntry{outShape},
			val:   symVal,
		}
		syrk.val.tri = true
		gemm := plan{
			calls: []SymCall{symGemm(m, m, k, l.id, r.id, out, true, false)},
			steps: []string{e.step(out, "gemm", l, r)},
			local: []shapeEntry{outShape},
			val:   symVal,
		}
		return []plan{syrk, gemm}, nil
	}

	// Symmetric left operand: SYMM (reads the lower triangle, so a
	// triangle-only left operand needs no copy) before GEMM (reads full
	// storage, so triangle-only operands are mirrored first).
	if l.sym && !l.trans {
		var out2 []plan
		if !r.trans { // SYMM has no transposed-B read
			symm := plan{
				calls: []SymCall{symSymm(m, n, l.id, r.id, out)},
				steps: []string{e.step(out, "symm", l, r)},
				local: []shapeEntry{outShape},
				val:   gemmVal,
			}
			if r.tri {
				mirror, err := tri2full(r)
				if err != nil {
					return nil, err
				}
				symm = mirror.then(symm)
			}
			out2 = append(out2, symm)
		}
		gemm, err := e.gemmPlan(l, r, out, false)
		if err != nil {
			return nil, err
		}
		return append(out2, gemm), nil
	}

	// General (or symmetric-right: the kernel set has no right-sided
	// SYMM): GEMM with transpose flags, mirroring triangle-only
	// operands first.
	gemm, err := e.gemmPlan(l, r, out, l.trans)
	if err != nil {
		return nil, err
	}
	return []plan{gemm}, nil
}

// gemmPlan builds the GEMM choice for out := l·r, mirroring any
// triangle-only operand to full storage first.
func (e *enum) gemmPlan(l, r value, out string, transA bool) (plan, error) {
	m, n, k := l.rows, r.cols, l.cols
	gemm := plan{
		calls: []SymCall{symGemm(m, n, k, l.id, r.id, out, transA, r.trans)},
		steps: []string{e.step(out, "gemm", l, r)},
		local: []shapeEntry{shapeEntry{id: out, sh: SymShape{Rows: m, Cols: n}}},
		val:   value{id: out, rows: m, cols: n},
	}
	if r.tri && r.id != l.id {
		mirror, err := tri2full(r)
		if err != nil {
			return plan{}, err
		}
		gemm = mirror.then(gemm)
	}
	if l.tri {
		mirror, err := tri2full(l)
		if err != nil {
			return plan{}, err
		}
		gemm = mirror.then(gemm)
	}
	return gemm, nil
}

// lowerSum lowers the in-place accumulation S := computed + leaf: the
// computed term is evaluated into the sum's name, then the leaf is
// added with AddSym.
func (e *enum) lowerSum(s *Sum, dest string, nextTemp int) ([]plan, error) {
	if s.Name == "" {
		return nil, fmt.Errorf("ir: sum %s needs a Name for its accumulator", s.render())
	}
	if dest != "" && dest != s.Name {
		return nil, fmt.Errorf("ir: sum %q cannot be materialised into %q", s.Name, dest)
	}
	if len(s.Terms) != 2 {
		return nil, fmt.Errorf("ir: sum %s must have exactly 2 terms, has %d", s.render(), len(s.Terms))
	}
	var leafOp *Operand
	var comp Node
	for _, t := range s.Terms {
		if o, ok := t.(*Operand); ok && leafOp == nil {
			leafOp = o
		} else {
			comp = t
		}
	}
	if leafOp == nil {
		return nil, fmt.Errorf("ir: sum %s needs one leaf term to accumulate in place", s.render())
	}
	if isLeaf(comp) {
		return nil, fmt.Errorf("ir: sum %s needs one computed term (two-input sums have no kernel)", s.render())
	}
	if !leafOp.Props.Has(Symmetric) {
		return nil, fmt.Errorf("ir: sum leaf %q must be symmetric (AddSym accumulates triangles)", leafOp.ID)
	}
	plans, err := e.lower(comp, s.Name, nextTemp)
	if err != nil {
		return nil, err
	}
	out := make([]plan, 0, len(plans))
	for _, p := range plans {
		v := p.val
		if !v.sym {
			return nil, fmt.Errorf("ir: sum %q computed term %s is not symmetric", s.Name, comp.render())
		}
		if v.rows != v.cols || v.rows != leafOp.RowDim {
			return nil, fmt.Errorf("ir: sum %q terms have mismatched shapes %sx%s and %sx%s",
				s.Name, v.rows.render(), v.cols.render(), leafOp.RowDim.render(), leafOp.ColDim.render())
		}
		add := plan{
			calls: []SymCall{symAddSym(v.rows, s.Name, leafOp.ID)},
			steps: []string{s.Name + "+=" + leafOp.ID},
		}
		np := p.then(add)
		// AddSym accumulates the lower triangle only, so the sum is
		// triangle-only storage regardless of how the computed term was
		// produced: a full-storage consumer needs the Tri2Full mirror.
		np.val = value{
			id: s.Name, rows: v.rows, cols: v.cols,
			sym: true, spd: leafOp.Props.Has(SPD), tri: true,
		}
		out = append(out, np)
	}
	return out, nil
}

// lowerSolve lowers X := inv(S)·rhs for SPD S: the S pipeline plus a
// Cholesky factorisation, the right-hand side computed into dest, and
// two triangular solves in place — in both orderings of the two
// independent pipelines (the paper's Algorithm 2-versus-5 distinction:
// identical FLOPs, different inter-kernel cache behaviour).
func (e *enum) lowerSolve(inv *Inverse, rhs Node, dest string, nextTemp int) ([]plan, error) {
	if dest == "" {
		return nil, fmt.Errorf("ir: solve %s·%s needs a destination operand", inv.render(), rhs.render())
	}
	if isLeaf(rhs) {
		return nil, fmt.Errorf("ir: solve right-hand side %s must be computed (an in-place solve would overwrite an input)", rhs.render())
	}
	sPlans, err := e.lower(inv.X, "", nextTemp)
	if err != nil {
		return nil, err
	}
	pPlans, err := e.lower(rhs, dest, nextTemp)
	if err != nil {
		return nil, err
	}
	var out []plan
	for _, sp := range sPlans {
		sv := sp.val
		if sv.leaf {
			return nil, fmt.Errorf("ir: inverse of input %q would factor it in place; wrap it in a named sum or product", sv.id)
		}
		if sp.temps > 0 {
			return nil, fmt.Errorf("ir: inverse operand pipeline %s must use named operands only", inv.X.render())
		}
		if !sv.spd {
			return nil, fmt.Errorf("ir: inverse of %s needs an SPD operand (only Cholesky lowering is supported)", inv.X.render())
		}
		chol := sp.then(plan{
			calls: []SymCall{symPotrf(sv.rows, sv.id)},
			steps: []string{"L:=potrf(" + sv.id + ")"},
		})
		for _, pp := range pPlans {
			pv := pp.val
			if pv.id != dest {
				return nil, fmt.Errorf("ir: solve right-hand side did not materialise %q", dest)
			}
			if sv.rows != pv.rows {
				return nil, fmt.Errorf("ir: solve %s·%s has mismatched dimensions %s and %s",
					inv.render(), rhs.render(), sv.rows.render(), pv.rows.render())
			}
			solves := plan{
				calls: []SymCall{
					symTrsm(sv.rows, pv.cols, sv.id, dest, false),
					symTrsm(sv.rows, pv.cols, sv.id, dest, true),
				},
				steps: []string{"trsm(L)", "trsm(Lᵀ)"},
			}
			for _, sFirst := range []bool{true, false} {
				pre := chol.then(pp)
				if !sFirst {
					pre = pp.then(chol)
				}
				fin := pre.then(solves)
				fin.val = value{id: dest, rows: sv.rows, cols: pv.cols}
				out = append(out, fin)
			}
		}
	}
	return out, nil
}

// EnumerateSymbolic generates the complete symbolic algorithm set of the
// definition: every derivation the rewrite rules produce, lowered to
// call skeletons, named, shape-checked, and numbered in enumeration
// order. Enumeration is instance-independent and runs once per
// expression; Bind resolves the set against concrete instances.
func EnumerateSymbolic(def *Def) (*SymbolicSet, error) {
	if err := def.Validate(); err != nil {
		return nil, err
	}
	enumerations.Add(1)
	ls, err := leaves(def.Root)
	if err != nil {
		return nil, err
	}
	e := &enum{def: def}
	plans, err := e.lower(def.Root, Output, 1)
	if err != nil {
		return nil, err
	}

	leafShapes := make(map[string]SymShape, len(ls))
	inputs := make([]string, 0, len(ls))
	var spd []string
	for _, l := range ls {
		leafShapes[l.ID] = SymShape{Rows: l.RowDim, Cols: l.ColDim}
		inputs = append(inputs, l.ID)
		if l.Props.Has(SPD) {
			spd = append(spd, l.ID)
		}
	}
	sort.Strings(inputs)
	sort.Strings(spd)

	algs := make([]SymAlgorithm, len(plans))
	for i, p := range plans {
		if p.val.id != Output {
			return nil, fmt.Errorf("ir: %s derivation %d did not produce %q", def.Name, i+1, Output)
		}
		shapes := make(map[string]SymShape, len(leafShapes)+len(p.local))
		for id, sh := range leafShapes {
			shapes[id] = sh
		}
		for _, en := range p.local {
			if prev, ok := shapes[en.id]; ok && prev != en.sh {
				return nil, fmt.Errorf("ir: %s materialises %q with conflicting shapes %v and %v",
					def.Name, en.id, prev, en.sh)
			}
			shapes[en.id] = en.sh
		}
		var spdIn []string
		if len(spd) > 0 {
			spdIn = append([]string(nil), spd...)
		}
		algs[i] = SymAlgorithm{
			Index:     i + 1,
			Name:      strings.Join(p.steps, "; "),
			Calls:     p.calls,
			Shapes:    shapes,
			Inputs:    append([]string(nil), inputs...),
			SPDInputs: spdIn,
			Output:    Output,
		}
		if err := algs[i].validate(); err != nil {
			return nil, fmt.Errorf("ir: %s: %w", def.Name, err)
		}
	}
	return &SymbolicSet{def: def, algs: algs}, nil
}

// MustEnumerateSymbolic is EnumerateSymbolic panicking on error; the
// built-in expression builders use it with definitions that are tested
// to be valid.
func MustEnumerateSymbolic(def *Def) *SymbolicSet {
	set, err := EnumerateSymbolic(def)
	if err != nil {
		panic(err)
	}
	return set
}

// Enumerate generates the complete algorithm set of the definition for
// one instance: a symbolic enumeration followed by a bind. Callers that
// evaluate many instances of one expression should enumerate once with
// EnumerateSymbolic and bind per instance instead.
func Enumerate(def *Def, inst Instance) ([]Algorithm, error) {
	set, err := EnumerateSymbolic(def)
	if err != nil {
		return nil, err
	}
	return set.Bind(inst)
}

// MustEnumerate is Enumerate panicking on error; expression builders
// use it after validating the instance themselves.
func MustEnumerate(def *Def, inst Instance) []Algorithm {
	algs, err := Enumerate(def, inst)
	if err != nil {
		panic(err)
	}
	return algs
}
