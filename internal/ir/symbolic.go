package ir

import (
	"fmt"
	"sync/atomic"

	"lamb/internal/kernels"
)

// This file defines the symbolic algorithm representation: the output of
// the enumerator before any instance is known. Enumeration is purely
// structural — which rewrites apply, which kernels run, which operands
// flow where — so it is performed once per expression and the result is
// reused for every instance. A SymbolicSet holds call skeletons whose
// dimensions are Dim references and whose FLOP counts are therefore
// polynomials in the instance dimensions; Bind substitutes a concrete
// instance in a single cheap pass. The engine (lamb/internal/engine)
// builds its caching layers on exactly this split.

// NoDim marks a call dimension that is the constant zero rather than a
// reference into the instance (e.g. the unused K of Tri2Full).
const NoDim Dim = -1

// bindDim resolves a symbolic dimension against an instance.
func bindDim(d Dim, inst Instance) int {
	if d == NoDim {
		return 0
	}
	return inst[d]
}

// render names the dimension for error messages ("d0", "d1", ...).
func (d Dim) render() string {
	if d == NoDim {
		return "0"
	}
	return fmt.Sprintf("d%d", int(d))
}

// SymShape is a symbolic operand shape: Dim references instead of sizes.
type SymShape struct {
	Rows, Cols Dim
}

// Bind resolves the shape against an instance.
func (s SymShape) Bind(inst Instance) Shape {
	return Shape{Rows: bindDim(s.Rows, inst), Cols: bindDim(s.Cols, inst)}
}

// SymCall is a call skeleton: a kernels.Call whose dimensions are still
// symbolic. Binding an instance yields exactly the Call the concrete
// enumerator used to build directly.
type SymCall struct {
	Kind           kernels.Kind
	M, N, K        Dim
	TransA, TransB bool
	In             []string
	Out            string
}

// Bind substitutes the instance dimensions, producing a concrete call.
// The operand ID slice is copied so bound algorithms never alias the
// shared symbolic set.
func (c SymCall) Bind(inst Instance) kernels.Call {
	return kernels.Call{
		Kind:   c.Kind,
		M:      bindDim(c.M, inst),
		N:      bindDim(c.N, inst),
		K:      bindDim(c.K, inst),
		TransA: c.TransA,
		TransB: c.TransB,
		In:     append([]string(nil), c.In...),
		Out:    c.Out,
	}
}

// Flops evaluates the call's FLOP polynomial at the instance without
// materialising the bound call's operand slices.
func (c SymCall) Flops(inst Instance) float64 {
	bound := kernels.Call{
		Kind: c.Kind,
		M:    bindDim(c.M, inst),
		N:    bindDim(c.N, inst),
		K:    bindDim(c.K, inst),
	}
	return bound.Flops()
}

// SymAlgorithm is one symbolic derivation: the instance-independent part
// of an Algorithm. Index, Name, operand naming, and call structure are
// fixed at enumeration time; only the dimensions await binding.
type SymAlgorithm struct {
	Index     int
	Name      string
	Calls     []SymCall
	Shapes    map[string]SymShape
	Inputs    []string
	SPDInputs []string
	Output    string
}

// Bind resolves the algorithm against an instance. All slices and maps
// are freshly allocated: bound algorithms from the same symbolic set
// share nothing mutable.
func (a *SymAlgorithm) Bind(inst Instance) Algorithm {
	calls := make([]kernels.Call, len(a.Calls))
	for i, c := range a.Calls {
		calls[i] = c.Bind(inst)
	}
	shapes := make(map[string]Shape, len(a.Shapes))
	for id, sh := range a.Shapes {
		shapes[id] = sh.Bind(inst)
	}
	var spd []string
	if len(a.SPDInputs) > 0 {
		spd = append([]string(nil), a.SPDInputs...)
	}
	return Algorithm{
		Index:     a.Index,
		Name:      a.Name,
		Calls:     calls,
		Shapes:    shapes,
		Inputs:    append([]string(nil), a.Inputs...),
		SPDInputs: spd,
		Output:    a.Output,
	}
}

// Flops evaluates the algorithm's total FLOP polynomial at the instance.
func (a *SymAlgorithm) Flops(inst Instance) float64 {
	var s float64
	for _, c := range a.Calls {
		s += c.Flops(inst)
	}
	return s
}

// validate checks the symbolic algorithm's internal consistency: every
// operand mentioned has a shape and every call writes its output at the
// output's symbolic shape. Because instance dimensions are always
// positive, symbolic consistency implies Algorithm.Validate passes for
// every well-formed instance — which is what lets Bind skip per-instance
// validation.
func (a *SymAlgorithm) validate() error {
	if len(a.Calls) == 0 {
		return fmt.Errorf("ir: algorithm %q has no calls", a.Name)
	}
	for i, c := range a.Calls {
		ids := append([]string{c.Out}, c.In...)
		for _, id := range ids {
			if _, ok := a.Shapes[id]; !ok {
				return fmt.Errorf("ir: algorithm %q call %d references unknown operand %q", a.Name, i, id)
			}
		}
		out := a.Shapes[c.Out]
		if out.Rows != c.M || out.Cols != c.N {
			return fmt.Errorf("ir: algorithm %q call %d output %q is %sx%s, call writes %sx%s",
				a.Name, i, c.Out, out.Rows.render(), out.Cols.render(), c.M.render(), c.N.render())
		}
	}
	if _, ok := a.Shapes[a.Output]; !ok {
		return fmt.Errorf("ir: algorithm %q output %q has no shape", a.Name, a.Output)
	}
	return nil
}

// SymbolicSet is the complete enumerated algorithm set of a definition,
// independent of any instance. It is immutable after construction and
// safe for concurrent Bind calls.
type SymbolicSet struct {
	def  *Def
	algs []SymAlgorithm
}

// Def returns the definition the set was enumerated from.
func (s *SymbolicSet) Def() *Def { return s.def }

// Len returns the number of algorithms in the set.
func (s *SymbolicSet) Len() int { return len(s.algs) }

// At returns the i-th symbolic algorithm (0-based slice order; its Index
// field carries the paper's 1-based numbering).
func (s *SymbolicSet) At(i int) *SymAlgorithm { return &s.algs[i] }

// Bind resolves the whole set against an instance, validating the
// instance first. The returned slice and everything it references are
// freshly allocated.
func (s *SymbolicSet) Bind(inst Instance) ([]Algorithm, error) {
	if err := s.def.ValidateInstance(inst); err != nil {
		return nil, err
	}
	out := make([]Algorithm, len(s.algs))
	for i := range s.algs {
		out[i] = s.algs[i].Bind(inst)
	}
	return out, nil
}

// MustBind is Bind panicking on error; callers that validated the
// instance themselves use it.
func (s *SymbolicSet) MustBind(inst Instance) []Algorithm {
	algs, err := s.Bind(inst)
	if err != nil {
		panic(err)
	}
	return algs
}

// enumerations counts EnumerateSymbolic runs process-wide. Cache tests
// use it to assert that repeated queries do not re-enumerate.
var enumerations atomic.Uint64

// Enumerations returns the number of symbolic enumerations performed by
// this process so far.
func Enumerations() uint64 { return enumerations.Load() }
