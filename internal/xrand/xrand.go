// Package xrand provides small deterministic random-number utilities used
// throughout the experiment drivers.
//
// All experiments in this repository are seeded so that every table and
// figure regenerates bit-identically. The package wraps a SplitMix64
// generator (Steele et al., "Fast splittable pseudorandom number
// generators") which is tiny, fast, and makes derived sub-streams cheap:
// each experiment derives an independent stream from a master seed and a
// label, so adding a new experiment never perturbs existing ones.
package xrand

import (
	"math"
	"math/bits"
)

// Rand is a deterministic SplitMix64 pseudorandom generator.
// The zero value is a valid generator seeded with 0.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand { return &Rand{state: seed} }

// NewLabeled returns a generator whose stream is derived from seed and a
// textual label. Distinct labels yield independent streams.
func NewLabeled(seed uint64, label string) *Rand {
	h := seed
	for _, b := range []byte(label) {
		h ^= uint64(b)
		h *= 0x100000001b3 // FNV-1a prime
	}
	return &Rand{state: mix(h)}
}

// Split derives a new independent generator from r, advancing r once.
func (r *Rand) Split() *Rand { return &Rand{state: mix(r.Uint64())} }

// Uint64 returns the next 64 pseudorandom bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix(r.state)
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	// Lemire's nearly-divisionless bounded sampling.
	v := r.Uint64()
	hi, lo := bits.Mul64(v, uint64(n))
	if lo < uint64(n) {
		thresh := uint64(-n) % uint64(n)
		for lo < thresh {
			v = r.Uint64()
			hi, lo = bits.Mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// IntRange returns a uniform integer in [lo, hi] inclusive.
func (r *Rand) IntRange(lo, hi int) int {
	if hi < lo {
		panic("xrand: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Hash64 deterministically mixes a sequence of integers into a 64-bit
// hash. It is used for reproducible pseudo-noise keyed on kernel shapes.
func Hash64(xs ...uint64) uint64 {
	h := uint64(0x51_7c_c1_b7_27_22_0a_95)
	for _, x := range xs {
		h ^= mix(x)
		h = bits.RotateLeft64(h, 27) * 0x9e3779b97f4a7c15
	}
	return mix(h)
}

// UnitFromHash maps a 64-bit hash to a float64 in [0, 1).
func UnitFromHash(h uint64) float64 { return float64(h>>11) / (1 << 53) }
