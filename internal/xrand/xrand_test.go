package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between distinct seeds", same)
	}
}

func TestNewLabeledIndependence(t *testing.T) {
	a := NewLabeled(7, "exp1")
	b := NewLabeled(7, "exp2")
	if a.Uint64() == b.Uint64() {
		t.Fatal("labels produced identical streams")
	}
	c := NewLabeled(7, "exp1")
	a2 := NewLabeled(7, "exp1")
	if c.Uint64() != a2.Uint64() {
		t.Fatal("same label not reproducible")
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(9)
	s1 := r.Split()
	s2 := r.Split()
	if s1.Uint64() == s2.Uint64() {
		t.Fatal("consecutive splits identical")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	counts := make([]int, 7)
	for i := 0; i < 7000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("Intn(7) heavily skewed: value %d count %d", v, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntRangeInclusive(t *testing.T) {
	r := New(11)
	sawLo, sawHi := false, false
	for i := 0; i < 2000; i++ {
		v := r.IntRange(3, 8)
		if v < 3 || v > 8 {
			t.Fatalf("IntRange(3,8) = %d", v)
		}
		if v == 3 {
			sawLo = true
		}
		if v == 8 {
			sawHi = true
		}
	}
	if !sawLo || !sawHi {
		t.Fatal("IntRange never hit an endpoint")
	}
	if got := r.IntRange(5, 5); got != 5 {
		t.Fatalf("IntRange(5,5) = %d", got)
	}
}

func TestIntRangePanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntRange(2,1) did not panic")
		}
	}()
	New(1).IntRange(2, 1)
}

func TestFloat64Range(t *testing.T) {
	r := New(13)
	var sum float64
	const n = 10000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(17)
	var sum, sumSq float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Fatalf("normal variance = %v", variance)
	}
}

func TestHash64Properties(t *testing.T) {
	if Hash64(1, 2) == Hash64(2, 1) {
		t.Fatal("Hash64 order-insensitive")
	}
	if Hash64(1, 2) != Hash64(1, 2) {
		t.Fatal("Hash64 not deterministic")
	}
	if Hash64() == Hash64(0) {
		t.Fatal("Hash64 arity-insensitive")
	}
}

func TestUnitFromHashRange(t *testing.T) {
	f := func(h uint64) bool {
		v := UnitFromHash(h)
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
