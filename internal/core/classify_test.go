package core

import (
	"math"
	"testing"
	"testing/quick"

	"lamb/internal/exec"
	"lamb/internal/expr"
	"lamb/internal/xrand"
)

func TestClassifyNoAnomalyWhenCheapestIsFastest(t *testing.T) {
	c := Classify([]float64{10, 20, 30}, []float64{1.0, 1.5, 2.0}, 0.10)
	if c.Anomaly {
		t.Fatal("cheapest==fastest should not be an anomaly")
	}
	if c.TimeScore != 0 || c.FlopScore != 0 {
		t.Fatalf("scores should be 0, got time %v flop %v", c.TimeScore, c.FlopScore)
	}
	if len(c.CheapestSet) != 1 || c.CheapestSet[0] != 0 {
		t.Fatalf("cheapest set %v", c.CheapestSet)
	}
	if len(c.FastestSet) != 1 || c.FastestSet[0] != 0 {
		t.Fatalf("fastest set %v", c.FastestSet)
	}
}

func TestClassifyAnomalyScores(t *testing.T) {
	// Algorithm 0 is cheapest (10 flops) but slow (2s); algorithm 1 does
	// 45% more flops... actually 100% more here: scores check exactly.
	flops := []float64{10, 20}
	times := []float64{2.0, 1.2}
	c := Classify(flops, times, 0.10)
	if !c.Anomaly {
		t.Fatal("should be an anomaly")
	}
	if want := (2.0 - 1.2) / 2.0; math.Abs(c.TimeScore-want) > 1e-15 {
		t.Fatalf("time score %v, want %v", c.TimeScore, want)
	}
	if want := (20.0 - 10.0) / 20.0; math.Abs(c.FlopScore-want) > 1e-15 {
		t.Fatalf("flop score %v, want %v", c.FlopScore, want)
	}
}

func TestClassifyThresholdBoundary(t *testing.T) {
	flops := []float64{10, 20}
	// Time score exactly 0.10: the paper requires a score *above* the
	// threshold.
	c := Classify(flops, []float64{1.0, 0.9}, 0.10)
	if c.Anomaly {
		t.Fatal("score == threshold must not classify as anomaly")
	}
	c = Classify(flops, []float64{1.0, 0.89}, 0.10)
	if !c.Anomaly {
		t.Fatal("score > threshold must classify as anomaly")
	}
}

func TestClassifyFlopTies(t *testing.T) {
	// Two cheapest algorithms (paper: chain algorithms 2 and 5 tie); the
	// faster of them defines T_cheapest.
	flops := []float64{10, 10, 30}
	times := []float64{3.0, 2.0, 1.0}
	c := Classify(flops, times, 0.05)
	if len(c.CheapestSet) != 2 {
		t.Fatalf("cheapest set %v", c.CheapestSet)
	}
	if want := (2.0 - 1.0) / 2.0; math.Abs(c.TimeScore-want) > 1e-15 {
		t.Fatalf("time score %v, want %v (uses best cheapest time)", c.TimeScore, want)
	}
}

func TestClassifyTimeTiesUseCheapestAmongFastest(t *testing.T) {
	// Two fastest algorithms with different FLOP counts: F_fastest is the
	// lower of the two.
	flops := []float64{10, 30, 20}
	times := []float64{2.0, 1.0, 1.0}
	c := Classify(flops, times, 0.05)
	if len(c.FastestSet) != 2 {
		t.Fatalf("fastest set %v", c.FastestSet)
	}
	if want := (20.0 - 10.0) / 20.0; math.Abs(c.FlopScore-want) > 1e-15 {
		t.Fatalf("flop score %v, want %v", c.FlopScore, want)
	}
}

func TestClassifyPanicsOnBadInput(t *testing.T) {
	for _, f := range []func(){
		func() { Classify(nil, nil, 0.1) },
		func() { Classify([]float64{1}, []float64{1, 2}, 0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			f()
		}()
	}
}

func TestClassifyScoreRangesProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := rng.IntRange(1, 8)
		flops := make([]float64, n)
		times := make([]float64, n)
		for i := range flops {
			flops[i] = float64(rng.IntRange(1, 1000))
			times[i] = rng.Float64() + 0.01
		}
		c := Classify(flops, times, 0.05)
		inRange := c.TimeScore >= 0 && c.TimeScore <= 1 && c.FlopScore >= 0 && c.FlopScore <= 1
		// Disjointness invariant: anomaly implies no index in both sets.
		if c.Anomaly {
			in := make(map[int]bool)
			for _, i := range c.CheapestSet {
				in[i] = true
			}
			for _, i := range c.FastestSet {
				if in[i] {
					return false
				}
			}
		}
		return inRange && len(c.CheapestSet) > 0 && len(c.FastestSet) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRunnerEvaluate(t *testing.T) {
	r := NewRunner(expr.NewAATB(), exec.NewTimer(exec.NewDefaultSimulated()), 0.10)
	res := r.Evaluate(expr.Instance{150, 80, 700})
	if len(res.Flops) != 5 || len(res.Times) != 5 || len(res.PerCall) != 5 {
		t.Fatalf("result sizes: %d flops, %d times, %d perCall", len(res.Flops), len(res.Times), len(res.PerCall))
	}
	for i := range res.Times {
		if res.Times[i] <= 0 {
			t.Fatalf("alg %d time %v", i+1, res.Times[i])
		}
	}
	// Algorithm 2 has 3 calls (syrk, tri2full, gemm); others 2.
	if len(res.PerCall[1]) != 3 {
		t.Fatalf("alg 2 per-call count %d", len(res.PerCall[1]))
	}
	// The result must not alias the input instance.
	inst := expr.Instance{150, 80, 700}
	res2 := r.Evaluate(inst)
	inst[0] = 9999
	if res2.Inst[0] == 9999 {
		t.Fatal("Evaluate must clone the instance")
	}
}
