package core

import (
	"testing"
	"testing/quick"

	"lamb/internal/exec"
	"lamb/internal/expr"
	"lamb/internal/xrand"
)

// referenceBoundary computes the region boundary along one direction by
// a direct transcription of the paper's prose, independent of the
// traversal implementation: walk from origin in steps, a run of endRun
// consecutive non-anomalies ends the region at the run's first
// coordinate; hitting the box edge makes the last in-box sample the
// boundary.
func referenceBoundary(anomalous func(int) bool, origin, step, dir, lo, hi, endRun int) int {
	run := 0
	firstOfRun := 0
	last := origin
	for x := 1; ; x++ {
		coord := origin + dir*step*x
		if coord < lo || coord > hi {
			return last
		}
		last = coord
		if anomalous(coord) {
			run = 0
			continue
		}
		if run == 0 {
			firstOfRun = coord
		}
		run++
		if run >= endRun {
			return firstOfRun
		}
	}
}

func TestExp2BoundariesMatchReferenceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		// Random anomaly pattern over d0: a union of 1–3 bands.
		type band struct{ lo, hi int }
		nBands := rng.IntRange(1, 3)
		bands := make([]band, nBands)
		for i := range bands {
			lo := rng.IntRange(20, 1100)
			bands[i] = band{lo: lo, hi: lo + rng.IntRange(0, 300)}
		}
		anomalous := func(d0 int) bool {
			for _, b := range bands {
				if d0 >= b.lo && d0 <= b.hi {
					return true
				}
			}
			return false
		}
		// Origin must be anomalous (Experiment 2 starts from anomalies).
		origin := bands[0].lo + (bands[0].hi-bands[0].lo)/2
		if origin > 1200 {
			origin = 1200
		}
		stub := &stubExecutor{anomalous: func(d0, d1, d2 int) bool { return anomalous(d0) }}
		r := NewRunner(expr.NewAATB(), &exec.Timer{Exec: stub, Reps: 1}, 0.05)
		box := expr.PaperBox(3)
		res := RunExp2(r, []expr.Instance{{origin, 500, 500}}, DefaultExp2Config(box))
		ln := res.Lines[0] // the d0 line
		wantHi := referenceBoundary(anomalous, origin, 10, +1, 20, 1200, 3)
		wantLo := referenceBoundary(anomalous, origin, 10, -1, 20, 1200, 3)
		return ln.BoundaryHi == wantHi && ln.BoundaryLo == wantLo &&
			ln.Thickness == max(wantHi-wantLo-1, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestExp2ParallelMatchesReferenceProperty(t *testing.T) {
	// The parallel driver must satisfy the same reference property.
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		lo := rng.IntRange(100, 900)
		hi := lo + rng.IntRange(10, 250)
		anomalous := func(d0 int) bool { return d0 >= lo && d0 <= hi }
		origin := (lo + hi) / 2
		stub := &stubExecutor{anomalous: func(d0, d1, d2 int) bool { return anomalous(d0) }}
		r := NewRunner(expr.NewAATB(), &exec.Timer{Exec: stub, Reps: 1}, 0.05)
		res := RunExp2Parallel(r, []expr.Instance{{origin, 400, 400}},
			DefaultExp2Config(expr.PaperBox(3)), 3)
		ln := res.Lines[0]
		wantHi := referenceBoundary(anomalous, origin, 10, +1, 20, 1200, 3)
		wantLo := referenceBoundary(anomalous, origin, 10, -1, 20, 1200, 3)
		return ln.BoundaryHi == wantHi && ln.BoundaryLo == wantLo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
