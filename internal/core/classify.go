// Package core implements the paper's primary contribution: the anomaly
// study. It classifies problem instances as anomalies (instances where no
// minimum-FLOP algorithm is among the fastest), quantifies anomaly
// severity with the paper's time and FLOP scores, and drives the three
// experiments — random search (Experiment 1), axis-aligned region
// traversal (Experiment 2), and prediction from isolated kernel
// benchmarks (Experiment 3).
package core

import (
	"fmt"

	"lamb/internal/exec"
	"lamb/internal/expr"
)

// Classification is the paper's §3.3 labelling of one instance.
type Classification struct {
	// CheapestSet holds the indices of the algorithms with the minimum
	// FLOP count (ties are exact: FLOP counts are integer-valued
	// formulas).
	CheapestSet []int
	// FastestSet holds the indices of the algorithms achieving the
	// minimum measured time (ties are exact float equality; in practice a
	// single index).
	FastestSet []int
	// TimeScore is (T_cheapest − T_fastest) / T_cheapest, where
	// T_cheapest is the best time among the cheapest algorithms. Zero
	// when a cheapest algorithm is fastest.
	TimeScore float64
	// FlopScore is (F_fastest − F_cheapest) / F_fastest, where F_fastest
	// is the lowest FLOP count among the fastest algorithms.
	FlopScore float64
	// Anomaly reports whether the instance is an anomaly at the
	// classification threshold: the cheapest and fastest sets are
	// disjoint and the time score exceeds the threshold.
	Anomaly bool
}

// Classify labels an instance from its per-algorithm FLOP counts and
// measured times, using the given time-score threshold (the paper uses
// 10% for Experiment 1 and 5% for Experiments 2 and 3).
func Classify(flops, times []float64, threshold float64) Classification {
	if len(flops) == 0 || len(flops) != len(times) {
		panic(fmt.Sprintf("core: classify with %d flop counts and %d times", len(flops), len(times)))
	}
	var c Classification
	minFlops, minTime := flops[0], times[0]
	for i := 1; i < len(flops); i++ {
		if flops[i] < minFlops {
			minFlops = flops[i]
		}
		if times[i] < minTime {
			minTime = times[i]
		}
	}
	tCheapest := -1.0
	fFastest := -1.0
	for i := range flops {
		if flops[i] == minFlops {
			c.CheapestSet = append(c.CheapestSet, i)
			if tCheapest < 0 || times[i] < tCheapest {
				tCheapest = times[i]
			}
		}
		if times[i] == minTime {
			c.FastestSet = append(c.FastestSet, i)
			if fFastest < 0 || flops[i] < fFastest {
				fFastest = flops[i]
			}
		}
	}
	if tCheapest > 0 {
		c.TimeScore = (tCheapest - minTime) / tCheapest
	}
	if fFastest > 0 {
		c.FlopScore = (fFastest - minFlops) / fFastest
	}
	c.Anomaly = c.TimeScore > threshold
	return c
}

// InstanceResult bundles everything measured about one instance: the
// algorithm set's FLOP counts, the median total and per-call times, and
// the classification.
type InstanceResult struct {
	Inst    expr.Instance
	Flops   []float64
	Times   []float64
	PerCall [][]float64
	Class   Classification
}

// Runner evaluates instances of an expression on an executor: it
// enumerates the algorithm set, measures every algorithm with the
// timer's repetition protocol, and classifies the instance.
type Runner struct {
	Expr  expr.Expression
	Timer *exec.Timer
	// Threshold is the time-score threshold used for classification.
	Threshold float64
}

// NewRunner returns a Runner with the given threshold.
func NewRunner(e expr.Expression, t *exec.Timer, threshold float64) *Runner {
	return &Runner{Expr: e, Timer: t, Threshold: threshold}
}

// Evaluate measures and classifies one instance.
func (r *Runner) Evaluate(inst expr.Instance) InstanceResult {
	algs := r.Expr.Algorithms(inst)
	res := InstanceResult{
		Inst:    inst.Clone(),
		Flops:   make([]float64, len(algs)),
		Times:   make([]float64, len(algs)),
		PerCall: make([][]float64, len(algs)),
	}
	for i := range algs {
		m := r.Timer.MeasureAlgorithm(&algs[i])
		res.Flops[i] = algs[i].Flops()
		res.Times[i] = m.Total
		res.PerCall[i] = m.PerCall
	}
	res.Class = Classify(res.Flops, res.Times, r.Threshold)
	return res
}
