package core

import (
	"fmt"
	"sort"

	"lamb/internal/expr"
)

// Exp2Config parameterises Experiment 2 (lines through regions, §3.4.2).
type Exp2Config struct {
	// Box bounds the traversal (the search space).
	Box expr.Box
	// Step is the traversal stride; the paper steps by 10.
	Step int
	// EndRun is the number of consecutive non-anomalous instances that
	// marks the end of a region; the paper uses 3 (1–2 are holes).
	EndRun int
	// Progress, if non-nil, is called after each traversed line.
	Progress func(line, totalLines int)
}

// DefaultExp2Config returns the paper's settings for a given box.
func DefaultExp2Config(box expr.Box) Exp2Config {
	return Exp2Config{Box: box, Step: 10, EndRun: 3}
}

// LineSample is one evaluated instance along a traversal line.
type LineSample struct {
	// Coord is the value of the traversed dimension.
	Coord int
	Res   InstanceResult
}

// Line is the traversal of one axis-aligned line through an anomaly.
type Line struct {
	// Origin is the anomaly the line passes through.
	Origin expr.Instance
	// Dim is the traversed dimension index.
	Dim int
	// Samples holds every evaluated instance, sorted by Coord ascending
	// (the origin included).
	Samples []LineSample
	// BoundaryLo and BoundaryHi are the paper's region boundary points a
	// and b along the line (a < b).
	BoundaryLo, BoundaryHi int
	// Thickness is b − a − 1, the paper's region thickness in this
	// dimension.
	Thickness int
}

// Exp2Result is the outcome of Experiment 2.
type Exp2Result struct {
	// Lines holds one entry per (anomaly, dimension) pair.
	Lines []Line
	// TotalSamples is the number of evaluated line samples across all
	// lines (the population Experiment 3's confusion matrix counts).
	TotalSamples int
}

// ThicknessByDim groups region thicknesses per dimension: element d holds
// the thicknesses of all traversed anomalies in dimension d (the data
// behind the paper's Figures 7 and 10).
func (r *Exp2Result) ThicknessByDim(arity int) [][]int {
	out := make([][]int, arity)
	for _, ln := range r.Lines {
		out[ln.Dim] = append(out[ln.Dim], ln.Thickness)
	}
	return out
}

// RunExp2 traverses, for every anomaly, the axis-aligned lines in all
// dimensions through the anomaly, applying the paper's hole rule: one or
// two consecutive non-anomalous instances inside a region are holes; the
// region ends at EndRun consecutive non-anomalies (boundary = first of
// that run) or at the search-space boundary (boundary = last instance).
//
// The Runner's threshold is the classification threshold; the paper uses
// a 5% time score here.
func RunExp2(r *Runner, anomalies []expr.Instance, cfg Exp2Config) Exp2Result {
	if err := cfg.Box.Validate(); err != nil {
		panic(err)
	}
	if cfg.Step <= 0 {
		panic(fmt.Sprintf("core: exp2 step %d must be positive", cfg.Step))
	}
	if cfg.EndRun <= 0 {
		panic(fmt.Sprintf("core: exp2 end run %d must be positive", cfg.EndRun))
	}
	arity := r.Expr.Arity()
	var out Exp2Result
	totalLines := len(anomalies) * arity
	lineNo := 0
	for _, origin := range anomalies {
		// The origin instance is shared by all lines through it.
		originRes := r.Evaluate(origin)
		for dim := 0; dim < arity; dim++ {
			ln := traverseLine(r, origin, originRes, dim, cfg)
			out.TotalSamples += len(ln.Samples)
			out.Lines = append(out.Lines, ln)
			lineNo++
			if cfg.Progress != nil {
				cfg.Progress(lineNo, totalLines)
			}
		}
	}
	return out
}

// traverseLine walks dimension dim through origin in both directions.
func traverseLine(r *Runner, origin expr.Instance, originRes InstanceResult, dim int, cfg Exp2Config) Line {
	ln := Line{Origin: origin.Clone(), Dim: dim}
	ln.Samples = append(ln.Samples, LineSample{Coord: origin[dim], Res: originRes})

	walk := func(dir int) (boundary int) {
		nonAnomRun := 0
		// The first candidate boundary if we never see a non-anomaly is
		// the last in-box coordinate.
		last := origin[dim]
		firstOfRun := 0
		for x := 1; ; x++ {
			coord := origin[dim] + dir*cfg.Step*x
			if coord < cfg.Box.Lo[dim] || coord > cfg.Box.Hi[dim] {
				// Search-space boundary reached: the last instance is the
				// boundary of the region.
				return last
			}
			inst := origin.Clone()
			inst[dim] = coord
			res := r.Evaluate(inst)
			ln.Samples = append(ln.Samples, LineSample{Coord: coord, Res: res})
			last = coord
			if res.Class.Anomaly {
				nonAnomRun = 0
				continue
			}
			if nonAnomRun == 0 {
				firstOfRun = coord
			}
			nonAnomRun++
			if nonAnomRun >= cfg.EndRun {
				// Region ended: boundary is the first of the run.
				return firstOfRun
			}
		}
	}

	ln.BoundaryHi = walk(+1)
	ln.BoundaryLo = walk(-1)
	sort.Slice(ln.Samples, func(i, j int) bool { return ln.Samples[i].Coord < ln.Samples[j].Coord })
	ln.Thickness = ln.BoundaryHi - ln.BoundaryLo - 1
	if ln.Thickness < 0 {
		ln.Thickness = 0
	}
	return ln
}
