package core

import (
	"fmt"

	"lamb/internal/expr"
	"lamb/internal/xrand"
)

// Exp1Config parameterises Experiment 1 (random search, paper §3.4.1).
type Exp1Config struct {
	// Box is the search space; the paper uses 20 ≤ dᵢ ≤ 1200.
	Box expr.Box
	// TargetAnomalies stops the search once this many *distinct*
	// anomalies have been found (100 for the chain, 1000 for AAᵀB).
	TargetAnomalies int
	// MaxSamples bounds the search (a safety net; 0 means 10⁶).
	MaxSamples int
	// Seed makes the sampling stream reproducible.
	Seed uint64
	// Progress, if non-nil, is called every ProgressEvery samples.
	Progress      func(samples, anomalies int)
	ProgressEvery int
}

// Exp1Result is the outcome of Experiment 1.
type Exp1Result struct {
	// Samples is the number of instances drawn (with replacement).
	Samples int
	// Anomalies holds the distinct anomalous instances in discovery
	// order, with their full measurements.
	Anomalies []InstanceResult
	// Abundance is the fraction of samples classified anomalous
	// (duplicate draws of a known anomaly still count as anomalous
	// samples, as in any abundance estimate from sampling with
	// replacement).
	Abundance float64
}

// newExp1Stream derives the experiment's sampling stream; the sequential
// and parallel drivers share it so their draws are identical.
func newExp1Stream(seed uint64, exprName string) *xrand.Rand {
	return xrand.NewLabeled(seed, "exp1/"+exprName)
}

// RunExp1 searches the box uniformly at random for anomalies until the
// target count of distinct anomalies is reached or MaxSamples is
// exhausted. The classification threshold comes from the Runner (the
// paper uses a 10% time score for this experiment).
func RunExp1(r *Runner, cfg Exp1Config) Exp1Result {
	if err := cfg.Box.Validate(); err != nil {
		panic(err)
	}
	if cfg.Box.Arity() != r.Expr.Arity() {
		panic(fmt.Sprintf("core: exp1 box arity %d != expression arity %d", cfg.Box.Arity(), r.Expr.Arity()))
	}
	maxSamples := cfg.MaxSamples
	if maxSamples <= 0 {
		maxSamples = 1_000_000
	}
	target := cfg.TargetAnomalies
	if target <= 0 {
		target = 100
	}
	rng := newExp1Stream(cfg.Seed, r.Expr.Name())
	seen := make(map[string]bool)
	var out Exp1Result
	anomalousSamples := 0
	for out.Samples < maxSamples && len(out.Anomalies) < target {
		inst := cfg.Box.Sample(rng)
		out.Samples++
		res := r.Evaluate(inst)
		if res.Class.Anomaly {
			anomalousSamples++
			key := inst.String()
			if !seen[key] {
				seen[key] = true
				out.Anomalies = append(out.Anomalies, res)
			}
		}
		if cfg.Progress != nil && cfg.ProgressEvery > 0 && out.Samples%cfg.ProgressEvery == 0 {
			cfg.Progress(out.Samples, len(out.Anomalies))
		}
	}
	if out.Samples > 0 {
		out.Abundance = float64(anomalousSamples) / float64(out.Samples)
	}
	return out
}
