package core

import (
	"testing"

	"lamb/internal/exec"
	"lamb/internal/expr"
	"lamb/internal/kernels"
)

func stubRunner(anomalous func(d0, d1, d2 int) bool) (*Runner, *stubExecutor) {
	stub := &stubExecutor{anomalous: anomalous}
	timer := &exec.Timer{Exec: stub, Reps: 1}
	return NewRunner(expr.NewAATB(), timer, 0.05), stub
}

func TestExp1FindsPlantedAnomalies(t *testing.T) {
	// Anomalies planted in a band covering half of d0's range.
	r, _ := stubRunner(func(d0, d1, d2 int) bool { return d0 >= 100 })
	cfg := Exp1Config{
		Box:             expr.UniformBox(3, 20, 180),
		TargetAnomalies: 10,
		MaxSamples:      10_000,
		Seed:            1,
	}
	res := RunExp1(r, cfg)
	if len(res.Anomalies) != 10 {
		t.Fatalf("found %d anomalies, want 10", len(res.Anomalies))
	}
	for _, a := range res.Anomalies {
		if a.Inst[0] < 100 {
			t.Fatalf("non-planted anomaly at %v", a.Inst)
		}
		if !a.Class.Anomaly {
			t.Fatal("recorded anomaly not classified anomalous")
		}
		if a.Class.TimeScore != 0.5 {
			t.Fatalf("stub time score %v, want 0.5", a.Class.TimeScore)
		}
	}
	// d0 >= 100 covers 81/161 of the box: abundance should be near 0.5.
	if res.Abundance < 0.3 || res.Abundance > 0.7 {
		t.Fatalf("abundance %v, want ≈0.5", res.Abundance)
	}
}

func TestExp1NoAnomalies(t *testing.T) {
	r, _ := stubRunner(func(d0, d1, d2 int) bool { return false })
	cfg := Exp1Config{
		Box:             expr.UniformBox(3, 20, 100),
		TargetAnomalies: 5,
		MaxSamples:      200,
		Seed:            2,
	}
	res := RunExp1(r, cfg)
	if len(res.Anomalies) != 0 {
		t.Fatalf("found %d anomalies in anomaly-free space", len(res.Anomalies))
	}
	if res.Samples != 200 {
		t.Fatalf("samples %d, want MaxSamples=200", res.Samples)
	}
	if res.Abundance != 0 {
		t.Fatalf("abundance %v", res.Abundance)
	}
}

func TestExp1Deterministic(t *testing.T) {
	mk := func() Exp1Result {
		r, _ := stubRunner(func(d0, d1, d2 int) bool { return d0 > 150 })
		return RunExp1(r, Exp1Config{
			Box: expr.UniformBox(3, 20, 200), TargetAnomalies: 5, MaxSamples: 5000, Seed: 7,
		})
	}
	a, b := mk(), mk()
	if a.Samples != b.Samples || len(a.Anomalies) != len(b.Anomalies) {
		t.Fatal("exp1 not deterministic")
	}
	for i := range a.Anomalies {
		if a.Anomalies[i].Inst.String() != b.Anomalies[i].Inst.String() {
			t.Fatal("exp1 anomaly order not deterministic")
		}
	}
}

func TestExp1DedupesAnomalies(t *testing.T) {
	// A 1-wide box in every dimension: every sample is the same instance.
	r, _ := stubRunner(func(d0, d1, d2 int) bool { return true })
	res := RunExp1(r, Exp1Config{
		Box:             expr.UniformBox(3, 50, 50),
		TargetAnomalies: 3,
		MaxSamples:      100,
		Seed:            3,
	})
	if len(res.Anomalies) != 1 {
		t.Fatalf("distinct anomalies %d, want 1 (dedupe)", len(res.Anomalies))
	}
	if res.Samples != 100 {
		t.Fatalf("samples %d: search must continue to MaxSamples when target unreachable", res.Samples)
	}
	if res.Abundance != 1 {
		t.Fatalf("abundance %v: duplicate anomalous draws still count", res.Abundance)
	}
}

func TestExp1ProgressCallback(t *testing.T) {
	r, _ := stubRunner(func(d0, d1, d2 int) bool { return false })
	var calls int
	RunExp1(r, Exp1Config{
		Box: expr.UniformBox(3, 20, 40), TargetAnomalies: 1, MaxSamples: 50, Seed: 4,
		Progress: func(samples, anomalies int) { calls++ }, ProgressEvery: 10,
	})
	if calls != 5 {
		t.Fatalf("progress called %d times, want 5", calls)
	}
}

func TestExp2HoleRuleAndBoundaries(t *testing.T) {
	// Anomalous region in d0: [100, 200] plus an island at 220 reachable
	// through a 1-sample hole at 210. Walking +10 from 150:
	//   160..200 anomalous; 210 hole; 220 anomalous; 230,240,250 end the
	//   region → boundary hi = 230.
	// Walking −10: 140..100 anomalous; 90,80,70 → boundary lo = 90.
	r, _ := stubRunner(func(d0, d1, d2 int) bool {
		return (d0 >= 100 && d0 <= 200) || d0 == 220
	})
	origin := expr.Instance{150, 500, 500}
	cfg := DefaultExp2Config(expr.PaperBox(3))
	res := RunExp2(r, []expr.Instance{origin}, cfg)
	if len(res.Lines) != 3 {
		t.Fatalf("lines %d, want 3 (one per dimension)", len(res.Lines))
	}
	d0line := res.Lines[0]
	if d0line.Dim != 0 {
		t.Fatalf("first line dim %d", d0line.Dim)
	}
	if d0line.BoundaryHi != 230 {
		t.Fatalf("boundary hi = %d, want 230 (first of the 3-run, after the hole)", d0line.BoundaryHi)
	}
	if d0line.BoundaryLo != 90 {
		t.Fatalf("boundary lo = %d, want 90", d0line.BoundaryLo)
	}
	if want := 230 - 90 - 1; d0line.Thickness != want {
		t.Fatalf("thickness = %d, want %d", d0line.Thickness, want)
	}
	// Samples must be sorted by coordinate and include the origin.
	prev := -1
	sawOrigin := false
	for _, s := range d0line.Samples {
		if s.Coord <= prev {
			t.Fatal("samples not strictly sorted")
		}
		prev = s.Coord
		if s.Coord == 150 {
			sawOrigin = true
		}
	}
	if !sawOrigin {
		t.Fatal("origin missing from line samples")
	}
}

func TestExp2TwoHolesAreStillHoles(t *testing.T) {
	// Two consecutive non-anomalies (210, 220) then anomalous again at
	// 230: the region must continue through the double hole.
	r, _ := stubRunner(func(d0, d1, d2 int) bool {
		return (d0 >= 100 && d0 <= 200) || (d0 >= 230 && d0 <= 250)
	})
	origin := expr.Instance{150, 500, 500}
	res := RunExp2(r, []expr.Instance{origin}, DefaultExp2Config(expr.PaperBox(3)))
	if got := res.Lines[0].BoundaryHi; got != 260 {
		t.Fatalf("boundary hi = %d, want 260 (double hole must not end the region)", got)
	}
}

func TestExp2SearchSpaceBoundary(t *testing.T) {
	// Region extends to the box edge in +d0: boundary = last instance
	// (1200); in −d0 the region ends normally.
	r, _ := stubRunner(func(d0, d1, d2 int) bool { return d0 >= 1100 })
	origin := expr.Instance{1150, 500, 500}
	res := RunExp2(r, []expr.Instance{origin}, DefaultExp2Config(expr.PaperBox(3)))
	ln := res.Lines[0]
	if ln.BoundaryHi != 1200 {
		t.Fatalf("boundary hi = %d, want 1200 (search-space edge)", ln.BoundaryHi)
	}
	if ln.BoundaryLo != 1090 {
		t.Fatalf("boundary lo = %d, want 1090", ln.BoundaryLo)
	}
	if want := 1200 - 1090 - 1; ln.Thickness != want {
		t.Fatalf("thickness = %d, want %d", ln.Thickness, want)
	}
}

func TestExp2NonTraversedDimsAreThin(t *testing.T) {
	// The anomaly condition depends only on d0, so lines along d1 and d2
	// stay anomalous to the box edges (full-range regions), while the d0
	// region is narrow. This mirrors the paper's Figure 10 observation
	// (regions much thinner in d0 than in d1/d2 for AAᵀB).
	r, _ := stubRunner(func(d0, d1, d2 int) bool { return d0 >= 140 && d0 <= 160 })
	origin := expr.Instance{150, 500, 500}
	res := RunExp2(r, []expr.Instance{origin}, DefaultExp2Config(expr.PaperBox(3)))
	byDim := res.ThicknessByDim(3)
	if len(byDim[0]) != 1 || len(byDim[1]) != 1 || len(byDim[2]) != 1 {
		t.Fatalf("thickness grouping %v", byDim)
	}
	if byDim[0][0] >= byDim[1][0] {
		t.Fatalf("d0 thickness %d should be far below d1 thickness %d", byDim[0][0], byDim[1][0])
	}
	if byDim[1][0] != 1200-20-1 {
		t.Fatalf("d1 thickness %d, want full range %d", byDim[1][0], 1200-20-1)
	}
}

func TestExp2ProgressAndTotals(t *testing.T) {
	r, _ := stubRunner(func(d0, d1, d2 int) bool { return d0 >= 140 && d0 <= 160 })
	var lines int
	cfg := DefaultExp2Config(expr.UniformBox(3, 20, 300))
	cfg.Progress = func(line, total int) {
		lines++
		if total != 6 {
			t.Fatalf("total lines %d, want 6", total)
		}
	}
	res := RunExp2(r, []expr.Instance{{150, 100, 100}, {145, 200, 200}}, cfg)
	if lines != 6 {
		t.Fatalf("progress calls %d", lines)
	}
	var n int
	for _, ln := range res.Lines {
		n += len(ln.Samples)
	}
	if n != res.TotalSamples {
		t.Fatalf("TotalSamples %d != sum over lines %d", res.TotalSamples, n)
	}
}

func TestExp2PanicsOnBadConfig(t *testing.T) {
	r, _ := stubRunner(func(d0, d1, d2 int) bool { return false })
	for _, cfg := range []Exp2Config{
		{Box: expr.PaperBox(3), Step: 0, EndRun: 3},
		{Box: expr.PaperBox(3), Step: 10, EndRun: 0},
		{Box: expr.Box{}, Step: 10, EndRun: 3},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			RunExp2(r, []expr.Instance{{50, 50, 50}}, cfg)
		}()
	}
}

func TestExp3PerfectPredictionWithConsistentStub(t *testing.T) {
	// The stub's cold benchmark times cannot depend on the planted band,
	// so plant anomalies everywhere and give the isolated benchmarks
	// times consistent with the in-sequence behaviour (SYRK slow): the
	// prediction must then be perfect.
	stub2 := &stubExecutor{
		anomalous: func(d0, d1, d2 int) bool { return true },
	}
	stub2.coldTime = func(c kernels.Call) float64 {
		switch {
		case c.Kind == kernels.Syrk:
			return 1.8
		case c.Kind == kernels.Tri2Full:
			return 0.1
		case c.TransA:
			// Algorithm 5's first GEMM (Aᵀ·B): slow, so alg 5 is also
			// mispredicted-free wherever it is cheapest.
			return 1.8
		default:
			return 0.4
		}
	}
	timer := &exec.Timer{Exec: stub2, Reps: 1}
	r := NewRunner(expr.NewAATB(), timer, 0.05)
	origin := expr.Instance{100, 100, 100}
	exp2 := RunExp2(r, []expr.Instance{origin}, DefaultExp2Config(expr.UniformBox(3, 20, 200)))
	res := RunExp3(r, exp2, Exp3Config{Threshold: 0.05})
	if res.Confusion.Total() != exp2.TotalSamples {
		t.Fatalf("confusion total %d != samples %d", res.Confusion.Total(), exp2.TotalSamples)
	}
	// Every sample is an actual anomaly (stub anomalous everywhere) and
	// prediction (syrk 1.8+0.4 = 2.2 vs gemm+gemm 0.8) flags every sample.
	if res.Confusion.FN != 0 || res.Confusion.FP != 0 {
		t.Fatalf("expected perfect prediction, got %+v", res.Confusion)
	}
	if res.Confusion.Recall() != 1 || res.Confusion.Precision() != 1 {
		t.Fatalf("recall %v precision %v", res.Confusion.Recall(), res.Confusion.Precision())
	}
}

func TestExp3MemoisesBenchmarks(t *testing.T) {
	stub := &stubExecutor{anomalous: func(d0, d1, d2 int) bool { return d0 > 100 }}
	timer := &exec.Timer{Exec: stub, Reps: 1}
	r := NewRunner(expr.NewAATB(), timer, 0.05)
	exp2 := RunExp2(r, []expr.Instance{{150, 100, 100}}, DefaultExp2Config(expr.UniformBox(3, 20, 300)))
	before := stub.benchCalls.Load()
	res := RunExp3(r, exp2, Exp3Config{})
	benchInvocations := int(stub.benchCalls.Load() - before)
	if res.DistinctCalls == 0 {
		t.Fatal("no calls benchmarked")
	}
	// Reps=1, so invocations == distinct calls benchmarked.
	if benchInvocations != res.DistinctCalls {
		t.Fatalf("bench invocations %d != distinct calls %d (memoisation broken)",
			benchInvocations, res.DistinctCalls)
	}
	// Far fewer distinct calls than (samples × algorithms × calls).
	if res.DistinctCalls >= exp2.TotalSamples*5*2 {
		t.Fatal("memoisation had no effect")
	}
}

func TestExp3DefaultThreshold(t *testing.T) {
	stub := &stubExecutor{anomalous: func(d0, d1, d2 int) bool { return false }}
	timer := &exec.Timer{Exec: stub, Reps: 1}
	r := NewRunner(expr.NewAATB(), timer, 0.05)
	exp2 := RunExp2(r, []expr.Instance{{100, 100, 100}}, DefaultExp2Config(expr.UniformBox(3, 20, 150)))
	res := RunExp3(r, exp2, Exp3Config{}) // zero threshold → default 5%
	if res.Confusion.TP != 0 || res.Confusion.FN != 0 {
		t.Fatalf("anomaly-free space should have no actual positives: %+v", res.Confusion)
	}
}
