package core

import (
	"testing"

	"lamb/internal/exec"
	"lamb/internal/expr"
)

// Integration tests: the full experiment pipeline end-to-end on both
// backends and all three expressions.

func TestPipelineSimulatedAllExpressions(t *testing.T) {
	timer := exec.NewTimer(exec.NewDefaultSimulated())
	for _, e := range []expr.Expression{expr.NewChainABCD(), expr.NewAATB(), expr.NewLstSq()} {
		t.Run(e.Name(), func(t *testing.T) {
			r10 := NewRunner(e, timer, 0.10)
			box := expr.PaperBox(e.Arity())
			exp1 := RunExp1(r10, Exp1Config{
				Box: box, TargetAnomalies: 2, MaxSamples: 20000, Seed: 77,
			})
			if len(exp1.Anomalies) == 0 {
				t.Fatalf("%s: no anomalies found", e.Name())
			}
			var origins []expr.Instance
			for _, a := range exp1.Anomalies {
				origins = append(origins, a.Inst)
			}
			r5 := NewRunner(e, timer, 0.05)
			exp2 := RunExp2(r5, origins, DefaultExp2Config(box))
			if len(exp2.Lines) != len(origins)*e.Arity() {
				t.Fatalf("%s: %d lines, want %d", e.Name(), len(exp2.Lines), len(origins)*e.Arity())
			}
			for _, ln := range exp2.Lines {
				if len(ln.Samples) == 0 {
					t.Fatalf("%s: empty line", e.Name())
				}
				if ln.Thickness < 0 {
					t.Fatalf("%s: negative thickness", e.Name())
				}
			}
			exp3 := RunExp3(r5, exp2, Exp3Config{Threshold: 0.05})
			if exp3.Confusion.Total() != exp2.TotalSamples {
				t.Fatalf("%s: exp3 total mismatch", e.Name())
			}
			if exp3.DistinctCalls == 0 {
				t.Fatalf("%s: no calls benchmarked", e.Name())
			}
		})
	}
}

func TestPipelineMeasuredBackendSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("measured pipeline is slow")
	}
	// A miniature of the full study against real pure-Go BLAS timings:
	// exercises materialisation, flushing, per-call timing, and the
	// isolated-benchmark protocol with genuine noise.
	m := exec.NewMeasured()
	m.FlushBytes = 2 << 20
	timer := &exec.Timer{Exec: m, Reps: 2}
	e := expr.NewAATB()
	box := expr.UniformBox(3, 16, 80)
	r10 := NewRunner(e, timer, 0.10)
	exp1 := RunExp1(r10, Exp1Config{Box: box, TargetAnomalies: 2, MaxSamples: 12, Seed: 5})
	if exp1.Samples == 0 {
		t.Fatal("no samples evaluated")
	}
	for _, a := range exp1.Anomalies {
		if !box.Contains(a.Inst) {
			t.Fatalf("anomaly %v outside box", a.Inst)
		}
	}
	// Even if no anomaly was found at this tiny scale, the traversal and
	// prediction machinery must run; seed one origin artificially.
	origins := []expr.Instance{{48, 32, 40}}
	cfg := DefaultExp2Config(box)
	cfg.Step = 16
	r5 := NewRunner(e, timer, 0.05)
	exp2 := RunExp2(r5, origins, cfg)
	if exp2.TotalSamples == 0 {
		t.Fatal("no exp2 samples")
	}
	exp3 := RunExp3(r5, exp2, Exp3Config{Threshold: 0.05})
	if exp3.Confusion.Total() != exp2.TotalSamples {
		t.Fatal("exp3/exp2 totals disagree on measured backend")
	}
}

func TestThicknessByDimAcrossExpressions(t *testing.T) {
	timer := exec.NewTimer(exec.NewDefaultSimulated())
	e := expr.NewLstSq()
	r := NewRunner(e, timer, 0.05)
	exp2 := RunExp2(r, []expr.Instance{{150, 900, 100}}, DefaultExp2Config(expr.PaperBox(3)))
	byDim := exp2.ThicknessByDim(3)
	total := 0
	for _, ths := range byDim {
		total += len(ths)
	}
	if total != len(exp2.Lines) {
		t.Fatalf("thickness grouping lost lines: %d vs %d", total, len(exp2.Lines))
	}
}
