package core

import (
	"testing"

	"lamb/internal/exec"
	"lamb/internal/expr"
)

// simRunner returns a runner on the (concurrency-safe) simulated machine.
func simRunner(e expr.Expression, threshold float64) *Runner {
	return NewRunner(e, exec.NewTimer(exec.NewDefaultSimulated()), threshold)
}

func TestExp1ParallelMatchesSequential(t *testing.T) {
	cfg := Exp1Config{
		Box:             expr.PaperBox(3),
		TargetAnomalies: 8,
		MaxSamples:      400,
		Seed:            5,
	}
	seq := RunExp1(simRunner(expr.NewAATB(), 0.10), cfg)
	par := RunExp1Parallel(simRunner(expr.NewAATB(), 0.10), cfg, 4)
	if seq.Samples != par.Samples {
		t.Fatalf("samples: seq %d, par %d", seq.Samples, par.Samples)
	}
	if seq.Abundance != par.Abundance {
		t.Fatalf("abundance: seq %v, par %v", seq.Abundance, par.Abundance)
	}
	if len(seq.Anomalies) != len(par.Anomalies) {
		t.Fatalf("anomalies: seq %d, par %d", len(seq.Anomalies), len(par.Anomalies))
	}
	for i := range seq.Anomalies {
		if seq.Anomalies[i].Inst.String() != par.Anomalies[i].Inst.String() {
			t.Fatalf("anomaly %d: seq %v, par %v", i, seq.Anomalies[i].Inst, par.Anomalies[i].Inst)
		}
		if seq.Anomalies[i].Class.TimeScore != par.Anomalies[i].Class.TimeScore {
			t.Fatalf("anomaly %d scores differ", i)
		}
	}
}

func TestExp1ParallelSingleWorkerDelegates(t *testing.T) {
	cfg := Exp1Config{Box: expr.PaperBox(3), TargetAnomalies: 2, MaxSamples: 100, Seed: 6}
	seq := RunExp1(simRunner(expr.NewAATB(), 0.10), cfg)
	par := RunExp1Parallel(simRunner(expr.NewAATB(), 0.10), cfg, 0)
	if seq.Samples != par.Samples || len(seq.Anomalies) != len(par.Anomalies) {
		t.Fatal("workers<=1 should behave exactly like the sequential driver")
	}
}

func TestExp2ParallelMatchesSequential(t *testing.T) {
	r := simRunner(expr.NewAATB(), 0.05)
	exp1 := RunExp1(simRunner(expr.NewAATB(), 0.10), Exp1Config{
		Box: expr.PaperBox(3), TargetAnomalies: 3, MaxSamples: 300, Seed: 7,
	})
	var origins []expr.Instance
	for _, a := range exp1.Anomalies {
		origins = append(origins, a.Inst)
	}
	cfg := DefaultExp2Config(expr.PaperBox(3))
	seq := RunExp2(r, origins, cfg)
	par := RunExp2Parallel(r, origins, cfg, 4)
	if seq.TotalSamples != par.TotalSamples || len(seq.Lines) != len(par.Lines) {
		t.Fatalf("seq %d lines/%d samples, par %d lines/%d samples",
			len(seq.Lines), seq.TotalSamples, len(par.Lines), par.TotalSamples)
	}
	for i := range seq.Lines {
		s, p := seq.Lines[i], par.Lines[i]
		if s.Dim != p.Dim || s.Thickness != p.Thickness ||
			s.BoundaryLo != p.BoundaryLo || s.BoundaryHi != p.BoundaryHi {
			t.Fatalf("line %d differs: seq %+v, par %+v", i,
				[4]int{s.Dim, s.Thickness, s.BoundaryLo, s.BoundaryHi},
				[4]int{p.Dim, p.Thickness, p.BoundaryLo, p.BoundaryHi})
		}
		if len(s.Samples) != len(p.Samples) {
			t.Fatalf("line %d sample counts differ", i)
		}
	}
}

func TestExp3ParallelMatchesSequential(t *testing.T) {
	r5 := simRunner(expr.NewAATB(), 0.05)
	exp1 := RunExp1(simRunner(expr.NewAATB(), 0.10), Exp1Config{
		Box: expr.PaperBox(3), TargetAnomalies: 2, MaxSamples: 200, Seed: 8,
	})
	var origins []expr.Instance
	for _, a := range exp1.Anomalies {
		origins = append(origins, a.Inst)
	}
	exp2 := RunExp2(r5, origins, DefaultExp2Config(expr.PaperBox(3)))
	seq := RunExp3(r5, exp2, Exp3Config{Threshold: 0.05})
	par := RunExp3Parallel(r5, exp2, Exp3Config{Threshold: 0.05}, 4)
	if seq.Confusion != par.Confusion {
		t.Fatalf("confusion differs: seq %+v, par %+v", seq.Confusion, par.Confusion)
	}
	if seq.DistinctCalls != par.DistinctCalls {
		t.Fatalf("distinct calls: seq %d, par %d", seq.DistinctCalls, par.DistinctCalls)
	}
}

func TestParallelMapCoversAllIndices(t *testing.T) {
	hits := make([]int32, 100)
	parallelMap(100, 8, func(i int) { hits[i]++ })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
	// Degenerate cases.
	parallelMap(0, 4, func(i int) { t.Fatal("should not be called") })
	called := 0
	parallelMap(3, 1, func(i int) { called++ })
	if called != 3 {
		t.Fatalf("sequential fallback called %d times", called)
	}
}

func TestResolveWorkers(t *testing.T) {
	if resolveWorkers(0) != 1 || resolveWorkers(-3) != 1 {
		t.Fatal("non-positive workers should resolve to 1")
	}
	if resolveWorkers(2) != 2 {
		t.Fatal("small worker counts pass through")
	}
	if resolveWorkers(1<<20) > 1<<12 {
		t.Fatal("absurd worker counts should be capped")
	}
}
