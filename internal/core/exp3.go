package core

import (
	"lamb/internal/kernels"
	"lamb/internal/stats"
)

// Exp3Config parameterises Experiment 3 (prediction from benchmarks,
// §3.4.3).
type Exp3Config struct {
	// Threshold is the time-score threshold used for both the actual and
	// the predicted classification; the paper uses 5%.
	Threshold float64
	// Progress, if non-nil, is called every ProgressEvery samples.
	Progress      func(done, total int)
	ProgressEvery int
}

// Exp3Result is the outcome of Experiment 3.
type Exp3Result struct {
	// Confusion is the predicted-vs-actual anomaly confusion matrix over
	// all Experiment 2 line samples (the paper's Tables 1 and 2).
	Confusion stats.ConfusionMatrix
	// DistinctCalls is the number of distinct kernel calls benchmarked in
	// isolation.
	DistinctCalls int
}

// RunExp3 predicts, for every instance sampled in Experiment 2, each
// algorithm's execution time as the sum of its calls' isolated cold-cache
// benchmark times, classifies the instance from the predictions, and
// compares against the actual (measured) classification.
//
// Identical calls (same kernel, dimensions, and transposition) are
// benchmarked once and memoised: their performance cannot differ, and the
// paper likewise collects "a small set of specific calls" per sample.
func RunExp3(r *Runner, exp2 Exp2Result, cfg Exp3Config) Exp3Result {
	threshold := cfg.Threshold
	if threshold <= 0 {
		threshold = 0.05
	}
	memo := make(map[kernels.Key]float64)
	benchCall := func(c kernels.Call) float64 {
		key := c.MemoKey()
		if t, ok := memo[key]; ok {
			return t
		}
		t := r.Timer.MeasureCallCold(c)
		memo[key] = t
		return t
	}

	var out Exp3Result
	done := 0
	for _, ln := range exp2.Lines {
		for _, s := range ln.Samples {
			algs := r.Expr.Algorithms(s.Res.Inst)
			predicted := make([]float64, len(algs))
			for i := range algs {
				var sum float64
				for _, c := range algs[i].Calls {
					sum += benchCall(c)
				}
				predicted[i] = sum
			}
			predClass := Classify(s.Res.Flops, predicted, threshold)
			actualClass := Classify(s.Res.Flops, s.Res.Times, threshold)
			out.Confusion.Add(actualClass.Anomaly, predClass.Anomaly)
			done++
			if cfg.Progress != nil && cfg.ProgressEvery > 0 && done%cfg.ProgressEvery == 0 {
				cfg.Progress(done, exp2.TotalSamples)
			}
		}
	}
	out.DistinctCalls = len(memo)
	return out
}
