package core

import (
	"sync/atomic"

	"lamb/internal/expr"
	"lamb/internal/kernels"
)

// stubExecutor is a deterministic Executor whose timing depends only on
// an instance predicate, giving the experiment-logic tests full control
// over where anomalies occur.
//
// It targets the AATB expression: when anomalous(d0, d1, d2) holds, the
// two cheapest algorithms (1 and 2, which tie on FLOPs) are slow and the
// GEMM-based algorithms fast, making the instance an anomaly with time
// score 0.5; otherwise algorithms 1 and 2 are fastest and no anomaly
// exists.
type stubExecutor struct {
	anomalous func(d0, d1, d2 int) bool
	// coldTime optionally overrides isolated benchmark times per call
	// kind; when nil, TimeCallCold returns 1.0 for every call.
	coldTime func(c kernels.Call) float64
	// algCalls counts TimeAlgorithm invocations (atomic: the parallel
	// drivers call executors concurrently).
	algCalls atomic.Int64
	// benchCalls counts TimeCallCold invocations.
	benchCalls atomic.Int64
}

func (s *stubExecutor) dims(alg *expr.Algorithm) (d0, d1, d2 int) {
	a := alg.Shapes["A"]
	b := alg.Shapes["B"]
	return a.Rows, a.Cols, b.Cols
}

// aatbMinFlops returns the minimum FLOP count over the five AATB
// algorithms (paper formulas).
func aatbMinFlops(d0, d1, d2 int) float64 {
	f0, f1, f2 := float64(d0), float64(d1), float64(d2)
	m := f0 * ((f0+1)*f1 + 2*f0*f2) // algs 1, 2
	if v := 2 * f0 * f0 * (f1 + f2); v < m {
		m = v // algs 3, 4
	}
	if v := 4 * f0 * f1 * f2; v < m {
		m = v // alg 5
	}
	return m
}

func (s *stubExecutor) TimeAlgorithm(alg *expr.Algorithm, rep uint64) []float64 {
	s.algCalls.Add(1)
	d0, d1, d2 := s.dims(alg)
	isCheapest := alg.Flops() == aatbMinFlops(d0, d1, d2)
	var total float64
	switch {
	case isCheapest && s.anomalous(d0, d1, d2):
		total = 2.0 // the cheapest algorithms are slow: an anomaly
	case isCheapest:
		total = 0.5 // the cheapest algorithms are also fastest: no anomaly
	default:
		total = 1.0
	}
	// Spread the total uniformly over the calls.
	times := make([]float64, len(alg.Calls))
	for i := range times {
		times[i] = total / float64(len(times))
	}
	return times
}

func (s *stubExecutor) TimeCallCold(c kernels.Call, rep uint64) float64 {
	s.benchCalls.Add(1)
	if s.coldTime != nil {
		return s.coldTime(c)
	}
	return 1.0
}

func (s *stubExecutor) Peak() float64 { return 1e9 }
func (s *stubExecutor) Name() string  { return "stub" }
