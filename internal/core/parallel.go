package core

import (
	"runtime"
	"sync"

	"lamb/internal/expr"
	"lamb/internal/kernels"
)

// The experiments are embarrassingly parallel: instance evaluations are
// independent and, on the simulated backend, deterministic. The parallel
// drivers in this file produce results bit-identical to their sequential
// counterparts: work is *generated* sequentially (so the sampling stream
// never changes), *evaluated* concurrently, and *folded* back in the
// sequential order.
//
// Parallel execution requires a concurrency-safe executor. The simulated
// backend is safe; the measured backend is not — and timing kernels
// concurrently on shared hardware would be methodologically wrong anyway
// (runs would contend for cores and caches), so the measured experiments
// should stay sequential just as the paper's did.

// resolveWorkers maps a config value to an actual worker count.
func resolveWorkers(w int) int {
	if w <= 0 {
		return 1
	}
	if n := runtime.GOMAXPROCS(0); w > n*4 {
		return n * 4
	}
	return w
}

// parallelMap evaluates f for every index in [0, n) on w workers.
func parallelMap(n, w int, f func(i int)) {
	if w <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// RunExp1Parallel is RunExp1 with instance evaluations spread over
// workers. Results are bit-identical to the sequential run: instances
// are drawn from the same stream in the same order, evaluated in
// batches, and classified in draw order, stopping at exactly the sample
// where the sequential search would stop (surplus evaluations from the
// final batch are discarded).
func RunExp1Parallel(r *Runner, cfg Exp1Config, workers int) Exp1Result {
	w := resolveWorkers(workers)
	if w == 1 {
		return RunExp1(r, cfg)
	}
	if err := cfg.Box.Validate(); err != nil {
		panic(err)
	}
	maxSamples := cfg.MaxSamples
	if maxSamples <= 0 {
		maxSamples = 1_000_000
	}
	target := cfg.TargetAnomalies
	if target <= 0 {
		target = 100
	}
	rng := newExp1Stream(cfg.Seed, r.Expr.Name())
	seen := make(map[string]bool)
	var out Exp1Result
	anomalousSamples := 0
	batch := 4 * w
	insts := make([]expr.Instance, 0, batch)
	results := make([]InstanceResult, batch)
	for out.Samples < maxSamples && len(out.Anomalies) < target {
		insts = insts[:0]
		for len(insts) < batch && out.Samples+len(insts) < maxSamples {
			insts = append(insts, cfg.Box.Sample(rng))
		}
		parallelMap(len(insts), w, func(i int) {
			results[i] = r.Evaluate(insts[i])
		})
		for i := range insts {
			out.Samples++
			res := results[i]
			if res.Class.Anomaly {
				anomalousSamples++
				key := res.Inst.String()
				if !seen[key] {
					seen[key] = true
					out.Anomalies = append(out.Anomalies, res)
				}
			}
			if cfg.Progress != nil && cfg.ProgressEvery > 0 && out.Samples%cfg.ProgressEvery == 0 {
				cfg.Progress(out.Samples, len(out.Anomalies))
			}
			if len(out.Anomalies) >= target {
				break
			}
		}
	}
	if out.Samples > 0 {
		out.Abundance = float64(anomalousSamples) / float64(out.Samples)
	}
	return out
}

// RunExp2Parallel is RunExp2 with whole-line traversals spread over
// workers. Each (anomaly, dimension) line is independent, so the result
// is bit-identical to the sequential run.
func RunExp2Parallel(r *Runner, anomalies []expr.Instance, cfg Exp2Config, workers int) Exp2Result {
	w := resolveWorkers(workers)
	if w == 1 {
		return RunExp2(r, anomalies, cfg)
	}
	if err := cfg.Box.Validate(); err != nil {
		panic(err)
	}
	if cfg.Step <= 0 || cfg.EndRun <= 0 {
		panic("core: exp2 step and end run must be positive")
	}
	arity := r.Expr.Arity()
	lines := make([]Line, len(anomalies)*arity)
	originRes := make([]InstanceResult, len(anomalies))
	parallelMap(len(anomalies), w, func(i int) {
		originRes[i] = r.Evaluate(anomalies[i])
	})
	done := 0
	var mu sync.Mutex
	parallelMap(len(lines), w, func(li int) {
		ai, dim := li/arity, li%arity
		lines[li] = traverseLine(r, anomalies[ai], originRes[ai], dim, cfg)
		if cfg.Progress != nil {
			mu.Lock()
			done++
			cfg.Progress(done, len(lines))
			mu.Unlock()
		}
	})
	var out Exp2Result
	out.Lines = lines
	for i := range lines {
		out.TotalSamples += len(lines[i].Samples)
	}
	return out
}

// RunExp3Parallel is RunExp3 with the distinct-call benchmarking phase
// spread over workers: all distinct calls are collected first, then
// benchmarked concurrently, then every sample is classified
// sequentially. Bit-identical to the sequential run.
func RunExp3Parallel(r *Runner, exp2 Exp2Result, cfg Exp3Config, workers int) Exp3Result {
	w := resolveWorkers(workers)
	if w == 1 {
		return RunExp3(r, exp2, cfg)
	}
	threshold := cfg.Threshold
	if threshold <= 0 {
		threshold = 0.05
	}
	// Phase 1: collect the distinct calls.
	type callEntry struct {
		key  kernels.Key
		call kernels.Call
	}
	var entries []callEntry
	index := make(map[kernels.Key]int)
	for _, ln := range exp2.Lines {
		for _, s := range ln.Samples {
			algs := r.Expr.Algorithms(s.Res.Inst)
			for i := range algs {
				for _, c := range algs[i].Calls {
					key := c.MemoKey()
					if _, ok := index[key]; !ok {
						index[key] = len(entries)
						entries = append(entries, callEntry{key: key, call: c})
					}
				}
			}
		}
	}
	// Phase 2: benchmark them concurrently.
	times := make([]float64, len(entries))
	parallelMap(len(entries), w, func(i int) {
		times[i] = r.Timer.MeasureCallCold(entries[i].call)
	})
	// Phase 3: classify every sample.
	var out Exp3Result
	done := 0
	for _, ln := range exp2.Lines {
		for _, s := range ln.Samples {
			algs := r.Expr.Algorithms(s.Res.Inst)
			predicted := make([]float64, len(algs))
			for i := range algs {
				var sum float64
				for _, c := range algs[i].Calls {
					sum += times[index[c.MemoKey()]]
				}
				predicted[i] = sum
			}
			predClass := Classify(s.Res.Flops, predicted, threshold)
			actualClass := Classify(s.Res.Flops, s.Res.Times, threshold)
			out.Confusion.Add(actualClass.Anomaly, predClass.Anomaly)
			done++
			if cfg.Progress != nil && cfg.ProgressEvery > 0 && done%cfg.ProgressEvery == 0 {
				cfg.Progress(done, exp2.TotalSamples)
			}
		}
	}
	out.DistinctCalls = len(entries)
	return out
}
