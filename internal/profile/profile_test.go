package profile

import (
	"math"
	"testing"

	"lamb/internal/exec"
	"lamb/internal/kernels"
)

func simTimer() *exec.Timer {
	return &exec.Timer{Exec: exec.NewDefaultSimulated(), Reps: 3}
}

func TestEfficiencyCurveShape(t *testing.T) {
	// Figure 1: efficiency ramps with square size and GEMM dominates SYRK
	// and SYMM at mid sizes.
	timer := simTimer()
	sizes := []int{100, 300, 600, 1200}
	g := EfficiencyCurve(timer, kernels.Gemm, sizes)
	sy := EfficiencyCurve(timer, kernels.Syrk, sizes)
	sm := EfficiencyCurve(timer, kernels.Symm, sizes)
	if len(g) != len(sizes) {
		t.Fatalf("curve length %d", len(g))
	}
	for i := range sizes {
		if g[i].Efficiency <= 0 || g[i].Efficiency > 1 {
			t.Fatalf("gemm efficiency out of range at %d: %v", sizes[i], g[i].Efficiency)
		}
		if g[i].Efficiency <= sy[i].Efficiency || g[i].Efficiency <= sm[i].Efficiency {
			t.Fatalf("size %d: gemm %.3f should dominate syrk %.3f and symm %.3f",
				sizes[i], g[i].Efficiency, sy[i].Efficiency, sm[i].Efficiency)
		}
	}
	if g[len(g)-1].Efficiency <= g[0].Efficiency {
		t.Fatal("gemm efficiency should ramp upward")
	}
}

func TestDefaultGrid(t *testing.T) {
	g := DefaultGrid(5)
	if len(g) != 5 || g[0] != 20 || g[4] != 1200 {
		t.Fatalf("grid %v", g)
	}
	for i := 1; i < len(g); i++ {
		if g[i] <= g[i-1] {
			t.Fatalf("grid not increasing: %v", g)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("DefaultGrid(1) should panic")
		}
	}()
	DefaultGrid(1)
}

func TestProfileInterpolationExactOnGrid(t *testing.T) {
	timer := simTimer()
	grid := []int{50, 100, 400}
	p := Measure(timer, kernels.Gemm, grid, grid, grid)
	// On a grid point the interpolation must return the measured rate.
	call := kernels.NewGemm(100, 100, 100, "A", "B", "C", false, false)
	sec := timer.MeasureCallCold(call)
	want := call.Flops() / sec
	if got := p.RateAt(100, 100, 100); math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("grid-point rate %v, want %v", got, want)
	}
}

func TestProfileInterpolationBetweenPoints(t *testing.T) {
	timer := simTimer()
	grid := []int{50, 100, 400}
	p := Measure(timer, kernels.Gemm, grid, grid, grid)
	lo := p.RateAt(100, 100, 100)
	hi := p.RateAt(400, 400, 400)
	mid := p.RateAt(200, 200, 200)
	if !(mid > math.Min(lo, hi) && mid < math.Max(lo, hi)) {
		t.Fatalf("interpolated rate %v outside (%v, %v)", mid, lo, hi)
	}
}

func TestProfileClampsOutsideGrid(t *testing.T) {
	timer := simTimer()
	grid := []int{50, 100, 400}
	p := Measure(timer, kernels.Gemm, grid, grid, grid)
	if p.RateAt(10, 10, 10) != p.RateAt(50, 50, 50) {
		t.Fatal("below-grid rates should clamp to the lowest grid point")
	}
	if p.RateAt(5000, 5000, 5000) != p.RateAt(400, 400, 400) {
		t.Fatal("above-grid rates should clamp to the highest grid point")
	}
}

func TestSinglePointProfile(t *testing.T) {
	// A one-point grid is a degenerate but legal profile: the surface is
	// constant, so every shape predicts at the single measured rate.
	timer := simTimer()
	p := Measure(timer, kernels.Gemm, []int{100}, []int{100}, []int{100})
	want := p.RateAt(100, 100, 100)
	if want <= 0 {
		t.Fatalf("measured rate %v", want)
	}
	for _, sh := range [][3]int{{1, 1, 1}, {100, 100, 100}, {5000, 2, 700}} {
		if got := p.RateAt(sh[0], sh[1], sh[2]); got != want {
			t.Fatalf("single-point rate at %v = %v, want constant %v", sh, got, want)
		}
	}
	c := kernels.NewGemm(640, 480, 320, "A", "B", "C", false, false)
	if pred := p.PredictCall(c); pred != c.Flops()/want {
		t.Fatalf("single-point prediction %v, want %v", pred, c.Flops()/want)
	}
}

func TestOutOfGridExtrapolationIsFlat(t *testing.T) {
	// Outside the grid the surface clamps (flat extrapolation), so
	// predicted time still scales with the work: a 2× larger
	// out-of-grid GEMM predicts exactly 8× the time.
	timer := simTimer()
	grid := []int{50, 100, 400}
	p := Measure(timer, kernels.Gemm, grid, grid, grid)
	small := kernels.NewGemm(800, 800, 800, "A", "B", "C", false, false)
	big := kernels.NewGemm(1600, 1600, 1600, "A", "B", "C", false, false)
	ratio := p.PredictCall(big) / p.PredictCall(small)
	if math.Abs(ratio-8) > 1e-9 {
		t.Fatalf("flat extrapolation time ratio %v, want 8", ratio)
	}
	// Mixed in/out coordinates clamp per dimension.
	if p.RateAt(200, 10, 5000) != p.RateAt(200, 50, 400) {
		t.Fatal("per-dimension clamping broken")
	}
}

func TestPredictCallAccuracy(t *testing.T) {
	// On the simulated machine, profile prediction of an off-grid call
	// should land within ~35% of the true cold time (the surface has
	// steps and sawtooth texture that interpolation smooths over).
	timer := simTimer()
	grid := DefaultGrid(8)
	p := Measure(timer, kernels.Gemm, grid, grid, grid)
	sim := exec.NewDefaultSimulated()
	for _, sh := range [][3]int{{300, 300, 300}, {150, 700, 90}, {1000, 250, 480}} {
		call := kernels.NewGemm(sh[0], sh[1], sh[2], "A", "B", "C", false, false)
		pred := p.PredictCall(call)
		truth := sim.Machine().ColdTime(call)
		ratio := pred / truth
		if ratio < 0.65 || ratio > 1.55 {
			t.Fatalf("prediction for %v off by ratio %.2f (pred %.3g, truth %.3g)",
				sh, ratio, pred, truth)
		}
	}
}

func TestPredictCallWrongKindPanics(t *testing.T) {
	timer := simTimer()
	grid := []int{50, 100}
	p := Measure(timer, kernels.Gemm, grid, grid, grid)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	p.PredictCall(kernels.NewSyrk(60, 60, "A", "C"))
}

func TestMeasurePanicsOnUnsortedGrid(t *testing.T) {
	timer := simTimer()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Measure(timer, kernels.Gemm, []int{100, 50}, []int{50}, []int{50})
}

func TestMeasureSetCoversAllKinds(t *testing.T) {
	timer := simTimer()
	s := MeasureSet(timer, 3)
	calls := []kernels.Call{
		kernels.NewGemm(80, 90, 100, "A", "B", "C", false, false),
		kernels.NewSyrk(80, 100, "A", "C"),
		kernels.NewSymm(80, 90, "A", "B", "C"),
		kernels.NewTri2Full(80, "C"),
	}
	for _, c := range calls {
		pred := s.PredictCall(c)
		if pred <= 0 || math.IsInf(pred, 1) {
			t.Fatalf("prediction for %v = %v", c, pred)
		}
	}
	if s.Profile(kernels.Gemm) == nil {
		t.Fatal("missing gemm profile")
	}
}

func TestTri2FullProfileUsesBytes(t *testing.T) {
	// Tri2Full has zero FLOPs: prediction must still be finite and
	// positive (bytes-based).
	timer := simTimer()
	grid := []int{50, 200, 800}
	p := Measure(timer, kernels.Tri2Full, grid, grid, grid)
	c := kernels.NewTri2Full(300, "C")
	pred := p.PredictCall(c)
	if pred <= 0 || math.IsInf(pred, 1) {
		t.Fatalf("tri2full prediction %v", pred)
	}
}
