// Package profile measures and interpolates kernel performance profiles.
//
// A profile records a kernel's performance (FLOP/s) on a grid of problem
// shapes. Profiles serve two purposes in the paper:
//
//   - Figure 1 plots kernel efficiency along square sizes (EfficiencyCurve).
//   - The paper's concluding conjecture — that FLOP counts *combined with
//     kernel performance profiles* can predict anomalies and select
//     algorithms — needs a predictor that maps an arbitrary call to an
//     estimated time (Profile.PredictCall). lamb/internal/selection builds
//     the MinPredicted strategy on top of it.
package profile

import (
	"fmt"
	"math"
	"sort"

	"lamb/internal/exec"
	"lamb/internal/kernels"
)

// Point is one benchmarked shape with its measured performance.
type Point struct {
	M, N, K int
	// Seconds is the median measured execution time.
	Seconds float64
	// Flops is the attributed FLOP count of the benchmarked call.
	Flops float64
}

// Rate returns the measured performance in FLOP/s.
func (p Point) Rate() float64 {
	if p.Seconds <= 0 {
		return 0
	}
	return p.Flops / p.Seconds
}

// CurvePoint is one sample of an efficiency curve (Figure 1).
type CurvePoint struct {
	Size       int
	Efficiency float64
}

// EfficiencyCurve measures the efficiency of a kernel kind on square
// operands of the given sizes, using the timer's repetition protocol —
// the data behind the paper's Figure 1.
func EfficiencyCurve(t *exec.Timer, kind kernels.Kind, sizes []int) []CurvePoint {
	out := make([]CurvePoint, 0, len(sizes))
	peak := t.Exec.Peak()
	for _, s := range sizes {
		call := squareCall(kind, s)
		sec := t.MeasureCallCold(call)
		out = append(out, CurvePoint{Size: s, Efficiency: exec.Efficiency(call, sec, peak)})
	}
	return out
}

// squareCall returns the canonical square-operand call of a kind at size s.
func squareCall(kind kernels.Kind, s int) kernels.Call {
	switch kind {
	case kernels.Gemm:
		return kernels.NewGemm(s, s, s, "A", "B", "C", false, false)
	case kernels.Syrk:
		return kernels.NewSyrk(s, s, "A", "C")
	case kernels.Symm:
		return kernels.NewSymm(s, s, "A", "B", "C")
	case kernels.Tri2Full:
		return kernels.NewTri2Full(s, "C")
	case kernels.Potrf:
		return kernels.NewPotrf(s, "S")
	case kernels.Trsm:
		return kernels.NewTrsm(s, s, "L", "B", false)
	case kernels.AddSym:
		return kernels.NewAddSym(s, "C", "A")
	default:
		panic(fmt.Sprintf("profile: unknown kind %v", kind))
	}
}

// Profile is a benchmarked performance surface for one kernel kind over a
// 3-D grid of shapes, with multilinear interpolation in log-space.
type Profile struct {
	Kind kernels.Kind
	// GridM, GridN, GridK are the sorted grid coordinates per dimension.
	GridM, GridN, GridK []int
	// rate[i][j][l] is the measured FLOP/s at (GridM[i], GridN[j], GridK[l]).
	rate [][][]float64
}

// DefaultGrid returns a geometric grid covering the paper's search space
// (20..1200) with the given number of points per dimension.
func DefaultGrid(points int) []int {
	if points < 2 {
		panic("profile: grid needs at least 2 points")
	}
	lo, hi := 20.0, 1200.0
	out := make([]int, points)
	for i := range out {
		f := float64(i) / float64(points-1)
		out[i] = int(math.Round(lo * math.Pow(hi/lo, f)))
	}
	return out
}

// Measure benchmarks the kernel kind over the grid using the timer's
// repetition protocol with isolated cold calls (the Experiment 3
// protocol). Grids must be sorted ascending. For SYRK, GridN is ignored
// (N ≡ M); for SYMM, GridK is ignored (K ≡ M).
func Measure(t *exec.Timer, kind kernels.Kind, gridM, gridN, gridK []int) *Profile {
	for _, g := range [][]int{gridM, gridN, gridK} {
		if len(g) == 0 || !sort.IntsAreSorted(g) {
			panic("profile: grids must be non-empty and sorted")
		}
	}
	p := &Profile{Kind: kind, GridM: gridM, GridN: gridN, GridK: gridK}
	p.rate = make([][][]float64, len(gridM))
	for i, m := range gridM {
		p.rate[i] = make([][]float64, len(gridN))
		for j, n := range gridN {
			p.rate[i][j] = make([]float64, len(gridK))
			for l, k := range gridK {
				call := callForShape(kind, m, n, k)
				sec := t.MeasureCallCold(call)
				flops := call.Flops()
				if flops == 0 {
					// Data-movement kernels: store bytes/s instead so
					// prediction can divide bytes by rate.
					flops = call.Bytes()
				}
				p.rate[i][j][l] = flops / sec
			}
		}
	}
	return p
}

// callForShape builds the canonical call of a kind with the given shape,
// normalising the constrained dimensions (SYRK: N=M; SYMM: K=M).
func callForShape(kind kernels.Kind, m, n, k int) kernels.Call {
	switch kind {
	case kernels.Gemm:
		return kernels.NewGemm(m, n, k, "A", "B", "C", false, false)
	case kernels.Syrk:
		return kernels.NewSyrk(m, k, "A", "C")
	case kernels.Symm:
		return kernels.NewSymm(m, n, "A", "B", "C")
	case kernels.Tri2Full:
		return kernels.NewTri2Full(m, "C")
	case kernels.Potrf:
		return kernels.NewPotrf(m, "S")
	case kernels.Trsm:
		return kernels.NewTrsm(m, n, "L", "B", false)
	case kernels.AddSym:
		return kernels.NewAddSym(m, "C", "A")
	default:
		panic(fmt.Sprintf("profile: unknown kind %v", kind))
	}
}

// New constructs a Profile from already-measured data: sorted grids and
// a rate table with rate[i][j][l] in FLOP/s (bytes/s for data-movement
// kernels) at (gridM[i], gridN[j], gridK[l]). It validates the invariants
// Measure guarantees, so deserialised profiles predict exactly like
// freshly measured ones.
func New(kind kernels.Kind, gridM, gridN, gridK []int, rate [][][]float64) (*Profile, error) {
	if int(kind) < 0 || int(kind) >= kernels.NumKinds {
		return nil, fmt.Errorf("profile: unknown kind %d", int(kind))
	}
	for _, g := range [][]int{gridM, gridN, gridK} {
		if len(g) == 0 {
			return nil, fmt.Errorf("profile: %v grid is empty", kind)
		}
		for i, x := range g {
			if x <= 0 {
				return nil, fmt.Errorf("profile: %v grid has non-positive size %d", kind, x)
			}
			if i > 0 && g[i-1] >= x {
				return nil, fmt.Errorf("profile: %v grid not strictly increasing: %v", kind, g)
			}
		}
	}
	if len(rate) != len(gridM) {
		return nil, fmt.Errorf("profile: %v rate has %d m-planes, want %d", kind, len(rate), len(gridM))
	}
	for i := range rate {
		if len(rate[i]) != len(gridN) {
			return nil, fmt.Errorf("profile: %v rate[%d] has %d n-rows, want %d", kind, i, len(rate[i]), len(gridN))
		}
		for j := range rate[i] {
			if len(rate[i][j]) != len(gridK) {
				return nil, fmt.Errorf("profile: %v rate[%d][%d] has %d k-entries, want %d", kind, i, j, len(rate[i][j]), len(gridK))
			}
			for l, r := range rate[i][j] {
				// A zero rate would make every prediction touching it
				// +Inf — a state no amount of adaptive feedback can
				// blend away — so only strictly positive finite rates
				// are valid.
				if math.IsNaN(r) || math.IsInf(r, 0) || r <= 0 {
					return nil, fmt.Errorf("profile: %v rate[%d][%d][%d] = %v is not a valid rate", kind, i, j, l, r)
				}
			}
		}
	}
	return &Profile{Kind: kind, GridM: gridM, GridN: gridN, GridK: gridK, rate: rate}, nil
}

// locate returns the bracketing indices and the log-space weight for x in
// the sorted grid g (clamping outside the range).
func locate(g []int, x int) (lo, hi int, w float64) {
	n := len(g)
	if x <= g[0] {
		return 0, 0, 0
	}
	if x >= g[n-1] {
		return n - 1, n - 1, 0
	}
	hi = sort.SearchInts(g, x)
	if g[hi] == x {
		return hi, hi, 0
	}
	lo = hi - 1
	w = (math.Log(float64(x)) - math.Log(float64(g[lo]))) /
		(math.Log(float64(g[hi])) - math.Log(float64(g[lo])))
	return lo, hi, w
}

// RateAt returns the interpolated FLOP/s at shape (m, n, k), multilinear
// in log-size space.
func (p *Profile) RateAt(m, n, k int) float64 {
	im0, im1, wm := locate(p.GridM, m)
	in0, in1, wn := locate(p.GridN, n)
	ik0, ik1, wk := locate(p.GridK, k)
	var acc float64
	for _, cm := range [2]struct {
		idx int
		w   float64
	}{{im0, 1 - wm}, {im1, wm}} {
		for _, cn := range [2]struct {
			idx int
			w   float64
		}{{in0, 1 - wn}, {in1, wn}} {
			for _, ck := range [2]struct {
				idx int
				w   float64
			}{{ik0, 1 - wk}, {ik1, wk}} {
				w := cm.w * cn.w * ck.w
				if w != 0 {
					acc += w * p.rate[cm.idx][cn.idx][ck.idx]
				}
			}
		}
	}
	return acc
}

// PredictCall estimates the call's execution time from the profile: the
// attributed work (FLOPs, or bytes for data movement) divided by the
// interpolated rate.
func (p *Profile) PredictCall(c kernels.Call) float64 {
	if c.Kind != p.Kind {
		panic(fmt.Sprintf("profile: predicting %v call with %v profile", c.Kind, p.Kind))
	}
	work := c.Flops()
	if work == 0 {
		work = c.Bytes()
	}
	rate := p.RateAt(c.M, c.N, c.K)
	if rate <= 0 {
		return math.Inf(1)
	}
	return work / rate
}

// Set is a collection of profiles covering all kernel kinds.
type Set struct {
	profiles [kernels.NumKinds]*Profile
}

// NewSet returns an empty Set; fill it with Put (deserialisation does).
func NewSet() *Set { return &Set{} }

// Put installs a profile under its kind, replacing any previous one.
func (s *Set) Put(p *Profile) { s.profiles[p.Kind] = p }

// MeasureSet benchmarks profiles for every kernel kind on the default
// grid with the given resolution.
func MeasureSet(t *exec.Timer, points int) *Set {
	grid := DefaultGrid(points)
	s := &Set{}
	for kind := kernels.Kind(0); int(kind) < kernels.NumKinds; kind++ {
		s.profiles[kind] = Measure(t, kind, grid, grid, grid)
	}
	return s
}

// PredictCall estimates a call's time using the matching profile.
func (s *Set) PredictCall(c kernels.Call) float64 {
	p := s.profiles[c.Kind]
	if p == nil {
		panic(fmt.Sprintf("profile: no profile for kind %v", c.Kind))
	}
	return p.PredictCall(c)
}

// Profile returns the profile for a kind (nil if absent).
func (s *Set) Profile(kind kernels.Kind) *Profile { return s.profiles[kind] }
