package profile

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lamb/internal/kernels"
	"lamb/internal/xrand"
)

// TestPersistRoundTripIdenticalPredictions is the persistence
// acceptance check: a written-then-loaded store predicts bit-for-bit
// identically to the freshly measured one, across every kernel kind and
// randomized shapes (on-grid, between points, and out-of-grid).
func TestPersistRoundTripIdenticalPredictions(t *testing.T) {
	timer := simTimer()
	s := MeasureSet(timer, 3)
	meta := HostMeta()
	meta.Backend = "simulated/test"
	meta.GridPoints = 3
	meta.Reps = timer.Reps

	var buf bytes.Buffer
	if err := Encode(&buf, s, meta); err != nil {
		t.Fatal(err)
	}
	loaded, gotMeta, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta {
		t.Fatalf("meta round-trip: got %+v, want %+v", gotMeta, meta)
	}

	rng := xrand.New(0x9e0f)
	for kind := kernels.Kind(0); int(kind) < kernels.NumKinds; kind++ {
		orig, got := s.Profile(kind), loaded.Profile(kind)
		if got == nil {
			t.Fatalf("%v profile missing after round-trip", kind)
		}
		for trial := 0; trial < 200; trial++ {
			m := rng.IntRange(1, 2400)
			n := rng.IntRange(1, 2400)
			k := rng.IntRange(1, 2400)
			if orig.RateAt(m, n, k) != got.RateAt(m, n, k) {
				t.Fatalf("%v rate at (%d,%d,%d) differs after round-trip: %v != %v",
					kind, m, n, k, got.RateAt(m, n, k), orig.RateAt(m, n, k))
			}
		}
	}
	// Whole-call predictions agree too (exercises the set dispatch).
	calls := []kernels.Call{
		kernels.NewGemm(300, 70, 911, "A", "B", "C", false, false),
		kernels.NewSyrk(80, 100, "A", "C"),
		kernels.NewTri2Full(333, "C"),
		kernels.NewPotrf(640, "S"),
	}
	for _, c := range calls {
		if s.PredictCall(c) != loaded.PredictCall(c) {
			t.Fatalf("prediction for %v differs after round-trip", c)
		}
	}
}

func TestPersistFileRoundTrip(t *testing.T) {
	timer := simTimer()
	s := MeasureSet(timer, 2)
	meta := Meta{Backend: "simulated/test", CreatedAt: "2026-07-30T00:00:00Z"}
	path := filepath.Join(t.TempDir(), "profile.json")
	if err := WriteFile(path, s, meta); err != nil {
		t.Fatal(err)
	}
	if info, err := os.Stat(path); err != nil || info.Mode().Perm() != 0o644 {
		t.Fatalf("store mode %v (%v), want 0644 (a shareable artifact)", info.Mode(), err)
	}
	loaded, gotMeta, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta.Source != path {
		t.Fatalf("Source = %q, want %q", gotMeta.Source, path)
	}
	if gotMeta.ID() != path {
		t.Fatalf("ID = %q, want the source path", gotMeta.ID())
	}
	if gotMeta.Backend != meta.Backend || gotMeta.CreatedAt != meta.CreatedAt {
		t.Fatalf("meta %+v", gotMeta)
	}
	c := kernels.NewGemm(100, 200, 300, "A", "B", "C", false, false)
	if s.PredictCall(c) != loaded.PredictCall(c) {
		t.Fatal("file round-trip changed predictions")
	}
}

func TestPersistEncodeRejectsPartialSet(t *testing.T) {
	// A partial set would write a store Decode refuses, failing only at
	// load time — Encode must reject it at write time instead.
	s := NewSet()
	p, err := New(kernels.Gemm, []int{10}, []int{10}, []int{10}, [][][]float64{{{1e9}}})
	if err != nil {
		t.Fatal(err)
	}
	s.Put(p)
	var buf bytes.Buffer
	if err := Encode(&buf, s, Meta{}); err == nil || !strings.Contains(err.Error(), "partial") {
		t.Fatalf("partial set encoded: %v", err)
	}
	if err := WriteFile(filepath.Join(t.TempDir(), "p.json"), s, Meta{}); err == nil {
		t.Fatal("partial set written")
	}
}

func TestPersistReadFileMissing(t *testing.T) {
	if _, _, err := ReadFile(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestPersistRejectsWrongSchemaVersion(t *testing.T) {
	_, _, err := Decode(strings.NewReader(`{"schema_version": 99, "profiles": []}`))
	if err == nil || !strings.Contains(err.Error(), "schema version 99") {
		t.Fatalf("wrong-version error %v", err)
	}
}

func TestPersistRejectsMalformedStores(t *testing.T) {
	cases := map[string]string{
		"truncated":      `{"schema_version": 1, "profiles": [`,
		"unknown kernel": `{"schema_version": 1, "profiles": [{"kernel": "dgesvd", "grid_m": [1], "grid_n": [1], "grid_k": [1], "rate": [[[1]]]}]}`,
		"empty grid":     `{"schema_version": 1, "profiles": [{"kernel": "gemm", "grid_m": [], "grid_n": [1], "grid_k": [1], "rate": []}]}`,
		"unsorted grid":  `{"schema_version": 1, "profiles": [{"kernel": "gemm", "grid_m": [9, 4], "grid_n": [1], "grid_k": [1], "rate": [[[1]], [[1]]]}]}`,
		"ragged rate":    `{"schema_version": 1, "profiles": [{"kernel": "gemm", "grid_m": [1, 2], "grid_n": [1], "grid_k": [1], "rate": [[[1]]]}]}`,
		"negative rate":  `{"schema_version": 1, "profiles": [{"kernel": "gemm", "grid_m": [1], "grid_n": [1], "grid_k": [1], "rate": [[[-1]]]}]}`,
		"zero rate":      `{"schema_version": 1, "profiles": [{"kernel": "gemm", "grid_m": [1], "grid_n": [1], "grid_k": [1], "rate": [[[0]]]}]}`,
		"duplicate kind": `{"schema_version": 1, "profiles": [{"kernel": "gemm", "grid_m": [1], "grid_n": [1], "grid_k": [1], "rate": [[[1]]]}, {"kernel": "gemm", "grid_m": [1], "grid_n": [1], "grid_k": [1], "rate": [[[1]]]}]}`,
		"no profiles":    `{"schema_version": 1, "profiles": []}`,
		"missing kinds":  `{"schema_version": 1, "profiles": [{"kernel": "gemm", "grid_m": [1], "grid_n": [1], "grid_k": [1], "rate": [[[1]]]}]}`,
	}
	for name, doc := range cases {
		if _, _, err := Decode(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestNewProfileValidates(t *testing.T) {
	good, err := New(kernels.Gemm, []int{10, 20}, []int{10}, []int{10},
		[][][]float64{{{1e9}}, {{2e9}}})
	if err != nil || good == nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	if _, err := New(kernels.Kind(99), []int{10}, []int{10}, []int{10}, [][][]float64{{{1}}}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := New(kernels.Gemm, []int{0}, []int{10}, []int{10}, [][][]float64{{{1}}}); err == nil {
		t.Fatal("non-positive grid size accepted")
	}
	if _, err := New(kernels.Gemm, []int{10, 10}, []int{10}, []int{10}, [][][]float64{{{1}}, {{1}}}); err == nil {
		t.Fatal("duplicate grid point accepted")
	}
	if _, err := New(kernels.Gemm, []int{10}, []int{10}, []int{10}, [][][]float64{{{math.NaN()}}}); err == nil {
		t.Fatal("NaN rate accepted")
	}
	if _, err := New(kernels.Gemm, []int{10}, []int{10}, []int{10}, [][][]float64{{{0}}}); err == nil {
		t.Fatal("zero rate accepted (would predict +Inf forever)")
	}
}

// TestMetaID pins the provenance tag rules serving relies on.
func TestMetaID(t *testing.T) {
	if got := (Meta{}).ID(); got != "in-memory" {
		t.Fatalf("zero meta ID %q", got)
	}
	if got := (Meta{Backend: "blas", Hostname: "h1"}).ID(); got != "blas@h1" {
		t.Fatalf("backend meta ID %q", got)
	}
	if got := (Meta{Backend: "blas"}).ID(); got != "blas" {
		t.Fatalf("backend-only meta ID %q", got)
	}
	if got := (Meta{Hostname: "h1"}).ID(); got != "h1" {
		t.Fatalf("host-only meta ID %q", got)
	}
	if got := (Meta{Source: "PROFILE.json", Backend: "blas"}).ID(); got != "PROFILE.json" {
		t.Fatalf("source meta ID %q", got)
	}
}
