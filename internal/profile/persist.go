// Profile persistence: a versioned JSON schema that makes kernel
// performance profiles a durable artifact rather than a per-invocation
// throwaway. `lamb profile` measures the kernel grid once and writes a
// store; `lamb serve -profile` and `lamb select -profile` load it and
// answer profile-backed queries (min-predicted, adaptive) without any
// serve-time measurement.
//
// The file format is one JSON object:
//
//	{
//	  "schema_version": 1,
//	  "machine": { ... Meta: backend, host, grid, reps, peak ... },
//	  "profiles": [
//	    {"kernel": "gemm", "grid_m": [...], "grid_n": [...],
//	     "grid_k": [...], "rate": [[[...]]]},
//	    ...
//	  ]
//	}
//
// Rates are serialised as float64 through encoding/json, whose shortest
// round-trip representation is exact: a loaded store predicts bit-for-bit
// identically to the freshly measured one (pinned by persist_test.go).
package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"lamb/internal/kernels"
)

// SchemaVersion is the version of the profile file format this package
// writes and accepts. Bump it on incompatible schema changes; Decode
// rejects mismatching files rather than misreading them.
const SchemaVersion = 1

// Meta records the provenance of a measured profile set: what machine
// and backend produced it, under which protocol. Serving surfaces it
// through /api/stats and query records so a consumer can tell which
// measurement a prediction came from.
type Meta struct {
	// CreatedAt is the RFC 3339 measurement timestamp.
	CreatedAt string `json:"created_at,omitempty"`
	// Backend names the executor that was profiled (exec.Executor.Name).
	Backend string `json:"backend,omitempty"`
	// Hostname, GOOS, GOARCH, NumCPU, and GoVersion identify the host.
	Hostname  string `json:"hostname,omitempty"`
	GOOS      string `json:"goos,omitempty"`
	GOARCH    string `json:"goarch,omitempty"`
	NumCPU    int    `json:"num_cpu,omitempty"`
	GoVersion string `json:"go_version,omitempty"`
	// Reps is the timer repetition count the measurement used.
	Reps int `json:"reps,omitempty"`
	// GridPoints is the per-dimension grid resolution.
	GridPoints int `json:"grid_points,omitempty"`
	// PeakFlops is the backend's peak FLOP rate at measurement time.
	PeakFlops float64 `json:"peak_flops,omitempty"`
	// Source is the path the set was loaded from. It is set by ReadFile,
	// not serialised: a copied file keeps working.
	Source string `json:"-"`
}

// HostMeta returns a Meta describing the current host; callers fill in
// the measurement-specific fields (Backend, Reps, GridPoints, ...).
func HostMeta() Meta {
	host, _ := os.Hostname()
	return Meta{
		Hostname:  host,
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
	}
}

// ID is the short provenance tag query records carry: the source path
// when the set was loaded from a file, otherwise backend@host (or
// whichever of the two is known).
func (m Meta) ID() string {
	switch {
	case m.Source != "":
		return m.Source
	case m.Backend != "" && m.Hostname != "":
		return m.Backend + "@" + m.Hostname
	case m.Backend != "":
		return m.Backend
	case m.Hostname != "":
		return m.Hostname
	default:
		return "in-memory"
	}
}

// envelope is the serialised file.
type envelope struct {
	SchemaVersion int           `json:"schema_version"`
	Meta          Meta          `json:"machine"`
	Profiles      []fileProfile `json:"profiles"`
}

// fileProfile is one kernel's serialised surface.
type fileProfile struct {
	Kernel string        `json:"kernel"`
	GridM  []int         `json:"grid_m"`
	GridN  []int         `json:"grid_n"`
	GridK  []int         `json:"grid_k"`
	Rate   [][][]float64 `json:"rate"`
}

// Encode writes the set and its provenance as schema-versioned JSON.
// The set must cover every kernel kind — Decode refuses partial stores,
// so writing one would produce an artifact that fails only at load
// time, possibly on a different machine.
func Encode(w io.Writer, s *Set, meta Meta) error {
	if missing := s.missingKinds(); len(missing) > 0 {
		return fmt.Errorf("profile: cannot encode a partial set, missing kernel profiles: %s",
			strings.Join(missing, ", "))
	}
	env := envelope{SchemaVersion: SchemaVersion, Meta: meta}
	for kind := kernels.Kind(0); int(kind) < kernels.NumKinds; kind++ {
		p := s.profiles[kind]
		env.Profiles = append(env.Profiles, fileProfile{
			Kernel: kind.String(),
			GridM:  p.GridM, GridN: p.GridN, GridK: p.GridK,
			Rate: p.rate,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(env)
}

// Decode reads a schema-versioned profile store. Files written by a
// different schema version are rejected with a descriptive error; the
// profile data is re-validated on load (grids sorted, rate table shaped,
// rates finite), so a hand-edited file cannot smuggle in a surface the
// interpolator would mispredict on.
func Decode(r io.Reader) (*Set, Meta, error) {
	var env envelope
	dec := json.NewDecoder(r)
	if err := dec.Decode(&env); err != nil {
		return nil, Meta{}, fmt.Errorf("profile: decoding store: %w", err)
	}
	if env.SchemaVersion != SchemaVersion {
		return nil, Meta{}, fmt.Errorf("profile: store has schema version %d, this build reads %d",
			env.SchemaVersion, SchemaVersion)
	}
	s := NewSet()
	for _, fp := range env.Profiles {
		kind, err := kernels.ParseKind(fp.Kernel)
		if err != nil {
			return nil, Meta{}, fmt.Errorf("profile: decoding store: %w", err)
		}
		if s.profiles[kind] != nil {
			return nil, Meta{}, fmt.Errorf("profile: store has duplicate %v profile", kind)
		}
		p, err := New(kind, fp.GridM, fp.GridN, fp.GridK, fp.Rate)
		if err != nil {
			return nil, Meta{}, err
		}
		s.Put(p)
	}
	// Every kind must be covered: Set.PredictCall has no fallback for a
	// missing profile, and every store this package writes is complete —
	// a partial one is a truncated or hand-edited file.
	if missing := s.missingKinds(); len(missing) > 0 {
		return nil, Meta{}, fmt.Errorf("profile: store is missing kernel profiles: %s", strings.Join(missing, ", "))
	}
	return s, env.Meta, nil
}

// missingKinds lists the kernel kinds the set has no profile for.
func (s *Set) missingKinds() []string {
	var missing []string
	for kind := kernels.Kind(0); int(kind) < kernels.NumKinds; kind++ {
		if s.profiles[kind] == nil {
			missing = append(missing, kind.String())
		}
	}
	return missing
}

// WriteFile saves the set to path (atomically via a temp file in the
// same directory, so a crashed writer never leaves a truncated store a
// later serve would choke on).
func WriteFile(path string, s *Set, meta Meta) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".profile-*.json")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := Encode(tmp, s, meta); err != nil {
		tmp.Close()
		return err
	}
	// CreateTemp makes the file 0600; the store is a shareable artifact
	// (written by one user, served by another, copied between machines),
	// so widen to the conventional 0644 before the rename publishes it.
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadFile loads a profile store, recording the path as Meta.Source.
func ReadFile(path string) (*Set, Meta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, Meta{}, err
	}
	defer f.Close()
	s, meta, err := Decode(f)
	if err != nil {
		return nil, Meta{}, fmt.Errorf("%s: %w", path, err)
	}
	meta.Source = path
	return s, meta, nil
}
