package selection

import (
	"math"
	"reflect"
	"testing"

	"lamb/internal/expr"
	"lamb/internal/xrand"
)

func TestPosteriorWithoutEvidenceIsThePrior(t *testing.T) {
	prior := stubPredictor{1: 3.0, 2: 1.0, 3: 2.0}
	s := Adaptive{Prior: prior}
	post := s.Posterior(expr.Instance{100, 100}, stubAlgs(3))
	if len(post) != 3 {
		t.Fatalf("posterior length %d", len(post))
	}
	for i, want := range []float64{3.0, 1.0, 2.0} {
		if post[i].Mean != want {
			t.Fatalf("posterior %d mean %g, want %g", i, post[i].Mean, want)
		}
		if post[i].Informed {
			t.Fatalf("posterior %d informed with no evidence", i)
		}
		// Prior-only spread: std = relStd·p, mass = 1, so stderr = relStd·p.
		wantSE := DefaultPriorRelStd * want
		if math.Abs(post[i].StdErr-wantSE) > 1e-12 {
			t.Fatalf("posterior %d stderr %g, want %g", i, post[i].StdErr, wantSE)
		}
	}
	if BestIndex(post) != 1 {
		t.Fatalf("best %d, want 1", BestIndex(post))
	}
}

func TestPosteriorMeanMatchesChooseFor(t *testing.T) {
	// Posterior is the generalisation of the old blend: the pooled means
	// must induce exactly the pick ChooseFor makes.
	prior := stubPredictor{1: 1.0, 2: 1.4, 3: 1.5}
	s := Adaptive{
		Prior: prior,
		Observe: func(expr.Instance) []Observation {
			return []Observation{
				{Algorithm: 1, Seconds: 10.0, Count: 3, Distance: 0},
				{Algorithm: 3, Seconds: 0.1, Count: 3, Distance: 0},
			}
		},
	}
	algs := stubAlgs(3)
	inst := expr.Instance{100}
	post := s.Posterior(inst, algs)
	if got, want := BestIndex(post), s.ChooseFor(inst, algs); got != want {
		t.Fatalf("BestIndex %d, ChooseFor %d", got, want)
	}
	// alg1: (1 + 3·10)/4 = 7.75; alg3: (1.5 + 3·0.1)/4 = 0.45.
	if math.Abs(post[0].Mean-7.75) > 1e-12 || math.Abs(post[2].Mean-0.45) > 1e-12 {
		t.Fatalf("pooled means %g %g", post[0].Mean, post[2].Mean)
	}
	if !post[0].Informed || post[1].Informed || !post[2].Informed {
		t.Fatalf("informed flags %v %v %v", post[0].Informed, post[1].Informed, post[2].Informed)
	}
}

func TestPosteriorVarianceShrinksWithEvidence(t *testing.T) {
	// More mass behind the same mean narrows the standard error — the
	// property that makes confidence grow with feedback.
	prior := stubPredictor{1: 1.0}
	obs := Observation{Algorithm: 1, Seconds: 1.0, Count: 1, Distance: 0}
	s := Adaptive{Prior: prior, Observe: func(expr.Instance) []Observation {
		return []Observation{obs}
	}}
	algs := stubAlgs(1)
	inst := expr.Instance{10}
	narrow := s.Posterior(inst, algs)[0]
	obs.Count = 20
	wide := s.Posterior(inst, algs)[0]
	if wide.StdErr >= narrow.StdErr {
		t.Fatalf("stderr did not shrink: %g -> %g", narrow.StdErr, wide.StdErr)
	}
	if wide.Weight <= narrow.Weight {
		t.Fatalf("weight did not grow: %g -> %g", narrow.Weight, wide.Weight)
	}
}

func TestBeatProbability(t *testing.T) {
	a := AlgPosterior{Mean: 1.0, StdErr: 0.1}
	b := AlgPosterior{Mean: 2.0, StdErr: 0.1}
	if p := BeatProbability(a, b); p < 0.99 {
		t.Fatalf("clear winner p=%g", p)
	}
	if p := BeatProbability(b, a); p > 0.01 {
		t.Fatalf("clear loser p=%g", p)
	}
	if p := BeatProbability(a, a); p != 0.5 {
		t.Fatalf("self tie p=%g", p)
	}
	// Complementarity: P(a<b) + P(b<a) = 1.
	c := AlgPosterior{Mean: 1.1, StdErr: 0.3}
	if s := BeatProbability(a, c) + BeatProbability(c, a); math.Abs(s-1) > 1e-12 {
		t.Fatalf("complement sum %g", s)
	}
	// Degenerate posteriors (no spread) decide by mean.
	z1 := AlgPosterior{Mean: 1}
	z2 := AlgPosterior{Mean: 2}
	if BeatProbability(z1, z2) != 1 || BeatProbability(z2, z1) != 0 || BeatProbability(z1, z1) != 0.5 {
		t.Fatal("degenerate beat probabilities")
	}
}

// TestWinProbabilitiesSumToOne is the property test for the ranking: for
// arbitrary posterior sets of every size, p_best sums to exactly 1 and
// every entry stays in [0, 1].
func TestWinProbabilitiesSumToOne(t *testing.T) {
	gen := xrand.New(7)
	for trial := 0; trial < 200; trial++ {
		n := 1 + gen.Intn(6)
		post := make([]AlgPosterior, n)
		for i := range post {
			post[i] = AlgPosterior{
				Algorithm: i + 1,
				Mean:      0.1 + gen.Float64(),
				StdErr:    gen.Float64() * 0.5, // sometimes ~0: degenerate spread
			}
		}
		probs := WinProbabilities(post, xrand.New(uint64(trial)), 0)
		if len(probs) != n {
			t.Fatalf("trial %d: %d probs for %d algorithms", trial, len(probs), n)
		}
		sum := 0.0
		for i, p := range probs {
			if p < 0 || p > 1 {
				t.Fatalf("trial %d: p[%d]=%g out of range", trial, i, p)
			}
			sum += p
		}
		// DefaultRankSamples is a power of two and n≤2 is closed-form, so
		// the sum is exact, not approximate.
		if sum != 1 {
			t.Fatalf("trial %d (n=%d): probabilities sum to %g", trial, n, sum)
		}
	}
}

func TestWinProbabilitiesDeterministicUnderSeededSampler(t *testing.T) {
	post := []AlgPosterior{
		{Algorithm: 1, Mean: 1.0, StdErr: 0.2},
		{Algorithm: 2, Mean: 1.1, StdErr: 0.3},
		{Algorithm: 3, Mean: 1.3, StdErr: 0.1},
	}
	a := WinProbabilities(post, xrand.New(99), 0)
	b := WinProbabilities(post, xrand.New(99), 0)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different probabilities: %v vs %v", a, b)
	}
	// The faster, tighter algorithm should dominate.
	if a[0] <= a[2] {
		t.Fatalf("ordering lost: %v", a)
	}
}

func TestWinProbabilitiesEdgeCases(t *testing.T) {
	if got := WinProbabilities(nil, nil, 0); got != nil {
		t.Fatalf("empty set: %v", got)
	}
	one := WinProbabilities([]AlgPosterior{{Algorithm: 1, Mean: 2}}, nil, 0)
	if !reflect.DeepEqual(one, []float64{1}) {
		t.Fatalf("singleton: %v", one)
	}
	// Two algorithms use the closed form even with a nil rng.
	two := WinProbabilities([]AlgPosterior{
		{Algorithm: 1, Mean: 1, StdErr: 0.1},
		{Algorithm: 2, Mean: 9, StdErr: 0.1},
	}, nil, 0)
	if two[0] < 0.99 || two[0]+two[1] != 1 {
		t.Fatalf("closed form: %v", two)
	}
}

func TestGapConfidence(t *testing.T) {
	settled := []AlgPosterior{
		{Algorithm: 1, Mean: 1.0, StdErr: 0.01},
		{Algorithm: 2, Mean: 2.0, StdErr: 0.01},
		{Algorithm: 3, Mean: 3.0, StdErr: 0.01},
	}
	if c := GapConfidence(settled); c < 0.99 {
		t.Fatalf("settled gap confidence %g", c)
	}
	coinFlip := []AlgPosterior{
		{Algorithm: 1, Mean: 1.0, StdErr: 0.5},
		{Algorithm: 2, Mean: 1.001, StdErr: 0.5},
	}
	if c := GapConfidence(coinFlip); math.Abs(c-0.5) > 0.01 {
		t.Fatalf("coin-flip gap confidence %g", c)
	}
	if c := GapConfidence(settled[:1]); c != 1 {
		t.Fatalf("singleton gap confidence %g", c)
	}
}

func TestSampleBestExploresWidePosterior(t *testing.T) {
	// Thompson property: a slightly-slower algorithm with a wide
	// posterior is sampled sometimes; a settled loser essentially never.
	post := []AlgPosterior{
		{Algorithm: 1, Mean: 1.0, StdErr: 0.01}, // settled favourite
		{Algorithm: 2, Mean: 1.1, StdErr: 0.5},  // uncertain challenger
		{Algorithm: 3, Mean: 5.0, StdErr: 0.01}, // settled loser
	}
	rng := xrand.New(3)
	counts := [3]int{}
	for i := 0; i < 2000; i++ {
		counts[SampleBest(post, rng)]++
	}
	if counts[1] == 0 {
		t.Fatal("uncertain challenger never explored")
	}
	if counts[0] < counts[1] {
		t.Fatalf("favourite sampled less than challenger: %v", counts)
	}
	if counts[2] != 0 {
		t.Fatalf("settled loser explored %d times", counts[2])
	}
}

func TestFlopsPredictorOrdersLikeMinFlops(t *testing.T) {
	algs := stubAlgs(3)
	var p FlopsPredictor
	post := make([]AlgPosterior, len(algs))
	for i := range algs {
		post[i] = AlgPosterior{Algorithm: algs[i].Index, Mean: p.PredictAlgorithm(&algs[i])}
	}
	if BestIndex(post) != (MinFlops{}).Choose(algs) {
		t.Fatal("FlopsPredictor posterior disagrees with MinFlops")
	}
}
