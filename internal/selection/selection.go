// Package selection implements algorithm-selection strategies for linear
// algebra expressions and an evaluation harness that measures their
// regret against the empirical optimum.
//
// The paper's subject is the MinFlops strategy (used by Linnea, Armadillo,
// and Julia): pick an algorithm with the minimum FLOP count. Its failure
// cases are exactly the anomalies the paper studies. The paper's
// conclusion conjectures that combining FLOP counts with kernel
// performance profiles "may be able to predict a large fraction of
// anomalies" — the MinPredicted strategy implements that conjecture, and
// the Evaluate harness quantifies how much of the anomaly-induced regret
// it recovers.
package selection

import (
	"context"
	"fmt"

	"lamb/internal/exec"
	"lamb/internal/expr"
	"lamb/internal/profile"
	"lamb/internal/stats"
	"lamb/internal/xrand"
)

// Strategy selects one algorithm from a set.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Choose returns the index of the selected algorithm.
	Choose(algs []expr.Algorithm) int
}

// MinFlops selects an algorithm with the minimum FLOP count — the
// discriminant the paper evaluates (ties broken by lowest index, matching
// a deterministic best-first search).
type MinFlops struct{}

// Name implements Strategy.
func (MinFlops) Name() string { return "min-flops" }

// Choose implements Strategy.
func (MinFlops) Choose(algs []expr.Algorithm) int {
	if len(algs) == 0 {
		panic("selection: choose from empty set")
	}
	best := 0
	bestF := algs[0].Flops()
	for i := 1; i < len(algs); i++ {
		if f := algs[i].Flops(); f < bestF {
			best, bestF = i, f
		}
	}
	return best
}

// MinPredicted selects the algorithm whose predicted execution time — the
// sum over its calls of profile-interpolated times — is minimal. This is
// the paper's proposed improvement: FLOP counts combined with kernel
// performance profiles.
type MinPredicted struct {
	Profiles *profile.Set
}

// Name implements Strategy.
func (MinPredicted) Name() string { return "min-predicted" }

// Choose implements Strategy.
func (s MinPredicted) Choose(algs []expr.Algorithm) int {
	if len(algs) == 0 {
		panic("selection: choose from empty set")
	}
	best := 0
	bestT := s.PredictAlgorithm(&algs[0])
	for i := 1; i < len(algs); i++ {
		if t := s.PredictAlgorithm(&algs[i]); t < bestT {
			best, bestT = i, t
		}
	}
	return best
}

// PredictAlgorithm implements Predictor: the algorithm's predicted time
// is the sum of its calls' profile-interpolated times.
func (s MinPredicted) PredictAlgorithm(a *expr.Algorithm) float64 {
	var sum float64
	for _, c := range a.Calls {
		sum += s.Profiles.PredictCall(c)
	}
	return sum
}

// Oracle selects the empirically fastest algorithm by measuring every
// algorithm with the timer — the brute-force baseline available only when
// instance sizes are known and measurement is affordable.
type Oracle struct {
	Timer *exec.Timer
}

// Name implements Strategy.
func (Oracle) Name() string { return "oracle" }

// Choose implements Strategy.
func (s Oracle) Choose(algs []expr.Algorithm) int {
	if len(algs) == 0 {
		panic("selection: choose from empty set")
	}
	best := 0
	bestT := s.Timer.MeasureAlgorithm(&algs[0]).Total
	for i := 1; i < len(algs); i++ {
		if t := s.Timer.MeasureAlgorithm(&algs[i]).Total; t < bestT {
			best, bestT = i, t
		}
	}
	return best
}

// ContextStrategy is a Strategy whose choice can be cancelled: timed
// strategies measure real wall time, so a serving engine with request
// deadlines needs a way to abort mid-selection. ChooseCtx returns the
// context's error when cancelled; the engine then degrades to a
// FLOPs-only answer instead of blocking past the deadline.
type ContextStrategy interface {
	Strategy
	ChooseCtx(ctx context.Context, algs []expr.Algorithm) (int, error)
}

// ChooseCtx implements ContextStrategy: each algorithm is measured
// through the cancellable timer path, so a deadline aborts within one
// repetition.
func (s Oracle) ChooseCtx(ctx context.Context, algs []expr.Algorithm) (int, error) {
	if len(algs) == 0 {
		panic("selection: choose from empty set")
	}
	best := -1
	bestT := 0.0
	for i := range algs {
		m, err := s.Timer.MeasureAlgorithmCtx(ctx, &algs[i])
		if err != nil {
			return -1, err
		}
		if best < 0 || m.Total < bestT {
			best, bestT = i, m.Total
		}
	}
	return best, nil
}

// Report summarises a strategy's behaviour over a set of instances.
type Report struct {
	Strategy string
	// Instances is the number of evaluated instances.
	Instances int
	// OptimalPicks counts instances where the strategy picked a fastest
	// algorithm (time within Tolerance of the best).
	OptimalPicks int
	// Regret summarises (T_chosen − T_best)/T_best across instances.
	Regret stats.Summary
	// WorstInstance is the instance with the largest regret.
	WorstInstance expr.Instance
}

// String renders a one-line summary.
func (r Report) String() string {
	return fmt.Sprintf("%-13s optimal %4d/%d  regret mean %5.1f%% max %5.1f%%",
		r.Strategy, r.OptimalPicks, r.Instances, 100*r.Regret.Mean(), 100*r.Regret.Max)
}

// Config parameterises Evaluate.
type Config struct {
	// Box is the instance space to sample.
	Box expr.Box
	// Instances is the number of sampled instances.
	Instances int
	// Seed drives the sampling stream.
	Seed uint64
	// Tolerance is the relative slack within which a pick counts as
	// optimal (default 0.02).
	Tolerance float64
}

// Evaluate measures the regret of each strategy on uniformly sampled
// instances: for every instance all algorithms are measured with the
// timer, and each strategy's pick is compared with the fastest.
func Evaluate(e expr.Expression, t *exec.Timer, strategies []Strategy, cfg Config) []Report {
	if err := cfg.Box.Validate(); err != nil {
		panic(err)
	}
	if cfg.Instances <= 0 {
		panic("selection: Instances must be positive")
	}
	tol := cfg.Tolerance
	if tol <= 0 {
		tol = 0.02
	}
	rng := xrand.NewLabeled(cfg.Seed, "selection/"+e.Name())
	reports := make([]Report, len(strategies))
	for i, s := range strategies {
		reports[i].Strategy = s.Name()
	}
	for n := 0; n < cfg.Instances; n++ {
		inst := cfg.Box.Sample(rng)
		algs := e.Algorithms(inst)
		times := make([]float64, len(algs))
		bestT := -1.0
		for i := range algs {
			times[i] = t.MeasureAlgorithm(&algs[i]).Total
			if bestT < 0 || times[i] < bestT {
				bestT = times[i]
			}
		}
		for i, s := range strategies {
			pick := s.Choose(algs)
			regret := (times[pick] - bestT) / bestT
			if regret < 0 {
				regret = 0
			}
			r := &reports[i]
			r.Instances++
			if times[pick] <= bestT*(1+tol) {
				r.OptimalPicks++
			}
			if regret > r.Regret.Max || r.Regret.N == 0 {
				r.WorstInstance = inst.Clone()
			}
			r.Regret.Add(regret)
		}
	}
	return reports
}
