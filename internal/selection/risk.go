package selection

import (
	"math"

	"lamb/internal/expr"
	"lamb/internal/xrand"
)

// The follow-up paper "A Test for FLOPs as a Discriminant for Linear
// Algebra Algorithms" (arXiv:2209.03258) asks not just *which*
// algorithm is fastest but *how sure* a selector can be: it builds a
// statistical test for when the min-FLOPs discriminant is trustworthy.
// This file implements that test over the Adaptive posterior — each
// algorithm's execution time is summarised as a normal with a mean and
// a standard error, and the test statistics below (pairwise beat
// probability, top-2 gap confidence, Monte Carlo win probabilities)
// turn those posteriors into a ranking with honest uncertainty.

// DefaultPriorRelStd is the prior's relative spread: the paper's
// profile-based predictions land within a few tens of percent of
// measured times on the studied machines, so the virtual prior
// observation carries a standard deviation of a quarter of the
// predicted time.
const DefaultPriorRelStd = 0.25

// DefaultRankSamples is the Monte Carlo sample count for full-ranking
// win probabilities. A power of two so that counts/samples sums to
// exactly 1 in floating point.
const DefaultRankSamples = 512

// DefaultAnomalyThreshold flags the paper's mispredict regions: a query
// is anomalous when the min-FLOPs pick's probability of beating the
// posterior-best algorithm falls below this value — i.e. the evidence
// contradicts the discriminant with ≥90% confidence.
const DefaultAnomalyThreshold = 0.1

// AlgPosterior is one algorithm's time posterior: a normal summary of
// everything known about its execution time at the queried instance.
type AlgPosterior struct {
	// Algorithm is the 1-based algorithm index (Algorithm.Index).
	Algorithm int
	// Mean is the posterior mean execution time in seconds.
	Mean float64
	// StdErr is the standard error of the mean: the pooled standard
	// deviation shrunk by the total evidence mass.
	StdErr float64
	// Weight is the total evidence mass behind the estimate (prior
	// pseudo-count plus distance-weighted observation mass).
	Weight float64
	// Informed reports whether any measured outcome contributed.
	Informed bool
}

// BestIndex returns the position of the posterior-mean argmin — strict
// minimum, first wins — matching the deterministic tie-break every
// other strategy in this package uses.
func BestIndex(post []AlgPosterior) int {
	if len(post) == 0 {
		panic("selection: choose from empty set")
	}
	best := 0
	bestT := post[0].Mean
	for i := 1; i < len(post); i++ {
		if post[i].Mean < bestT {
			best, bestT = i, post[i].Mean
		}
	}
	return best
}

// normalCDF is Φ(x) via the complementary error function.
func normalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// BeatProbability is P(tₐ < t_b) under independent normal posteriors:
// Φ((μ_b−μₐ)/√(σₐ²+σ_b²)). With both spreads zero the answer is
// decided by the means alone (½ on an exact tie).
func BeatProbability(a, b AlgPosterior) float64 {
	denom := math.Sqrt(a.StdErr*a.StdErr + b.StdErr*b.StdErr)
	if denom == 0 {
		switch {
		case a.Mean < b.Mean:
			return 1
		case a.Mean > b.Mean:
			return 0
		default:
			return 0.5
		}
	}
	return normalCDF((b.Mean - a.Mean) / denom)
}

// GapConfidence is the closed-form top-2 test statistic: the
// probability that the posterior-best algorithm beats the runner-up.
// Near ½ the ranking's head is a coin flip; near 1 it is settled. A
// single-algorithm set is trivially certain.
func GapConfidence(post []AlgPosterior) float64 {
	if len(post) < 2 {
		return 1
	}
	best := BestIndex(post)
	runner := -1
	for i := range post {
		if i == best {
			continue
		}
		if runner < 0 || post[i].Mean < post[runner].Mean {
			runner = i
		}
	}
	return BeatProbability(post[best], post[runner])
}

// WinProbabilities estimates each algorithm's probability of being the
// fastest. Two algorithms use the closed form (so the pair sums to
// exactly 1); larger sets are sampled samples times (default
// DefaultRankSamples) from the posteriors, counting argmin wins — ties
// go to the lowest position, matching BestIndex. The result sums to
// exactly 1 whenever samples is a power of two.
func WinProbabilities(post []AlgPosterior, rng *xrand.Rand, samples int) []float64 {
	switch len(post) {
	case 0:
		return nil
	case 1:
		return []float64{1}
	case 2:
		p := BeatProbability(post[0], post[1])
		return []float64{p, 1 - p}
	}
	if samples <= 0 {
		samples = DefaultRankSamples
	}
	if rng == nil {
		rng = xrand.New(0)
	}
	wins := make([]int, len(post))
	for s := 0; s < samples; s++ {
		wins[sampleBest(post, rng)]++
	}
	out := make([]float64, len(post))
	for i, w := range wins {
		out[i] = float64(w) / float64(samples)
	}
	return out
}

// SampleBest draws one execution time per algorithm from its posterior
// and returns the argmin position — one Thompson sampling round. An
// algorithm is selected with exactly its posterior probability of being
// fastest, which is what makes the exploration policy self-correcting:
// under-observed alternatives with wide posteriors get tried, settled
// losers do not.
func SampleBest(post []AlgPosterior, rng *xrand.Rand) int {
	if len(post) == 0 {
		panic("selection: choose from empty set")
	}
	return sampleBest(post, rng)
}

func sampleBest(post []AlgPosterior, rng *xrand.Rand) int {
	best := 0
	bestT := math.Inf(1)
	for i := range post {
		t := post[i].Mean + post[i].StdErr*rng.NormFloat64()
		if t < bestT {
			best, bestT = i, t
		}
	}
	return best
}

// FlopsPredictor is the profile-free prior: an algorithm's "time" is
// its FLOP count. The scale is wrong (operations, not seconds) but the
// induced order is exactly the paper's min-FLOPs discriminant, so a
// posterior built on it ranks identically to MinFlops until real
// outcomes arrive.
type FlopsPredictor struct{}

// PredictAlgorithm implements Predictor.
func (FlopsPredictor) PredictAlgorithm(a *expr.Algorithm) float64 { return a.Flops() }
