package selection

import (
	"math"

	"lamb/internal/expr"
)

// The follow-up paper "A Test for FLOPs as a Discriminant for Linear
// Algebra Algorithms" (arXiv:2209.03258) reframes algorithm selection
// as an online decision process: a selector that serves traffic can
// observe how its choices actually perform and fold those outcomes back
// into later decisions. Adaptive implements that loop on top of the
// profile-backed prior this repository already has.

// Predictor estimates an algorithm's execution time — the prior an
// adaptive selector starts from before any outcome has been observed.
type Predictor interface {
	PredictAlgorithm(a *expr.Algorithm) float64
}

// InstanceStrategy is a Strategy that can use the queried instance
// itself (not just the bound algorithm set) when choosing — e.g. to
// look up measured outcomes recorded near that instance. The engine
// prefers ChooseFor when a strategy implements it.
type InstanceStrategy interface {
	Strategy
	ChooseFor(inst expr.Instance, algs []expr.Algorithm) int
}

// Observation is one aggregated measured outcome: algorithm Algorithm
// (the paper's 1-based index) took Seconds on average over Count
// measurements at an instance Distance away from the queried one in
// log-shape space. Weight, when positive, is the time-decayed
// pseudo-count the outcome store maintains (half-life decay on stale
// evidence); when zero, the raw Count stands in — so sources without
// decay keep working unchanged. M2, when positive, is the stream's
// Welford sum of squared deviations (its variance is M2 divided by the
// evidence mass), so the posterior can carry an honest spread; zero
// means the source tracks no variance and the prior's spread stands in.
type Observation struct {
	Algorithm int
	Seconds   float64
	Count     int
	Weight    float64
	Distance  float64
	M2        float64
}

// weight is the observation's effective evidence mass: the decayed
// Weight when the source maintains one, otherwise the raw Count.
func (o Observation) weight() float64 {
	if o.Weight > 0 {
		return o.Weight
	}
	return float64(o.Count)
}

// DefaultAdaptiveRadius is the log-shape distance scale at which
// observed outcomes stop informing a query: e^0.25 ≈ 1.28, so outcomes
// within roughly a quarter log-unit (a ~28% combined size difference)
// carry meaningful weight.
const DefaultAdaptiveRadius = 0.25

// DefaultPriorWeight is the pseudo-count the prediction enters the
// blend with: one virtual observation at the predicted time, so a
// single contradicting measurement already pulls the estimate halfway.
const DefaultPriorWeight = 1.0

// Adaptive starts from a profile-backed prediction and refines it with
// measured outcomes fed back by callers. For each algorithm the
// estimate is a precision-weighted blend
//
//	t̂ᵢ = (w₀·predictedᵢ + Σ wₒ·secondsₒ) / (w₀ + Σ wₒ)
//
// over the observations o for algorithm i near the queried instance,
// with Gaussian distance weights wₒ = massₒ·exp(−(dₒ/Radius)²) — massₒ
// the observation's decayed Weight (or raw Count when the source keeps
// no decay) — and the prior pseudo-count w₀ = PriorWeight. With no feedback it reduces to
// the prior exactly; as outcomes accumulate in an instance region the
// measured times dominate and repeated traffic converges on the
// empirically best algorithm there.
type Adaptive struct {
	// Prior supplies the starting prediction (typically MinPredicted
	// over a persisted profile store).
	Prior Predictor
	// Observe returns outcomes recorded near the instance. The engine
	// backs it with its concurrency-safe outcome store; nil means no
	// feedback source, i.e. the prior alone.
	Observe func(inst expr.Instance) []Observation
	// Radius is the distance scale (default DefaultAdaptiveRadius).
	Radius float64
	// PriorWeight is the prior's pseudo-count (default DefaultPriorWeight).
	PriorWeight float64
	// PriorRelStd is the prior's relative spread (default
	// DefaultPriorRelStd): the virtual prior observation carries a
	// standard deviation of PriorRelStd times the predicted time.
	PriorRelStd float64
}

// Name implements Strategy.
func (Adaptive) Name() string { return "adaptive" }

// Choose implements Strategy: without an instance there is nothing to
// look outcomes up by, so the choice is the prior's.
func (s Adaptive) Choose(algs []expr.Algorithm) int {
	return s.ChooseFor(nil, algs)
}

// ChooseFor implements InstanceStrategy: the posterior-mean argmin.
func (s Adaptive) ChooseFor(inst expr.Instance, algs []expr.Algorithm) int {
	return BestIndex(s.Posterior(inst, algs))
}

// Posterior computes the per-algorithm time posterior at inst: each
// algorithm's virtual prior observation (mass PriorWeight at the
// predicted time, spread PriorRelStd·predicted) pooled with its
// distance-weighted measured outcomes. The pooled mean reproduces the
// blend formula above exactly; the pooled variance mixes each stream's
// own spread with the spread *between* stream means, so disagreeing
// evidence widens the posterior instead of silently averaging away.
func (s Adaptive) Posterior(inst expr.Instance, algs []expr.Algorithm) []AlgPosterior {
	if len(algs) == 0 {
		panic("selection: choose from empty set")
	}
	if s.Prior == nil {
		panic("selection: Adaptive needs a Prior predictor (e.g. MinPredicted over a profile set)")
	}
	radius := s.Radius
	if radius <= 0 {
		radius = DefaultAdaptiveRadius
	}
	w0 := s.PriorWeight
	if w0 <= 0 {
		w0 = DefaultPriorWeight
	}
	relStd := s.PriorRelStd
	if relStd <= 0 {
		relStd = DefaultPriorRelStd
	}
	// sumW/sumWM/sumWS accumulate per algorithm position: evidence mass,
	// weighted first moment, and weighted second moment. Observations
	// name algorithms by their 1-based Algorithm.Index, which coincides
	// with position+1 only for full enumeration sets — a caller may pass
	// a filtered or reordered set, so match on Index.
	sumW := make([]float64, len(algs))
	sumWM := make([]float64, len(algs))
	sumWS := make([]float64, len(algs))
	informed := make([]bool, len(algs))
	if s.Observe != nil && inst != nil {
		pos := make(map[int]int, len(algs))
		for i := range algs {
			pos[algs[i].Index] = i
		}
		for _, o := range s.Observe(inst) {
			i, ok := pos[o.Algorithm]
			if !ok || o.weight() <= 0 || o.Seconds <= 0 {
				continue
			}
			d := o.Distance / radius
			w := o.weight() * math.Exp(-d*d)
			v := 0.0
			if o.M2 > 0 {
				v = o.M2 / o.weight()
			}
			sumW[i] += w
			sumWM[i] += w * o.Seconds
			sumWS[i] += w * (v + o.Seconds*o.Seconds)
			informed[i] = true
		}
	}
	post := make([]AlgPosterior, len(algs))
	for i := range algs {
		p := s.Prior.PredictAlgorithm(&algs[i])
		v0 := relStd * p * relStd * p
		mass := w0 + sumW[i]
		mean := (w0*p + sumWM[i]) / mass
		second := (w0*(v0+p*p) + sumWS[i]) / mass
		variance := second - mean*mean
		if variance < 0 {
			variance = 0
		}
		post[i] = AlgPosterior{
			Algorithm: algs[i].Index,
			Mean:      mean,
			StdErr:    math.Sqrt(variance / mass),
			Weight:    mass,
			Informed:  informed[i],
		}
	}
	return post
}
