package selection

import (
	"testing"

	"lamb/internal/expr"
	"lamb/internal/kernels"
)

// stubPredictor predicts a fixed time per algorithm position (keyed by
// the paper's 1-based index).
type stubPredictor map[int]float64

func (p stubPredictor) PredictAlgorithm(a *expr.Algorithm) float64 { return p[a.Index] }

// stubAlgs builds n minimal algorithms with indices 1..n.
func stubAlgs(n int) []expr.Algorithm {
	out := make([]expr.Algorithm, n)
	for i := range out {
		out[i] = expr.Algorithm{
			Index: i + 1,
			Calls: []kernels.Call{kernels.NewGemm(10, 10, 10, "A", "B", "C", false, false)},
		}
	}
	return out
}

func TestAdaptiveWithoutEvidenceIsThePrior(t *testing.T) {
	prior := stubPredictor{1: 3.0, 2: 1.0, 3: 2.0}
	s := Adaptive{Prior: prior} // no Observe source at all
	algs := stubAlgs(3)
	if got := s.ChooseFor(expr.Instance{100, 100}, algs); got != 1 {
		t.Fatalf("prior pick %d, want 1 (algorithm 2)", got)
	}
	if got := s.Choose(algs); got != 1 {
		t.Fatalf("Choose fallback pick %d, want 1", got)
	}
	// An Observe source returning nothing behaves the same.
	s.Observe = func(expr.Instance) []Observation { return nil }
	if got := s.ChooseFor(expr.Instance{100, 100}, algs); got != 1 {
		t.Fatalf("empty-evidence pick %d, want 1", got)
	}
}

func TestAdaptiveSwitchesOnContradictingEvidence(t *testing.T) {
	// The prior prefers algorithm 1, but measured outcomes at distance 0
	// say it is slow and algorithm 3 is fast.
	prior := stubPredictor{1: 1.0, 2: 1.4, 3: 1.5}
	s := Adaptive{
		Prior: prior,
		Observe: func(expr.Instance) []Observation {
			return []Observation{
				{Algorithm: 1, Seconds: 10.0, Count: 3, Distance: 0},
				{Algorithm: 3, Seconds: 0.1, Count: 3, Distance: 0},
			}
		},
	}
	// Blended: alg1 ≈ (1 + 3·10)/4 = 7.75, alg2 = 1.4, alg3 ≈ (1.5 + 0.3)/4 = 0.45.
	if got := s.ChooseFor(expr.Instance{100}, stubAlgs(3)); got != 2 {
		t.Fatalf("pick %d, want 2 (algorithm 3)", got)
	}
}

func TestAdaptiveDistantEvidenceCarriesLittleWeight(t *testing.T) {
	// The same contradicting outcome far outside the radius must not
	// flip the choice: its Gaussian weight is negligible.
	prior := stubPredictor{1: 1.0, 2: 1.1}
	s := Adaptive{
		Prior:  prior,
		Radius: 0.25,
		Observe: func(expr.Instance) []Observation {
			return []Observation{{Algorithm: 1, Seconds: 100.0, Count: 1, Distance: 2.0}}
		},
	}
	// weight = exp(-(2/0.25)²) = exp(-64) ≈ 0: pick stays with the prior.
	if got := s.ChooseFor(expr.Instance{100}, stubAlgs(2)); got != 0 {
		t.Fatalf("distant evidence flipped the pick to %d", got)
	}
}

func TestAdaptiveEvidenceAccumulates(t *testing.T) {
	// One mild observation is not enough to overcome a strong prior
	// gap, but repeated consistent observations are — the convergence
	// property: traffic plus feedback homes in on the measured best.
	prior := stubPredictor{1: 1.0, 2: 4.0}
	obs := []Observation{}
	s := Adaptive{
		Prior:   prior,
		Observe: func(expr.Instance) []Observation { return obs },
	}
	algs := stubAlgs(2)
	inst := expr.Instance{64, 64}
	obs = append(obs, Observation{Algorithm: 2, Seconds: 0.5, Count: 1, Distance: 0})
	if got := s.ChooseFor(inst, algs); got != 0 {
		// (4 + 0.5)/2 = 2.25 > 1.0: still the prior's pick.
		t.Fatalf("single observation flipped too early: pick %d", got)
	}
	obs[0].Count = 7
	if got := s.ChooseFor(inst, algs); got != 1 {
		// (4 + 7·0.5)/8 = 0.9375 < 1.0: evidence wins.
		t.Fatalf("accumulated evidence ignored: pick %d", got)
	}
}

func TestAdaptiveMatchesObservationsByIndexNotPosition(t *testing.T) {
	// A caller may pass a filtered set whose positions don't line up
	// with the paper's 1-based indices; observations must attach to the
	// algorithm with the matching Index.
	algs := []expr.Algorithm{{Index: 2}, {Index: 5}}
	prior := stubPredictor{2: 1.0, 5: 1.2}
	s := Adaptive{
		Prior: prior,
		Observe: func(expr.Instance) []Observation {
			return []Observation{
				{Algorithm: 2, Seconds: 50, Count: 9, Distance: 0},  // slow: Index 2
				{Algorithm: 5, Seconds: 0.1, Count: 9, Distance: 0}, // fast: Index 5
			}
		},
	}
	if got := s.ChooseFor(expr.Instance{10}, algs); got != 1 {
		t.Fatalf("pick position %d, want 1 (Index 5)", got)
	}
	// An observation for an index not in the set is dropped, not
	// misattributed.
	s.Observe = func(expr.Instance) []Observation {
		return []Observation{{Algorithm: 3, Seconds: 100, Count: 9, Distance: 0}}
	}
	if got := s.ChooseFor(expr.Instance{10}, algs); got != 0 {
		t.Fatalf("out-of-set observation changed the pick: %d", got)
	}
}

func TestAdaptiveIgnoresInvalidObservations(t *testing.T) {
	prior := stubPredictor{1: 2.0, 2: 1.0}
	s := Adaptive{
		Prior: prior,
		Observe: func(expr.Instance) []Observation {
			return []Observation{
				{Algorithm: 0, Seconds: 1, Count: 1},   // below range
				{Algorithm: 99, Seconds: 1, Count: 1},  // above range
				{Algorithm: 2, Seconds: -1, Count: 1},  // non-positive time
				{Algorithm: 2, Seconds: 50, Count: 0},  // no measurements
				{Algorithm: 2, Seconds: 50, Count: -3}, // negative count
			}
		},
	}
	if got := s.ChooseFor(expr.Instance{10}, stubAlgs(2)); got != 1 {
		t.Fatalf("invalid observations changed the pick: %d", got)
	}
}

func TestAdaptiveName(t *testing.T) {
	if (Adaptive{}).Name() != "adaptive" {
		t.Fatal("name")
	}
	// Adaptive must satisfy both strategy interfaces.
	var _ Strategy = Adaptive{}
	var _ InstanceStrategy = Adaptive{}
}
