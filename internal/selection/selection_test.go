package selection

import (
	"strings"
	"testing"

	"lamb/internal/exec"
	"lamb/internal/expr"
	"lamb/internal/profile"
)

func simTimer() *exec.Timer {
	return &exec.Timer{Exec: exec.NewDefaultSimulated(), Reps: 3}
}

func TestMinFlopsPicksCheapest(t *testing.T) {
	algs := expr.NewAATB().Algorithms(expr.Instance{100, 200, 300})
	pick := MinFlops{}.Choose(algs)
	// Algorithms 1 and 2 tie on the minimum count; lowest index wins.
	if pick != 0 {
		t.Fatalf("pick = %d, want 0", pick)
	}
	// An instance where algorithm 5 is cheapest: d0 large, d1·d2 small.
	algs = expr.NewAATB().Algorithms(expr.Instance{1000, 30, 30})
	if pick := (MinFlops{}).Choose(algs); pick != 4 {
		t.Fatalf("pick = %d, want 4 (algorithm 5 cheapest)", pick)
	}
}

func TestMinFlopsEqualsDPOnChains(t *testing.T) {
	inst := expr.Instance{300, 40, 500, 60, 700}
	algs := expr.NewChainABCD().Algorithms(inst)
	pick := MinFlops{}.Choose(algs)
	dp, _ := expr.MinFlopsParenthesisation([]int(inst))
	if algs[pick].Flops() != dp {
		t.Fatalf("min-flops pick %v flops %v != DP optimum %v", pick, algs[pick].Flops(), dp)
	}
}

func TestOracleAgreesWithExhaustiveTiming(t *testing.T) {
	timer := simTimer()
	algs := expr.NewAATB().Algorithms(expr.Instance{150, 90, 800})
	pick := Oracle{Timer: timer}.Choose(algs)
	best, bestT := -1, 0.0
	for i := range algs {
		tt := timer.MeasureAlgorithm(&algs[i]).Total
		if best < 0 || tt < bestT {
			best, bestT = i, tt
		}
	}
	if pick != best {
		t.Fatalf("oracle pick %d, exhaustive best %d", pick, best)
	}
}

func TestMinPredictedBeatsMinFlopsOnAnomalies(t *testing.T) {
	// On the simulated machine, AAᵀB anomalies are abundant; the profile-
	// based strategy must recover a substantial share of the regret that
	// MinFlops leaves on the table (the paper's concluding conjecture).
	timer := simTimer()
	profiles := profile.MeasureSet(timer, 6)
	strategies := []Strategy{MinFlops{}, MinPredicted{Profiles: profiles}}
	reports := Evaluate(expr.NewAATB(), timer, strategies, Config{
		Box:       expr.PaperBox(3),
		Instances: 120,
		Seed:      7,
	})
	mf, mp := reports[0], reports[1]
	if mf.Instances != 120 || mp.Instances != 120 {
		t.Fatalf("instances %d, %d", mf.Instances, mp.Instances)
	}
	if mp.Regret.Mean() >= mf.Regret.Mean() {
		t.Fatalf("min-predicted regret %.3f should beat min-flops %.3f",
			mp.Regret.Mean(), mf.Regret.Mean())
	}
	if mp.OptimalPicks <= mf.OptimalPicks {
		t.Fatalf("min-predicted optimal picks %d should exceed min-flops %d",
			mp.OptimalPicks, mf.OptimalPicks)
	}
}

func TestOracleHasZeroRegret(t *testing.T) {
	timer := simTimer()
	reports := Evaluate(expr.NewAATB(), timer, []Strategy{Oracle{Timer: timer}}, Config{
		Box:       expr.UniformBox(3, 50, 400),
		Instances: 15,
		Seed:      3,
	})
	// The oracle re-measures; noise can cause tiny nonzero regret, but
	// the mean must be far below any real strategy's.
	if reports[0].Regret.Mean() > 0.02 {
		t.Fatalf("oracle regret %.4f too large", reports[0].Regret.Mean())
	}
	if reports[0].OptimalPicks < 13 {
		t.Fatalf("oracle optimal picks %d/15", reports[0].OptimalPicks)
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	timer := simTimer()
	cfg := Config{Box: expr.UniformBox(3, 50, 300), Instances: 10, Seed: 11}
	a := Evaluate(expr.NewAATB(), timer, []Strategy{MinFlops{}}, cfg)
	b := Evaluate(expr.NewAATB(), timer, []Strategy{MinFlops{}}, cfg)
	if a[0].Regret.Mean() != b[0].Regret.Mean() || a[0].OptimalPicks != b[0].OptimalPicks {
		t.Fatal("Evaluate not deterministic")
	}
}

func TestReportString(t *testing.T) {
	r := Report{Strategy: "min-flops", Instances: 10, OptimalPicks: 7}
	s := r.String()
	if !strings.Contains(s, "min-flops") || !strings.Contains(s, "7") {
		t.Fatalf("report string %q", s)
	}
}

func TestChoosePanicsOnEmpty(t *testing.T) {
	for _, s := range []Strategy{MinFlops{}, MinPredicted{}, Oracle{}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic on empty set", s.Name())
				}
			}()
			s.Choose(nil)
		}()
	}
}

func TestEvaluatePanicsOnBadConfig(t *testing.T) {
	timer := simTimer()
	for _, cfg := range []Config{
		{Box: expr.Box{}, Instances: 5},
		{Box: expr.UniformBox(3, 20, 100), Instances: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			Evaluate(expr.NewAATB(), timer, []Strategy{MinFlops{}}, cfg)
		}()
	}
}

func TestStrategiesOnLstSq(t *testing.T) {
	// The six-kernel expression: the profile-based strategy must not be
	// worse than FLOPs alone, and the oracle must dominate both.
	timer := simTimer()
	profiles := profile.MeasureSet(timer, 5)
	reports := Evaluate(expr.NewLstSq(), timer,
		[]Strategy{MinFlops{}, MinPredicted{Profiles: profiles}},
		Config{Box: expr.PaperBox(3), Instances: 60, Seed: 13})
	mf, mp := reports[0], reports[1]
	if mp.Regret.Mean() > mf.Regret.Mean()+1e-9 {
		t.Fatalf("min-predicted regret %.4f worse than min-flops %.4f on lstsq",
			mp.Regret.Mean(), mf.Regret.Mean())
	}
	if mf.Instances != 60 {
		t.Fatalf("instances %d", mf.Instances)
	}
}
