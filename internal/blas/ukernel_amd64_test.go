package blas

import (
	"math"
	"testing"

	"lamb/internal/xrand"
)

// TestAsmKernelMatchesGeneric cross-checks the AVX2 micro-kernel against
// the portable Go kernel over odd and even k (both the unrolled loop and
// the tail path), including k values that leave the dual-unrolled loop
// with a remainder.
func TestAsmKernelMatchesGeneric(t *testing.T) {
	if !haveAVX2FMA {
		t.Skip("CPU lacks AVX2+FMA; assembly kernel disabled")
	}
	rng := xrand.New(42)
	for _, k := range []int{1, 2, 3, 7, 16, 17, 255, 256} {
		ap := make([]float64, mr*k)
		bp := make([]float64, nr*k)
		for i := range ap {
			ap[i] = rng.Float64() - 0.5
		}
		for i := range bp {
			bp[i] = rng.Float64() - 0.5
		}
		var asmOut, goOut [mr * nr]float64
		gemm8x4AVX(&ap[0], &bp[0], k, &asmOut)
		microKernel8x4Generic(ap, bp, k, &goOut)
		for i := range asmOut {
			// FMA keeps extra precision in the intermediate product, so
			// allow rounding-level differences.
			if d := math.Abs(asmOut[i] - goOut[i]); d > 1e-12*float64(k) {
				t.Fatalf("k=%d: out[%d] asm=%v go=%v", k, i, asmOut[i], goOut[i])
			}
		}
	}
}

// TestAsmKernelZeroK checks the k == 0 degenerate case clears the tile.
func TestAsmKernelZeroK(t *testing.T) {
	if !haveAVX2FMA {
		t.Skip("CPU lacks AVX2+FMA; assembly kernel disabled")
	}
	ap := []float64{1}
	bp := []float64{1}
	out := [mr * nr]float64{1: 5, 7: -3}
	gemm8x4AVX(&ap[0], &bp[0], 0, &out)
	for i, v := range out {
		if v != 0 {
			t.Fatalf("out[%d] = %v after k=0 kernel, want 0", i, v)
		}
	}
}
