package blas

import (
	"fmt"

	"lamb/internal/mat"
)

// Symm computes C := alpha·A·B + beta·C where A is m×m symmetric with
// only the uplo triangle stored (the strict opposite triangle of A is
// never referenced), B is m×n, and C is m×n. This is the left-side,
// lower/upper SYMM used by the paper's AAᵀB Algorithms 1 and 3.
//
// The implementation walks A in square blocks; each block is materialised
// into a scratch square — copied directly, transposed, or symmetrised
// depending on its position relative to the diagonal — and multiplied
// with the corresponding row block of B using the packed GEMM machinery.
// Row panels of C are mutually independent, so large products fan them
// out over goroutines (each panel task runs the serial GEMM with pooled
// scratch to avoid nested parallelism). The per-block materialisation
// gives SYMM a lower efficiency plateau than GEMM, matching the
// kernel-efficiency ordering in the paper's Figure 1.
func Symm(uplo mat.Uplo, alpha float64, a, b *mat.Dense, beta float64, c *mat.Dense) {
	m := a.Rows
	if a.Cols != m {
		panic(fmt.Sprintf("blas: symm A is %dx%d, want square", a.Rows, a.Cols))
	}
	if b.Rows != m {
		panic(fmt.Sprintf("blas: symm B has %d rows, want %d", b.Rows, m))
	}
	n := b.Cols
	if c.Rows != m || c.Cols != n {
		panic(fmt.Sprintf("blas: symm output %dx%d, want %dx%d", c.Rows, c.Cols, m, n))
	}
	if m == 0 || n == 0 {
		return
	}
	if alpha == 0 {
		scaleMatrix(c, beta)
		return
	}
	npanels := (m + syrkBlock - 1) / syrkBlock
	nw := workers()
	parallel := nw > 1 && npanels > 1 && float64(m)*float64(m)*float64(n) >= parThreshold
	if !parallel {
		// Serial sweep: panels run inline (no closure, stack views) so a
		// steady-state call performs zero heap allocations.
		scratch := syrkScratchPool.Get().(*mat.Dense)
		for i0 := 0; i0 < m; i0 += syrkBlock {
			symmPanelTask(uplo, alpha, a, b, beta, c, i0, scratch, false)
		}
		syrkScratchPool.Put(scratch)
		return
	}
	// The closure captures copies of the operand headers so Symm's own
	// parameters don't leak (see gemmParallel).
	av, bv, cv := *a, *b, *c
	ap, bp, cp := &av, &bv, &cv
	parallelTasks(nw, npanels, func(t int) {
		scratch := syrkScratchPool.Get().(*mat.Dense)
		symmPanelTask(uplo, alpha, ap, bp, beta, cp, t*syrkBlock, scratch, true)
		syrkScratchPool.Put(scratch)
	})
}

// symmPanelTask computes one row panel C[i0:i1, :] of the SYMM product:
// each square block of A is materialised into scratch and multiplied
// with the matching row block of B. With serialGemm set the panel runs
// the serial GEMM driver (parallel callers avoid nested parallelism).
func symmPanelTask(uplo mat.Uplo, alpha float64, a, b *mat.Dense, beta float64, c *mat.Dense, i0 int, scratch *mat.Dense, serialGemm bool) {
	m, n := a.Rows, b.Cols
	i1 := min(i0+syrkBlock, m)
	cb := c.View(i0, i1, 0, n)
	for k0 := 0; k0 < m; k0 += syrkBlock {
		k1 := min(k0+syrkBlock, m)
		ab := scratch.View(0, i1-i0, 0, k1-k0)
		materialiseSymBlock(&ab, a, uplo, i0, i1, k0, k1)
		bb := b.View(k0, k1, 0, n)
		betaEff := 1.0
		if k0 == 0 {
			betaEff = beta
		}
		if serialGemm {
			gemmSerial(false, false, alpha, &ab, &bb, betaEff, &cb)
		} else {
			Gemm(false, false, alpha, &ab, &bb, betaEff, &cb)
		}
	}
}

// materialiseSymBlock copies the logical symmetric block A[i0:i1, k0:k1]
// into the pre-carved scratch view out, resolving which stored triangle
// to read.
func materialiseSymBlock(out, a *mat.Dense, uplo mat.Uplo, i0, i1, k0, k1 int) {
	rows, cols := i1-i0, k1-k0
	storedDirect := (uplo == mat.Lower && i0 >= k1) || (uplo == mat.Upper && k0 >= i1)
	storedTransposed := (uplo == mat.Lower && k0 >= i1) || (uplo == mat.Upper && i0 >= k1)
	switch {
	case storedDirect:
		// Entire block lies in the stored triangle.
		src := a.View(i0, i1, k0, k1)
		mat.Copy(out, &src)
	case storedTransposed:
		// Entire block lies in the unstored triangle: read the mirror.
		src := a.View(k0, k1, i0, i1)
		for j := 0; j < cols; j++ {
			for i := 0; i < rows; i++ {
				out.Data[i+j*out.Stride] = src.Data[j+i*src.Stride]
			}
		}
	default:
		// Diagonal block (i0 == k0): symmetrise element-wise from the
		// stored triangle.
		for j := 0; j < cols; j++ {
			gj := k0 + j
			for i := 0; i < rows; i++ {
				gi := i0 + i
				var v float64
				if (uplo == mat.Lower && gi >= gj) || (uplo == mat.Upper && gi <= gj) {
					v = a.Data[gi+gj*a.Stride]
				} else {
					v = a.Data[gj+gi*a.Stride]
				}
				out.Data[i+j*out.Stride] = v
			}
		}
	}
}
