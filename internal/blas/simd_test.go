package blas

// Property tests pinning the SIMD fast paths to scalar references:
// packing on ragged shapes (non-multiples of mr/nr, sizes straddling the
// block sizes), the rank-4 potf2 against the textbook unblocked
// Cholesky, the vectorised unblocked TRSM kernels against the naive
// substitution, and the axpy/dot/rank4 primitives against their portable
// bodies.

import (
	"fmt"
	"math"
	"testing"

	"lamb/internal/mat"
	"lamb/internal/xrand"
)

// packARef is the scalar reference packing (the pre-SIMD implementation,
// including zero-padding of ragged panels).
func packARef(buf []float64, a *mat.Dense, transA bool, i0, i1, p0, p1 int) {
	mcb, kcb := i1-i0, p1-p0
	idx := 0
	for q := 0; q < mcb; q += mr {
		rows := min(mr, mcb-q)
		for p := 0; p < kcb; p++ {
			for r := 0; r < rows; r++ {
				if !transA {
					buf[idx+r] = a.Data[i0+q+r+(p0+p)*a.Stride]
				} else {
					buf[idx+r] = a.Data[p0+p+(i0+q+r)*a.Stride]
				}
			}
			for r := rows; r < mr; r++ {
				buf[idx+r] = 0
			}
			idx += mr
		}
	}
}

// packBRef is the scalar reference for packB.
func packBRef(buf []float64, b *mat.Dense, transB bool, p0, p1, j0, j1 int) {
	kcb, ncb := p1-p0, j1-j0
	idx := 0
	for q := 0; q < ncb; q += nr {
		cols := min(nr, ncb-q)
		for p := 0; p < kcb; p++ {
			for s := 0; s < cols; s++ {
				if !transB {
					buf[idx+s] = b.Data[p0+p+(j0+q+s)*b.Stride]
				} else {
					buf[idx+s] = b.Data[j0+q+s+(p0+p)*b.Stride]
				}
			}
			for s := cols; s < nr; s++ {
				buf[idx+s] = 0
			}
			idx += nr
		}
	}
}

func TestPackAMatchesReference(t *testing.T) {
	rng := xrand.New(0x9a01)
	// Parent bigger than any block so offset slices have parent stride.
	parent := mat.NewRandom(70, 70, rng)
	for _, trans := range []bool{false, true} {
		for _, mcb := range []int{1, 3, 7, 8, 9, 15, 16, 17, 24, 31} {
			for _, kcb := range []int{1, 2, 5, 8, 16, 17, 33} {
				for _, off := range []int{0, 5} {
					i1, p1 := off+mcb, off+kcb
					// op(A) is mcb×kcb: stored dims depend on trans.
					if !trans {
						if i1 > parent.Rows || p1 > parent.Cols {
							continue
						}
					} else if p1 > parent.Rows || i1 > parent.Cols {
						continue
					}
					got := make([]float64, ((mcb+mr-1)/mr)*mr*kcb)
					want := make([]float64, len(got))
					packA(got, parent, trans, off, i1, off, p1)
					packARef(want, parent, trans, off, i1, off, p1)
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("packA(trans=%v mcb=%d kcb=%d off=%d): buf[%d] = %v, want %v",
								trans, mcb, kcb, off, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

func TestPackBMatchesReference(t *testing.T) {
	rng := xrand.New(0x9a02)
	parent := mat.NewRandom(70, 70, rng)
	for _, trans := range []bool{false, true} {
		for _, kcb := range []int{1, 2, 5, 8, 16, 17, 33} {
			for _, ncb := range []int{1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 31} {
				for _, off := range []int{0, 5} {
					p1, j1 := off+kcb, off+ncb
					if !trans {
						if p1 > parent.Rows || j1 > parent.Cols {
							continue
						}
					} else if j1 > parent.Rows || p1 > parent.Cols {
						continue
					}
					got := make([]float64, ((ncb+nr-1)/nr)*nr*kcb)
					want := make([]float64, len(got))
					packB(got, parent, trans, off, p1, off, j1)
					packBRef(want, parent, trans, off, p1, off, j1)
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("packB(trans=%v kcb=%d ncb=%d off=%d): buf[%d] = %v, want %v",
								trans, kcb, ncb, off, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// potf2Ref is the textbook unblocked Cholesky (the pre-SIMD potf2).
func potf2Ref(a *mat.Dense) error {
	n := a.Rows
	for j := 0; j < n; j++ {
		d := a.Data[j+j*a.Stride]
		for p := 0; p < j; p++ {
			v := a.Data[j+p*a.Stride]
			d -= v * v
		}
		if d <= 0 || math.IsNaN(d) {
			return fmt.Errorf("not positive definite at %d", j)
		}
		d = math.Sqrt(d)
		a.Data[j+j*a.Stride] = d
		for i := j + 1; i < n; i++ {
			s := a.Data[i+j*a.Stride]
			for p := 0; p < j; p++ {
				s -= a.Data[i+p*a.Stride] * a.Data[j+p*a.Stride]
			}
			a.Data[i+j*a.Stride] = s / d
		}
	}
	return nil
}

func TestPotf2MatchesReferenceRaggedSizes(t *testing.T) {
	rng := xrand.New(0x9a03)
	// Sizes straddling the rank-4 panel width and the potrf block size.
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 15, 33, 63, 64, 65, 100, 129} {
		spd := mat.NewSPDRandom(n, rng)
		got := spd.Clone()
		want := spd.Clone()
		if err := NaivePotrf(got); err != nil {
			t.Fatalf("n=%d: potf2: %v", n, err)
		}
		if err := potf2Ref(want); err != nil {
			t.Fatalf("n=%d: reference: %v", n, err)
		}
		// Compare lower triangles (the strict upper is untouched input).
		for j := 0; j < n; j++ {
			for i := j; i < n; i++ {
				g, w := got.At(i, j), want.At(i, j)
				if math.Abs(g-w) > 1e-10*math.Max(1, math.Abs(w)) {
					t.Fatalf("n=%d: L[%d,%d] = %v, want %v", n, i, j, g, w)
				}
			}
		}
	}
}

func TestPotf2RejectsIndefinite(t *testing.T) {
	// The rank-4 restructure must preserve the non-SPD error, with the
	// failing minor crossing panel boundaries.
	for _, n := range []int{3, 5, 9} {
		a := mat.New(n, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, 1)
		}
		a.Set(n-1, n-1, -1) // last pivot goes negative
		if err := NaivePotrf(a); err == nil {
			t.Fatalf("n=%d: indefinite matrix factored without error", n)
		}
	}
}

func TestTrsmRaggedVsNaive(t *testing.T) {
	rng := xrand.New(0x9a04)
	// Sizes below, at, and above the nb=64 block size, plus ragged ones.
	for _, m := range []int{1, 2, 3, 5, 8, 17, 31, 64, 65, 97} {
		for _, n := range []int{1, 2, 7, 33} {
			for _, uplo := range []mat.Uplo{mat.Lower, mat.Upper} {
				for _, trans := range []bool{false, true} {
					l := mat.NewRandom(m, m, rng)
					for i := 0; i < m; i++ {
						l.Set(i, i, 4+rng.Float64())
					}
					b := mat.NewRandom(m, n, rng)
					got := b.Clone()
					want := b.Clone()
					Trsm(uplo, trans, 1, l, got)
					NaiveTrsm(uplo, trans, 1, l, want)
					if d := mat.MaxAbsDiff(got, want); d > 1e-9 {
						t.Fatalf("trsm(m=%d n=%d %v trans=%v): max diff %g", m, n, uplo, trans, d)
					}
				}
			}
		}
	}
}

func TestTrsmRightLowerTransUnblockedSolves(t *testing.T) {
	rng := xrand.New(0x9a05)
	for _, m := range []int{1, 3, 8, 17} {
		for _, k := range []int{1, 2, 5, 16, 31} {
			l := mat.NewRandom(k, k, rng)
			for i := 0; i < k; i++ {
				l.Set(i, i, 4+rng.Float64())
			}
			mat.ZeroTriangle(l, mat.Lower)
			b := mat.NewRandom(m, k, rng)
			x := b.Clone()
			trsmRightLowerTransUnblocked(l, x)
			// Check X·Lᵀ == B.
			prod := mat.New(m, k)
			Gemm(false, true, 1, x, l, 0, prod)
			if d := mat.MaxAbsDiff(prod, b); d > 1e-10 {
				t.Fatalf("m=%d k=%d: residual %g", m, k, d)
			}
		}
	}
}

func TestSIMDPrimitivesMatchGeneric(t *testing.T) {
	rng := xrand.New(0x9a06)
	lengths := []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 100}
	for _, n := range lengths {
		x := make([]float64, n)
		y0 := make([]float64, n)
		for i := range x {
			x[i] = 2*rng.Float64() - 1
			y0[i] = 2*rng.Float64() - 1
		}
		alpha := 2*rng.Float64() - 1

		// axpy: dispatch vs generic.
		got := append([]float64(nil), y0...)
		want := append([]float64(nil), y0...)
		axpy(got, x, alpha)
		axpyGeneric(want, x, alpha)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-13 {
				t.Fatalf("axpy n=%d: y[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}

		// dot: dispatch vs generic (reduction order differs; tolerance).
		gd := dot(x, y0)
		wd := dotGeneric(x, y0)
		if math.Abs(gd-wd) > 1e-12*math.Max(1, math.Abs(wd)) {
			t.Fatalf("dot n=%d: %v, want %v", n, gd, wd)
		}

		// rank4: dispatch vs generic, strided columns.
		stride := n + 3
		xs := make([]float64, 3*stride+n+1)
		for i := range xs {
			xs[i] = 2*rng.Float64() - 1
		}
		alphas := [4]float64{rng.Float64(), -rng.Float64(), rng.Float64(), -rng.Float64()}
		got = append([]float64(nil), y0...)
		want = append([]float64(nil), y0...)
		rank4(got, xs, stride, &alphas)
		rank4Generic(want, xs, stride, &alphas)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-13 {
				t.Fatalf("rank4 n=%d: y[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestPackPanelFastPathsMatchGeneric(t *testing.T) {
	rng := xrand.New(0x9a07)
	for _, k := range []int{1, 2, 3, 4, 5, 7, 8, 9, 16, 17, 33} {
		stride := 41
		// Large enough for every access pattern: the contiguous copies
		// read src[(k-1)·stride+width), the stream interleaves read
		// src[7·stride+k).
		src := make([]float64, (k+8)*stride)
		for i := range src {
			src[i] = 2*rng.Float64() - 1
		}
		check := func(name string, width int, f, ref func(dst, src []float64, k, stride int)) {
			t.Helper()
			got := make([]float64, width*k)
			want := make([]float64, width*k)
			f(got, src, k, stride)
			ref(want, src, k, stride)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s k=%d: dst[%d] = %v, want %v", name, k, i, got[i], want[i])
				}
			}
		}
		check("packPanelA8", mr, packPanelA8, packPanelA8Generic)
		check("packPanelA8T", mr, packPanelA8T, packPanelA8TGeneric)
		check("packPanelB4", nr, packPanelB4, packPanelB4Generic)
		check("packPanelB4T", nr, packPanelB4T, packPanelB4TGeneric)
	}
}
