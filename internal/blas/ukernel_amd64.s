// AVX2/FMA micro-kernel for the packed GEMM: an 8×4 register-blocked
// tile held in eight YMM accumulators (two four-row banks per column),
// with the k loop unrolled by two. Feature detection is done once at
// startup via cpuHasAVX2FMA.

#include "textflag.h"

// func cpuHasAVX2FMA() bool
TEXT ·cpuHasAVX2FMA(SB), NOSPLIT, $0-1
	// CPUID.1:ECX — FMA (bit 12), OSXSAVE (bit 27), AVX (bit 28).
	MOVL $1, AX
	MOVL $0, CX
	CPUID
	MOVL CX, R8
	ANDL $(1<<12 | 1<<27 | 1<<28), R8
	CMPL R8, $(1<<12 | 1<<27 | 1<<28)
	JNE  no
	// XGETBV(0): XCR0 bits 1 and 2 — XMM and YMM state enabled by the OS.
	MOVL $0, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  no
	// CPUID.7.0:EBX — AVX2 (bit 5).
	MOVL $7, AX
	MOVL $0, CX
	CPUID
	ANDL $(1<<5), BX
	JZ   no
	MOVB $1, ret+0(FP)
	RET

no:
	MOVB $0, ret+0(FP)
	RET

// func gemm8x4AVX(ap, bp *float64, k int, out *[32]float64)
//
// out[r+8*s] = sum_p ap[p*8+r] * bp[p*4+s], a column-major 8x4 tile.
// Column s accumulates in Y(2s) (rows 0-3) and Y(2s+1) (rows 4-7).
TEXT ·gemm8x4AVX(SB), NOSPLIT, $0-32
	MOVQ   ap+0(FP), SI
	MOVQ   bp+8(FP), DI
	MOVQ   k+16(FP), CX
	MOVQ   out+24(FP), DX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	TESTQ  CX, CX
	JZ     done
	MOVQ   CX, R9
	SHRQ   $1, R9
	JZ     tail

loop2:
	VMOVUPD      (SI), Y8
	VMOVUPD      32(SI), Y9
	VBROADCASTSD (DI), Y10
	VBROADCASTSD 8(DI), Y11
	VFMADD231PD  Y8, Y10, Y0
	VFMADD231PD  Y9, Y10, Y1
	VBROADCASTSD 16(DI), Y12
	VFMADD231PD  Y8, Y11, Y2
	VFMADD231PD  Y9, Y11, Y3
	VBROADCASTSD 24(DI), Y13
	VFMADD231PD  Y8, Y12, Y4
	VFMADD231PD  Y9, Y12, Y5
	VFMADD231PD  Y8, Y13, Y6
	VFMADD231PD  Y9, Y13, Y7
	VMOVUPD      64(SI), Y14
	VMOVUPD      96(SI), Y15
	VBROADCASTSD 32(DI), Y10
	VBROADCASTSD 40(DI), Y11
	VFMADD231PD  Y14, Y10, Y0
	VFMADD231PD  Y15, Y10, Y1
	VBROADCASTSD 48(DI), Y12
	VFMADD231PD  Y14, Y11, Y2
	VFMADD231PD  Y15, Y11, Y3
	VBROADCASTSD 56(DI), Y13
	VFMADD231PD  Y14, Y12, Y4
	VFMADD231PD  Y15, Y12, Y5
	VFMADD231PD  Y14, Y13, Y6
	VFMADD231PD  Y15, Y13, Y7
	ADDQ         $128, SI
	ADDQ         $64, DI
	DECQ         R9
	JNZ          loop2
	ANDQ         $1, CX
	JZ           done

tail:
	VMOVUPD      (SI), Y8
	VMOVUPD      32(SI), Y9
	VBROADCASTSD (DI), Y10
	VBROADCASTSD 8(DI), Y11
	VFMADD231PD  Y8, Y10, Y0
	VFMADD231PD  Y9, Y10, Y1
	VBROADCASTSD 16(DI), Y12
	VFMADD231PD  Y8, Y11, Y2
	VFMADD231PD  Y9, Y11, Y3
	VBROADCASTSD 24(DI), Y13
	VFMADD231PD  Y8, Y12, Y4
	VFMADD231PD  Y9, Y12, Y5
	VFMADD231PD  Y8, Y13, Y6
	VFMADD231PD  Y9, Y13, Y7
	ADDQ         $64, SI
	ADDQ         $32, DI
	DECQ         CX
	JNZ          tail

done:
	VMOVUPD Y0, (DX)
	VMOVUPD Y1, 32(DX)
	VMOVUPD Y2, 64(DX)
	VMOVUPD Y3, 96(DX)
	VMOVUPD Y4, 128(DX)
	VMOVUPD Y5, 160(DX)
	VMOVUPD Y6, 192(DX)
	VMOVUPD Y7, 224(DX)
	VZEROUPPER
	RET
