// Package blas is a from-scratch Go implementation of the three level-3
// BLAS kernels the paper builds its algorithms from — GEMM, SYRK, and
// SYMM — plus the triangle-mirroring data-movement step and the
// LAPACK-level extensions (POTRF, TRSM) used by the least-squares
// expression.
//
// The implementation follows the classic blocked/packed design (Goto,
// BLIS): operands are packed into contiguous micro-panels and a register-
// blocked 8×4 micro-kernel runs over them. On amd64 with AVX2+FMA the
// micro-kernel is hand-vectorized assembly (runtime-detected, with a
// portable Go fallback); everywhere else the pure-Go kernel runs. Packing
// buffers are pooled, so steady-state Gemm calls do not allocate. GEMM
// parallelises BLIS-style: B is packed once per (jc, pc) block into a
// shared buffer and goroutines fan out over the ic loop. SYRK and SYMM
// are built on the same macro-kernel machinery, which gives them genuinely
// different performance profiles from GEMM (slower ramps at small sizes,
// due to triangular bookkeeping and symmetric packing) — the very property
// the paper identifies as a driver of anomalies.
//
// This package is the repository's *measured* backend: experiments run on
// it time real kernel executions. The paper ran against MKL on a 10-core
// Xeon; these kernels are slower in absolute terms but expose the same
// structural effects (shape-dependent efficiency, kernel-dependent
// efficiency gaps, cache warm-up between calls).
package blas

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"lamb/internal/mat"
)

// Blocking parameters for the packed GEMM. Chosen for typical x86-64
// cache sizes: an MC×KC block of A (128×256 float64 = 256 KiB) fits in
// L2, a KC×NR sliver of B stays in L1.
const (
	mr = 8 // micro-kernel rows
	nr = 4 // micro-kernel cols
	mc = 128
	kc = 256
	nc = 2048
)

// Packing buffers are pooled so steady-state kernel calls do not allocate:
// a Gemm used to allocate a 256 KiB bufA and a 4 MiB bufB on every call.
var (
	bufAPool = sync.Pool{New: func() any { b := make([]float64, mc*kc); return &b }}
	bufBPool = sync.Pool{New: func() any { b := make([]float64, kc*nc); return &b }}
)

// maxWorkers caps GEMM parallelism. Zero means GOMAXPROCS.
var maxWorkers = 0

// SetMaxWorkers caps the number of goroutines used by the kernels.
// n <= 0 restores the default (GOMAXPROCS). It returns the previous cap.
// It is intended for benchmarking and tests and is not safe to call
// concurrently with running kernels.
func SetMaxWorkers(n int) int {
	old := maxWorkers
	maxWorkers = n
	return old
}

// Workers returns the effective worker cap: the value set by
// SetMaxWorkers, or GOMAXPROCS when unset.
func Workers() int { return workers() }

func workers() int {
	w := maxWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// opDims returns the dimensions of op(X) given trans.
func opDims(x *mat.Dense, trans bool) (r, c int) {
	if trans {
		return x.Cols, x.Rows
	}
	return x.Rows, x.Cols
}

// parThreshold is the m·n·k product above which GEMM (and the SYRK/SYMM
// block drivers) go parallel; smaller problems run serially.
const parThreshold = 64 * 64 * 64

// Gemm computes C := alpha·op(A)·op(B) + beta·C, where op(X) is X or Xᵀ
// according to transA/transB. op(A) must be m×k, op(B) k×n, and C m×n,
// with m, n, k implied by the operand shapes. It panics on mismatched
// dimensions.
func Gemm(transA, transB bool, alpha float64, a, b *mat.Dense, beta float64, c *mat.Dense) {
	am, ak := opDims(a, transA)
	bk, bn := opDims(b, transB)
	if ak != bk {
		panic(fmt.Sprintf("blas: gemm inner dimension mismatch %d vs %d", ak, bk))
	}
	if c.Rows != am || c.Cols != bn {
		panic(fmt.Sprintf("blas: gemm output %dx%d, want %dx%d", c.Rows, c.Cols, am, bn))
	}
	m, n, k := am, bn, ak
	if m == 0 || n == 0 {
		return
	}
	if alpha == 0 || k == 0 {
		scaleMatrix(c, beta)
		return
	}
	nw := workers()
	if nw > 1 && float64(m)*float64(n)*float64(k) >= parThreshold {
		gemmParallel(nw, transA, transB, alpha, a, b, beta, c)
		return
	}
	gemmSerial(transA, transB, alpha, a, b, beta, c)
}

// parallelTasks runs f(0), …, f(ntasks-1) on at most nw goroutines.
// Tasks are handed out dynamically, so uneven task costs still balance.
func parallelTasks(nw, ntasks int, f func(task int)) {
	ng := min(nw, ntasks)
	if ng <= 1 {
		for t := 0; t < ntasks; t++ {
			f(t)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(ng)
	for w := 0; w < ng; w++ {
		go func() {
			defer wg.Done()
			for {
				t := int(next.Add(1)) - 1
				if t >= ntasks {
					return
				}
				f(t)
			}
		}()
	}
	wg.Wait()
}

// parallelCols splits [0, n) into roughly equal stripes aligned to the
// micro-kernel width and runs f over them on at most nw goroutines.
func parallelCols(nw, n int, f func(lo, hi int)) {
	if n <= 0 {
		return
	}
	chunk := (n + nw - 1) / nw
	// Align up to a multiple of nr so stripes don't split micro-tiles.
	if rem := chunk % nr; rem != 0 {
		chunk += nr - rem
	}
	nstripes := (n + chunk - 1) / chunk
	parallelTasks(nw, nstripes, func(s int) {
		lo := s * chunk
		f(lo, min(lo+chunk, n))
	})
}

// gemmParallel is the multi-goroutine blocked implementation. It follows
// the BLIS threading scheme: for each (jc, pc) block, B is packed *once*
// into a shared buffer, then workers fan out over the ic loop, each
// packing its own MC×KC block of A. When A has a single row block the
// workers split the packed-B micro-panel range instead, so wide-and-short
// products still parallelise.
func gemmParallel(nw int, transA, transB bool, alpha float64, aArg, bArg *mat.Dense, beta float64, cArg *mat.Dense) {
	// The fan-out closures must capture copies of the operand headers,
	// not the caller's pointers: if Gemm's parameters leaked into
	// goroutine closures, escape analysis would force every caller-side
	// view (mat.View in the block drivers) onto the heap, breaking the
	// kernels' zero-allocation guarantee.
	av, bv, cv := *aArg, *bArg, *cArg
	a, b, c := &av, &bv, &cv
	m, _ := opDims(a, transA)
	k, n := opDims(b, transB)
	bufBp := bufBPool.Get().(*[]float64)
	bufB := *bufBp
	defer bufBPool.Put(bufBp)
	nblkA := (m + mc - 1) / mc
	for jc := 0; jc < n; jc += nc {
		ncb := min(nc, n-jc)
		for pc := 0; pc < k; pc += kc {
			kcb := min(kc, k-pc)
			packB(bufB, b, transB, pc, pc+kcb, jc, jc+ncb)
			betaEff := 1.0
			if pc == 0 {
				betaEff = beta
			}
			if nblkA > 1 {
				parallelTasks(nw, nblkA, func(blk int) {
					ic := blk * mc
					mcb := min(mc, m-ic)
					bufAp := bufAPool.Get().(*[]float64)
					packA(*bufAp, a, transA, ic, ic+mcb, pc, pc+kcb)
					macroKernel(*bufAp, bufB, mcb, kcb, alpha, betaEff, c, ic, jc, 0, ncb)
					bufAPool.Put(bufAp)
				})
				continue
			}
			// Single row block: pack A once, split the jr loop.
			bufAp := bufAPool.Get().(*[]float64)
			packA(*bufAp, a, transA, 0, m, pc, pc+kcb)
			parallelCols(nw, ncb, func(q0, q1 int) {
				macroKernel(*bufAp, bufB, m, kcb, alpha, betaEff, c, 0, jc, q0, q1)
			})
			bufAPool.Put(bufAp)
		}
	}
}

// gemmSerial is the single-goroutine blocked implementation.
func gemmSerial(transA, transB bool, alpha float64, a, b *mat.Dense, beta float64, c *mat.Dense) {
	bufAp := bufAPool.Get().(*[]float64)
	bufBp := bufBPool.Get().(*[]float64)
	defer func() {
		bufAPool.Put(bufAp)
		bufBPool.Put(bufBp)
	}()
	gemmSerialBuf(*bufAp, *bufBp, transA, transB, alpha, a, b, beta, c)
}

// gemmSerialBuf is gemmSerial over caller-provided packing buffers (bufA
// at least mc·kc floats, bufB at least kc·nc), so batched drivers can
// hold one buffer pair across many small products instead of a pool
// round-trip per product.
func gemmSerialBuf(bufA, bufB []float64, transA, transB bool, alpha float64, a, b *mat.Dense, beta float64, c *mat.Dense) {
	m, _ := opDims(a, transA)
	k, n := opDims(b, transB)
	for jc := 0; jc < n; jc += nc {
		ncb := min(nc, n-jc)
		for pc := 0; pc < k; pc += kc {
			kcb := min(kc, k-pc)
			packB(bufB, b, transB, pc, pc+kcb, jc, jc+ncb)
			betaEff := 1.0
			if pc == 0 {
				betaEff = beta
			}
			for ic := 0; ic < m; ic += mc {
				mcb := min(mc, m-ic)
				packA(bufA, a, transA, ic, ic+mcb, pc, pc+kcb)
				macroKernel(bufA, bufB, mcb, kcb, alpha, betaEff, c, ic, jc, 0, ncb)
			}
		}
	}
}

// scaleMatrix computes X := beta·X, treating beta == 0 as assignment
// (clearing NaNs, matching BLAS semantics).
func scaleMatrix(x *mat.Dense, beta float64) {
	switch beta {
	case 1:
		return
	case 0:
		x.Zero()
	default:
		for j := 0; j < x.Cols; j++ {
			col := x.Data[j*x.Stride : j*x.Stride+x.Rows]
			for i := range col {
				col[i] *= beta
			}
		}
	}
}
