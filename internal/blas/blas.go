// Package blas is a from-scratch, pure-Go implementation of the three
// level-3 BLAS kernels the paper builds its algorithms from — GEMM, SYRK,
// and SYMM — plus the triangle-mirroring data-movement step.
//
// The implementation follows the classic blocked/packed design (Goto,
// BLIS): operands are packed into contiguous micro-panels and a register-
// blocked 4×4 micro-kernel runs over them. GEMM parallelises across
// goroutines. SYRK and SYMM are built on the same macro-kernel machinery,
// which gives them genuinely different performance profiles from GEMM
// (slower ramps at small sizes, due to triangular bookkeeping and
// symmetric packing) — the very property the paper identifies as a driver
// of anomalies.
//
// This package is the repository's *measured* backend: experiments run on
// it time real kernel executions. The paper ran against MKL on a 10-core
// Xeon; the pure-Go kernels are slower in absolute terms but expose the
// same structural effects (shape-dependent efficiency, kernel-dependent
// efficiency gaps, cache warm-up between calls).
package blas

import (
	"fmt"
	"runtime"

	"lamb/internal/mat"
)

// Blocking parameters for the packed GEMM. Chosen for typical x86-64
// cache sizes: an MC×KC block of A (128×256 float64 = 256 KiB) fits in
// L2, a KC×NR sliver of B stays in L1.
const (
	mr = 4 // micro-kernel rows
	nr = 4 // micro-kernel cols
	mc = 128
	kc = 256
	nc = 2048
)

// maxWorkers caps GEMM parallelism. Zero means GOMAXPROCS.
var maxWorkers = 0

// SetMaxWorkers caps the number of goroutines used by the kernels.
// n <= 0 restores the default (GOMAXPROCS). It returns the previous cap.
// It is intended for benchmarking and tests and is not safe to call
// concurrently with running kernels.
func SetMaxWorkers(n int) int {
	old := maxWorkers
	maxWorkers = n
	return old
}

func workers() int {
	w := maxWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// opDims returns the dimensions of op(X) given trans.
func opDims(x *mat.Dense, trans bool) (r, c int) {
	if trans {
		return x.Cols, x.Rows
	}
	return x.Rows, x.Cols
}

// Gemm computes C := alpha·op(A)·op(B) + beta·C, where op(X) is X or Xᵀ
// according to transA/transB. op(A) must be m×k, op(B) k×n, and C m×n,
// with m, n, k implied by the operand shapes. It panics on mismatched
// dimensions.
func Gemm(transA, transB bool, alpha float64, a, b *mat.Dense, beta float64, c *mat.Dense) {
	am, ak := opDims(a, transA)
	bk, bn := opDims(b, transB)
	if ak != bk {
		panic(fmt.Sprintf("blas: gemm inner dimension mismatch %d vs %d", ak, bk))
	}
	if c.Rows != am || c.Cols != bn {
		panic(fmt.Sprintf("blas: gemm output %dx%d, want %dx%d", c.Rows, c.Cols, am, bn))
	}
	m, n, k := am, bn, ak
	if m == 0 || n == 0 {
		return
	}
	if alpha == 0 || k == 0 {
		scaleMatrix(c, beta)
		return
	}
	nw := workers()
	// Parallelise over column stripes of C when profitable; otherwise over
	// row stripes; tiny problems run serially.
	const parThreshold = 64 * 64 * 64
	if nw > 1 && float64(m)*float64(n)*float64(k) >= parThreshold {
		if n >= nw*nr {
			parallelCols(nw, n, func(j0, j1 int) {
				bs := sliceOp(b, transB, 0, k, j0, j1)
				cs := c.Slice(0, m, j0, j1)
				gemmSerial(transA, transB, alpha, a, bs, beta, cs)
			})
			return
		}
		if m >= nw*mr {
			parallelCols(nw, m, func(i0, i1 int) {
				as := sliceOp(a, transA, i0, i1, 0, k)
				cs := c.Slice(i0, i1, 0, n)
				gemmSerial(transA, transB, alpha, as, b, beta, cs)
			})
			return
		}
	}
	gemmSerial(transA, transB, alpha, a, b, beta, c)
}

// sliceOp slices the *logical* (post-op) matrix op(X)[i0:i1, j0:j1],
// returning a view of the stored matrix.
func sliceOp(x *mat.Dense, trans bool, i0, i1, j0, j1 int) *mat.Dense {
	if trans {
		return x.Slice(j0, j1, i0, i1)
	}
	return x.Slice(i0, i1, j0, j1)
}

// parallelCols splits [0, n) into roughly equal stripes aligned to the
// micro-kernel width and runs f on each stripe in its own goroutine.
func parallelCols(nw, n int, f func(lo, hi int)) {
	chunk := (n + nw - 1) / nw
	// Align up to a multiple of nr so stripes don't split micro-tiles.
	if rem := chunk % nr; rem != 0 {
		chunk += nr - rem
	}
	done := make(chan struct{}, nw)
	count := 0
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		count++
		go func(lo, hi int) {
			f(lo, hi)
			done <- struct{}{}
		}(lo, hi)
	}
	for i := 0; i < count; i++ {
		<-done
	}
}

// gemmSerial is the single-goroutine blocked implementation.
func gemmSerial(transA, transB bool, alpha float64, a, b *mat.Dense, beta float64, c *mat.Dense) {
	m, _ := opDims(a, transA)
	k, n := opDims(b, transB)
	bufA := make([]float64, mc*kc)
	bufB := make([]float64, kc*nc)
	for jc := 0; jc < n; jc += nc {
		ncb := min(nc, n-jc)
		for pc := 0; pc < k; pc += kc {
			kcb := min(kc, k-pc)
			packB(bufB, b, transB, pc, pc+kcb, jc, jc+ncb)
			betaEff := 1.0
			if pc == 0 {
				betaEff = beta
			}
			for ic := 0; ic < m; ic += mc {
				mcb := min(mc, m-ic)
				packA(bufA, a, transA, ic, ic+mcb, pc, pc+kcb)
				macroKernel(bufA, bufB, mcb, ncb, kcb, alpha, betaEff, c, ic, jc)
			}
		}
	}
}

// scaleMatrix computes X := beta·X, treating beta == 0 as assignment
// (clearing NaNs, matching BLAS semantics).
func scaleMatrix(x *mat.Dense, beta float64) {
	switch beta {
	case 1:
		return
	case 0:
		x.Zero()
	default:
		for j := 0; j < x.Cols; j++ {
			col := x.Data[j*x.Stride : j*x.Stride+x.Rows]
			for i := range col {
				col[i] *= beta
			}
		}
	}
}
