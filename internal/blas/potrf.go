package blas

import (
	"fmt"
	"math"

	"lamb/internal/mat"
)

// Potrf computes the Cholesky factorisation A = L·Lᵀ of a symmetric
// positive definite matrix in place: on entry the lower triangle of a
// holds the lower triangle of A; on return it holds L. The strict upper
// triangle is not referenced or modified. It returns an error if a
// non-positive pivot is encountered (A not positive definite).
//
// The implementation is the right-looking blocked algorithm (LAPACK
// dpotrf): factor a diagonal block unblocked, TRSM the panel below it,
// then SYRK-update the trailing matrix — so large factorisations inherit
// the performance of the level-3 kernels.
func Potrf(a *mat.Dense) error {
	n := a.Rows
	if a.Cols != n {
		return fmt.Errorf("blas: potrf of non-square %dx%d", a.Rows, a.Cols)
	}
	const nb = 64
	for k0 := 0; k0 < n; k0 += nb {
		k1 := min(k0+nb, n)
		akk := a.View(k0, k1, k0, k1)
		if err := potf2(&akk, k0); err != nil {
			return err
		}
		if k1 == n {
			break
		}
		// Panel solve: A[k1:, k0:k1] := A[k1:, k0:k1] · L_kkᵀ⁻¹, i.e.
		// solve X · Lᵀ = P. Equivalently solve L · Xᵀ = Pᵀ; done here
		// column-by-column with the right-side substitution inlined.
		panel := a.View(k1, n, k0, k1)
		trsmRightLowerTrans(&akk, &panel)
		// Trailing update: A[k1:, k1:] -= panel · panelᵀ (lower only).
		trailing := a.View(k1, n, k1, n)
		Syrk(mat.Lower, -1, &panel, 1, &trailing)
	}
	return nil
}

// potf2 is the unblocked Cholesky of a small diagonal block; off is the
// block's global offset, used only for error reporting.
//
// It is organised around rank-k updates so the O(n³) work runs through
// the SIMD primitives: columns are factored in panels of potf2PW, and
// once a panel is done every column to its right receives the panel's
// whole contribution in one fused rank-4 pass (a contiguous run down the
// column, so the AVX2 kernel applies). Within a panel the cross-column
// updates are contiguous axpys.
func potf2(a *mat.Dense, off int) error {
	n := a.Rows
	const pw = potf2PW
	for j0 := 0; j0 < n; j0 += pw {
		jw := min(pw, n-j0)
		// Factor the panel columns against each other (left-looking
		// inside the panel; updates from columns left of the panel were
		// applied by earlier trailing passes).
		for j := j0; j < j0+jw; j++ {
			colj := a.Data[j*a.Stride : j*a.Stride+n]
			for t := j0; t < j; t++ {
				colt := a.Data[t*a.Stride : t*a.Stride+n]
				axpy(colj[j:], colt[j:], -colt[j])
			}
			d := colj[j]
			if d <= 0 || math.IsNaN(d) {
				return fmt.Errorf("blas: potrf: leading minor of order %d is not positive definite", off+j+1)
			}
			d = math.Sqrt(d)
			colj[j] = d
			for i := j + 1; i < n; i++ {
				colj[i] /= d
			}
		}
		// Rank-jw trailing update: column k (rows k:) loses the panel's
		// contribution Σ_t L[k, j0+t]·L[k:, j0+t] in one fused pass.
		for k := j0 + jw; k < n; k++ {
			colk := a.Data[k*a.Stride : k*a.Stride+n]
			if jw == pw {
				var alphas [4]float64
				for t := 0; t < pw; t++ {
					alphas[t] = -a.Data[k+(j0+t)*a.Stride]
				}
				rank4(colk[k:], a.Data[j0*a.Stride+k:], a.Stride, &alphas)
				continue
			}
			for t := j0; t < j0+jw; t++ {
				colt := a.Data[t*a.Stride : t*a.Stride+n]
				axpy(colk[k:], colt[k:], -colt[k])
			}
		}
	}
	return nil
}

// potf2PW is the potf2 panel width; it must stay 4 to match the fused
// rank-4 SIMD update.
const potf2PW = 4

// trsmRightLowerTrans solves X·Lᵀ = B in place for lower-triangular L
// (the panel update of the blocked Cholesky): B is m×k, L is k×k.
//
// It is blocked: a column block of B is solved against the corresponding
// diagonal block of L with the scalar kernel, then the trailing columns
// are updated with a single GEMM (B[:, j1:] -= X_j · L[j1:, j0:j1]ᵀ), so
// the O(m·k²) work runs at packed-GEMM speed instead of scalar speed.
func trsmRightLowerTrans(l, b *mat.Dense) {
	m, k := b.Rows, l.Rows
	const nb = 32
	for j0 := 0; j0 < k; j0 += nb {
		j1 := min(j0+nb, k)
		bj := b.View(0, m, j0, j1)
		ljj := l.View(j0, j1, j0, j1)
		trsmRightLowerTransUnblocked(&ljj, &bj)
		if j1 < k {
			ltail := l.View(j1, k, j0, j1)
			btail := b.View(0, m, j1, k)
			Gemm(false, true, -1, &bj, &ltail, 1, &btail)
		}
	}
}

// trsmRightLowerTransUnblocked is the right-side substitution on a
// single diagonal block. Both inner loops run down contiguous columns of
// B, so the update is a single SIMD axpy per (j, p) pair.
func trsmRightLowerTransUnblocked(l, b *mat.Dense) {
	m, k := b.Rows, l.Rows
	for j := 0; j < k; j++ {
		ljj := l.Data[j+j*l.Stride]
		colj := b.Data[j*b.Stride : j*b.Stride+m]
		for i := 0; i < m; i++ {
			colj[i] /= ljj
		}
		for p := j + 1; p < k; p++ {
			lpj := l.Data[p+j*l.Stride]
			if lpj == 0 {
				continue
			}
			axpy(b.Data[p*b.Stride:p*b.Stride+m], colj, -lpj)
		}
	}
}

// NaivePotrf is the reference unblocked Cholesky. Semantics match Potrf.
func NaivePotrf(a *mat.Dense) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("blas: potrf of non-square %dx%d", a.Rows, a.Cols)
	}
	return potf2(a, 0)
}

// AddSym adds the uplo triangles element-wise: C := C + A, touching only
// the selected triangle. It is the symmetric accumulation step of the
// least-squares expression (S := A·Aᵀ + R).
func AddSym(uplo mat.Uplo, c, a *mat.Dense) {
	n := c.Rows
	if c.Cols != n || a.Rows != n || a.Cols != n {
		panic(fmt.Sprintf("blas: addsym with C %dx%d, A %dx%d", c.Rows, c.Cols, a.Rows, a.Cols))
	}
	for j := 0; j < n; j++ {
		var lo, hi int
		if uplo == mat.Lower {
			lo, hi = j, n
		} else {
			lo, hi = 0, j+1
		}
		ccol := c.Data[j*c.Stride:]
		acol := a.Data[j*a.Stride:]
		for i := lo; i < hi; i++ {
			ccol[i] += acol[i]
		}
	}
}
