package blas

import (
	"fmt"
	"math"

	"lamb/internal/mat"
)

// Potrf computes the Cholesky factorisation A = L·Lᵀ of a symmetric
// positive definite matrix in place: on entry the lower triangle of a
// holds the lower triangle of A; on return it holds L. The strict upper
// triangle is not referenced or modified. It returns an error if a
// non-positive pivot is encountered (A not positive definite).
//
// The implementation is the right-looking blocked algorithm (LAPACK
// dpotrf): factor a diagonal block unblocked, TRSM the panel below it,
// then SYRK-update the trailing matrix — so large factorisations inherit
// the performance of the level-3 kernels.
func Potrf(a *mat.Dense) error {
	n := a.Rows
	if a.Cols != n {
		return fmt.Errorf("blas: potrf of non-square %dx%d", a.Rows, a.Cols)
	}
	const nb = 64
	for k0 := 0; k0 < n; k0 += nb {
		k1 := min(k0+nb, n)
		akk := a.Slice(k0, k1, k0, k1)
		if err := potf2(akk, k0); err != nil {
			return err
		}
		if k1 == n {
			break
		}
		// Panel solve: A[k1:, k0:k1] := A[k1:, k0:k1] · L_kkᵀ⁻¹, i.e.
		// solve X · Lᵀ = P. Equivalently solve L · Xᵀ = Pᵀ; done here
		// column-by-column with the right-side substitution inlined.
		panel := a.Slice(k1, n, k0, k1)
		trsmRightLowerTrans(akk, panel)
		// Trailing update: A[k1:, k1:] -= panel · panelᵀ (lower only).
		trailing := a.Slice(k1, n, k1, n)
		Syrk(mat.Lower, -1, panel, 1, trailing)
	}
	return nil
}

// potf2 is the unblocked Cholesky of a small diagonal block; off is the
// block's global offset, used only for error reporting.
func potf2(a *mat.Dense, off int) error {
	n := a.Rows
	for j := 0; j < n; j++ {
		d := a.Data[j+j*a.Stride]
		for p := 0; p < j; p++ {
			v := a.Data[j+p*a.Stride]
			d -= v * v
		}
		if d <= 0 || math.IsNaN(d) {
			return fmt.Errorf("blas: potrf: leading minor of order %d is not positive definite", off+j+1)
		}
		d = math.Sqrt(d)
		a.Data[j+j*a.Stride] = d
		for i := j + 1; i < n; i++ {
			s := a.Data[i+j*a.Stride]
			for p := 0; p < j; p++ {
				s -= a.Data[i+p*a.Stride] * a.Data[j+p*a.Stride]
			}
			a.Data[i+j*a.Stride] = s / d
		}
	}
	return nil
}

// trsmRightLowerTrans solves X·Lᵀ = B in place for lower-triangular L
// (the panel update of the blocked Cholesky): B is m×k, L is k×k.
//
// It is blocked: a column block of B is solved against the corresponding
// diagonal block of L with the scalar kernel, then the trailing columns
// are updated with a single GEMM (B[:, j1:] -= X_j · L[j1:, j0:j1]ᵀ), so
// the O(m·k²) work runs at packed-GEMM speed instead of scalar speed.
func trsmRightLowerTrans(l, b *mat.Dense) {
	m, k := b.Rows, l.Rows
	const nb = 32
	for j0 := 0; j0 < k; j0 += nb {
		j1 := min(j0+nb, k)
		bj := b.Slice(0, m, j0, j1)
		trsmRightLowerTransUnblocked(l.Slice(j0, j1, j0, j1), bj)
		if j1 < k {
			Gemm(false, true, -1, bj, l.Slice(j1, k, j0, j1), 1, b.Slice(0, m, j1, k))
		}
	}
}

// trsmRightLowerTransUnblocked is the scalar right-side substitution on a
// single diagonal block.
func trsmRightLowerTransUnblocked(l, b *mat.Dense) {
	m, k := b.Rows, l.Rows
	for j := 0; j < k; j++ {
		ljj := l.Data[j+j*l.Stride]
		colj := b.Data[j*b.Stride:]
		for i := 0; i < m; i++ {
			colj[i] /= ljj
		}
		for p := j + 1; p < k; p++ {
			lpj := l.Data[p+j*l.Stride]
			if lpj == 0 {
				continue
			}
			colp := b.Data[p*b.Stride:]
			for i := 0; i < m; i++ {
				colp[i] -= lpj * colj[i]
			}
		}
	}
}

// NaivePotrf is the reference unblocked Cholesky. Semantics match Potrf.
func NaivePotrf(a *mat.Dense) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("blas: potrf of non-square %dx%d", a.Rows, a.Cols)
	}
	return potf2(a, 0)
}

// AddSym adds the uplo triangles element-wise: C := C + A, touching only
// the selected triangle. It is the symmetric accumulation step of the
// least-squares expression (S := A·Aᵀ + R).
func AddSym(uplo mat.Uplo, c, a *mat.Dense) {
	n := c.Rows
	if c.Cols != n || a.Rows != n || a.Cols != n {
		panic(fmt.Sprintf("blas: addsym with C %dx%d, A %dx%d", c.Rows, c.Cols, a.Rows, a.Cols))
	}
	for j := 0; j < n; j++ {
		var lo, hi int
		if uplo == mat.Lower {
			lo, hi = j, n
		} else {
			lo, hi = 0, j+1
		}
		ccol := c.Data[j*c.Stride:]
		acol := a.Data[j*a.Stride:]
		for i := lo; i < hi; i++ {
			ccol[i] += acol[i]
		}
	}
}
