// AVX2/FMA SIMD primitives shared by the packing routines and the
// triangular kernels: contiguous axpy and dot, the fused rank-4 column
// update of the unblocked Cholesky, and the full-panel packing kernels
// (contiguous copies and 4-stream register transposes). Feature
// detection is done once at startup via cpuHasAVX2FMA (ukernel_amd64.s);
// the Go wrappers in simd_amd64.go fall back to portable bodies.

#include "textflag.h"

// func axpyAVX(y, x *float64, n int, alpha float64)
//
// y[i] += alpha * x[i] for i in [0, n). 8 doubles per iteration, scalar
// tail.
TEXT ·axpyAVX(SB), NOSPLIT, $0-32
	MOVQ         y+0(FP), DI
	MOVQ         x+8(FP), SI
	MOVQ         n+16(FP), CX
	VBROADCASTSD alpha+24(FP), Y15
	MOVQ         CX, R9
	SHRQ         $3, R9
	JZ           tail

loop8:
	VMOVUPD     (DI), Y0
	VMOVUPD     32(DI), Y1
	VFMADD231PD (SI), Y15, Y0
	VFMADD231PD 32(SI), Y15, Y1
	VMOVUPD     Y0, (DI)
	VMOVUPD     Y1, 32(DI)
	ADDQ        $64, SI
	ADDQ        $64, DI
	DECQ        R9
	JNZ         loop8

tail:
	ANDQ $7, CX
	JZ   done

tail1:
	VMOVSD       (DI), X0
	VMOVSD       (SI), X1
	VFMADD231SD X1, X15, X0
	VMOVSD       X0, (DI)
	ADDQ        $8, SI
	ADDQ        $8, DI
	DECQ        CX
	JNZ         tail1

done:
	VZEROUPPER
	RET

// func dotAVX(x, y *float64, n int) float64
//
// Returns sum x[i]*y[i] for i in [0, n). Two vector accumulators, then a
// horizontal reduction and a scalar tail folded into the low lane.
TEXT ·dotAVX(SB), NOSPLIT, $0-32
	MOVQ   x+0(FP), SI
	MOVQ   y+8(FP), DI
	MOVQ   n+16(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	MOVQ   CX, R9
	SHRQ   $3, R9
	JZ     reduce

loop8:
	VMOVUPD     (SI), Y2
	VMOVUPD     32(SI), Y3
	VFMADD231PD (DI), Y2, Y0
	VFMADD231PD 32(DI), Y3, Y1
	ADDQ        $64, SI
	ADDQ        $64, DI
	DECQ        R9
	JNZ         loop8

reduce:
	VADDPD       Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD       X1, X0, X0
	VHADDPD      X0, X0, X0
	ANDQ         $7, CX
	JZ           done

tail1:
	VMOVSD       (SI), X1
	VMOVSD       (DI), X2
	VFMADD231SD X2, X1, X0
	ADDQ        $8, SI
	ADDQ        $8, DI
	DECQ        CX
	JNZ         tail1

done:
	VMOVSD X0, ret+24(FP)
	VZEROUPPER
	RET

// func rank4AVX(y, x *float64, stride, n int, alphas *[4]float64)
//
// y[i] += alphas[0]*x[i] + alphas[1]*x[stride+i] + alphas[2]*x[2*stride+i]
//       + alphas[3]*x[3*stride+i] for i in [0, n): the fused rank-4
// trailing update of the unblocked Cholesky panel factorisation.
TEXT ·rank4AVX(SB), NOSPLIT, $0-40
	MOVQ         y+0(FP), DI
	MOVQ         x+8(FP), SI
	MOVQ         stride+16(FP), R8
	MOVQ         n+24(FP), CX
	MOVQ         alphas+32(FP), AX
	SHLQ         $3, R8
	LEAQ         (SI)(R8*1), R9
	LEAQ         (R9)(R8*1), R10
	LEAQ         (R10)(R8*1), R11
	VBROADCASTSD (AX), Y12
	VBROADCASTSD 8(AX), Y13
	VBROADCASTSD 16(AX), Y14
	VBROADCASTSD 24(AX), Y15
	MOVQ         CX, R12
	SHRQ         $2, R12
	JZ           tail

loop4:
	VMOVUPD     (DI), Y0
	VFMADD231PD (SI), Y12, Y0
	VFMADD231PD (R9), Y13, Y0
	VFMADD231PD (R10), Y14, Y0
	VFMADD231PD (R11), Y15, Y0
	VMOVUPD     Y0, (DI)
	ADDQ        $32, SI
	ADDQ        $32, R9
	ADDQ        $32, R10
	ADDQ        $32, R11
	ADDQ        $32, DI
	DECQ        R12
	JNZ         loop4

tail:
	ANDQ $3, CX
	JZ   done

tail1:
	VMOVSD       (DI), X0
	VMOVSD       (SI), X1
	VFMADD231SD X1, X12, X0
	VMOVSD       (R9), X1
	VFMADD231SD X1, X13, X0
	VMOVSD       (R10), X1
	VFMADD231SD X1, X14, X0
	VMOVSD       (R11), X1
	VFMADD231SD X1, X15, X0
	VMOVSD       X0, (DI)
	ADDQ        $8, SI
	ADDQ        $8, R9
	ADDQ        $8, R10
	ADDQ        $8, R11
	ADDQ        $8, DI
	DECQ        CX
	JNZ         tail1

done:
	VZEROUPPER
	RET

// func mergeTileSet8x4AVX(c *float64, stride int, tile *[32]float64, alpha float64)
//
// C[r, s] = alpha * tile[s*8+r] for a full 8x4 micro-tile, C column-major
// at the given stride. The betaEff==0 merge of the GEMM macro-kernel.
TEXT ·mergeTileSet8x4AVX(SB), NOSPLIT, $0-32
	MOVQ         c+0(FP), DI
	MOVQ         stride+8(FP), R8
	MOVQ         tile+16(FP), SI
	VBROADCASTSD alpha+24(FP), Y15
	SHLQ         $3, R8
	MOVQ         $4, CX

loop:
	VMOVUPD (SI), Y0
	VMOVUPD 32(SI), Y1
	VMULPD  Y15, Y0, Y0
	VMULPD  Y15, Y1, Y1
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	ADDQ    $64, SI
	ADDQ    R8, DI
	DECQ    CX
	JNZ     loop
	VZEROUPPER
	RET

// func mergeTileAdd8x4AVX(c *float64, stride int, tile *[32]float64, alpha float64)
//
// C[r, s] += alpha * tile[s*8+r] for a full 8x4 micro-tile. The
// betaEff==1 merge of the GEMM macro-kernel.
TEXT ·mergeTileAdd8x4AVX(SB), NOSPLIT, $0-32
	MOVQ         c+0(FP), DI
	MOVQ         stride+8(FP), R8
	MOVQ         tile+16(FP), SI
	VBROADCASTSD alpha+24(FP), Y15
	SHLQ         $3, R8
	MOVQ         $4, CX

loop:
	VMOVUPD     (DI), Y0
	VMOVUPD     32(DI), Y1
	VMOVUPD     (SI), Y2
	VMOVUPD     32(SI), Y3
	VFMADD231PD Y15, Y2, Y0
	VFMADD231PD Y15, Y3, Y1
	VMOVUPD     Y0, (DI)
	VMOVUPD     Y1, 32(DI)
	ADDQ        $64, SI
	ADDQ        R8, DI
	DECQ        CX
	JNZ         loop
	VZEROUPPER
	RET

// func packContig8AVX(dst, src *float64, k, stride int)
//
// k copies of 8 contiguous doubles: dst advances 8, src advances stride.
// The full-height packA micro-panel (no transpose).
TEXT ·packContig8AVX(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ k+16(FP), CX
	MOVQ stride+24(FP), R8
	SHLQ $3, R8

loop:
	VMOVUPD (SI), Y0
	VMOVUPD 32(SI), Y1
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	ADDQ    R8, SI
	ADDQ    $64, DI
	DECQ    CX
	JNZ     loop
	VZEROUPPER
	RET

// func packContig4AVX(dst, src *float64, k, stride int)
//
// k copies of 4 contiguous doubles: dst advances 4, src advances stride.
// The full-width packB micro-panel (transposed B).
TEXT ·packContig4AVX(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ k+16(FP), CX
	MOVQ stride+24(FP), R8
	SHLQ $3, R8

loop:
	VMOVUPD (SI), Y0
	VMOVUPD Y0, (DI)
	ADDQ    R8, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     loop
	VZEROUPPER
	RET

// func packStreams4AVX(dst, src *float64, k, stride, dstStride int)
//
// Interleaves four strided source streams (stream s starts at
// src[s*stride]) into dst[p*dstStride+s] for p in [0, k): 4x4 blocks are
// transposed in registers (VUNPCK + VPERM2F128), the remainder runs
// scalar. dstStride is 4 for packB panels and 8 for the two half-panels
// of a transposed packA.
TEXT ·packStreams4AVX(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ k+16(FP), CX
	MOVQ stride+24(FP), R8
	MOVQ dstStride+32(FP), R13
	SHLQ $3, R8
	SHLQ $3, R13
	LEAQ (SI)(R8*1), R9
	LEAQ (R9)(R8*1), R10
	LEAQ (R10)(R8*1), R11
	LEAQ (R13)(R13*2), DX
	MOVQ CX, R12
	SHRQ $2, R12
	JZ   tail

loop4:
	VMOVUPD    (SI), Y0
	VMOVUPD    (R9), Y1
	VMOVUPD    (R10), Y2
	VMOVUPD    (R11), Y3
	VUNPCKLPD  Y1, Y0, Y4
	VUNPCKHPD  Y1, Y0, Y5
	VUNPCKLPD  Y3, Y2, Y6
	VUNPCKHPD  Y3, Y2, Y7
	VPERM2F128 $0x20, Y6, Y4, Y8
	VPERM2F128 $0x20, Y7, Y5, Y9
	VPERM2F128 $0x31, Y6, Y4, Y10
	VPERM2F128 $0x31, Y7, Y5, Y11
	VMOVUPD    Y8, (DI)
	VMOVUPD    Y9, (DI)(R13*1)
	VMOVUPD    Y10, (DI)(R13*2)
	VMOVUPD    Y11, (DI)(DX*1)
	ADDQ       $32, SI
	ADDQ       $32, R9
	ADDQ       $32, R10
	ADDQ       $32, R11
	LEAQ       (DI)(R13*4), DI
	DECQ       R12
	JNZ        loop4

tail:
	ANDQ $3, CX
	JZ   done

tail1:
	VMOVSD (SI), X0
	VMOVSD X0, (DI)
	VMOVSD (R9), X0
	VMOVSD X0, 8(DI)
	VMOVSD (R10), X0
	VMOVSD X0, 16(DI)
	VMOVSD (R11), X0
	VMOVSD X0, 24(DI)
	ADDQ  $8, SI
	ADDQ  $8, R9
	ADDQ  $8, R10
	ADDQ  $8, R11
	ADDQ  R13, DI
	DECQ  CX
	JNZ   tail1

done:
	VZEROUPPER
	RET
