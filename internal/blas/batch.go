package blas

// Batched kernel drivers for the small-instance regime: N same-shape
// problems laid out in one slab at a fixed stride, executed through one
// driver entry instead of N independent calls. Small dense problems are
// dominated by fixed costs — packing-buffer pool round-trips, argument
// validation, blocked-driver loop setup — rather than FLOPs, so the
// batched drivers hoist those costs out of the per-instance loop: one
// pooled buffer pair serves the whole batch, shared packed panels are
// laid out back to back, and micro-kernel sweeps interleave across
// instances while the panels are cache-hot (batmat's batched-linear-
// algebra design).
//
// Every batched driver computes bitwise-identical results to calling its
// per-instance kernel N times: the fused paths reuse the exact tile
// decompositions (packA/packB/macroKernel, potf2, trsmUnblocked, the
// SYRK/SYMM scratch-block merges) the sequential drivers use at the same
// sizes, and sizes outside the fused regime fall back to the sequential
// drivers instance by instance.
//
// On multi-worker hosts (see SetMaxWorkers) the fused paths go parallel:
// the batch is partitioned into contiguous per-worker instance ranges
// and each worker sweeps the identical serial fused kernel over its
// range with its own buffer set (batchpar.go). Instances are
// independent and each is processed by exactly one goroutine running
// the serial code on the same data, so the bitwise-identity guarantee
// holds at any worker count.
//
// The slab contract: an operand is passed as its instance-0 header plus
// an instance stride in float64s; instance i's data starts at
// Data[i·stride]. Headers must satisfy Stride >= Rows as usual, and the
// backing slice must extend through the last instance.

import (
	"fmt"

	"lamb/internal/mat"
)

// instView returns the i-th instance's header: the base header with its
// data advanced by i·stride. The returned value stays on the caller's
// stack as long as the callee does not retain it (see mat.View).
func instView(base *mat.Dense, stride, i int) mat.Dense {
	v := *base
	v.Data = base.Data[i*stride:]
	return v
}

// GemmBatch computes C_i := alpha·op(A_i)·op(B_i) + beta·C_i for
// i in [0, count), with the instances laid out at the given strides.
// Small instances (single-block problems: m <= 128, k <= 256, n <= 2048)
// run fused: panels of as many instances as fit the packing buffers are
// packed back to back, then the macro-kernel sweeps instance after
// instance over the hot packed data, in parallel over contiguous
// instance ranges when workers allow. Larger instances fall back to the
// blocked per-instance driver.
func GemmBatch(transA, transB bool, alpha float64, a *mat.Dense, strideA int, b *mat.Dense, strideB int, beta float64, c *mat.Dense, strideC int, count int) {
	if count <= 0 {
		return
	}
	am, ak := opDims(a, transA)
	bk, bn := opDims(b, transB)
	if ak != bk {
		panic(fmt.Sprintf("blas: gemm batch inner dimension mismatch %d vs %d", ak, bk))
	}
	if c.Rows != am || c.Cols != bn {
		panic(fmt.Sprintf("blas: gemm batch output %dx%d, want %dx%d", c.Rows, c.Cols, am, bn))
	}
	m, n, k := am, bn, ak
	if m == 0 || n == 0 {
		return
	}
	if alpha == 0 || k == 0 {
		for i := 0; i < count; i++ {
			cv := instView(c, strideC, i)
			scaleMatrix(&cv, beta)
		}
		return
	}
	if m <= mc && k <= kc && n <= nc {
		if np := batchParts(count); np > 1 {
			j := newBatchJob(runGemmBatchRange)
			j.transA, j.transB = transA, transB
			j.alpha, j.beta = alpha, beta
			j.a, j.b, j.c = *a, *b, *c
			j.sa, j.sb, j.sc = strideA, strideB, strideC
			j.m, j.n, j.k = m, n, k
			j.count = count
			j.dispatch(np)
			batchJobPool.Put(j)
			return
		}
		gemmBatchFused(transA, transB, alpha, a, strideA, b, strideB, beta, c, strideC, count, m, n, k)
		return
	}
	for i := 0; i < count; i++ {
		av := instView(a, strideA, i)
		bv := instView(b, strideB, i)
		cv := instView(c, strideC, i)
		Gemm(transA, transB, alpha, &av, &bv, beta, &cv)
	}
}

// gemmBatchFused is the serial shared-packing path: one pooled buffer
// pair sweeps the whole batch.
func gemmBatchFused(transA, transB bool, alpha float64, a *mat.Dense, strideA int, b *mat.Dense, strideB int, beta float64, c *mat.Dense, strideC int, count, m, n, k int) {
	bufAp := bufAPool.Get().(*[]float64)
	bufBp := bufBPool.Get().(*[]float64)
	gemmBatchFusedRange(*bufAp, *bufBp, transA, transB, alpha, a, strideA, b, strideB, beta, c, strideC, 0, count, m, n, k)
	bufAPool.Put(bufAp)
	bufBPool.Put(bufBp)
}

// gemmBatchFusedRange is the shared-packing path for single-block
// instances over the contiguous range [lo, hi): every instance is one
// (jc, pc, ic) block, so its packed panels are contiguous and chunks of
// instances are packed into the provided buffers back to back. Within a
// chunk all instances are packed first, then the macro-kernel runs
// instance after instance — the packed data is still resident, and the
// buffers are acquired once per range instead of twice per instance.
// Tile computations are identical to gemmSerial's, so results match the
// per-instance driver bitwise; the chunking and the range partition
// only group independent instances, they never change per-instance
// arithmetic.
func gemmBatchFusedRange(bufA, bufB []float64, transA, transB bool, alpha float64, a *mat.Dense, strideA int, b *mat.Dense, strideB int, beta float64, c *mat.Dense, strideC int, lo, hi, m, n, k int) {
	packedA := (m + mr - 1) / mr * mr * k
	packedB := (n + nr - 1) / nr * nr * k
	chunk := min(mc*kc/packedA, kc*nc/packedB)
	if chunk < 1 {
		chunk = 1
	}
	for base := lo; base < hi; base += chunk {
		cnt := min(chunk, hi-base)
		for i := 0; i < cnt; i++ {
			av := instView(a, strideA, base+i)
			bv := instView(b, strideB, base+i)
			packA(bufA[i*packedA:], &av, transA, 0, m, 0, k)
			packB(bufB[i*packedB:], &bv, transB, 0, k, 0, n)
		}
		for i := 0; i < cnt; i++ {
			cv := instView(c, strideC, base+i)
			macroKernel(bufA[i*packedA:], bufB[i*packedB:], m, k, alpha, beta, &cv, 0, 0, 0, n)
		}
	}
}

// SyrkBatch computes the uplo triangle of C_i := alpha·A_i·A_iᵀ +
// beta·C_i (trans: alpha·A_iᵀ·A_i) for i in [0, count). Instances with
// m <= 96 are a single diagonal block: each worker's range shares one
// scratch square and one packing-buffer pair across its instances.
// Larger instances fall back to the blocked driver.
func SyrkBatch(uplo mat.Uplo, trans bool, alpha float64, a *mat.Dense, strideA int, beta float64, c *mat.Dense, strideC int, count int) {
	if count <= 0 {
		return
	}
	m, k := a.Rows, a.Cols
	if trans {
		m, k = a.Cols, a.Rows
	}
	if c.Rows != m || c.Cols != m {
		panic(fmt.Sprintf("blas: syrk batch output %dx%d, want %dx%d", c.Rows, c.Cols, m, m))
	}
	if m == 0 {
		return
	}
	if m > syrkBlock || alpha == 0 || k == 0 {
		for i := 0; i < count; i++ {
			av := instView(a, strideA, i)
			cv := instView(c, strideC, i)
			syrkDriver(uplo, trans, alpha, &av, beta, &cv)
		}
		return
	}
	if np := batchParts(count); np > 1 {
		j := newBatchJob(runSyrkBatchRange)
		j.uplo, j.transA = uplo, trans
		j.alpha, j.beta = alpha, beta
		j.a, j.c = *a, *c
		j.sa, j.sc = strideA, strideC
		j.m = m
		j.count = count
		j.dispatch(np)
		batchJobPool.Put(j)
		return
	}
	scratch := syrkScratchPool.Get().(*mat.Dense)
	bufAp := bufAPool.Get().(*[]float64)
	bufBp := bufBPool.Get().(*[]float64)
	bufs := batchBufs{bufA: *bufAp, bufB: *bufBp, scratch: scratch}
	syrkBatchFusedRange(&bufs, uplo, trans, alpha, a, strideA, beta, c, strideC, 0, count, m)
	bufAPool.Put(bufAp)
	bufBPool.Put(bufBp)
	syrkScratchPool.Put(scratch)
}

// syrkBatchFusedRange sweeps the single-block SYRK path over instances
// [lo, hi) with the provided buffer set. Per-instance computation is
// identical to syrkDriver's single-block case.
func syrkBatchFusedRange(bufs *batchBufs, uplo mat.Uplo, trans bool, alpha float64, a *mat.Dense, strideA int, beta float64, c *mat.Dense, strideC, lo, hi, m int) {
	for i := lo; i < hi; i++ {
		av := instView(a, strideA, i)
		cv := instView(c, strideC, i)
		sb := bufs.scratch.View(0, m, 0, m)
		gemmSerialBuf(bufs.bufA, bufs.bufB, trans, !trans, alpha, &av, &av, 0, &sb)
		mergeTriangle(&cv, &sb, 0, uplo, beta)
	}
}

// SymmBatch computes C_i := alpha·A_i·B_i + beta·C_i for symmetric A_i
// (uplo triangle stored) for i in [0, count). Instances with m <= 96 are
// a single symmetrised block shared through each worker's scratch
// square; larger instances fall back to the blocked driver.
func SymmBatch(uplo mat.Uplo, alpha float64, a *mat.Dense, strideA int, b *mat.Dense, strideB int, beta float64, c *mat.Dense, strideC int, count int) {
	if count <= 0 {
		return
	}
	m := a.Rows
	if a.Cols != m {
		panic(fmt.Sprintf("blas: symm batch A is %dx%d, want square", a.Rows, a.Cols))
	}
	n := b.Cols
	if b.Rows != m || c.Rows != m || c.Cols != n {
		panic(fmt.Sprintf("blas: symm batch output %dx%d, want %dx%d", c.Rows, c.Cols, m, n))
	}
	if m == 0 || n == 0 {
		return
	}
	if m > syrkBlock || n > nc || alpha == 0 {
		for i := 0; i < count; i++ {
			av := instView(a, strideA, i)
			bv := instView(b, strideB, i)
			cv := instView(c, strideC, i)
			Symm(uplo, alpha, &av, &bv, beta, &cv)
		}
		return
	}
	if np := batchParts(count); np > 1 {
		j := newBatchJob(runSymmBatchRange)
		j.uplo = uplo
		j.alpha, j.beta = alpha, beta
		j.a, j.b, j.c = *a, *b, *c
		j.sa, j.sb, j.sc = strideA, strideB, strideC
		j.m = m
		j.count = count
		j.dispatch(np)
		batchJobPool.Put(j)
		return
	}
	scratch := syrkScratchPool.Get().(*mat.Dense)
	bufAp := bufAPool.Get().(*[]float64)
	bufBp := bufBPool.Get().(*[]float64)
	bufs := batchBufs{bufA: *bufAp, bufB: *bufBp, scratch: scratch}
	symmBatchFusedRange(&bufs, uplo, alpha, a, strideA, b, strideB, beta, c, strideC, 0, count, m)
	bufAPool.Put(bufAp)
	bufBPool.Put(bufBp)
	syrkScratchPool.Put(scratch)
}

// symmBatchFusedRange sweeps the single-block SYMM path over instances
// [lo, hi) with the provided buffer set. Per-instance computation is
// identical to Symm's single-block case.
func symmBatchFusedRange(bufs *batchBufs, uplo mat.Uplo, alpha float64, a *mat.Dense, strideA int, b *mat.Dense, strideB int, beta float64, c *mat.Dense, strideC, lo, hi, m int) {
	for i := lo; i < hi; i++ {
		av := instView(a, strideA, i)
		bv := instView(b, strideB, i)
		cv := instView(c, strideC, i)
		ab := bufs.scratch.View(0, m, 0, m)
		materialiseSymBlock(&ab, &av, uplo, 0, m, 0, m)
		gemmSerialBuf(bufs.bufA, bufs.bufB, false, false, alpha, &ab, &bv, beta, &cv)
	}
}

// TrsmBatch solves op(L_i)·X_i = alpha·B_i in place for i in [0, count).
// Instances with m <= 64 are a single diagonal block solved with the
// unblocked substitution kernel directly (in parallel over contiguous
// instance ranges when workers allow); larger instances fall back to
// the blocked driver.
func TrsmBatch(uplo mat.Uplo, transL bool, alpha float64, l *mat.Dense, strideL int, b *mat.Dense, strideB int, count int) {
	if count <= 0 {
		return
	}
	m := l.Rows
	if l.Cols != m {
		panic(fmt.Sprintf("blas: trsm batch L is %dx%d, want square", l.Rows, l.Cols))
	}
	if b.Rows != m {
		panic(fmt.Sprintf("blas: trsm batch B has %d rows, want %d", b.Rows, m))
	}
	if m == 0 || b.Cols == 0 {
		return
	}
	const nb = 64 // must match Trsm's block size for identical results
	if m > nb {
		for i := 0; i < count; i++ {
			lv := instView(l, strideL, i)
			bv := instView(b, strideB, i)
			Trsm(uplo, transL, alpha, &lv, &bv)
		}
		return
	}
	if np := batchParts(count); np > 1 {
		j := newBatchJob(runTrsmBatchRange)
		j.uplo, j.transA = uplo, transL
		j.alpha = alpha
		j.a, j.b = *l, *b
		j.sa, j.sb = strideL, strideB
		j.m = m
		j.count = count
		j.dispatch(np)
		batchJobPool.Put(j)
		return
	}
	trsmBatchFusedRange(uplo, transL, alpha, l, strideL, b, strideB, 0, count)
}

// trsmBatchFusedRange sweeps the unblocked solve over instances
// [lo, hi); per-instance computation is identical to Trsm's single-block
// case.
func trsmBatchFusedRange(uplo mat.Uplo, transL bool, alpha float64, l *mat.Dense, strideL int, b *mat.Dense, strideB, lo, hi int) {
	for i := lo; i < hi; i++ {
		lv := instView(l, strideL, i)
		bv := instView(b, strideB, i)
		if alpha != 1 {
			scaleMatrix(&bv, alpha)
		}
		trsmUnblocked(uplo, transL, &lv, &bv)
	}
}

// PotrfBatch factors A_i = L_i·L_iᵀ in place for i in [0, count).
// Instances with n <= 64 run the unblocked kernel directly (exactly what
// the blocked driver does at that size), in parallel over contiguous
// instance ranges when workers allow; larger instances fall back to it.
// A non-positive-definite instance aborts the batch with an error naming
// the lowest failing instance — the one sequential execution would hit
// first.
func PotrfBatch(a *mat.Dense, strideA, count int) error {
	if count <= 0 {
		return nil
	}
	n := a.Rows
	if a.Cols != n {
		return fmt.Errorf("blas: potrf batch of non-square %dx%d", a.Rows, a.Cols)
	}
	const nb = 64 // must match Potrf's block size for identical results
	if n > nb {
		for i := 0; i < count; i++ {
			av := instView(a, strideA, i)
			if err := Potrf(&av); err != nil {
				return fmt.Errorf("%w (batch instance %d)", err, i)
			}
		}
		return nil
	}
	if np := batchParts(count); np > 1 {
		j := newBatchJob(runPotrfBatchRange)
		j.a = *a
		j.sa = strideA
		j.count = count
		j.dispatch(np)
		err, idx := j.err, j.errIdx
		batchJobPool.Put(j)
		if err != nil {
			return fmt.Errorf("%w (batch instance %d)", err, idx)
		}
		return nil
	}
	for i := 0; i < count; i++ {
		av := instView(a, strideA, i)
		if err := potf2(&av, 0); err != nil {
			return fmt.Errorf("%w (batch instance %d)", err, i)
		}
	}
	return nil
}

// AddSymBatch adds the uplo triangles C_i := C_i + A_i for i in
// [0, count).
func AddSymBatch(uplo mat.Uplo, c *mat.Dense, strideC int, a *mat.Dense, strideA, count int) {
	if count <= 0 {
		return
	}
	if np := batchParts(count); np > 1 {
		j := newBatchJob(runAddSymBatchRange)
		j.uplo = uplo
		j.a, j.c = *a, *c
		j.sa, j.sc = strideA, strideC
		j.count = count
		j.dispatch(np)
		batchJobPool.Put(j)
		return
	}
	for i := 0; i < count; i++ {
		cv := instView(c, strideC, i)
		av := instView(a, strideA, i)
		AddSym(uplo, &cv, &av)
	}
}

// Tri2FullBatch mirrors the uplo triangle onto the opposite one for each
// of the count instances.
func Tri2FullBatch(uplo mat.Uplo, c *mat.Dense, strideC, count int) {
	if count <= 0 {
		return
	}
	if np := batchParts(count); np > 1 {
		j := newBatchJob(runTri2FullBatchRange)
		j.uplo = uplo
		j.c = *c
		j.sc = strideC
		j.count = count
		j.dispatch(np)
		batchJobPool.Put(j)
		return
	}
	for i := 0; i < count; i++ {
		cv := instView(c, strideC, i)
		Tri2Full(uplo, &cv)
	}
}
