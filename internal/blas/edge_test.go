package blas

import (
	"testing"

	"lamb/internal/mat"
	"lamb/internal/xrand"
)

// Edge-case coverage for the kernels: accumulation semantics, strided
// views, degenerate shapes, and beta handling in triangular routines.

func TestSyrkAccumulateBetaOne(t *testing.T) {
	rng := xrand.New(61)
	a1 := mat.NewRandom(40, 10, rng)
	a2 := mat.NewRandom(40, 15, rng)
	// C = a1·a1ᵀ + a2·a2ᵀ accumulated in two SYRKs equals one SYRK of the
	// concatenation.
	c := mat.New(40, 40)
	Syrk(mat.Lower, 1, a1, 0, c)
	Syrk(mat.Lower, 1, a2, 1, c)
	concat := mat.New(40, 25)
	mat.Copy(concat.Slice(0, 40, 0, 10), a1)
	mat.Copy(concat.Slice(0, 40, 10, 25), a2)
	want := mat.New(40, 40)
	NaiveSyrk(mat.Lower, 1, concat, 0, want)
	mat.ZeroTriangle(c, mat.Lower)
	mat.ZeroTriangle(want, mat.Lower)
	if d := mat.MaxAbsDiff(c, want); d > 1e-12*25 {
		t.Fatalf("accumulated syrk wrong: %g", d)
	}
}

func TestSymmOnStridedViews(t *testing.T) {
	rng := xrand.New(62)
	big := mat.NewRandom(80, 80, rng)
	// Carve a symmetric block out of a larger allocation.
	sym := mat.NewSymmetricRandom(30, rng)
	aView := big.Slice(5, 35, 5, 35)
	mat.Copy(aView, sym)
	b := big.Slice(10, 40, 40, 52) // 30x12 view
	got := mat.New(30, 12)
	want := mat.New(30, 12)
	Symm(mat.Lower, 1, aView, b, 0, got)
	NaiveSymm(mat.Lower, 1, aView.Clone(), b.Clone(), 0, want)
	if d := mat.MaxAbsDiff(got, want); d > 1e-12*30 {
		t.Fatalf("symm on views: %g", d)
	}
}

func TestTrsmSingleColumnAndRow(t *testing.T) {
	rng := xrand.New(63)
	// 1x1 system.
	l := mat.NewFromSlice(1, 1, []float64{2})
	b := mat.NewFromSlice(1, 1, []float64{6})
	Trsm(mat.Lower, false, 1, l, b)
	if b.At(0, 0) != 3 {
		t.Fatalf("1x1 solve = %v, want 3", b.At(0, 0))
	}
	// Single RHS column through the blocked path.
	m := 130
	big := mat.NewRandom(m, m, rng)
	for i := 0; i < m; i++ {
		big.Set(i, i, 5)
	}
	rhs := mat.NewRandom(m, 1, rng)
	got := rhs.Clone()
	want := rhs.Clone()
	Trsm(mat.Upper, false, 1, big, got)
	NaiveTrsm(mat.Upper, false, 1, big, want)
	if d := mat.MaxAbsDiff(got, want); d > 1e-10 {
		t.Fatalf("single-column upper solve: %g", d)
	}
}

func TestTrsmZeroColumnsNoop(t *testing.T) {
	l := mat.NewFromSlice(2, 2, []float64{1, 1, 0, 1})
	b := mat.New(2, 0)
	Trsm(mat.Lower, false, 1, l, b) // must not panic
}

func TestPotrfOnView(t *testing.T) {
	rng := xrand.New(64)
	big := mat.New(100, 100)
	spd := spdMatrix(60, rng)
	view := big.Slice(20, 80, 20, 80)
	mat.Copy(view, spd)
	if err := Potrf(view); err != nil {
		t.Fatal(err)
	}
	// The factor must reconstruct the original.
	l := view.Clone()
	mat.ZeroTriangle(l, mat.Lower)
	recon := mat.New(60, 60)
	NaiveGemm(false, true, 1, l, l, 0, recon)
	for j := 0; j < 60; j++ {
		for i := j; i < 60; i++ {
			if diff := recon.At(i, j) - spd.At(i, j); diff > 1e-7 || diff < -1e-7 {
				t.Fatalf("view potrf reconstruction off at (%d,%d): %g", i, j, diff)
			}
		}
	}
	// Surrounding data untouched.
	if big.At(0, 0) != 0 || big.At(99, 99) != 0 {
		t.Fatal("potrf on view leaked outside the view")
	}
}

func TestGemmBetaMinusOne(t *testing.T) {
	rng := xrand.New(65)
	a := mat.NewRandom(20, 20, rng)
	b := mat.NewRandom(20, 20, rng)
	c := mat.NewRandom(20, 20, rng)
	got := c.Clone()
	want := c.Clone()
	Gemm(false, false, 2, a, b, -1, got)
	NaiveGemm(false, false, 2, a, b, -1, want)
	if d := mat.MaxAbsDiff(got, want); d > 1e-12*20 {
		t.Fatalf("beta=-1: %g", d)
	}
}

func TestScaleTriangleBetaCases(t *testing.T) {
	c := mat.New(4, 4)
	c.Fill(2)
	scaleTriangle(c, mat.Upper, 0.5)
	if c.At(0, 3) != 1 || c.At(3, 0) != 2 {
		t.Fatal("scaleTriangle(Upper, 0.5) wrong")
	}
	scaleTriangle(c, mat.Upper, 1) // no-op
	if c.At(0, 3) != 1 {
		t.Fatal("beta=1 should be a no-op")
	}
	scaleTriangle(c, mat.Lower, 0)
	if c.At(3, 0) != 0 || c.At(0, 3) != 1 {
		t.Fatal("scaleTriangle(Lower, 0) wrong")
	}
}

func TestAddSymUpper(t *testing.T) {
	rng := xrand.New(66)
	c := mat.NewRandom(6, 6, rng)
	a := mat.NewRandom(6, 6, rng)
	orig := c.Clone()
	AddSym(mat.Upper, c, a)
	for j := 0; j < 6; j++ {
		for i := 0; i < 6; i++ {
			want := orig.At(i, j)
			if i <= j {
				want += a.At(i, j)
			}
			if c.At(i, j) != want {
				t.Fatalf("upper addsym wrong at (%d,%d)", i, j)
			}
		}
	}
}
