package blas

// cpuHasAVX2FMA reports whether the CPU and OS support the AVX2+FMA
// vector kernel (CPUID feature bits plus XCR0 state enablement).
// Implemented in ukernel_amd64.s.
func cpuHasAVX2FMA() bool

// gemm8x4AVX computes the full 8×4 packed micro-tile product
// out[r+8·s] = Σ_p ap[p·8+r] · bp[p·4+s] with AVX2 FMA instructions.
// Implemented in ukernel_amd64.s.
//
//go:noescape
func gemm8x4AVX(ap, bp *float64, k int, out *[mr * nr]float64)

// haveAVX2FMA gates the assembly micro-kernel; detected once at startup.
var haveAVX2FMA = cpuHasAVX2FMA()

// microKernel8x4 computes one packed 8×4 micro-tile into out, using the
// vectorized kernel when the CPU supports it.
func microKernel8x4(ap, bp []float64, kcb int, out *[mr * nr]float64) {
	if haveAVX2FMA {
		gemm8x4AVX(&ap[0], &bp[0], kcb, out)
		return
	}
	microKernel8x4Generic(ap, bp, kcb, out)
}
