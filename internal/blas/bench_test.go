package blas

import (
	"fmt"
	"testing"

	"lamb/internal/mat"
	"lamb/internal/xrand"
)

// Micro-benchmarks for the pure-Go BLAS kernels: the measured backend's
// raw performance, with GFLOP/s attached as a custom metric.

func benchGemm(b *testing.B, m, n, k int) {
	rng := xrand.New(1)
	a := mat.NewRandom(m, k, rng)
	bb := mat.NewRandom(k, n, rng)
	c := mat.New(m, n)
	b.SetBytes(int64(8 * (m*k + k*n + m*n)))
	b.ReportAllocs() // pooled packing buffers: 0 allocs/op in steady state
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemm(false, false, 1, a, bb, 0, c)
	}
	reportGFLOPs(b, 2*float64(m)*float64(n)*float64(k))
}

func reportGFLOPs(b *testing.B, flopsPerOp float64) {
	b.ReportMetric(flopsPerOp*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

func BenchmarkGemm(b *testing.B) {
	for _, s := range []int{64, 128, 256, 512} {
		b.Run(fmt.Sprintf("square-%d", s), func(b *testing.B) { benchGemm(b, s, s, s) })
	}
	b.Run("skinny-k-512x512x16", func(b *testing.B) { benchGemm(b, 512, 512, 16) })
	b.Run("skinny-n-512x16x512", func(b *testing.B) { benchGemm(b, 512, 16, 512) })
}

func BenchmarkGemmTransposed(b *testing.B) {
	const s = 256
	rng := xrand.New(2)
	a := mat.NewRandom(s, s, rng)
	bb := mat.NewRandom(s, s, rng)
	c := mat.New(s, s)
	for _, tc := range []struct {
		name           string
		transA, transB bool
	}{{"NT", false, true}, {"TN", true, false}, {"TT", true, true}} {
		b.Run(tc.name, func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Gemm(tc.transA, tc.transB, 1, a, bb, 0, c)
			}
			reportGFLOPs(b, 2*float64(s)*float64(s)*float64(s))
		})
	}
}

func BenchmarkGemmSerialVsParallel(b *testing.B) {
	const s = 384
	rng := xrand.New(3)
	a := mat.NewRandom(s, s, rng)
	bb := mat.NewRandom(s, s, rng)
	c := mat.New(s, s)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			old := SetMaxWorkers(workers)
			defer SetMaxWorkers(old)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Gemm(false, false, 1, a, bb, 0, c)
			}
			reportGFLOPs(b, 2*float64(s)*float64(s)*float64(s))
		})
	}
}

func BenchmarkSyrk(b *testing.B) {
	for _, sh := range [][2]int{{128, 128}, {256, 64}, {256, 256}} {
		m, k := sh[0], sh[1]
		b.Run(fmt.Sprintf("m%d-k%d", m, k), func(b *testing.B) {
			rng := xrand.New(4)
			a := mat.NewRandom(m, k, rng)
			c := mat.New(m, m)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Syrk(mat.Lower, 1, a, 0, c)
			}
			reportGFLOPs(b, float64(m+1)*float64(m)*float64(k))
		})
	}
}

func BenchmarkSymm(b *testing.B) {
	for _, sh := range [][2]int{{128, 128}, {128, 512}, {256, 256}} {
		m, n := sh[0], sh[1]
		b.Run(fmt.Sprintf("m%d-n%d", m, n), func(b *testing.B) {
			rng := xrand.New(5)
			a := mat.NewSymmetricRandom(m, rng)
			bb := mat.NewRandom(m, n, rng)
			c := mat.New(m, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Symm(mat.Lower, 1, a, bb, 0, c)
			}
			reportGFLOPs(b, 2*float64(m)*float64(m)*float64(n))
		})
	}
}

func BenchmarkTri2Full(b *testing.B) {
	const s = 512
	c := mat.NewRandom(s, s, xrand.New(6))
	b.SetBytes(int64(8 * s * s))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Tri2Full(mat.Lower, c)
	}
}

func BenchmarkPackA(b *testing.B) {
	a := mat.NewRandom(mc, kc, xrand.New(7))
	buf := make([]float64, mc*kc)
	b.SetBytes(int64(8 * mc * kc))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		packA(buf, a, false, 0, mc, 0, kc)
	}
}

func BenchmarkTrsm(b *testing.B) {
	// The blocked solve inherits packed-GEMM speed for the trailing
	// updates; m²n flops.
	const m, n = 256, 256
	rng := xrand.New(9)
	l := mat.NewRandom(m, m, rng)
	for i := 0; i < m; i++ {
		l.Set(i, i, 4+rng.Float64())
	}
	bb := mat.NewRandom(m, n, rng)
	x := mat.New(m, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		mat.Copy(x, bb)
		b.StartTimer()
		Trsm(mat.Lower, false, 1, l, x)
	}
	reportGFLOPs(b, float64(m)*float64(m)*float64(n))
}

func BenchmarkPotrf(b *testing.B) {
	// Dominated by the SYRK trailing update plus the blocked panel solve;
	// n³/3 flops.
	for _, n := range []int{128, 256} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			rng := xrand.New(10)
			spd := mat.NewSPDRandom(n, rng)
			a := mat.New(n, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				mat.Copy(a, spd)
				b.StartTimer()
				if err := Potrf(a); err != nil {
					b.Fatal(err)
				}
			}
			nf := float64(n)
			reportGFLOPs(b, nf*(nf+1)*(2*nf+1)/6)
		})
	}
}

func BenchmarkNaiveGemmBaseline(b *testing.B) {
	// The unblocked reference: the gap to BenchmarkGemm/square-256 is the
	// payoff of packing and register blocking.
	const s = 256
	rng := xrand.New(8)
	a := mat.NewRandom(s, s, rng)
	bb := mat.NewRandom(s, s, rng)
	c := mat.New(s, s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NaiveGemm(false, false, 1, a, bb, 0, c)
	}
	reportGFLOPs(b, 2*float64(s)*float64(s)*float64(s))
}
