//go:build !amd64

package blas

// microKernel8x4 computes one packed 8×4 micro-tile into out. Non-amd64
// platforms always use the portable kernel (on arm64 and ppc64 the
// compiler fuses its multiply-adds into native FMA instructions).
func microKernel8x4(ap, bp []float64, kcb int, out *[mr * nr]float64) {
	microKernel8x4Generic(ap, bp, kcb, out)
}
