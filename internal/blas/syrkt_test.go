package blas

import (
	"testing"

	"lamb/internal/mat"
	"lamb/internal/xrand"
)

// transposed returns an explicit copy of aᵀ.
func transposed(a *mat.Dense) *mat.Dense {
	out := mat.New(a.Cols, a.Rows)
	for j := 0; j < a.Cols; j++ {
		for i := 0; i < a.Rows; i++ {
			out.Set(j, i, a.At(i, j))
		}
	}
	return out
}

func TestSyrkTMatchesNaiveOnTranspose(t *testing.T) {
	// SyrkT(A) computes AᵀA, which is Syrk of the explicit transpose —
	// pinned against the naive reference on both triangles, with
	// alpha/beta scaling, across serial and blocked shapes.
	rng := xrand.New(31)
	shapes := [][2]int{{1, 1}, {5, 3}, {8, 8}, {5, 17}, {30, 96}, {10, 97}, {40, 150}, {3, 200}}
	for _, sh := range shapes {
		k, m := sh[0], sh[1] // A is k×m, C is m×m
		for _, uplo := range []mat.Uplo{mat.Lower, mat.Upper} {
			a := mat.NewRandom(k, m, rng)
			c0 := mat.NewRandom(m, m, rng)
			got := c0.Clone()
			want := c0.Clone()
			SyrkT(uplo, 1.1, a, 0.4, got)
			NaiveSyrk(uplo, 1.1, transposed(a), 0.4, want)
			if d := mat.MaxAbsDiff(got, want); d > tol(k) {
				t.Fatalf("syrkT(%v) m=%d k=%d: diff %g", uplo, m, k, d)
			}
		}
	}
}

func TestSyrkTDoesNotTouchOppositeTriangle(t *testing.T) {
	rng := xrand.New(32)
	a := mat.NewRandom(20, 50, rng)
	c := mat.New(50, 50)
	c.Fill(123)
	SyrkT(mat.Lower, 1, a, 0, c)
	for j := 0; j < 50; j++ {
		for i := 0; i < j; i++ {
			if c.At(i, j) != 123 {
				t.Fatalf("upper element (%d,%d) modified by Lower syrkT", i, j)
			}
		}
	}
	c.Fill(123)
	SyrkT(mat.Upper, 1, a, 0, c)
	for j := 0; j < 50; j++ {
		for i := j + 1; i < 50; i++ {
			if c.At(i, j) != 123 {
				t.Fatalf("lower element (%d,%d) modified by Upper syrkT", i, j)
			}
		}
	}
}

func TestSyrkTAgreesWithSyrkOfTranspose(t *testing.T) {
	// The two drivers share block machinery; this cross-check runs a
	// ragged shape large enough to exercise multi-block panels.
	rng := xrand.New(33)
	a := mat.NewRandom(37, 210, rng)
	got := mat.New(210, 210)
	want := mat.New(210, 210)
	SyrkT(mat.Lower, 1, a, 0, got)
	Syrk(mat.Lower, 1, transposed(a), 0, want)
	if d := mat.MaxAbsDiff(got, want); d > tol(37) {
		t.Fatalf("syrkT vs syrk(aᵀ): diff %g", d)
	}
}

func TestSyrkTMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for mismatched output")
		}
	}()
	SyrkT(mat.Lower, 1, mat.New(4, 6), 0, mat.New(4, 4))
}

func TestSyrkTRandomShapesProperty(t *testing.T) {
	rng := xrand.New(34)
	for trial := 0; trial < 40; trial++ {
		k := rng.IntRange(1, 140)
		m := rng.IntRange(1, 140)
		a := mat.NewRandom(k, m, rng)
		got := mat.New(m, m)
		want := mat.New(m, m)
		SyrkT(mat.Lower, 1, a, 0, got)
		NaiveSyrk(mat.Lower, 1, transposed(a), 0, want)
		if d := mat.MaxAbsDiff(got, want); d > tol(k) {
			t.Fatalf("trial %d m=%d k=%d: diff %g", trial, m, k, d)
		}
	}
}
