package blas

import (
	"math"
	"testing"
	"testing/quick"

	"lamb/internal/mat"
	"lamb/internal/xrand"
)

// spdMatrix returns a well-conditioned symmetric positive definite n×n
// matrix (A·Aᵀ + n·I).
func spdMatrix(n int, rng *xrand.Rand) *mat.Dense {
	a := mat.NewRandom(n, n, rng)
	s := mat.New(n, n)
	NaiveGemm(false, true, 1, a, a, 0, s)
	for i := 0; i < n; i++ {
		s.Set(i, i, s.At(i, i)+float64(n))
	}
	return s
}

func TestTrsmMatchesNaive(t *testing.T) {
	rng := xrand.New(41)
	for _, m := range []int{1, 3, 17, 64, 65, 130} {
		for _, n := range []int{1, 5, 40} {
			for _, uplo := range []mat.Uplo{mat.Lower, mat.Upper} {
				for _, trans := range []bool{false, true} {
					// Well-conditioned triangular factor: dominant diagonal.
					l := mat.NewRandom(m, m, rng)
					for i := 0; i < m; i++ {
						l.Set(i, i, 4+rng.Float64())
					}
					b0 := mat.NewRandom(m, n, rng)
					got := b0.Clone()
					want := b0.Clone()
					Trsm(uplo, trans, 1.5, l, got)
					NaiveTrsm(uplo, trans, 1.5, l, want)
					if d := mat.MaxAbsDiff(got, want); d > 1e-10 {
						t.Fatalf("trsm(%v, trans=%v) m=%d n=%d: diff %g", uplo, trans, m, n, d)
					}
				}
			}
		}
	}
}

func TestTrsmSolvesSystem(t *testing.T) {
	// op(L)·X = B must hold after the solve.
	rng := xrand.New(42)
	const m, n = 90, 12
	l := mat.NewRandom(m, m, rng)
	for i := 0; i < m; i++ {
		l.Set(i, i, 5)
	}
	mat.ZeroTriangle(l, mat.Lower) // keep only lower triangle
	b := mat.NewRandom(m, n, rng)
	x := b.Clone()
	Trsm(mat.Lower, false, 1, l, x)
	check := mat.New(m, n)
	NaiveGemm(false, false, 1, l, x, 0, check)
	if d := mat.MaxAbsDiff(check, b); d > 1e-9 {
		t.Fatalf("L·X != B: diff %g", d)
	}
	// Transposed solve.
	x2 := b.Clone()
	Trsm(mat.Lower, true, 1, l, x2)
	NaiveGemm(true, false, 1, l, x2, 0, check)
	if d := mat.MaxAbsDiff(check, b); d > 1e-9 {
		t.Fatalf("Lᵀ·X != B: diff %g", d)
	}
}

func TestTrsmIgnoresOppositeTriangle(t *testing.T) {
	rng := xrand.New(43)
	const m = 40
	l := mat.NewRandom(m, m, rng)
	for i := 0; i < m; i++ {
		l.Set(i, i, 5)
	}
	b := mat.NewRandom(m, 7, rng)
	x1 := b.Clone()
	Trsm(mat.Lower, false, 1, l, x1)
	// Poison the upper triangle: the solve must not change.
	for j := 0; j < m; j++ {
		for i := 0; i < j; i++ {
			l.Set(i, j, math.NaN())
		}
	}
	x2 := b.Clone()
	Trsm(mat.Lower, false, 1, l, x2)
	if !mat.Equal(x1, x2) {
		t.Fatal("trsm referenced the opposite triangle")
	}
}

func TestTrsmPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Trsm(mat.Lower, false, 1, mat.New(3, 4), mat.New(3, 2)) },
		func() { Trsm(mat.Lower, false, 1, mat.New(3, 3), mat.New(4, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			f()
		}()
	}
}

func TestPotrfMatchesNaive(t *testing.T) {
	rng := xrand.New(44)
	for _, n := range []int{1, 2, 7, 63, 64, 65, 150} {
		s := spdMatrix(n, rng)
		got := s.Clone()
		want := s.Clone()
		if err := Potrf(got); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := NaivePotrf(want); err != nil {
			t.Fatalf("n=%d naive: %v", n, err)
		}
		// Compare lower triangles only.
		mat.ZeroTriangle(got, mat.Lower)
		mat.ZeroTriangle(want, mat.Lower)
		if d := mat.MaxAbsDiff(got, want); d > 1e-8*float64(n) {
			t.Fatalf("n=%d: blocked vs unblocked diff %g", n, d)
		}
	}
}

func TestPotrfReconstructs(t *testing.T) {
	rng := xrand.New(45)
	const n = 120
	s := spdMatrix(n, rng)
	l := s.Clone()
	if err := Potrf(l); err != nil {
		t.Fatal(err)
	}
	mat.ZeroTriangle(l, mat.Lower)
	recon := mat.New(n, n)
	NaiveGemm(false, true, 1, l, l, 0, recon)
	// Compare the lower triangle of the reconstruction with S.
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			if math.Abs(recon.At(i, j)-s.At(i, j)) > 1e-8*float64(n) {
				t.Fatalf("L·Lᵀ != S at (%d,%d)", i, j)
			}
		}
	}
}

func TestPotrfDetectsIndefinite(t *testing.T) {
	s := mat.New(3, 3)
	s.Set(0, 0, 1)
	s.Set(1, 1, -1) // not positive definite
	s.Set(2, 2, 1)
	if err := Potrf(s); err == nil {
		t.Fatal("indefinite matrix accepted")
	}
	if err := Potrf(mat.New(2, 3)); err == nil {
		t.Fatal("non-square accepted")
	}
}

func TestPotrfTrsmSolve(t *testing.T) {
	// The full Cholesky solve: X := S⁻¹·B via potrf + two trsm.
	rng := xrand.New(46)
	const n, k = 80, 9
	s := spdMatrix(n, rng)
	b := mat.NewRandom(n, k, rng)
	l := s.Clone()
	if err := Potrf(l); err != nil {
		t.Fatal(err)
	}
	x := b.Clone()
	Trsm(mat.Lower, false, 1, l, x) // L·Y = B
	Trsm(mat.Lower, true, 1, l, x)  // Lᵀ·X = Y
	// Check S·X = B.
	check := mat.New(n, k)
	NaiveSymm(mat.Lower, 1, s, x, 0, check)
	if d := mat.MaxAbsDiff(check, b); d > 1e-7 {
		t.Fatalf("S·X != B: diff %g", d)
	}
}

func TestPotrfRandomShapesProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := rng.IntRange(1, 100)
		s := spdMatrix(n, rng)
		l := s.Clone()
		if err := Potrf(l); err != nil {
			return false
		}
		// Diagonal of L must be strictly positive.
		for i := 0; i < n; i++ {
			if !(l.At(i, i) > 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAddSym(t *testing.T) {
	rng := xrand.New(47)
	c := mat.NewRandom(5, 5, rng)
	a := mat.NewRandom(5, 5, rng)
	orig := c.Clone()
	AddSym(mat.Lower, c, a)
	for j := 0; j < 5; j++ {
		for i := 0; i < 5; i++ {
			want := orig.At(i, j)
			if i >= j {
				want += a.At(i, j)
			}
			if c.At(i, j) != want {
				t.Fatalf("addsym wrong at (%d,%d)", i, j)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched addsym did not panic")
		}
	}()
	AddSym(mat.Lower, mat.New(2, 2), mat.New(3, 3))
}
