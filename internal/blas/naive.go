package blas

import "lamb/internal/mat"

// This file holds straightforward triple-loop reference implementations.
// They define the semantics the optimised kernels are tested against and
// are deliberately written without blocking or parallelism.

// NaiveGemm computes C := alpha·op(A)·op(B) + beta·C by the textbook
// triple loop. Semantics match Gemm.
func NaiveGemm(transA, transB bool, alpha float64, a, b *mat.Dense, beta float64, c *mat.Dense) {
	m, k := opDims(a, transA)
	_, n := opDims(b, transB)
	at := func(i, p int) float64 {
		if transA {
			return a.At(p, i)
		}
		return a.At(i, p)
	}
	bt := func(p, j int) float64 {
		if transB {
			return b.At(j, p)
		}
		return b.At(p, j)
	}
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			var s float64
			for p := 0; p < k; p++ {
				s += at(i, p) * bt(p, j)
			}
			if beta == 0 {
				c.Set(i, j, alpha*s)
			} else {
				c.Set(i, j, beta*c.At(i, j)+alpha*s)
			}
		}
	}
}

// NaiveSyrk computes the uplo triangle of C := alpha·A·Aᵀ + beta·C.
// Semantics match Syrk: the opposite strict triangle is untouched.
func NaiveSyrk(uplo mat.Uplo, alpha float64, a *mat.Dense, beta float64, c *mat.Dense) {
	m, k := a.Rows, a.Cols
	for j := 0; j < m; j++ {
		var lo, hi int
		if uplo == mat.Lower {
			lo, hi = j, m
		} else {
			lo, hi = 0, j+1
		}
		for i := lo; i < hi; i++ {
			var s float64
			for p := 0; p < k; p++ {
				s += a.At(i, p) * a.At(j, p)
			}
			if beta == 0 {
				c.Set(i, j, alpha*s)
			} else {
				c.Set(i, j, beta*c.At(i, j)+alpha*s)
			}
		}
	}
}

// NaiveSymm computes C := alpha·A·B + beta·C with A symmetric and only
// the uplo triangle of A referenced. Semantics match Symm.
func NaiveSymm(uplo mat.Uplo, alpha float64, a, b *mat.Dense, beta float64, c *mat.Dense) {
	m, n := a.Rows, b.Cols
	sym := func(i, j int) float64 {
		if (uplo == mat.Lower && i >= j) || (uplo == mat.Upper && i <= j) {
			return a.At(i, j)
		}
		return a.At(j, i)
	}
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			var s float64
			for p := 0; p < m; p++ {
				s += sym(i, p) * b.At(p, j)
			}
			if beta == 0 {
				c.Set(i, j, alpha*s)
			} else {
				c.Set(i, j, beta*c.At(i, j)+alpha*s)
			}
		}
	}
}
