package blas

import (
	"math"
	"testing"
	"testing/quick"

	"lamb/internal/mat"
	"lamb/internal/xrand"
)

// tol returns an absolute tolerance scaled with the inner dimension:
// entries are sums of k products of values in [-1, 1).
func tol(k int) float64 { return 1e-13 * float64(k+1) }

func TestGemmMatchesNaive(t *testing.T) {
	rng := xrand.New(1)
	shapes := [][3]int{
		{1, 1, 1}, {1, 5, 3}, {4, 4, 4}, {5, 1, 9},
		{3, 7, 2}, {8, 8, 8}, {13, 17, 11}, {64, 64, 64},
		{65, 67, 66}, {100, 3, 100}, {3, 100, 100}, {100, 100, 3},
		{129, 50, 257}, {31, 33, 300},
	}
	for _, sh := range shapes {
		m, n, k := sh[0], sh[1], sh[2]
		for _, transA := range []bool{false, true} {
			for _, transB := range []bool{false, true} {
				ar, ac := m, k
				if transA {
					ar, ac = k, m
				}
				br, bc := k, n
				if transB {
					br, bc = n, k
				}
				a := mat.NewRandom(ar, ac, rng)
				b := mat.NewRandom(br, bc, rng)
				c0 := mat.NewRandom(m, n, rng)
				got := c0.Clone()
				want := c0.Clone()
				Gemm(transA, transB, 1.3, a, b, 0.7, got)
				NaiveGemm(transA, transB, 1.3, a, b, 0.7, want)
				if d := mat.MaxAbsDiff(got, want); d > tol(k) {
					t.Fatalf("gemm(%v,%v) %dx%dx%d: max diff %g", transA, transB, m, n, k, d)
				}
			}
		}
	}
}

func TestGemmBetaZeroOverwritesNaN(t *testing.T) {
	rng := xrand.New(2)
	a := mat.NewRandom(6, 5, rng)
	b := mat.NewRandom(5, 7, rng)
	c := mat.New(6, 7)
	c.Fill(math.NaN())
	Gemm(false, false, 1, a, b, 0, c)
	want := mat.New(6, 7)
	NaiveGemm(false, false, 1, a, b, 0, want)
	if d := mat.MaxAbsDiff(c, want); d > tol(5) {
		t.Fatalf("beta=0 did not overwrite NaN: diff %g", d)
	}
}

func TestGemmAlphaZeroScalesOnly(t *testing.T) {
	rng := xrand.New(3)
	a := mat.NewRandom(4, 4, rng)
	b := mat.NewRandom(4, 4, rng)
	c := mat.NewRandom(4, 4, rng)
	want := c.Clone()
	scaleMatrix(want, 0.5)
	Gemm(false, false, 0, a, b, 0.5, c)
	if !mat.EqualApprox(c, want, 1e-15) {
		t.Fatal("alpha=0 should only scale C")
	}
}

func TestGemmOnViews(t *testing.T) {
	rng := xrand.New(4)
	big := mat.NewRandom(40, 40, rng)
	a := big.Slice(3, 20, 5, 17)  // 17x12
	b := big.Slice(10, 22, 1, 20) // 12x19
	c := mat.New(17, 19)
	want := mat.New(17, 19)
	Gemm(false, false, 1, a, b, 0, c)
	NaiveGemm(false, false, 1, a, b, 0, want)
	if d := mat.MaxAbsDiff(c, want); d > tol(12) {
		t.Fatalf("gemm on views: diff %g", d)
	}
}

func TestGemmDimensionMismatchPanics(t *testing.T) {
	cases := []func(){
		func() { Gemm(false, false, 1, mat.New(2, 3), mat.New(4, 5), 0, mat.New(2, 5)) },
		func() { Gemm(false, false, 1, mat.New(2, 3), mat.New(3, 5), 0, mat.New(2, 4)) },
		func() { Gemm(false, false, 1, mat.New(2, 3), mat.New(3, 5), 0, mat.New(3, 5)) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestGemmEmptyIsNoop(t *testing.T) {
	c := mat.New(0, 0)
	Gemm(false, false, 1, mat.New(0, 3), mat.New(3, 0), 0, c) // must not panic
	a := mat.NewRandom(2, 0, xrand.New(5))
	b := mat.NewRandom(0, 2, xrand.New(6))
	c2 := mat.NewRandom(2, 2, xrand.New(7))
	want := c2.Clone()
	scaleMatrix(want, 0.5)
	Gemm(false, false, 1, a, b, 0.5, c2) // k = 0: C := beta C
	if !mat.EqualApprox(c2, want, 1e-15) {
		t.Fatal("k=0 gemm should scale C by beta")
	}
}

func TestGemmParallelMatchesSerial(t *testing.T) {
	rng := xrand.New(8)
	a := mat.NewRandom(150, 130, rng)
	b := mat.NewRandom(130, 170, rng)
	serial := mat.New(150, 170)
	parallel := mat.New(150, 170)
	old := SetMaxWorkers(1)
	Gemm(false, false, 1, a, b, 0, serial)
	SetMaxWorkers(4)
	Gemm(false, false, 1, a, b, 0, parallel)
	SetMaxWorkers(old)
	if d := mat.MaxAbsDiff(serial, parallel); d > tol(130) {
		t.Fatalf("parallel differs from serial: %g", d)
	}
}

func TestGemmParallelRowSplit(t *testing.T) {
	// Tall-skinny C forces the row-stripe parallel path.
	rng := xrand.New(9)
	a := mat.NewRandom(300, 80, rng)
	b := mat.NewRandom(80, 6, rng)
	got := mat.New(300, 6)
	want := mat.New(300, 6)
	old := SetMaxWorkers(4)
	Gemm(false, false, 1, a, b, 0, got)
	SetMaxWorkers(old)
	NaiveGemm(false, false, 1, a, b, 0, want)
	if d := mat.MaxAbsDiff(got, want); d > tol(80) {
		t.Fatalf("row-split parallel gemm wrong: %g", d)
	}
}

func TestSyrkMatchesNaive(t *testing.T) {
	rng := xrand.New(10)
	shapes := [][2]int{{1, 1}, {3, 5}, {8, 8}, {17, 5}, {96, 30}, {97, 10}, {150, 40}, {200, 3}}
	for _, sh := range shapes {
		m, k := sh[0], sh[1]
		for _, uplo := range []mat.Uplo{mat.Lower, mat.Upper} {
			a := mat.NewRandom(m, k, rng)
			c0 := mat.NewRandom(m, m, rng)
			got := c0.Clone()
			want := c0.Clone()
			Syrk(uplo, 1.1, a, 0.4, got)
			NaiveSyrk(uplo, 1.1, a, 0.4, want)
			if d := mat.MaxAbsDiff(got, want); d > tol(k) {
				t.Fatalf("syrk(%v) m=%d k=%d: diff %g", uplo, m, k, d)
			}
		}
	}
}

func TestSyrkDoesNotTouchOppositeTriangle(t *testing.T) {
	rng := xrand.New(11)
	a := mat.NewRandom(50, 20, rng)
	c := mat.New(50, 50)
	c.Fill(123)
	Syrk(mat.Lower, 1, a, 0, c)
	for j := 0; j < 50; j++ {
		for i := 0; i < j; i++ {
			if c.At(i, j) != 123 {
				t.Fatalf("upper element (%d,%d) modified by Lower syrk", i, j)
			}
		}
	}
	c.Fill(123)
	Syrk(mat.Upper, 1, a, 0, c)
	for j := 0; j < 50; j++ {
		for i := j + 1; i < 50; i++ {
			if c.At(i, j) != 123 {
				t.Fatalf("lower element (%d,%d) modified by Upper syrk", i, j)
			}
		}
	}
}

func TestSyrkThenMirrorIsSymmetricProduct(t *testing.T) {
	rng := xrand.New(12)
	a := mat.NewRandom(60, 25, rng)
	c := mat.New(60, 60)
	Syrk(mat.Lower, 1, a, 0, c)
	Tri2Full(mat.Lower, c)
	want := mat.New(60, 60)
	NaiveGemm(false, true, 1, a, a, 0, want)
	if d := mat.MaxAbsDiff(c, want); d > tol(25) {
		t.Fatalf("syrk+tri2full != A·Aᵀ: diff %g", d)
	}
	if !c.IsSymmetric(tol(25)) {
		t.Fatal("result not symmetric")
	}
}

func TestSyrkAlphaZero(t *testing.T) {
	c := mat.New(5, 5)
	c.Fill(2)
	Syrk(mat.Lower, 0, mat.New(5, 3), 0.5, c)
	if c.At(3, 1) != 1 {
		t.Fatal("alpha=0 syrk should scale triangle by beta")
	}
	if c.At(1, 3) != 2 {
		t.Fatal("alpha=0 syrk touched opposite triangle")
	}
}

func TestSyrkMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("syrk with wrong C did not panic")
		}
	}()
	Syrk(mat.Lower, 1, mat.New(4, 3), 0, mat.New(5, 5))
}

func TestSymmMatchesNaive(t *testing.T) {
	rng := xrand.New(13)
	shapes := [][2]int{{1, 1}, {5, 3}, {8, 8}, {17, 40}, {96, 10}, {100, 100}, {150, 7}, {200, 20}}
	for _, sh := range shapes {
		m, n := sh[0], sh[1]
		for _, uplo := range []mat.Uplo{mat.Lower, mat.Upper} {
			// Only the uplo triangle of A may be referenced: poison the rest.
			a := mat.NewSymmetricRandom(m, rng)
			poison := a.Clone()
			if uplo == mat.Lower {
				mat.ZeroTriangle(poison, mat.Lower)
				for j := 0; j < m; j++ {
					for i := 0; i < j; i++ {
						poison.Set(i, j, math.NaN())
					}
				}
			} else {
				for j := 0; j < m; j++ {
					for i := j + 1; i < m; i++ {
						poison.Set(i, j, math.NaN())
					}
				}
			}
			b := mat.NewRandom(m, n, rng)
			c0 := mat.NewRandom(m, n, rng)
			got := c0.Clone()
			want := c0.Clone()
			Symm(uplo, 0.9, poison, b, 0.3, got)
			NaiveSymm(uplo, 0.9, a, b, 0.3, want)
			if d := mat.MaxAbsDiff(got, want); d > tol(m) {
				t.Fatalf("symm(%v) m=%d n=%d: diff %g (NaN poison leaked?)", uplo, m, n, d)
			}
		}
	}
}

func TestSymmEqualsGemmOnFullSymmetric(t *testing.T) {
	rng := xrand.New(14)
	a := mat.NewSymmetricRandom(70, rng)
	b := mat.NewRandom(70, 30, rng)
	viaSymm := mat.New(70, 30)
	viaGemm := mat.New(70, 30)
	Symm(mat.Lower, 1, a, b, 0, viaSymm)
	Gemm(false, false, 1, a, b, 0, viaGemm)
	if d := mat.MaxAbsDiff(viaSymm, viaGemm); d > tol(70) {
		t.Fatalf("symm != gemm on symmetric A: diff %g", d)
	}
}

func TestSymmMismatchPanics(t *testing.T) {
	cases := []func(){
		func() { Symm(mat.Lower, 1, mat.New(3, 4), mat.New(3, 2), 0, mat.New(3, 2)) },
		func() { Symm(mat.Lower, 1, mat.New(3, 3), mat.New(4, 2), 0, mat.New(3, 2)) },
		func() { Symm(mat.Lower, 1, mat.New(3, 3), mat.New(3, 2), 0, mat.New(3, 3)) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestGemmAssociativityProperty(t *testing.T) {
	// (AB)C == A(BC) in exact arithmetic; check within tolerance. This is
	// the algebraic identity underlying the matrix chain's 6 algorithms.
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		d0 := rng.IntRange(1, 24)
		d1 := rng.IntRange(1, 24)
		d2 := rng.IntRange(1, 24)
		d3 := rng.IntRange(1, 24)
		a := mat.NewRandom(d0, d1, rng)
		b := mat.NewRandom(d1, d2, rng)
		c := mat.NewRandom(d2, d3, rng)
		ab := mat.New(d0, d2)
		Gemm(false, false, 1, a, b, 0, ab)
		left := mat.New(d0, d3)
		Gemm(false, false, 1, ab, c, 0, left)
		bc := mat.New(d1, d3)
		Gemm(false, false, 1, b, c, 0, bc)
		right := mat.New(d0, d3)
		Gemm(false, false, 1, a, bc, 0, right)
		return mat.MaxAbsDiff(left, right) <= 1e-11*float64(d1*d2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGemmRandomShapesProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		m := rng.IntRange(1, 70)
		n := rng.IntRange(1, 70)
		k := rng.IntRange(1, 70)
		transA := rng.Intn(2) == 1
		transB := rng.Intn(2) == 1
		ar, ac := m, k
		if transA {
			ar, ac = k, m
		}
		br, bc := k, n
		if transB {
			br, bc = n, k
		}
		a := mat.NewRandom(ar, ac, rng)
		b := mat.NewRandom(br, bc, rng)
		got := mat.NewRandom(m, n, rng)
		want := got.Clone()
		alpha := 2*rng.Float64() - 1
		beta := 2*rng.Float64() - 1
		Gemm(transA, transB, alpha, a, b, beta, got)
		NaiveGemm(transA, transB, alpha, a, b, beta, want)
		return mat.MaxAbsDiff(got, want) <= tol(k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSyrkRandomShapesProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		m := rng.IntRange(1, 120)
		k := rng.IntRange(1, 60)
		uplo := mat.Lower
		if rng.Intn(2) == 1 {
			uplo = mat.Upper
		}
		a := mat.NewRandom(m, k, rng)
		got := mat.NewRandom(m, m, rng)
		want := got.Clone()
		Syrk(uplo, 1, a, 0.5, got)
		NaiveSyrk(uplo, 1, a, 0.5, want)
		return mat.MaxAbsDiff(got, want) <= tol(k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSetMaxWorkers(t *testing.T) {
	old := SetMaxWorkers(3)
	if got := SetMaxWorkers(old); got != 3 {
		t.Fatalf("SetMaxWorkers round-trip = %d, want 3", got)
	}
	SetMaxWorkers(0)
	if workers() < 1 {
		t.Fatal("workers() must be at least 1")
	}
}
