package blas

import (
	"sync/atomic"
	"testing"

	"lamb/internal/mat"
	"lamb/internal/xrand"
)

// Tests for the throughput overhaul: the 8×4 micro-kernel over ragged and
// transposed shapes, the shared-B parallel GEMM, the parallel SYRK/SYMM
// block drivers, the blocked Cholesky panel solve, and the pooled packing
// buffers' zero-allocation steady state.

// TestGemm8x4RaggedTransposedBeta cross-checks the packed GEMM against the
// naive reference over shapes that exercise every ragged-tile combination
// of the 8×4 kernel (m mod 8 and n mod 4 nonzero), all four transpose
// settings, and beta ∈ {0, 1, 0.5}.
func TestGemm8x4RaggedTransposedBeta(t *testing.T) {
	rng := xrand.New(71)
	shapes := [][3]int{
		{1, 1, 1}, {7, 3, 5}, {8, 4, 16}, {9, 5, 17}, {15, 7, 3},
		{16, 8, 32}, {17, 9, 33}, {23, 13, 64}, {64, 64, 1}, {65, 61, 67},
		{129, 33, 31}, {5, 130, 2},
	}
	for _, sh := range shapes {
		m, n, k := sh[0], sh[1], sh[2]
		for _, transA := range []bool{false, true} {
			for _, transB := range []bool{false, true} {
				for _, beta := range []float64{0, 1, 0.5} {
					ar, ac := m, k
					if transA {
						ar, ac = k, m
					}
					br, bc := k, n
					if transB {
						br, bc = n, k
					}
					a := mat.NewRandom(ar, ac, rng)
					b := mat.NewRandom(br, bc, rng)
					c := mat.NewRandom(m, n, rng)
					want := c.Clone()
					Gemm(transA, transB, 1.25, a, b, beta, c)
					NaiveGemm(transA, transB, 1.25, a, b, beta, want)
					if !mat.EqualApprox(c, want, 1e-10*float64(k+1)) {
						t.Fatalf("gemm(%d,%d,%d) tA=%v tB=%v beta=%v: max diff %g",
							m, n, k, transA, transB, beta, mat.MaxAbsDiff(c, want))
					}
				}
			}
		}
	}
}

// TestGemmSharedBParallel exercises both parallel fan-outs — over ic
// blocks (tall A) and over packed-B micro-panels (short-and-wide A) —
// with a forced worker count. Run with -race to check the shared packed-B
// buffer is read-only across goroutines.
func TestGemmSharedBParallel(t *testing.T) {
	defer SetMaxWorkers(SetMaxWorkers(4))
	rng := xrand.New(72)
	cases := [][3]int{
		{300, 70, 80},   // several ic blocks
		{64, 500, 100},  // single ic block: packed-B column split
		{130, 130, 300}, // two ic blocks, k spans two kc panels
	}
	for _, sh := range cases {
		m, n, k := sh[0], sh[1], sh[2]
		a := mat.NewRandom(m, k, rng)
		b := mat.NewRandom(k, n, rng)
		c := mat.NewRandom(m, n, rng)
		want := c.Clone()
		Gemm(false, false, 1, a, b, 0.5, c)
		NaiveGemm(false, false, 1, a, b, 0.5, want)
		if !mat.EqualApprox(c, want, 1e-10*float64(k)) {
			t.Fatalf("parallel gemm(%d,%d,%d): max diff %g", m, n, k, mat.MaxAbsDiff(c, want))
		}
	}
}

// TestSyrkParallelMatchesNaive forces the parallel block driver (several
// blocks, worker cap above one) for both triangles and beta cases.
func TestSyrkParallelMatchesNaive(t *testing.T) {
	defer SetMaxWorkers(SetMaxWorkers(4))
	rng := xrand.New(73)
	for _, uplo := range []mat.Uplo{mat.Lower, mat.Upper} {
		for _, beta := range []float64{0, 1, 0.5} {
			for _, sh := range [][2]int{{97, 50}, {200, 64}, {300, 33}} {
				m, k := sh[0], sh[1]
				a := mat.NewRandom(m, k, rng)
				c := mat.NewRandom(m, m, rng)
				want := c.Clone()
				Syrk(uplo, 1.5, a, beta, c)
				NaiveSyrk(uplo, 1.5, a, beta, want)
				if !mat.EqualApprox(c, want, 1e-10*float64(k)) {
					t.Fatalf("parallel syrk(%v, m=%d, k=%d, beta=%v): max diff %g",
						uplo, m, k, beta, mat.MaxAbsDiff(c, want))
				}
			}
		}
	}
}

// TestSymmParallelMatchesNaive forces the parallel row-panel driver.
func TestSymmParallelMatchesNaive(t *testing.T) {
	defer SetMaxWorkers(SetMaxWorkers(4))
	rng := xrand.New(74)
	for _, uplo := range []mat.Uplo{mat.Lower, mat.Upper} {
		for _, beta := range []float64{0, 1, 0.5} {
			for _, sh := range [][2]int{{97, 60}, {200, 100}} {
				m, n := sh[0], sh[1]
				a := mat.NewRandom(m, m, rng)
				b := mat.NewRandom(m, n, rng)
				c := mat.NewRandom(m, n, rng)
				want := c.Clone()
				Symm(uplo, 0.75, a, b, beta, c)
				NaiveSymm(uplo, 0.75, a, b, beta, want)
				if !mat.EqualApprox(c, want, 1e-10*float64(m)) {
					t.Fatalf("parallel symm(%v, m=%d, n=%d, beta=%v): max diff %g",
						uplo, m, n, beta, mat.MaxAbsDiff(c, want))
				}
			}
		}
	}
}

// TestPotrfBlockedPanelMatchesNaive factors SPD matrices whose sizes span
// several diagonal blocks (so the blocked, GEMM-backed panel solve runs)
// and compares against the unblocked reference.
func TestPotrfBlockedPanelMatchesNaive(t *testing.T) {
	rng := xrand.New(75)
	for _, n := range []int{65, 130, 200, 257} {
		a := mat.NewSPDRandom(n, rng)
		want := a.Clone()
		if err := Potrf(a); err != nil {
			t.Fatalf("Potrf(%d): %v", n, err)
		}
		if err := NaivePotrf(want); err != nil {
			t.Fatalf("NaivePotrf(%d): %v", n, err)
		}
		mat.ZeroTriangle(a, mat.Lower)
		mat.ZeroTriangle(want, mat.Lower)
		if !mat.EqualApprox(a, want, 1e-8) {
			t.Fatalf("potrf(%d): max diff vs naive %g", n, mat.MaxAbsDiff(a, want))
		}
	}
}

// TestTrsmRightLowerTransBlocked checks the blocked right-side panel
// solve directly: X·Lᵀ = B with L spanning several 32-column blocks.
func TestTrsmRightLowerTransBlocked(t *testing.T) {
	rng := xrand.New(76)
	for _, sh := range [][2]int{{5, 33}, {40, 64}, {17, 100}} {
		m, k := sh[0], sh[1]
		l := mat.NewRandom(k, k, rng)
		for i := 0; i < k; i++ {
			l.Set(i, i, 4+rng.Float64()) // well-conditioned
		}
		mat.ZeroTriangle(l, mat.Lower)
		b := mat.NewRandom(m, k, rng)
		x := b.Clone()
		trsmRightLowerTrans(l, x)
		// Verify X·Lᵀ reconstructs B.
		got := mat.New(m, k)
		NaiveGemm(false, true, 1, x, l, 0, got)
		if !mat.EqualApprox(got, b, 1e-9*float64(k)) {
			t.Fatalf("blocked right trsm(m=%d, k=%d): residual %g", m, k, mat.MaxAbsDiff(got, b))
		}
	}
}

// TestGemmSerialZeroAllocSteadyState checks that pooled packing buffers
// make repeated serial Gemm calls allocation-free.
func TestGemmSerialZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector")
	}
	defer SetMaxWorkers(SetMaxWorkers(1))
	rng := xrand.New(77)
	a := mat.NewRandom(160, 96, rng)
	b := mat.NewRandom(96, 120, rng)
	c := mat.New(160, 120)
	Gemm(false, false, 1, a, b, 0, c) // warm the pools
	allocs := testing.AllocsPerRun(10, func() {
		Gemm(false, false, 1, a, b, 0, c)
	})
	if allocs > 0 {
		t.Fatalf("steady-state serial Gemm allocates %v objects per call, want 0", allocs)
	}
}

// TestParallelTasksBoundsGoroutines checks the worker cap is respected
// even when the task count exceeds it, and that every task runs once.
func TestParallelTasksBoundsGoroutines(t *testing.T) {
	for _, tc := range []struct{ nw, ntasks int }{{1, 7}, {3, 10}, {8, 2}, {4, 0}} {
		hits := make([]int32, tc.ntasks)
		parallelTasks(tc.nw, tc.ntasks, func(task int) { hits[task]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("nw=%d ntasks=%d: task %d ran %d times", tc.nw, tc.ntasks, i, h)
			}
		}
	}
}

// TestParallelColsCoversAligned checks stripe alignment and coverage for
// awkward n/worker combinations. Stripes are disjoint, so the concurrent
// writes into covered touch distinct indices.
func TestParallelColsCoversAligned(t *testing.T) {
	for _, tc := range []struct{ nw, n int }{{4, 100}, {8, 7}, {3, 12}, {5, 1}, {2, 4096}} {
		covered := make([]bool, tc.n)
		var misaligned atomic.Int32
		parallelCols(tc.nw, tc.n, func(lo, hi int) {
			if lo%nr != 0 {
				misaligned.Add(1)
			}
			for j := lo; j < hi; j++ {
				covered[j] = true
			}
		})
		if misaligned.Load() != 0 {
			t.Fatalf("nw=%d n=%d: %d stripes not aligned to nr", tc.nw, tc.n, misaligned.Load())
		}
		for j, ok := range covered {
			if !ok {
				t.Fatalf("nw=%d n=%d: column %d not covered", tc.nw, tc.n, j)
			}
		}
	}
}
