//go:build !race

package blas

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
