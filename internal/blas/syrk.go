package blas

import (
	"fmt"
	"sync"

	"lamb/internal/mat"
)

// syrkBlock is the block size for the SYRK and SYMM drivers.
const syrkBlock = 96

// syrkScratchPool pools the per-block scratch squares of the SYRK and
// SYMM drivers so parallel block tasks neither share state nor allocate.
var syrkScratchPool = sync.Pool{New: func() any { return mat.New(syrkBlock, syrkBlock) }}

// Syrk computes the uplo triangle of C := alpha·A·Aᵀ + beta·C, with A
// m×k and C m×m. Only the selected triangle of C is referenced and
// written; the opposite strict triangle is left untouched, exactly like
// the BLAS kernel. It panics on mismatched dimensions.
//
// The implementation processes C by blocks: off-diagonal blocks are plain
// GEMMs on row slices of A (with a transposed right-hand side), while
// diagonal blocks are computed into a scratch square and only the
// triangle merged. The blocks are mutually independent, so large updates
// fan them out over goroutines (each block task runs the serial GEMM to
// avoid nested parallelism). The diagonal overhead is why a measured SYRK
// ramps up more slowly than GEMM at small m — one of the
// kernel-efficiency gaps the paper identifies.
func Syrk(uplo mat.Uplo, alpha float64, a *mat.Dense, beta float64, c *mat.Dense) {
	syrkDriver(uplo, false, alpha, a, beta, c)
}

// SyrkT computes the uplo triangle of C := alpha·Aᵀ·A + beta·C, with A
// k×m and C m×m — the transposed-Gram variant (BLAS dsyrk with
// trans='T'). It shares the blocked driver with Syrk: the only
// difference is that block operands are column slices of A multiplied
// with a transposed left-hand side.
func SyrkT(uplo mat.Uplo, alpha float64, a *mat.Dense, beta float64, c *mat.Dense) {
	syrkDriver(uplo, true, alpha, a, beta, c)
}

// syrkDriver is the shared blocked implementation: trans selects
// C := Aᵀ·A (A k×m) instead of C := A·Aᵀ (A m×k).
func syrkDriver(uplo mat.Uplo, trans bool, alpha float64, a *mat.Dense, beta float64, c *mat.Dense) {
	m, k := a.Rows, a.Cols
	if trans {
		m, k = a.Cols, a.Rows
	}
	if c.Rows != m || c.Cols != m {
		panic(fmt.Sprintf("blas: syrk output %dx%d, want %dx%d", c.Rows, c.Cols, m, m))
	}
	if m == 0 {
		return
	}
	if alpha == 0 || k == 0 {
		scaleTriangle(c, uplo, beta)
		return
	}
	nw := workers()
	parallel := nw > 1 && m > syrkBlock && float64(m)*float64(m)*float64(k) >= parThreshold
	if !parallel {
		// Serial sweep: blocks are enumerated inline (no task list, no
		// closure, all views on the stack) so a steady-state call
		// performs zero heap allocations.
		scratch := syrkScratchPool.Get().(*mat.Dense)
		for j0 := 0; j0 < m; j0 += syrkBlock {
			j1 := min(j0+syrkBlock, m)
			syrkBlockTask(uplo, trans, alpha, a, beta, c, triBlock{j0, j1, j0, j1}, scratch, false)
			if uplo == mat.Lower {
				for i0 := j1; i0 < m; i0 += syrkBlock {
					syrkBlockTask(uplo, trans, alpha, a, beta, c, triBlock{i0, min(i0+syrkBlock, m), j0, j1}, scratch, false)
				}
			} else {
				for i0 := 0; i0 < j0; i0 += syrkBlock {
					syrkBlockTask(uplo, trans, alpha, a, beta, c, triBlock{i0, min(i0+syrkBlock, j0), j0, j1}, scratch, false)
				}
			}
		}
		syrkScratchPool.Put(scratch)
		return
	}
	tasks := triBlockTasks(m, uplo)
	// The closure captures copies of the operand headers so Syrk's own
	// parameters don't leak (see gemmParallel).
	av, cv := *a, *c
	ap, cp := &av, &cv
	parallelTasks(nw, len(tasks), func(t int) {
		scratch := syrkScratchPool.Get().(*mat.Dense)
		syrkBlockTask(uplo, trans, alpha, ap, beta, cp, tasks[t], scratch, true)
		syrkScratchPool.Put(scratch)
	})
}

// syrkBlockTask computes one triangular block of the SYRK update:
// off-diagonal blocks are plain GEMMs on row views of A (transposed
// right-hand side) — column views with a transposed left-hand side in
// the trans case — while diagonal blocks go through the scratch square
// with a triangle merge. With serialGemm set the block runs the serial
// GEMM driver (parallel callers avoid nested parallelism); otherwise
// Gemm may parallelise internally (e.g. a single big diagonal block).
func syrkBlockTask(uplo mat.Uplo, trans bool, alpha float64, a *mat.Dense, beta float64, c *mat.Dense, blk triBlock, scratch *mat.Dense, serialGemm bool) {
	k := a.Cols
	if trans {
		k = a.Rows
	}
	var aj mat.Dense
	if trans {
		aj = a.View(0, k, blk.j0, blk.j1)
	} else {
		aj = a.View(blk.j0, blk.j1, 0, k)
	}
	if blk.diag() {
		sb := scratch.View(0, blk.j1-blk.j0, 0, blk.j1-blk.j0)
		if serialGemm {
			gemmSerial(trans, !trans, alpha, &aj, &aj, 0, &sb)
		} else {
			Gemm(trans, !trans, alpha, &aj, &aj, 0, &sb)
		}
		mergeTriangle(c, &sb, blk.j0, uplo, beta)
		return
	}
	var ai mat.Dense
	if trans {
		ai = a.View(0, k, blk.i0, blk.i1)
	} else {
		ai = a.View(blk.i0, blk.i1, 0, k)
	}
	cb := c.View(blk.i0, blk.i1, blk.j0, blk.j1)
	if serialGemm {
		gemmSerial(trans, !trans, alpha, &ai, &aj, beta, &cb)
	} else {
		Gemm(trans, !trans, alpha, &ai, &aj, beta, &cb)
	}
}

// triBlock is one syrkBlock×syrkBlock tile of a triangular update:
// rows [i0, i1) by columns [j0, j1).
type triBlock struct{ i0, i1, j0, j1 int }

func (b triBlock) diag() bool { return b.i0 == b.j0 }

// triBlockTasks enumerates the blocks of the uplo triangle of an m×m
// matrix: the diagonal block of each column panel plus its off-diagonal
// blocks. All blocks are disjoint, so they can be processed in parallel.
func triBlockTasks(m int, uplo mat.Uplo) []triBlock {
	var tasks []triBlock
	for j0 := 0; j0 < m; j0 += syrkBlock {
		j1 := min(j0+syrkBlock, m)
		tasks = append(tasks, triBlock{j0, j1, j0, j1})
		if uplo == mat.Lower {
			for i0 := j1; i0 < m; i0 += syrkBlock {
				tasks = append(tasks, triBlock{i0, min(i0+syrkBlock, m), j0, j1})
			}
		} else {
			for i0 := 0; i0 < j0; i0 += syrkBlock {
				tasks = append(tasks, triBlock{i0, min(i0+syrkBlock, j0), j0, j1})
			}
		}
	}
	return tasks
}

// mergeTriangle merges the uplo triangle of the nb×nb block sb into
// C[j0:j0+nb, j0:j0+nb] as C := beta·C + sb (sb already carries alpha).
func mergeTriangle(c, sb *mat.Dense, j0 int, uplo mat.Uplo, beta float64) {
	nb := sb.Rows
	for j := 0; j < nb; j++ {
		var lo, hi int
		if uplo == mat.Lower {
			lo, hi = j, nb
		} else {
			lo, hi = 0, j+1
		}
		ccol := c.Data[(j0+j)*c.Stride:]
		scol := sb.Data[j*sb.Stride:]
		if beta == 0 {
			for i := lo; i < hi; i++ {
				ccol[j0+i] = scol[i]
			}
		} else {
			for i := lo; i < hi; i++ {
				ccol[j0+i] = beta*ccol[j0+i] + scol[i]
			}
		}
	}
}

// scaleTriangle applies C := beta·C to the uplo triangle only.
func scaleTriangle(c *mat.Dense, uplo mat.Uplo, beta float64) {
	if beta == 1 {
		return
	}
	n := c.Rows
	for j := 0; j < n; j++ {
		var lo, hi int
		if uplo == mat.Lower {
			lo, hi = j, n
		} else {
			lo, hi = 0, j+1
		}
		col := c.Data[j*c.Stride:]
		if beta == 0 {
			for i := lo; i < hi; i++ {
				col[i] = 0
			}
		} else {
			for i := lo; i < hi; i++ {
				col[i] *= beta
			}
		}
	}
}

// Tri2Full mirrors the uplo triangle of the square matrix c onto the
// opposite triangle. It is the data-movement step between SYRK and GEMM
// in the paper's AAᵀB Algorithm 2.
func Tri2Full(uplo mat.Uplo, c *mat.Dense) {
	mat.MirrorTriangle(c, uplo)
}
