package blas

import (
	"strings"
	"testing"

	"lamb/internal/mat"
	"lamb/internal/xrand"
)

// slab builds a batch of count rows×cols instances laid out at the given
// stride (in float64s), filled from rng, and returns the instance-0
// header over the slab.
func slab(rows, cols, stride, count int, rng *xrand.Rand) *mat.Dense {
	data := make([]float64, stride*count)
	for i := range data {
		data[i] = 2*rng.Float64() - 1
	}
	return &mat.Dense{Rows: rows, Cols: cols, Stride: max(rows, 1), Data: data}
}

// cloneSlab deep-copies a slab base header.
func cloneSlab(base *mat.Dense) *mat.Dense {
	v := *base
	v.Data = append([]float64(nil), base.Data...)
	return &v
}

// equalInstances reports whether every instance of the two slabs is
// bitwise equal.
func equalInstances(t *testing.T, want, got *mat.Dense, stride, count int, label string) {
	t.Helper()
	for i := 0; i < count; i++ {
		wv := instView(want, stride, i)
		gv := instView(got, stride, i)
		if !mat.Equal(&wv, &gv) {
			t.Errorf("%s: instance %d differs from sequential result", label, i)
		}
	}
}

// TestGemmBatchMatchesSequential pins GemmBatch bitwise equal to calling
// Gemm once per instance, across fused shapes, fallback shapes, chunked
// batches (instances too big to all fit the packing buffers at once),
// padded strides, transposes, and the alpha/beta special cases.
func TestGemmBatchMatchesSequential(t *testing.T) {
	cases := []struct {
		m, k, n     int
		alpha, beta float64
		count, pad  int
	}{
		{8, 8, 8, 1, 0, 4, 0},
		{13, 7, 5, 1, 1, 3, 17},
		{24, 16, 8, 1.5, -0.5, 7, 0},
		{64, 64, 64, 1, 0, 5, 3},
		{96, 100, 40, -2, 2, 3, 0},
		{128, 256, 32, 1, 0, 3, 0}, // packedA == mc·kc → chunk == 1, multi-chunk loop
		{130, 40, 20, 1, 1, 2, 0},  // m > mc → per-instance fallback
		{40, 300, 20, 1, 1, 2, 0},  // k > kc → per-instance fallback
		{8, 8, 8, 0, 0.5, 3, 0},    // alpha == 0 → pure beta scaling
		{8, 0, 8, 1, 2, 3, 5},      // k == 0 → pure beta scaling
	}
	for _, tc := range cases {
		for _, transA := range []bool{false, true} {
			for _, transB := range []bool{false, true} {
				rng := xrand.New(0xba7c4)
				ar, ac := tc.m, tc.k
				if transA {
					ar, ac = tc.k, tc.m
				}
				br, bc := tc.k, tc.n
				if transB {
					br, bc = tc.n, tc.k
				}
				strideA := ar*ac + tc.pad
				strideB := br*bc + tc.pad
				strideC := tc.m*tc.n + tc.pad
				a := slab(ar, ac, max(strideA, 1), tc.count, rng)
				b := slab(br, bc, max(strideB, 1), tc.count, rng)
				c := slab(tc.m, tc.n, strideC, tc.count, rng)
				want := cloneSlab(c)
				for i := 0; i < tc.count; i++ {
					av := instView(a, strideA, i)
					bv := instView(b, strideB, i)
					cv := instView(want, strideC, i)
					Gemm(transA, transB, tc.alpha, &av, &bv, tc.beta, &cv)
				}
				GemmBatch(transA, transB, tc.alpha, a, strideA, b, strideB, tc.beta, c, strideC, tc.count)
				equalInstances(t, want, c, strideC, tc.count, "gemm batch")
			}
		}
	}
}

// TestSyrkBatchMatchesSequential pins SyrkBatch bitwise equal to Syrk /
// SyrkT per instance, both triangles, both orientations, fused and
// fallback sizes. The opposite strict triangle must stay untouched.
func TestSyrkBatchMatchesSequential(t *testing.T) {
	for _, uplo := range []mat.Uplo{mat.Lower, mat.Upper} {
		for _, trans := range []bool{false, true} {
			for _, dims := range [][2]int{{1, 1}, {8, 16}, {33, 7}, {96, 64}, {97, 20}, {120, 33}, {8, 0}} {
				m, k := dims[0], dims[1]
				rng := xrand.New(0x5f3c)
				ar, ac := m, k
				if trans {
					ar, ac = k, m
				}
				strideA := max(ar*ac, 1) + 5
				strideC := m*m + 5
				const count = 3
				a := slab(ar, ac, strideA, count, rng)
				c := slab(m, m, strideC, count, rng)
				want := cloneSlab(c)
				for i := 0; i < count; i++ {
					av := instView(a, strideA, i)
					cv := instView(want, strideC, i)
					if trans {
						SyrkT(uplo, 1.5, &av, 0.5, &cv)
					} else {
						Syrk(uplo, 1.5, &av, 0.5, &cv)
					}
				}
				SyrkBatch(uplo, trans, 1.5, a, strideA, 0.5, c, strideC, count)
				equalInstances(t, want, c, strideC, count, "syrk batch")
			}
		}
	}
}

// TestSymmBatchMatchesSequential pins SymmBatch bitwise equal to Symm
// per instance across triangles and fused/fallback sizes.
func TestSymmBatchMatchesSequential(t *testing.T) {
	for _, uplo := range []mat.Uplo{mat.Lower, mat.Upper} {
		for _, dims := range [][2]int{{1, 1}, {10, 5}, {96, 40}, {97, 8}, {130, 20}} {
			m, n := dims[0], dims[1]
			rng := xrand.New(0x577)
			strideA := m*m + 3
			strideB := m*n + 3
			strideC := m*n + 3
			const count = 3
			a := slab(m, m, strideA, count, rng)
			b := slab(m, n, strideB, count, rng)
			c := slab(m, n, strideC, count, rng)
			want := cloneSlab(c)
			for i := 0; i < count; i++ {
				av := instView(a, strideA, i)
				bv := instView(b, strideB, i)
				cv := instView(want, strideC, i)
				Symm(uplo, 2, &av, &bv, -1, &cv)
			}
			SymmBatch(uplo, 2, a, strideA, b, strideB, -1, c, strideC, count)
			equalInstances(t, want, c, strideC, count, "symm batch")
		}
	}
}

// TestTrsmBatchMatchesSequential pins TrsmBatch bitwise equal to Trsm per
// instance across triangles, transposes, alphas, and fused/fallback
// sizes.
func TestTrsmBatchMatchesSequential(t *testing.T) {
	for _, uplo := range []mat.Uplo{mat.Lower, mat.Upper} {
		for _, transL := range []bool{false, true} {
			for _, alpha := range []float64{1, 0.5} {
				for _, dims := range [][2]int{{1, 1}, {8, 5}, {64, 16}, {65, 16}, {100, 7}} {
					m, n := dims[0], dims[1]
					rng := xrand.New(0x7e5)
					strideL := m*m + 9
					strideB := m*n + 9
					const count = 3
					l := slab(m, m, strideL, count, rng)
					// Dominant diagonal keeps every triangular solve
					// well-conditioned.
					for i := 0; i < count; i++ {
						lv := instView(l, strideL, i)
						for d := 0; d < m; d++ {
							lv.Set(d, d, 4+lv.At(d, d))
						}
					}
					b := slab(m, n, strideB, count, rng)
					want := cloneSlab(b)
					for i := 0; i < count; i++ {
						lv := instView(l, strideL, i)
						bv := instView(want, strideB, i)
						Trsm(uplo, transL, alpha, &lv, &bv)
					}
					TrsmBatch(uplo, transL, alpha, l, strideL, b, strideB, count)
					equalInstances(t, want, b, strideB, count, "trsm batch")
				}
			}
		}
	}
}

// TestPotrfBatchMatchesSequential pins PotrfBatch bitwise equal to Potrf
// per instance, and checks that a non-SPD instance aborts the batch with
// an error naming it.
func TestPotrfBatchMatchesSequential(t *testing.T) {
	for _, n := range []int{1, 8, 64, 65, 100} {
		rng := xrand.New(0x90d)
		strideA := n*n + 7
		const count = 3
		a := slab(n, n, strideA, count, rng)
		for i := 0; i < count; i++ {
			av := instView(a, strideA, i)
			spd := mat.NewSPDRandom(n, rng)
			sv := av.View(0, n, 0, n)
			mat.Copy(&sv, spd)
		}
		want := cloneSlab(a)
		for i := 0; i < count; i++ {
			av := instView(want, strideA, i)
			if err := Potrf(&av); err != nil {
				t.Fatalf("n=%d: sequential Potrf failed: %v", n, err)
			}
		}
		if err := PotrfBatch(a, strideA, count); err != nil {
			t.Fatalf("n=%d: PotrfBatch failed: %v", n, err)
		}
		equalInstances(t, want, a, strideA, count, "potrf batch")
	}

	// Instance 1 is indefinite: the batch must fail and name it.
	rng := xrand.New(0xbad)
	const n, count = 8, 3
	stride := n * n
	a := slab(n, n, stride, count, rng)
	for i := 0; i < count; i++ {
		av := instView(a, stride, i)
		spd := mat.NewSPDRandom(n, rng)
		sv := av.View(0, n, 0, n)
		mat.Copy(&sv, spd)
	}
	bad := instView(a, stride, 1)
	bad.Set(0, 0, -1)
	err := PotrfBatch(a, stride, count)
	if err == nil {
		t.Fatal("PotrfBatch accepted an indefinite instance")
	}
	if !strings.Contains(err.Error(), "instance 1") {
		t.Errorf("PotrfBatch error %q does not name instance 1", err)
	}
}

// TestAddSymTri2FullBatch pins the batched triangle helpers against
// their per-instance forms.
func TestAddSymTri2FullBatch(t *testing.T) {
	for _, uplo := range []mat.Uplo{mat.Lower, mat.Upper} {
		rng := xrand.New(0xadd)
		const n, count = 17, 4
		stride := n*n + 1
		c := slab(n, n, stride, count, rng)
		a := slab(n, n, stride, count, rng)
		want := cloneSlab(c)
		for i := 0; i < count; i++ {
			cv := instView(want, stride, i)
			av := instView(a, stride, i)
			AddSym(uplo, &cv, &av)
			Tri2Full(uplo, &cv)
		}
		AddSymBatch(uplo, c, stride, a, stride, count)
		Tri2FullBatch(uplo, c, stride, count)
		equalInstances(t, want, c, stride, count, "addsym+tri2full batch")
	}
}

// TestGemmBatchFusedZeroAllocs asserts the fused batch path performs no
// heap allocations in steady state, both serial and through the
// parallel tier: the pooled packing buffers (and, in parallel, the
// persistent workers' own buffer sets plus the pooled job descriptor)
// are the only backing storage it needs.
func TestGemmBatchFusedZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; allocation counts are unreliable")
	}
	rng := xrand.New(0xa110c)
	const m, k, n, count = 24, 16, 8, 16
	a := slab(m, k, m*k, count, rng)
	b := slab(k, n, k*n, count, rng)
	c := slab(m, n, m*n, count, rng)
	for _, w := range []int{1, 2} {
		defer SetMaxWorkers(SetMaxWorkers(w))
		GemmBatch(false, false, 1, a, m*k, b, k*n, 0, c, m*n, count) // warm pools + workers
		allocs := testing.AllocsPerRun(10, func() {
			GemmBatch(false, false, 1, a, m*k, b, k*n, 0, c, m*n, count)
		})
		if allocs != 0 {
			t.Errorf("workers=%d: fused GemmBatch allocates %v times per call, want 0", w, allocs)
		}
	}
}

// TestBatchDriversParallelMatchSequential pins the parallel tier: every
// batched driver produces bitwise-identical slabs at worker caps 1, 2,
// and 4, and two runs at the same cap agree (determinism under dynamic
// part handout). The reference is the per-instance sequential result.
func TestBatchDriversParallelMatchSequential(t *testing.T) {
	defer SetMaxWorkers(SetMaxWorkers(0))
	const count = 32 // wide enough that every cap actually partitions

	type driver struct {
		name string
		run  func(t *testing.T) (got, want *mat.Dense, stride int)
	}
	drivers := []driver{
		{"gemm", func(t *testing.T) (*mat.Dense, *mat.Dense, int) {
			rng := xrand.New(0x9a11)
			const m, k, n = 24, 16, 12
			a := slab(m, k, m*k+3, count, rng)
			b := slab(k, n, k*n+3, count, rng)
			c := slab(m, n, m*n+3, count, rng)
			want := cloneSlab(c)
			prev := SetMaxWorkers(1)
			for i := 0; i < count; i++ {
				av := instView(a, m*k+3, i)
				bv := instView(b, k*n+3, i)
				cv := instView(want, m*n+3, i)
				Gemm(false, false, 1.5, &av, &bv, -0.5, &cv)
			}
			SetMaxWorkers(prev)
			GemmBatch(false, false, 1.5, a, m*k+3, b, k*n+3, -0.5, c, m*n+3, count)
			return c, want, m*n + 3
		}},
		{"syrk", func(t *testing.T) (*mat.Dense, *mat.Dense, int) {
			rng := xrand.New(0x9a12)
			const m, k = 33, 17
			a := slab(m, k, m*k+1, count, rng)
			c := slab(m, m, m*m+1, count, rng)
			want := cloneSlab(c)
			prev := SetMaxWorkers(1)
			for i := 0; i < count; i++ {
				av := instView(a, m*k+1, i)
				cv := instView(want, m*m+1, i)
				Syrk(mat.Lower, 1.5, &av, 0.5, &cv)
			}
			SetMaxWorkers(prev)
			SyrkBatch(mat.Lower, false, 1.5, a, m*k+1, 0.5, c, m*m+1, count)
			return c, want, m*m + 1
		}},
		{"symm", func(t *testing.T) (*mat.Dense, *mat.Dense, int) {
			rng := xrand.New(0x9a13)
			const m, n = 20, 9
			a := slab(m, m, m*m+5, count, rng)
			b := slab(m, n, m*n+5, count, rng)
			c := slab(m, n, m*n+5, count, rng)
			want := cloneSlab(c)
			prev := SetMaxWorkers(1)
			for i := 0; i < count; i++ {
				av := instView(a, m*m+5, i)
				bv := instView(b, m*n+5, i)
				cv := instView(want, m*n+5, i)
				Symm(mat.Lower, 2, &av, &bv, -1, &cv)
			}
			SetMaxWorkers(prev)
			SymmBatch(mat.Lower, 2, a, m*m+5, b, m*n+5, -1, c, m*n+5, count)
			return c, want, m*n + 5
		}},
		{"trsm", func(t *testing.T) (*mat.Dense, *mat.Dense, int) {
			rng := xrand.New(0x9a14)
			const m, n = 16, 7
			l := slab(m, m, m*m+2, count, rng)
			for i := 0; i < count; i++ {
				lv := instView(l, m*m+2, i)
				for d := 0; d < m; d++ {
					lv.Set(d, d, 4+lv.At(d, d))
				}
			}
			b := slab(m, n, m*n+2, count, rng)
			want := cloneSlab(b)
			prev := SetMaxWorkers(1)
			for i := 0; i < count; i++ {
				lv := instView(l, m*m+2, i)
				bv := instView(want, m*n+2, i)
				Trsm(mat.Lower, false, 0.5, &lv, &bv)
			}
			SetMaxWorkers(prev)
			TrsmBatch(mat.Lower, false, 0.5, l, m*m+2, b, m*n+2, count)
			return b, want, m*n + 2
		}},
		{"potrf", func(t *testing.T) (*mat.Dense, *mat.Dense, int) {
			rng := xrand.New(0x9a15)
			const n = 12
			a := slab(n, n, n*n+4, count, rng)
			for i := 0; i < count; i++ {
				av := instView(a, n*n+4, i)
				spd := mat.NewSPDRandom(n, rng)
				sv := av.View(0, n, 0, n)
				mat.Copy(&sv, spd)
			}
			want := cloneSlab(a)
			prev := SetMaxWorkers(1)
			for i := 0; i < count; i++ {
				av := instView(want, n*n+4, i)
				if err := Potrf(&av); err != nil {
					t.Fatalf("sequential Potrf failed: %v", err)
				}
			}
			SetMaxWorkers(prev)
			if err := PotrfBatch(a, n*n+4, count); err != nil {
				t.Fatalf("PotrfBatch failed: %v", err)
			}
			return a, want, n*n + 4
		}},
		{"addsym+tri2full", func(t *testing.T) (*mat.Dense, *mat.Dense, int) {
			rng := xrand.New(0x9a16)
			const n = 15
			c := slab(n, n, n*n+6, count, rng)
			a := slab(n, n, n*n+6, count, rng)
			want := cloneSlab(c)
			prev := SetMaxWorkers(1)
			for i := 0; i < count; i++ {
				cv := instView(want, n*n+6, i)
				av := instView(a, n*n+6, i)
				AddSym(mat.Lower, &cv, &av)
				Tri2Full(mat.Lower, &cv)
			}
			SetMaxWorkers(prev)
			AddSymBatch(mat.Lower, c, n*n+6, a, n*n+6, count)
			Tri2FullBatch(mat.Lower, c, n*n+6, count)
			return c, want, n*n + 6
		}},
	}
	for _, w := range []int{1, 2, 4} {
		SetMaxWorkers(w)
		for _, d := range drivers {
			got1, want, stride := d.run(t)
			equalInstances(t, want, got1, stride, count, d.name+" workers="+string(rune('0'+w)))
			// Determinism: a second run at the same cap is bitwise equal
			// regardless of how the dynamic part handout interleaved.
			got2, _, _ := d.run(t)
			equalInstances(t, got1, got2, stride, count, d.name+" rerun workers="+string(rune('0'+w)))
		}
	}
}

// TestPotrfBatchParallelNamesLowestFailure pins the parallel tier's
// error semantics: with several indefinite instances, the reported
// instance is the lowest-indexed one — what sequential execution, which
// stops at the first failure, would name.
func TestPotrfBatchParallelNamesLowestFailure(t *testing.T) {
	defer SetMaxWorkers(SetMaxWorkers(4))
	rng := xrand.New(0xbadbad)
	const n, count = 8, 32
	stride := n * n
	a := slab(n, n, stride, count, rng)
	for i := 0; i < count; i++ {
		av := instView(a, stride, i)
		spd := mat.NewSPDRandom(n, rng)
		sv := av.View(0, n, 0, n)
		mat.Copy(&sv, spd)
	}
	for _, i := range []int{29, 5, 17} {
		bad := instView(a, stride, i)
		bad.Set(0, 0, -1)
	}
	err := PotrfBatch(a, stride, count)
	if err == nil {
		t.Fatal("PotrfBatch accepted indefinite instances")
	}
	if !strings.Contains(err.Error(), "instance 5") {
		t.Errorf("PotrfBatch error %q does not name the lowest failing instance 5", err)
	}
}
