package blas

import "lamb/internal/mat"

// AVX2+FMA dispatch for the SIMD primitives, following the same
// runtime-detect pattern as the GEMM micro-kernel (haveAVX2FMA is set
// once at startup in ukernel_amd64.go). Every assembly routine handles
// arbitrary lengths including scalar tails; the wrappers only guard the
// empty case so the pointer derefs stay in bounds.

// axpyAVX computes y[i] += alpha·x[i] for i in [0, n).
// Implemented in simd_amd64.s.
//
//go:noescape
func axpyAVX(y, x *float64, n int, alpha float64)

// dotAVX returns Σ x[i]·y[i] for i in [0, n).
// Implemented in simd_amd64.s.
//
//go:noescape
func dotAVX(x, y *float64, n int) float64

// rank4AVX computes y[i] += Σ_t alphas[t]·x[t·stride+i] for i in [0, n).
// Implemented in simd_amd64.s.
//
//go:noescape
func rank4AVX(y, x *float64, stride, n int, alphas *[4]float64)

// mergeTileSet8x4AVX writes C[r,s] = alpha·tile[s·8+r] for a full 8×4
// micro-tile (C column-major at stride). Implemented in simd_amd64.s.
//
//go:noescape
func mergeTileSet8x4AVX(c *float64, stride int, tile *[mr * nr]float64, alpha float64)

// mergeTileAdd8x4AVX accumulates C[r,s] += alpha·tile[s·8+r] for a full
// 8×4 micro-tile. Implemented in simd_amd64.s.
//
//go:noescape
func mergeTileAdd8x4AVX(c *float64, stride int, tile *[mr * nr]float64, alpha float64)

// mergeTileFull folds a full 8×4 tile into C for betaEff 0 or 1,
// returning false when the caller must take the scalar path (ragged
// tile, general beta, or no AVX2).
func mergeTileFull(tile *[mr * nr]float64, rowsA, colsB int, alpha, betaEff float64, c *mat.Dense, i0, j0 int) bool {
	if !haveAVX2FMA || rowsA != mr || colsB != nr {
		return false
	}
	base := &c.Data[i0+j0*c.Stride]
	switch betaEff {
	case 0:
		mergeTileSet8x4AVX(base, c.Stride, tile, alpha)
	case 1:
		mergeTileAdd8x4AVX(base, c.Stride, tile, alpha)
	default:
		return false
	}
	return true
}

// packContig8AVX copies k runs of 8 contiguous doubles, src advancing by
// stride and dst by 8 per run. Implemented in simd_amd64.s.
//
//go:noescape
func packContig8AVX(dst, src *float64, k, stride int)

// packContig4AVX copies k runs of 4 contiguous doubles, src advancing by
// stride and dst by 4 per run. Implemented in simd_amd64.s.
//
//go:noescape
func packContig4AVX(dst, src *float64, k, stride int)

// packStreams4AVX interleaves four strided source streams (stream s
// starts at src[s·stride]) into dst: dst[p·dstStride+s] = src[s·stride+p]
// for p in [0, k), s in [0, 4), transposing 4×4 blocks in registers.
// Implemented in simd_amd64.s.
//
//go:noescape
func packStreams4AVX(dst, src *float64, k, stride, dstStride int)

// axpy computes y[i] += alpha·x[i] over len(x) elements.
func axpy(y, x []float64, alpha float64) {
	if haveAVX2FMA && len(x) > 0 {
		axpyAVX(&y[0], &x[0], len(x), alpha)
		return
	}
	axpyGeneric(y, x, alpha)
}

// dot returns Σ x[i]·y[i] over len(x) elements.
func dot(x, y []float64) float64 {
	if haveAVX2FMA && len(x) > 0 {
		return dotAVX(&x[0], &y[0], len(x))
	}
	return dotGeneric(x, y)
}

// rank4 applies the fused rank-4 update y[i] += Σ_t alphas[t]·x[t·stride+i]
// over len(y) elements.
func rank4(y, x []float64, stride int, alphas *[4]float64) {
	if haveAVX2FMA && len(y) > 0 {
		rank4AVX(&y[0], &x[0], stride, len(y), alphas)
		return
	}
	rank4Generic(y, x, stride, alphas)
}

func packPanelA8(dst, src []float64, k, stride int) {
	if haveAVX2FMA && k > 0 {
		packContig8AVX(&dst[0], &src[0], k, stride)
		return
	}
	packPanelA8Generic(dst, src, k, stride)
}

func packPanelA8T(dst, src []float64, k, stride int) {
	if haveAVX2FMA && k > 0 {
		// Two interleaved half-panels: rows 0–3 and rows 4–7 of the
		// packed micro-panel, each a 4-stream transpose.
		packStreams4AVX(&dst[0], &src[0], k, stride, mr)
		packStreams4AVX(&dst[4], &src[4*stride], k, stride, mr)
		return
	}
	packPanelA8TGeneric(dst, src, k, stride)
}

func packPanelB4(dst, src []float64, k, stride int) {
	if haveAVX2FMA && k > 0 {
		packStreams4AVX(&dst[0], &src[0], k, stride, nr)
		return
	}
	packPanelB4Generic(dst, src, k, stride)
}

func packPanelB4T(dst, src []float64, k, stride int) {
	if haveAVX2FMA && k > 0 {
		packContig4AVX(&dst[0], &src[0], k, stride)
		return
	}
	packPanelB4TGeneric(dst, src, k, stride)
}
