package blas

// This file holds the portable implementations of the small SIMD
// primitives shared by the packing routines and the triangular kernels:
// contiguous axpy and dot, the fused rank-4 column update of the
// unblocked Cholesky, and the four full-panel packing kernels. On amd64
// with AVX2+FMA the dispatch wrappers (simd_amd64.go) route to hand-
// written assembly; everywhere else these generic bodies run.

// axpyGeneric computes y[i] += alpha·x[i] over len(x) elements.
func axpyGeneric(y, x []float64, alpha float64) {
	y = y[:len(x)]
	for i, v := range x {
		y[i] += alpha * v
	}
}

// dotGeneric returns Σ x[i]·y[i] over len(x) elements.
func dotGeneric(x, y []float64) float64 {
	y = y[:len(x)]
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// rank4Generic applies a fused rank-4 update to y: with x holding four
// columns at the given stride (column t starts at x[t·stride]),
// y[i] += Σ_t alphas[t]·x[t·stride+i] over len(y) elements.
func rank4Generic(y, x []float64, stride int, alphas *[4]float64) {
	x0, x1, x2, x3 := x, x[stride:], x[2*stride:], x[3*stride:]
	a0, a1, a2, a3 := alphas[0], alphas[1], alphas[2], alphas[3]
	for i := range y {
		y[i] += a0*x0[i] + a1*x1[i] + a2*x2[i] + a3*x3[i]
	}
}

// The full-panel packing kernels. Ragged edge panels stay on the scalar
// paths in pack.go; these cover the dominant full-height (mr) and
// full-width (nr) panels:
//
//	packPanelA8:  dst[p·8+r] = src[p·stride+r]   (contiguous 8-copy per p)
//	packPanelA8T: dst[p·8+r] = src[r·stride+p]   (8 strided streams interleaved)
//	packPanelB4:  dst[p·4+s] = src[s·stride+p]   (4 strided streams interleaved)
//	packPanelB4T: dst[p·4+s] = src[p·stride+s]   (contiguous 4-copy per p)

func packPanelA8Generic(dst, src []float64, k, stride int) {
	for p := 0; p < k; p++ {
		copy(dst[p*mr:p*mr+mr], src[p*stride:p*stride+mr])
	}
}

func packPanelA8TGeneric(dst, src []float64, k, stride int) {
	for p := 0; p < k; p++ {
		d := dst[p*mr : p*mr+mr : p*mr+mr]
		for r := 0; r < mr; r++ {
			d[r] = src[p+r*stride]
		}
	}
}

func packPanelB4Generic(dst, src []float64, k, stride int) {
	for p := 0; p < k; p++ {
		d := dst[p*nr : p*nr+nr : p*nr+nr]
		d[0] = src[p]
		d[1] = src[p+stride]
		d[2] = src[p+2*stride]
		d[3] = src[p+3*stride]
	}
}

func packPanelB4TGeneric(dst, src []float64, k, stride int) {
	for p := 0; p < k; p++ {
		copy(dst[p*nr:p*nr+nr], src[p*stride:p*stride+nr])
	}
}
