package blas

import "lamb/internal/mat"

// packA packs the logical block op(A)[i0:i1, p0:p1] into buf as row
// micro-panels of height mr: panel q holds rows [i0+q·mr, i0+(q+1)·mr)
// stored k-major, i.e. buf[q·mr·kcb + p·mr + r] = op(A)[i0+q·mr+r, p0+p].
// Ragged bottom panels are zero-padded so the micro-kernel never branches.
//
// Full-height panels take the SIMD fast paths (contiguous 8-copies for
// the untransposed case, 4-stream register transposes for the
// transposed case); only the ragged bottom panel runs the scalar loops.
func packA(buf []float64, a *mat.Dense, transA bool, i0, i1, p0, p1 int) {
	mcb, kcb := i1-i0, p1-p0
	idx := 0
	for q := 0; q < mcb; q += mr {
		rows := min(mr, mcb-q)
		if rows == mr {
			if !transA {
				packPanelA8(buf[idx:], a.Data[i0+q+p0*a.Stride:], kcb, a.Stride)
			} else {
				packPanelA8T(buf[idx:], a.Data[p0+(i0+q)*a.Stride:], kcb, a.Stride)
			}
			idx += mr * kcb
			continue
		}
		if !transA {
			// op(A)[i, p] = A[i, p]: column p is contiguous.
			for p := 0; p < kcb; p++ {
				col := a.Data[(p0+p)*a.Stride:]
				base := i0 + q
				for r := 0; r < rows; r++ {
					buf[idx+r] = col[base+r]
				}
				for r := rows; r < mr; r++ {
					buf[idx+r] = 0
				}
				idx += mr
			}
		} else {
			// op(A)[i, p] = A[p, i]: row i of op(A) is column i of A.
			for p := 0; p < kcb; p++ {
				row := p0 + p
				for r := 0; r < rows; r++ {
					buf[idx+r] = a.Data[row+(i0+q+r)*a.Stride]
				}
				for r := rows; r < mr; r++ {
					buf[idx+r] = 0
				}
				idx += mr
			}
		}
	}
}

// packB packs the logical block op(B)[p0:p1, j0:j1] into buf as column
// micro-panels of width nr: panel q holds columns [j0+q·nr, j0+(q+1)·nr)
// stored k-major, i.e. buf[q·nr·kcb + p·nr + s] = op(B)[p0+p, j0+q·nr+s].
// Ragged right panels are zero-padded.
//
// Full-width panels take the SIMD fast paths (4-stream register
// transposes for the untransposed case, contiguous 4-copies for the
// transposed case); only the ragged right panel runs the scalar loops.
func packB(buf []float64, b *mat.Dense, transB bool, p0, p1, j0, j1 int) {
	kcb, ncb := p1-p0, j1-j0
	idx := 0
	for q := 0; q < ncb; q += nr {
		cols := min(nr, ncb-q)
		if cols == nr {
			if !transB {
				packPanelB4(buf[idx:], b.Data[p0+(j0+q)*b.Stride:], kcb, b.Stride)
			} else {
				packPanelB4T(buf[idx:], b.Data[j0+q+p0*b.Stride:], kcb, b.Stride)
			}
			idx += nr * kcb
			continue
		}
		if !transB {
			for p := 0; p < kcb; p++ {
				row := p0 + p
				for s := 0; s < cols; s++ {
					buf[idx+s] = b.Data[row+(j0+q+s)*b.Stride]
				}
				for s := cols; s < nr; s++ {
					buf[idx+s] = 0
				}
				idx += nr
			}
		} else {
			// op(B)[p, j] = B[j, p]: for fixed p, walk column p of B.
			for p := 0; p < kcb; p++ {
				col := b.Data[(p0+p)*b.Stride:]
				for s := 0; s < cols; s++ {
					buf[idx+s] = col[j0+q+s]
				}
				for s := cols; s < nr; s++ {
					buf[idx+s] = 0
				}
				idx += nr
			}
		}
	}
}

// macroKernel multiplies the packed block pair over the packed-B column
// range [q0, q1) (q0 a multiple of nr; pass 0, ncb for the whole block)
// and updates C[ic:ic+mcb, jc+q0:jc+q1] with C = alpha·A·B + betaEff·C.
//
// Every micro-tile is computed into a contiguous scratch tile and merged,
// so full and ragged tiles share one code path and the micro-kernel never
// touches C. The merge is O(mr·nr) against the tile's O(mr·nr·kcb)
// compute, so its cost is noise for realistic kcb.
func macroKernel(bufA, bufB []float64, mcb, kcb int, alpha, betaEff float64, c *mat.Dense, ic, jc, q0, q1 int) {
	var tile [mr * nr]float64
	for q := q0; q < q1; q += nr {
		colsB := min(nr, q1-q)
		bp := bufB[q*kcb:] // q is a multiple of nr; panels are kcb·nr long
		for p := 0; p < mcb; p += mr {
			rowsA := min(mr, mcb-p)
			ap := bufA[p*kcb:] // p is a multiple of mr; panels are kcb·mr long
			microKernel8x4(ap, bp, kcb, &tile)
			mergeTile(&tile, rowsA, colsB, alpha, betaEff, c, ic+p, jc+q)
		}
	}
}

// mergeTile folds the rowsA×colsB valid part of a column-major mr×nr
// scratch tile into C[i0:i0+rowsA, j0:j0+colsB]. Full tiles with
// betaEff 0 or 1 take the vector fast path; ragged tiles and general
// beta run the scalar loops.
func mergeTile(tile *[mr * nr]float64, rowsA, colsB int, alpha, betaEff float64, c *mat.Dense, i0, j0 int) {
	if mergeTileFull(tile, rowsA, colsB, alpha, betaEff, c, i0, j0) {
		return
	}
	for s := 0; s < colsB; s++ {
		off := i0 + (j0+s)*c.Stride
		ccol := c.Data[off : off+rowsA]
		t := tile[s*mr : s*mr+rowsA]
		switch betaEff {
		case 0:
			for r, v := range t {
				ccol[r] = alpha * v
			}
		case 1:
			for r, v := range t {
				ccol[r] += alpha * v
			}
		default:
			for r, v := range t {
				ccol[r] = betaEff*ccol[r] + alpha*v
			}
		}
	}
}
