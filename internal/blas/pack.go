package blas

import "lamb/internal/mat"

// packA packs the logical block op(A)[i0:i1, p0:p1] into buf as row
// micro-panels of height mr: panel q holds rows [i0+q·mr, i0+(q+1)·mr)
// stored k-major, i.e. buf[q·mr·kcb + p·mr + r] = op(A)[i0+q·mr+r, p0+p].
// Ragged bottom panels are zero-padded so the micro-kernel never branches.
func packA(buf []float64, a *mat.Dense, transA bool, i0, i1, p0, p1 int) {
	mcb, kcb := i1-i0, p1-p0
	idx := 0
	for q := 0; q < mcb; q += mr {
		rows := min(mr, mcb-q)
		if !transA {
			// op(A)[i, p] = A[i, p]: column p is contiguous.
			for p := 0; p < kcb; p++ {
				col := a.Data[(p0+p)*a.Stride:]
				base := i0 + q
				for r := 0; r < rows; r++ {
					buf[idx+r] = col[base+r]
				}
				for r := rows; r < mr; r++ {
					buf[idx+r] = 0
				}
				idx += mr
			}
		} else {
			// op(A)[i, p] = A[p, i]: row i of op(A) is column i of A.
			for p := 0; p < kcb; p++ {
				row := p0 + p
				for r := 0; r < rows; r++ {
					buf[idx+r] = a.Data[row+(i0+q+r)*a.Stride]
				}
				for r := rows; r < mr; r++ {
					buf[idx+r] = 0
				}
				idx += mr
			}
		}
	}
}

// packB packs the logical block op(B)[p0:p1, j0:j1] into buf as column
// micro-panels of width nr: panel q holds columns [j0+q·nr, j0+(q+1)·nr)
// stored k-major, i.e. buf[q·nr·kcb + p·nr + s] = op(B)[p0+p, j0+q·nr+s].
// Ragged right panels are zero-padded.
func packB(buf []float64, b *mat.Dense, transB bool, p0, p1, j0, j1 int) {
	kcb, ncb := p1-p0, j1-j0
	idx := 0
	for q := 0; q < ncb; q += nr {
		cols := min(nr, ncb-q)
		if !transB {
			for p := 0; p < kcb; p++ {
				row := p0 + p
				for s := 0; s < cols; s++ {
					buf[idx+s] = b.Data[row+(j0+q+s)*b.Stride]
				}
				for s := cols; s < nr; s++ {
					buf[idx+s] = 0
				}
				idx += nr
			}
		} else {
			// op(B)[p, j] = B[j, p]: for fixed p, walk column p of B.
			for p := 0; p < kcb; p++ {
				col := b.Data[(p0+p)*b.Stride:]
				for s := 0; s < cols; s++ {
					buf[idx+s] = col[j0+q+s]
				}
				for s := cols; s < nr; s++ {
					buf[idx+s] = 0
				}
				idx += nr
			}
		}
	}
}

// macroKernel multiplies the packed block pair (mcb×kcb by kcb×ncb) and
// updates C[ic:ic+mcb, jc:jc+ncb] with C = alpha·A·B + betaEff·C.
func macroKernel(bufA, bufB []float64, mcb, ncb, kcb int, alpha, betaEff float64, c *mat.Dense, ic, jc int) {
	var edge [mr * nr]float64
	for q := 0; q < ncb; q += nr {
		colsB := min(nr, ncb-q)
		bp := bufB[q*kcb:] // q is a multiple of nr; panels are kcb·nr long
		for p := 0; p < mcb; p += mr {
			rowsA := min(mr, mcb-p)
			ap := bufA[p*kcb:] // p is a multiple of mr; panels are kcb·mr long
			if rowsA == mr && colsB == nr {
				microKernel(ap, bp, kcb, alpha, betaEff, c, ic+p, jc+q)
				continue
			}
			// Ragged tile: accumulate into a temp, then merge the valid part.
			microKernelEdge(ap, bp, kcb, &edge)
			for s := 0; s < colsB; s++ {
				ccol := c.Data[(jc+q+s)*c.Stride:]
				for r := 0; r < rowsA; r++ {
					v := alpha * edge[r+s*mr]
					if betaEff == 0 {
						ccol[ic+p+r] = v
					} else {
						ccol[ic+p+r] = betaEff*ccol[ic+p+r] + v
					}
				}
			}
		}
	}
}

// microKernel computes the full mr×nr tile:
// C[i0:i0+4, j0:j0+4] = alpha·(packed product) + betaEff·C.
func microKernel(ap, bp []float64, kcb int, alpha, betaEff float64, c *mat.Dense, i0, j0 int) {
	var c00, c10, c20, c30 float64
	var c01, c11, c21, c31 float64
	var c02, c12, c22, c32 float64
	var c03, c13, c23, c33 float64
	ia, ib := 0, 0
	for p := 0; p < kcb; p++ {
		a0, a1, a2, a3 := ap[ia], ap[ia+1], ap[ia+2], ap[ia+3]
		b0, b1, b2, b3 := bp[ib], bp[ib+1], bp[ib+2], bp[ib+3]
		c00 += a0 * b0
		c10 += a1 * b0
		c20 += a2 * b0
		c30 += a3 * b0
		c01 += a0 * b1
		c11 += a1 * b1
		c21 += a2 * b1
		c31 += a3 * b1
		c02 += a0 * b2
		c12 += a1 * b2
		c22 += a2 * b2
		c32 += a3 * b2
		c03 += a0 * b3
		c13 += a1 * b3
		c23 += a2 * b3
		c33 += a3 * b3
		ia += mr
		ib += nr
	}
	st := c.Stride
	col0 := c.Data[i0+j0*st:]
	col1 := c.Data[i0+(j0+1)*st:]
	col2 := c.Data[i0+(j0+2)*st:]
	col3 := c.Data[i0+(j0+3)*st:]
	if betaEff == 0 {
		col0[0], col0[1], col0[2], col0[3] = alpha*c00, alpha*c10, alpha*c20, alpha*c30
		col1[0], col1[1], col1[2], col1[3] = alpha*c01, alpha*c11, alpha*c21, alpha*c31
		col2[0], col2[1], col2[2], col2[3] = alpha*c02, alpha*c12, alpha*c22, alpha*c32
		col3[0], col3[1], col3[2], col3[3] = alpha*c03, alpha*c13, alpha*c23, alpha*c33
		return
	}
	col0[0] = betaEff*col0[0] + alpha*c00
	col0[1] = betaEff*col0[1] + alpha*c10
	col0[2] = betaEff*col0[2] + alpha*c20
	col0[3] = betaEff*col0[3] + alpha*c30
	col1[0] = betaEff*col1[0] + alpha*c01
	col1[1] = betaEff*col1[1] + alpha*c11
	col1[2] = betaEff*col1[2] + alpha*c21
	col1[3] = betaEff*col1[3] + alpha*c31
	col2[0] = betaEff*col2[0] + alpha*c02
	col2[1] = betaEff*col2[1] + alpha*c12
	col2[2] = betaEff*col2[2] + alpha*c22
	col2[3] = betaEff*col2[3] + alpha*c32
	col3[0] = betaEff*col3[0] + alpha*c03
	col3[1] = betaEff*col3[1] + alpha*c13
	col3[2] = betaEff*col3[2] + alpha*c23
	col3[3] = betaEff*col3[3] + alpha*c33
}

// microKernelEdge computes a full padded tile into out (column-major
// mr×nr). Padding lanes contain zeros so the extra work is harmless.
func microKernelEdge(ap, bp []float64, kcb int, out *[mr * nr]float64) {
	var acc [mr * nr]float64
	ia, ib := 0, 0
	for p := 0; p < kcb; p++ {
		a0, a1, a2, a3 := ap[ia], ap[ia+1], ap[ia+2], ap[ia+3]
		b0, b1, b2, b3 := bp[ib], bp[ib+1], bp[ib+2], bp[ib+3]
		acc[0] += a0 * b0
		acc[1] += a1 * b0
		acc[2] += a2 * b0
		acc[3] += a3 * b0
		acc[4] += a0 * b1
		acc[5] += a1 * b1
		acc[6] += a2 * b1
		acc[7] += a3 * b1
		acc[8] += a0 * b2
		acc[9] += a1 * b2
		acc[10] += a2 * b2
		acc[11] += a3 * b2
		acc[12] += a0 * b3
		acc[13] += a1 * b3
		acc[14] += a2 * b3
		acc[15] += a3 * b3
		ia += mr
		ib += nr
	}
	*out = acc
}
