package blas

// The parallel tier of the batched drivers: a batch of independent
// instances is partitioned into contiguous per-worker sub-ranges, and
// each worker sweeps the unchanged serial fused kernel over its range
// with its own packing-buffer pair and scratch square. Per-instance
// math is untouched — every instance is processed by exactly one
// goroutine running exactly the code the serial fused path runs on
// exactly the same data — so results stay bitwise identical to
// sequential execution at any worker count and any schedule.
//
// The machinery deliberately avoids the per-call goroutine fan-out of
// parallelTasks: batched drivers sit on the engine's measured path,
// whose contract is zero heap allocations per steady-state repetition.
// Workers here are persistent goroutines parked on a channel, jobs are
// pooled descriptors holding value copies of the driver arguments, and
// the per-range entry points are top-level functions (a func field
// assignment of a top-level function does not allocate). After the
// first dispatch has spawned the workers (warmup), a parallel batch
// performs no heap allocations.

import (
	"sync"
	"sync/atomic"

	"lamb/internal/mat"
)

// batchBufs is one worker's working set: a packing-buffer pair sized
// like the pooled pair the serial drivers use, plus the scratch square
// the SYRK/SYMM fused paths materialise symmetric blocks into.
type batchBufs struct {
	bufA    []float64
	bufB    []float64
	scratch *mat.Dense
}

func newBatchBufs() *batchBufs {
	return &batchBufs{
		bufA:    make([]float64, mc*kc),
		bufB:    make([]float64, kc*nc),
		scratch: mat.New(syrkBlock, syrkBlock),
	}
}

// callerBufsPool provides the dispatching goroutine's own batchBufs: the
// caller participates in its job like a worker, and a pooled struct
// keeps the dispatch path allocation-free (a stack-built struct would
// escape through the indirect run call).
var callerBufsPool = sync.Pool{New: func() any { return newBatchBufs() }}

// batchJob is one batched-driver invocation, partitioned into nparts
// contiguous instance sub-ranges handed out through the atomic part
// counter. It carries value copies of every argument any driver needs
// (each run function reads only its own fields), so neither the
// dispatch nor the workers capture caller state. Jobs are pooled.
type batchJob struct {
	run func(bufs *batchBufs, j *batchJob, lo, hi int)

	transA, transB bool
	uplo           mat.Uplo
	alpha, beta    float64
	a, b, c        mat.Dense
	sa, sb, sc     int
	m, n, k        int
	count          int

	chunk  int
	nparts int
	next   atomic.Int64

	// Error funnel for PotrfBatch: the lowest failing instance wins, so
	// the reported instance matches what sequential execution (which
	// stops at the first failure) would name.
	errMu  sync.Mutex
	errIdx int
	err    error

	wg sync.WaitGroup
}

var batchJobPool = sync.Pool{New: func() any { return new(batchJob) }}

// recordErr folds a per-instance failure into the job, keeping the
// lowest instance index (the one sequential execution would hit first).
func (j *batchJob) recordErr(i int, err error) {
	j.errMu.Lock()
	if j.err == nil || i < j.errIdx {
		j.errIdx, j.err = i, err
	}
	j.errMu.Unlock()
}

// batchWorkerCap bounds the persistent worker pool. Each worker owns a
// packing-buffer pair (~4.3 MiB), so the cap bounds pool memory; hosts
// with more cores simply hand each worker more instances.
const batchWorkerCap = 16

// batchWork carries jobs to the persistent workers. Sends are
// non-blocking: if every worker is busy the dispatching goroutine
// absorbs the unclaimed parts itself, so a saturated pool degrades to
// more caller work, never to a deadlock.
var batchWork = make(chan *batchJob, batchWorkerCap)

var batchSpawned atomic.Int32
var batchSpawnMu sync.Mutex

// ensureBatchWorkers lazily grows the persistent worker pool to at
// least n goroutines (capped at batchWorkerCap). Growth allocates the
// workers' buffer sets; it happens during the first parallel dispatch
// at a given width — warmup — after which dispatches are alloc-free.
func ensureBatchWorkers(n int) {
	if n > batchWorkerCap {
		n = batchWorkerCap
	}
	if int(batchSpawned.Load()) >= n {
		return
	}
	batchSpawnMu.Lock()
	for int(batchSpawned.Load()) < n {
		go batchWorkerLoop()
		batchSpawned.Add(1)
	}
	batchSpawnMu.Unlock()
}

func batchWorkerLoop() {
	bufs := newBatchBufs()
	for j := range batchWork {
		serveBatchParts(j, bufs)
		j.wg.Done()
	}
}

// serveBatchParts claims contiguous instance sub-ranges off the job's
// part counter until none remain. Both workers and the dispatching
// caller drain the same counter, so uneven part costs still balance.
func serveBatchParts(j *batchJob, bufs *batchBufs) {
	for {
		p := int(j.next.Add(1)) - 1
		if p >= j.nparts {
			return
		}
		lo := p * j.chunk
		hi := lo + j.chunk
		if hi > j.count {
			hi = j.count
		}
		j.run(bufs, j, lo, hi)
	}
}

// batchParts decides the partition width for a count-instance batch: up
// to workers() contiguous parts of at least two instances each, or 1
// (stay serial) when the worker cap or the batch is too small for
// parallelism to pay.
func batchParts(count int) int {
	nw := workers()
	if nw <= 1 || count < 4 {
		return 1
	}
	np := count / 2
	if np > nw {
		np = nw
	}
	if np > batchWorkerCap+1 {
		np = batchWorkerCap + 1
	}
	return np
}

// dispatch runs the job's parts across the persistent workers with the
// calling goroutine participating, and waits for completion. On return
// no goroutine references the job.
func (j *batchJob) dispatch(nparts int) {
	j.nparts = nparts
	j.chunk = (j.count + nparts - 1) / nparts
	j.next.Store(0)
	helpers := nparts - 1
	ensureBatchWorkers(helpers)
	j.wg.Add(helpers)
	for i := 0; i < helpers; i++ {
		select {
		case batchWork <- j:
		default:
			// Pool saturated: the caller serves this helper's share.
			j.wg.Done()
		}
	}
	bufs := callerBufsPool.Get().(*batchBufs)
	serveBatchParts(j, bufs)
	callerBufsPool.Put(bufs)
	j.wg.Wait()
}

// newBatchJob fetches a pooled job with the error funnel reset. The
// matrix-header and scalar fields are always overwritten by the caller
// for the fields its run function reads.
func newBatchJob(run func(*batchBufs, *batchJob, int, int)) *batchJob {
	j := batchJobPool.Get().(*batchJob)
	j.run = run
	j.err = nil
	j.errIdx = 0
	return j
}

// The per-range entry points: top-level functions (not closures) that
// unpack the job's fields and sweep the serial fused kernel over
// [lo, hi). These are the only code the workers execute.

func runGemmBatchRange(bufs *batchBufs, j *batchJob, lo, hi int) {
	gemmBatchFusedRange(bufs.bufA, bufs.bufB, j.transA, j.transB, j.alpha,
		&j.a, j.sa, &j.b, j.sb, j.beta, &j.c, j.sc, lo, hi, j.m, j.n, j.k)
}

func runSyrkBatchRange(bufs *batchBufs, j *batchJob, lo, hi int) {
	syrkBatchFusedRange(bufs, j.uplo, j.transA, j.alpha, &j.a, j.sa,
		j.beta, &j.c, j.sc, lo, hi, j.m)
}

func runSymmBatchRange(bufs *batchBufs, j *batchJob, lo, hi int) {
	symmBatchFusedRange(bufs, j.uplo, j.alpha, &j.a, j.sa, &j.b, j.sb,
		j.beta, &j.c, j.sc, lo, hi, j.m)
}

func runTrsmBatchRange(_ *batchBufs, j *batchJob, lo, hi int) {
	trsmBatchFusedRange(j.uplo, j.transA, j.alpha, &j.a, j.sa, &j.b, j.sb, lo, hi)
}

func runPotrfBatchRange(_ *batchBufs, j *batchJob, lo, hi int) {
	for i := lo; i < hi; i++ {
		av := instView(&j.a, j.sa, i)
		if err := potf2(&av, 0); err != nil {
			j.recordErr(i, err)
			return
		}
	}
}

func runAddSymBatchRange(_ *batchBufs, j *batchJob, lo, hi int) {
	for i := lo; i < hi; i++ {
		cv := instView(&j.c, j.sc, i)
		av := instView(&j.a, j.sa, i)
		AddSym(j.uplo, &cv, &av)
	}
}

func runTri2FullBatchRange(_ *batchBufs, j *batchJob, lo, hi int) {
	for i := lo; i < hi; i++ {
		cv := instView(&j.c, j.sc, i)
		Tri2Full(j.uplo, &cv)
	}
}
