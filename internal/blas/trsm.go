package blas

import (
	"fmt"

	"lamb/internal/mat"
)

// Trsm solves the triangular system op(L)·X = alpha·B in place: on
// return B holds X. L is an m×m triangular matrix of which only the uplo
// triangle is referenced (non-unit diagonal), op(L) is L or Lᵀ per
// transL, and B is m×n.
//
// This is the left-side BLAS TRSM used by the least-squares expression's
// Cholesky solve (see lamb/internal/expr): after L := potrf(S), the two
// calls Trsm(Lower, false) and Trsm(Lower, true) apply S⁻¹.
//
// The implementation is blocked: diagonal blocks are solved with the
// unblocked kernel and the trailing updates are GEMMs, so large solves
// inherit the packed GEMM's performance.
func Trsm(uplo mat.Uplo, transL bool, alpha float64, l, b *mat.Dense) {
	m := l.Rows
	if l.Cols != m {
		panic(fmt.Sprintf("blas: trsm L is %dx%d, want square", l.Rows, l.Cols))
	}
	if b.Rows != m {
		panic(fmt.Sprintf("blas: trsm B has %d rows, want %d", b.Rows, m))
	}
	if m == 0 || b.Cols == 0 {
		return
	}
	if alpha != 1 {
		scaleMatrix(b, alpha)
	}
	// Effective orientation: a Lower matrix accessed transposed behaves
	// like an Upper solve and vice versa.
	lowerLike := (uplo == mat.Lower) != transL
	const nb = 64
	if lowerLike {
		// Forward substitution over block rows.
		for k0 := 0; k0 < m; k0 += nb {
			k1 := min(k0+nb, m)
			lkk := l.View(k0, k1, k0, k1)
			bk := b.View(k0, k1, 0, b.Cols)
			if transL {
				// Block (k,k) of op(L) is L[k0:k1,k0:k1]ᵀ.
				trsmUnblocked(uplo, true, &lkk, &bk)
			} else {
				trsmUnblocked(uplo, false, &lkk, &bk)
			}
			if k1 < m {
				// Trailing update: B[k1:, :] -= op(L)[k1:, k0:k1] · X_k.
				var lik mat.Dense
				var transA bool
				if !transL {
					lik = l.View(k1, m, k0, k1)
					transA = false
				} else {
					lik = l.View(k0, k1, k1, m)
					transA = true
				}
				btail := b.View(k1, m, 0, b.Cols)
				Gemm(transA, false, -1, &lik, &bk, 1, &btail)
			}
		}
		return
	}
	// Backward substitution over block rows.
	for k1 := m; k1 > 0; k1 -= nb {
		k0 := max(k1-nb, 0)
		lkk := l.View(k0, k1, k0, k1)
		bk := b.View(k0, k1, 0, b.Cols)
		trsmUnblocked(uplo, transL, &lkk, &bk)
		if k0 > 0 {
			var lik mat.Dense
			var transA bool
			if !transL {
				lik = l.View(0, k0, k0, k1)
				transA = false
			} else {
				lik = l.View(k0, k1, 0, k0)
				transA = true
			}
			bhead := b.View(0, k0, 0, b.Cols)
			Gemm(transA, false, -1, &lik, &bk, 1, &bhead)
		}
	}
}

// trsmUnblocked solves op(T)·X = B in place for a small triangular
// block. The inner loops are vectorised by orientation: untransposed
// solves sweep column by column of T (after element p is solved, one
// contiguous SIMD axpy removes its contribution from the remaining
// rows); transposed solves read row i of op(T) as the contiguous column
// i of T, so each element is one SIMD dot product.
func trsmUnblocked(uplo mat.Uplo, transL bool, t, b *mat.Dense) {
	m, n := t.Rows, b.Cols
	lowerLike := (uplo == mat.Lower) != transL
	if !transL {
		for j := 0; j < n; j++ {
			col := b.Data[j*b.Stride : j*b.Stride+m]
			if lowerLike {
				for p := 0; p < m; p++ {
					tcol := t.Data[p*t.Stride:]
					col[p] /= tcol[p]
					if p+1 < m {
						axpy(col[p+1:], tcol[p+1:m], -col[p])
					}
				}
			} else {
				for p := m - 1; p >= 0; p-- {
					tcol := t.Data[p*t.Stride:]
					col[p] /= tcol[p]
					if p > 0 {
						axpy(col[:p], tcol[:p], -col[p])
					}
				}
			}
		}
		return
	}
	for j := 0; j < n; j++ {
		col := b.Data[j*b.Stride : j*b.Stride+m]
		if lowerLike {
			for i := 0; i < m; i++ {
				ti := t.Data[i*t.Stride:]
				col[i] = (col[i] - dot(ti[:i], col[:i])) / ti[i]
			}
		} else {
			for i := m - 1; i >= 0; i-- {
				ti := t.Data[i*t.Stride:]
				col[i] = (col[i] - dot(ti[i+1:m], col[i+1:m])) / ti[i]
			}
		}
	}
}

// NaiveTrsm is the reference forward/backward substitution (column by
// column, no blocking). Semantics match Trsm.
func NaiveTrsm(uplo mat.Uplo, transL bool, alpha float64, l, b *mat.Dense) {
	m, n := l.Rows, b.Cols
	at := func(i, j int) float64 {
		if transL {
			return l.At(j, i)
		}
		return l.At(i, j)
	}
	lowerLike := (uplo == mat.Lower) != transL
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			b.Set(i, j, alpha*b.At(i, j))
		}
		if lowerLike {
			for i := 0; i < m; i++ {
				s := b.At(i, j)
				for p := 0; p < i; p++ {
					s -= at(i, p) * b.At(p, j)
				}
				b.Set(i, j, s/at(i, i))
			}
		} else {
			for i := m - 1; i >= 0; i-- {
				s := b.At(i, j)
				for p := i + 1; p < m; p++ {
					s -= at(i, p) * b.At(p, j)
				}
				b.Set(i, j, s/at(i, i))
			}
		}
	}
}
