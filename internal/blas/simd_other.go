//go:build !amd64

package blas

import "lamb/internal/mat"

// Non-amd64 platforms always use the portable SIMD-primitive bodies (on
// arm64 and ppc64 the compiler fuses their multiply-adds into native FMA
// instructions).

// mergeTileFull has no vector fast path off amd64; the scalar merge in
// pack.go always runs.
func mergeTileFull(tile *[mr * nr]float64, rowsA, colsB int, alpha, betaEff float64, c *mat.Dense, i0, j0 int) bool {
	return false
}

func axpy(y, x []float64, alpha float64) { axpyGeneric(y, x, alpha) }

func dot(x, y []float64) float64 { return dotGeneric(x, y) }

func rank4(y, x []float64, stride int, alphas *[4]float64) {
	rank4Generic(y, x, stride, alphas)
}

func packPanelA8(dst, src []float64, k, stride int) { packPanelA8Generic(dst, src, k, stride) }

func packPanelA8T(dst, src []float64, k, stride int) { packPanelA8TGeneric(dst, src, k, stride) }

func packPanelB4(dst, src []float64, k, stride int) { packPanelB4Generic(dst, src, k, stride) }

func packPanelB4T(dst, src []float64, k, stride int) { packPanelB4TGeneric(dst, src, k, stride) }
