package blas

// microKernel8x4Generic is the portable register-blocked 8×4 micro-kernel:
// out[r+8·s] = Σ_p ap[p·8+r] · bp[p·4+s]. The accumulators are split into
// two banks of four rows sharing each broadcast b value, which keeps the
// independent multiply-add chains visible to the scheduler (ILP) and
// mirrors the two-vector-register banks of the amd64 assembly kernel. The
// three-index subslices pin the panel lengths so the compiler drops the
// per-element bounds checks.
func microKernel8x4Generic(ap, bp []float64, kcb int, out *[mr * nr]float64) {
	var c00, c10, c20, c30, c40, c50, c60, c70 float64
	var c01, c11, c21, c31, c41, c51, c61, c71 float64
	var c02, c12, c22, c32, c42, c52, c62, c72 float64
	var c03, c13, c23, c33, c43, c53, c63, c73 float64
	for p := 0; p < kcb; p++ {
		aa := ap[p*mr : p*mr+mr : p*mr+mr]
		bb := bp[p*nr : p*nr+nr : p*nr+nr]
		a0, a1, a2, a3 := aa[0], aa[1], aa[2], aa[3]
		a4, a5, a6, a7 := aa[4], aa[5], aa[6], aa[7]
		b0, b1, b2, b3 := bb[0], bb[1], bb[2], bb[3]
		c00 += a0 * b0
		c10 += a1 * b0
		c20 += a2 * b0
		c30 += a3 * b0
		c40 += a4 * b0
		c50 += a5 * b0
		c60 += a6 * b0
		c70 += a7 * b0
		c01 += a0 * b1
		c11 += a1 * b1
		c21 += a2 * b1
		c31 += a3 * b1
		c41 += a4 * b1
		c51 += a5 * b1
		c61 += a6 * b1
		c71 += a7 * b1
		c02 += a0 * b2
		c12 += a1 * b2
		c22 += a2 * b2
		c32 += a3 * b2
		c42 += a4 * b2
		c52 += a5 * b2
		c62 += a6 * b2
		c72 += a7 * b2
		c03 += a0 * b3
		c13 += a1 * b3
		c23 += a2 * b3
		c33 += a3 * b3
		c43 += a4 * b3
		c53 += a5 * b3
		c63 += a6 * b3
		c73 += a7 * b3
	}
	out[0], out[1], out[2], out[3] = c00, c10, c20, c30
	out[4], out[5], out[6], out[7] = c40, c50, c60, c70
	out[8], out[9], out[10], out[11] = c01, c11, c21, c31
	out[12], out[13], out[14], out[15] = c41, c51, c61, c71
	out[16], out[17], out[18], out[19] = c02, c12, c22, c32
	out[20], out[21], out[22], out[23] = c42, c52, c62, c72
	out[24], out[25], out[26], out[27] = c03, c13, c23, c33
	out[28], out[29], out[30], out[31] = c43, c53, c63, c73
}
