package machine

import "lamb/internal/kernels"

// CacheState tracks which logical operands are resident in the simulated
// last-level cache. The executor carries one CacheState per algorithm
// repetition: it is flushed at the start (matching the paper's cache
// flush before each repetition) and updated after every call, so later
// calls in a sequence observe the inter-kernel cache effects that
// Experiment 3 isolates.
//
// The model is a simple LRU over whole operands: after a call, its output
// and inputs are the most recently used; older content is evicted once
// the configured capacity is exceeded.
type CacheState struct {
	capacity float64
	// entries is most-recent-first; hot holds resident byte counts.
	entries []string
	hot     map[string]float64
}

// NewCacheState returns an empty cache state with the machine's LLC
// capacity.
func (m *Machine) NewCacheState() *CacheState {
	return &CacheState{capacity: m.cfg.LLCBytes, hot: make(map[string]float64)}
}

// Flush empties the cache (the paper flushes before each repetition).
func (s *CacheState) Flush() {
	s.entries = s.entries[:0]
	clear(s.hot)
}

// operandTouch returns the (id, bytes) pairs a call reads (ins) and the
// pair it writes (out). Triangular accesses count half the square.
func operandTouch(c kernels.Call) (ins []operandBytes, out operandBytes) {
	const w = 8.0
	m, n, k := float64(c.M), float64(c.N), float64(c.K)
	switch c.Kind {
	case kernels.Gemm:
		ins = []operandBytes{
			{c.In[0], w * m * k},
			{c.In[1], w * k * n},
		}
		out = operandBytes{c.Out, w * m * n}
	case kernels.Syrk:
		ins = []operandBytes{{c.In[0], w * m * k}}
		out = operandBytes{c.Out, w * m * (m + 1) / 2}
	case kernels.Symm:
		ins = []operandBytes{
			{c.In[0], w * m * (m + 1) / 2},
			{c.In[1], w * m * n},
		}
		out = operandBytes{c.Out, w * m * n}
	case kernels.Tri2Full:
		ins = []operandBytes{{c.In[0], w * m * m / 2}}
		out = operandBytes{c.Out, w * m * m}
	case kernels.Potrf:
		ins = []operandBytes{{c.In[0], w * m * (m + 1) / 2}}
		out = operandBytes{c.Out, w * m * (m + 1) / 2}
	case kernels.Trsm:
		ins = []operandBytes{
			{c.In[0], w * m * (m + 1) / 2},
			{c.In[1], w * m * n},
		}
		out = operandBytes{c.Out, w * m * n}
	case kernels.AddSym:
		ins = []operandBytes{
			{c.In[0], w * m * (m + 1) / 2},
			{c.In[1], w * m * (m + 1) / 2},
		}
		out = operandBytes{c.Out, w * m * (m + 1) / 2}
	default:
		panic("machine: operandTouch of unknown kind")
	}
	return ins, out
}

type operandBytes struct {
	id    string
	bytes float64
}

// HotFraction returns the fraction of the call's input bytes currently
// resident in the cache, in [0, 1].
func (s *CacheState) HotFraction(c kernels.Call) float64 {
	ins, _ := operandTouch(c)
	var need, have float64
	for _, ob := range ins {
		need += ob.bytes
		if res, ok := s.hot[ob.id]; ok {
			have += min(res, ob.bytes)
		}
	}
	if need == 0 {
		return 0
	}
	return have / need
}

// Record updates the cache state after a call executes: the output is
// most recently used, then the inputs, then prior content; entries beyond
// capacity are evicted.
func (s *CacheState) Record(c kernels.Call) {
	ins, out := operandTouch(c)
	touched := make([]operandBytes, 0, len(ins)+1)
	touched = append(touched, out)
	touched = append(touched, ins...)

	// Rebuild the LRU list: touched operands first, then survivors.
	newEntries := make([]string, 0, len(s.entries)+len(touched))
	newHot := make(map[string]float64, len(touched)+len(s.entries))
	var used float64
	add := func(id string, bytes float64) {
		if _, seen := newHot[id]; seen {
			return
		}
		if used >= s.capacity {
			return
		}
		res := min(bytes, s.capacity-used)
		newHot[id] = res
		newEntries = append(newEntries, id)
		used += res
	}
	for _, ob := range touched {
		add(ob.id, ob.bytes)
	}
	for _, id := range s.entries {
		add(id, s.hot[id])
	}
	s.entries = newEntries
	s.hot = newHot
}
