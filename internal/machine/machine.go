// Package machine implements the simulated computer on which the
// paper-scale experiments run.
//
// The paper measured on a 10-core Intel Xeon Silver 4210 with MKL. That
// hardware (and MKL) is not available here, so this package substitutes a
// deterministic analytic model that reproduces the ingredients the paper
// identifies as the causes of anomalies:
//
//   - Kernel efficiency ramps with operand size and plateaus (Figure 1),
//     with per-kernel shapes: GEMM above SYRK above SYMM at small and
//     medium sizes.
//   - Shape dependence: skinny problem dimensions lower efficiency, and
//     memory-bound shapes are limited by bandwidth (roofline).
//   - Abrupt efficiency transitions caused by internal variant switches
//     in the library (the paper's "abrupt change" transition type).
//   - Inter-kernel cache effects: operands left in the last-level cache
//     by one call speed up the next (studied in Experiment 3).
//   - Measurement noise, tamed by median-of-repetitions.
//
// The model is deterministic: a given configuration, call, repetition
// index, and cache state always produce the same time, so every figure
// and table in EXPERIMENTS.md regenerates exactly.
package machine

import (
	"fmt"

	"lamb/internal/kernels"
	"lamb/internal/xrand"
)

// Step is a variant-switch discontinuity: when the selected quantity is
// strictly below Threshold, efficiency is multiplied by Factor. These
// model a BLAS library switching micro-kernels or parallelisation
// strategies at internal size thresholds.
type Step struct {
	// Dim selects the quantity compared against Threshold: 'm', 'n', or
	// 'k' for the call dimensions, or 'w' for the working set in units
	// of LLC capacity.
	Dim byte
	// Threshold is in elements for 'm'/'n'/'k', in LLC fractions for 'w'.
	Threshold float64
	// Factor multiplies efficiency when the quantity is below Threshold.
	Factor float64
}

// KernelModel holds the efficiency surface of one kernel kind.
//
// The noise-free cold efficiency is
//
//	eff = EPeak · r(M/HalfM) · r(N/HalfN) · r(K/HalfK) · steps · wiggle
//
// with r(x) = x/(1+x) (a saturating ramp; a zero Half disables the ramp
// for that dimension). Cold time is then the roofline combination of
// flops/(peak·eff) and bytes/bandwidth.
type KernelModel struct {
	// EPeak is the asymptotic efficiency in (0, 1].
	EPeak float64
	// HalfM, HalfN, HalfK are the ramp half-sizes per dimension; a ramp
	// reaches 50% of its plateau when the dimension equals its half-size.
	// Zero disables the ramp for that dimension.
	HalfM, HalfN, HalfK float64
	// Steps are variant-switch discontinuities (applied multiplicatively).
	Steps []Step
	// WiggleAmp is the amplitude of deterministic per-shape efficiency
	// texture (cache-alignment effects), in [0, 1).
	WiggleAmp float64
	// WarmMax is the maximum fraction of time saved when all inputs are
	// resident in the simulated LLC.
	WarmMax float64
	// PartitionDim selects the dimension the library partitions across
	// threads ('m', 'n', or 0 for none): the source of the thread-tile
	// quantization sawtooth (see Config.Threads/TileGranularity).
	PartitionDim byte
	// BenchBiasMean is a systematic relative shift of this kernel's
	// isolated benchmark timings versus in-sequence execution. Negative
	// values mean the benchmark flatters the kernel: freshly allocated,
	// well-aligned operands and an empty cache favour kernels with
	// irregular (triangular) access patterns more than GEMM. The shift is
	// scaled by 1−r(M/HalfM), concentrating it at small and medium sizes
	// where layout sensitivity is greatest and fading it at large sizes
	// (Figure 1's ordering holds at the plateau). A shift common to all
	// kernels cancels out of GEMM-only algorithm rankings but skews
	// mixed-kernel comparisons — one reason the paper's AAᵀB prediction
	// recall (75%) trails the chain's (92%).
	BenchBiasMean float64
}

// Config describes the simulated computer.
type Config struct {
	// Name identifies the configuration in reports.
	Name string
	// PeakFlops is the aggregate double-precision peak in FLOP/s.
	PeakFlops float64
	// MemBandwidth is the sustained memory bandwidth in bytes/s.
	MemBandwidth float64
	// LLCBytes is the last-level cache capacity in bytes.
	LLCBytes float64
	// CallOverhead is a fixed per-call cost in seconds (dispatch,
	// threading fork/join).
	CallOverhead float64
	// Noise is the relative magnitude of per-repetition timing jitter.
	Noise float64
	// Seed salts the deterministic noise stream.
	Seed uint64
	// Threads is the number of worker threads the modelled library uses;
	// with TileGranularity it determines the partition-imbalance
	// sawtooth: the partitioned dimension D is processed in per-thread
	// chunks of ceil(D/(Threads·TileGranularity))·TileGranularity
	// elements, and the ceil-quantization of the busiest thread's load
	// lowers efficiency in a sawtooth of period Threads·TileGranularity
	// whose amplitude decays as D grows. This is the mid-size shape
	// texture real multithreaded BLAS libraries exhibit, and a major
	// source of matrix-chain anomalies.
	Threads int
	// TileGranularity is the library's scheduling granularity in columns
	// (or rows) per tile.
	TileGranularity int
	// ImbalanceDamping scales the quantization loss (0 disables, 1 is
	// the full ceil penalty); the cap on the raw imbalance ratio is 1.5.
	ImbalanceDamping float64
	// WarmAIRef is the arithmetic intensity (FLOPs/byte) at which the
	// warm-input bonus halves. Values well above the roofline balance
	// point model warm-cache advantages beyond raw bandwidth (latency,
	// TLB, prefetch). Zero falls back to PeakFlops/MemBandwidth.
	WarmAIRef float64
	// BenchBias is the relative magnitude of the systematic, per-call
	// offset between isolated benchmark timings and in-sequence
	// execution. Real benchmark campaigns run in a different memory and
	// system state (fresh allocations, different alignment, different
	// frequency history), producing persistent per-shape deviations that
	// median-of-repetitions cannot remove. This is a major reason the
	// paper's Experiment 3 predicts only 92% (chain) and 75% (AAᵀB) of
	// anomalies rather than all of them.
	BenchBias float64
	// DisableVariantSteps removes all Step discontinuities and the
	// partition-imbalance sawtooth (ablation: smooth efficiency
	// surfaces).
	DisableVariantSteps bool
	// DisableWarmCache removes inter-kernel cache effects (ablation).
	DisableWarmCache bool
	// Kernels holds the per-kind efficiency surfaces, indexed by
	// kernels.Kind.
	Kernels [kernels.NumKinds]KernelModel
}

// Default returns the calibrated configuration used throughout the
// repository: a 10-core Xeon-class machine (3.2·10¹¹ FLOP/s peak, 80 GB/s
// bandwidth, 13.75 MiB LLC) with kernel surfaces tuned so that the
// qualitative shapes of the paper's Figure 1 and the experiment headlines
// (rare chain anomalies, abundant AAᵀB anomalies) are reproduced.
func Default() Config {
	cfg := Config{
		Name:             "sim-xeon4210",
		PeakFlops:        320e9,
		MemBandwidth:     80e9,
		LLCBytes:         13.75 * 1024 * 1024,
		CallOverhead:     2e-6,
		Noise:            0.015,
		Seed:             0x1a2b,
		Threads:          10,
		TileGranularity:  8,
		ImbalanceDamping: 0.7,
		WarmAIRef:        25,
		BenchBias:        0.02,
	}
	cfg.Kernels[kernels.Gemm] = KernelModel{
		EPeak: 0.93,
		HalfM: 35, HalfN: 35, HalfK: 45,
		Steps: []Step{
			{Dim: 'k', Threshold: 48, Factor: 0.78},
			{Dim: 'k', Threshold: 192, Factor: 0.93},
			{Dim: 'm', Threshold: 24, Factor: 0.84},
			{Dim: 'n', Threshold: 24, Factor: 0.84},
			{Dim: 'm', Threshold: 96, Factor: 0.95},
			{Dim: 'n', Threshold: 96, Factor: 0.95},
			{Dim: 'w', Threshold: 1, Factor: 1.0 / 0.97}, // small sets fit LLC
		},
		WiggleAmp:    0.02,
		WarmMax:      0.36,
		PartitionDim: 'n',
	}
	cfg.Kernels[kernels.Syrk] = KernelModel{
		EPeak: 0.85,
		HalfM: 260, HalfN: 0, HalfK: 60,
		Steps: []Step{
			{Dim: 'k', Threshold: 64, Factor: 0.80},
			{Dim: 'k', Threshold: 256, Factor: 0.95},
			{Dim: 'm', Threshold: 128, Factor: 0.78},
			{Dim: 'm', Threshold: 512, Factor: 0.92},
		},
		WiggleAmp:     0.025,
		WarmMax:       0.25,
		PartitionDim:  'm',
		BenchBiasMean: -0.30,
	}
	cfg.Kernels[kernels.Symm] = KernelModel{
		EPeak: 0.80,
		HalfM: 150, HalfN: 60, HalfK: 0,
		Steps: []Step{
			{Dim: 'n', Threshold: 32, Factor: 0.80},
			{Dim: 'n', Threshold: 256, Factor: 0.95},
			{Dim: 'm', Threshold: 96, Factor: 0.85},
		},
		WiggleAmp:     0.025,
		WarmMax:       0.30,
		PartitionDim:  'm',
		BenchBiasMean: -0.30,
	}
	cfg.Kernels[kernels.Tri2Full] = KernelModel{
		// Pure data movement; EPeak unused for time (bandwidth-bound) but
		// kept at 1 so Efficiency() is well defined (always 0: no flops).
		EPeak:   1,
		WarmMax: 0.90,
	}
	cfg.Kernels[kernels.Potrf] = KernelModel{
		// Cholesky: the panel factorisation serialises, so the plateau is
		// well below GEMM's and the ramp is slow; parallelism does not
		// partition cleanly (no sawtooth dimension).
		EPeak: 0.55,
		HalfM: 300, HalfN: 0, HalfK: 0,
		Steps: []Step{
			{Dim: 'm', Threshold: 128, Factor: 0.80},
			{Dim: 'm', Threshold: 512, Factor: 0.93},
		},
		WiggleAmp:     0.02,
		WarmMax:       0.35,
		BenchBiasMean: -0.12,
	}
	cfg.Kernels[kernels.Trsm] = KernelModel{
		// Triangular solve with many right-hand sides: GEMM-like in N,
		// dependency-limited in M.
		EPeak: 0.75,
		HalfM: 120, HalfN: 50, HalfK: 0,
		Steps: []Step{
			{Dim: 'n', Threshold: 32, Factor: 0.80},
			{Dim: 'm', Threshold: 96, Factor: 0.90},
		},
		WiggleAmp:     0.025,
		WarmMax:       0.40,
		PartitionDim:  'n',
		BenchBiasMean: -0.15,
	}
	cfg.Kernels[kernels.AddSym] = KernelModel{
		// Triangle accumulation: pure streaming, bandwidth-bound via the
		// roofline (AI ~ 1/24 flops per byte).
		EPeak:   1,
		WarmMax: 0.70,
	}
	return cfg
}

// DefaultAlt returns a second calibrated configuration modelling a
// different machine class (wider, more bandwidth, more threads, different
// library generation with different variant thresholds). The paper's
// conclusion argues that changing the setup moves anomalies around —
// "the disappearance of some anomalies and the surge of new ones" — and
// this configuration exists to test exactly that: run the same
// experiment on Default() and DefaultAlt() and compare anomaly sets.
func DefaultAlt() Config {
	cfg := Default()
	cfg.Name = "sim-alt-16core"
	cfg.PeakFlops = 500e9
	cfg.MemBandwidth = 140e9
	cfg.LLCBytes = 32 * 1024 * 1024
	cfg.Threads = 16
	cfg.Seed = 0x7e57
	// A different BLAS generation: higher GEMM plateau, different variant
	// thresholds, faster SYRK ramp, slower SYMM.
	g := &cfg.Kernels[kernels.Gemm]
	g.EPeak = 0.95
	g.HalfK = 36
	g.Steps = []Step{
		{Dim: 'k', Threshold: 64, Factor: 0.80},
		{Dim: 'k', Threshold: 256, Factor: 0.95},
		{Dim: 'm', Threshold: 32, Factor: 0.85},
		{Dim: 'n', Threshold: 32, Factor: 0.85},
		{Dim: 'n', Threshold: 160, Factor: 0.96},
	}
	sy := &cfg.Kernels[kernels.Syrk]
	sy.EPeak = 0.88
	sy.HalfM = 180
	sy.Steps = []Step{
		{Dim: 'k', Threshold: 96, Factor: 0.82},
		{Dim: 'm', Threshold: 160, Factor: 0.82},
	}
	sm := &cfg.Kernels[kernels.Symm]
	sm.EPeak = 0.76
	sm.HalfM = 190
	return cfg
}

// Machine evaluates call times under a Config.
type Machine struct {
	cfg Config
}

// New returns a Machine for the given configuration. It panics on
// non-positive peak, bandwidth, or LLC capacity.
func New(cfg Config) *Machine {
	if cfg.PeakFlops <= 0 || cfg.MemBandwidth <= 0 || cfg.LLCBytes <= 0 {
		panic(fmt.Sprintf("machine: invalid config %+v", cfg))
	}
	return &Machine{cfg: cfg}
}

// NewDefault returns a Machine with the Default configuration.
func NewDefault() *Machine { return New(Default()) }

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Peak returns the machine's peak FLOP rate.
func (m *Machine) Peak() float64 { return m.cfg.PeakFlops }

// Name returns the configuration name.
func (m *Machine) Name() string { return m.cfg.Name }

// ramp is the saturating factor r(x) = x/(1+x); half == 0 disables it.
func ramp(dim int, half float64) float64 {
	if half <= 0 {
		return 1
	}
	x := float64(dim) / half
	return x / (1 + x)
}

// efficiency returns the noise-free cold compute efficiency of a call in
// (0, 1], before the roofline bandwidth bound.
func (m *Machine) efficiency(c kernels.Call) float64 {
	km := &m.cfg.Kernels[c.Kind]
	eff := km.EPeak * ramp(c.M, km.HalfM) * ramp(c.N, km.HalfN) * ramp(c.K, km.HalfK)
	if !m.cfg.DisableVariantSteps {
		eff *= m.partitionFactor(km, c)
		ws := c.Bytes() / m.cfg.LLCBytes
		for _, s := range km.Steps {
			var q float64
			switch s.Dim {
			case 'm':
				q = float64(c.M)
			case 'n':
				q = float64(c.N)
			case 'k':
				q = float64(c.K)
			case 'w':
				q = ws
			default:
				panic(fmt.Sprintf("machine: unknown step dim %q", s.Dim))
			}
			if q < s.Threshold {
				eff *= s.Factor
			}
		}
	}
	if km.WiggleAmp > 0 {
		h := xrand.Hash64(uint64(c.Kind), uint64(c.M), uint64(c.N), uint64(c.K))
		eff *= 1 - km.WiggleAmp*xrand.UnitFromHash(h)
	}
	if eff > 1 {
		eff = 1
	}
	return eff
}

// partitionFactor models thread-tile quantization: the partitioned
// dimension is processed in per-thread chunks rounded up to the tile
// granularity; the busiest thread's rounded load over the ideal load is
// the imbalance ratio q ≥ 1. Efficiency is divided by 1+damping·(q−1),
// with q capped at 1.5. The factor is 1 when the dimension is too small
// to occupy every thread (the size ramps already cover that regime).
func (m *Machine) partitionFactor(km *KernelModel, c kernels.Call) float64 {
	if km.PartitionDim == 0 || m.cfg.Threads <= 1 || m.cfg.TileGranularity <= 0 || m.cfg.ImbalanceDamping <= 0 {
		return 1
	}
	var d int
	switch km.PartitionDim {
	case 'm':
		d = c.M
	case 'n':
		d = c.N
	default:
		panic(fmt.Sprintf("machine: unknown partition dim %q", km.PartitionDim))
	}
	chunk := m.cfg.Threads * m.cfg.TileGranularity
	if d < chunk {
		return 1
	}
	g := float64(m.cfg.TileGranularity)
	load := float64((d+chunk-1)/chunk) * g // busiest thread's tiles × granularity
	ideal := float64(d) / float64(m.cfg.Threads)
	q := load / ideal
	if q > 1.5 {
		q = 1.5
	}
	if q < 1 {
		q = 1
	}
	return 1 / (1 + m.cfg.ImbalanceDamping*(q-1))
}

// ColdTime returns the noise-free execution time of a call with a cold
// cache: the roofline combination of compute time at the modelled
// efficiency and memory time at the sustained bandwidth, plus the fixed
// call overhead.
func (m *Machine) ColdTime(c kernels.Call) float64 {
	memTime := c.Bytes() / m.cfg.MemBandwidth
	flops := c.Flops()
	if flops == 0 {
		// Pure data movement (Tri2Full).
		return m.cfg.CallOverhead + memTime
	}
	compTime := flops / (m.cfg.PeakFlops * m.efficiency(c))
	return m.cfg.CallOverhead + max(compTime, memTime)
}

// Efficiency returns the call's noise-free cold efficiency as the paper
// defines it: attributed FLOPs divided by (time × peak). For memory-bound
// shapes this is lower than the compute efficiency surface.
func (m *Machine) Efficiency(c kernels.Call) float64 {
	t := m.ColdTime(c)
	if t <= 0 {
		return 0
	}
	return c.Flops() / (t * m.cfg.PeakFlops)
}

// WarmBonus returns the fraction of time saved when hotFrac of the
// call's input bytes are LLC-resident. The bonus shrinks with arithmetic
// intensity: compute-bound calls gain little from warm inputs.
func (m *Machine) WarmBonus(c kernels.Call, hotFrac float64) float64 {
	if m.cfg.DisableWarmCache || hotFrac <= 0 {
		return 0
	}
	if hotFrac > 1 {
		hotFrac = 1
	}
	km := &m.cfg.Kernels[c.Kind]
	// Intensity at which half the maximum bonus remains.
	ref := m.cfg.WarmAIRef
	if ref <= 0 {
		ref = m.cfg.PeakFlops / m.cfg.MemBandwidth
	}
	ai := c.Intensity()
	return km.WarmMax * hotFrac * ref / (ai + ref)
}

// TimeBench returns the modelled time an *isolated benchmark campaign*
// would record for the call at repetition rep: the cold time with an
// independent noise realisation plus the persistent per-call benchmark
// bias (see Config.BenchBias).
func (m *Machine) TimeBench(c kernels.Call, rep uint64) float64 {
	t := m.ColdTime(c)
	km := &m.cfg.Kernels[c.Kind]
	bias := km.BenchBiasMean * (1 - ramp(c.M, km.HalfM))
	if m.cfg.BenchBias > 0 {
		h := xrand.Hash64(m.cfg.Seed, 0xb1a5, uint64(c.Kind), uint64(c.M), uint64(c.N), uint64(c.K))
		bias += m.cfg.BenchBias * (2*xrand.UnitFromHash(h) - 1)
	}
	t *= 1 + bias
	if m.cfg.Noise > 0 {
		h := xrand.Hash64(m.cfg.Seed, 0xbe7c, uint64(c.Kind), uint64(c.M), uint64(c.N), uint64(c.K), rep)
		t *= 1 + m.cfg.Noise*xrand.UnitFromHash(h)
	}
	return t
}

// Time returns the modelled execution time of a call for repetition rep,
// given that hotFrac of its input bytes are LLC-resident. Noise is a
// deterministic function of the call shape, rep, and the config seed.
func (m *Machine) Time(c kernels.Call, hotFrac float64, rep uint64) float64 {
	t := m.ColdTime(c) * (1 - m.WarmBonus(c, hotFrac))
	if m.cfg.Noise > 0 {
		h := xrand.Hash64(m.cfg.Seed, uint64(c.Kind), uint64(c.M), uint64(c.N), uint64(c.K), rep)
		t *= 1 + m.cfg.Noise*xrand.UnitFromHash(h)
	}
	return t
}
