package machine

import (
	"testing"

	"lamb/internal/kernels"
)

// Tests for the extended kernel surfaces (POTRF, TRSM, AddSym), the
// benchmark-bias model, the partition sawtooth, and the alternative
// machine configuration.

func TestExtendedKernelOrdering(t *testing.T) {
	// GEMM must dominate POTRF and TRSM per attributed FLOP at equal
	// square sizes (factorisations serialise; solves have dependencies).
	m := NewDefault()
	for _, s := range []int{100, 300, 800} {
		g := m.Efficiency(kernels.NewGemm(s, s, s, "A", "B", "C", false, false))
		p := m.Efficiency(kernels.NewPotrf(s, "S"))
		tr := m.Efficiency(kernels.NewTrsm(s, s, "L", "B", false))
		if g <= p || g <= tr {
			t.Fatalf("size %d: gemm %.3f should dominate potrf %.3f and trsm %.3f", s, g, p, tr)
		}
	}
}

func TestAddSymIsBandwidthBound(t *testing.T) {
	m := NewDefault()
	c := kernels.NewAddSym(800, "S", "R")
	want := m.Config().CallOverhead + c.Bytes()/m.Config().MemBandwidth
	if got := m.ColdTime(c); got != want {
		// AddSym has AI ≈ 1/24 flops/byte: the roofline memory term wins.
		t.Fatalf("addsym cold time %.3g, want bandwidth-bound %.3g", got, want)
	}
}

func TestNewKindsHaveFiniteTimes(t *testing.T) {
	m := NewDefault()
	calls := []kernels.Call{
		kernels.NewPotrf(500, "S"),
		kernels.NewTrsm(500, 100, "L", "B", false),
		kernels.NewTrsm(500, 100, "L", "B", true),
		kernels.NewAddSym(500, "S", "R"),
	}
	for _, c := range calls {
		if ct := m.ColdTime(c); !(ct > 0) || ct > 1 {
			t.Fatalf("%s cold time %v", c, ct)
		}
		if tb := m.TimeBench(c, 0); !(tb > 0) {
			t.Fatalf("%s bench time %v", c, tb)
		}
	}
}

func TestTimeBenchBiasIsPersistent(t *testing.T) {
	// The per-call benchmark bias must be identical across repetitions
	// (medians cannot remove it) but vary between call shapes.
	m := NewDefault()
	c := kernels.NewSyrk(150, 300, "A", "C")
	cold := m.ColdTime(c)
	ratios := map[float64]bool{}
	for rep := uint64(0); rep < 6; rep++ {
		tb := m.TimeBench(c, rep)
		// Strip the rep noise bound: all reps must sit within the noise
		// band around the *biased* time, i.e. strictly below cold time
		// (the SYRK bias mean is negative and dominates the noise).
		if tb >= cold {
			t.Fatalf("rep %d: biased bench time %.3g not below cold %.3g", rep, tb, cold)
		}
		ratios[tb/cold] = true
	}
	if len(ratios) < 3 {
		t.Fatal("rep noise should still vary bench times")
	}
}

func TestBenchBiasFadesWithSize(t *testing.T) {
	// The SYRK bench bias is scaled by 1−r(M/HalfM): strong at small M,
	// negligible at the plateau.
	m := NewDefault()
	rel := func(mdim int) float64 {
		c := kernels.NewSyrk(mdim, 400, "A", "C")
		cfg := m.Config()
		cfg.Noise = 0
		nm := New(cfg)
		return nm.TimeBench(c, 0) / nm.ColdTime(c)
	}
	small := rel(80)
	large := rel(2400)
	if small >= large {
		t.Fatalf("bias should fade with size: small ratio %.3f, large %.3f", small, large)
	}
	if large < 0.95 {
		t.Fatalf("large-size bias ratio %.3f should approach 1", large)
	}
}

func TestPartitionSawtooth(t *testing.T) {
	// Efficiency dips just above chunk multiples (period Threads×Tile =
	// 80 on the default machine) and recovers at the next multiple.
	m := NewDefault()
	atMultiple := m.Efficiency(kernels.NewGemm(600, 480, 600, "A", "B", "C", false, false))
	justAbove := m.Efficiency(kernels.NewGemm(600, 490, 600, "A", "B", "C", false, false))
	if justAbove >= atMultiple {
		t.Fatalf("sawtooth missing: n=490 eff %.4f should dip below n=480 eff %.4f",
			justAbove, atMultiple)
	}
}

func TestPartitionFactorSmallDimsExempt(t *testing.T) {
	// Below one chunk the ramps govern; the sawtooth must not apply.
	cfg := Default()
	cfg.Noise = 0
	m := New(cfg)
	km := &cfg.Kernels[kernels.Gemm]
	if f := m.partitionFactor(km, kernels.NewGemm(100, 60, 100, "A", "B", "C", false, false)); f != 1 {
		t.Fatalf("partition factor %v for sub-chunk dim, want 1", f)
	}
}

func TestDefaultAltDiffersMeaningfully(t *testing.T) {
	a := Default()
	b := DefaultAlt()
	if a.Name == b.Name {
		t.Fatal("alt config must be distinguishable")
	}
	if b.PeakFlops <= a.PeakFlops || b.Threads <= a.Threads {
		t.Fatal("alt machine should be wider")
	}
	ma, mb := New(a), New(b)
	// Same call, different efficiency surfaces.
	c := kernels.NewSyrk(200, 300, "A", "C")
	if ma.Efficiency(c) == mb.Efficiency(c) {
		t.Fatal("alt machine should have a different SYRK surface")
	}
	// Both remain valid machines.
	if mb.ColdTime(c) <= 0 {
		t.Fatal("alt machine produced non-positive time")
	}
}

func TestAltMachineMovesAnomalies(t *testing.T) {
	// A shape that favours the GEMM path on the default machine may not
	// on the alt machine; at minimum, the relative SYRK/GEMM gap differs.
	ma, mb := NewDefault(), New(DefaultAlt())
	syrk := kernels.NewSyrk(120, 500, "A", "C")
	gemm := kernels.NewGemm(120, 120, 500, "A", "At", "C", false, true)
	gapA := ma.Efficiency(gemm) / ma.Efficiency(syrk)
	gapB := mb.Efficiency(gemm) / mb.Efficiency(syrk)
	if gapA == gapB {
		t.Fatal("kernel gaps identical across machines")
	}
}
