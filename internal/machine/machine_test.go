package machine

import (
	"testing"
	"testing/quick"

	"lamb/internal/kernels"
	"lamb/internal/xrand"
)

func gemmCall(m, n, k int) kernels.Call {
	return kernels.NewGemm(m, n, k, "A", "B", "C", false, false)
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with zero peak did not panic")
		}
	}()
	New(Config{})
}

func TestDeterminism(t *testing.T) {
	m1, m2 := NewDefault(), NewDefault()
	c := gemmCall(300, 400, 500)
	for rep := uint64(0); rep < 5; rep++ {
		if m1.Time(c, 0.3, rep) != m2.Time(c, 0.3, rep) {
			t.Fatal("identical machines disagree")
		}
	}
}

func TestColdTimePositiveAndFinite(t *testing.T) {
	m := NewDefault()
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		dims := [3]int{rng.IntRange(1, 3000), rng.IntRange(1, 3000), rng.IntRange(1, 3000)}
		calls := []kernels.Call{
			gemmCall(dims[0], dims[1], dims[2]),
			kernels.NewSyrk(dims[0], dims[2], "A", "C"),
			kernels.NewSymm(dims[0], dims[1], "A", "B", "C"),
			kernels.NewTri2Full(dims[0], "C"),
		}
		for _, c := range calls {
			ct := m.ColdTime(c)
			if !(ct > 0) || ct > 1e6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEfficiencyInUnitInterval(t *testing.T) {
	m := NewDefault()
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		c := gemmCall(rng.IntRange(1, 3000), rng.IntRange(1, 3000), rng.IntRange(1, 3000))
		e := m.Efficiency(c)
		return e >= 0 && e <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEfficiencyRampsWithSquareSize(t *testing.T) {
	// Figure 1 shape: efficiency grows along square sizes and plateaus.
	m := NewDefault()
	prevGemm := 0.0
	for _, s := range []int{100, 300, 600, 1200, 2400} {
		e := m.Efficiency(gemmCall(s, s, s))
		if e < prevGemm-0.03 { // allow small wiggle
			t.Fatalf("gemm efficiency not ramping: size %d eff %.3f < prev %.3f", s, e, prevGemm)
		}
		prevGemm = e
	}
	if prevGemm < 0.75 {
		t.Fatalf("gemm plateau %.3f, want >= 0.75", prevGemm)
	}
}

func TestKernelEfficiencyOrdering(t *testing.T) {
	// Paper Figure 1: gemm above syrk and symm at small/medium square
	// sizes.
	m := NewDefault()
	for _, s := range []int{100, 200, 400, 800} {
		g := m.Efficiency(gemmCall(s, s, s))
		sy := m.Efficiency(kernels.NewSyrk(s, s, "A", "C"))
		sm := m.Efficiency(kernels.NewSymm(s, s, "A", "B", "C"))
		if g <= sy || g <= sm {
			t.Fatalf("size %d: gemm %.3f should exceed syrk %.3f and symm %.3f", s, g, sy, sm)
		}
	}
}

func TestSkinnyShapesLessEfficient(t *testing.T) {
	m := NewDefault()
	square := m.Efficiency(gemmCall(500, 500, 500))
	skinnyK := m.Efficiency(gemmCall(500, 500, 20))
	skinnyN := m.Efficiency(gemmCall(500, 20, 500))
	if skinnyK >= square || skinnyN >= square {
		t.Fatalf("skinny shapes should be less efficient: square %.3f, k-skinny %.3f, n-skinny %.3f",
			square, skinnyK, skinnyN)
	}
}

func TestVariantStepDiscontinuity(t *testing.T) {
	// Crossing the k=48 threshold must produce an abrupt efficiency jump
	// (the paper's "abrupt change" transition type).
	m := NewDefault()
	below := m.Efficiency(gemmCall(500, 500, 47))
	above := m.Efficiency(gemmCall(500, 500, 48))
	if above <= below*1.05 {
		t.Fatalf("no abrupt jump across k=48: %.4f -> %.4f", below, above)
	}
	// Ablation: with DisableVariantSteps the jump must shrink to ramp level.
	cfg := Default()
	cfg.DisableVariantSteps = true
	sm := New(cfg)
	b2 := sm.Efficiency(gemmCall(500, 500, 47))
	a2 := sm.Efficiency(gemmCall(500, 500, 48))
	if a2/b2 > 1.08 {
		t.Fatalf("smooth config still jumps: %.4f -> %.4f", b2, a2)
	}
}

func TestMemoryBoundShapes(t *testing.T) {
	// A very low-intensity GEMM must be bandwidth-limited: its efficiency
	// (attributed flops over time×peak) must sit well below the compute
	// surface.
	m := NewDefault()
	c := gemmCall(2000, 2000, 2) // AI ≈ 0.5 flops/byte
	e := m.Efficiency(c)
	if e > 0.05 {
		t.Fatalf("memory-bound gemm efficiency %.3f, want tiny", e)
	}
}

func TestWarmBonusBehaviour(t *testing.T) {
	m := NewDefault()
	c := gemmCall(300, 300, 300)
	if m.WarmBonus(c, 0) != 0 {
		t.Fatal("zero hot fraction must give zero bonus")
	}
	b1 := m.WarmBonus(c, 0.5)
	b2 := m.WarmBonus(c, 1.0)
	if !(b2 > b1 && b1 > 0) {
		t.Fatalf("bonus not increasing in hot fraction: %.4f, %.4f", b1, b2)
	}
	if b2 >= 1 {
		t.Fatalf("bonus %.4f must stay below 1", b2)
	}
	// Higher intensity → smaller bonus.
	big := gemmCall(2000, 2000, 2000)
	if m.WarmBonus(big, 1) >= m.WarmBonus(gemmCall(100, 100, 100), 1) {
		t.Fatal("compute-bound call should benefit less from warm inputs")
	}
	// Clamps hotFrac > 1.
	if m.WarmBonus(c, 2) != m.WarmBonus(c, 1) {
		t.Fatal("hotFrac should clamp at 1")
	}
}

func TestWarmCacheAblation(t *testing.T) {
	cfg := Default()
	cfg.DisableWarmCache = true
	m := New(cfg)
	if m.WarmBonus(gemmCall(100, 100, 100), 1) != 0 {
		t.Fatal("DisableWarmCache must zero the bonus")
	}
}

func TestTimeNoiseIsBoundedAndRepDependent(t *testing.T) {
	m := NewDefault()
	c := gemmCall(256, 256, 256)
	cold := m.ColdTime(c)
	seen := map[float64]bool{}
	for rep := uint64(0); rep < 10; rep++ {
		tt := m.Time(c, 0, rep)
		if tt < cold || tt > cold*(1+2*m.Config().Noise) {
			t.Fatalf("rep %d time %.3g outside noise envelope of %.3g", rep, tt, cold)
		}
		seen[tt] = true
	}
	if len(seen) < 5 {
		t.Fatalf("noise should vary across reps, saw %d distinct times", len(seen))
	}
}

func TestWarmTimeFasterThanCold(t *testing.T) {
	m := NewDefault()
	c := gemmCall(200, 200, 200)
	if m.Time(c, 1, 0) >= m.Time(c, 0, 0) {
		t.Fatal("fully warm call should be faster than cold")
	}
}

func TestTri2FullBandwidthBound(t *testing.T) {
	m := NewDefault()
	c := kernels.NewTri2Full(1000, "C")
	want := m.Config().CallOverhead + c.Bytes()/m.Config().MemBandwidth
	if got := m.ColdTime(c); got != want {
		t.Fatalf("tri2full cold time %.3g, want %.3g", got, want)
	}
	if m.Efficiency(c) != 0 {
		t.Fatal("tri2full efficiency must be 0 (no flops)")
	}
}

func TestCacheStateHotFraction(t *testing.T) {
	m := NewDefault()
	cs := m.NewCacheState()
	c1 := kernels.NewGemm(100, 100, 100, "A", "B", "M1", false, false)
	c2 := kernels.NewGemm(100, 100, 100, "M1", "C", "X", false, false)
	if cs.HotFraction(c2) != 0 {
		t.Fatal("cold cache should have zero hot fraction")
	}
	cs.Record(c1)
	hf := cs.HotFraction(c2)
	if hf <= 0 || hf > 1 {
		t.Fatalf("hot fraction after producing M1 = %v, want in (0,1]", hf)
	}
	// M1 and C each are half the input bytes; only M1 is hot... but A and
	// B were also touched by c1 and neither is an input of c2 except M1.
	if hf != 0.5 {
		t.Fatalf("hot fraction = %v, want 0.5 (M1 hot, C cold)", hf)
	}
	cs.Flush()
	if cs.HotFraction(c2) != 0 {
		t.Fatal("flush did not clear the cache")
	}
}

func TestCacheStateEviction(t *testing.T) {
	m := NewDefault()
	cs := m.NewCacheState()
	// One 1500x1500 operand is 18 MB > 13.75 MB LLC: recording a call that
	// touches two such operands must evict the older content entirely.
	big1 := kernels.NewGemm(1500, 1500, 1500, "A", "B", "C", false, false)
	cs.Record(big1)
	// The most recently used operand (the output C) should occupy the
	// cache; A and B should have been truncated/evicted.
	next := kernels.NewGemm(1500, 1500, 1500, "C", "D", "E", false, false)
	hf := cs.HotFraction(next)
	if hf <= 0 {
		t.Fatal("output of previous call should be at least partly hot")
	}
	stale := kernels.NewGemm(1500, 1500, 1500, "A", "B", "F", false, false)
	if got := cs.HotFraction(stale); got > 0.35 {
		t.Fatalf("older operands should be mostly evicted, hot fraction %v", got)
	}
}

func TestCacheStateSmallOperandsAllFit(t *testing.T) {
	m := NewDefault()
	cs := m.NewCacheState()
	c1 := kernels.NewGemm(50, 50, 50, "A", "B", "M1", false, false)
	cs.Record(c1)
	again := kernels.NewGemm(50, 50, 50, "A", "B", "M2", false, false)
	if got := cs.HotFraction(again); got != 1 {
		t.Fatalf("small operands should be fully resident, hot fraction %v", got)
	}
}

func TestEfficiencyMonotoneAcrossKindsProperty(t *testing.T) {
	// Time must be positive and warm time never exceeds cold time.
	m := NewDefault()
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		c := gemmCall(rng.IntRange(1, 1500), rng.IntRange(1, 1500), rng.IntRange(1, 1500))
		hot := rng.Float64()
		rep := rng.Uint64() % 10
		warm := m.Time(c, hot, rep)
		cold := m.Time(c, 0, rep)
		return warm > 0 && warm <= cold
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
