package expr

import (
	"strings"
	"testing"
	"testing/quick"

	"lamb/internal/kernels"
	"lamb/internal/xrand"
)

// chainPaperFlops returns the FLOP counts of the paper's Algorithms 1–6
// for the ABCD chain, straight from §3.2.1.
func chainPaperFlops(d Instance) []float64 {
	d0, d1, d2, d3, d4 := float64(d[0]), float64(d[1]), float64(d[2]), float64(d[3]), float64(d[4])
	return []float64{
		2 * d0 * (d1*d2 + d2*d3 + d3*d4),
		2 * d2 * (d0*d1 + d0*d4 + d3*d4),
		2 * d3 * (d0*d1 + d0*d4 + d1*d2),
		2 * d1 * (d0*d4 + d2*d3 + d3*d4),
		2 * d2 * (d0*d1 + d0*d4 + d3*d4),
		2 * d4 * (d0*d1 + d1*d2 + d2*d3),
	}
}

// aatbPaperFlops returns the FLOP counts of the paper's Algorithms 1–5
// for AAᵀB, straight from §3.2.2.
func aatbPaperFlops(d Instance) []float64 {
	d0, d1, d2 := float64(d[0]), float64(d[1]), float64(d[2])
	return []float64{
		d0 * ((d0+1)*d1 + 2*d0*d2),
		d0 * ((d0+1)*d1 + 2*d0*d2),
		2 * d0 * d0 * (d1 + d2),
		2 * d0 * d0 * (d1 + d2),
		4 * d0 * d1 * d2,
	}
}

func TestChainABCDEnumeratesSixAlgorithms(t *testing.T) {
	c := NewChainABCD()
	inst := Instance{3, 5, 7, 11, 13}
	algs := c.Algorithms(inst)
	if len(algs) != 6 {
		t.Fatalf("got %d algorithms, want 6", len(algs))
	}
	if c.NumAlgorithms() != 6 {
		t.Fatalf("NumAlgorithms = %d, want 6", c.NumAlgorithms())
	}
	for i, a := range algs {
		if a.Index != i+1 {
			t.Errorf("algorithm %d has Index %d", i, a.Index)
		}
		if len(a.Calls) != 3 {
			t.Errorf("algorithm %d has %d calls, want 3", i+1, len(a.Calls))
		}
		if err := a.Validate(); err != nil {
			t.Errorf("algorithm %d invalid: %v", i+1, err)
		}
		for _, call := range a.Calls {
			if call.Kind != kernels.Gemm {
				t.Errorf("chain algorithm %d uses %v, want gemm only", i+1, call.Kind)
			}
		}
	}
}

func TestChainABCDMatchesPaperOrderAndFlops(t *testing.T) {
	// The DFS must visit the paper's Algorithms 1–6 in the paper's order,
	// with the paper's FLOP counts.
	c := NewChainABCD()
	inst := Instance{331, 279, 338, 854, 427} // an anomaly instance from Fig. 8
	algs := c.Algorithms(inst)
	want := chainPaperFlops(inst)
	wantNames := []string{
		"M1:=A·B; M2:=M1·C; X:=M2·D",
		"M1:=A·B; M2:=C·D; X:=M1·M2",
		"M1:=B·C; M2:=A·M1; X:=M2·D",
		"M1:=B·C; M2:=M1·D; X:=A·M2",
		"M1:=C·D; M2:=A·B; X:=M2·M1",
		"M1:=C·D; M2:=B·M1; X:=A·M2",
	}
	for i, a := range algs {
		if a.Flops() != want[i] {
			t.Errorf("algorithm %d flops = %v, want %v", i+1, a.Flops(), want[i])
		}
		if a.Name != wantNames[i] {
			t.Errorf("algorithm %d name = %q, want %q", i+1, a.Name, wantNames[i])
		}
	}
	// Algorithms 2 and 5 share a FLOP count but differ in call order.
	if algs[1].Flops() != algs[4].Flops() {
		t.Error("algorithms 2 and 5 should share a FLOP count")
	}
	if algs[1].Calls[0].MemoKey() == algs[4].Calls[0].MemoKey() {
		t.Error("algorithms 2 and 5 should differ in first call")
	}
}

func TestChainFlopsPropertyAgainstPaperFormulas(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		inst := make(Instance, 5)
		for i := range inst {
			inst[i] = rng.IntRange(1, 500)
		}
		algs := NewChainABCD().Algorithms(inst)
		want := chainPaperFlops(inst)
		for i := range algs {
			if algs[i].Flops() != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestChainGeneralCounts(t *testing.T) {
	for terms, want := range map[int]int{2: 1, 3: 2, 4: 6, 5: 24, 6: 120} {
		c := Chain{Terms: terms}
		inst := make(Instance, terms+1)
		for i := range inst {
			inst[i] = 2 + i
		}
		algs := c.Algorithms(inst)
		if len(algs) != want {
			t.Errorf("chain-%d: %d algorithms, want %d", terms, len(algs), want)
		}
		if c.NumAlgorithms() != want {
			t.Errorf("chain-%d: NumAlgorithms = %d, want %d", terms, c.NumAlgorithms(), want)
		}
		for _, a := range algs {
			if err := a.Validate(); err != nil {
				t.Fatalf("chain-%d %q: %v", terms, a.Name, err)
			}
			if len(a.Calls) != terms-1 {
				t.Fatalf("chain-%d %q has %d calls", terms, a.Name, len(a.Calls))
			}
		}
	}
}

func TestChainAlgorithmNamesDistinct(t *testing.T) {
	algs := Chain{Terms: 5}.Algorithms(Instance{2, 3, 4, 5, 6, 7})
	seen := map[string]bool{}
	for _, a := range algs {
		if seen[a.Name] {
			t.Fatalf("duplicate algorithm name %q", a.Name)
		}
		seen[a.Name] = true
	}
}

func TestMinFlopsParenthesisationClassic(t *testing.T) {
	// CLRS example: dims (30,35,15,5,10,20,25) has optimum 15125 mults →
	// 30250 FLOPs at 2 flops per multiply-add.
	flops, tree := MinFlopsParenthesisation([]int{30, 35, 15, 5, 10, 20, 25})
	if flops != 2*15125 {
		t.Fatalf("DP optimum = %v, want %v", flops, 2*15125)
	}
	if tree != "((A(BC))((DE)F))" {
		t.Fatalf("DP tree = %q", tree)
	}
}

func TestDPMatchesEnumeratedMinimumProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		terms := rng.IntRange(2, 6)
		dims := make([]int, terms+1)
		inst := make(Instance, terms+1)
		for i := range dims {
			dims[i] = rng.IntRange(1, 120)
			inst[i] = dims[i]
		}
		algs := Chain{Terms: terms}.Algorithms(inst)
		best := algs[0].Flops()
		for _, a := range algs[1:] {
			if f := a.Flops(); f < best {
				best = f
			}
		}
		dp, _ := MinFlopsParenthesisation(dims)
		return dp == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAATBEnumeratesFiveAlgorithms(t *testing.T) {
	e := NewAATB()
	inst := Instance{80, 514, 768} // an anomaly instance from Fig. 11
	algs := e.Algorithms(inst)
	if len(algs) != 5 {
		t.Fatalf("got %d algorithms, want 5", len(algs))
	}
	want := aatbPaperFlops(inst)
	for i, a := range algs {
		if err := a.Validate(); err != nil {
			t.Errorf("algorithm %d invalid: %v", i+1, err)
		}
		if a.Flops() != want[i] {
			t.Errorf("algorithm %d flops = %v, want %v", i+1, a.Flops(), want[i])
		}
	}
	// Kernel usage per the paper's Figure 5.
	kindsOf := func(a Algorithm) string {
		var parts []string
		for _, c := range a.Calls {
			parts = append(parts, c.Kind.String())
		}
		return strings.Join(parts, "+")
	}
	wantKinds := []string{
		"syrk+symm",
		"syrk+tri2full+gemm",
		"gemm+symm",
		"gemm+gemm",
		"gemm+gemm",
	}
	for i, a := range algs {
		if kindsOf(a) != wantKinds[i] {
			t.Errorf("algorithm %d kernels = %s, want %s", i+1, kindsOf(a), wantKinds[i])
		}
	}
}

func TestAATBFlopsPairsAndOrdering(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		// d0 ≥ 2: at d0 = 1 the SYRK and GEMM counts for A·Aᵀ coincide.
		inst := Instance{rng.IntRange(2, 800), rng.IntRange(1, 800), rng.IntRange(1, 800)}
		algs := NewAATB().Algorithms(inst)
		// 1 and 2 tie; 3 and 4 tie; 1/2 strictly cheaper than 3/4.
		if algs[0].Flops() != algs[1].Flops() || algs[2].Flops() != algs[3].Flops() {
			return false
		}
		return algs[0].Flops() < algs[2].Flops()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAATBAlg5TransFlags(t *testing.T) {
	algs := NewAATB().Algorithms(Instance{10, 20, 30})
	a5 := algs[4]
	if !a5.Calls[0].TransA || a5.Calls[0].TransB {
		t.Fatalf("alg 5 first call should be Aᵀ·B, got %v", a5.Calls[0])
	}
	if a5.Calls[0].M != 20 || a5.Calls[0].N != 30 || a5.Calls[0].K != 10 {
		t.Fatalf("alg 5 first call dims %v", a5.Calls[0])
	}
	a3 := algs[2]
	if a3.Calls[0].TransA || !a3.Calls[0].TransB {
		t.Fatalf("alg 3 first call should be A·Aᵀ, got %v", a3.Calls[0])
	}
}

func TestValidateRejectsBadInstances(t *testing.T) {
	if err := NewChainABCD().Validate(Instance{1, 2, 3}); err == nil {
		t.Error("short chain instance accepted")
	}
	if err := NewChainABCD().Validate(Instance{1, 2, 3, 0, 5}); err == nil {
		t.Error("zero dimension accepted")
	}
	if err := NewAATB().Validate(Instance{1, 2, 3, 4}); err == nil {
		t.Error("long AATB instance accepted")
	}
	if err := (Chain{Terms: 1}).Validate(Instance{1, 2}); err == nil {
		t.Error("1-term chain accepted")
	}
	if err := (Chain{Terms: 27}).Validate(make(Instance, 28)); err == nil {
		t.Error("27-term chain accepted (naming limit)")
	}
}

func TestAlgorithmValidateCatchesCorruption(t *testing.T) {
	algs := NewAATB().Algorithms(Instance{4, 5, 6})
	a := algs[0]
	a.Calls[0].Out = "nowhere"
	if err := a.Validate(); err == nil {
		t.Error("unknown operand not caught")
	}
	b := NewAATB().Algorithms(Instance{4, 5, 6})[0]
	b.Shapes["M1"] = Shape{Rows: 99, Cols: 99}
	if err := b.Validate(); err == nil {
		t.Error("shape mismatch not caught")
	}
	var empty Algorithm
	if err := empty.Validate(); err == nil {
		t.Error("empty algorithm not caught")
	}
}

func TestInstanceStringAndClone(t *testing.T) {
	inst := Instance{1, 2, 3}
	if inst.String() != "(1,2,3)" {
		t.Fatalf("String = %q", inst.String())
	}
	c := inst.Clone()
	c[0] = 99
	if inst[0] == 99 {
		t.Fatal("Clone shares storage")
	}
}

func TestBoxSampleAndContains(t *testing.T) {
	b := PaperBox(3)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(21)
	for i := 0; i < 200; i++ {
		inst := b.Sample(rng)
		if !b.Contains(inst) {
			t.Fatalf("sample %v outside box", inst)
		}
	}
	if b.Contains(Instance{19, 30, 40}) || b.Contains(Instance{30, 30, 1201}) {
		t.Fatal("Contains accepted out-of-box instance")
	}
	if b.Contains(Instance{30, 30}) {
		t.Fatal("Contains accepted wrong arity")
	}
}

func TestBoxValidateRejectsBad(t *testing.T) {
	bad := []Box{
		{Lo: []int{1}, Hi: []int{2, 3}},
		{},
		{Lo: []int{0}, Hi: []int{5}},
		{Lo: []int{5}, Hi: []int{4}},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("box %d accepted", i)
		}
	}
}

func TestBoxSampleCoversEndpoints(t *testing.T) {
	b := UniformBox(1, 3, 5)
	rng := xrand.New(33)
	seen := map[int]bool{}
	for i := 0; i < 300; i++ {
		seen[b.Sample(rng)[0]] = true
	}
	for v := 3; v <= 5; v++ {
		if !seen[v] {
			t.Fatalf("value %d never sampled", v)
		}
	}
}
