package expr

import (
	"reflect"
	"testing"

	"lamb/internal/kernels"
)

// Golden tests pinning the generated algorithm sets for the three
// original expressions — the paper's ChainABCD (Figure 3) and AAᵀB
// (Figure 5) plus the LstSq extension — to the exact pre-refactor
// hand-coded sets: index, name, call sequence (kind, dims, transposes,
// operand IDs), shapes, inputs, and FLOP counts. The IR enumerator must
// reproduce these byte for byte; any diff here is a behaviour change of
// the modelling core, not a refactor.

func shp(r, c int) Shape { return Shape{Rows: r, Cols: c} }

// golden is one pinned algorithm.
type golden struct {
	name   string
	calls  []kernels.Call
	shapes map[string]Shape
	flops  float64
}

func checkGolden(t *testing.T, algs []Algorithm, want []golden, inputs, spdInputs []string) {
	t.Helper()
	if len(algs) != len(want) {
		t.Fatalf("got %d algorithms, want %d", len(algs), len(want))
	}
	for i, g := range want {
		a := algs[i]
		if a.Index != i+1 {
			t.Errorf("algorithm %d: Index = %d", i+1, a.Index)
		}
		if a.Name != g.name {
			t.Errorf("algorithm %d: name\n got %q\nwant %q", i+1, a.Name, g.name)
		}
		if !reflect.DeepEqual(a.Calls, g.calls) {
			t.Errorf("algorithm %d: calls\n got %#v\nwant %#v", i+1, a.Calls, g.calls)
		}
		if !reflect.DeepEqual(a.Shapes, g.shapes) {
			t.Errorf("algorithm %d: shapes\n got %v\nwant %v", i+1, a.Shapes, g.shapes)
		}
		if a.Flops() != g.flops {
			t.Errorf("algorithm %d: flops = %v, want %v", i+1, a.Flops(), g.flops)
		}
		if !reflect.DeepEqual(a.Inputs, inputs) {
			t.Errorf("algorithm %d: inputs %v, want %v", i+1, a.Inputs, inputs)
		}
		if !reflect.DeepEqual(a.SPDInputs, spdInputs) {
			t.Errorf("algorithm %d: SPD inputs %v, want %v", i+1, a.SPDInputs, spdInputs)
		}
		if a.Output != "X" {
			t.Errorf("algorithm %d: output %q", i+1, a.Output)
		}
		if err := a.Validate(); err != nil {
			t.Errorf("algorithm %d: %v", i+1, err)
		}
	}
}

func TestGoldenChainABCD(t *testing.T) {
	// The anomaly instance from the paper's Figure 8; the six algorithms
	// and their order are the paper's Figure 3.
	inst := Instance{331, 279, 338, 854, 427}
	base := map[string]Shape{
		"A": shp(331, 279), "B": shp(279, 338), "C": shp(338, 854), "D": shp(854, 427),
		"X": shp(331, 427),
	}
	sh := func(m1, m2 Shape) map[string]Shape {
		out := map[string]Shape{"M1": m1, "M2": m2}
		for id, s := range base {
			out[id] = s
		}
		return out
	}
	want := []golden{
		{
			name: "M1:=A·B; M2:=M1·C; X:=M2·D",
			calls: []kernels.Call{
				kernels.NewGemm(331, 338, 279, "A", "B", "M1", false, false),
				kernels.NewGemm(331, 854, 338, "M1", "C", "M2", false, false),
				kernels.NewGemm(331, 427, 854, "M2", "D", "X", false, false),
			},
			shapes: sh(shp(331, 338), shp(331, 854)),
			flops:  494_919_144,
		},
		{
			name: "M1:=A·B; M2:=C·D; X:=M1·M2",
			calls: []kernels.Call{
				kernels.NewGemm(331, 338, 279, "A", "B", "M1", false, false),
				kernels.NewGemm(338, 427, 854, "C", "D", "M2", false, false),
				kernels.NewGemm(331, 427, 338, "M1", "M2", "X", false, false),
			},
			shapes: sh(shp(331, 338), shp(338, 427)),
			flops:  404_480_544,
		},
		{
			name: "M1:=B·C; M2:=A·M1; X:=M2·D",
			calls: []kernels.Call{
				kernels.NewGemm(279, 854, 338, "B", "C", "M1", false, false),
				kernels.NewGemm(331, 854, 279, "A", "M1", "M2", false, false),
				kernels.NewGemm(331, 427, 854, "M2", "D", "X", false, false),
			},
			shapes: sh(shp(279, 854), shp(331, 854)),
			flops:  560_203_504,
		},
		{
			name: "M1:=B·C; M2:=M1·D; X:=A·M2",
			calls: []kernels.Call{
				kernels.NewGemm(279, 854, 338, "B", "C", "M1", false, false),
				kernels.NewGemm(279, 427, 854, "M1", "D", "M2", false, false),
				kernels.NewGemm(331, 427, 279, "A", "M2", "X", false, false),
			},
			shapes: sh(shp(279, 854), shp(279, 427)),
			flops:  443_413_026,
		},
		{
			name: "M1:=C·D; M2:=A·B; X:=M2·M1",
			calls: []kernels.Call{
				kernels.NewGemm(338, 427, 854, "C", "D", "M1", false, false),
				kernels.NewGemm(331, 338, 279, "A", "B", "M2", false, false),
				kernels.NewGemm(331, 427, 338, "M2", "M1", "X", false, false),
			},
			shapes: sh(shp(338, 427), shp(331, 338)),
			flops:  404_480_544,
		},
		{
			name: "M1:=C·D; M2:=B·M1; X:=A·M2",
			calls: []kernels.Call{
				kernels.NewGemm(338, 427, 854, "C", "D", "M1", false, false),
				kernels.NewGemm(279, 427, 338, "B", "M1", "M2", false, false),
				kernels.NewGemm(331, 427, 279, "A", "M2", "X", false, false),
			},
			shapes: sh(shp(338, 427), shp(279, 427)),
			flops:  405_908_762,
		},
	}
	checkGolden(t, NewChainABCD().Algorithms(inst), want, []string{"A", "B", "C", "D"}, nil)
}

func TestGoldenAATB(t *testing.T) {
	// The anomaly instance from the paper's Figure 11; the five
	// algorithms and their order are the paper's Figure 5.
	inst := Instance{80, 514, 768}
	sh := func(m1 Shape) map[string]Shape {
		return map[string]Shape{
			"A": shp(80, 514), "B": shp(80, 768), "M1": m1, "X": shp(80, 768),
		}
	}
	sq, rect := shp(80, 80), shp(514, 768)
	want := []golden{
		{
			name: "M1:=syrk(A·Aᵀ); X:=symm(M1·B)",
			calls: []kernels.Call{
				kernels.NewSyrk(80, 514, "A", "M1"),
				kernels.NewSymm(80, 768, "M1", "B", "X"),
			},
			shapes: sh(sq), flops: 13_161_120,
		},
		{
			name: "M1:=syrk(A·Aᵀ); tri2full(M1); X:=gemm(M1·B)",
			calls: []kernels.Call{
				kernels.NewSyrk(80, 514, "A", "M1"),
				kernels.NewTri2Full(80, "M1"),
				kernels.NewGemm(80, 768, 80, "M1", "B", "X", false, false),
			},
			shapes: sh(sq), flops: 13_161_120,
		},
		{
			name: "M1:=gemm(A·Aᵀ); X:=symm(M1·B)",
			calls: []kernels.Call{
				kernels.NewGemm(80, 80, 514, "A", "A", "M1", false, true),
				kernels.NewSymm(80, 768, "M1", "B", "X"),
			},
			shapes: sh(sq), flops: 16_409_600,
		},
		{
			name: "M1:=gemm(A·Aᵀ); X:=gemm(M1·B)",
			calls: []kernels.Call{
				kernels.NewGemm(80, 80, 514, "A", "A", "M1", false, true),
				kernels.NewGemm(80, 768, 80, "M1", "B", "X", false, false),
			},
			shapes: sh(sq), flops: 16_409_600,
		},
		{
			name: "M1:=gemm(Aᵀ·B); X:=gemm(A·M1)",
			calls: []kernels.Call{
				kernels.NewGemm(514, 768, 80, "A", "B", "M1", true, false),
				kernels.NewGemm(80, 768, 514, "A", "M1", "X", false, false),
			},
			shapes: sh(rect), flops: 126_320_640,
		},
	}
	checkGolden(t, NewAATB().Algorithms(inst), want, []string{"A", "B"}, nil)
}

func TestGoldenATAB(t *testing.T) {
	// The mirror of the paper's AAᵀB golden instance: A transposed, so
	// the Gram matrix is the 80×80 normal-equations AᵀA. Pins the set
	// generated by the transposed-SYRK fragment widening; FLOP totals
	// match TestGoldenAATB exactly, algorithm for algorithm.
	inst := Instance{514, 80, 768}
	sh := func(m1 Shape) map[string]Shape {
		return map[string]Shape{
			"A": shp(514, 80), "B": shp(80, 768), "M1": m1, "X": shp(80, 768),
		}
	}
	sq, rect := shp(80, 80), shp(514, 768)
	want := []golden{
		{
			name: "M1:=syrk(Aᵀ·A); X:=symm(M1·B)",
			calls: []kernels.Call{
				kernels.NewSyrkT(80, 514, "A", "M1"),
				kernels.NewSymm(80, 768, "M1", "B", "X"),
			},
			shapes: sh(sq), flops: 13_161_120,
		},
		{
			name: "M1:=syrk(Aᵀ·A); tri2full(M1); X:=gemm(M1·B)",
			calls: []kernels.Call{
				kernels.NewSyrkT(80, 514, "A", "M1"),
				kernels.NewTri2Full(80, "M1"),
				kernels.NewGemm(80, 768, 80, "M1", "B", "X", false, false),
			},
			shapes: sh(sq), flops: 13_161_120,
		},
		{
			name: "M1:=gemm(Aᵀ·A); X:=symm(M1·B)",
			calls: []kernels.Call{
				kernels.NewGemm(80, 80, 514, "A", "A", "M1", true, false),
				kernels.NewSymm(80, 768, "M1", "B", "X"),
			},
			shapes: sh(sq), flops: 16_409_600,
		},
		{
			name: "M1:=gemm(Aᵀ·A); X:=gemm(M1·B)",
			calls: []kernels.Call{
				kernels.NewGemm(80, 80, 514, "A", "A", "M1", true, false),
				kernels.NewGemm(80, 768, 80, "M1", "B", "X", false, false),
			},
			shapes: sh(sq), flops: 16_409_600,
		},
		{
			name: "M1:=gemm(A·B); X:=gemm(Aᵀ·M1)",
			calls: []kernels.Call{
				kernels.NewGemm(514, 768, 80, "A", "B", "M1", false, false),
				kernels.NewGemm(80, 768, 514, "A", "M1", "X", true, false),
			},
			shapes: sh(rect), flops: 126_320_640,
		},
	}
	checkGolden(t, NewATAB().Algorithms(inst), want, []string{"A", "B"}, nil)
}

func TestGoldenLstSq(t *testing.T) {
	inst := Instance{120, 500, 80}
	shapes := map[string]Shape{
		"A": shp(120, 500), "B": shp(500, 80), "R": shp(120, 120),
		"S": shp(120, 120), "X": shp(120, 80),
	}
	gramSyrk := kernels.NewSyrk(120, 500, "A", "S")
	gramGemm := kernels.NewGemm(120, 120, 500, "A", "A", "S", false, true)
	add := kernels.NewAddSym(120, "S", "R")
	chol := kernels.NewPotrf(120, "S")
	rhs := kernels.NewGemm(120, 80, 500, "A", "B", "X", false, false)
	solve1 := kernels.NewTrsm(120, 80, "S", "X", false)
	solve2 := kernels.NewTrsm(120, 80, "S", "X", true)
	want := []golden{
		{
			name:   "S:=syrk(A·Aᵀ); S+=R; L:=potrf(S); X:=gemm(A·B); trsm(L); trsm(Lᵀ)",
			calls:  []kernels.Call{gramSyrk, add, chol, rhs, solve1, solve2},
			shapes: shapes, flops: 19_754_480,
		},
		{
			name:   "X:=gemm(A·B); S:=syrk(A·Aᵀ); S+=R; L:=potrf(S); trsm(L); trsm(Lᵀ)",
			calls:  []kernels.Call{rhs, gramSyrk, add, chol, solve1, solve2},
			shapes: shapes, flops: 19_754_480,
		},
		{
			name:   "S:=gemm(A·Aᵀ); S+=R; L:=potrf(S); X:=gemm(A·B); trsm(L); trsm(Lᵀ)",
			calls:  []kernels.Call{gramGemm, add, chol, rhs, solve1, solve2},
			shapes: shapes, flops: 26_894_480,
		},
		{
			name:   "X:=gemm(A·B); S:=gemm(A·Aᵀ); S+=R; L:=potrf(S); trsm(L); trsm(Lᵀ)",
			calls:  []kernels.Call{rhs, gramGemm, add, chol, solve1, solve2},
			shapes: shapes, flops: 26_894_480,
		},
	}
	checkGolden(t, NewLstSq().Algorithms(inst), want, []string{"A", "B", "R"}, []string{"R"})
}

// TestGoldenFlopsMatchPaperFigures ties the pinned absolute FLOP counts
// back to the paper's closed-form per-algorithm formulas (§3.2.1 and
// §3.2.2) at the golden instances, so the goldens cannot drift from the
// figures they reproduce.
func TestGoldenFlopsMatchPaperFigures(t *testing.T) {
	chainInst := Instance{331, 279, 338, 854, 427}
	for i, a := range NewChainABCD().Algorithms(chainInst) {
		if want := chainPaperFlops(chainInst)[i]; a.Flops() != want {
			t.Errorf("chain algorithm %d: flops %v, want paper %v", i+1, a.Flops(), want)
		}
	}
	aatbInst := Instance{80, 514, 768}
	for i, a := range NewAATB().Algorithms(aatbInst) {
		if want := aatbPaperFlops(aatbInst)[i]; a.Flops() != want {
			t.Errorf("aatb algorithm %d: flops %v, want paper %v", i+1, a.Flops(), want)
		}
	}
}
