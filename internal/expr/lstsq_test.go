package expr

import (
	"testing"
	"testing/quick"

	"lamb/internal/kernels"
	"lamb/internal/xrand"
)

func TestLstSqEnumeratesFourAlgorithms(t *testing.T) {
	e := NewLstSq()
	inst := Instance{120, 500, 80}
	algs := e.Algorithms(inst)
	if len(algs) != 4 || e.NumAlgorithms() != 4 {
		t.Fatalf("got %d algorithms", len(algs))
	}
	for i, a := range algs {
		if err := a.Validate(); err != nil {
			t.Errorf("algorithm %d invalid: %v", i+1, err)
		}
		if len(a.Calls) != 6 {
			t.Errorf("algorithm %d has %d calls, want 6", i+1, len(a.Calls))
		}
		if len(a.SPDInputs) != 1 || a.SPDInputs[0] != "R" {
			t.Errorf("algorithm %d SPD inputs %v", i+1, a.SPDInputs)
		}
	}
}

func TestLstSqFlopStructure(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		// d0 ≥ 2: at d0 = 1 SYRK's (d0+1)·d0·d1 equals GEMM's 2·d0²·d1.
		inst := Instance{rng.IntRange(2, 600), rng.IntRange(1, 600), rng.IntRange(1, 600)}
		algs := NewLstSq().Algorithms(inst)
		// Order variants tie exactly; SYRK variants strictly cheaper.
		if algs[0].Flops() != algs[1].Flops() || algs[2].Flops() != algs[3].Flops() {
			return false
		}
		return algs[0].Flops() < algs[2].Flops()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestLstSqFlopFormula(t *testing.T) {
	// Closed form for algorithm 1: syrk + addsym + potrf + gemm(AB) +
	// 2×trsm.
	d0, d1, d2 := 100.0, 300.0, 40.0
	want := (d0+1)*d0*d1 + // syrk
		d0*(d0+1)/2 + // addsym
		d0*(d0+1)*(2*d0+1)/6 + // potrf (exact integer Cholesky count)
		2*d0*d1*d2 + // gemm A·B
		2*d0*d0*d2 // two trsms
	algs := NewLstSq().Algorithms(Instance{100, 300, 40})
	if got := algs[0].Flops(); got != want {
		t.Fatalf("algorithm 1 flops = %v, want %v", got, want)
	}
}

func TestLstSqUsesSixKernelKinds(t *testing.T) {
	algs := NewLstSq().Algorithms(Instance{50, 60, 70})
	kinds := map[kernels.Kind]bool{}
	for _, a := range algs {
		for _, c := range a.Calls {
			kinds[c.Kind] = true
		}
	}
	for _, want := range []kernels.Kind{kernels.Syrk, kernels.Gemm, kernels.AddSym, kernels.Potrf, kernels.Trsm} {
		if !kinds[want] {
			t.Errorf("kernel kind %v unused", want)
		}
	}
}

func TestLstSqOrderVariantsDifferInFirstCall(t *testing.T) {
	algs := NewLstSq().Algorithms(Instance{50, 60, 70})
	if algs[0].Calls[0].Kind != kernels.Syrk || algs[1].Calls[0].Kind != kernels.Gemm {
		t.Fatal("order variants should differ in the first call")
	}
	if algs[0].Flops() != algs[1].Flops() {
		t.Fatal("order variants must tie on FLOPs")
	}
}

func TestLstSqValidateRejects(t *testing.T) {
	if err := NewLstSq().Validate(Instance{1, 2}); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if err := NewLstSq().Validate(Instance{1, 0, 2}); err == nil {
		t.Fatal("zero dim accepted")
	}
}
