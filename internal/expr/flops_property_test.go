package expr

import (
	"fmt"
	"testing"
	"testing/quick"

	"lamb/internal/kernels"
	"lamb/internal/xrand"
)

// closedFormFlops is an independent copy of the paper's per-kernel FLOP
// formulas (the LAWN-41-style counts: GEMM 2mnk, SYRK (m+1)mk, SYMM
// 2m²n, POTRF m(m+1)(2m+1)/6 ≈ m³/3, TRSM m²n, AddSym m(m+1)/2,
// Tri2Full 0). It is deliberately re-stated here rather than calling
// kernels.Call.Flops, so the property test pins both the enumerator's
// lowered call dimensions and the kernel cost model against the
// literature formulas.
func closedFormFlops(c kernels.Call) (float64, error) {
	m, n, k := float64(c.M), float64(c.N), float64(c.K)
	switch c.Kind {
	case kernels.Gemm:
		return 2 * m * n * k, nil
	case kernels.Syrk:
		return (m + 1) * m * k, nil
	case kernels.Symm:
		return 2 * m * m * n, nil
	case kernels.Potrf:
		return m * (m + 1) * (2*m + 1) / 6, nil
	case kernels.Trsm:
		return m * m * n, nil
	case kernels.AddSym:
		return m * (m + 1) / 2, nil
	case kernels.Tri2Full:
		return 0, nil
	default:
		return 0, fmt.Errorf("no closed form for kind %v", c.Kind)
	}
}

// checkCallShapes verifies that a call's (M, N, K) agree with the
// shapes of the operands it reads — a stronger consistency property
// than Algorithm.Validate, which checks the output only.
func checkCallShapes(a *Algorithm, c kernels.Call) error {
	in := func(i int) Shape { return a.Shapes[c.In[i]] }
	switch c.Kind {
	case kernels.Gemm:
		ar, ac := in(0).Rows, in(0).Cols
		if c.TransA {
			ar, ac = ac, ar
		}
		br, bc := in(1).Rows, in(1).Cols
		if c.TransB {
			br, bc = bc, br
		}
		if ar != c.M || ac != c.K || br != c.K || bc != c.N {
			return fmt.Errorf("gemm %v reads %v and %v", c, in(0), in(1))
		}
	case kernels.Syrk:
		ar, ac := in(0).Rows, in(0).Cols
		if c.TransA {
			ar, ac = ac, ar
		}
		if ar != c.M || ac != c.K {
			return fmt.Errorf("syrk %v reads %v", c, in(0))
		}
	case kernels.Symm:
		if in(0).Rows != c.M || in(0).Cols != c.M || in(1).Rows != c.M || in(1).Cols != c.N {
			return fmt.Errorf("symm %v reads %v and %v", c, in(0), in(1))
		}
	case kernels.Trsm:
		if in(0).Rows != c.M || in(0).Cols != c.M || in(1).Rows != c.M || in(1).Cols != c.N {
			return fmt.Errorf("trsm %v reads %v and %v", c, in(0), in(1))
		}
	case kernels.Potrf, kernels.AddSym, kernels.Tri2Full:
		if in(0).Rows != c.M || in(0).Cols != c.M {
			return fmt.Errorf("%v reads %v", c, in(0))
		}
	}
	return nil
}

// TestEnumeratorFlopsMatchClosedFormsProperty cross-checks, on random
// instances of every registered expression, that each generated
// algorithm's FLOP total equals the sum of the closed-form per-kernel
// formulas over its lowered calls, and that every call's dimensions are
// consistent with the inferred operand shapes.
func TestEnumeratorFlopsMatchClosedFormsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		for _, name := range Names() {
			e, err := Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			inst := make(Instance, e.Arity())
			for i := range inst {
				inst[i] = rng.IntRange(2, 300)
			}
			for _, a := range e.Algorithms(inst) {
				var want float64
				for _, c := range a.Calls {
					cf, err := closedFormFlops(c)
					if err != nil {
						t.Fatalf("%s %v: %v", name, inst, err)
					}
					want += cf
					if err := checkCallShapes(&a, c); err != nil {
						t.Fatalf("%s %v algorithm %d: %v", name, inst, a.Index, err)
					}
				}
				if a.Flops() != want {
					t.Logf("%s %v algorithm %d: flops %v != closed form %v", name, inst, a.Index, a.Flops(), want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestEnumeratorFlopsMatchClosedFormsGeneralChain extends the property
// to general chains outside the registry (3–6 terms).
func TestEnumeratorFlopsMatchClosedFormsGeneralChain(t *testing.T) {
	rng := xrand.New(99)
	for terms := 3; terms <= 6; terms++ {
		inst := make(Instance, terms+1)
		for i := range inst {
			inst[i] = rng.IntRange(2, 200)
		}
		for _, a := range (Chain{Terms: terms}).Algorithms(inst) {
			var want float64
			for _, c := range a.Calls {
				cf, err := closedFormFlops(c)
				if err != nil {
					t.Fatal(err)
				}
				want += cf
				if err := checkCallShapes(&a, c); err != nil {
					t.Fatalf("chain-%d %v algorithm %d: %v", terms, inst, a.Index, err)
				}
			}
			if a.Flops() != want {
				t.Fatalf("chain-%d %v algorithm %d: flops %v != closed form %v", terms, inst, a.Index, a.Flops(), want)
			}
		}
	}
}
