package expr

import "lamb/internal/ir"

// AATBC is the Gram-chain hybrid expression X := A·Aᵀ·B·C with
// A ∈ ℝ^{d0×d1}, B ∈ ℝ^{d0×d2}, and C ∈ ℝ^{d2×d3}. An instance is the
// tuple (d0, d1, d2, d3).
//
// It is the smallest expression that combines the paper's two case
// studies — a Gram product with symmetry rewrites (AAᵀB, Figure 5)
// embedded in a matrix chain with free multiplication order (ABCD,
// Figure 3) — and a direct probe of the paper's §5 conjecture that
// richer expressions produce more anomalies. Hand-coding its algorithm
// set would take fifteen bespoke call sequences; the enumerator derives
// all of them from the four-factor product: every contraction order ×
// SYRK/GEMM for the Gram product × SYMM/GEMM (with Tri2Full insertion)
// wherever the symmetric intermediate is consumed.
type AATBC struct{}

// NewAATBC returns the AAᵀBC expression.
func NewAATBC() AATBC { return AATBC{} }

// aatbcDef is built once: the associative product A·Aᵀ·B·C.
var aatbcDef = func() *ir.Def {
	a := ir.NewOperand("A", 0, 1)
	b := ir.NewOperand("B", 0, 2)
	c := ir.NewOperand("C", 2, 3)
	return &ir.Def{Name: "aatbc", Arity: 4, Root: ir.Mul(a, ir.T(a), b, c)}
}()

// Name implements Expression.
func (AATBC) Name() string { return "aatbc" }

// Arity implements Expression: instances are (d0, d1, d2, d3).
func (AATBC) Arity() int { return 4 }

// Validate implements Expression.
func (e AATBC) Validate(inst Instance) error {
	return validateDims(e.Name(), e.Arity(), inst)
}

// NumAlgorithms returns 15, the size of the generated set.
func (AATBC) NumAlgorithms() int { return 15 }

// Algorithms implements Expression by binding the cached symbolic set.
func (e AATBC) Algorithms(inst Instance) []Algorithm {
	if err := e.Validate(inst); err != nil {
		panic(err)
	}
	return cachedSet(e.Name(), func() *ir.Def { return aatbcDef }).MustBind(inst)
}
