// Package expr defines the linear algebra expressions the paper studies
// and enumerates their mathematically equivalent algorithms.
//
// An algorithm is a sequence of kernel calls (lamb/internal/kernels) that
// evaluates the expression for a concrete instance (an assignment of
// sizes to the expression's dimensions). The two expressions from the
// paper are provided — the matrix chain ABCD with its 6 GEMM-only
// algorithms (Figure 3) and AAᵀB with its 5 algorithms over GEMM, SYRK,
// and SYMM (Figure 5) — together with a general n-term matrix chain
// enumerator and the classic dynamic-programming minimum-FLOPs baseline.
package expr

import (
	"fmt"
	"strings"

	"lamb/internal/kernels"
)

// Instance assigns concrete sizes to an expression's dimensions
// (d0, d1, ... in the paper's notation).
type Instance []int

// String renders the instance as "(d0,d1,...)".
func (in Instance) String() string {
	parts := make([]string, len(in))
	for i, d := range in {
		parts[i] = fmt.Sprint(d)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Clone returns an independent copy of the instance.
func (in Instance) Clone() Instance {
	out := make(Instance, len(in))
	copy(out, in)
	return out
}

// Shape is the dimensions of one operand.
type Shape struct {
	Rows, Cols int
}

// Algorithm is one mathematically equivalent evaluation of an expression
// for a concrete instance: an ordered sequence of kernel calls plus the
// shapes of every operand involved.
type Algorithm struct {
	// Index is the paper's 1-based algorithm number.
	Index int
	// Name describes the call sequence, e.g. "M1:=A·B; M2:=M1·C; X:=M2·D".
	Name string
	// Calls is the kernel sequence, executed in order.
	Calls []kernels.Call
	// Shapes maps every operand ID (inputs, temporaries, output) to its
	// shape.
	Shapes map[string]Shape
	// Inputs lists the expression's input operand IDs.
	Inputs []string
	// SPDInputs lists the inputs that must be symmetric positive
	// definite (e.g. the regulariser of the least-squares expression);
	// executors materialise these accordingly.
	SPDInputs []string
	// Output is the ID of the final result.
	Output string
}

// Flops returns the algorithm's total FLOP count — the discriminant the
// paper evaluates.
func (a *Algorithm) Flops() float64 {
	var s float64
	for _, c := range a.Calls {
		s += c.Flops()
	}
	return s
}

// Validate checks internal consistency: every call validates, every
// operand mentioned has a shape, and call dimensions agree with operand
// shapes.
func (a *Algorithm) Validate() error {
	if len(a.Calls) == 0 {
		return fmt.Errorf("expr: algorithm %q has no calls", a.Name)
	}
	for i, c := range a.Calls {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("expr: algorithm %q call %d: %w", a.Name, i, err)
		}
		ids := append([]string{c.Out}, c.In...)
		for _, id := range ids {
			if _, ok := a.Shapes[id]; !ok {
				return fmt.Errorf("expr: algorithm %q call %d references unknown operand %q", a.Name, i, id)
			}
		}
		out := a.Shapes[c.Out]
		if out.Rows != c.M || out.Cols != c.N {
			return fmt.Errorf("expr: algorithm %q call %d output %q is %dx%d, call writes %dx%d",
				a.Name, i, c.Out, out.Rows, out.Cols, c.M, c.N)
		}
	}
	if _, ok := a.Shapes[a.Output]; !ok {
		return fmt.Errorf("expr: algorithm %q output %q has no shape", a.Name, a.Output)
	}
	return nil
}

// Expression is a family of problem instances together with its set of
// mathematically equivalent algorithms.
type Expression interface {
	// Name identifies the expression (e.g. "chain-ABCD", "AATB").
	Name() string
	// Arity is the number of dimension parameters of an instance.
	Arity() int
	// Algorithms enumerates the algorithm set for the given instance.
	// The returned slice is freshly allocated and ordered by the paper's
	// algorithm numbering where one exists.
	Algorithms(inst Instance) []Algorithm
	// Validate reports whether inst is a well-formed instance.
	Validate(inst Instance) error
}

func validateDims(name string, arity int, inst Instance) error {
	if len(inst) != arity {
		return fmt.Errorf("expr: %s instance %v has %d dims, want %d", name, inst, len(inst), arity)
	}
	for i, d := range inst {
		if d <= 0 {
			return fmt.Errorf("expr: %s instance %v has non-positive d%d", name, inst, i)
		}
	}
	return nil
}
