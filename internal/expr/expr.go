// Package expr defines the linear algebra expressions the paper studies
// and generates their mathematically equivalent algorithm sets.
//
// Every expression is a thin builder over the IR in lamb/internal/ir: it
// defines an operand tree once, and the generic enumerator derives the
// full algorithm set — all multiplication orders, symmetry exploitation
// (SYRK/SYMM with Tri2Full insertion), SPD-inverse lowering, and
// common-subexpression sharing — lowered to kernels.Call sequences. The
// expressions from the paper are provided — the matrix chain ABCD with
// its 6 GEMM-only algorithms (Figure 3) and AAᵀB with its 5 algorithms
// over GEMM, SYRK, and SYMM (Figure 5) — together with a general n-term
// chain, the regularised least-squares pipeline, two richer generated
// expressions (AAᵀBC and GLS) probing the paper's §5 conjecture, and the
// classic dynamic-programming minimum-FLOPs baseline.
//
// The generated sets for the original three expressions are pinned by
// golden tests to the pre-IR hand-coded sets, byte for byte.
package expr

import (
	"fmt"

	"lamb/internal/ir"
)

// Core modelling types, defined in lamb/internal/ir and aliased here so
// the rest of the repository keeps importing them from expr.
type (
	// Instance assigns concrete sizes to an expression's dimensions
	// (d0, d1, ... in the paper's notation).
	Instance = ir.Instance
	// Shape is the dimensions of one operand.
	Shape = ir.Shape
	// Algorithm is one mathematically equivalent evaluation of an
	// expression for a concrete instance.
	Algorithm = ir.Algorithm
)

// Expression is a family of problem instances together with its set of
// mathematically equivalent algorithms.
type Expression interface {
	// Name identifies the expression (e.g. "chain-ABCD", "AATB").
	Name() string
	// Arity is the number of dimension parameters of an instance.
	Arity() int
	// Algorithms enumerates the algorithm set for the given instance.
	// The returned slice is freshly allocated and ordered by the paper's
	// algorithm numbering where one exists.
	Algorithms(inst Instance) []Algorithm
	// Validate reports whether inst is a well-formed instance.
	Validate(inst Instance) error
}

func validateDims(name string, arity int, inst Instance) error {
	if len(inst) != arity {
		return fmt.Errorf("expr: %s instance %v has %d dims, want %d", name, inst, len(inst), arity)
	}
	for i, d := range inst {
		if d <= 0 {
			return fmt.Errorf("expr: %s instance %v has non-positive d%d", name, inst, i)
		}
	}
	return nil
}

// Generic is an Expression generated from an IR definition: its
// algorithm set is whatever the enumerator derives from the tree. The
// built-in expressions are all Generic underneath; external callers can
// define new ones through the public builder API in package lamb.
//
// Construction enumerates the symbolic algorithm set once (the
// enumerator is purely structural); Algorithms is then a cheap bind of
// the cached set against the requested instance.
type Generic struct {
	set *ir.SymbolicSet
}

// NewGeneric validates the definition, enumerates its symbolic
// algorithm set, and wraps it as an Expression. Unsupported fragments
// surface here, not mid-experiment.
func NewGeneric(def *ir.Def) (Generic, error) {
	set, err := ir.EnumerateSymbolic(def)
	if err != nil {
		return Generic{}, err
	}
	return Generic{set: set}, nil
}

// MustGeneric is NewGeneric panicking on error; the built-in builders
// use it with definitions that are tested to be valid.
func MustGeneric(def *ir.Def) Generic {
	g, err := NewGeneric(def)
	if err != nil {
		panic(err)
	}
	return g
}

// Name implements Expression.
func (g Generic) Name() string { return g.set.Def().Name }

// Arity implements Expression.
func (g Generic) Arity() int { return g.set.Def().Arity }

// Def exposes the underlying IR definition.
func (g Generic) Def() *ir.Def { return g.set.Def() }

// Symbolic exposes the cached symbolic algorithm set.
func (g Generic) Symbolic() *ir.SymbolicSet { return g.set }

// Validate implements Expression.
func (g Generic) Validate(inst Instance) error { return g.set.Def().ValidateInstance(inst) }

// Algorithms implements Expression: a bind of the cached symbolic set.
func (g Generic) Algorithms(inst Instance) []Algorithm { return g.set.MustBind(inst) }

// NumAlgorithms returns the size of the generated algorithm set (which
// is instance-independent, counted once at construction).
func (g Generic) NumAlgorithms() int { return g.set.Len() }
