package expr

import "lamb/internal/ir"

// LstSq is the regularised least-squares (normal equations) expression
//
//	X := (A·Aᵀ + R)⁻¹ · A · B
//
// with A ∈ ℝ^{d0×d1}, B ∈ ℝ^{d1×d2}, and R ∈ ℝ^{d0×d0} symmetric
// positive definite. An instance is the tuple (d0, d1, d2).
//
// This expression extends the paper's study beyond its two case studies:
// the paper conjectures (§5) that "anomalies will be even more frequent
// in more complex expressions" because larger expressions have more
// equivalent algorithms and involve more kernels. LstSq is the smallest
// realistic expression that adds LAPACK-level kernels to the mix: its
// algorithms combine SYRK/GEMM (Gram matrix), a triangular accumulation,
// a Cholesky factorisation, and two triangular solves — six kernel kinds
// in total.
//
// The enumerator derives the four algorithms from two independent
// rewrite choices:
//
//   - the Gram product A·Aᵀ uses SYRK (half the FLOPs) or GEMM;
//   - the right-hand side M := A·B is computed before or after the
//     factorisation pipeline (identical FLOPs, different inter-kernel
//     cache behaviour — the analogue of the paper's chain Algorithms 2
//     and 5).
//
// Algorithms 1–2 (SYRK) tie for the minimum FLOP count, exactly as the
// paper's AAᵀB Algorithms 1–2 do.
type LstSq struct{}

// NewLstSq returns the regularised least-squares expression.
func NewLstSq() LstSq { return LstSq{} }

// Name implements Expression.
func (LstSq) Name() string { return "lstsq" }

// Arity implements Expression: instances are (d0, d1, d2).
func (LstSq) Arity() int { return 3 }

// Validate implements Expression.
func (e LstSq) Validate(inst Instance) error {
	return validateDims(e.Name(), e.Arity(), inst)
}

// NumAlgorithms returns 4.
func (LstSq) NumAlgorithms() int { return 4 }

// def builds the IR: the Gram accumulator S := A·Aᵀ + R feeding the
// solve form S⁻¹·(A·B). Operand naming matches the pre-IR hand-coded
// set: S is factored in place, the right-hand side A·B lands directly
// in X and is solved in place.
func (e LstSq) def() *ir.Def {
	a := ir.NewOperand("A", 0, 1)
	b := ir.NewOperand("B", 1, 2)
	r := ir.NewSPD("R", 0)
	gram := ir.Add("S", ir.Mul(a, ir.T(a)), r)
	return &ir.Def{Name: e.Name(), Arity: e.Arity(), Root: ir.Solve(gram, ir.Mul(a, b))}
}

// Algorithms implements Expression by binding the cached symbolic set.
func (e LstSq) Algorithms(inst Instance) []Algorithm {
	if err := e.Validate(inst); err != nil {
		panic(err)
	}
	return cachedSet(e.Name(), e.def).MustBind(inst)
}
