package expr

import "lamb/internal/kernels"

// LstSq is the regularised least-squares (normal equations) expression
//
//	X := (A·Aᵀ + R)⁻¹ · A · B
//
// with A ∈ ℝ^{d0×d1}, B ∈ ℝ^{d1×d2}, and R ∈ ℝ^{d0×d0} symmetric
// positive definite. An instance is the tuple (d0, d1, d2).
//
// This expression extends the paper's study beyond its two case studies:
// the paper conjectures (§5) that "anomalies will be even more frequent
// in more complex expressions" because larger expressions have more
// equivalent algorithms and involve more kernels. LstSq is the smallest
// realistic expression that adds LAPACK-level kernels to the mix: its
// algorithms combine SYRK/GEMM (Gram matrix), a triangular accumulation,
// a Cholesky factorisation, and two triangular solves — six kernel kinds
// in total.
//
// The algorithm set varies two independent choices:
//
//   - the Gram product A·Aᵀ uses SYRK (half the FLOPs) or GEMM;
//   - the right-hand side M := A·B is computed before or after the
//     factorisation pipeline (identical FLOPs, different inter-kernel
//     cache behaviour — the analogue of the paper's chain Algorithms 2
//     and 5).
//
// yielding four algorithms. Algorithms 1–2 (SYRK) tie for the minimum
// FLOP count, exactly as the paper's AAᵀB Algorithms 1–2 do.
type LstSq struct{}

// NewLstSq returns the regularised least-squares expression.
func NewLstSq() LstSq { return LstSq{} }

// Name implements Expression.
func (LstSq) Name() string { return "lstsq" }

// Arity implements Expression: instances are (d0, d1, d2).
func (LstSq) Arity() int { return 3 }

// Validate implements Expression.
func (e LstSq) Validate(inst Instance) error {
	return validateDims(e.Name(), e.Arity(), inst)
}

// NumAlgorithms returns 4.
func (LstSq) NumAlgorithms() int { return 4 }

// Algorithms implements Expression. Operands: A (d0×d1), B (d1×d2), R
// (d0×d0, SPD), S (the Gram accumulator, factored in place), M (the
// right-hand side A·B, solved in place into X).
func (e LstSq) Algorithms(inst Instance) []Algorithm {
	if err := e.Validate(inst); err != nil {
		panic(err)
	}
	d0, d1, d2 := inst[0], inst[1], inst[2]
	shapes := func() map[string]Shape {
		return map[string]Shape{
			"A": {Rows: d0, Cols: d1},
			"B": {Rows: d1, Cols: d2},
			"R": {Rows: d0, Cols: d0},
			"S": {Rows: d0, Cols: d0},
			"X": {Rows: d0, Cols: d2},
		}
	}

	gramSyrk := kernels.NewSyrk(d0, d1, "A", "S")
	gramGemm := kernels.NewGemm(d0, d0, d1, "A", "A", "S", false, true)
	add := kernels.NewAddSym(d0, "S", "R")
	chol := kernels.NewPotrf(d0, "S")
	rhs := kernels.NewGemm(d0, d2, d1, "A", "B", "X", false, false)
	solve1 := kernels.NewTrsm(d0, d2, "S", "X", false)
	solve2 := kernels.NewTrsm(d0, d2, "S", "X", true)

	mk := func(idx int, name string, calls ...kernels.Call) Algorithm {
		return Algorithm{
			Index:     idx,
			Name:      name,
			Calls:     calls,
			Shapes:    shapes(),
			Inputs:    []string{"A", "B", "R"},
			SPDInputs: []string{"R"},
			Output:    "X",
		}
	}
	return []Algorithm{
		mk(1, "S:=syrk(A·Aᵀ); S+=R; L:=potrf(S); X:=gemm(A·B); trsm(L); trsm(Lᵀ)",
			gramSyrk, add, chol, rhs, solve1, solve2),
		mk(2, "X:=gemm(A·B); S:=syrk(A·Aᵀ); S+=R; L:=potrf(S); trsm(L); trsm(Lᵀ)",
			rhs, gramSyrk, add, chol, solve1, solve2),
		mk(3, "S:=gemm(A·Aᵀ); S+=R; L:=potrf(S); X:=gemm(A·B); trsm(L); trsm(Lᵀ)",
			gramGemm, add, chol, rhs, solve1, solve2),
		mk(4, "X:=gemm(A·B); S:=gemm(A·Aᵀ); S+=R; L:=potrf(S); trsm(L); trsm(Lᵀ)",
			rhs, gramGemm, add, chol, solve1, solve2),
	}
}
