package expr

import "lamb/internal/ir"

// ATAB is the transposed-Gram expression X := Aᵀ·A·B with A ∈ ℝ^{d0×d1}
// and B ∈ ℝ^{d1×d2}. An instance is the tuple (d0, d1, d2).
//
// It is the mirror image of the paper's AAᵀB case study and the first
// expression enabled by widening the IR fragment with the
// transposed-SYRK rewrite (Aᵀ·A → dsyrk trans='T'): before the widening
// the Gram product lowered to GEMM only, collapsing the set to three
// algorithms. With the rewrite the enumerator derives the full mirror
// of Figure 5:
//
//	1: M1 := syrk(Aᵀ·A);             X := symm(M1·B)
//	2: M1 := syrk(Aᵀ·A); tri2full;   X := gemm(M1·B)
//	3: M1 := gemm(Aᵀ·A);             X := symm(M1·B)
//	4: M1 := gemm(Aᵀ·A);             X := gemm(M1·B)
//	5: M1 := gemm(A·B);              X := gemm(Aᵀ·M1)
//
// This is the normal-equations Gram matrix orientation (AᵀA rather than
// AAᵀ), so the same anomaly structure the paper studies now covers the
// tall-matrix regression layout.
type ATAB struct{}

// NewATAB returns the AᵀAB expression.
func NewATAB() ATAB { return ATAB{} }

// Name implements Expression.
func (ATAB) Name() string { return "ATAB" }

// Arity implements Expression: instances are (d0, d1, d2).
func (ATAB) Arity() int { return 3 }

// Validate implements Expression.
func (e ATAB) Validate(inst Instance) error {
	return validateDims(e.Name(), e.Arity(), inst)
}

// NumAlgorithms returns 5, the size of the generated set.
func (ATAB) NumAlgorithms() int { return 5 }

// def builds the IR: the associative product Aᵀ·A·B.
func (e ATAB) def() *ir.Def {
	a := ir.NewOperand("A", 0, 1)
	b := ir.NewOperand("B", 1, 2)
	return &ir.Def{Name: e.Name(), Arity: e.Arity(), Root: ir.Mul(ir.T(a), a, b)}
}

// Algorithms implements Expression by binding the cached symbolic set.
func (e ATAB) Algorithms(inst Instance) []Algorithm {
	if err := e.Validate(inst); err != nil {
		panic(err)
	}
	return cachedSet(e.Name(), e.def).MustBind(inst)
}
