package expr

import "lamb/internal/ir"

// GLS is the generalized-least-squares-style solve with a chained
// right-hand side,
//
//	X := (A·Aᵀ + R)⁻¹ · A · B · C
//
// with A ∈ ℝ^{d0×d1}, B ∈ ℝ^{d1×d2}, C ∈ ℝ^{d2×d3}, and R ∈ ℝ^{d0×d0}
// symmetric positive definite. An instance is (d0, d1, d2, d3).
//
// GLS extends LstSq one step further along the paper's §5 axis: the
// right-hand side is itself a chain, so the generated set multiplies
// three independent rewrite choices — SYRK versus GEMM for the Gram
// product, both parenthesisations of A·B·C, and both orderings of the
// factorisation pipeline versus the right-hand-side pipeline — into
// eight algorithms over six kernel kinds. The FLOP-count structure has
// four tie groups of two (the pipeline ordering never changes FLOPs),
// making it a dense source of the paper's tie-breaking anomalies.
type GLS struct{}

// NewGLS returns the GLS expression.
func NewGLS() GLS { return GLS{} }

// glsDef is built once: the Gram accumulator S := A·Aᵀ + R feeding the
// solve form S⁻¹·(A·B·C) with a free right-hand-side chain.
var glsDef = func() *ir.Def {
	a := ir.NewOperand("A", 0, 1)
	b := ir.NewOperand("B", 1, 2)
	c := ir.NewOperand("C", 2, 3)
	r := ir.NewSPD("R", 0)
	gram := ir.Add("S", ir.Mul(a, ir.T(a)), r)
	return &ir.Def{Name: "gls", Arity: 4, Root: ir.Solve(gram, ir.Mul(a, b, c))}
}()

// Name implements Expression.
func (GLS) Name() string { return "gls" }

// Arity implements Expression: instances are (d0, d1, d2, d3).
func (GLS) Arity() int { return 4 }

// Validate implements Expression.
func (e GLS) Validate(inst Instance) error {
	return validateDims(e.Name(), e.Arity(), inst)
}

// NumAlgorithms returns 8, the size of the generated set.
func (GLS) NumAlgorithms() int { return 8 }

// Algorithms implements Expression by binding the cached symbolic set.
func (e GLS) Algorithms(inst Instance) []Algorithm {
	if err := e.Validate(inst); err != nil {
		panic(err)
	}
	return cachedSet(e.Name(), func() *ir.Def { return glsDef }).MustBind(inst)
}
