package expr

import (
	"sync"

	"lamb/internal/ir"
)

// symSets caches the symbolic algorithm set of every built-in
// expression, keyed by expression name (chain sets are per term count:
// the name embeds it). Enumeration is structural and instance-free, so
// one set serves every instance for the lifetime of the process — this
// is the symbolic layer of the engine's cache hierarchy. Values are
// *ir.SymbolicSet, which is immutable and safe for concurrent binds.
var symSets sync.Map

// cachedSet returns the symbolic set for the named expression, building
// and enumerating the definition on first use. mk must be deterministic
// for a given name; concurrent first calls may both enumerate, with one
// result winning the cache.
func cachedSet(name string, mk func() *ir.Def) *ir.SymbolicSet {
	if v, ok := symSets.Load(name); ok {
		return v.(*ir.SymbolicSet)
	}
	set := ir.MustEnumerateSymbolic(mk())
	v, _ := symSets.LoadOrStore(name, set)
	return v.(*ir.SymbolicSet)
}
