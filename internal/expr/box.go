package expr

import (
	"fmt"

	"lamb/internal/xrand"
)

// Box is a hyper-rectangular search space of instances: dimension i
// ranges over the inclusive interval [Lo[i], Hi[i]]. The paper's
// experiments use 20 ≤ dᵢ ≤ 1200 for every dimension.
type Box struct {
	Lo, Hi []int
}

// UniformBox returns a box with the same inclusive range in every one of
// the arity dimensions.
func UniformBox(arity, lo, hi int) Box {
	l := make([]int, arity)
	h := make([]int, arity)
	for i := range l {
		l[i], h[i] = lo, hi
	}
	return Box{Lo: l, Hi: h}
}

// PaperBox returns the paper's search space, 20 ≤ dᵢ ≤ 1200, for an
// expression of the given arity.
func PaperBox(arity int) Box { return UniformBox(arity, 20, 1200) }

// Arity returns the box's dimensionality.
func (b Box) Arity() int { return len(b.Lo) }

// Validate checks that the box is well-formed.
func (b Box) Validate() error {
	if len(b.Lo) != len(b.Hi) {
		return fmt.Errorf("expr: box lo/hi arity mismatch %d vs %d", len(b.Lo), len(b.Hi))
	}
	if len(b.Lo) == 0 {
		return fmt.Errorf("expr: empty box")
	}
	for i := range b.Lo {
		if b.Lo[i] <= 0 || b.Hi[i] < b.Lo[i] {
			return fmt.Errorf("expr: box dim %d has invalid range [%d, %d]", i, b.Lo[i], b.Hi[i])
		}
	}
	return nil
}

// Contains reports whether the instance lies inside the box.
func (b Box) Contains(inst Instance) bool {
	if len(inst) != len(b.Lo) {
		return false
	}
	for i, d := range inst {
		if d < b.Lo[i] || d > b.Hi[i] {
			return false
		}
	}
	return true
}

// Sample draws an instance uniformly at random from the box.
func (b Box) Sample(rng *xrand.Rand) Instance {
	inst := make(Instance, len(b.Lo))
	for i := range inst {
		inst[i] = rng.IntRange(b.Lo[i], b.Hi[i])
	}
	return inst
}
