package expr

import "lamb/internal/ir"

// AATB is the expression X := A·Aᵀ·B with A ∈ ℝ^{d0×d1} and B ∈ ℝ^{d0×d2}
// (paper §3.2.2). An instance is the tuple (d0, d1, d2).
//
// The enumerator derives the paper's five algorithms (Figure 5) from the
// three-factor associative product A·Aᵀ·B: when M := A·Aᵀ is computed
// first the Gram rewrite offers SYRK or GEMM and the symmetric result
// offers SYMM or GEMM (with a triangle-to-full copy inserted when SYRK
// feeds GEMM) — four algorithms; when M := Aᵀ·B is computed first only
// GEMM applies to both products — one more:
//
//	1: M1 := syrk(A·Aᵀ);             X := symm(M1·B)
//	2: M1 := syrk(A·Aᵀ); tri2full;   X := gemm(M1·B)
//	3: M1 := gemm(A·Aᵀ);             X := symm(M1·B)
//	4: M1 := gemm(A·Aᵀ);             X := gemm(M1·B)
//	5: M1 := gemm(Aᵀ·B);             X := gemm(A·M1)
type AATB struct{}

// NewAATB returns the AAᵀB expression.
func NewAATB() AATB { return AATB{} }

// Name implements Expression.
func (AATB) Name() string { return "AATB" }

// Arity implements Expression: instances are (d0, d1, d2).
func (AATB) Arity() int { return 3 }

// Validate implements Expression.
func (e AATB) Validate(inst Instance) error {
	return validateDims(e.Name(), e.Arity(), inst)
}

// NumAlgorithms returns 5, the size of the paper's algorithm set.
func (AATB) NumAlgorithms() int { return 5 }

// def builds the IR: the associative product A·Aᵀ·B.
func (e AATB) def() *ir.Def {
	a := ir.NewOperand("A", 0, 1)
	b := ir.NewOperand("B", 0, 2)
	return &ir.Def{Name: e.Name(), Arity: e.Arity(), Root: ir.Mul(a, ir.T(a), b)}
}

// Algorithms implements Expression, returning the paper's Algorithms 1–5
// in order by binding the cached symbolic set.
func (e AATB) Algorithms(inst Instance) []Algorithm {
	if err := e.Validate(inst); err != nil {
		panic(err)
	}
	return cachedSet(e.Name(), e.def).MustBind(inst)
}
