package expr

import "lamb/internal/kernels"

// AATB is the expression X := A·Aᵀ·B with A ∈ ℝ^{d0×d1} and B ∈ ℝ^{d0×d2}
// (paper §3.2.2). An instance is the tuple (d0, d1, d2).
//
// The algorithm set combines the GEMM, SYRK, and SYMM kernels. When
// M := A·Aᵀ is computed first there are four algorithms (SYRK or GEMM for
// the first product × SYMM or GEMM for the second, with a triangle-to-
// full copy inserted when SYRK feeds GEMM); when M := Aᵀ·B is computed
// first only GEMM applies to both products, giving one more — five
// algorithms in total (Figure 5).
type AATB struct{}

// NewAATB returns the AAᵀB expression.
func NewAATB() AATB { return AATB{} }

// Name implements Expression.
func (AATB) Name() string { return "AATB" }

// Arity implements Expression: instances are (d0, d1, d2).
func (AATB) Arity() int { return 3 }

// Validate implements Expression.
func (e AATB) Validate(inst Instance) error {
	return validateDims(e.Name(), e.Arity(), inst)
}

// NumAlgorithms returns 5, the size of the paper's algorithm set.
func (AATB) NumAlgorithms() int { return 5 }

// Algorithms implements Expression, returning the paper's Algorithms 1–5
// in order:
//
//	1: M1 := syrk(A·Aᵀ);             X := symm(M1·B)
//	2: M1 := syrk(A·Aᵀ); tri2full;   X := gemm(M1·B)
//	3: M1 := gemm(A·Aᵀ);             X := symm(M1·B)
//	4: M1 := gemm(A·Aᵀ);             X := gemm(M1·B)
//	5: M1 := gemm(Aᵀ·B);             X := gemm(A·M1)
func (e AATB) Algorithms(inst Instance) []Algorithm {
	if err := e.Validate(inst); err != nil {
		panic(err)
	}
	d0, d1, d2 := inst[0], inst[1], inst[2]
	base := func(m1 Shape) map[string]Shape {
		return map[string]Shape{
			"A":  {Rows: d0, Cols: d1},
			"B":  {Rows: d0, Cols: d2},
			"M1": m1,
			"X":  {Rows: d0, Cols: d2},
		}
	}
	sq := Shape{Rows: d0, Cols: d0}
	rect := Shape{Rows: d1, Cols: d2}

	return []Algorithm{
		{
			Index: 1,
			Name:  "M1:=syrk(A·Aᵀ); X:=symm(M1·B)",
			Calls: []kernels.Call{
				kernels.NewSyrk(d0, d1, "A", "M1"),
				kernels.NewSymm(d0, d2, "M1", "B", "X"),
			},
			Shapes: base(sq), Inputs: []string{"A", "B"}, Output: "X",
		},
		{
			Index: 2,
			Name:  "M1:=syrk(A·Aᵀ); tri2full(M1); X:=gemm(M1·B)",
			Calls: []kernels.Call{
				kernels.NewSyrk(d0, d1, "A", "M1"),
				kernels.NewTri2Full(d0, "M1"),
				kernels.NewGemm(d0, d2, d0, "M1", "B", "X", false, false),
			},
			Shapes: base(sq), Inputs: []string{"A", "B"}, Output: "X",
		},
		{
			Index: 3,
			Name:  "M1:=gemm(A·Aᵀ); X:=symm(M1·B)",
			Calls: []kernels.Call{
				kernels.NewGemm(d0, d0, d1, "A", "A", "M1", false, true),
				kernels.NewSymm(d0, d2, "M1", "B", "X"),
			},
			Shapes: base(sq), Inputs: []string{"A", "B"}, Output: "X",
		},
		{
			Index: 4,
			Name:  "M1:=gemm(A·Aᵀ); X:=gemm(M1·B)",
			Calls: []kernels.Call{
				kernels.NewGemm(d0, d0, d1, "A", "A", "M1", false, true),
				kernels.NewGemm(d0, d2, d0, "M1", "B", "X", false, false),
			},
			Shapes: base(sq), Inputs: []string{"A", "B"}, Output: "X",
		},
		{
			Index: 5,
			Name:  "M1:=gemm(Aᵀ·B); X:=gemm(A·M1)",
			Calls: []kernels.Call{
				kernels.NewGemm(d1, d2, d0, "A", "B", "M1", true, false),
				kernels.NewGemm(d0, d2, d1, "A", "M1", "X", false, false),
			},
			Shapes: base(rect), Inputs: []string{"A", "B"}, Output: "X",
		},
	}
}
