package expr

import (
	"fmt"
	"strings"

	"lamb/internal/kernels"
)

// Chain is the matrix chain expression X := A₁·A₂·…·Aₙ with n terms.
// An instance has n+1 dimensions (d0, …, dn): term i is dᵢ₋₁×dᵢ.
//
// The algorithm set is every order in which the n−1 pairwise products can
// be performed — (n−1)! algorithms. Note that this is finer-grained than
// parenthesisations: the paper's Algorithms 2 and 5 for ABCD share the
// tree (AB)(CD) but differ in which product is computed first, which
// matters for inter-kernel cache effects.
type Chain struct {
	// Terms is the number of matrices in the chain (≥ 2).
	Terms int
}

// NewChainABCD returns the paper's 4-term matrix chain expression.
func NewChainABCD() Chain { return Chain{Terms: 4} }

// Name implements Expression.
func (c Chain) Name() string {
	if c.Terms == 4 {
		return "chain-ABCD"
	}
	return fmt.Sprintf("chain-%d", c.Terms)
}

// Arity implements Expression: a chain of n terms has n+1 dimensions.
func (c Chain) Arity() int { return c.Terms + 1 }

// Validate implements Expression.
func (c Chain) Validate(inst Instance) error {
	if c.Terms < 2 {
		return fmt.Errorf("expr: chain needs at least 2 terms, has %d", c.Terms)
	}
	if c.Terms > 26 {
		return fmt.Errorf("expr: chain of %d terms exceeds the naming limit of 26", c.Terms)
	}
	return validateDims(c.Name(), c.Arity(), inst)
}

// NumAlgorithms returns (n−1)!, the size of the algorithm set.
func (c Chain) NumAlgorithms() int {
	n := 1
	for i := 2; i < c.Terms; i++ {
		n *= i
	}
	return n
}

// segment is a contiguous run of the chain that has been reduced to a
// single operand covering dims[lo..hi].
type segment struct {
	lo, hi int
	id     string
}

// Algorithms implements Expression, enumerating all (n−1)! multiplication
// orders via depth-first search. For the 4-term chain the DFS visits the
// paper's Algorithms 1–6 in exactly the paper's order.
func (c Chain) Algorithms(inst Instance) []Algorithm {
	if err := c.Validate(inst); err != nil {
		panic(err)
	}
	n := c.Terms
	inputs := make([]string, n)
	segs := make([]segment, n)
	shapes := make(map[string]Shape, 2*n)
	for i := 0; i < n; i++ {
		id := string(rune('A' + i))
		inputs[i] = id
		segs[i] = segment{lo: i, hi: i + 1, id: id}
		shapes[id] = Shape{Rows: inst[i], Cols: inst[i+1]}
	}

	var algs []Algorithm
	var calls []kernels.Call
	var steps []string
	tempShapes := make(map[string]Shape)

	var rec func(segs []segment, nextTemp int)
	rec = func(segs []segment, nextTemp int) {
		if len(segs) == 1 {
			alg := Algorithm{
				Index:  len(algs) + 1,
				Name:   strings.Join(steps, "; "),
				Calls:  append([]kernels.Call(nil), calls...),
				Shapes: make(map[string]Shape, len(shapes)+len(tempShapes)),
				Inputs: append([]string(nil), inputs...),
				Output: "X",
			}
			for id, sh := range shapes {
				alg.Shapes[id] = sh
			}
			for id, sh := range tempShapes {
				alg.Shapes[id] = sh
			}
			algs = append(algs, alg)
			return
		}
		for p := 0; p < len(segs)-1; p++ {
			left, right := segs[p], segs[p+1]
			m, k, nn := inst[left.lo], inst[left.hi], inst[right.hi]
			var outID string
			if len(segs) == 2 {
				outID = "X"
			} else {
				outID = fmt.Sprintf("M%d", nextTemp)
			}
			tempShapes[outID] = Shape{Rows: m, Cols: nn}
			calls = append(calls, kernels.NewGemm(m, nn, k, left.id, right.id, outID, false, false))
			steps = append(steps, fmt.Sprintf("%s:=%s·%s", outID, left.id, right.id))

			merged := make([]segment, 0, len(segs)-1)
			merged = append(merged, segs[:p]...)
			merged = append(merged, segment{lo: left.lo, hi: right.hi, id: outID})
			merged = append(merged, segs[p+2:]...)
			rec(merged, nextTemp+1)

			calls = calls[:len(calls)-1]
			steps = steps[:len(steps)-1]
			delete(tempShapes, outID)
		}
	}
	rec(segs, 1)
	return algs
}

// MinFlopsParenthesisation solves the classic matrix-chain ordering
// problem by dynamic programming in O(n³) time: given the n+1 chain
// dimensions it returns the minimum FLOP count over all parenthesisations
// (counting 2·m·n·k per product, as the paper does for GEMM) and a fully
// parenthesised rendering of one optimal tree.
//
// This is the textbook baseline against which the enumerated algorithm
// set is checked: the minimum over the (n−1)! enumerated algorithms must
// equal the DP optimum.
func MinFlopsParenthesisation(dims []int) (float64, string) {
	n := len(dims) - 1
	if n < 1 {
		panic(fmt.Sprintf("expr: chain DP needs at least one term, dims %v", dims))
	}
	cost := make([][]float64, n)
	split := make([][]int, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		split[i] = make([]int, n)
	}
	for span := 1; span < n; span++ {
		for i := 0; i+span < n; i++ {
			j := i + span
			best := -1.0
			for s := i; s < j; s++ {
				c := cost[i][s] + cost[s+1][j] + 2*float64(dims[i])*float64(dims[s+1])*float64(dims[j+1])
				if best < 0 || c < best {
					best = c
					split[i][j] = s
				}
			}
			cost[i][j] = best
		}
	}
	var render func(i, j int) string
	render = func(i, j int) string {
		if i == j {
			return string(rune('A' + i))
		}
		s := split[i][j]
		return "(" + render(i, s) + render(s+1, j) + ")"
	}
	return cost[0][n-1], render(0, n-1)
}
