package expr

import (
	"fmt"

	"lamb/internal/ir"
)

// Chain is the matrix chain expression X := A₁·A₂·…·Aₙ with n terms.
// An instance has n+1 dimensions (d0, …, dn): term i is dᵢ₋₁×dᵢ.
//
// The algorithm set is every order in which the n−1 pairwise products can
// be performed — (n−1)! algorithms. Note that this is finer-grained than
// parenthesisations: the paper's Algorithms 2 and 5 for ABCD share the
// tree (AB)(CD) but differ in which product is computed first, which
// matters for inter-kernel cache effects. The enumerator's depth-first
// contraction visits the paper's Algorithms 1–6 in exactly the paper's
// order for the 4-term chain.
type Chain struct {
	// Terms is the number of matrices in the chain (≥ 2).
	Terms int
}

// NewChainABCD returns the paper's 4-term matrix chain expression.
func NewChainABCD() Chain { return Chain{Terms: 4} }

// Name implements Expression.
func (c Chain) Name() string {
	if c.Terms == 4 {
		return "chain-ABCD"
	}
	return fmt.Sprintf("chain-%d", c.Terms)
}

// Arity implements Expression: a chain of n terms has n+1 dimensions.
func (c Chain) Arity() int { return c.Terms + 1 }

// Validate implements Expression.
func (c Chain) Validate(inst Instance) error {
	if c.Terms < 2 {
		return fmt.Errorf("expr: chain needs at least 2 terms, has %d", c.Terms)
	}
	if c.Terms > 26 {
		return fmt.Errorf("expr: chain of %d terms exceeds the naming limit of 26", c.Terms)
	}
	return validateDims(c.Name(), c.Arity(), inst)
}

// NumAlgorithms returns (n−1)!, the size of the algorithm set.
func (c Chain) NumAlgorithms() int {
	n := 1
	for i := 2; i < c.Terms; i++ {
		n *= i
	}
	return n
}

// def builds the chain's IR: an associative product of n general
// operands, rendered in the paper's bare Figure-3 notation.
func (c Chain) def() *ir.Def {
	factors := make([]ir.Node, c.Terms)
	for i := 0; i < c.Terms; i++ {
		factors[i] = ir.NewOperand(string(rune('A'+i)), ir.Dim(i), ir.Dim(i+1))
	}
	return &ir.Def{Name: c.Name(), Arity: c.Arity(), Root: ir.Mul(factors...), Style: ir.StyleBare}
}

// Algorithms implements Expression by binding the chain's cached
// symbolic set (enumerated once per term count).
func (c Chain) Algorithms(inst Instance) []Algorithm {
	if err := c.Validate(inst); err != nil {
		panic(err)
	}
	return cachedSet(c.Name(), c.def).MustBind(inst)
}

// MinFlopsParenthesisation solves the classic matrix-chain ordering
// problem by dynamic programming in O(n³) time: given the n+1 chain
// dimensions it returns the minimum FLOP count over all parenthesisations
// (counting 2·m·n·k per product, as the paper does for GEMM) and a fully
// parenthesised rendering of one optimal tree.
//
// This is the textbook baseline against which the enumerated algorithm
// set is checked: the minimum over the (n−1)! enumerated algorithms must
// equal the DP optimum.
func MinFlopsParenthesisation(dims []int) (float64, string) {
	n := len(dims) - 1
	if n < 1 {
		panic(fmt.Sprintf("expr: chain DP needs at least one term, dims %v", dims))
	}
	cost := make([][]float64, n)
	split := make([][]int, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		split[i] = make([]int, n)
	}
	for span := 1; span < n; span++ {
		for i := 0; i+span < n; i++ {
			j := i + span
			best := -1.0
			for s := i; s < j; s++ {
				c := cost[i][s] + cost[s+1][j] + 2*float64(dims[i])*float64(dims[s+1])*float64(dims[j+1])
				if best < 0 || c < best {
					best = c
					split[i][j] = s
				}
			}
			cost[i][j] = best
		}
	}
	var render func(i, j int) string
	render = func(i, j int) string {
		if i == j {
			return string(rune('A' + i))
		}
		s := split[i][j]
		return "(" + render(i, s) + render(s+1, j) + ")"
	}
	return cost[0][n-1], render(0, n-1)
}
