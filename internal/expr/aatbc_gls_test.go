package expr

import (
	"strings"
	"testing"
	"testing/quick"

	"lamb/internal/kernels"
	"lamb/internal/xrand"
)

func TestAATBCEnumeratesFifteenAlgorithms(t *testing.T) {
	e := NewAATBC()
	inst := Instance{60, 70, 80, 90}
	algs := e.Algorithms(inst)
	if len(algs) != 15 || e.NumAlgorithms() != 15 {
		t.Fatalf("got %d algorithms", len(algs))
	}
	seen := map[string]bool{}
	syrkCount, symmCount := 0, 0
	for i, a := range algs {
		if a.Index != i+1 {
			t.Errorf("algorithm %d has index %d", i+1, a.Index)
		}
		if err := a.Validate(); err != nil {
			t.Errorf("algorithm %d invalid: %v", i+1, err)
		}
		if seen[a.Name] {
			t.Errorf("duplicate algorithm %q", a.Name)
		}
		seen[a.Name] = true
		for _, c := range a.Calls {
			switch c.Kind {
			case kernels.Syrk:
				syrkCount++
			case kernels.Symm:
				symmCount++
			}
		}
	}
	// Six derivations use SYRK for the Gram product, six consume the
	// symmetric intermediate with SYMM.
	if syrkCount != 6 || symmCount != 6 {
		t.Fatalf("kernel usage: %d syrk, %d symm derivations (want 6, 6)", syrkCount, symmCount)
	}
}

func TestAATBCEmbedsAATBStructure(t *testing.T) {
	// The first four algorithms extend the paper's AAᵀB Algorithms 1–4
	// with a trailing ·C product; at this instance (small d0, d2 < d3)
	// algorithm 1 is the overall FLOP minimum: SYRK halves the Gram cost
	// and the left-to-right contraction keeps intermediates small.
	algs := NewAATBC().Algorithms(Instance{50, 300, 200, 400})
	if !strings.HasPrefix(algs[0].Name, "M1:=syrk(A·Aᵀ); M2:=symm(M1·B)") {
		t.Fatalf("algorithm 1 is %q", algs[0].Name)
	}
	min := algs[0].Flops()
	for _, a := range algs[1:] {
		if a.Flops() < min {
			t.Fatalf("algorithm %d (%q) undercuts the SYRK+SYMM derivation", a.Index, a.Name)
		}
	}
}

func TestAATBCFlopFormulas(t *testing.T) {
	d0, d1, d2, d3 := 60.0, 70.0, 80.0, 90.0
	algs := NewAATBC().Algorithms(Instance{60, 70, 80, 90})
	// Algorithm 1: syrk + symm + gemm.
	want1 := (d0+1)*d0*d1 + 2*d0*d0*d2 + 2*d0*d2*d3
	if algs[0].Flops() != want1 {
		t.Fatalf("algorithm 1 flops %v, want %v", algs[0].Flops(), want1)
	}
	// Algorithms 1 and 2 tie (Tri2Full is free), as do 3 and 4.
	if algs[0].Flops() != algs[1].Flops() || algs[2].Flops() != algs[3].Flops() {
		t.Fatal("tri2full variants must tie on FLOPs")
	}
}

func TestGLSEnumeratesEightAlgorithms(t *testing.T) {
	e := NewGLS()
	inst := Instance{60, 70, 80, 90}
	algs := e.Algorithms(inst)
	if len(algs) != 8 || e.NumAlgorithms() != 8 {
		t.Fatalf("got %d algorithms", len(algs))
	}
	for i, a := range algs {
		if err := a.Validate(); err != nil {
			t.Errorf("algorithm %d invalid: %v", i+1, err)
		}
		if len(a.Calls) != 7 {
			t.Errorf("algorithm %d has %d calls, want 7", i+1, len(a.Calls))
		}
		if len(a.SPDInputs) != 1 || a.SPDInputs[0] != "R" {
			t.Errorf("algorithm %d SPD inputs %v", i+1, a.SPDInputs)
		}
	}
}

func TestGLSTieGroupsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		// d0 ≥ 2: at d0 = 1 SYRK's (d0+1)·d0·d1 equals GEMM's 2·d0²·d1.
		inst := Instance{rng.IntRange(2, 400), rng.IntRange(1, 400), rng.IntRange(1, 400), rng.IntRange(1, 400)}
		algs := NewGLS().Algorithms(inst)
		// Pipeline-ordering variants tie exactly: (1,2), (3,4), (5,6),
		// (7,8); SYRK variants strictly undercut their GEMM twins.
		for i := 0; i < 8; i += 2 {
			if algs[i].Flops() != algs[i+1].Flops() {
				return false
			}
		}
		return algs[0].Flops() < algs[4].Flops() && algs[2].Flops() < algs[6].Flops()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGLSUsesSixKernelKinds(t *testing.T) {
	algs := NewGLS().Algorithms(Instance{40, 50, 60, 70})
	kinds := map[kernels.Kind]bool{}
	for _, a := range algs {
		for _, c := range a.Calls {
			kinds[c.Kind] = true
		}
	}
	for _, want := range []kernels.Kind{kernels.Syrk, kernels.Gemm, kernels.AddSym, kernels.Potrf, kernels.Trsm} {
		if !kinds[want] {
			t.Errorf("kernel kind %v unused", want)
		}
	}
}

func TestNewExpressionValidateRejects(t *testing.T) {
	for _, e := range []Expression{NewAATBC(), NewGLS()} {
		if err := e.Validate(Instance{1, 2, 3}); err == nil {
			t.Errorf("%s accepted wrong arity", e.Name())
		}
		if err := e.Validate(Instance{1, 2, 0, 4}); err == nil {
			t.Errorf("%s accepted non-positive dim", e.Name())
		}
	}
}

func TestRegistryLookup(t *testing.T) {
	wantNames := []string{"aatb", "aatbc", "atab", "chain", "gls", "lstsq"}
	got := Names()
	if len(got) != len(wantNames) {
		t.Fatalf("registry names %v", got)
	}
	for i, n := range wantNames {
		if got[i] != n {
			t.Fatalf("registry names %v, want %v", got, wantNames)
		}
	}
	for _, n := range wantNames {
		e, err := Lookup(n)
		if err != nil {
			t.Fatalf("lookup %q: %v", n, err)
		}
		algs := e.Algorithms(defaultProbe(e.Arity()))
		if len(algs) == 0 {
			t.Fatalf("%q generated no algorithms", n)
		}
	}
	if e, err := Lookup("CHAIN"); err != nil || e.Name() != "chain-ABCD" {
		t.Fatalf("case-insensitive lookup: %v, %v", e, err)
	}
	if _, err := Lookup("nope"); err == nil || !strings.Contains(err.Error(), "aatbc") {
		t.Fatalf("unknown lookup error %v should list registered names", err)
	}
}

func defaultProbe(arity int) Instance {
	inst := make(Instance, arity)
	for i := range inst {
		inst[i] = 10 + i
	}
	return inst
}
