package expr

import (
	"fmt"
	"sort"
	"strings"
)

// registry maps CLI/API names to built-in expression constructors. The
// paper's 4-term chain registers as "chain"; the general n-term chain
// is parameterised and stays outside the registry.
var registry = map[string]func() Expression{
	"chain": func() Expression { return NewChainABCD() },
	"aatb":  func() Expression { return NewAATB() },
	"atab":  func() Expression { return NewATAB() },
	"lstsq": func() Expression { return NewLstSq() },
	"aatbc": func() Expression { return NewAATBC() },
	"gls":   func() Expression { return NewGLS() },
}

// Names returns the registered expression names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the built-in expression registered under name
// (case-insensitive).
func Lookup(name string) (Expression, error) {
	if mk, ok := registry[strings.ToLower(name)]; ok {
		return mk(), nil
	}
	return nil, fmt.Errorf("expr: unknown expression %q (registered: %s)",
		name, strings.Join(Names(), ", "))
}
