// Package report renders experiment results as ASCII tables and figures
// (scatter plots, histograms, line plots) and exports raw data as CSV.
// Every table and figure in the paper has a textual counterpart here, so
// the whole evaluation regenerates in a terminal or a CI log.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Table renders rows with aligned columns. The first row is the header.
func Table(w io.Writer, rows [][]string) error {
	if len(rows) == 0 {
		return nil
	}
	widths := make([]int, 0)
	for _, row := range rows {
		for i, cell := range row {
			if i == len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for ri, row := range rows {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		line := strings.TrimRight(b.String(), " ")
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
		if ri == 0 {
			if _, err := fmt.Fprintln(w, strings.Repeat("-", lineWidth(widths))); err != nil {
				return err
			}
		}
	}
	return nil
}

func lineWidth(widths []int) int {
	total := 0
	for _, w := range widths {
		total += w
	}
	return total + 2*(len(widths)-1)
}

// Scatter renders an ASCII scatter plot of (x, y) points on a w×h grid
// with the given axis ranges. Denser cells render darker (· : * #).
func Scatter(out io.Writer, xs, ys []float64, xLo, xHi, yLo, yHi float64, w, h int, xLabel, yLabel string) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("report: scatter with %d x and %d y values", len(xs), len(ys))
	}
	if w < 2 || h < 2 || xHi <= xLo || yHi <= yLo {
		return fmt.Errorf("report: invalid scatter geometry")
	}
	grid := make([][]int, h)
	for i := range grid {
		grid[i] = make([]int, w)
	}
	for i := range xs {
		cx := int(float64(w) * (xs[i] - xLo) / (xHi - xLo))
		cy := int(float64(h) * (ys[i] - yLo) / (yHi - yLo))
		cx = clamp(cx, 0, w-1)
		cy = clamp(cy, 0, h-1)
		grid[h-1-cy][cx]++ // y grows upward
	}
	glyph := func(c int) byte {
		switch {
		case c == 0:
			return ' '
		case c == 1:
			return '.'
		case c <= 3:
			return ':'
		case c <= 8:
			return '*'
		default:
			return '#'
		}
	}
	if _, err := fmt.Fprintf(out, "%s\n", yLabel); err != nil {
		return err
	}
	for r := 0; r < h; r++ {
		row := make([]byte, w)
		for c := 0; c < w; c++ {
			row[c] = glyph(grid[r][c])
		}
		y := yHi - (float64(r)+0.5)*(yHi-yLo)/float64(h)
		if _, err := fmt.Fprintf(out, "%6.2f |%s|\n", y, row); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(out, "       %s\n", strings.Repeat("-", w+2)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(out, "       %-8.2f%s%8.2f  (%s)\n", xLo, strings.Repeat(" ", max(0, w-14)), xHi, xLabel)
	return err
}

func clamp(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Histogram renders counts as horizontal bars with labels.
func Histogram(out io.Writer, labels []string, counts []int, maxBar int) error {
	if len(labels) != len(counts) {
		return fmt.Errorf("report: histogram with %d labels and %d counts", len(labels), len(counts))
	}
	peak := 0
	for _, c := range counts {
		if c > peak {
			peak = c
		}
	}
	if peak == 0 {
		peak = 1
	}
	for i := range labels {
		bar := counts[i] * maxBar / peak
		if counts[i] > 0 && bar == 0 {
			bar = 1
		}
		if _, err := fmt.Fprintf(out, "%12s |%s %d\n", labels[i], strings.Repeat("█", bar), counts[i]); err != nil {
			return err
		}
	}
	return nil
}

// ThicknessDistribution renders the paper's Figures 7/10: per dimension,
// the sorted region thicknesses as a quantile table.
func ThicknessDistribution(out io.Writer, byDim [][]int) error {
	rows := [][]string{{"dim", "n", "min", "p25", "median", "p75", "max"}}
	for d, ths := range byDim {
		if len(ths) == 0 {
			rows = append(rows, []string{fmt.Sprintf("d%d", d), "0", "-", "-", "-", "-", "-"})
			continue
		}
		sorted := append([]int(nil), ths...)
		sort.Ints(sorted)
		q := func(f float64) string {
			idx := int(f * float64(len(sorted)-1))
			return fmt.Sprint(sorted[idx])
		}
		rows = append(rows, []string{
			fmt.Sprintf("d%d", d), fmt.Sprint(len(sorted)),
			q(0), q(0.25), q(0.5), q(0.75), q(1),
		})
	}
	return Table(out, rows)
}

// Line renders one series as an ASCII line plot: x values must be
// ascending. Used for the efficiency-along-a-line figures (8 and 11).
func Line(out io.Writer, xs []int, ys []float64, yLo, yHi float64, h int, label string) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("report: line with %d x and %d y values", len(xs), len(ys))
	}
	if len(xs) == 0 {
		return nil
	}
	w := len(xs)
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = make([]byte, w)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	for i, y := range ys {
		cy := int(float64(h) * (y - yLo) / (yHi - yLo))
		cy = clamp(cy, 0, h-1)
		grid[h-1-cy][i] = '*'
	}
	if _, err := fmt.Fprintf(out, "%s\n", label); err != nil {
		return err
	}
	for r := 0; r < h; r++ {
		y := yHi - (float64(r)+0.5)*(yHi-yLo)/float64(h)
		if _, err := fmt.Fprintf(out, "%6.2f |%s|\n", y, string(grid[r])); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(out, "       x: %d .. %d (%d samples)\n", xs[0], xs[len(xs)-1], len(xs))
	return err
}

// CSV writes rows as comma-separated values, quoting cells that contain
// commas or quotes.
func CSV(w io.Writer, rows [][]string) error {
	for _, row := range rows {
		cells := make([]string, len(row))
		for i, c := range row {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			cells[i] = c
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}
