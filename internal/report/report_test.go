package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	var b strings.Builder
	err := Table(&b, [][]string{
		{"name", "value"},
		{"alpha", "1"},
		{"b", "22222"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name ") {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("no separator: %q", lines[1])
	}
	if !strings.Contains(lines[3], "22222") {
		t.Fatalf("row lost: %q", lines[3])
	}
}

func TestTableEmpty(t *testing.T) {
	var b strings.Builder
	if err := Table(&b, nil); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatal("empty table should render nothing")
	}
}

func TestScatterRendersPoints(t *testing.T) {
	var b strings.Builder
	xs := []float64{0.1, 0.1, 0.5, 0.9}
	ys := []float64{0.1, 0.1, 0.5, 0.9}
	if err := Scatter(&b, xs, ys, 0, 1, 0, 1, 20, 10, "flop score", "time score"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "time score") || !strings.Contains(out, "flop score") {
		t.Fatalf("labels missing:\n%s", out)
	}
	marks := strings.Count(out, ".") + strings.Count(out, ":")
	if marks < 3 {
		t.Fatalf("expected at least 3 marks, got %d:\n%s", marks, out)
	}
}

func TestScatterErrors(t *testing.T) {
	var b strings.Builder
	if err := Scatter(&b, []float64{1}, nil, 0, 1, 0, 1, 10, 10, "x", "y"); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if err := Scatter(&b, nil, nil, 1, 0, 0, 1, 10, 10, "x", "y"); err == nil {
		t.Fatal("inverted x range accepted")
	}
	if err := Scatter(&b, nil, nil, 0, 1, 0, 1, 1, 10, "x", "y"); err == nil {
		t.Fatal("degenerate width accepted")
	}
}

func TestScatterClampsOutliers(t *testing.T) {
	var b strings.Builder
	if err := Scatter(&b, []float64{-5, 99}, []float64{-5, 99}, 0, 1, 0, 1, 10, 5, "x", "y"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), ".") {
		t.Fatal("outliers should clamp onto the grid")
	}
}

func TestHistogram(t *testing.T) {
	var b strings.Builder
	if err := Histogram(&b, []string{"0-100", "100-200"}, []int{10, 5}, 20); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "0-100") || !strings.Contains(out, "10") {
		t.Fatalf("histogram output:\n%s", out)
	}
	long := strings.Count(strings.Split(out, "\n")[0], "█")
	short := strings.Count(strings.Split(out, "\n")[1], "█")
	if long <= short {
		t.Fatalf("bar lengths %d vs %d", long, short)
	}
}

func TestHistogramSmallNonZeroGetsBar(t *testing.T) {
	var b strings.Builder
	if err := Histogram(&b, []string{"a", "b"}, []int{1000, 1}, 10); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if !strings.Contains(lines[1], "█") {
		t.Fatal("non-zero count should render at least one bar cell")
	}
}

func TestHistogramMismatch(t *testing.T) {
	var b strings.Builder
	if err := Histogram(&b, []string{"a"}, []int{1, 2}, 10); err == nil {
		t.Fatal("mismatch accepted")
	}
}

func TestThicknessDistribution(t *testing.T) {
	var b strings.Builder
	byDim := [][]int{
		{10, 30, 20, 50, 40},
		{},
		{100},
	}
	if err := ThicknessDistribution(&b, byDim); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "d0") || !strings.Contains(out, "d2") {
		t.Fatalf("dims missing:\n%s", out)
	}
	if !strings.Contains(out, "30") { // median of d0
		t.Fatalf("median missing:\n%s", out)
	}
	if !strings.Contains(out, "-") { // empty dim placeholder
		t.Fatalf("empty dim placeholder missing:\n%s", out)
	}
}

func TestLinePlot(t *testing.T) {
	var b strings.Builder
	xs := []int{100, 110, 120, 130}
	ys := []float64{0.2, 0.4, 0.6, 0.8}
	if err := Line(&b, xs, ys, 0, 1, 5, "alg 1 efficiency"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "alg 1 efficiency") {
		t.Fatalf("label missing:\n%s", out)
	}
	if strings.Count(out, "*") != 4 {
		t.Fatalf("expected 4 marks:\n%s", out)
	}
	if !strings.Contains(out, "100 .. 130") {
		t.Fatalf("x range missing:\n%s", out)
	}
}

func TestLineErrors(t *testing.T) {
	var b strings.Builder
	if err := Line(&b, []int{1}, nil, 0, 1, 5, "x"); err == nil {
		t.Fatal("mismatch accepted")
	}
	if err := Line(&b, nil, nil, 0, 1, 5, "x"); err != nil {
		t.Fatal("empty line should be a no-op")
	}
}

func TestCSVQuoting(t *testing.T) {
	var b strings.Builder
	err := CSV(&b, [][]string{
		{"a", "b,c", `d"e`},
		{"1", "2", "3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "a,\"b,c\",\"d\"\"e\"\n1,2,3\n"
	if b.String() != want {
		t.Fatalf("CSV = %q, want %q", b.String(), want)
	}
}
