package exec

import (
	"testing"

	"lamb/internal/expr"
	"lamb/internal/kernels"
)

func TestPlanCacheAlgHitMissEvict(t *testing.T) {
	c := NewPlanCache(2, 2)
	algs := expr.NewAATB().Algorithms(expr.Instance{8, 6, 4})
	p0, err := c.Plan(&algs[0])
	if err != nil {
		t.Fatal(err)
	}
	if p1, err := c.Plan(&algs[0]); err != nil || p1 != p0 {
		t.Fatalf("repeat Plan returned %p (err %v), want cached %p", p1, err, p0)
	}
	if _, err := c.Plan(&algs[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Plan(&algs[2]); err != nil { // evicts algs[0]
		t.Fatal(err)
	}
	stats, _ := c.Stats()
	if stats.Hits != 1 || stats.Misses != 3 || stats.Evictions != 1 {
		t.Fatalf("alg stats %+v", stats)
	}
	// The evicted plan recompiles into a fresh object.
	p0again, err := c.Plan(&algs[0])
	if err != nil {
		t.Fatal(err)
	}
	if p0again == p0 {
		t.Fatal("evicted plan was not recompiled")
	}
}

func TestPlanCacheCallKeyedByMemoKey(t *testing.T) {
	c := NewPlanCache(2, 2)
	// Same shape, different operand IDs: one plan.
	a := kernels.NewGemm(8, 9, 10, "A", "B", "C", false, false)
	b := kernels.NewGemm(8, 9, 10, "P", "Q", "R", false, false)
	pa, err := c.CallPlan(a)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := c.CallPlan(b)
	if err != nil {
		t.Fatal(err)
	}
	if pa != pb {
		t.Fatal("calls with equal memo keys got distinct plans")
	}
	// A transposed read is a different key.
	tr, err := c.CallPlan(kernels.NewGemm(8, 9, 10, "A", "B", "C", true, false))
	if err != nil {
		t.Fatal(err)
	}
	if tr == pa {
		t.Fatal("transposed call shared the untransposed plan")
	}
	_, stats := c.Stats()
	if stats.Hits != 1 || stats.Misses != 2 {
		t.Fatalf("call stats %+v", stats)
	}
}

func TestPlanCacheRejectsInvalid(t *testing.T) {
	c := NewPlanCache(2, 2)
	if _, err := c.Plan(&expr.Algorithm{Name: "empty"}); err == nil {
		t.Fatal("invalid algorithm compiled")
	}
	if _, err := c.CallPlan(kernels.Call{Kind: kernels.Gemm}); err == nil {
		t.Fatal("invalid call compiled")
	}
}

func TestPlanCacheHitAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	c := NewPlanCache(4, 4)
	algs := expr.NewAATB().Algorithms(expr.Instance{8, 6, 4})
	call := kernels.NewSyrkT(8, 6, "A", "C")
	if _, err := c.Plan(&algs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CallPlan(call); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := c.Plan(&algs[0]); err != nil {
			t.Error(err)
		}
		if _, err := c.CallPlan(call); err != nil {
			t.Error(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("cache hit allocated %v per run, want 0", allocs)
	}
}
