package exec

import (
	"lamb/internal/expr"
	"lamb/internal/kernels"
	"lamb/internal/machine"
)

// Simulated is the Executor backed by the deterministic machine model.
// It reproduces the paper's protocol: the cache is flushed before each
// repetition (the cache state starts empty) and evolves across the calls
// of the algorithm, so later calls see warm inputs.
type Simulated struct {
	m *machine.Machine
}

// NewSimulated returns a simulated executor on the given machine.
func NewSimulated(m *machine.Machine) *Simulated { return &Simulated{m: m} }

// NewDefaultSimulated returns a simulated executor on the calibrated
// default machine.
func NewDefaultSimulated() *Simulated { return NewSimulated(machine.NewDefault()) }

// Machine returns the underlying machine model.
func (s *Simulated) Machine() *machine.Machine { return s.m }

// TimeAlgorithm implements Executor.
func (s *Simulated) TimeAlgorithm(alg *expr.Algorithm, rep uint64) []float64 {
	cs := s.m.NewCacheState()
	times := make([]float64, len(alg.Calls))
	for i, call := range alg.Calls {
		hot := cs.HotFraction(call)
		times[i] = s.m.Time(call, hot, rep)
		cs.Record(call)
	}
	return times
}

// TimeCallCold implements Executor: an isolated benchmark with a flushed
// cache, an independent noise realisation, and the machine's systematic
// benchmark bias (a separate benchmarking campaign never reproduces
// in-sequence execution exactly).
func (s *Simulated) TimeCallCold(call kernels.Call, rep uint64) float64 {
	return s.m.TimeBench(call, rep|benchSalt)
}

// Peak implements Executor.
func (s *Simulated) Peak() float64 { return s.m.Peak() }

// Name implements Executor.
func (s *Simulated) Name() string { return "simulated/" + s.m.Name() }
