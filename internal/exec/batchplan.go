package exec

// This file implements fused batched execution plans: one algorithm, N
// same-shape instances, one arena. The single-instance plan layout is
// generalised to a per-instance stride — the arena is one slab holding
// count copies of the liveness-packed layout, each instance's operands
// at a fixed offset from its slab base — and every call binds to a
// batched BLAS driver (blas.GemmBatch and friends) that executes all N
// instances through one driver entry with shared packing buffers. For
// the small-instance regime this amortises the fixed per-dispatch costs
// (pool round-trips, validation, blocked-driver setup) that dominate
// small problems, while producing results bitwise identical to running
// the single-instance plan N times.

import (
	"fmt"
	"time"

	"lamb/internal/blas"
	"lamb/internal/expr"
	"lamb/internal/kernels"
	"lamb/internal/mat"
	"lamb/internal/xrand"
)

// batchAlign is the instance-stride alignment in float64s (64 bytes), so
// every instance's slab starts on a cache-line boundary.
const batchAlign = 8

// BatchPlan is a compiled algorithm fused over count same-shape
// instances. Compile once, execute many times; like Plan it is not safe
// for concurrent use.
type BatchPlan struct {
	alg    *expr.Algorithm
	count  int
	stride int // instance slab stride in float64s
	index  map[string]int
	arena  []float64
	// insts[i][j] is instance i's header for operand j, carved out of
	// the shared arena at offset i·stride + offsets[j].
	insts      [][]mat.Dense
	steps      []planStep
	fills      []planFill
	spdScratch []float64
	times      []float64
	output     int
}

// CompileBatchPlan lowers the algorithm into a BatchPlan over count
// instances. Compilation allocates everything an execution will ever
// need, so Execute and ExecuteTimed are allocation-free afterwards.
func CompileBatchPlan(alg *expr.Algorithm, count int) (*BatchPlan, error) {
	if count < 1 {
		return nil, fmt.Errorf("exec: batch plan needs count >= 1, got %d", count)
	}
	lay, err := compileLayout(alg)
	if err != nil {
		return nil, err
	}
	stride := (lay.arenaLen + batchAlign - 1) &^ (batchAlign - 1)
	if stride == 0 {
		stride = batchAlign
	}
	p := &BatchPlan{
		alg:    alg,
		count:  count,
		stride: stride,
		index:  lay.index,
		output: lay.output,
		fills:  lay.fills,
	}
	p.arena = make([]float64, stride*count)
	p.insts = make([][]mat.Dense, count)
	for inst := 0; inst < count; inst++ {
		hs := make([]mat.Dense, len(lay.order))
		for i, id := range lay.order {
			sh := alg.Shapes[id]
			off := inst*stride + lay.offsets[i]
			hs[i] = mat.Dense{
				Rows:   sh.Rows,
				Cols:   sh.Cols,
				Stride: max(sh.Rows, 1),
				Data:   p.arena[off : off+lay.sizes[i]],
			}
		}
		p.insts[inst] = hs
	}
	p.spdScratch = make([]float64, lay.scratchLen)

	// Batch-base headers: instance 0's operands with open-ended data, so
	// the batched drivers can stride forward through the slab.
	bases := make([]*mat.Dense, len(lay.order))
	for i, id := range lay.order {
		sh := alg.Shapes[id]
		bases[i] = &mat.Dense{
			Rows:   sh.Rows,
			Cols:   sh.Cols,
			Stride: max(sh.Rows, 1),
			Data:   p.arena[lay.offsets[i]:],
		}
	}
	nsteps := len(alg.Calls)
	p.steps = make([]planStep, nsteps)
	for s, c := range alg.Calls {
		run, err := bindBatchCall(c, func(id string) *mat.Dense { return bases[p.index[id]] }, stride, count)
		if err != nil {
			return nil, err
		}
		p.steps[s] = planStep{call: c, run: run}
	}
	p.times = make([]float64, nsteps)
	return p, nil
}

// bindBatchCall resolves the call's operands to their batch-base headers
// and returns a closure that executes it on the batched BLAS drivers,
// all operands advancing at the plan's instance stride. Per-instance
// semantics match bindCall exactly.
func bindBatchCall(c kernels.Call, get func(string) *mat.Dense, stride, count int) (func(), error) {
	switch c.Kind {
	case kernels.Gemm:
		a, b, out := get(c.In[0]), get(c.In[1]), get(c.Out)
		tA, tB := c.TransA, c.TransB
		return func() { blas.GemmBatch(tA, tB, 1, a, stride, b, stride, 0, out, stride, count) }, nil
	case kernels.Syrk:
		a, out := get(c.In[0]), get(c.Out)
		trans := c.TransA
		return func() { blas.SyrkBatch(mat.Lower, trans, 1, a, stride, 0, out, stride, count) }, nil
	case kernels.Symm:
		a, b, out := get(c.In[0]), get(c.In[1]), get(c.Out)
		return func() { blas.SymmBatch(mat.Lower, 1, a, stride, b, stride, 0, out, stride, count) }, nil
	case kernels.Tri2Full:
		out := get(c.Out)
		return func() { blas.Tri2FullBatch(mat.Lower, out, stride, count) }, nil
	case kernels.Potrf:
		out := get(c.Out)
		id := c.Out
		return func() {
			if err := blas.PotrfBatch(out, stride, count); err != nil {
				panic(fmt.Sprintf("exec: %v (operand %q must be SPD)", err, id))
			}
		}, nil
	case kernels.Trsm:
		l, b := get(c.In[0]), get(c.Out)
		trans := c.TransA
		return func() { blas.TrsmBatch(mat.Lower, trans, 1, l, stride, b, stride, count) }, nil
	case kernels.AddSym:
		out, r := get(c.Out), get(c.In[1])
		return func() { blas.AddSymBatch(mat.Lower, out, stride, r, stride, count) }, nil
	default:
		return nil, fmt.Errorf("exec: cannot bind unknown kind %v", c.Kind)
	}
}

// FillInputs refills every instance's input operands in place,
// instance-major: instance 0's inputs first, then instance 1's, exactly
// the stream order N consecutive Plan.FillInputs calls would consume.
// It performs no heap allocations.
func (p *BatchPlan) FillInputs(rng *xrand.Rand) {
	for inst := range p.insts {
		for _, f := range p.fills {
			fillOperand(&p.insts[inst][f.idx], f.kind, p.spdScratch, rng)
		}
	}
}

// Execute runs the fused call sequence once: each step executes all
// count instances through one batched driver invocation. It performs no
// heap allocations.
func (p *BatchPlan) Execute() {
	for i := range p.steps {
		p.steps[i].run()
	}
}

// ExecuteTimed runs the fused sequence, timing each batched call with
// the monotonic clock. times[s] covers all count instances of step s.
// The returned slice is owned by the plan and reused by the next
// ExecuteTimed; it performs no heap allocations.
func (p *BatchPlan) ExecuteTimed() []float64 {
	for i := range p.steps {
		start := time.Now()
		p.steps[i].run()
		p.times[i] = time.Since(start).Seconds()
	}
	return p.times
}

// Alg returns the algorithm this plan was compiled from.
func (p *BatchPlan) Alg() *expr.Algorithm { return p.alg }

// Count returns the number of fused instances.
func (p *BatchPlan) Count() int { return p.count }

// Stride returns the per-instance slab stride in float64s.
func (p *BatchPlan) Stride() int { return p.stride }

// ArenaLen returns the length in float64s of the whole batch arena.
func (p *BatchPlan) ArenaLen() int { return len(p.arena) }

// SetInput copies src into instance inst's named operand slot. It panics
// if the operand is unknown or the shapes disagree.
func (p *BatchPlan) SetInput(inst int, id string, src *mat.Dense) {
	i, ok := p.index[id]
	if !ok {
		panic(fmt.Sprintf("exec: batch plan has no operand %q", id))
	}
	dst := &p.insts[inst][i]
	if src.Rows != dst.Rows || src.Cols != dst.Cols {
		panic(fmt.Sprintf("exec: input %q is %dx%d, algorithm expects %dx%d",
			id, src.Rows, src.Cols, dst.Rows, dst.Cols))
	}
	mat.Copy(dst, src)
}

// Operand returns instance inst's arena-backed matrix for the given
// operand ID, or nil if the plan has no such operand.
func (p *BatchPlan) Operand(inst int, id string) *mat.Dense {
	if i, ok := p.index[id]; ok {
		return &p.insts[inst][i]
	}
	return nil
}

// Output returns instance inst's arena-backed result operand.
func (p *BatchPlan) Output(inst int) *mat.Dense { return &p.insts[inst][p.output] }
