package exec

// Tests for the compiled-execution-plan layer: plan-vs-map evaluation
// equivalence across every registered expression, the zero-allocation
// guarantee of the measured timing paths, and the liveness-based arena
// layout.

import (
	"testing"

	"lamb/internal/blas"
	"lamb/internal/expr"
	"lamb/internal/kernels"
	"lamb/internal/mat"
	"lamb/internal/xrand"
)

// evaluateWithMap is the pre-plan evaluation path: operands in a string-
// keyed map, every call routed through the Dispatch switch. Kept as the
// reference the plan path is pinned against.
func evaluateWithMap(alg *expr.Algorithm, inputs map[string]*mat.Dense) *mat.Dense {
	ops := make(map[string]*mat.Dense, len(alg.Shapes))
	for id, sh := range alg.Shapes {
		if in, ok := inputs[id]; ok {
			ops[id] = in.Clone()
			continue
		}
		ops[id] = mat.New(sh.Rows, sh.Cols)
	}
	for _, call := range alg.Calls {
		Dispatch(call, ops)
	}
	return ops[alg.Output]
}

// testInstance builds a small, well-formed instance for an expression.
func testInstance(arity int) expr.Instance {
	inst := make(expr.Instance, arity)
	for i := range inst {
		inst[i] = 13 + 5*i
	}
	return inst
}

// testInputs materialises random inputs (SPD where required) for an
// algorithm.
func testInputs(alg *expr.Algorithm, rng *xrand.Rand) map[string]*mat.Dense {
	spd := make(map[string]bool, len(alg.SPDInputs))
	for _, id := range alg.SPDInputs {
		spd[id] = true
	}
	inputs := make(map[string]*mat.Dense, len(alg.Inputs))
	for _, id := range alg.Inputs {
		sh := alg.Shapes[id]
		if spd[id] {
			inputs[id] = mat.NewSPDRandom(sh.Rows, rng)
		} else {
			inputs[id] = mat.NewRandom(sh.Rows, sh.Cols, rng)
		}
	}
	return inputs
}

func TestPlanVsMapEquivalenceAllExpressions(t *testing.T) {
	// The plan path (index-resolved operands, bound closures, shared
	// arena) must produce bit-identical results to the map path for
	// every algorithm of every registered expression.
	rng := xrand.New(0x417a)
	for _, name := range expr.Names() {
		ex, err := expr.Lookup(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		algs := ex.Algorithms(testInstance(ex.Arity()))
		for i := range algs {
			alg := &algs[i]
			inputs := testInputs(alg, rng)
			want := evaluateWithMap(alg, inputs)
			got := EvaluateAlgorithm(alg, inputs)
			if !mat.Equal(got, want) {
				t.Errorf("%s algorithm %d (%s): plan and map evaluation disagree (max diff %g)",
					name, alg.Index, alg.Name, mat.MaxAbsDiff(got, want))
			}
		}
	}
}

func TestEvaluateAlgorithmDoesNotMutateInputs(t *testing.T) {
	// The plan path copies inputs into the arena, so even in-place
	// algorithm steps (POTRF, TRSM) must leave the caller's matrices
	// untouched.
	rng := xrand.New(0x417b)
	algs := expr.NewLstSq().Algorithms(expr.Instance{20, 14, 6})
	for i := range algs {
		inputs := testInputs(&algs[i], rng)
		saved := make(map[string]*mat.Dense, len(inputs))
		for id, m := range inputs {
			saved[id] = m.Clone()
		}
		EvaluateAlgorithm(&algs[i], inputs)
		for id, m := range inputs {
			if !mat.Equal(m, saved[id]) {
				t.Fatalf("algorithm %d mutated input %q", i+1, id)
			}
		}
	}
}

func TestMeasuredTimeAlgorithmZeroAllocs(t *testing.T) {
	// The tentpole guarantee: after the plan is compiled (first
	// repetition), a timing repetition performs zero heap allocations —
	// in particular nothing allocates between the cache flush and the
	// first kernel call. Runs with a single worker: the parallel fan-out
	// necessarily allocates goroutine state.
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; allocation counts are meaningless")
	}
	defer blas.SetMaxWorkers(blas.SetMaxWorkers(1))
	e := NewMeasured()
	e.FlushBytes = 1 << 20
	for _, tc := range []struct {
		name string
		algs []expr.Algorithm
	}{
		{"chain", expr.NewChainABCD().Algorithms(expr.Instance{24, 16, 20, 12, 8})},
		{"aatb", expr.NewAATB().Algorithms(expr.Instance{24, 16, 8})},
		{"lstsq", expr.NewLstSq().Algorithms(expr.Instance{32, 16, 8})},
	} {
		for i := range tc.algs {
			alg := &tc.algs[i]
			e.TimeAlgorithm(alg, 0) // compile the plan, warm the pools
			allocs := testing.AllocsPerRun(10, func() {
				e.TimeAlgorithm(alg, 1)
			})
			if allocs != 0 {
				t.Errorf("%s algorithm %d (%s): %v allocs per repetition, want 0",
					tc.name, alg.Index, alg.Name, allocs)
			}
		}
	}
}

func TestMeasuredTimeCallColdZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; allocation counts are meaningless")
	}
	defer blas.SetMaxWorkers(blas.SetMaxWorkers(1))
	e := NewMeasured()
	e.FlushBytes = 1 << 20
	for _, call := range []kernels.Call{
		kernels.NewGemm(32, 24, 16, "A", "B", "C", false, false),
		kernels.NewSyrk(24, 16, "A", "C"),
		kernels.NewSyrkT(24, 16, "A", "C"),
		kernels.NewSymm(24, 16, "A", "B", "C"),
		kernels.NewTri2Full(24, "C"),
		kernels.NewPotrf(24, "S"),
		kernels.NewTrsm(24, 16, "L", "B", true),
		kernels.NewAddSym(24, "C", "A"),
	} {
		e.TimeCallCold(call, 0) // compile the single-call plan
		allocs := testing.AllocsPerRun(10, func() {
			e.TimeCallCold(call, 1)
		})
		if allocs != 0 {
			t.Errorf("%s: %v allocs per repetition, want 0", call, allocs)
		}
	}
}

func TestCompileCallPlanAllKinds(t *testing.T) {
	// Every kernel kind must compile into a runnable single-call plan
	// whose operands match the call's metadata.
	rng := xrand.New(0x417c)
	for _, call := range []kernels.Call{
		kernels.NewGemm(10, 12, 14, "A", "B", "C", false, false),
		kernels.NewGemm(10, 12, 14, "A", "B", "C", true, true),
		kernels.NewSyrk(10, 14, "A", "C"),
		kernels.NewSyrkT(10, 14, "A", "C"),
		kernels.NewSymm(10, 12, "A", "B", "C"),
		kernels.NewTri2Full(10, "C"),
		kernels.NewPotrf(10, "S"),
		kernels.NewTrsm(10, 12, "L", "B", false),
		kernels.NewAddSym(10, "C", "A"),
	} {
		p, err := CompileCallPlan(call)
		if err != nil {
			t.Fatalf("%s: %v", call, err)
		}
		for _, sp := range call.Operands() {
			op := p.Operand(sp.ID)
			if op == nil {
				t.Fatalf("%s: missing operand %q", call, sp.ID)
			}
			if op.Rows != sp.Rows || op.Cols != sp.Cols {
				t.Fatalf("%s: operand %q is %dx%d, want %dx%d",
					call, sp.ID, op.Rows, op.Cols, sp.Rows, sp.Cols)
			}
		}
		p.FillInputs(rng)
		p.Execute() // must not panic (POTRF needs its SPD fill, TRSM its factor)
	}
}

func TestPlanArenaSlotReuse(t *testing.T) {
	// The arena layout must never exceed the no-reuse total, and across
	// the registered expressions at least one algorithm must genuinely
	// share slots between temporaries with disjoint live ranges.
	reused := false
	for _, name := range expr.Names() {
		ex, err := expr.Lookup(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		algs := ex.Algorithms(testInstance(ex.Arity()))
		for i := range algs {
			p, err := CompilePlan(&algs[i])
			if err != nil {
				t.Fatalf("%s algorithm %d: %v", name, i+1, err)
			}
			if p.ArenaLen() > p.OperandLen() {
				t.Errorf("%s algorithm %d: arena %d floats exceeds no-reuse total %d",
					name, i+1, p.ArenaLen(), p.OperandLen())
			}
			if p.ArenaLen() < p.OperandLen() {
				reused = true
			}
		}
	}
	if !reused {
		t.Error("no algorithm shares arena slots; liveness reuse is not happening")
	}
}

func TestLayoutArena(t *testing.T) {
	// Synthetic interval sets pin the first-fit allocator: a freed slot
	// is reused by a later-born operand, adjacent free blocks merge, and
	// an oversized request falls through to fresh space.
	t.Run("reuse", func(t *testing.T) {
		// op0 dies after step 0; op1 (smaller) reuses its space; op2 does
		// not fit the remaining hole and extends the arena.
		offsets, arenaLen := layoutArena(3,
			[]int{0, 1, 2}, []int{0, 2, 2}, []int{100, 50, 100})
		if offsets[0] != 0 || offsets[1] != 0 || offsets[2] != 100 {
			t.Fatalf("offsets = %v, want [0 0 100]", offsets)
		}
		if arenaLen != 200 {
			t.Fatalf("arenaLen = %d, want 200", arenaLen)
		}
	})
	t.Run("merge", func(t *testing.T) {
		// Two adjacent freed blocks merge to fit one big operand.
		offsets, arenaLen := layoutArena(2,
			[]int{0, 0, 1}, []int{0, 0, 1}, []int{30, 70, 100})
		if offsets[2] != 0 {
			t.Fatalf("offsets = %v, want op2 at 0", offsets)
		}
		if arenaLen != 100 {
			t.Fatalf("arenaLen = %d, want 100", arenaLen)
		}
	})
	t.Run("persistent", func(t *testing.T) {
		// Operands live to the sentinel step never release their slots.
		offsets, arenaLen := layoutArena(2,
			[]int{0, 0}, []int{2, 2}, []int{10, 20})
		if offsets[0] == offsets[1] {
			t.Fatalf("persistent operands share offset %d", offsets[0])
		}
		if arenaLen != 30 {
			t.Fatalf("arenaLen = %d, want 30", arenaLen)
		}
	})
}

func TestPlanTimesReuseAndOrdering(t *testing.T) {
	// ExecuteTimed reuses one buffer; the executor contract says the
	// caller consumes it before the next repetition.
	e := NewMeasured()
	e.FlushBytes = 1 << 20
	algs := expr.NewAATB().Algorithms(expr.Instance{24, 16, 8})
	alg := &algs[0]
	t1 := e.TimeAlgorithm(alg, 0)
	if len(t1) != len(alg.Calls) {
		t.Fatalf("got %d times for %d calls", len(t1), len(alg.Calls))
	}
	for i, v := range t1 {
		if v <= 0 {
			t.Fatalf("call %d: non-positive time %v", i, v)
		}
	}
	t2 := e.TimeAlgorithm(alg, 1)
	if &t1[0] != &t2[0] {
		t.Error("plan timing buffer not reused across repetitions")
	}
}
