// Package exec runs algorithms and measures their execution times.
//
// It defines the Executor interface with two backends:
//
//   - Simulated: evaluates the deterministic machine model
//     (lamb/internal/machine). Used to regenerate the paper-scale
//     experiments exactly and quickly.
//   - Measured: executes the pure-Go BLAS kernels (lamb/internal/blas)
//     and times them with the monotonic clock, flushing the cache before
//     each repetition exactly as the paper does.
//
// The Timer wraps an Executor with the paper's measurement protocol:
// each test is repeated Reps times (the paper uses 10) and the median is
// recorded.
package exec

import (
	"context"
	"fmt"

	"lamb/internal/expr"
	"lamb/internal/kernels"
	"lamb/internal/stats"
)

// benchSalt offsets the repetition index for isolated call benchmarks so
// their noise realisations differ from in-algorithm executions, as two
// separate measurement campaigns would.
const benchSalt = uint64(1) << 32

// Executor runs algorithms or single calls and reports execution times in
// seconds. Implementations must be deterministic given (algorithm, rep)
// for the simulated backend; the measured backend is genuinely noisy.
type Executor interface {
	// TimeAlgorithm runs one repetition of the algorithm after a cache
	// flush and returns the per-call execution times, in call order.
	// Within the repetition the cache is NOT flushed between calls: later
	// calls observe the inter-kernel cache effects the paper studies.
	TimeAlgorithm(alg *expr.Algorithm, rep uint64) []float64
	// TimeCallCold benchmarks a single call in isolation with a flushed
	// cache (the Experiment 3 protocol).
	TimeCallCold(call kernels.Call, rep uint64) float64
	// Peak returns the machine's (estimated) peak FLOP rate, used to
	// convert times into efficiencies.
	Peak() float64
	// Name identifies the backend in reports.
	Name() string
}

// BatchExecutor is implemented by executors that can run an algorithm
// fused over many same-shape instances (see BatchPlan). The simulated
// backend does not implement it — its model has no per-dispatch fixed
// costs to amortise — so callers type-assert and fall back to the
// per-instance path.
type BatchExecutor interface {
	// FuseWidth reports the total number of instances of alg one fused
	// batch plan may carry (possibly spanning several chunks), or 0 if
	// the algorithm is outside the fused regime.
	FuseWidth(alg *expr.Algorithm) int
	// FuseChunk reports the chunk width: how many instances one packed
	// sweep — and one fused measurement repetition — should execute
	// together, so the chunk's working set stays within the slab budget.
	// 0 means out of the fused regime.
	FuseChunk(alg *expr.Algorithm) int
	// TimeAlgorithmBatch runs one fused repetition of the algorithm over
	// count instances after a cache flush and returns per-call times
	// covering all count instances of each call.
	TimeAlgorithmBatch(alg *expr.Algorithm, count int, rep uint64) []float64
}

// Measurement is the result of timing one algorithm with repetitions.
type Measurement struct {
	// Total is the median over repetitions of the summed per-call times —
	// the execution time the paper records for an algorithm.
	Total float64
	// PerCall holds the median per-call times, in call order.
	PerCall []float64
}

// Timer applies the paper's measurement protocol (median of Reps
// repetitions, cache flushed before each) on top of an Executor.
type Timer struct {
	Exec Executor
	// Reps is the number of repetitions; the paper uses 10.
	Reps int
}

// NewTimer returns a Timer with the paper's 10 repetitions.
func NewTimer(e Executor) *Timer { return &Timer{Exec: e, Reps: 10} }

// MeasureAlgorithm times the algorithm, returning the median total and
// median per-call times.
func (t *Timer) MeasureAlgorithm(alg *expr.Algorithm) Measurement {
	reps := t.reps()
	totals := make([]float64, reps)
	perCall := make([][]float64, len(alg.Calls))
	for i := range perCall {
		perCall[i] = make([]float64, reps)
	}
	for r := 0; r < reps; r++ {
		times := t.Exec.TimeAlgorithm(alg, uint64(r))
		var sum float64
		for i, ct := range times {
			perCall[i][r] = ct
			sum += ct
		}
		totals[r] = sum
	}
	m := Measurement{Total: stats.Median(totals), PerCall: make([]float64, len(alg.Calls))}
	for i := range perCall {
		m.PerCall[i] = stats.Median(perCall[i])
	}
	return m
}

// MeasureAlgorithmCtx is MeasureAlgorithm made cancellable for serving:
// the context is checked between repetitions (never inside one — a
// repetition's timed region stays allocation- and branch-identical to
// the paper's protocol), so a request deadline aborts a measurement
// within one repetition's duration. On cancellation the partial
// measurement is discarded and ctx.Err() returned.
func (t *Timer) MeasureAlgorithmCtx(ctx context.Context, alg *expr.Algorithm) (Measurement, error) {
	reps := t.reps()
	totals := make([]float64, reps)
	perCall := make([][]float64, len(alg.Calls))
	for i := range perCall {
		perCall[i] = make([]float64, reps)
	}
	for r := 0; r < reps; r++ {
		if err := ctx.Err(); err != nil {
			return Measurement{}, err
		}
		times := t.Exec.TimeAlgorithm(alg, uint64(r))
		var sum float64
		for i, ct := range times {
			perCall[i][r] = ct
			sum += ct
		}
		totals[r] = sum
	}
	m := Measurement{Total: stats.Median(totals), PerCall: make([]float64, len(alg.Calls))}
	for i := range perCall {
		m.PerCall[i] = stats.Median(perCall[i])
	}
	return m, nil
}

// MeasureAlgorithmBatchCtx measures the algorithm through the fused
// batched path: each repetition executes count instances in one fused
// plan, and the reported measurement is per instance (batch totals
// divided by count), so it is directly comparable to MeasureAlgorithm.
// The context is checked between repetitions, like MeasureAlgorithmCtx.
// The executor must implement BatchExecutor and count must be within
// its fuse width; callers check FuseWidth first.
func (t *Timer) MeasureAlgorithmBatchCtx(ctx context.Context, alg *expr.Algorithm, count int) (Measurement, error) {
	be, ok := t.Exec.(BatchExecutor)
	if !ok {
		return Measurement{}, fmt.Errorf("exec: %s cannot execute fused batches", t.Exec.Name())
	}
	reps := t.reps()
	totals := make([]float64, reps)
	perCall := make([][]float64, len(alg.Calls))
	for i := range perCall {
		perCall[i] = make([]float64, reps)
	}
	inv := 1 / float64(count)
	for r := 0; r < reps; r++ {
		if err := ctx.Err(); err != nil {
			return Measurement{}, err
		}
		times := be.TimeAlgorithmBatch(alg, count, uint64(r))
		var sum float64
		for i, ct := range times {
			perCall[i][r] = ct * inv
			sum += ct * inv
		}
		totals[r] = sum
	}
	m := Measurement{Total: stats.Median(totals), PerCall: make([]float64, len(alg.Calls))}
	for i := range perCall {
		m.PerCall[i] = stats.Median(perCall[i])
	}
	return m, nil
}

// MeasureAll times every algorithm in the slice.
func (t *Timer) MeasureAll(algs []expr.Algorithm) []Measurement {
	out := make([]Measurement, len(algs))
	for i := range algs {
		out[i] = t.MeasureAlgorithm(&algs[i])
	}
	return out
}

// MeasureCallCold benchmarks a single call in isolation (flushed cache),
// returning the median over repetitions.
func (t *Timer) MeasureCallCold(call kernels.Call) float64 {
	reps := t.reps()
	times := make([]float64, reps)
	for r := 0; r < reps; r++ {
		times[r] = t.Exec.TimeCallCold(call, uint64(r))
	}
	return stats.Median(times)
}

func (t *Timer) reps() int {
	if t.Reps <= 0 {
		return 10
	}
	return t.Reps
}

// Efficiency converts a call time into the paper's efficiency metric:
// attributed FLOPs / (time × peak).
func Efficiency(call kernels.Call, seconds, peak float64) float64 {
	if seconds <= 0 || peak <= 0 {
		return 0
	}
	return call.Flops() / (seconds * peak)
}

// AlgorithmEfficiency returns the efficiency of a whole algorithm run:
// its total FLOP count over (total time × peak).
func AlgorithmEfficiency(alg *expr.Algorithm, total, peak float64) float64 {
	if total <= 0 || peak <= 0 {
		return 0
	}
	return alg.Flops() / (total * peak)
}
