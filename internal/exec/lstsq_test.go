package exec

import (
	"testing"

	"lamb/internal/blas"
	"lamb/internal/expr"
	"lamb/internal/mat"
	"lamb/internal/xrand"
)

func TestEvaluateAlgorithmLstSqEquivalence(t *testing.T) {
	// All four least-squares algorithms must produce the same X, and X
	// must satisfy the normal equations (A·Aᵀ + R)·X = A·B.
	rng := xrand.New(91)
	d0, d1, d2 := 30, 22, 7
	a := mat.NewRandom(d0, d1, rng)
	b := mat.NewRandom(d1, d2, rng)
	r := mat.NewSPDRandom(d0, rng)
	inputs := map[string]*mat.Dense{"A": a, "B": b, "R": r}

	algs := expr.NewLstSq().Algorithms(expr.Instance{d0, d1, d2})
	var ref *mat.Dense
	for i := range algs {
		// The algorithms factor S and solve in place; EvaluateAlgorithm
		// allocates fresh temporaries per run, but R is an input read by
		// AddSym only — safe to share.
		got := EvaluateAlgorithm(&algs[i], inputs)
		if i == 0 {
			ref = got
			continue
		}
		if d := mat.MaxAbsDiff(ref, got); d > 1e-9 {
			t.Fatalf("algorithm %d disagrees with algorithm 1: diff %g", i+1, d)
		}
	}

	// Residual check: (A·Aᵀ + R)·X == A·B.
	s := mat.New(d0, d0)
	blas.Gemm(false, true, 1, a, a, 0, s)
	for j := 0; j < d0; j++ {
		for i := 0; i < d0; i++ {
			s.Set(i, j, s.At(i, j)+r.At(i, j))
		}
	}
	lhs := mat.New(d0, d2)
	blas.Gemm(false, false, 1, s, ref, 0, lhs)
	rhs := mat.New(d0, d2)
	blas.Gemm(false, false, 1, a, b, 0, rhs)
	if d := mat.MaxAbsDiff(lhs, rhs); d > 1e-8 {
		t.Fatalf("normal equations violated: residual %g", d)
	}
}

func TestMeasuredBackendLstSq(t *testing.T) {
	// The measured backend must materialise the SPD regulariser so the
	// in-place Cholesky succeeds, for every algorithm variant.
	e := NewMeasured()
	e.FlushBytes = 1 << 20
	timer := &Timer{Exec: e, Reps: 2}
	algs := expr.NewLstSq().Algorithms(expr.Instance{40, 30, 10})
	for i := range algs {
		m := timer.MeasureAlgorithm(&algs[i])
		if m.Total <= 0 {
			t.Fatalf("algorithm %d total %v", i+1, m.Total)
		}
		if len(m.PerCall) != 6 {
			t.Fatalf("algorithm %d per-call count %d", i+1, len(m.PerCall))
		}
	}
}

func TestMeasuredColdCallsForNewKinds(t *testing.T) {
	e := NewMeasured()
	e.FlushBytes = 1 << 20
	calls := expr.NewLstSq().Algorithms(expr.Instance{32, 24, 8})[0].Calls
	for _, c := range calls {
		if tt := e.TimeCallCold(c, 0); tt <= 0 {
			t.Fatalf("%s cold time %v", c, tt)
		}
	}
}

func TestSimulatedBackendLstSq(t *testing.T) {
	s := NewDefaultSimulated()
	timer := NewTimer(s)
	algs := expr.NewLstSq().Algorithms(expr.Instance{150, 700, 90})
	times := timer.MeasureAll(algs)
	for i, m := range times {
		if m.Total <= 0 {
			t.Fatalf("algorithm %d total %v", i+1, m.Total)
		}
	}
	// Order variants (1 vs 2) share calls but see different cache states:
	// totals must differ, and the later-RHS variant benefits from a warm
	// A when computing gemm(A·B)... either way they must not be equal.
	if times[0].Total == times[1].Total {
		t.Fatal("order variants should differ through inter-kernel cache effects")
	}
}
