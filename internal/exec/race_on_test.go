//go:build race

package exec

// raceEnabled reports whether the race detector is active; under -race
// sync.Pool deliberately drops items, so allocation-count tests are
// skipped.
const raceEnabled = true
