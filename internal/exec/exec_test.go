package exec

import (
	"testing"

	"lamb/internal/expr"
	"lamb/internal/kernels"
	"lamb/internal/machine"
	"lamb/internal/mat"
	"lamb/internal/xrand"
)

func TestSimulatedDeterministic(t *testing.T) {
	s1 := NewDefaultSimulated()
	s2 := NewDefaultSimulated()
	algs := expr.NewAATB().Algorithms(expr.Instance{100, 200, 300})
	for i := range algs {
		t1 := s1.TimeAlgorithm(&algs[i], 3)
		t2 := s2.TimeAlgorithm(&algs[i], 3)
		for j := range t1 {
			if t1[j] != t2[j] {
				t.Fatalf("simulated backend not deterministic: alg %d call %d", i, j)
			}
		}
	}
}

func TestSimulatedWarmSecondCall(t *testing.T) {
	// In AATB algorithm 4, the second GEMM consumes M1 produced by the
	// first — it must be faster in sequence than in isolation (same rep
	// noise would differ, so compare against noise-free cold time).
	s := NewDefaultSimulated()
	algs := expr.NewAATB().Algorithms(expr.Instance{200, 200, 200})
	a4 := algs[3]
	times := s.TimeAlgorithm(&a4, 0)
	coldSecond := s.Machine().ColdTime(a4.Calls[1])
	if times[1] >= coldSecond {
		t.Fatalf("second call in sequence (%.3g) should beat noise-free cold time (%.3g) thanks to warm M1",
			times[1], coldSecond)
	}
}

func TestSimulatedColdBenchDiffersFromInSequence(t *testing.T) {
	s := NewDefaultSimulated()
	call := kernels.NewGemm(300, 300, 300, "A", "B", "C", false, false)
	inSeq := s.Machine().Time(call, 0, 5)
	bench := s.TimeCallCold(call, 5)
	if inSeq == bench {
		t.Fatal("isolated benchmark should use an independent noise realisation")
	}
}

func TestTimerMedianProtocol(t *testing.T) {
	s := NewDefaultSimulated()
	timer := NewTimer(s)
	if timer.Reps != 10 {
		t.Fatalf("paper protocol is 10 reps, got %d", timer.Reps)
	}
	algs := expr.NewChainABCD().Algorithms(expr.Instance{50, 60, 70, 80, 90})
	m := timer.MeasureAlgorithm(&algs[0])
	if m.Total <= 0 {
		t.Fatal("non-positive total")
	}
	if len(m.PerCall) != 3 {
		t.Fatalf("per-call count %d", len(m.PerCall))
	}
	var sum float64
	for _, ct := range m.PerCall {
		if ct <= 0 {
			t.Fatal("non-positive per-call time")
		}
		sum += ct
	}
	// Median of sums ≈ sum of medians for low noise, never exactly equal
	// in general, but they must be within the noise envelope.
	if sum > m.Total*1.1 || sum < m.Total*0.9 {
		t.Fatalf("sum of medians %.3g far from median total %.3g", sum, m.Total)
	}
}

func TestTimerMeasureAllOrdering(t *testing.T) {
	s := NewDefaultSimulated()
	timer := &Timer{Exec: s, Reps: 3}
	algs := expr.NewAATB().Algorithms(expr.Instance{150, 60, 700})
	ms := timer.MeasureAll(algs)
	if len(ms) != 5 {
		t.Fatalf("got %d measurements", len(ms))
	}
	for i, m := range ms {
		if m.Total <= 0 {
			t.Fatalf("alg %d total %v", i+1, m.Total)
		}
	}
}

func TestTimerZeroRepsDefaultsToTen(t *testing.T) {
	timer := &Timer{Exec: NewDefaultSimulated()}
	if timer.reps() != 10 {
		t.Fatalf("reps() = %d, want 10", timer.reps())
	}
}

func TestEfficiencyHelpers(t *testing.T) {
	call := kernels.NewGemm(100, 100, 100, "A", "B", "C", false, false)
	e := Efficiency(call, 1e-3, 2e9)
	if want := 2e6 / (1e-3 * 2e9); e != want {
		t.Fatalf("Efficiency = %v, want %v", e, want)
	}
	if Efficiency(call, 0, 1) != 0 || Efficiency(call, 1, 0) != 0 {
		t.Fatal("degenerate efficiency should be 0")
	}
	algs := expr.NewChainABCD().Algorithms(expr.Instance{10, 10, 10, 10, 10})
	if AlgorithmEfficiency(&algs[0], 1e-6, 1e9) <= 0 {
		t.Fatal("algorithm efficiency should be positive")
	}
	if AlgorithmEfficiency(&algs[0], 0, 1e9) != 0 {
		t.Fatal("degenerate algorithm efficiency should be 0")
	}
}

func TestEvaluateAlgorithmChainEquivalence(t *testing.T) {
	// All six ABCD algorithms must compute the same product — the
	// mathematical-equivalence property underpinning the whole study.
	rng := xrand.New(77)
	inst := expr.Instance{13, 9, 17, 11, 8}
	inputs := map[string]*mat.Dense{
		"A": mat.NewRandom(13, 9, rng),
		"B": mat.NewRandom(9, 17, rng),
		"C": mat.NewRandom(17, 11, rng),
		"D": mat.NewRandom(11, 8, rng),
	}
	algs := expr.NewChainABCD().Algorithms(inst)
	ref := EvaluateAlgorithm(&algs[0], inputs)
	for i := range algs[1:] {
		got := EvaluateAlgorithm(&algs[i+1], inputs)
		if d := mat.MaxAbsDiff(ref, got); d > 1e-10 {
			t.Fatalf("algorithm %d disagrees with algorithm 1: max diff %g", i+2, d)
		}
	}
}

func TestEvaluateAlgorithmAATBEquivalence(t *testing.T) {
	// All five AAᵀB algorithms must agree, including the SYRK/SYMM paths
	// that only touch triangles and the tri2full copy step.
	rng := xrand.New(78)
	inst := expr.Instance{21, 13, 17}
	inputs := map[string]*mat.Dense{
		"A": mat.NewRandom(21, 13, rng),
		"B": mat.NewRandom(21, 17, rng),
	}
	algs := expr.NewAATB().Algorithms(inst)
	ref := EvaluateAlgorithm(&algs[0], inputs)
	for i := range algs[1:] {
		got := EvaluateAlgorithm(&algs[i+1], inputs)
		if d := mat.MaxAbsDiff(ref, got); d > 1e-10 {
			t.Fatalf("algorithm %d disagrees with algorithm 1: max diff %g", i+2, d)
		}
	}
}

func TestEvaluateAlgorithmRejectsBadInput(t *testing.T) {
	algs := expr.NewAATB().Algorithms(expr.Instance{4, 5, 6})
	defer func() {
		if recover() == nil {
			t.Fatal("wrong input shape did not panic")
		}
	}()
	EvaluateAlgorithm(&algs[0], map[string]*mat.Dense{
		"A": mat.New(9, 9),
		"B": mat.New(4, 6),
	})
}

func TestMeasuredBackendSmoke(t *testing.T) {
	e := NewMeasured()
	e.FlushBytes = 4 << 20 // keep the test fast
	timer := &Timer{Exec: e, Reps: 3}
	algs := expr.NewAATB().Algorithms(expr.Instance{48, 32, 40})
	for i := range algs {
		m := timer.MeasureAlgorithm(&algs[i])
		if m.Total <= 0 {
			t.Fatalf("alg %d total %v", i+1, m.Total)
		}
	}
	call := kernels.NewGemm(64, 64, 64, "A", "B", "C", false, false)
	if ct := timer.MeasureCallCold(call); ct <= 0 {
		t.Fatalf("cold call time %v", ct)
	}
	if e.Peak() <= 0 {
		t.Fatal("measured peak should be positive")
	}
	if e.Name() == "" || NewDefaultSimulated().Name() == "" {
		t.Fatal("executors must be named")
	}
}

func TestMeasuredTimeCallColdAllKinds(t *testing.T) {
	e := NewMeasured()
	e.FlushBytes = 1 << 20
	calls := []kernels.Call{
		kernels.NewGemm(32, 24, 16, "A", "B", "C", false, false),
		kernels.NewGemm(24, 32, 16, "A", "B", "C", true, true),
		kernels.NewSyrk(32, 16, "A", "C"),
		kernels.NewSyrkT(32, 16, "A", "C"),
		kernels.NewSymm(32, 24, "A", "B", "C"),
		kernels.NewTri2Full(32, "C"),
	}
	for _, c := range calls {
		if tt := e.TimeCallCold(c, 0); tt <= 0 {
			t.Fatalf("%s cold time %v", c, tt)
		}
	}
}

func TestSimulatedAgainstCustomMachine(t *testing.T) {
	cfg := machine.Default()
	cfg.Noise = 0
	s := NewSimulated(machine.New(cfg))
	algs := expr.NewAATB().Algorithms(expr.Instance{300, 100, 200})
	times := s.TimeAlgorithm(&algs[1], 0)
	if len(times) != 3 {
		t.Fatalf("alg 2 should have 3 calls (syrk, tri2full, gemm), got %d", len(times))
	}
	// With zero noise, repetitions agree exactly.
	again := s.TimeAlgorithm(&algs[1], 9)
	for i := range times {
		if times[i] != again[i] {
			t.Fatal("zero-noise machine should be rep-invariant")
		}
	}
}
