package exec

// This file implements compiled execution plans: an expr.Algorithm is
// lowered once into a Plan — operand IDs resolved to indices into a flat
// operand table, each call bound to a closure over its concrete
// matrices, and every temporary placed into a single arena buffer with
// liveness-based slot reuse — so that running a repetition performs no
// map lookups, no dispatch switches, and no heap allocations. The
// Measured executor, the isolated-call benchmark, EvaluateAlgorithm, and
// the bench harness all execute through plans.

import (
	"fmt"
	"sort"
	"time"

	"lamb/internal/blas"
	"lamb/internal/expr"
	"lamb/internal/kernels"
	"lamb/internal/mat"
	"lamb/internal/xrand"
)

// Plan is a compiled algorithm: a bound call sequence over arena-backed
// operands. Compile once, execute many times. A Plan is not safe for
// concurrent use (its operands and timing buffer are shared state).
type Plan struct {
	alg   *expr.Algorithm
	ops   []*mat.Dense
	index map[string]int
	steps []planStep
	fills []planFill
	arena []float64
	// operandLen is what the arena would hold without slot reuse:
	// the sum of all operand sizes.
	operandLen int
	spdScratch []float64
	times      []float64
	output     int
}

// planStep is one bound kernel invocation: the original call (kept for
// reporting) and a closure with every operand already resolved.
type planStep struct {
	call kernels.Call
	run  func()
}

// planFill records how one input slot is refilled before a repetition.
type planFill struct {
	idx  int
	kind kernels.FillKind
}

// planLayout is the shape-level stage of plan compilation, shared by
// the single-instance and batched compilers: operand table, liveness,
// arena offsets, and input-refill recipe. It holds no storage — only
// where everything goes.
type planLayout struct {
	order      []string
	index      map[string]int
	offsets    []int
	sizes      []int
	arenaLen   int
	operandLen int
	output     int
	fills      []planFill
	scratchLen int
}

// compileLayout validates the algorithm and computes its plan layout.
func compileLayout(alg *expr.Algorithm) (*planLayout, error) {
	if err := alg.Validate(); err != nil {
		return nil, err
	}
	lay := &planLayout{index: make(map[string]int, len(alg.Shapes))}

	// Operand discovery in deterministic first-mention order.
	mention := func(id string) {
		if _, ok := lay.index[id]; !ok {
			lay.index[id] = len(lay.order)
			lay.order = append(lay.order, id)
		}
	}
	for _, c := range alg.Calls {
		for _, id := range c.In {
			mention(id)
		}
		mention(c.Out)
	}
	// Shapes can name operands no call mentions; give them slots too so
	// Operand() works for everything in the table.
	rest := make([]string, 0)
	for id := range alg.Shapes {
		if _, ok := lay.index[id]; !ok {
			rest = append(rest, id)
		}
	}
	sort.Strings(rest)
	for _, id := range rest {
		mention(id)
	}
	lay.output = lay.index[alg.Output]

	// Liveness: a temporary is live from the first step that mentions it
	// to the last. Inputs are refilled in place before every repetition
	// and the output is the result, so both get dedicated slots (live for
	// the whole sequence).
	n := len(lay.order)
	nsteps := len(alg.Calls)
	first := make([]int, n)
	last := make([]int, n)
	for i := range first {
		first[i], last[i] = nsteps, -1
	}
	touch := func(id string, s int) {
		i := lay.index[id]
		if s < first[i] {
			first[i] = s
		}
		if s > last[i] {
			last[i] = s
		}
	}
	for s, c := range alg.Calls {
		for _, id := range c.In {
			touch(id, s)
		}
		touch(c.Out, s)
	}
	persistent := make([]bool, n)
	for _, id := range alg.Inputs {
		if i, ok := lay.index[id]; ok {
			persistent[i] = true
		}
	}
	persistent[lay.output] = true
	for i := range persistent {
		if persistent[i] || last[i] < 0 {
			first[i], last[i] = 0, nsteps
		}
	}

	// Arena layout: a linear-scan first-fit allocator over the liveness
	// intervals. Slots whose intervals are disjoint share storage.
	lay.sizes = make([]int, n)
	for i, id := range lay.order {
		sh := alg.Shapes[id]
		lay.sizes[i] = max(sh.Rows, 1) * sh.Cols
		lay.operandLen += lay.sizes[i]
	}
	lay.offsets, lay.arenaLen = layoutArena(nsteps, first, last, lay.sizes)

	// Input refills, in the algorithm's declared input order.
	spd := make(map[string]bool, len(alg.SPDInputs))
	for _, id := range alg.SPDInputs {
		spd[id] = true
	}
	for _, id := range alg.Inputs {
		i, ok := lay.index[id]
		if !ok {
			continue
		}
		kind := kernels.FillRandom
		if spd[id] {
			kind = kernels.FillSPD
			sh := alg.Shapes[id]
			if s := sh.Rows * sh.Rows; s > lay.scratchLen {
				lay.scratchLen = s
			}
		}
		lay.fills = append(lay.fills, planFill{idx: i, kind: kind})
	}
	return lay, nil
}

// CompilePlan lowers the algorithm into a Plan. The algorithm is
// validated first; compilation allocates everything an execution will
// ever need, so Execute and ExecuteTimed are allocation-free afterwards.
func CompilePlan(alg *expr.Algorithm) (*Plan, error) {
	lay, err := compileLayout(alg)
	if err != nil {
		return nil, err
	}
	p := &Plan{
		alg:        alg,
		index:      lay.index,
		operandLen: lay.operandLen,
		output:     lay.output,
		fills:      lay.fills,
	}
	p.arena = make([]float64, lay.arenaLen)
	p.ops = make([]*mat.Dense, len(lay.order))
	for i, id := range lay.order {
		sh := alg.Shapes[id]
		p.ops[i] = &mat.Dense{
			Rows:   sh.Rows,
			Cols:   sh.Cols,
			Stride: max(sh.Rows, 1),
			Data:   p.arena[lay.offsets[i] : lay.offsets[i]+lay.sizes[i]],
		}
	}
	p.spdScratch = make([]float64, lay.scratchLen)

	// Bind every call to a closure over its resolved operands.
	nsteps := len(alg.Calls)
	p.steps = make([]planStep, nsteps)
	for s, c := range alg.Calls {
		run, err := bindCall(c, func(id string) *mat.Dense { return p.ops[p.index[id]] })
		if err != nil {
			return nil, err
		}
		p.steps[s] = planStep{call: c, run: run}
	}
	p.times = make([]float64, nsteps)
	return p, nil
}

// CompileCallPlan compiles a single-call plan for isolated benchmarking:
// every operand (including the output, matching a fresh-operand run) is
// refilled per repetition according to the call's operand metadata.
func CompileCallPlan(call kernels.Call) (*Plan, error) {
	if err := call.Validate(); err != nil {
		return nil, err
	}
	specs := call.Operands()
	alg := &expr.Algorithm{
		Name:   call.String(),
		Calls:  []kernels.Call{call},
		Shapes: make(map[string]expr.Shape, len(specs)),
		Output: call.Out,
	}
	seen := make(map[string]bool, len(specs))
	for _, sp := range specs {
		alg.Shapes[sp.ID] = expr.Shape{Rows: sp.Rows, Cols: sp.Cols}
		if seen[sp.ID] {
			continue // a call may name one operand twice (e.g. A·A): fill once
		}
		seen[sp.ID] = true
		alg.Inputs = append(alg.Inputs, sp.ID)
		if sp.Fill == kernels.FillSPD {
			alg.SPDInputs = append(alg.SPDInputs, sp.ID)
		}
	}
	p, err := CompilePlan(alg)
	if err != nil {
		return nil, err
	}
	// Patch in the fill kinds the shape table can't express (the
	// diagonally dominant triangular factor of TRSM).
	for _, sp := range specs {
		if sp.Fill != kernels.FillDiagDominant {
			continue
		}
		for fi := range p.fills {
			if p.fills[fi].idx == p.index[sp.ID] {
				p.fills[fi].kind = kernels.FillDiagDominant
			}
		}
	}
	return p, nil
}

// layoutArena assigns arena offsets with a first-fit free list driven by
// the liveness intervals [first, last] (in step indices): before step s
// the blocks of operands that died at step s-1 are released, then the
// operands born at step s are placed. Returns the offsets and the arena
// length in float64s.
func layoutArena(nsteps int, first, last, sizes []int) (offsets []int, arenaLen int) {
	n := len(sizes)
	offsets = make([]int, n)
	type block struct{ off, size int }
	var free []block // sorted by off, adjacent blocks merged
	release := func(off, size int) {
		at := sort.Search(len(free), func(i int) bool { return free[i].off >= off })
		free = append(free, block{})
		copy(free[at+1:], free[at:])
		free[at] = block{off, size}
		// Merge with the next block, then the previous one.
		if at+1 < len(free) && free[at].off+free[at].size == free[at+1].off {
			free[at].size += free[at+1].size
			free = append(free[:at+1], free[at+2:]...)
		}
		if at > 0 && free[at-1].off+free[at-1].size == free[at].off {
			free[at-1].size += free[at].size
			free = append(free[:at], free[at+1:]...)
		}
	}
	alloc := func(size int) int {
		for i := range free {
			if free[i].size >= size {
				off := free[i].off
				if free[i].size == size {
					free = append(free[:i], free[i+1:]...)
				} else {
					free[i].off += size
					free[i].size -= size
				}
				return off
			}
		}
		off := arenaLen
		arenaLen += size
		return off
	}
	for s := 0; s <= nsteps; s++ {
		for i := 0; i < n; i++ {
			if last[i] == s-1 && last[i] < nsteps {
				release(offsets[i], sizes[i])
			}
		}
		for i := 0; i < n; i++ {
			if first[i] == s {
				offsets[i] = alloc(sizes[i])
			}
		}
	}
	return offsets, arenaLen
}

// bindCall resolves the call's operands through get and returns a
// closure that executes it on the pure-Go BLAS kernels. Semantics match
// Dispatch exactly.
func bindCall(c kernels.Call, get func(string) *mat.Dense) (func(), error) {
	switch c.Kind {
	case kernels.Gemm:
		a, b, out := get(c.In[0]), get(c.In[1]), get(c.Out)
		tA, tB := c.TransA, c.TransB
		return func() { blas.Gemm(tA, tB, 1, a, b, 0, out) }, nil
	case kernels.Syrk:
		a, out := get(c.In[0]), get(c.Out)
		if c.TransA {
			return func() { blas.SyrkT(mat.Lower, 1, a, 0, out) }, nil
		}
		return func() { blas.Syrk(mat.Lower, 1, a, 0, out) }, nil
	case kernels.Symm:
		a, b, out := get(c.In[0]), get(c.In[1]), get(c.Out)
		return func() { blas.Symm(mat.Lower, 1, a, b, 0, out) }, nil
	case kernels.Tri2Full:
		out := get(c.Out)
		return func() { blas.Tri2Full(mat.Lower, out) }, nil
	case kernels.Potrf:
		out := get(c.Out)
		id := c.Out
		return func() {
			if err := blas.Potrf(out); err != nil {
				panic(fmt.Sprintf("exec: %v (operand %q must be SPD)", err, id))
			}
		}, nil
	case kernels.Trsm:
		l, b := get(c.In[0]), get(c.Out)
		trans := c.TransA
		return func() { blas.Trsm(mat.Lower, trans, 1, l, b) }, nil
	case kernels.AddSym:
		out, r := get(c.Out), get(c.In[1])
		return func() { blas.AddSym(mat.Lower, out, r) }, nil
	default:
		return nil, fmt.Errorf("exec: cannot bind unknown kind %v", c.Kind)
	}
}

// fillOperand refills one operand in place according to its fill kind.
// Shared by the single-instance and batched fill loops; it performs no
// heap allocations (the SPD scratch buffer is sized at compile time).
func fillOperand(m *mat.Dense, kind kernels.FillKind, spdScratch []float64, rng *xrand.Rand) {
	switch kind {
	case kernels.FillRandom:
		m.FillRandom(rng)
	case kernels.FillSPD:
		m.FillSPD(spdScratch, rng)
	case kernels.FillDiagDominant:
		m.FillRandom(rng)
		for i := 0; i < m.Rows; i++ {
			m.Data[i+i*m.Stride] = 4 + rng.Float64()
		}
	case kernels.FillZero:
		m.Zero()
	}
}

// FillInputs refills every input operand in place from the deterministic
// stream. It performs no heap allocations: the SPD scratch buffer was
// sized at compile time.
func (p *Plan) FillInputs(rng *xrand.Rand) {
	for _, f := range p.fills {
		fillOperand(p.ops[f.idx], f.kind, p.spdScratch, rng)
	}
}

// SetInput copies src into the named operand slot. It panics if the
// operand is unknown or the shapes disagree.
func (p *Plan) SetInput(id string, src *mat.Dense) {
	i, ok := p.index[id]
	if !ok {
		panic(fmt.Sprintf("exec: plan has no operand %q", id))
	}
	dst := p.ops[i]
	if src.Rows != dst.Rows || src.Cols != dst.Cols {
		panic(fmt.Sprintf("exec: input %q is %dx%d, algorithm expects %dx%d",
			id, src.Rows, src.Cols, dst.Rows, dst.Cols))
	}
	mat.Copy(dst, src)
}

// Execute runs the bound call sequence once. It performs no heap
// allocations (the kernels' packing buffers are pooled; parallel kernel
// paths may still spawn goroutines on multi-core hosts).
func (p *Plan) Execute() {
	for i := range p.steps {
		p.steps[i].run()
	}
}

// ExecuteTimed runs the sequence, timing each call with the monotonic
// clock. The returned slice is owned by the plan and reused by the next
// ExecuteTimed; it performs no heap allocations.
func (p *Plan) ExecuteTimed() []float64 {
	for i := range p.steps {
		start := time.Now()
		p.steps[i].run()
		p.times[i] = time.Since(start).Seconds()
	}
	return p.times
}

// Alg returns the algorithm this plan was compiled from.
func (p *Plan) Alg() *expr.Algorithm { return p.alg }

// Operand returns the arena-backed matrix for the given operand ID, or
// nil if the plan has no such operand.
func (p *Plan) Operand(id string) *mat.Dense {
	if i, ok := p.index[id]; ok {
		return p.ops[i]
	}
	return nil
}

// Output returns the arena-backed result operand.
func (p *Plan) Output() *mat.Dense { return p.ops[p.output] }

// ArenaLen returns the length in float64s of the shared backing buffer.
func (p *Plan) ArenaLen() int { return len(p.arena) }

// OperandLen returns the summed operand sizes — the arena length a
// layout without liveness-based slot reuse would need. ArenaLen smaller
// than OperandLen is slot reuse at work.
func (p *Plan) OperandLen() int { return p.operandLen }
