//go:build !race

package exec

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
