package exec

import (
	"fmt"
	"sync"
	"time"

	"lamb/internal/blas"
	"lamb/internal/expr"
	"lamb/internal/kernels"
	"lamb/internal/mat"
	"lamb/internal/xrand"
)

// Measured is the Executor that runs the pure-Go BLAS kernels and times
// them with the monotonic clock. It follows the paper's protocol: before
// each repetition the cache is flushed by streaming through a buffer
// larger than any realistic LLC; within a repetition the calls run
// back-to-back so inter-kernel cache effects are present.
//
// Operand contents never influence BLAS timing (dense unstructured
// inputs), so inputs are filled once per algorithm from a deterministic
// stream.
type Measured struct {
	// FlushBytes is the size of the cache-flushing buffer. The default
	// (32 MiB) exceeds typical LLCs.
	FlushBytes int

	flushBuf []float64
	fillRng  *xrand.Rand

	peakOnce sync.Once
	peak     float64

	// Plans is the compiled-plan cache. The Timer protocol runs Reps
	// consecutive repetitions of the same algorithm (or call), so even a
	// small LRU captures all the repetition reuse; the engine installs a
	// larger shared cache so repeated queries skip recompilation across
	// instances too. Measured itself remains single-threaded (the fill
	// stream and flush buffer are shared), but the cache is safe to
	// share.
	Plans *PlanCache
}

// NewMeasured returns a measured executor with default settings.
func NewMeasured() *Measured {
	return &Measured{
		FlushBytes: 32 << 20,
		fillRng:    xrand.New(0xfeed),
		Plans:      NewPlanCache(DefaultAlgPlanEntries, DefaultCallPlanEntries),
	}
}

// flushCache streams writes through the flush buffer, evicting cached
// operand data (the paper flushes the cache before each repetition). The
// buffer is re-sized whenever FlushBytes changes, so adjusting the field
// after the first flush takes effect.
func (e *Measured) flushCache() {
	n := e.FlushBytes / 8
	if n < 1024 {
		n = 1024
	}
	if len(e.flushBuf) != n {
		e.flushBuf = make([]float64, n)
	}
	for i := range e.flushBuf {
		e.flushBuf[i] += 1
	}
}

// plan returns the compiled plan for alg through the plan cache,
// compiling on first sight. The measurement protocol repeats the same
// algorithm back to back, so every repetition after the first is a
// cache hit (and performs no heap allocations).
func (e *Measured) plan(alg *expr.Algorithm) *Plan {
	p, err := e.Plans.Plan(alg)
	if err != nil {
		panic(fmt.Sprintf("exec: %v", err))
	}
	return p
}

// Dispatch executes a single call on the operand map using the pure-Go
// BLAS kernels. Symmetric kernels use the lower triangle, matching the
// SYRK outputs produced here. It is exported so tests and examples can
// evaluate algorithms for correctness (see EvaluateAlgorithm).
func Dispatch(call kernels.Call, ops map[string]*mat.Dense) {
	switch call.Kind {
	case kernels.Gemm:
		blas.Gemm(call.TransA, call.TransB, 1, ops[call.In[0]], ops[call.In[1]], 0, ops[call.Out])
	case kernels.Syrk:
		if call.TransA {
			blas.SyrkT(mat.Lower, 1, ops[call.In[0]], 0, ops[call.Out])
		} else {
			blas.Syrk(mat.Lower, 1, ops[call.In[0]], 0, ops[call.Out])
		}
	case kernels.Symm:
		blas.Symm(mat.Lower, 1, ops[call.In[0]], ops[call.In[1]], 0, ops[call.Out])
	case kernels.Tri2Full:
		blas.Tri2Full(mat.Lower, ops[call.Out])
	case kernels.Potrf:
		if err := blas.Potrf(ops[call.Out]); err != nil {
			panic(fmt.Sprintf("exec: %v (operand %q must be SPD)", err, call.Out))
		}
	case kernels.Trsm:
		blas.Trsm(mat.Lower, call.TransA, 1, ops[call.In[0]], ops[call.Out])
	case kernels.AddSym:
		blas.AddSym(mat.Lower, ops[call.Out], ops[call.In[1]])
	default:
		panic(fmt.Sprintf("exec: dispatch of unknown kind %v", call.Kind))
	}
}

// EvaluateAlgorithm runs the algorithm's calls on the provided input
// operands and returns the final result. It compiles a fresh plan, so
// temporaries live in a zeroed arena and the caller's inputs are copied,
// never mutated. This is the correctness path: all algorithms of an
// expression must produce (numerically) the same result.
func EvaluateAlgorithm(alg *expr.Algorithm, inputs map[string]*mat.Dense) *mat.Dense {
	p, err := CompilePlan(alg)
	if err != nil {
		panic(fmt.Sprintf("exec: %v", err))
	}
	for id, in := range inputs {
		if _, ok := alg.Shapes[id]; !ok {
			continue // extra inputs are ignored, matching the map-based path
		}
		p.SetInput(id, in)
	}
	p.Execute()
	return p.Output()
}

// TimeAlgorithm implements Executor: inputs are refilled in place from
// the deterministic stream, the cache is flushed, and the pre-compiled
// plan runs with per-call timing. After the plan is compiled (first
// repetition), nothing on this path allocates — in particular, nothing
// allocates between the cache flush and the first kernel call. The
// returned slice is owned by the executor and reused by the next call.
func (e *Measured) TimeAlgorithm(alg *expr.Algorithm, rep uint64) []float64 {
	p := e.plan(alg)
	p.FillInputs(e.fillRng)
	e.flushCache()
	return p.ExecuteTimed()
}

// batchSlabFloats is the fused-batch slab budget in float64s (4 MiB).
// Fusing exists to amortise fixed per-dispatch costs across instances
// whose working sets are cache-resident; the budget applies per *chunk*
// — the contiguous instance range one packed sweep works through — not
// per batch, so wide batches execute as successive chunks (distributed
// across workers by the parallel batched drivers) while each chunk's
// working set stays cache-sized. Instances whose arena cannot fit at
// least two slabs in the budget are not fused at all.
const batchSlabFloats = (4 << 20) / 8

// maxFusedChunks bounds how many chunk widths one fused batch plan may
// span: N instances execute as ⌈N/chunk⌉ chunks, so the total fusable
// width is FuseChunk × maxFusedChunks (up to 512 instances for the
// smallest strides). The cap keeps one plan's arena bounded (≤ 8 slab
// budgets) so the batch-plan LRU stays cheap.
const maxFusedChunks = 8

// FuseChunk implements BatchExecutor: the chunk width for alg — how
// many instances one packed sweep (and one fused measurement
// repetition) should execute together so the chunk's arena fits the
// slab budget at least twice. 0 means the algorithm is out of the fused
// regime (instance arena too large — or not compilable, which the
// caller will surface through the ordinary per-instance path).
func (e *Measured) FuseChunk(alg *expr.Algorithm) int {
	lay, err := compileLayout(alg)
	if err != nil {
		return 0
	}
	stride := (lay.arenaLen + batchAlign - 1) &^ (batchAlign - 1)
	if stride == 0 {
		stride = batchAlign
	}
	w := batchSlabFloats / stride
	if w < 2 {
		return 0
	}
	return min(w, 64)
}

// FuseWidth implements BatchExecutor: the total number of instances of
// alg one fused batch plan may carry — the chunk width times the chunk
// cap. 0 means the algorithm is out of the fused regime.
func (e *Measured) FuseWidth(alg *expr.Algorithm) int {
	w := e.FuseChunk(alg)
	if w == 0 {
		return 0
	}
	return w * maxFusedChunks
}

// TimeAlgorithmBatch implements BatchExecutor: one fused repetition over
// count instances — all instances refilled, one cache flush, one fused
// plan execution. The returned per-call times cover all count instances
// of each call. After the batch plan is compiled (first repetition),
// nothing on this path allocates. The returned slice is owned by the
// executor and reused by the next call.
func (e *Measured) TimeAlgorithmBatch(alg *expr.Algorithm, count int, rep uint64) []float64 {
	p, err := e.Plans.BatchPlan(alg, count)
	if err != nil {
		panic(fmt.Sprintf("exec: %v", err))
	}
	p.FillInputs(e.fillRng)
	e.flushCache()
	return p.ExecuteTimed()
}

// TimeCallCold implements Executor: the call runs through a compiled
// single-call plan (cached by MemoKey) whose operands are refilled in
// place after the first repetition, so no allocation happens after the
// cache flush.
func (e *Measured) TimeCallCold(call kernels.Call, rep uint64) float64 {
	p, err := e.Plans.CallPlan(call)
	if err != nil {
		panic(fmt.Sprintf("exec: %v", err))
	}
	p.FillInputs(e.fillRng)
	e.flushCache()
	start := time.Now()
	p.Execute()
	return time.Since(start).Seconds()
}

// Peak implements Executor: an estimate of the machine's attainable FLOP
// rate, measured once from square GEMM runs through the shared benchmark
// harness (see BenchCall). Efficiencies reported by the measured backend
// are relative to this estimate.
func (e *Measured) Peak() float64 {
	e.peakOnce.Do(func() {
		rng := xrand.New(0xbeef)
		best := 0.0
		for _, s := range []int{192, 320} {
			res := BenchCall(kernels.NewGemm(s, s, s, "A", "B", "C", false, false), 3, rng)
			if f := res.BestGFlops * 1e9; f > best {
				best = f
			}
		}
		e.peak = best
	})
	return e.peak
}

// Name implements Executor.
func (e *Measured) Name() string { return "measured/pure-go-blas" }
